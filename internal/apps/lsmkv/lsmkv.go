// Package lsmkv is a LevelDB-style log-structured merge-tree key-value
// store built on the vfs.FileSystem interface. It generates the file
// system access pattern the paper's YCSB-on-LevelDB evaluation exercises
// (§5.2, §5.8): write-ahead-log appends with fsync, memtable flushes into
// sorted string tables (SSTables), sequential compaction reads/writes,
// and random reads through table indexes.
//
// The engine is deliberately scaled down (single level-0 list plus one
// level-1 table) but mechanically faithful: every put is durably logged
// before acknowledgement when SyncWrites is on, flushes and compactions
// rewrite tables atomically via rename, and recovery replays the WAL.
package lsmkv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"splitfs/internal/vfs"
)

// Options configure the store.
type Options struct {
	// Dir is the database directory (created if missing).
	Dir string
	// MemtableBytes triggers a flush (paper: 64 MB sstables per
	// Facebook's tuning guide; scaled default 512 KB).
	MemtableBytes int
	// SyncWrites fsyncs the WAL on every put (LevelDB WriteOptions.sync).
	SyncWrites bool
	// L0CompactAt is the number of level-0 tables that triggers a
	// compaction into level 1 (default 4).
	L0CompactAt int
	// IndexEvery controls the sparse index density of tables (default 16
	// records).
	IndexEvery int
}

func (o *Options) fill() {
	if o.Dir == "" {
		o.Dir = "/db"
	}
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 512 << 10
	}
	if o.L0CompactAt == 0 {
		o.L0CompactAt = 4
	}
	if o.IndexEvery == 0 {
		o.IndexEvery = 16
	}
}

// Stats counts engine activity.
type Stats struct {
	Puts        int64
	Gets        int64
	Scans       int64
	Flushes     int64
	Compactions int64
	WALBytes    int64
}

// tombstone marks deletions in the LSM.
var tombstone = []byte("\x00__lsmkv_tombstone__")

// DB is an open store.
type DB struct {
	fs   vfs.FileSystem
	opts Options

	wal      vfs.File
	walSeq   int
	walBytes int
	mem      map[string][]byte
	memBytes int
	l0       []*table // newest first
	l1       *table
	nextTbl  int
	stats    Stats
}

// Open creates or recovers a store in opts.Dir.
func Open(fs vfs.FileSystem, opts Options) (*DB, error) {
	opts.fill()
	db := &DB{fs: fs, opts: opts, mem: make(map[string][]byte)}
	if _, err := fs.Stat(opts.Dir); err != nil {
		if !errors.Is(err, vfs.ErrNotExist) {
			return nil, err
		}
		if err := fs.Mkdir(opts.Dir, 0755); err != nil {
			return nil, err
		}
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	if db.wal == nil {
		if err := db.rotateWAL(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) path(name string) string { return db.opts.Dir + "/" + name }

// recover loads table metadata and replays any WALs left by a crash.
func (db *DB) recover() error {
	ents, err := db.fs.ReadDir(db.opts.Dir)
	if err != nil {
		return err
	}
	var l0Names []string
	var walNames []string
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name, "tbl-l1-"):
			t, err := openTable(db.fs, db.path(e.Name), db.opts.IndexEvery)
			if err != nil {
				return err
			}
			db.l1 = t
			db.bumpTbl(e.Name)
		case strings.HasPrefix(e.Name, "tbl-"):
			l0Names = append(l0Names, e.Name)
			db.bumpTbl(e.Name)
		case strings.HasPrefix(e.Name, "wal-"):
			walNames = append(walNames, e.Name)
		}
	}
	// Level-0 tables newest first (higher sequence = newer).
	sort.Sort(sort.Reverse(sort.StringSlice(l0Names)))
	for _, name := range l0Names {
		t, err := openTable(db.fs, db.path(name), db.opts.IndexEvery)
		if err != nil {
			return err
		}
		db.l0 = append(db.l0, t)
	}
	// Replay WALs oldest first into the memtable.
	sort.Strings(walNames)
	for _, name := range walNames {
		if err := db.replayWAL(db.path(name)); err != nil {
			return err
		}
		if n := parseSeq(name); n >= db.walSeq {
			db.walSeq = n + 1
		}
	}
	return nil
}

func (db *DB) bumpTbl(name string) {
	if n := parseSeq(name); n >= db.nextTbl {
		db.nextTbl = n + 1
	}
}

func parseSeq(name string) int {
	idx := strings.LastIndex(name, "-")
	if idx < 0 {
		return 0
	}
	var n int
	fmt.Sscanf(name[idx+1:], "%06d", &n)
	return n
}

// rotateWAL starts a fresh write-ahead log.
func (db *DB) rotateWAL() error {
	if db.wal != nil {
		db.wal.Close()
	}
	name := fmt.Sprintf("wal-%06d", db.walSeq)
	db.walSeq++
	f, err := db.fs.OpenFile(db.path(name), vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
	if err != nil {
		return err
	}
	db.wal = f
	db.walBytes = 0
	return nil
}

// walRecord is length-prefixed: keyLen(4) valLen(4) key val.
func walRecord(key string, val []byte) []byte {
	rec := make([]byte, 8+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	return rec
}

func (db *DB) replayWAL(path string) error {
	data, err := vfs.ReadFile(db.fs, path)
	if err != nil {
		return err
	}
	off := 0
	for off+8 <= len(data) {
		kl := int(binary.LittleEndian.Uint32(data[off : off+4]))
		vl := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if kl == 0 || off+8+kl+vl > len(data) {
			break // torn tail record: end of valid log
		}
		key := string(data[off+8 : off+8+kl])
		val := append([]byte(nil), data[off+8+kl:off+8+kl+vl]...)
		db.mem[key] = val
		db.memBytes += kl + vl
		off += 8 + kl + vl
	}
	return nil
}

// Put inserts or updates a key.
func (db *DB) Put(key string, val []byte) error {
	db.stats.Puts++
	rec := walRecord(key, val)
	if _, err := db.wal.Write(rec); err != nil {
		return err
	}
	db.stats.WALBytes += int64(len(rec))
	db.walBytes += len(rec)
	if db.opts.SyncWrites {
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	db.mem[key] = append([]byte(nil), val...)
	db.memBytes += len(key) + len(val)
	if db.memBytes >= db.opts.MemtableBytes {
		return db.flush()
	}
	return nil
}

// Delete removes a key (tombstone).
func (db *DB) Delete(key string) error {
	return db.Put(key, tombstone)
}

// Get returns the latest value, or vfs.ErrNotExist.
func (db *DB) Get(key string) ([]byte, error) {
	db.stats.Gets++
	if v, ok := db.mem[key]; ok {
		if bytes.Equal(v, tombstone) {
			return nil, vfs.ErrNotExist
		}
		return v, nil
	}
	for _, t := range db.l0 {
		if v, ok, err := t.get(key); err != nil {
			return nil, err
		} else if ok {
			if bytes.Equal(v, tombstone) {
				return nil, vfs.ErrNotExist
			}
			return v, nil
		}
	}
	if db.l1 != nil {
		if v, ok, err := db.l1.get(key); err != nil {
			return nil, err
		} else if ok {
			if bytes.Equal(v, tombstone) {
				return nil, vfs.ErrNotExist
			}
			return v, nil
		}
	}
	return nil, vfs.ErrNotExist
}

// Scan returns up to count key-value pairs with key >= start, in order
// (YCSB workload E).
type KV struct {
	Key string
	Val []byte
}

// Scan merges the memtable and all tables.
func (db *DB) Scan(start string, count int) ([]KV, error) {
	db.stats.Scans++
	merged := make(map[string][]byte)
	// Oldest source first so newer levels overwrite.
	if db.l1 != nil {
		if err := db.l1.scanInto(merged, start, count*4); err != nil {
			return nil, err
		}
	}
	for i := len(db.l0) - 1; i >= 0; i-- {
		if err := db.l0[i].scanInto(merged, start, count*4); err != nil {
			return nil, err
		}
	}
	for k, v := range db.mem {
		if k >= start {
			merged[k] = v
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		if !bytes.Equal(merged[k], tombstone) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > count {
		keys = keys[:count]
	}
	out := make([]KV, len(keys))
	for i, k := range keys {
		out[i] = KV{Key: k, Val: merged[k]}
	}
	return out, nil
}

// flush writes the memtable to a new level-0 table and rotates the WAL.
func (db *DB) flush() error {
	db.stats.Flushes++
	name := fmt.Sprintf("tbl-%06d", db.nextTbl)
	db.nextTbl++
	t, err := writeTable(db.fs, db.path(name), sortedKVs(db.mem), db.opts.IndexEvery)
	if err != nil {
		return err
	}
	db.l0 = append([]*table{t}, db.l0...)
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	// The flushed data is durable: the old WAL can go.
	oldWAL := db.wal.Path()
	if err := db.rotateWAL(); err != nil {
		return err
	}
	if err := db.fs.Unlink(oldWAL); err != nil {
		return err
	}
	if len(db.l0) >= db.opts.L0CompactAt {
		return db.compact()
	}
	return nil
}

// compact merges level 0 and level 1 into a fresh level-1 table —
// LevelDB's background compaction, the sequential-read + sequential-write
// phase of the paper's workloads.
func (db *DB) compact() error {
	db.stats.Compactions++
	merged := make(map[string][]byte)
	if db.l1 != nil {
		if err := db.l1.scanInto(merged, "", 1<<30); err != nil {
			return err
		}
	}
	for i := len(db.l0) - 1; i >= 0; i-- {
		if err := db.l0[i].scanInto(merged, "", 1<<30); err != nil {
			return err
		}
	}
	// Tombstones die at the bottom level.
	for k, v := range merged {
		if bytes.Equal(v, tombstone) {
			delete(merged, k)
		}
	}
	name := fmt.Sprintf("tbl-l1-%06d", db.nextTbl)
	db.nextTbl++
	tmp := db.path(name + ".tmp")
	t, err := writeTable(db.fs, tmp, sortedKVs(merged), db.opts.IndexEvery)
	if err != nil {
		return err
	}
	if err := db.fs.Rename(tmp, db.path(name)); err != nil {
		return err
	}
	t.path = db.path(name)
	// Drop the inputs.
	old := db.l0
	oldL1 := db.l1
	db.l0 = nil
	db.l1 = t
	for _, ot := range old {
		ot.close()
		if err := db.fs.Unlink(ot.path); err != nil {
			return err
		}
	}
	if oldL1 != nil {
		oldL1.close()
		if err := db.fs.Unlink(oldL1.path); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces the memtable out (used at clean shutdown).
func (db *DB) Flush() error {
	if db.memBytes == 0 {
		return nil
	}
	return db.flush()
}

// Close flushes and releases the store. The tables are released even
// when the WAL sync fails, so an error return never leaks their
// mappings.
func (db *DB) Close() error {
	err := db.Flush()
	if err == nil && db.wal != nil {
		err = db.wal.Sync()
	}
	if db.wal != nil {
		if cerr := db.wal.Close(); err == nil {
			err = cerr
		}
	}
	for _, t := range db.l0 {
		t.close()
	}
	if db.l1 != nil {
		db.l1.close()
	}
	return err
}

// Stats returns engine counters.
func (db *DB) Stats() Stats { return db.stats }

func sortedKVs(m map[string][]byte) []KV {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KV, len(keys))
	for i, k := range keys {
		out[i] = KV{Key: k, Val: m[k]}
	}
	return out
}

var _ = io.EOF
