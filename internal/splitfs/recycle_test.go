package splitfs

import (
	"bytes"
	"fmt"
	"testing"

	"splitfs/internal/vfs"
)

// Regression tests for the tmpfile pattern (unlink while open) and inode
// recycling: the open handle must keep working on the orphan inode, the
// inode number must not be recycled until the last close, and after the
// close a recycled number must get a fresh open-file description — the
// stale-description bug silently lost writes to the new file.
func TestUnlinkWhileOpenThenRecycle(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	fa, err := fs.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	doomed := []byte("doomed-but-readable")
	if _, err := fa.Write(doomed); err != nil {
		t.Fatal(err)
	}
	if err := fa.Sync(); err != nil {
		t.Fatal(err)
	}
	// Staged-but-not-fsynced data must also survive the unlink.
	staged := []byte("+staged-tail")
	if _, err := fa.Write(staged); err != nil {
		t.Fatal(err)
	}
	st, err := fa.Stat()
	if err != nil {
		t.Fatal(err)
	}
	inoA := st.Ino
	freeBefore := fs.KFS().FreeBlocks()
	if err := fs.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	// POSIX tmpfile semantics: the orphan inode keeps its blocks until
	// the last close, and the open handle still reads its data —
	// including the staged overlay.
	if got := fs.KFS().FreeBlocks(); got != freeBefore {
		t.Fatalf("unlink freed an open file's blocks early: %d -> %d", freeBefore, got)
	}
	want := append(append([]byte(nil), doomed...), staged...)
	buf := make([]byte, len(want))
	if _, err := fa.ReadAt(buf, 0); err != nil {
		t.Fatalf("read of unlinked-open file: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("unlinked-open read = %q, want %q", buf, want)
	}
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	// The orphan's blocks are released by the last close, but the bitmap
	// clears only apply at the next journal commit (deferred frees).
	if err := fs.KFS().CommitMeta(); err != nil {
		t.Fatal(err)
	}
	if got := fs.KFS().FreeBlocks(); got <= freeBefore {
		t.Fatalf("last close did not free the orphan's blocks: %d vs %d", got, freeBefore)
	}

	// Churn creates until the allocator recycles inoA (newEnv caps
	// MaxInodes at 1024), then prove the recycled number gets a fresh
	// description whose writes reach the kernel.
	var fb vfs.File
	var pathB string
	for i := 0; i < 1100 && fb == nil; i++ {
		p := fmt.Sprintf("/recycle-%04d", i)
		f, err := fs.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		info, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if info.Ino == inoA {
			fb, pathB = f, p
			break
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(p); err != nil {
			t.Fatal(err)
		}
	}
	if fb == nil {
		t.Fatal("inode number never recycled; test environment changed?")
	}
	want = []byte("WORLD")
	if _, err := fb.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	// The kernel must see the new file's data — with the stale ofile bug,
	// the relink landed in the dead inode and K-Split reported size 0.
	kinfo, err := fs.KFS().Stat(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if kinfo.Size != int64(len(want)) {
		t.Fatalf("K-Split sees size %d for %s, want %d (write lost in stale ofile)",
			kinfo.Size, pathB, len(want))
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q after recycled-ino churn, want %q", got, want)
	}
}

// TestCloseRelinksUnlinkedStagedData: staged writes made after an unlink
// land in the orphan inode at close (harmlessly — the blocks free with
// it) without corrupting anything, and the attribute cache must not be
// resurrected for the dead path.
func TestUnlinkedStagedDataDoesNotResurrectAttrs(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, err := fs.OpenFile("/ghost", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("post-unlink write")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/ghost"); err == nil {
		t.Fatal("Stat succeeded for an unlinked path (stale attrs resurrected)")
	}
}
