package harness

import (
	"fmt"

	"splitfs/internal/apps/aofstore"
	"splitfs/internal/apps/lsmkv"
	"splitfs/internal/apps/waldb"
	"splitfs/internal/vfs"
	"splitfs/internal/wl/tpcc"
	"splitfs/internal/wl/utilsim"
	"splitfs/internal/wl/ycsb"
)

// This file reproduces the application-level artifacts: Table 7 (Strata
// vs SplitFS on YCSB), Figure 5 (software overhead in applications), and
// Figure 6 (real application performance, data- and metadata-heavy).

const appDev = 1 << 30

func init() {
	register("table7", "SplitFS-strict vs Strata on YCSB/LevelDB (paper Table 7)", table7)
	register("fig5", "Relative file-system software overhead in applications (paper Figure 5)", fig5)
	register("fig6", "Application performance across guarantee levels (paper Figure 6)", fig6)
}

func ycsbCfg() ycsb.Config {
	return ycsb.Config{Records: 1500, Operations: 2500, ValueBytes: 1000, Seed: 11}
}

func lsmOpts() lsmkv.Options {
	// YCSB's default LevelDB WriteOptions does not sync the WAL per put;
	// durability comes from memtable flushes, as in the paper's runs.
	return lsmkv.Options{MemtableBytes: 1 << 20, SyncWrites: false}
}

// runYCSB loads a store and runs one workload, returning Kops/s of the
// run phase.
func runYCSB(kind string, w ycsb.Workload) (float64, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return 0, err
	}
	db, err := lsmkv.Open(e.fs, lsmOpts())
	if err != nil {
		return 0, err
	}
	defer db.Close()
	cfg := ycsbCfg()
	if w == ycsb.E {
		cfg.Operations /= 2 // paper: 500K ops for E vs 1M elsewhere
	}
	if _, err := ycsb.Load(db, cfg); err != nil {
		return 0, err
	}
	var ops int64
	d, err := e.measure(func() error {
		st, err := ycsb.Run(db, w, cfg)
		ops = st.Ops()
		return err
	})
	if err != nil {
		return 0, err
	}
	return kops(ops, d.Total), nil
}

func table7() (*Table, error) {
	t := &Table{
		ID:      "table7",
		Title:   "YCSB on LevelDB: Strata vs SplitFS-strict",
		Note:    "paper: SplitFS 1.72x-2.25x Strata across A-F (Strata 29.1-113.1 Kops/s)",
		Headers: []string{"Workload", "Strata (Kops/s)", "SplitFS-strict (Kops/s)", "SplitFS/Strata"},
	}
	for _, w := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.D, ycsb.E, ycsb.F} {
		st, err := runYCSB("strata", w)
		if err != nil {
			return nil, fmt.Errorf("strata %c: %w", w, err)
		}
		sp, err := runYCSB("splitfs-strict", w)
		if err != nil {
			return nil, fmt.Errorf("splitfs %c: %w", w, err)
		}
		t.Rows = append(t.Rows, []string{
			"Run " + string(w), f1(st), f1(sp), xf(sp / st),
		})
	}
	return t, nil
}

// overheadOf runs a workload and returns (total ns, software-overhead ns).
func overheadOf(kind string, fn func(e *env) error) (int64, int64, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return 0, 0, err
	}
	d, err := e.measure(func() error { return fn(e) })
	if err != nil {
		return 0, 0, err
	}
	return d.Total, d.Overhead(), nil
}

func fig5() (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "File-system software overhead relative to SplitFS at the same guarantee",
		Note:    "paper: ext4 DAX up to 3.6x, NOVA-relaxed up to 7.4x (TPCC), PMFS lowest at ~1.9x; SplitFS lowest overall",
		Headers: []string{"Workload", "Baseline", "Baseline overhead (ms)", "SplitFS", "SplitFS overhead (ms)", "Rel"},
	}
	loadA := func(e *env) error {
		db, err := lsmkv.Open(e.fs, lsmOpts())
		if err != nil {
			return err
		}
		defer db.Close()
		_, err = ycsb.Load(db, ycsbCfg())
		return err
	}
	runA := func(e *env) error {
		db, err := lsmkv.Open(e.fs, lsmOpts())
		if err != nil {
			return err
		}
		defer db.Close()
		if _, err := ycsb.Load(db, ycsbCfg()); err != nil {
			return err
		}
		_, err = ycsb.Run(db, ycsb.A, ycsbCfg())
		return err
	}
	tpccRun := func(e *env) error {
		db, err := waldb.Open(e.fs, waldb.Options{})
		if err != nil {
			return err
		}
		defer db.Close()
		b, err := tpcc.New(tpcc.Wrap(db), tpcc.Config{Warehouses: 1, Districts: 4, Customers: 60, Items: 200})
		if err != nil {
			return err
		}
		_, err = b.Run(400)
		return err
	}
	cases := []struct {
		workload string
		fn       func(*env) error
		pairs    [][2]string // baseline kind, splitfs kind
	}{
		{"YCSB Load A", loadA, [][2]string{
			{"ext4-dax", "splitfs-posix"},
			{"pmfs", "splitfs-sync"},
			{"nova-relaxed", "splitfs-sync"},
			{"nova-strict", "splitfs-strict"},
		}},
		{"YCSB Run A", runA, [][2]string{
			{"ext4-dax", "splitfs-posix"},
			{"pmfs", "splitfs-sync"},
			{"nova-relaxed", "splitfs-sync"},
			{"nova-strict", "splitfs-strict"},
		}},
		{"TPCC", tpccRun, [][2]string{
			{"ext4-dax", "splitfs-posix"},
			{"pmfs", "splitfs-sync"},
			{"nova-relaxed", "splitfs-sync"},
			{"nova-strict", "splitfs-strict"},
		}},
	}
	for _, c := range cases {
		for _, pair := range c.pairs {
			_, bo, err := overheadOf(pair[0], c.fn)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.workload, pair[0], err)
			}
			_, so, err := overheadOf(pair[1], c.fn)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.workload, pair[1], err)
			}
			t.Rows = append(t.Rows, []string{
				c.workload, pair[0], f2(float64(bo) / 1e6),
				pair[1], f2(float64(so) / 1e6),
				xf(float64(bo) / float64(so)),
			})
		}
	}
	return t, nil
}

func fig6() (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Application performance (Kops/s; utilities in simulated ms, lower better)",
		Note:    "paper: SplitFS beats all same-guarantee baselines on data-intensive apps by up to 2.7x; loses <=15% on git/tar/rsync",
		Headers: []string{"Application", "Group", "File system", "Result", "vs group base"},
	}
	// Data-intensive: YCSB A and C, Redis SET, TPCC.
	groups := []struct {
		name  string
		kinds []string
	}{
		{"POSIX", posixKinds},
		{"sync", syncKinds},
		{"strict", []string{"nova-strict", "splitfs-strict"}},
	}
	appendRows := func(app string, run func(kind string) (float64, error), higherBetter bool, unit string) error {
		for _, g := range groups {
			var base float64
			for i, kind := range g.kinds {
				v, err := run(kind)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", app, kind, err)
				}
				if i == 0 {
					base = v
				}
				rel := v / base
				if !higherBetter {
					rel = base / v
				}
				t.Rows = append(t.Rows, []string{app, g.name, kind,
					f1(v) + " " + unit, xf(rel)})
			}
		}
		return nil
	}
	if err := appendRows("YCSB-A/LevelDB", func(kind string) (float64, error) {
		return runYCSB(kind, ycsb.A)
	}, true, "Kops/s"); err != nil {
		return nil, err
	}
	if err := appendRows("YCSB-C/LevelDB", func(kind string) (float64, error) {
		return runYCSB(kind, ycsb.C)
	}, true, "Kops/s"); err != nil {
		return nil, err
	}
	if err := appendRows("Redis SET", func(kind string) (float64, error) {
		e, err := newEnv(kind, appDev)
		if err != nil {
			return 0, err
		}
		s, err := aofstore.Open(e.fs, aofstore.Options{})
		if err != nil {
			return 0, err
		}
		defer s.Close()
		val := make([]byte, 512)
		const n = 4000
		d, err := e.measure(func() error {
			for i := 0; i < n; i++ {
				if err := s.Set(fmt.Sprintf("key:%08d", i%1000), val); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return kops(n, d.Total), nil
	}, true, "Kops/s"); err != nil {
		return nil, err
	}
	if err := appendRows("TPCC/SQLite", func(kind string) (float64, error) {
		e, err := newEnv(kind, appDev)
		if err != nil {
			return 0, err
		}
		db, err := waldb.Open(e.fs, waldb.Options{})
		if err != nil {
			return 0, err
		}
		defer db.Close()
		b, err := tpcc.New(tpcc.Wrap(db), tpcc.Config{Warehouses: 1, Districts: 4, Customers: 60, Items: 200})
		if err != nil {
			return 0, err
		}
		const n = 400
		d, err := e.measure(func() error {
			_, err := b.Run(n)
			return err
		})
		if err != nil {
			return 0, err
		}
		return kops(n, d.Total), nil
	}, true, "Kops/s"); err != nil {
		return nil, err
	}
	// Metadata-heavy utilities: best kernel baseline (ext4 DAX) vs
	// SplitFS; latency in ms, lower is better.
	utilTree := utilsim.TreeConfig{Dirs: 6, FilesPerDir: 12, FileBytes: 8 << 10}
	utils := []struct {
		name string
		run  func(fs vfs.FileSystem, paths []string) error
	}{
		{"git add+commit", func(fs vfs.FileSystem, paths []string) error {
			for r := 0; r < 3; r++ {
				if _, err := utilsim.GitAddCommit(fs, "/src", "/git", paths, r); err != nil {
					return err
				}
			}
			return nil
		}},
		{"tar", func(fs vfs.FileSystem, paths []string) error {
			_, err := utilsim.Tar(fs, "/out.tar", paths)
			return err
		}},
		{"rsync", func(fs vfs.FileSystem, paths []string) error {
			_, err := utilsim.Rsync(fs, "/src", "/dst", paths)
			return err
		}},
	}
	for _, u := range utils {
		var base float64
		for i, kind := range []string{"ext4-dax", "splitfs-posix"} {
			e, err := newEnv(kind, appDev)
			if err != nil {
				return nil, err
			}
			paths, err := utilsim.MakeTree(e.fs, "/src", utilTree)
			if err != nil {
				return nil, err
			}
			d, err := e.measure(func() error { return u.run(e.fs, paths) })
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", u.name, kind, err)
			}
			ms := float64(d.Total) / 1e6
			if i == 0 {
				base = ms
			}
			t.Rows = append(t.Rows, []string{u.name, "metadata", kind,
				f2(ms) + " ms", xf(base / ms)})
		}
	}
	return t, nil
}
