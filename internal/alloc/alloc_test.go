package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func newBitmap(t testing.TB, nblocks int64) *Bitmap {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 1 << 22, Clock: sim.NewClock(), TrackPersistence: true})
	return New(dev, 0, 4096, nblocks)
}

func TestAllocExtentContiguous(t *testing.T) {
	b := newBitmap(t, 128)
	e, _, err := b.AllocExtent(10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len != 10 || e.Start != 0 {
		t.Fatalf("first alloc = %v, want [0+10)", e)
	}
	for i := e.Start; i < e.End(); i++ {
		if !b.Allocated(i) {
			t.Fatalf("block %d not marked allocated", i)
		}
	}
	if b.FreeCount() != 118 {
		t.Fatalf("free = %d, want 118", b.FreeCount())
	}
}

func TestAllocFragmented(t *testing.T) {
	b := newBitmap(t, 16)
	// Fragment: allocate all, free every other block.
	e, _, err := b.AllocExtent(16)
	if err != nil || e.Len != 16 {
		t.Fatalf("bulk alloc: %v %v", e, err)
	}
	for i := int64(0); i < 16; i += 2 {
		b.Free(Extent{Start: i, Len: 1})
	}
	exts, _, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, e := range exts {
		total += e.Len
	}
	if total != 4 {
		t.Fatalf("fragmented alloc returned %d blocks, want 4", total)
	}
	if len(exts) < 2 {
		t.Fatalf("expected multiple extents on fragmented bitmap, got %v", exts)
	}
}

func TestAllocNoSpace(t *testing.T) {
	b := newBitmap(t, 8)
	if _, _, err := b.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AllocExtent(1); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Failed multi-extent alloc must roll back.
	b2 := newBitmap(t, 8)
	if _, _, err := b2.Alloc(9); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatal("over-alloc must fail")
	}
	if b2.FreeCount() != 8 {
		t.Fatalf("failed alloc leaked blocks: free = %d", b2.FreeCount())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	b := newBitmap(t, 8)
	e, _, _ := b.AllocExtent(1)
	b.Free(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free(e)
}

func TestLoadRebuildsMirror(t *testing.T) {
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: 1 << 22, Clock: clk, TrackPersistence: true})
	b := New(dev, 0, 4096, 64)
	e, dirty, err := b.AllocExtent(5)
	if err != nil {
		t.Fatal(err)
	}
	// Persist the bitmap bytes the allocator dirtied, as a journal commit
	// would.
	dev.Flush(dirty.Off, dirty.Len, sim.CatPMMeta)
	dev.Fence()
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	b2 := Load(dev, 0, 4096, 64)
	if b2.FreeCount() != 64-e.Len {
		t.Fatalf("reloaded free = %d, want %d", b2.FreeCount(), 64-e.Len)
	}
	for i := e.Start; i < e.End(); i++ {
		if !b2.Allocated(i) {
			t.Fatalf("block %d lost across crash", i)
		}
	}
}

func TestBlockOffset(t *testing.T) {
	b := newBitmap(t, 8)
	if got := b.BlockOffset(3); got != 4096+3*sim.BlockSize {
		t.Fatalf("BlockOffset(3) = %d", got)
	}
	if got := b.ExtentOffset(Extent{Start: 2, Len: 1}); got != 4096+2*sim.BlockSize {
		t.Fatalf("ExtentOffset = %d", got)
	}
}

func TestNextFitWrapsAround(t *testing.T) {
	b := newBitmap(t, 8)
	first, _, _ := b.AllocExtent(6) // hint now at 6
	b.Free(Extent{Start: first.Start, Len: 2})
	// 2 free at end (6,7), 2 free at start (0,1). Request 4: next-fit
	// takes (6,7) then wraps for (0,1) via Alloc.
	exts, _, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 2 {
		t.Fatalf("expected wrap-around split, got %v", exts)
	}
	if b.FreeCount() != 0 {
		t.Fatalf("free = %d, want 0", b.FreeCount())
	}
}

// Property: alloc/free sequences never lose or duplicate blocks.
func TestAllocFreeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 256
		b := newBitmap(t, n)
		rng := sim.NewRNG(seed)
		var live []Extent
		for i := 0; i < 200; i++ {
			if rng.Uint64()%2 == 0 || len(live) == 0 {
				e, _, err := b.AllocExtent(int64(rng.Intn(16) + 1))
				if err == nil {
					live = append(live, e)
				}
			} else {
				k := rng.Intn(len(live))
				b.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
		used := int64(0)
		for _, e := range live {
			used += e.Len
		}
		return b.FreeCount() == n-used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
