package crash

import (
	"fmt"
	"strings"

	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
)

// ServedExplore is the daemon-death sweep: run the served campaign once
// without a crash to bound its persistence-event window, then kill the
// daemon at a seeded sample of events, recover, restart, and check every
// oracle each time. ServedMinimize shrinks a violating campaign's
// tenant workloads to a minimal reproducer.

// ServedExploreConfig configures a served sweep.
type ServedExploreConfig struct {
	Mode splitfs.Mode
	// Tenants/OpsPerTenant/TenantOps/Seed/WireFaults/DevBytes as in
	// ServedCampaign.
	Tenants      int
	OpsPerTenant int
	TenantOps    [][]Op
	Seed         uint64
	WireFaults   bool
	// Leases negotiates the zero-copy data plane on every tenant session
	// of every run (see ServedCampaign.Leases).
	Leases bool
	// FaultCadence arms a wire cut on every FaultCadence-th dial when
	// WireFaults is set (0 = default 2; see ServedCampaign).
	FaultCadence int
	DevBytes     int64
	// Sample bounds how many crash events are tested (0 = all),
	// deterministic in Seed.
	Sample int
	// SkipFence is installed in every campaign of the sweep (harness
	// self-tests; must be safe for concurrent calls).
	SkipFence func(seq int64) bool
	// Include lists events that must be tested even when Sample would not
	// draw them (minimization pins the witness event this way).
	Include []int64
}

// ServedExploreResult summarizes a served sweep.
type ServedExploreResult struct {
	// Window is the crashable event range (post-setup, end-of-recording].
	Window [2]int64
	// Tested counts crash runs; NotFired how many of them never reached
	// their armed event — tenant scheduling is nondeterministic, so a
	// rerun's window can fall short of the recording's. Violations can
	// only come from runs that fired (or from final-state checks).
	Tested, NotFired int
	Violations       []Violation
	Runs             int // total served campaign executions, recording run included
}

// ServedExplore runs the sweep.
func ServedExplore(cfg ServedExploreConfig) (*ServedExploreResult, error) {
	res := &ServedExploreResult{}
	campaign := func(event int64) ServedCampaign {
		return ServedCampaign{Mode: cfg.Mode, Tenants: cfg.Tenants,
			OpsPerTenant: cfg.OpsPerTenant, TenantOps: cfg.TenantOps,
			Seed: cfg.Seed, CrashAtEvent: event, WireFaults: cfg.WireFaults,
			FaultCadence: cfg.FaultCadence,
			Leases:       cfg.Leases, SkipFence: cfg.SkipFence, DevBytes: cfg.DevBytes}
	}

	// Recording run: no crash; validates the workloads' final states and
	// bounds the sweep window. The Seed stays fixed across the sweep so
	// every run drives the same workloads over the same wire-fault
	// cadence — only the armed event varies.
	record, err := RunServed(campaign(0))
	if err != nil {
		return nil, err
	}
	res.Runs++
	if record.Violation != "" {
		res.Violations = append(res.Violations, Violation{
			Mode: cfg.Mode, Seed: cfg.Seed, Msg: record.Violation,
			Flight: record.Flight})
	}
	w0, w1 := record.BaselineEvents, record.TotalEvents
	res.Window = [2]int64{w0, w1}

	events := sampleEvents(w0+1, w1, cfg.Sample, sim.NewRNG(mix(cfg.Seed, 0x5eed)))
	for _, k := range cfg.Include {
		if k > w0 && k <= w1 {
			events = insertEvent(events, k)
		}
	}
	for _, k := range events {
		r, err := RunServed(campaign(k))
		if err != nil {
			return nil, err
		}
		res.Runs++
		res.Tested++
		if !r.Fired {
			res.NotFired++
		}
		if r.Violation != "" {
			res.Violations = append(res.Violations, Violation{
				Mode: cfg.Mode, Seed: cfg.Seed, Event: k, Msg: r.Violation,
				Flight: r.Flight})
		}
	}
	return res, nil
}

// insertEvent inserts k into the sorted event list if absent.
func insertEvent(events []int64, k int64) []int64 {
	i := 0
	for i < len(events) && events[i] < k {
		i++
	}
	if i < len(events) && events[i] == k {
		return events
	}
	events = append(events, 0)
	copy(events[i+1:], events[i:])
	events[i] = k
	return events
}

// ServedMinimizeResult is a shrunken served reproducer.
type ServedMinimizeResult struct {
	TenantOps [][]Op
	Violation Violation // a witness violation of the minimal workloads
	Runs      int       // total served campaign executions spent minimizing
}

// ServedMinimize requires cfg to violate (ServedExplore finds at least
// one breach) and shrinks the tenant workloads while it still does:
// first by emptying whole tenants, then ddmin within each remaining
// tenant's ops. Tenant count and order are preserved (emptied tenants
// keep their slot) so tenant indices in violation messages stay stable.
// Keep cfg.Sample modest — minimization trades per-candidate
// exhaustiveness for many candidates.
func ServedMinimize(cfg ServedExploreConfig) (*ServedMinimizeResult, error) {
	res := &ServedMinimizeResult{}
	test := func(tenantOps [][]Op) (*Violation, error) {
		sub := cfg
		sub.TenantOps = tenantOps
		r, err := ServedExplore(sub)
		if err != nil {
			return nil, err
		}
		res.Runs += r.Runs
		if len(r.Violations) > 0 {
			// Pin the witness event so a sampled re-sweep of the next
			// candidate cannot miss it.
			if ev := r.Violations[0].Event; ev > 0 {
				cfg.Include = appendEventOnce(cfg.Include, ev)
			}
			return &r.Violations[0], nil
		}
		return nil, nil
	}

	cur := cfg.TenantOps
	if cur == nil {
		t, n := cfg.Tenants, cfg.OpsPerTenant
		if t <= 0 {
			t = 3
		}
		if n <= 0 {
			n = 12
		}
		cur = servedWorkloads(cfg.Seed, t, n)
	}
	cur = copyTenantOps(cur)
	witness, err := test(cur)
	if err != nil {
		return nil, err
	}
	if witness == nil {
		return nil, fmt.Errorf("crash: served campaign does not violate; nothing to minimize")
	}

	// Pass 1: empty whole tenants.
	for i := range cur {
		if len(cur[i]) == 0 {
			continue
		}
		cand := copyTenantOps(cur)
		cand[i] = nil
		v, err := test(cand)
		if err != nil {
			return nil, err
		}
		if v != nil {
			cur, witness = cand, v
		}
	}

	// Pass 2: ddmin within each remaining tenant.
	for i := range cur {
		for chunk := (len(cur[i]) + 1) / 2; chunk >= 1; {
			removed := false
			for start := 0; start+chunk <= len(cur[i]); {
				cand := copyTenantOps(cur)
				ops := make([]Op, 0, len(cur[i])-chunk)
				ops = append(ops, cur[i][:start]...)
				ops = append(ops, cur[i][start+chunk:]...)
				cand[i] = sanitizeServedOps(ops)
				v, err := test(cand)
				if err != nil {
					return nil, err
				}
				if v != nil {
					cur, witness, removed = cand, v, true
					// Re-scan from the same position on the shrunken list.
					continue
				}
				start += chunk
			}
			if !removed {
				chunk /= 2
			} else if chunk > len(cur[i]) {
				chunk = len(cur[i])
			}
		}
	}
	res.TenantOps = cur
	res.Violation = *witness
	return res, nil
}

// sanitizeServedOps rewrites a ddmin candidate into a well-formed served
// workload. Deleting ops from a workload can orphan later ops — an
// unlink whose create was removed, a file inside a removed mkdir, an
// append whose offset no longer matches the file's size — and the
// runner (rightly) treats those as hard errors, not guarantee
// violations. Dropping the orphans and re-basing append offsets keeps
// every candidate executable while preserving the surviving operations.
// Valid workloads pass through unchanged, so sanitizing is idempotent.
func sanitizeServedOps(ops []Op) []Op {
	dirs := map[string]bool{"": true}
	exists := map[string]bool{}
	sizes := map[string]int64{}
	parentOK := func(p string) bool {
		i := strings.LastIndex(p, "/")
		return i >= 0 && dirs[p[:i]]
	}
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case OpMkdir:
			if !parentOK(op.Path) {
				continue
			}
			dirs[op.Path] = true
		case OpCreate:
			if !parentOK(op.Path) {
				continue
			}
			exists[op.Path] = true
		case OpWrite:
			if !parentOK(op.Path) {
				continue
			}
			op.Off = sizes[op.Path] // re-base the positional append
			exists[op.Path] = true
			sizes[op.Path] += int64(len(op.Data))
		case OpRename:
			if !exists[op.Path] || !parentOK(op.Path2) {
				continue
			}
			delete(exists, op.Path)
			exists[op.Path2] = true
			sizes[op.Path2] = sizes[op.Path]
			delete(sizes, op.Path)
		case OpUnlink:
			if !exists[op.Path] {
				continue
			}
			delete(exists, op.Path)
			delete(sizes, op.Path)
		}
		out = append(out, op)
	}
	return out
}

func copyTenantOps(t [][]Op) [][]Op {
	out := make([][]Op, len(t))
	for i := range t {
		out[i] = append([]Op(nil), t[i]...)
	}
	return out
}

func appendEventOnce(events []int64, k int64) []int64 {
	for _, e := range events {
		if e == k {
			return events
		}
	}
	return append(events, k)
}
