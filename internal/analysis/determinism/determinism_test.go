package determinism_test

import (
	"testing"

	"splitfs/internal/analysis/analysistest"
	"splitfs/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), determinism.Analyzer,
		"dettest", "detuser", "server")
}

func TestDeterministicPredicate(t *testing.T) {
	for path, want := range map[string]bool{
		"splitfs/internal/pmem":                 true,
		"splitfs/internal/crash":                true,
		"splitfs/internal/harness":              true,
		"splitfs/internal/wl":                   true,
		"splitfs/internal/apps":                 true,
		"splitfs/internal/splitfs":              true,
		"splitfs/internal/server":               false,
		"splitfs/internal/benchfmt":             false,
		"splitfs/internal/analysis":             false,
		"splitfs/internal/analysis/determinism": false,
		"splitfs/cmd/splitfs-bench":             false,
	} {
		if got := determinism.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
