package splitfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// The paper's §3.5 multi-thread claims: a lock-free queue manages staging
// files, fine-grained locks protect open-file metadata, and concurrent
// threads CAS the op-log tail. These tests drive U-Split from many
// goroutines and check integrity.

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, fs := newEnv(t, mode)
			const goroutines = 8
			const writes = 40
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					path := fmt.Sprintf("/w%d", g)
					f, err := fs.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE, 0644)
					if err != nil {
						errs <- err
						return
					}
					chunk := bytes.Repeat([]byte{byte(g + 1)}, 257)
					for i := 0; i < writes; i++ {
						if _, err := f.Write(chunk); err != nil {
							errs <- fmt.Errorf("writer %d: %w", g, err)
							return
						}
					}
					if err := f.Sync(); err != nil {
						errs <- err
						return
					}
					errs <- f.Close()
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			// Every file intact.
			for g := 0; g < goroutines; g++ {
				got, err := vfs.ReadFile(fs, fmt.Sprintf("/w%d", g))
				if err != nil {
					t.Fatal(err)
				}
				want := bytes.Repeat(bytes.Repeat([]byte{byte(g + 1)}, 257), writes)
				if !bytes.Equal(got, want) {
					t.Fatalf("writer %d corrupted: %d bytes", g, len(got))
				}
			}
		})
	}
}

func TestConcurrentReadersSharedFile(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	want := bytes.Repeat([]byte("shared"), 10000)
	if err := vfs.WriteFile(fs, "/shared", want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := vfs.Open(fs, "/shared")
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			buf := make([]byte, 1000)
			for i := 0; i < 30; i++ {
				off := (int64(g*997+i*31) * 53) % int64(len(want)-1000)
				if _, err := f.ReadAt(buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, want[off:off+1000]) {
					errs <- fmt.Errorf("reader %d: corruption at %d", g, off)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentStrictLoggers(t *testing.T) {
	// Concurrent strict-mode appenders to distinct files share one op
	// log; entries must all be recoverable.
	dev, fs := newEnv(t, Strict)
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := fs.OpenFile(fmt.Sprintf("/log%d", g), vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for i := 0; i < 20; i++ {
				if _, err := f.Write([]byte(fmt.Sprintf("g%d-%04d;", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
			// No fsync: recovery must replay.
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := dev.Crash(sim.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, _, err := RecoverFS(kfs2, Config{Mode: Strict,
		StagingFiles: 4, StagingFileBytes: 2 << 20, OpLogBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		got, err := vfs.ReadFile(fs2, fmt.Sprintf("/log%d", g))
		if err != nil {
			t.Fatalf("goroutine %d file lost: %v", g, err)
		}
		want := &bytes.Buffer{}
		for i := 0; i < 20; i++ {
			fmt.Fprintf(want, "g%d-%04d;", g, i)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("goroutine %d content wrong after recovery (%d bytes)", g, len(got))
		}
	}
}
