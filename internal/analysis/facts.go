package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
)

// Fact serialization, used by the `go vet -vettool` protocol: each
// package's analysis runs in its own process, so facts travel through
// the .vetx files cmd/go threads between them. A store serializes to a
// JSON array and merges additively on load — a vetx snapshot may
// include facts for shared dependencies, so merging must be idempotent:
// booleans or, strings overwrite, and slice/edge sets union.
//
// Fact values are therefore restricted to four shapes: bool, string,
// []string, and map[string][]string. EncodeTo fails loudly on anything
// else so a new analyzer cannot silently break vettool mode.

type factRecord struct {
	K string          `json:"k"`
	T string          `json:"t"`
	V json.RawMessage `json:"v"`
}

// EncodeTo writes the store's full contents as JSON.
func (s *FactStore) EncodeTo(w io.Writer) error {
	records := make([]factRecord, 0, len(s.m))
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		var t string
		switch s.m[k].(type) {
		case bool:
			t = "b"
		case string:
			t = "s"
		case []string:
			t = "ss"
		case map[string][]string:
			t = "m"
		default:
			return fmt.Errorf("analysis: fact %q has unsupported type %T", k, s.m[k])
		}
		v, err := json.Marshal(s.m[k])
		if err != nil {
			return err
		}
		records = append(records, factRecord{K: k, T: t, V: v})
	}
	return json.NewEncoder(w).Encode(records)
}

// MergeFrom loads a serialized store, merging into the receiver.
func (s *FactStore) MergeFrom(r io.Reader) error {
	var records []factRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return err
	}
	for _, rec := range records {
		var v any
		switch rec.T {
		case "b":
			var b bool
			if err := json.Unmarshal(rec.V, &b); err != nil {
				return err
			}
			v = b
		case "s":
			var str string
			if err := json.Unmarshal(rec.V, &str); err != nil {
				return err
			}
			v = str
		case "ss":
			var ss []string
			if err := json.Unmarshal(rec.V, &ss); err != nil {
				return err
			}
			v = ss
		case "m":
			var m map[string][]string
			if err := json.Unmarshal(rec.V, &m); err != nil {
				return err
			}
			v = m
		default:
			return fmt.Errorf("analysis: fact %q has unknown wire type %q", rec.K, rec.T)
		}
		s.merge(rec.K, v)
	}
	return nil
}

// merge combines an incoming fact with any existing value for the key.
func (s *FactStore) merge(key string, v any) {
	old, ok := s.m[key]
	if !ok {
		s.m[key] = v
		return
	}
	switch nv := v.(type) {
	case bool:
		if ov, ok := old.(bool); ok {
			s.m[key] = ov || nv
			return
		}
	case []string:
		if ov, ok := old.([]string); ok {
			s.m[key] = unionStrings(ov, nv)
			return
		}
	case map[string][]string:
		if ov, ok := old.(map[string][]string); ok {
			for k, edges := range nv {
				ov[k] = unionStrings(ov[k], edges)
			}
			return
		}
	}
	s.m[key] = v
}

func unionStrings(a, b []string) []string {
	out := slices.Clone(a)
	for _, x := range b {
		if !slices.Contains(out, x) {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}
