// Package journal implements a JBD2-style physical redo journal, the
// mechanism ext4 DAX (K-Split in the paper) uses for metadata atomicity —
// and the mechanism SplitFS's relink primitive piggybacks on (§3.3:
// "Atomicity is ensured by wrapping the changes in a ext4 journal
// transaction").
//
// Operation: callers stage metadata mutations with ordinary cached stores
// to their home locations and Note() the ranges in a transaction. Commit
// then
//
//  1. writes a descriptor block listing the touched home blocks,
//  2. writes a full 4 KB journal copy of every touched block (this
//     full-block logging is what makes ext4 metadata-heavy, a cost the
//     paper measures in Table 1),
//  3. fences, writes a checksummed commit block, fences,
//  4. flushes the home locations and fences (checkpoint),
//  5. advances the journal tail.
//
// A crash between (3) and (4) is repaired on Load by replaying committed
// transactions; anything not yet committed is discarded by the pmem
// crash model, leaving the previous consistent state.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

const (
	descMagic   = 0x4a424432 // "JBD2"
	commitMagic = 0x434f4d54 // "COMT"

	// maxBlocksPerTx bounds a transaction to what one descriptor block can
	// describe.
	maxBlocksPerTx = 255

	superSize = 64 // journal superblock: magic, seq, tail index
)

// ErrTooLarge is returned when a transaction touches more distinct blocks
// than one descriptor can hold.
var ErrTooLarge = errors.New("journal: transaction exceeds descriptor capacity")

// ErrFull is returned when the journal region cannot hold a transaction
// even when empty.
var ErrFull = errors.New("journal: region too small for transaction")

// Stats count journal activity.
type Stats struct {
	Commits      int64
	BlocksLogged int64 // full 4 KB block images written to the journal
	Replayed     int64 // transactions replayed at Load time
}

// Journal is a circular physical redo log on a PM device region.
type Journal struct {
	dev   *pmem.Device
	start int64 // device byte offset of the journal region
	nblk  int64 // capacity in 4 KB blocks (including the superblock)

	mu      sync.Mutex
	seq     uint64
	head    int64 // next journal block index to write (1-based; 0 is the superblock)
	tail    int64 // oldest live journal block index
	tailSeq uint64
	stats   Stats
}

// Blocks returns the number of 4 KB blocks a journal region of size bytes
// provides.
func Blocks(bytes int64) int64 { return bytes / sim.BlockSize }

// New formats a journal in [start, start+nblk*4K) and persists the empty
// superblock. nblk must be at least 8.
func New(dev *pmem.Device, start, nblk int64) *Journal {
	if nblk < 8 {
		panic("journal: region too small")
	}
	j := &Journal{dev: dev, start: start, nblk: nblk, seq: 1, head: 1, tail: 1, tailSeq: 1}
	j.writeSuper()
	return j
}

// Load mounts an existing journal, replaying any committed-but-not-
// checkpointed transactions. It returns the journal and the number of
// transactions replayed.
func Load(dev *pmem.Device, start, nblk int64) (*Journal, int, error) {
	j := &Journal{dev: dev, start: start, nblk: nblk}
	super := make([]byte, superSize)
	dev.ReadAt(super, start, sim.CatJournal)
	if binary.LittleEndian.Uint32(super[0:4]) != descMagic {
		return nil, 0, fmt.Errorf("journal: bad superblock magic %#x",
			binary.LittleEndian.Uint32(super[0:4]))
	}
	j.tailSeq = binary.LittleEndian.Uint64(super[8:16])
	j.tail = int64(binary.LittleEndian.Uint64(super[16:24]))
	j.seq = j.tailSeq
	j.head = j.tail
	replayed := 0
	for {
		n, err := j.replayOne()
		if err != nil || n == 0 {
			break
		}
		replayed++
	}
	j.stats.Replayed = int64(replayed)
	// Everything replayed is durable; reset to empty.
	j.tail = j.head
	j.tailSeq = j.seq
	j.writeSuper()
	return j, replayed, nil
}

func (j *Journal) blockOff(idx int64) int64 { return j.start + idx*sim.BlockSize }

// wrap advances a journal block index, skipping the superblock at 0.
func (j *Journal) wrap(idx int64) int64 {
	if idx >= j.nblk {
		return 1
	}
	return idx
}

func (j *Journal) writeSuper() {
	super := make([]byte, superSize)
	binary.LittleEndian.PutUint32(super[0:4], descMagic)
	binary.LittleEndian.PutUint64(super[8:16], j.tailSeq)
	binary.LittleEndian.PutUint64(super[16:24], uint64(j.tail))
	j.dev.PersistNT(j.start, super, sim.CatJournal)
}

// Tx is a running transaction. Not safe for concurrent use; the journal
// serializes commits internally.
type Tx struct {
	j      *Journal
	ranges []blockRange
	closed bool
}

type blockRange struct {
	off int64
	n   int
}

// Begin opens a transaction. Per-operation handle costs (jbd2
// journal_start/stop) are charged by the file system, not here, since a
// running transaction batches many operations.
func (j *Journal) Begin() *Tx {
	return &Tx{j: j}
}

// Note records that the caller has modified [off, off+n) of the device
// with cached stores; the covering 4 KB blocks join the transaction.
func (tx *Tx) Note(off int64, n int) {
	if tx.closed {
		panic("journal: Note on committed transaction")
	}
	if n <= 0 {
		return
	}
	tx.ranges = append(tx.ranges, blockRange{off: off, n: n})
}

// homeBlocks returns the deduplicated, sorted device block offsets touched
// by the transaction.
func (tx *Tx) homeBlocks() []int64 {
	seen := make(map[int64]bool)
	var blocks []int64
	for _, r := range tx.ranges {
		first := r.off / sim.BlockSize
		last := (r.off + int64(r.n) - 1) / sim.BlockSize
		for b := first; b <= last; b++ {
			if !seen[b] {
				seen[b] = true
				blocks = append(blocks, b*sim.BlockSize)
			}
		}
	}
	return blocks
}

// Commit durably applies the transaction. On return, every noted range is
// persistent and the journal entry is already checkpointed. An empty
// transaction is free of journal IO.
func (tx *Tx) Commit() error {
	if tx.closed {
		panic("journal: double commit")
	}
	tx.closed = true
	blocks := tx.homeBlocks()
	if len(blocks) == 0 {
		return nil
	}
	if len(blocks) > maxBlocksPerTx {
		return ErrTooLarge
	}
	j := tx.j
	j.mu.Lock()
	defer j.mu.Unlock()

	need := int64(len(blocks)) + 2 // descriptor + images + commit
	if need > j.nblk-1 {
		return ErrFull
	}
	// Per-commit checkpointing (home flushed at the end of every commit)
	// means all earlier entries are reclaimable: reset to an empty journal
	// if this transaction would wrap.
	if j.head+need > j.nblk {
		j.tail = 1
		j.head = 1
		j.tailSeq = j.seq
		j.writeSuper()
	}

	// 1. Descriptor block.
	desc := make([]byte, sim.BlockSize)
	binary.LittleEndian.PutUint32(desc[0:4], descMagic)
	binary.LittleEndian.PutUint64(desc[8:16], j.seq)
	binary.LittleEndian.PutUint32(desc[16:20], uint32(len(blocks)))
	for i, b := range blocks {
		binary.LittleEndian.PutUint64(desc[32+i*8:40+i*8], uint64(b))
	}
	idx := j.head
	j.dev.StoreNT(j.blockOff(idx), desc, sim.CatJournal)
	idx = j.wrap(idx + 1)

	// 2. Full block images, read back at cache speed from the volatile
	// view (the caller already stored its mutations there).
	img := make([]byte, sim.BlockSize)
	h := newChecksum(j.seq)
	for _, b := range blocks {
		j.dev.Peek(img, b)
		h.update(img)
		j.dev.StoreNT(j.blockOff(idx), img, sim.CatJournal)
		idx = j.wrap(idx + 1)
		j.stats.BlocksLogged++
	}
	// 3. Order images before the commit record.
	j.dev.Fence()
	commit := make([]byte, sim.BlockSize)
	binary.LittleEndian.PutUint32(commit[0:4], commitMagic)
	binary.LittleEndian.PutUint64(commit[8:16], j.seq)
	binary.LittleEndian.PutUint32(commit[16:20], h.sum())
	j.dev.StoreNT(j.blockOff(idx), commit, sim.CatJournal)
	j.dev.Fence()
	idx = j.wrap(idx + 1)

	// 4. Checkpoint: flush home locations so the entry can be reclaimed.
	// Each touched block is flushed once, however many times it was
	// noted (jbd2 checkpoints each buffer once).
	for _, b := range blocks {
		j.dev.Flush(b, sim.BlockSize, sim.CatPMMeta)
	}
	j.dev.Fence()

	// 5. Advance the tail past this entry.
	j.seq++
	j.head = idx
	j.tail = idx
	j.tailSeq = j.seq
	j.writeSuper()
	j.stats.Commits++
	return nil
}

// replayOne replays the transaction at the tail, if valid and committed.
// Returns the number of blocks restored (0 when the scan hits the end of
// the log).
func (j *Journal) replayOne() (int, error) {
	desc := make([]byte, sim.BlockSize)
	idx := j.head
	j.dev.ReadAt(desc, j.blockOff(idx), sim.CatJournal)
	if binary.LittleEndian.Uint32(desc[0:4]) != descMagic {
		return 0, nil
	}
	seq := binary.LittleEndian.Uint64(desc[8:16])
	if seq != j.seq {
		return 0, nil
	}
	count := int(binary.LittleEndian.Uint32(desc[16:20]))
	if count == 0 || count > maxBlocksPerTx {
		return 0, nil
	}
	if int64(count)+2 > j.nblk-1 {
		return 0, nil
	}
	homes := make([]int64, count)
	for i := range homes {
		homes[i] = int64(binary.LittleEndian.Uint64(desc[32+i*8 : 40+i*8]))
	}
	// Read images and verify against the commit record before applying.
	images := make([][]byte, count)
	h := newChecksum(seq)
	idx = j.wrap(idx + 1)
	for i := 0; i < count; i++ {
		img := make([]byte, sim.BlockSize)
		j.dev.ReadAt(img, j.blockOff(idx), sim.CatJournal)
		h.update(img)
		images[i] = img
		idx = j.wrap(idx + 1)
	}
	commit := make([]byte, sim.BlockSize)
	j.dev.ReadAt(commit, j.blockOff(idx), sim.CatJournal)
	if binary.LittleEndian.Uint32(commit[0:4]) != commitMagic ||
		binary.LittleEndian.Uint64(commit[8:16]) != seq ||
		binary.LittleEndian.Uint32(commit[16:20]) != h.sum() {
		return 0, nil
	}
	idx = j.wrap(idx + 1)
	// Valid: restore the block images to their home locations.
	for i, home := range homes {
		j.dev.StoreNT(home, images[i], sim.CatPMMeta)
	}
	j.dev.Fence()
	j.seq = seq + 1
	j.head = idx
	return count, nil
}

// Stats returns journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// checksum is a small FNV-1a accumulator for commit-record validation.
type checksum struct{ h uint64 }

func newChecksum(seed uint64) *checksum {
	return &checksum{h: 0xcbf29ce484222325 ^ seed}
}

func (c *checksum) update(p []byte) {
	h := c.h
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	c.h = h
}

func (c *checksum) sum() uint32 { return uint32(c.h ^ c.h>>32) }
