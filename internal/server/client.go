package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"splitfs/internal/vfs"
)

// transport is how a Client reaches a server: either the deterministic
// in-process loopback or a framed byte stream.
type transport interface {
	// call issues one request and returns the matching reply frame.
	call(typ uint8, payload []byte) (uint8, []byte, error)
	close() error
}

// Client is a connected session implementing vfs.FileSystem, so every
// workload in the repository runs unmodified through the service.
type Client struct {
	t      transport
	fsName string
}

// File is a served file handle. All state (offset included) lives
// server-side; File is a thin proxy, so semantics — O_APPEND writes,
// shared-offset dup behavior, EOF — are exactly the backend's own.
type File struct {
	c      *Client
	handle uint64
	path   string
}

// ShortIOError reports a chunked read or write whose transport failed
// partway: Acked bytes completed (their replies arrived) before the
// chunk of InFlight bytes went unanswered. Without the counts a caller
// would read a mid-transfer disconnect as "nothing happened", when in
// fact the server may hold every acked byte — and may even have applied
// the in-flight chunk whose reply was lost. Unwrap exposes the
// transport error, so errors.Is against the underlying failure holds.
type ShortIOError struct {
	Op       string // "read" or "write"
	Path     string
	Acked    int // bytes confirmed by replies
	InFlight int // bytes of the chunk whose reply never arrived
	Err      error
}

func (e *ShortIOError) Error() string {
	return fmt.Sprintf("server: short %s on %s: %d bytes acked, %d in flight: %v",
		e.Op, e.Path, e.Acked, e.InFlight, e.Err)
}

func (e *ShortIOError) Unwrap() error { return e.Err }

// call checks the request encoder, unwraps Rerror replies, and checks
// the reply type. e may be nil for bodyless requests.
func (c *Client) call(typ uint8, want uint8, e *enc) ([]byte, error) {
	var payload []byte
	if e != nil {
		if e.err != nil {
			return nil, e.err
		}
		payload = e.b
	}
	rtyp, rp, err := c.t.call(typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp == rError {
		return nil, decodeError(rp)
	}
	if rtyp != want {
		return nil, fmt.Errorf("%w: %s reply to %s", errUnexpectedReply, msgName(rtyp), msgName(typ))
	}
	return rp, nil
}

// Name identifies the stack: "served:" + the backend's own name.
func (c *Client) Name() string { return "served:" + c.fsName }

// OpenFile opens path (relative to the session root) on the server and
// returns a proxy handle.
func (c *Client) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	var e enc
	e.u32(uint32(flag))
	e.u32(perm)
	e.str(path)
	rp, err := c.call(tOpen, rOpen, &e)
	if err != nil {
		return nil, err
	}
	d := dec{b: rp}
	h := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	return &File{c: c, handle: h, path: path}, nil
}

func (c *Client) pathOp(typ, want uint8, path string) error {
	var e enc
	e.str(path)
	_, err := c.call(typ, want, &e)
	return err
}

// Mkdir implements vfs.FileSystem.
func (c *Client) Mkdir(path string, perm uint32) error {
	var e enc
	e.u32(perm)
	e.str(path)
	_, err := c.call(tMkdir, rMkdir, &e)
	return err
}

// Unlink implements vfs.FileSystem.
func (c *Client) Unlink(path string) error { return c.pathOp(tUnlink, rUnlink, path) }

// Rmdir implements vfs.FileSystem.
func (c *Client) Rmdir(path string) error { return c.pathOp(tRmdir, rRmdir, path) }

// Rename implements vfs.FileSystem.
func (c *Client) Rename(oldPath, newPath string) error {
	var e enc
	e.str(oldPath)
	e.str(newPath)
	_, err := c.call(tRename, rRename, &e)
	return err
}

// Stat implements vfs.FileSystem.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var e enc
	e.str(path)
	rp, err := c.call(tStat, rStat, &e)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	d := dec{b: rp}
	fi := d.fileInfo()
	return fi, d.err
}

// ReadDir implements vfs.FileSystem.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var e enc
	e.str(path)
	rp, err := c.call(tReadDir, rReadDir, &e)
	if err != nil {
		return nil, err
	}
	d := dec{b: rp}
	n := int(d.u32())
	ents := make([]vfs.DirEntry, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		de := vfs.DirEntry{Name: d.str(), Ino: d.u64()}
		de.IsDir = d.u8() == 1
		ents = append(ents, de)
	}
	if d.err != nil {
		return nil, d.err
	}
	return ents, nil
}

// SyncAll asks the server for a group sync: the backend's own SyncAll
// when it has one (splitfs's group-committed multi-file drain), else a
// per-handle sync of this session's open files in path order.
func (c *Client) SyncAll() error {
	_, err := c.call(tSyncAll, rSyncAll, nil)
	return err
}

// Close detaches the session (the server closes any handles left open)
// and releases the transport.
func (c *Client) Close() error {
	_, derr := c.call(tDetach, rDetach, nil)
	cerr := c.t.close()
	if derr != nil {
		return derr
	}
	return cerr
}

// ---------------------------------------------------------------------
// File proxy.

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

func (f *File) handleOp(typ, want uint8) error {
	var e enc
	e.u64(f.handle)
	_, err := f.c.call(typ, want, &e)
	return err
}

// Read reads at the server-side handle offset.
func (f *File) Read(p []byte) (int, error) { return f.readLoop(tRead, rRead, p, -1) }

// ReadAt is positional (pread).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	return f.readLoop(tPread, rPread, p, off)
}

// readLoop chunks a read through bounded frames. off < 0 selects the
// handle-offset variant; EOF after at least one byte reads as a short
// read (the io contract every backend here follows).
func (f *File) readLoop(typ, want uint8, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > chunkBytes {
			n = chunkBytes
		}
		var e enc
		e.u64(f.handle)
		if off >= 0 {
			e.i64(off + int64(total))
		}
		e.u32(uint32(n))
		rp, err := f.c.call(typ, want, &e)
		if err != nil {
			if err == io.EOF && total > 0 {
				return total, nil
			}
			if errors.Is(err, errConnLost) {
				return total, &ShortIOError{Op: "read", Path: f.path, Acked: total, InFlight: n, Err: err}
			}
			return total, err
		}
		d := dec{b: rp}
		data := d.bytes()
		if d.err != nil {
			return total, d.err
		}
		copy(p[total:], data)
		total += len(data)
		if len(data) < n {
			break // the backend clamped at EOF
		}
	}
	return total, nil
}

// Write writes at the server-side handle offset (EOF under O_APPEND).
func (f *File) Write(p []byte) (int, error) { return f.writeLoop(tWrite, rWrite, p, -1) }

// WriteAt is positional (pwrite).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	return f.writeLoop(tPwrite, rPwrite, p, off)
}

func (f *File) writeLoop(typ, want uint8, p []byte, off int64) (int, error) {
	total := 0
	for {
		n := len(p) - total
		if n > chunkBytes {
			n = chunkBytes
		}
		var e enc
		e.u64(f.handle)
		if off >= 0 {
			e.i64(off + int64(total))
		}
		e.bytes(p[total : total+n])
		rp, err := f.c.call(typ, want, &e)
		if err != nil {
			if errors.Is(err, errConnLost) {
				return total, &ShortIOError{Op: "write", Path: f.path, Acked: total, InFlight: n, Err: err}
			}
			return total, err
		}
		d := dec{b: rp}
		got := int(d.u32())
		if d.err != nil {
			return total, d.err
		}
		total += got
		if got < n || total >= len(p) {
			return total, nil
		}
	}
}

// Seek implements vfs.File (the offset lives server-side).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var e enc
	e.u64(f.handle)
	e.i64(offset)
	e.u8(uint8(whence))
	rp, err := f.c.call(tSeek, rSeek, &e)
	if err != nil {
		return 0, err
	}
	d := dec{b: rp}
	pos := d.i64()
	return pos, d.err
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	var e enc
	e.u64(f.handle)
	e.i64(size)
	_, err := f.c.call(tTruncate, rTruncate, &e)
	return err
}

// Sync implements vfs.File (fsync through the service).
func (f *File) Sync() error { return f.handleOp(tFsync, rFsync) }

// Close implements vfs.File.
func (f *File) Close() error { return f.handleOp(tClose, rClose) }

// Stat implements vfs.File (fstat on the server-side handle, so it
// works on orphaned — unlinked-while-open — files too).
func (f *File) Stat() (vfs.FileInfo, error) {
	var e enc
	e.u64(f.handle)
	rp, err := f.c.call(tFstat, rFstat, &e)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	d := dec{b: rp}
	fi := d.fileInfo()
	return fi, d.err
}

// ---------------------------------------------------------------------
// Stream transport: frames over any io.ReadWriteCloser (unix socket,
// net.Pipe), with request-ID multiplexing so callers may pipeline.

type streamTransport struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	writeMu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan frameResp
	dead    error
}

type frameResp struct {
	typ     uint8
	payload []byte
}

// Dial attaches a session over a connected stream. root confines the
// session ("" or "/" = the backend's whole tree).
func Dial(rwc io.ReadWriteCloser, root string) (*Client, error) {
	t := &streamTransport{
		rwc:     rwc,
		br:      bufio.NewReaderSize(rwc, 64<<10),
		pending: make(map[uint32]chan frameResp),
	}
	// Attach synchronously before the demux loop starts.
	var e enc
	e.str(root)
	if e.err != nil {
		rwc.Close()
		return nil, e.err
	}
	if err := writeFrame(rwc, tAttach, 0, e.b); err != nil {
		rwc.Close()
		return nil, err
	}
	rtyp, _, rp, err := readFrame(t.br)
	if err != nil {
		rwc.Close()
		return nil, fmt.Errorf("server: attach: %w", err)
	}
	if rtyp == rError {
		rwc.Close()
		return nil, decodeError(rp)
	}
	if rtyp != rAttach {
		rwc.Close()
		return nil, fmt.Errorf("%w: attach reply %s", errUnexpectedReply, msgName(rtyp))
	}
	d := dec{b: rp}
	name := d.str()
	d.u64() // session id (diagnostic)
	if d.err != nil {
		rwc.Close()
		return nil, d.err
	}
	go t.readLoop()
	return &Client{t: t, fsName: name}, nil
}

// DialNet connects to a network address (cmd tools use unix sockets).
func DialNet(network, addr, root string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return Dial(c, root)
}

// readLoop demultiplexes replies to their waiting callers.
func (t *streamTransport) readLoop() {
	for {
		typ, reqID, payload, err := readFrame(t.br)
		if err != nil {
			t.fail(err)
			return
		}
		t.mu.Lock()
		ch, ok := t.pending[reqID]
		delete(t.pending, reqID)
		t.mu.Unlock()
		if ok {
			ch <- frameResp{typ: typ, payload: payload}
		}
	}
}

// fail poisons the transport: every outstanding and future call errors
// with an errConnLost chain, so callers (and the File proxies above)
// can classify the loss with errors.Is.
func (t *streamTransport) fail(err error) {
	t.mu.Lock()
	if t.dead == nil {
		t.dead = fmt.Errorf("%w: %w", errConnLost, err)
	}
	pending := t.pending
	t.pending = make(map[uint32]chan frameResp)
	t.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

func (t *streamTransport) call(typ uint8, payload []byte) (uint8, []byte, error) {
	ch := make(chan frameResp, 1)
	// ID assignment and the frame write happen under one critical
	// section (lock order writeMu then mu): if they were split, two
	// pipelined callers could assign IDs in one order and write frames
	// in the other, and the server — which executes a session FIFO in
	// arrival order — would run them in an order that contradicts the
	// IDs. Request IDs are the replay log's sequence numbers, so they
	// must agree with execution order.
	t.writeMu.Lock()
	t.mu.Lock()
	if t.dead != nil {
		err := t.dead
		t.mu.Unlock()
		t.writeMu.Unlock()
		return 0, nil, err
	}
	t.nextID++
	id := t.nextID
	t.pending[id] = ch
	t.mu.Unlock()
	err := writeFrame(t.rwc, typ, id, payload)
	t.writeMu.Unlock()
	if err != nil {
		// A partial frame is unrecoverable on a shared stream: poison the
		// transport (wrapping the cause) rather than hand back a raw error
		// that hides the connection's death from the next caller.
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
		t.fail(err)
		t.rwc.Close()
		t.mu.Lock()
		dead := t.dead
		t.mu.Unlock()
		return 0, nil, dead
	}
	resp, ok := <-ch
	if !ok {
		t.mu.Lock()
		err := t.dead
		t.mu.Unlock()
		return 0, nil, err
	}
	return resp.typ, resp.payload, nil
}

func (t *streamTransport) close() error {
	err := t.rwc.Close()
	t.fail(io.ErrClosedPipe)
	return err
}

// ---------------------------------------------------------------------
// Loopback transport: the deterministic in-memory pair. Each call is
// encoded, framed, dispatched, and decoded inline on the caller's
// goroutine — no channels, no goroutines — so a single-session served
// stack issues the exact backend-operation sequence a direct caller
// would, and the crash harness's persistence-event streams stay
// bit-identical. The wire and session layers are fully exercised; only
// the dispatcher is bypassed (FIFO ordering is trivially the caller's
// program order).

type loopbackTransport struct {
	s  *Session
	mu sync.Mutex // reqID + the one-frame "wire"
	id uint32
}

// NewLoopback attaches a deterministic in-process session to srv.
func NewLoopback(srv *Server, root string) (*Client, error) {
	s, err := srv.attach(root, nil, false)
	if err != nil {
		return nil, err
	}
	return &Client{t: &loopbackTransport{s: s}, fsName: srv.fs.Name()}, nil
}

func (t *loopbackTransport) call(typ uint8, payload []byte) (uint8, []byte, error) {
	// A detached session (Client.Close, Server.Close) must reject
	// further calls, like the stream transport's dead-connection check —
	// operating on it would insert handles no teardown will ever close.
	if t.s.detached() {
		return 0, nil, &RemoteError{Code: codeClosed, Msg: "server: session detached"}
	}
	t.mu.Lock()
	t.id++
	id := t.id
	t.mu.Unlock()
	// Round-trip through the real framing so the codec path is identical
	// to the stream transport's.
	var buf loopbackBuf
	if err := writeFrame(&buf, typ, id, payload); err != nil {
		return 0, nil, err
	}
	rtyp, rid, rp, err := readFrame(&buf)
	if err != nil {
		return 0, nil, err
	}
	rtyp, rid, rp = t.s.handle(rtyp, rid, rp)
	buf = loopbackBuf{}
	if err := writeFrame(&buf, rtyp, rid, rp); err != nil {
		return 0, nil, err
	}
	rtyp, _, rp, err = readFrame(&buf)
	if err != nil {
		return 0, nil, err
	}
	return rtyp, rp, nil
}

func (t *loopbackTransport) close() error {
	t.s.teardown()
	return nil
}

// loopbackBuf is a minimal in-memory byte pipe for one frame.
type loopbackBuf struct{ b []byte }

func (l *loopbackBuf) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

func (l *loopbackBuf) Read(p []byte) (int, error) {
	if len(l.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, l.b)
	l.b = l.b[n:]
	return n, nil
}
