package harness

import (
	"testing"
)

func TestConcurrentRunners(t *testing.T) {
	for _, kind := range []string{"ext4-dax", "splitfs-posix", "splitfs-strict"} {
		a, err := RunConcurrentAppends(kind, 2, 64, 4096)
		if err != nil {
			t.Fatalf("%s appends: %v", kind, err)
		}
		if a.Ops != 128 || a.WallNs <= 0 || a.SimNs <= 0 {
			t.Fatalf("%s appends: implausible result %+v", kind, a)
		}
		r, err := RunConcurrentReads(kind, 2, 64, 4096)
		if err != nil {
			t.Fatalf("%s reads: %v", kind, err)
		}
		if r.Ops != 128 || r.WallNs <= 0 {
			t.Fatalf("%s reads: implausible result %+v", kind, r)
		}
		w, err := RunConcurrentWAL(kind, 2, 8)
		if err != nil {
			t.Fatalf("%s wal: %v", kind, err)
		}
		if w.Ops != 16 || w.WallNs <= 0 {
			t.Fatalf("%s wal: implausible result %+v", kind, w)
		}
	}
}

func TestSetMaxThreads(t *testing.T) {
	defer func() { threadCounts = []int{1, 2, 4} }()
	SetMaxThreads(8)
	want := []int{1, 2, 4, 8}
	if len(threadCounts) != len(want) {
		t.Fatalf("threadCounts = %v, want %v", threadCounts, want)
	}
	for i := range want {
		if threadCounts[i] != want[i] {
			t.Fatalf("threadCounts = %v, want %v", threadCounts, want)
		}
	}
	SetMaxThreads(6)
	want = []int{1, 2, 4, 6}
	for i := range want {
		if threadCounts[i] != want[i] {
			t.Fatalf("threadCounts = %v, want %v", threadCounts, want)
		}
	}
	SetMaxThreads(1)
	if len(threadCounts) != 1 || threadCounts[0] != 1 {
		t.Fatalf("threadCounts = %v, want [1]", threadCounts)
	}
}
