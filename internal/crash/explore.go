package crash

import (
	"sort"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
)

// Explore is the persistence-event sweep: record the workload once to
// number its events, then crash at every (or a seeded sample of) event,
// recover, and check the mode's guarantee. With DoubleCrash it also
// crashes again inside each recovery.

// ExploreConfig configures a sweep.
type ExploreConfig struct {
	Mode splitfs.Mode
	Ops  []Op
	Seed uint64
	// Sample bounds how many first-crash events are tested (0 = all).
	// Sampling is deterministic in Seed.
	Sample int
	// DoubleCrash adds, for every tested event, second crashes inside the
	// recovery from that crash.
	DoubleCrash bool
	// DoubleSample bounds the second-crash events tested per recovery
	// (0 = 3).
	DoubleSample int
	// DevBytes sizes the PM device (default 32 MB).
	DevBytes int64
	// SkipFence, when set, is installed as the fence fault-injection hook
	// of every campaign in the sweep (see Campaign.SkipFence).
	SkipFence func(seq int64) bool
	// Include lists first-crash events that must be tested even when
	// Sample would not draw them (events outside the workload's window
	// are ignored). Minimization seeds this with the witness violation's
	// event so a sampled re-sweep cannot miss it.
	Include []int64
}

// Violation is one guarantee breach found by a sweep.
type Violation struct {
	Mode        splitfs.Mode
	Seed        uint64
	Event       int64 // first-crash persistence event (0 = boundary run)
	DoubleEvent int64 // second-crash event, when the breach needed one
	Msg         string
	// Flight carries the served stack's flight-recorder traces for the
	// generation that breached (served sweeps only; empty otherwise).
	Flight string
}

// ExploreResult summarizes a sweep.
type ExploreResult struct {
	// Window is the crashable event range (post-setup, end-of-workload].
	Window [2]int64
	// TotalEvents counts the events in the window; Tested how many were
	// crashed at; DoubleTested counts second-crash runs.
	TotalEvents  int64
	Tested       int
	DoubleTested int
	// ByKind/TestedByKind break the window's events and the tested events
	// down by coverage label — kind (store/storent/flush/fence), suffixed
	// with the event source for events issued by background pipeline
	// stages (e.g. "storent@relink", "fence@reclaim").
	ByKind       map[string]int64
	TestedByKind map[string]int64
	// UnknownKinds lists coverage labels built from event kinds or
	// sources this build does not know (a newer pmem added one without
	// updating the coverage tables). Consumers must surface these loudly
	// — silently bucketing an unknown kind would mean sweeping events
	// whose semantics nobody checked.
	UnknownKinds []string
	Violations   []Violation
	Runs         int // total campaign executions, recording run included
}

// kindLabel is the coverage-bucket name of one traced event.
func kindLabel(ev pmem.Event) string {
	s := ev.Kind.String()
	if ev.Src != pmem.SrcForeground {
		s += "@" + ev.Src.String()
	}
	return s
}

// Explore runs the sweep.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	res := &ExploreResult{ByKind: map[string]int64{}, TestedByKind: map[string]int64{}}

	// Recording run: no intra-op crash (boundary crash after everything,
	// which also validates the workload end state), full event trace.
	record, err := Run(Campaign{Mode: cfg.Mode, Ops: cfg.Ops, CrashAfter: len(cfg.Ops),
		Seed: cfg.Seed, DevBytes: cfg.DevBytes, Trace: true, SkipFence: cfg.SkipFence})
	if err != nil {
		return nil, err
	}
	res.Runs++
	if record.Violation != "" {
		res.Violations = append(res.Violations, Violation{
			Mode: cfg.Mode, Seed: cfg.Seed, Msg: record.Violation})
	}
	w0 := record.SysEvents[0]
	w1 := record.SysEvents[len(record.SysEvents)-1]
	res.Window = [2]int64{w0, w1}
	res.TotalEvents = w1 - w0
	kindOf := map[int64]string{}
	unknown := map[string]bool{}
	for _, ev := range record.Trace {
		if ev.Seq > w0 && ev.Seq <= w1 {
			label := kindLabel(ev)
			res.ByKind[label]++
			kindOf[ev.Seq] = label
			if !ev.Kind.Known() || !ev.Src.Known() {
				unknown[label] = true
			}
		}
	}
	for label := range unknown {
		res.UnknownKinds = append(res.UnknownKinds, label)
	}
	sort.Strings(res.UnknownKinds)

	events := sampleEvents(w0+1, w1, cfg.Sample, sim.NewRNG(mix(cfg.Seed, 0x5a)))
	for _, k := range cfg.Include {
		if k > w0 && k <= w1 {
			i := sort.Search(len(events), func(i int) bool { return events[i] >= k })
			if i == len(events) || events[i] != k {
				events = append(events, 0)
				copy(events[i+1:], events[i:])
				events[i] = k
			}
		}
	}
	dblSample := cfg.DoubleSample
	if dblSample <= 0 {
		dblSample = 3
	}
	for _, k := range events {
		r, err := Run(Campaign{Mode: cfg.Mode, Ops: cfg.Ops, Seed: mix(cfg.Seed, uint64(k)),
			CrashAtEvent: k, DevBytes: cfg.DevBytes, SkipFence: cfg.SkipFence})
		if err != nil {
			return nil, err
		}
		res.Runs++
		res.Tested++
		res.TestedByKind[kindOf[k]]++
		if r.Violation != "" {
			res.Violations = append(res.Violations, Violation{
				Mode: cfg.Mode, Seed: cfg.Seed, Event: k, Msg: r.Violation})
			continue
		}
		if !cfg.DoubleCrash {
			continue
		}
		// Sweep second crashes inside this recovery's event window.
		rng := sim.NewRNG(mix(cfg.Seed, uint64(k)^0xDD))
		for _, k2 := range sampleEvents(r.RecoveryStart+1, r.RecoveryEnd, dblSample, rng) {
			r2, err := Run(Campaign{Mode: cfg.Mode, Ops: cfg.Ops, Seed: mix(cfg.Seed, uint64(k)),
				CrashAtEvent: k, DoubleCrashEvent: k2, DevBytes: cfg.DevBytes,
				SkipFence: cfg.SkipFence})
			if err != nil {
				return nil, err
			}
			res.Runs++
			res.DoubleTested++
			if r2.Violation != "" {
				res.Violations = append(res.Violations, Violation{
					Mode: cfg.Mode, Seed: cfg.Seed, Event: k, DoubleEvent: k2, Msg: r2.Violation})
			}
		}
	}
	return res, nil
}

// sampleEvents returns up to max events from [lo, hi], all of them when
// max <= 0 or the range is small enough, otherwise a deterministic
// random sample (always including hi, the fully-quiesced end point).
func sampleEvents(lo, hi int64, max int, rng *sim.RNG) []int64 {
	n := hi - lo + 1
	if n <= 0 {
		return nil
	}
	if max <= 0 || int64(max) >= n {
		out := make([]int64, 0, n)
		for k := lo; k <= hi; k++ {
			out = append(out, k)
		}
		return out
	}
	picked := map[int64]bool{hi: true}
	for len(picked) < max {
		picked[lo+rng.Int63n(n)] = true
	}
	out := make([]int64, 0, len(picked))
	for k := range picked {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
