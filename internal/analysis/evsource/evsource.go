// Package evsource enforces the event-source restore discipline. The
// pmem device tags every persistence event with the current source
// (foreground, relink worker, reclaim, recovery); SetEventSource
// returns the previous tag precisely so callers can put it back:
//
//	prev := dev.SetEventSource(pmem.SrcRelinkWorker)
//	defer dev.SetEventSource(prev)
//
// A switch restored manually at the end of the function leaks the
// source on any early return or panic, and every event the caller
// emits afterwards is misattributed — crash-point schedules and event
// accounting silently shift. The analyzer therefore requires, per
// function or closure body in source order:
//
//   - a call whose result is saved must be matched by a deferred
//     SetEventSource call restoring that same variable;
//   - a call whose result is discarded is legal only under an
//     already-registered deferred restore (a mid-section retag);
//   - deferred calls themselves are always legal.
package evsource

import (
	"go/ast"
	"go/types"
	"strings"

	"splitfs/internal/analysis"
)

const name = "evsource"

// Analyzer is the evsource analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "require a deferred restore for every pmem SetEventSource switch",
	Run:  run,
}

type call struct {
	expr     *ast.CallExpr
	deferred bool
	saved    *types.Var // variable the previous source was saved into
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Closures get their own scope: a defer inside a closure
			// protects that closure, not the enclosing function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkBody analyzes one function or closure body, ignoring nested
// closures.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var calls []call
	ast.Inspect(body, func(in ast.Node) bool {
		switch in := in.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if in.Call != nil && isSetEventSource(pass, in.Call) {
				calls = append(calls, call{expr: in.Call, deferred: true})
				return false
			}
		case *ast.AssignStmt:
			// prev := dev.SetEventSource(...) — single value form.
			if len(in.Lhs) == 1 && len(in.Rhs) == 1 {
				if ce, ok := ast.Unparen(in.Rhs[0]).(*ast.CallExpr); ok && isSetEventSource(pass, ce) {
					var v *types.Var
					if id, ok := in.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							v, _ = obj.(*types.Var)
						} else if obj := pass.Info.Uses[id]; obj != nil {
							v, _ = obj.(*types.Var)
						}
					}
					calls = append(calls, call{expr: ce, saved: v})
					return false
				}
			}
		case *ast.CallExpr:
			if isSetEventSource(pass, in) {
				calls = append(calls, call{expr: in})
				return false
			}
		}
		return true
	})

	// Which saved variables does some deferred call restore, and where
	// is the earliest deferred restore registered?
	restored := map[*types.Var]bool{}
	earliestDefer := -1
	for i, c := range calls {
		if !c.deferred {
			continue
		}
		if earliestDefer < 0 {
			earliestDefer = i
		}
		for _, arg := range c.expr.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok {
						restored[v] = true
					}
				}
				return true
			})
		}
	}

	for i, c := range calls {
		switch {
		case c.deferred:
		case c.saved != nil:
			if !restored[c.saved] {
				pass.Reportf(c.expr.Pos(),
					"SetEventSource switch is not restored by a deferred SetEventSource(%s); an early return or panic leaks the source",
					c.saved.Name())
			}
		default:
			if earliestDefer < 0 || earliestDefer > i {
				pass.Reportf(c.expr.Pos(),
					"SetEventSource discards the previous source with no deferred restore in scope; save it and defer the restore")
			}
		}
	}
}

// isSetEventSource matches pmem.(Device).SetEventSource calls.
func isSetEventSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "SetEventSource" || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/pmem")
}
