package ext4dax

import (
	"testing"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// TestCommitUpToAbsorbedByLeader verifies the jbd2 leader/follower
// contract: once any commit covers a transaction id, CommitUpTo for that
// id returns without journal IO of its own.
func TestCommitUpToAbsorbedByLeader(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	fs, err := Mkfs(dev, Config{MaxInodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	f, err := vfs.Create(fs, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	txid := fs.TxID()
	// A "leader" (any other journal user) commits the shared transaction.
	if err := fs.CommitMeta(); err != nil {
		t.Fatal(err)
	}
	commits := fs.Stats().Commits
	fences := dev.Stats().Fences
	// The follower's fsync finds its transaction already durable.
	if err := fs.CommitUpTo(txid); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().Commits; got != commits {
		t.Fatalf("absorbed CommitUpTo issued a commit (%d -> %d)", commits, got)
	}
	if got := dev.Stats().Fences; got != fences {
		t.Fatalf("absorbed CommitUpTo issued fences (%d -> %d)", fences, got)
	}
	if fs.DoneTxID() < txid {
		t.Fatalf("DoneTxID %d below committed id %d", fs.DoneTxID(), txid)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTxIDStableUnderBatch verifies the capture rule relink relies on:
// while a batch handle is open the transaction cannot commit, so the id
// taken inside the batch covers every note the batch made.
func TestTxIDStableUnderBatch(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	fs, err := Mkfs(dev, Config{MaxInodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	fs.BeginBatch()
	id1 := fs.TxID()
	f, err := vfs.Create(fs, "/b") // notes into the running transaction
	if err != nil {
		t.Fatal(err)
	}
	id2 := fs.TxID()
	if id1 != id2 {
		t.Fatalf("transaction id advanced inside an open batch: %d -> %d", id1, id2)
	}
	fs.EndBatch()
	if err := fs.CommitUpTo(id2); err != nil {
		t.Fatal(err)
	}
	if fs.DoneTxID() < id2 {
		t.Fatalf("batch transaction %d not committed (done %d)", id2, fs.DoneTxID())
	}
	// A fresh transaction gets a strictly larger id.
	if id3 := fs.TxID(); id3 <= id2 {
		t.Fatalf("new transaction id %d not monotone after %d", id3, id2)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
