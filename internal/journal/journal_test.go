package journal

import (
	"bytes"
	"testing"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// testEnv is a device with a journal in its first 64 blocks and metadata
// space after.
func testEnv(t testing.TB) (*pmem.Device, *Journal) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 4 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	j := New(dev, 0, 64)
	return dev, j
}

const metaBase = 64 * sim.BlockSize // first byte after the journal region

func TestCommitPersistsMetadata(t *testing.T) {
	dev, j := testEnv(t)
	tx := j.Begin()
	data := []byte("inode-update")
	dev.Store(metaBase+100, data, sim.CatPMMeta)
	tx.Note(metaBase+100, len(data))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	dev.ReadAt(got, metaBase+100, sim.CatPMMeta)
	if !bytes.Equal(got, data) {
		t.Fatalf("committed metadata lost: %q", got)
	}
}

func TestUncommittedDiscardedOnCrash(t *testing.T) {
	dev, j := testEnv(t)
	tx := j.Begin()
	dev.Store(metaBase, []byte("doomed"), sim.CatPMMeta)
	tx.Note(metaBase, 6)
	// no commit
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	dev.ReadAt(got, metaBase, sim.CatPMMeta)
	if !bytes.Equal(got, make([]byte, 6)) {
		t.Fatalf("uncommitted store survived crash: %q", got)
	}
	// The journal must also be clean on reload.
	j2, replayed, err := Load(dev, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d transactions, want 0", replayed)
	}
	_ = j2
}

func TestEmptyCommitIsFree(t *testing.T) {
	dev, j := testEnv(t)
	before := dev.Stats().BytesWrittenNT
	tx := j.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Only Begin's handle charge; no journal blocks.
	if dev.Stats().BytesWrittenNT != before {
		t.Fatal("empty commit wrote journal blocks")
	}
	if j.Stats().Commits != 0 {
		t.Fatal("empty commit counted")
	}
}

func TestMultiBlockTransactionAtomicOnReplay(t *testing.T) {
	dev, j := testEnv(t)
	// Two committed transactions; both must survive.
	for i := 0; i < 2; i++ {
		tx := j.Begin()
		off := metaBase + int64(i)*sim.BlockSize
		payload := bytes.Repeat([]byte{byte(i + 1)}, 128)
		dev.Store(off, payload, sim.CatPMMeta)
		tx.Note(off, len(payload))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dev, 0, 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got := make([]byte, 128)
		dev.ReadAt(got, metaBase+int64(i)*sim.BlockSize, sim.CatPMMeta)
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 128)) {
			t.Fatalf("tx %d lost", i)
		}
	}
}

// Simulate a crash after the commit record persists but before the home
// locations are flushed: replay must restore the metadata.
func TestReplayAfterTornCheckpoint(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	j := New(dev, 0, 64)

	// Hand-roll the commit sequence, stopping before the checkpoint
	// flush. We reuse Commit but immediately overwrite the home location
	// with an unflushed store... instead, simply: commit fully, then make
	// a second modification without committing, crash, and verify replay
	// of the first plus loss of the second.
	tx := j.Begin()
	dev.Store(metaBase, []byte("AAAA"), sim.CatPMMeta)
	tx.Note(metaBase, 4)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := j.Begin()
	dev.Store(metaBase, []byte("BBBB"), sim.CatPMMeta)
	tx2.Note(metaBase, 4)
	// crash before tx2 commit
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dev, 0, 64); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	dev.ReadAt(got, metaBase, sim.CatPMMeta)
	if string(got) != "AAAA" {
		t.Fatalf("state after crash = %q, want AAAA", got)
	}
}

func TestJournalWrapsAround(t *testing.T) {
	dev, j := testEnv(t) // 64-block journal
	// Each 1-block tx consumes 3 journal blocks; 30 commits > capacity,
	// forcing wrap-around resets.
	for i := 0; i < 30; i++ {
		tx := j.Begin()
		payload := []byte{byte(i)}
		dev.Store(metaBase+int64(i), payload, sim.CatPMMeta)
		tx.Note(metaBase+int64(i), 1)
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 30)
	dev.ReadAt(got, metaBase, sim.CatPMMeta)
	for i := 0; i < 30; i++ {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d after wrap-around", i, got[i])
		}
	}
}

func TestTooLargeTransaction(t *testing.T) {
	dev, j := testEnv(t)
	tx := j.Begin()
	for i := 0; i < maxBlocksPerTx+1; i++ {
		off := metaBase + int64(i)*sim.BlockSize
		dev.Store(off, []byte{1}, sim.CatPMMeta)
		tx.Note(off, 1)
	}
	if err := tx.Commit(); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// A transaction bigger than the journal region must fail with ErrFull.
	dev2 := pmem.New(pmem.Config{Size: 4 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	j2 := New(dev2, 0, 8)
	tx2 := j2.Begin()
	for i := 0; i < 10; i++ {
		off := int64(64+i) * sim.BlockSize
		dev2.Store(off, []byte{1}, sim.CatPMMeta)
		tx2.Note(off, 1)
	}
	if err := tx2.Commit(); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestCommitStats(t *testing.T) {
	dev, j := testEnv(t)
	tx := j.Begin()
	dev.Store(metaBase, []byte{1}, sim.CatPMMeta)
	dev.Store(metaBase+sim.BlockSize, []byte{2}, sim.CatPMMeta)
	tx.Note(metaBase, 1)
	tx.Note(metaBase+sim.BlockSize, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Commits != 1 || st.BlocksLogged != 2 {
		t.Fatalf("stats = %+v, want 1 commit, 2 blocks", st)
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	_, j := testEnv(t)
	tx := j.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double commit did not panic")
		}
	}()
	tx.Commit()
}

func TestLoadBadSuperblock(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	// No New(): superblock is zeroes.
	if _, _, err := Load(dev, 0, 16); err == nil {
		t.Fatal("Load of unformatted journal must fail")
	}
}

func TestNoteAfterCommitPanics(t *testing.T) {
	_, j := testEnv(t)
	tx := j.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Note after commit did not panic")
		}
	}()
	tx.Note(metaBase, 1)
}
