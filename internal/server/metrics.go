package server

import (
	"fmt"
	"sync/atomic"

	"splitfs/internal/obs"
)

// maxMsgType bounds the per-message-type counter arrays: message type
// constants are dense from tAttach through rRevokeAck, so fixed arrays
// indexed by type make op accounting a pair of atomic adds — no map,
// no allocation, nothing on the dispatch path that could perturb the
// deterministic op sequence the crash differential pins.
const maxMsgType = int(rRevokeAck) + 1

// sessionObs is one session's metric block. Folding a detached
// session's block into the server's retired block keeps server-wide
// totals exact across the session churn the crash campaigns generate.
type sessionObs struct {
	ops   [maxMsgType]atomic.Int64 // requests dispatched, by request type
	bytes [maxMsgType]atomic.Int64 // request + reply payload bytes, by request type
	errs  [maxMsgType]atomic.Int64 // Rerror replies, by request type
	cost  atomic.Int64             // summed OpClock deltas across ops
	costH obs.Histogram            // per-op OpClock delta distribution
}

// idx clamps a message type into the counter arrays; an unknown type
// (protocol garbage) accounts under slot 0 rather than panicking.
func obsIdx(typ uint8) int {
	if int(typ) < maxMsgType {
		return int(typ)
	}
	return 0
}

// fold adds other's counts into o.
func (o *sessionObs) fold(other *sessionObs) {
	for i := 0; i < maxMsgType; i++ {
		o.ops[i].Add(other.ops[i].Load())
		o.bytes[i].Add(other.bytes[i].Load())
		o.errs[i].Add(other.errs[i].Load())
	}
	o.cost.Add(other.cost.Load())
	o.costH.Merge(&other.costH)
}

func (o *sessionObs) totals() (ops, bytes, errs int64) {
	for i := 0; i < maxMsgType; i++ {
		ops += o.ops[i].Load()
		bytes += o.bytes[i].Load()
		errs += o.errs[i].Load()
	}
	return
}

// probe samples the configured op-cost and fence feeds. Both default to
// zero-valued no-ops, so an uninstrumented server pays two nil checks
// per op and nothing else.
func (srv *Server) probe() (cost, fences int64) {
	if srv.cfg.OpClock != nil {
		cost = srv.cfg.OpClock()
	}
	if srv.cfg.OpFences != nil {
		fences = srv.cfg.OpFences()
	}
	return
}

// observe records one dispatched request into the session's metric
// block and flight recorder. reqBytes/repBytes are the request and
// reply payload sizes; cost and fences are deltas across execute.
func (s *Session) observe(typ uint8, reqID uint32, reqPayload, repPayload []byte, rtyp uint8, flags uint8, cost, fences int64) {
	i := obsIdx(typ)
	s.obs.ops[i].Add(1)
	s.obs.bytes[i].Add(int64(len(reqPayload) + len(repPayload)))
	if rtyp == rError {
		s.obs.errs[i].Add(1)
		flags |= obs.FlagError
	}
	if typ == tLease || typ == tRevokeAck {
		flags |= obs.FlagLease
	}
	if cost != 0 {
		s.obs.cost.Add(cost)
	}
	if s.srv.cfg.OpClock != nil {
		s.obs.costH.Observe(cost)
	}
	if s.flight != nil {
		s.flight.Append(obs.Record{
			ReqID:    reqID,
			Msg:      typ,
			Flags:    flags,
			PathHash: pathHashOf(typ, reqPayload),
			Bytes:    int64(len(reqPayload) + len(repPayload)),
			Fences:   fences,
			Cost:     cost,
		})
	}
}

// pathHashOf extracts the request's subject identity for the flight
// record: an FNV-1a hash of the path for path-addressed requests, the
// handle id itself for handle-addressed ones (ids are small and dense,
// so they double as readable identifiers in a trace), zero otherwise.
// Decoding here is read-only over the payload and tolerates malformed
// frames — execute reports those; the recorder just logs hash 0.
func pathHashOf(typ uint8, payload []byte) uint64 {
	d := dec{b: payload}
	switch typ {
	case tAttach, tStat, tReadDir, tUnlink, tRmdir, tRename:
		return fnvHash(d.str())
	case tMkdir:
		d.u32() // perm
		return fnvHash(d.str())
	case tOpen:
		d.u32() // flag
		d.u32() // perm
		return fnvHash(d.str())
	case tClose, tRead, tWrite, tPread, tPwrite, tSeek, tTruncate,
		tFsync, tFstat, tLease, tReopen, tRevokeAck:
		return d.u64()
	}
	return 0
}

// fnvHash is FNV-1a over s (matching obs.Snapshot.Hash's constants).
func fnvHash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// retiredFlightCap bounds how many detached sessions' flight recorders
// the server retains: enough for every tenant of a crash campaign
// generation to leave its trace behind, small enough that a long-lived
// daemon does not accumulate dead rings.
const retiredFlightCap = 16

// retiredFlight is one detached session's final flight state.
type retiredFlight struct {
	id     uint64
	root   string
	gen    int64
	flight *obs.Recorder
}

// retireSession folds a detached session's metric block into the
// server-wide totals and parks its flight recorder for post-mortem
// dumps (the crash engine reads traces after teardown). Called from
// detach with srv.mu available.
func (srv *Server) retireSession(s *Session) {
	srv.retiredObs.fold(&s.obs)
	if s.flight == nil {
		return
	}
	srv.mu.Lock()
	srv.retired = append(srv.retired, retiredFlight{id: s.id, root: s.root, gen: s.gen.Load(), flight: s.flight})
	if len(srv.retired) > retiredFlightCap {
		srv.retired = srv.retired[len(srv.retired)-retiredFlightCap:]
	}
	srv.mu.Unlock()
}

// OpMetrics is one message type's share of a metric snapshot.
type OpMetrics struct {
	Msg    string `json:"msg"`
	Ops    int64  `json:"ops"`
	Bytes  int64  `json:"bytes,omitempty"`
	Errors int64  `json:"errors,omitempty"`
}

// SessionMetrics is one live session's row in the ctl "sessions" and
// "stats" listings: identity, attach generation, and the quota inputs
// (handles, leases, op/byte totals) an admission controller would read.
type SessionMetrics struct {
	ID        uint64       `json:"id"`
	Root      string       `json:"root"`
	Gen       int64        `json:"gen"`
	Resumable bool         `json:"resumable"`
	Parked    bool         `json:"parked"`
	Handles   int          `json:"handles"`
	Leases    int          `json:"leases"`
	Ops       int64        `json:"ops"`
	Bytes     int64        `json:"bytes"`
	Errors    int64        `json:"errors"`
	Cost      int64        `json:"cost,omitempty"`
	CostHist  []obs.Bucket `json:"cost_hist,omitempty"`
	ByType    []OpMetrics  `json:"by_type,omitempty"`
	Flight    []obs.Record `json:"flight,omitempty"`
}

// ServerMetrics is the server-wide stats snapshot the ctl socket
// serves: wire/replay counters, live-session state, and op totals that
// include every detached session (exact across churn).
type ServerMetrics struct {
	Backend  string           `json:"backend"`
	Wire     WireStats        `json:"wire"`
	Sessions int              `json:"sessions"`
	Parked   int              `json:"parked"`
	Handles  int              `json:"handles"`
	Leases   int64            `json:"leases"`
	Ops      int64            `json:"ops"`
	Bytes    int64            `json:"bytes"`
	Errors   int64            `json:"errors"`
	Cost     int64            `json:"cost,omitempty"`
	CostHist []obs.Bucket     `json:"cost_hist,omitempty"`
	ByType   []OpMetrics      `json:"by_type,omitempty"`
	PerSess  []SessionMetrics `json:"per_session,omitempty"`
}

// byType renders the non-empty per-type rows of a metric block in
// message-type order (deterministic: fixed array order, no maps).
func (o *sessionObs) byType() []OpMetrics {
	var out []OpMetrics
	for i := 1; i < maxMsgType; i++ {
		n := o.ops[i].Load()
		if n == 0 {
			continue
		}
		out = append(out, OpMetrics{
			Msg:    msgName(uint8(i)),
			Ops:    n,
			Bytes:  o.bytes[i].Load(),
			Errors: o.errs[i].Load(),
		})
	}
	return out
}

// sessionsByID returns the live sessions sorted by id.
func (srv *Server) sessionsByID() []*Session {
	srv.mu.Lock()
	sess := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sess = append(sess, s)
	}
	srv.mu.Unlock()
	for i := 1; i < len(sess); i++ {
		for j := i; j > 0 && sess[j-1].id > sess[j].id; j-- {
			sess[j-1], sess[j] = sess[j], sess[j-1]
		}
	}
	return sess
}

// Metrics snapshots one session's counters. withFlight additionally
// dumps the flight recorder (the trace is bounded by the ring size).
func (s *Session) Metrics(withFlight bool) SessionMetrics {
	ops, bytes, errs := s.obs.totals()
	s.mu.Lock()
	parked := s.parked
	s.mu.Unlock()
	m := SessionMetrics{
		ID:        s.id,
		Root:      s.root,
		Gen:       s.gen.Load(),
		Resumable: s.resumable,
		Parked:    parked,
		Handles:   s.ht.open(),
		Leases:    s.srv.sessionLeaseCount(s),
		Ops:       ops,
		Bytes:     bytes,
		Errors:    errs,
		Cost:      s.obs.cost.Load(),
		CostHist:  obs.HistBucketsOf(&s.obs.costH),
		ByType:    s.obs.byType(),
	}
	if withFlight && s.flight != nil {
		m.Flight = s.flight.Dump()
	}
	return m
}

// sessionLeaseCount reports a session's outstanding lease segments.
func (srv *Server) sessionLeaseCount(s *Session) int {
	srv.leaseMu.Lock()
	defer srv.leaseMu.Unlock()
	return len(s.leases)
}

// MetricsSnapshot builds the server-wide stats view. perSession
// includes one row per live session (without flight traces — those are
// fetched per session via FlightDump / ctl "trace").
func (srv *Server) MetricsSnapshot(perSession bool) ServerMetrics {
	sess := srv.sessionsByID()
	var total sessionObs
	total.fold(&srv.retiredObs)
	parked := 0
	handles := 0
	var rows []SessionMetrics
	for _, s := range sess {
		total.fold(&s.obs)
		sm := s.Metrics(false)
		if sm.Parked {
			parked++
		}
		handles += sm.Handles
		if perSession {
			rows = append(rows, sm)
		}
	}
	ops, bytes, errs := total.totals()
	return ServerMetrics{
		Backend:  srv.fs.Name(),
		Wire:     srv.Stats(),
		Sessions: len(sess),
		Parked:   parked,
		Handles:  handles,
		Leases:   srv.nLeases.Load(),
		Ops:      ops,
		Bytes:    bytes,
		Errors:   errs,
		Cost:     total.cost.Load(),
		CostHist: obs.HistBucketsOf(&total.costH),
		ByType:   total.byType(),
		PerSess:  rows,
	}
}

// FlightDump returns a session's flight trace by id, searching live
// sessions first and then the retired ring (a session that detached —
// crash teardown included — keeps its trace readable).
func (srv *Server) FlightDump(id uint64) (SessionMetrics, bool) {
	srv.mu.Lock()
	s := srv.sessions[id]
	srv.mu.Unlock()
	if s != nil {
		return s.Metrics(true), true
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for i := len(srv.retired) - 1; i >= 0; i-- {
		r := srv.retired[i]
		if r.id == id {
			return SessionMetrics{ID: r.id, Root: r.root, Gen: r.gen, Flight: r.flight.Dump()}, true
		}
	}
	return SessionMetrics{}, false
}

// FlightReport renders every known flight trace (live sessions, then
// retired ones) as text, newest record last — the attachment the crash
// campaigns ship with a violation so a minimized reproducer carries the
// ops each tenant had in flight.
func (srv *Server) FlightReport() string {
	var b []byte
	emit := func(id uint64, root string, gen int64, live bool, recs []obs.Record) {
		state := "retired"
		if live {
			state = "live"
		}
		b = append(b, []byte(fmtSessionHeader(id, root, gen, state, len(recs)))...)
		for _, r := range recs {
			b = append(b, []byte(fmtFlightRecord(r))...)
		}
	}
	for _, s := range srv.sessionsByID() {
		if s.flight != nil {
			emit(s.id, s.root, s.gen.Load(), true, s.flight.Dump())
		}
	}
	srv.mu.Lock()
	retired := append([]retiredFlight(nil), srv.retired...)
	srv.mu.Unlock()
	for _, r := range retired {
		emit(r.id, r.root, r.gen, false, r.flight.Dump())
	}
	return string(b)
}

func fmtSessionHeader(id uint64, root string, gen int64, state string, n int) string {
	return fmt.Sprintf("session %d root=%s gen=%d %s (%d records)\n", id, root, gen, state, n)
}

func fmtFlightRecord(r obs.Record) string {
	flags := ""
	if r.Flags&obs.FlagError != 0 {
		flags += "E"
	}
	if r.Flags&obs.FlagReplay != 0 {
		flags += "R"
	}
	if r.Flags&obs.FlagCached != 0 {
		flags += "C"
	}
	if r.Flags&obs.FlagLease != 0 {
		flags += "L"
	}
	if flags == "" {
		flags = "-"
	}
	return fmt.Sprintf("  #%d %s req=%d flags=%s subj=%#x bytes=%d fences=%d cost=%d\n",
		r.Seq, msgName(r.Msg), r.ReqID, flags, r.PathHash, r.Bytes, r.Fences, r.Cost)
}

// RegisterObs exports the server's counters into an obs registry as
// computed gauges. Totals include detached sessions (retireSession
// folds them), so the gauges are monotone across session churn.
func (srv *Server) RegisterObs(r *obs.Registry) {
	liveTotals := func() (ops, bytes, errs, cost int64) {
		ops, bytes, errs = srv.retiredObs.totals()
		cost = srv.retiredObs.cost.Load()
		for _, s := range srv.sessionsByID() {
			o, b, e := s.obs.totals()
			ops += o
			bytes += b
			errs += e
			cost += s.obs.cost.Load()
		}
		return
	}
	r.Func("server/ops", func() int64 { o, _, _, _ := liveTotals(); return o })
	r.Func("server/wire_bytes", func() int64 { _, b, _, _ := liveTotals(); return b })
	r.Func("server/errors", func() int64 { _, _, e, _ := liveTotals(); return e })
	r.Func("server/op_cost", func() int64 { _, _, _, c := liveTotals(); return c })
	r.Func("server/sessions", func() int64 { return int64(srv.SessionCount()) })
	r.Func("server/handles", func() int64 { return int64(srv.OpenHandles()) })
	r.Func("server/leases", srv.nLeases.Load)
	r.Func("server/lease_grants", srv.stats.leaseGrants.Load)
	r.Func("server/lease_revokes", srv.stats.leaseRevokes.Load)
	r.Func("server/revoke_acks", srv.stats.revokeAcks.Load)
	r.Func("server/replayed_requests", srv.stats.replayedRequests.Load)
	r.Func("server/replay_cache_hits", srv.stats.replayCacheHits.Load)
	r.Func("server/healed_replays", srv.stats.healedReplays.Load)
	r.Func("server/reattached", srv.stats.reattached.Load)
	r.Func("server/parked_sessions", srv.stats.parkedSessions.Load)
	r.Func("server/dropped_replies", srv.stats.droppedReplies.Load)
}
