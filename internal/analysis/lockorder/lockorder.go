// Package lockorder enforces the DESIGN.md lock hierarchy. Mutex
// fields are ranked with `// +lockrank:<name>` annotations and the
// hierarchy itself is declared as chains, outermost first:
//
//	// +lockrank:order wmu < ofile < ext4fs < inode < shard
//
// Chains merge across packages into one partial order. The analyzer
// flags a function that acquires a lock whose rank is declared outer to
// one it already holds — directly, or by calling (while holding a lock)
// a function whose transitive acquisitions include an outer rank. A
// `defer mu.Unlock()` keeps the lock held to the end of the function;
// unannotated mutexes are outside the hierarchy and ignored.
//
// The analysis is linear per function body: statements are visited in
// source order without branch sensitivity, and function-literal bodies
// are skipped (closures run on schedules the caller controls). This
// under-approximates held sets on early-return paths but reports no
// false positives on the repository's lock idioms; genuinely safe
// exceptions carry a //lint:ignore splitfs-lockorder suppression.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"splitfs/internal/analysis"
)

const name = "lockorder"

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check +lockrank-annotated mutex acquisitions against the declared " +
		"lock hierarchy (DESIGN.md), including calls that re-enter outer ranks",
	Run: run,
}

// order is the merged rank DAG: adjacency outer → inner.
type order map[string][]string

// reaches reports whether inner is reachable from outer (outer strictly
// precedes inner in the hierarchy).
func (o order) reaches(outer, inner string) bool {
	if outer == inner {
		return false
	}
	seen := map[string]bool{outer: true}
	stack := []string{outer}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range o[n] {
			if next == inner {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// event is one lock-relevant operation in a function body, in source
// order.
type event struct {
	pos      token.Pos
	rank     string // lock/unlock events
	unlock   bool
	deferred bool
	callee   string // call events: FuncID
}

func run(pass *analysis.Pass) error {
	ranks := map[string]string{} // FieldID -> rank name
	// The order fact is stored as a plain map so it serializes across
	// vettool processes; the conversion aliases the same underlying map,
	// so edges added here are visible to later packages in-process too.
	ord := order{}
	if v, ok := pass.Facts.Import(name, "order"); ok {
		ord = order(v.(map[string][]string))
	} else {
		pass.Facts.Export(name, "order", map[string][]string(ord))
	}

	// Phase 1: order chains and field ranks declared by this package.
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, d := range analysis.Directives(g) {
				chain, ok := strings.CutPrefix(d, "lockrank:order ")
				if !ok {
					continue
				}
				var names []string
				for _, n := range strings.Split(chain, "<") {
					names = append(names, strings.TrimSpace(n))
				}
				for i := 0; i+1 < len(names); i++ {
					a, b := names[i], names[i+1]
					if a == "" || b == "" {
						pass.Reportf(g.Pos(), "malformed lockrank:order chain %q", chain)
						continue
					}
					if ord.reaches(b, a) || a == b {
						pass.Reportf(g.Pos(), "lockrank:order %q < %q conflicts with the already-declared hierarchy", a, b)
						continue
					}
					ord[a] = append(ord[a], b)
				}
			}
		}
		collectFieldRanks(pass, f, ranks)
	}
	for id, r := range ranks {
		pass.Facts.Export(name, "field:"+id, r)
	}
	rankOf := func(id string) string {
		if r, ok := ranks[id]; ok {
			return r
		}
		if v, ok := pass.Facts.Import(name, "field:"+id); ok {
			return v.(string)
		}
		return ""
	}

	// Phase 2: per-function event streams.
	type fnInfo struct {
		decl   *ast.FuncDecl
		id     string
		events []event
	}
	var fns []*fnInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			info := &fnInfo{decl: fd, id: analysis.FuncID(fn)}
			info.events = collectEvents(pass, fd.Body, rankOf)
			fns = append(fns, info)
		}
	}

	// Phase 3: transitive acquisition summaries. Same-package calls
	// iterate to a fixpoint; cross-package callees resolve from facts.
	local := map[string]*fnInfo{}
	for _, fn := range fns {
		if fn.id != "" {
			local[fn.id] = fn
		}
	}
	acq := map[string]map[string]bool{}
	importedAcq := func(id string) []string {
		if v, ok := pass.Facts.Import(name, "acq:"+id); ok {
			return v.([]string)
		}
		return nil
	}
	for _, fn := range fns {
		set := map[string]bool{}
		for _, ev := range fn.events {
			if ev.rank != "" && !ev.unlock {
				set[ev.rank] = true
			}
		}
		acq[fn.id] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			set := acq[fn.id]
			for _, ev := range fn.events {
				if ev.callee == "" {
					continue
				}
				if callee, ok := local[ev.callee]; ok {
					for r := range acq[callee.id] {
						if !set[r] {
							set[r] = true
							changed = true
						}
					}
				} else {
					for _, r := range importedAcq(ev.callee) {
						if !set[r] {
							set[r] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for id, set := range acq {
		if id == "" || len(set) == 0 {
			continue
		}
		var rs []string
		for r := range set {
			rs = append(rs, r)
		}
		sort.Strings(rs)
		pass.Facts.Export(name, "acq:"+id, rs)
	}

	// Phase 4: the linear held-set check.
	for _, fn := range fns {
		held := map[string]int{}
		heldList := func() []string {
			var hs []string
			for r, n := range held {
				if n > 0 {
					hs = append(hs, r)
				}
			}
			sort.Strings(hs)
			return hs
		}
		for _, ev := range fn.events {
			switch {
			case ev.rank != "" && ev.unlock:
				if ev.deferred {
					continue // held until return; keep checking the body against it
				}
				if held[ev.rank] > 0 {
					held[ev.rank]--
				}
			case ev.rank != "":
				for _, h := range heldList() {
					if ord.reaches(ev.rank, h) {
						pass.Reportf(ev.pos,
							"acquires %q while holding %q: %q is outer to %q in the declared lock order",
							ev.rank, h, ev.rank, h)
					}
				}
				held[ev.rank]++
			case ev.callee != "" && !ev.deferred:
				hs := heldList()
				if len(hs) == 0 {
					continue
				}
				var callee []string
				if lf, ok := local[ev.callee]; ok {
					for r := range acq[lf.id] {
						callee = append(callee, r)
					}
					sort.Strings(callee)
				} else {
					callee = importedAcq(ev.callee)
				}
				for _, r := range callee {
					for _, h := range hs {
						if ord.reaches(r, h) {
							pass.Reportf(ev.pos,
								"calls %s, which may acquire %q, while holding %q: %q is outer to %q in the declared lock order",
								ev.callee, r, h, r, h)
						}
					}
				}
			}
		}
	}
	return nil
}

// collectFieldRanks records +lockrank annotations on sync.Mutex/RWMutex
// struct fields.
func collectFieldRanks(pass *analysis.Pass, f *ast.File, ranks map[string]string) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				rank := ""
				for _, d := range analysis.Directives(field.Doc, field.Comment) {
					if name, ok := strings.CutPrefix(d, "lockrank:"); ok && !strings.HasPrefix(name, "order") {
						rank = strings.TrimSpace(name)
					}
				}
				if rank == "" {
					continue
				}
				for _, name := range field.Names {
					obj, _ := pass.Info.Defs[name].(*types.Var)
					if obj == nil {
						continue
					}
					if !isMutexType(obj.Type()) {
						pass.Reportf(field.Pos(), "+lockrank:%s on non-mutex field %s", rank, name.Name)
						continue
					}
					tobj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
					if tobj == nil {
						continue
					}
					id := analysis.FieldID(tobj.Type(), obj)
					if id != "" {
						ranks[id] = rank
					}
				}
			}
		}
	}
}

func isMutexType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

var lockMethods = map[string]bool{"Lock": false, "RLock": false, "Unlock": true, "RUnlock": true}

// collectEvents walks a function body in source order, emitting lock,
// unlock, and call events. Function literals are skipped.
func collectEvents(pass *analysis.Pass, body *ast.BlockStmt, rankOf func(string) string) []event {
	var events []event
	deferredCalls := map[*ast.CallExpr]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			return true
		case *ast.GoStmt:
			// The spawned goroutine has its own stack: its acquisitions
			// happen against an empty held set, not the spawner's.
			goCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			if goCalls[n] {
				return true
			}
			ev := classifyCall(pass, n, rankOf)
			if ev != nil {
				ev.deferred = deferredCalls[n]
				events = append(events, *ev)
			}
			return true
		}
		return true
	})
	return events
}

// classifyCall turns a call into a lock/unlock event (for ranked
// mutexes) or a call event (for named functions and methods).
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, rankOf func(string) string) *event {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Plain identifier: a package-level function call.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
				return &event{pos: call.Pos(), callee: analysis.FuncID(fn)}
			}
		}
		return nil
	}
	if unlock, isLockOp := lockMethods[sel.Sel.Name]; isLockOp {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if s := pass.Info.Selections[inner]; s != nil {
				if field, ok := s.Obj().(*types.Var); ok && isMutexType(field.Type()) {
					if rank := rankOf(analysis.FieldID(s.Recv(), field)); rank != "" {
						return &event{pos: call.Pos(), rank: rank, unlock: unlock}
					}
				}
			}
		}
	}
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		return &event{pos: call.Pos(), callee: analysis.FuncID(fn)}
	}
	return nil
}
