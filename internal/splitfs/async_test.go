package splitfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// newAsyncEnv builds an instance with background relink workers.
func newAsyncEnv(t testing.TB, mode Mode, workers int) (*pmem.Device, *FS) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(),
		TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(kfs, Config{
		Mode:             mode,
		StagingFiles:     4,
		StagingFileBytes: 2 << 20,
		OpLogBytes:       1 << 20,
		RelinkWorkers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.pipeline.stop() })
	return dev, fs
}

// TestConcurrentFsyncGroupCommitRace hammers concurrent fsyncs of
// distinct files through background relink workers and group commit —
// the race test the CI matrix runs under -race. Every worker's data must
// be intact and durable afterwards.
func TestConcurrentFsyncGroupCommitRace(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, fs := newAsyncEnv(t, mode, 3)
			const (
				threads = 6
				rounds  = 40
			)
			var wg sync.WaitGroup
			errs := make(chan error, threads)
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					path := fmt.Sprintf("/gc%02d", g)
					f, err := vfs.Create(fs, path)
					if err != nil {
						errs <- err
						return
					}
					blk := bytes.Repeat([]byte{byte(g + 1)}, 1024)
					for i := 0; i < rounds; i++ {
						if _, err := f.Write(blk); err != nil {
							errs <- fmt.Errorf("%s write %d: %w", path, i, err)
							return
						}
						if err := f.Sync(); err != nil {
							errs <- fmt.Errorf("%s fsync %d: %w", path, i, err)
							return
						}
					}
					errs <- f.Close()
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			for g := 0; g < threads; g++ {
				data, err := vfs.ReadFile(fs, fmt.Sprintf("/gc%02d", g))
				if err != nil {
					t.Fatal(err)
				}
				if len(data) != rounds*1024 {
					t.Fatalf("file %d: %d bytes, want %d", g, len(data), rounds*1024)
				}
				for i, b := range data {
					if b != byte(g+1) {
						t.Fatalf("file %d: byte %d corrupted (%d)", g, i, b)
					}
				}
			}
		})
	}
}

// TestGroupSyncCoalescesCommits asserts the deterministic batched drain:
// one GroupSync over N dirty files issues exactly one journal commit,
// against N for serial fsyncs on an identical instance.
func TestGroupSyncCoalescesCommits(t *testing.T) {
	run := func(batched bool) (commits int64) {
		_, fs := newEnv(t, POSIX)
		var handles []*File
		blk := make([]byte, 4096)
		for i := 0; i < 8; i++ {
			f, err := vfs.Create(fs, fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			for a := 0; a < 4; a++ {
				if _, err := f.Write(blk); err != nil {
					t.Fatal(err)
				}
			}
			handles = append(handles, f.(*File))
		}
		before := fs.KFS().Stats().Commits
		if batched {
			if err := fs.GroupSync(handles...); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, f := range handles {
				if err := f.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fs.KFS().Stats().Commits - before
	}
	serial, grouped := run(false), run(true)
	if serial != 8 {
		t.Fatalf("serial fsyncs committed %d times, want 8", serial)
	}
	if grouped != 1 {
		t.Fatalf("GroupSync committed %d times, want 1", grouped)
	}
}

// TestStagingEpochReclamation exhausts staging files and verifies the
// epoch reclaimer unmaps and unlinks them once their staged data has
// relinked and the grace period has elapsed — and that reads through the
// surviving overlay stay correct throughout.
func TestStagingEpochReclamation(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(),
		TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny staging files so appends exhaust them quickly.
	fs, err := New(kfs, Config{
		Mode:              POSIX,
		StagingFiles:      2,
		StagingFileBytes:  256 << 10,
		StagingChunkBytes: 64 << 10,
		OpLogBytes:        1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := vfs.Create(fs, "/data")
	if err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, 32<<10)
	for i := range blk {
		blk[i] = byte(i)
	}
	// Write + fsync enough to chew through several staging files.
	for i := 0; i < 64; i++ {
		if _, err := f.Write(blk); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.StagingFilesReclaimed(); got == 0 {
		t.Fatalf("no staging files reclaimed after %d staged bytes", 64*len(blk))
	}
	// Reclaimed files must be gone from the staging directory.
	ents, err := fs.KFS().ReadDir("/.splitfs-staging")
	if err != nil {
		t.Fatal(err)
	}
	if live := len(ents); live > 6 {
		t.Fatalf("staging dir still holds %d files after reclamation", live)
	}
	// Content stays intact.
	data, err := vfs.ReadFile(fs, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64*len(blk) {
		t.Fatalf("size %d, want %d", len(data), 64*len(blk))
	}
	for i := 0; i < len(data); i += len(blk) {
		if !bytes.Equal(data[i:i+len(blk)], blk) {
			t.Fatalf("block at %d corrupted", i)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRacesPipelineDrains hammers strict-mode writers whose
// op log fills constantly (checkpoints under wmu sweep and reset the
// log) against concurrent fsyncs draining on background workers, then
// crashes and recovers: every byte every writer completed must survive.
// This covers the checkpoint/drain interaction — a checkpoint must
// commit the running journal transaction before zeroing the log so an
// in-flight drain's relink can never be rolled back after its entries
// are gone.
func TestCheckpointRacesPipelineDrains(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(),
		TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(kfs, Config{
		Mode:             Strict,
		StagingFiles:     4,
		StagingFileBytes: 4 << 20,
		OpLogBytes:       64 << 10, // tiny: checkpoints fire constantly
		RelinkWorkers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		threads = 4
		rounds  = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := vfs.Create(fs, fmt.Sprintf("/ck%02d", g))
			if err != nil {
				errs <- err
				return
			}
			blk := bytes.Repeat([]byte{byte(g + 1)}, 512)
			for i := 0; i < rounds; i++ {
				if _, err := f.Write(blk); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if err := f.Sync(); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- f.Close()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, _, err := RecoverFS(kfs2, Config{Mode: Strict, StagingFiles: 4,
		StagingFileBytes: 4 << 20, OpLogBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < threads; g++ {
		data, err := vfs.ReadFile(fs2, fmt.Sprintf("/ck%02d", g))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != rounds*512 {
			t.Fatalf("file %d: %d bytes survived, want %d", g, len(data), rounds*512)
		}
		for i, b := range data {
			if b != byte(g+1) {
				t.Fatalf("file %d: byte %d corrupted (%d)", g, i, b)
			}
		}
	}
}

// TestPipelineCoalescesQueuedFsyncs checks per-ofile request coalescing:
// a queued (not yet drained) request absorbs later fsyncs of the same
// file, so both waiters complete from one relink batch.
func TestPipelineCoalescesQueuedFsyncs(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, err := vfs.Create(fs, "/one")
	if err != nil {
		t.Fatal(err)
	}
	of := f.(*File).of
	r1 := fs.pipeline.enqueue(of)
	r2 := fs.pipeline.enqueue(of)
	if r1 != r2 {
		t.Fatal("queued requests for one ofile did not coalesce")
	}
	fs.pipeline.drainUntil(r1)
	select {
	case <-r2.done:
	default:
		t.Fatal("coalesced request not completed by the drain")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
