package logfs

import (
	"sort"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

const blockSize = sim.BlockSize

// OpenFile implements vfs.FileSystem.
func (fs *FS) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return nil, vfs.WrapPath("open", path, err)
	}
	in, exists := parent.children[base]
	switch {
	case exists:
		if flag&vfs.O_CREATE != 0 && flag&vfs.O_EXCL != 0 {
			return nil, vfs.WrapPath("open", path, vfs.ErrExist)
		}
		if in.isDir && vfs.Writable(flag) {
			return nil, vfs.WrapPath("open", path, vfs.ErrIsDir)
		}
		if flag&vfs.O_TRUNC != 0 && vfs.Writable(flag) && in.size > 0 {
			fs.truncateLocked(in, 0)
		}
	case flag&vfs.O_CREATE != 0:
		fs.stats.MetaOps++
		in = &inode{ino: fs.nextIno, nlink: 1}
		fs.nextIno++
		parent.children[base] = in
		fs.inodes[in.ino] = in
		fs.appendRecord(encCreate(in.ino, false, vfs.CleanPath(path)))
	default:
		return nil, vfs.WrapPath("open", path, vfs.ErrNotExist)
	}
	return &File{fs: fs, in: in, flag: flag, path: vfs.CleanPath(path)}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string, perm uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.MetaOps++
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("mkdir", path, err)
	}
	if _, ok := parent.children[base]; ok {
		return vfs.WrapPath("mkdir", path, vfs.ErrExist)
	}
	in := &inode{ino: fs.nextIno, isDir: true, nlink: 2, children: map[string]*inode{}}
	fs.nextIno++
	parent.children[base] = in
	parent.nlink++
	fs.inodes[in.ino] = in
	fs.appendRecord(encCreate(in.ino, true, vfs.CleanPath(path)))
	return nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.MetaOps++
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("unlink", path, err)
	}
	in, ok := parent.children[base]
	if !ok {
		return vfs.WrapPath("unlink", path, vfs.ErrNotExist)
	}
	if in.isDir {
		return vfs.WrapPath("unlink", path, vfs.ErrIsDir)
	}
	delete(parent.children, base)
	delete(fs.inodes, in.ino)
	fs.freeExtents(in)
	fs.appendRecord(encUnlink(vfs.CleanPath(path), false))
	return nil
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.MetaOps++
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("rmdir", path, err)
	}
	in, ok := parent.children[base]
	if !ok {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotExist)
	}
	if !in.isDir {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotDir)
	}
	if len(in.children) != 0 {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotEmpty)
	}
	delete(parent.children, base)
	delete(fs.inodes, in.ino)
	parent.nlink--
	fs.appendRecord(encUnlink(vfs.CleanPath(path), true))
	return nil
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.MetaOps++
	op, ob, err := fs.resolveDir(oldPath)
	if err != nil {
		return vfs.WrapPath("rename", oldPath, err)
	}
	in, ok := op.children[ob]
	if !ok {
		return vfs.WrapPath("rename", oldPath, vfs.ErrNotExist)
	}
	np, nb, err := fs.resolveDir(newPath)
	if err != nil {
		return vfs.WrapPath("rename", newPath, err)
	}
	if victim, ok := np.children[nb]; ok {
		if victim.isDir {
			return vfs.WrapPath("rename", newPath, vfs.ErrIsDir)
		}
		fs.freeExtents(victim)
		delete(fs.inodes, victim.ino)
	}
	delete(op.children, ob)
	np.children[nb] = in
	fs.appendRecord(encRename(vfs.CleanPath(oldPath), vfs.CleanPath(newPath)))
	return nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	in, err := fs.resolve(vfs.CleanPath(path))
	if err != nil {
		return vfs.FileInfo{}, vfs.WrapPath("stat", path, err)
	}
	return fs.infoOf(in), nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	in, err := fs.resolve(vfs.CleanPath(path))
	if err != nil {
		return nil, vfs.WrapPath("readdir", path, err)
	}
	if !in.isDir {
		return nil, vfs.WrapPath("readdir", path, vfs.ErrNotDir)
	}
	out := make([]vfs.DirEntry, 0, len(in.children))
	for name, child := range in.children {
		out = append(out, vfs.DirEntry{Name: name, Ino: child.ino, IsDir: child.isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// truncateLocked shrinks/grows a file. Caller holds fs.mu.
func (fs *FS) truncateLocked(in *inode, size int64) {
	if size < in.size {
		for _, e := range shrinkTo(in, size) {
			fs.bmp.Free(e)
		}
	}
	in.size = size
	fs.appendRecord(encTruncate(in.ino, size))
}

// Checkpoint forces a snapshot + log reset (exposed for tests and the
// shutdown path).
func (fs *FS) Checkpoint() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.checkpointLocked()
}
