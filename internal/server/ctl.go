package server

// The control surface: a one-shot line protocol served on a separate
// listener (cmd/splitfsd binds it to -ctl-socket). A client connects,
// writes one command line, and reads the reply until EOF:
//
//	stats            server-wide metrics + per-session rows (JSON)
//	sessions         live sessions with attach generation, lease and
//	                 handle counts, op totals — the quota inputs (JSON)
//	trace <id>       one session's flight-recorder dump (JSON); looks
//	                 through live sessions, then the retired ring
//	pprof cpu [sec]  CPU profile, default 1 second (binary pprof)
//	pprof heap       heap profile after a GC (binary pprof)
//
// Keeping the ctl listener separate from the data socket means an
// operator can always introspect a daemon whose data plane is wedged,
// and the data protocol's framing never has to carve out a side
// channel. Errors render as a single "error: ..." text line.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"splitfs/internal/vfs"
)

// CtlCommand executes one JSON-rendering control command and returns
// the reply body. pprof streams binary data and is handled at the
// connection layer (serveCtlConn), not here.
func (srv *Server) CtlCommand(cmd string) ([]byte, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return nil, fmt.Errorf("server: ctl: empty command: %w", vfs.ErrInval)
	}
	switch fields[0] {
	case "stats":
		return json.MarshalIndent(srv.MetricsSnapshot(true), "", "  ")
	case "sessions":
		rows := []SessionMetrics{}
		for _, s := range srv.sessionsByID() {
			rows = append(rows, s.Metrics(false))
		}
		return json.MarshalIndent(rows, "", "  ")
	case "trace":
		if len(fields) != 2 {
			return nil, fmt.Errorf("server: ctl: usage: trace <session-id>: %w", vfs.ErrInval)
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: ctl: bad session id %q: %w", fields[1], vfs.ErrInval)
		}
		m, ok := srv.FlightDump(id)
		if !ok {
			return nil, fmt.Errorf("server: ctl: session %d: %w", id, vfs.ErrNotExist)
		}
		return json.MarshalIndent(m, "", "  ")
	}
	return nil, fmt.Errorf("server: ctl: unknown command %q: %w", fields[0], vfs.ErrInval)
}

// ServeCtl accepts control connections from ln until ln or the server
// closes. Mirrors Serve's shutdown convention: an accept failure after
// Close reads as a clean return.
func (srv *Server) ServeCtl(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go srv.serveCtlConn(c)
	}
}

// serveCtlConn handles one control connection: read a command line,
// write the reply, close.
func (srv *Server) serveCtlConn(c net.Conn) {
	defer c.Close()
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	cmd := strings.TrimSpace(line)
	fields := strings.Fields(cmd)
	if len(fields) > 0 && fields[0] == "pprof" {
		srv.ctlPprof(c, fields[1:])
		return
	}
	out, cerr := srv.CtlCommand(cmd)
	if cerr != nil {
		fmt.Fprintf(c, "error: %v\n", cerr)
		return
	}
	c.Write(append(out, '\n'))
}

// ctlPprof streams a runtime profile onto the control connection. A
// failure after profile bytes have been written cannot be reported
// in-band; the truncated stream fails the client's parser instead.
func (srv *Server) ctlPprof(w io.Writer, args []string) {
	kind := "cpu"
	if len(args) > 0 {
		kind = args[0]
	}
	switch kind {
	case "cpu":
		sec := 1
		if len(args) > 1 {
			if n, err := strconv.Atoi(args[1]); err == nil && n > 0 && n <= 60 {
				sec = n
			}
		}
		if err := pprof.StartCPUProfile(w); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		time.Sleep(time.Duration(sec) * time.Second)
		pprof.StopCPUProfile()
	case "heap":
		runtime.GC()
		if err := pprof.Lookup("heap").WriteTo(w, 0); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
	default:
		fmt.Fprintf(w, "error: unknown profile %q (want cpu or heap)\n", kind)
	}
}
