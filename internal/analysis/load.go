package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Fset    *token.FileSet
	Types   *types.Package
	Info    *types.Info
	Imports []string
}

// Loader type-checks packages for analysis without any network or
// x/tools dependency. Module packages are parsed from source (the
// analyzers need ASTs and comments); their imports resolve from the
// compiler export data `go list -export` leaves in the build cache, so
// loads work offline and never re-typecheck the transitive closure.
type Loader struct {
	// Dir is the working directory for `go list` (any directory inside
	// the module). Empty means the process working directory.
	Dir string
	// SrcRoot, when set, resolves import paths from GOPATH-style source
	// directories under it before consulting export data. The
	// analysistest harness points it at testdata/src so test packages
	// can import each other and real module packages side by side.
	SrcRoot string

	fset   *token.FileSet
	meta   map[string]*listedPackage
	gc     types.ImporterFrom
	srcPkg map[string]*Package // SrcRoot packages, by import path
}

// listedPackage is the subset of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:    dir,
		fset:   token.NewFileSet(),
		meta:   map[string]*listedPackage{},
		srcPkg: map[string]*Package{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// lookupExport feeds the gc importer the export-data file of an import
// path, shelling out to `go list -export` for paths not yet listed.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	p, ok := l.meta[path]
	if !ok || p.Export == "" {
		if err := l.goList(path); err != nil {
			return nil, err
		}
		if p, ok = l.meta[path]; !ok || p.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(p.Export)
}

// goList records metadata (including export-data locations) for the
// packages matching patterns and their dependencies.
func (l *Loader) goList(patterns ...string) error {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return fmt.Errorf("analysis: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		prev, seen := l.meta[p.ImportPath]
		// A package listed before only as a dependency may reappear as a
		// match; keep the match (DepOnly false) and any export path.
		if !seen || (prev.DepOnly && !p.DepOnly) || prev.Export == "" {
			cp := p
			if seen && cp.Export == "" {
				cp.Export = prev.Export
			}
			l.meta[p.ImportPath] = &cp
		}
	}
	return nil
}

// Load lists patterns and returns the matched module packages, parsed
// with comments and fully type-checked, in dependency order (a package
// precedes everything that imports it).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var matched []string
	for path, p := range l.meta {
		if !p.DepOnly && !p.Standard && p.Module != nil {
			matched = append(matched, path)
		}
	}
	sort.Strings(matched)
	order := l.depOrder(matched)

	var pkgs []*Package
	for _, path := range order {
		pkg, err := l.typeCheck(l.meta[path])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// depOrder topologically sorts paths so dependencies precede importers.
func (l *Loader) depOrder(paths []string) []string {
	in := map[string]bool{}
	for _, p := range paths {
		in[p] = true
	}
	var order []string
	visited := map[string]bool{}
	var visit func(string)
	visit = func(path string) {
		if visited[path] || !in[path] {
			return
		}
		visited[path] = true
		if m := l.meta[path]; m != nil {
			for _, imp := range m.Imports {
				visit(imp)
			}
		}
		order = append(order, path)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// typeCheck parses and type-checks one listed package from source.
func (l *Loader) typeCheck(m *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(m.ImportPath, m.Dir, files, m.Imports)
}

// LoadDir parses the .go files of one directory as a package with the
// given import path and type-checks it — the analysistest entry point.
// Imports resolve via SrcRoot first, then module/stdlib export data.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	pkg, err := l.check(importPath, dir, files, imports)
	if err != nil {
		return nil, err
	}
	l.srcPkg[importPath] = pkg
	return pkg, nil
}

// check runs the type checker over parsed files.
func (l *Loader) check(importPath, dir string, files []*ast.File, imports []string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath: importPath,
		Dir:     dir,
		Files:   files,
		Fset:    l.fset,
		Types:   tpkg,
		Info:    info,
		Imports: imports,
	}, nil
}

// loaderImporter adapts the loader for types.Config.Importer: SrcRoot
// packages type-check from source, everything else comes from export
// data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if pkg, ok := l.srcPkg[path]; ok {
		return pkg.Types, nil
	}
	if l.SrcRoot != "" {
		src := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(src); err == nil && st.IsDir() {
			pkg, err := l.LoadDir(src, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.gc.ImportFrom(path, dir, mode)
}
