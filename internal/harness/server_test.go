package harness

import (
	"testing"

	"splitfs/internal/crash"
)

// metricMap indexes a cell's metrics, dropping the wall-clock row (the
// only nondeterministic one).
func metricMap(c *MacroCell) map[string]float64 {
	m := map[string]float64{}
	for _, mm := range c.Metrics {
		if mm.Name == "wall_ns_per_op" {
			continue
		}
		m[mm.Name] = mm.Value
	}
	return m
}

// TestServerStreamServedMatchesDirect pins the loopback-transparency
// property the baseline gate relies on: the deterministic stream issues
// the identical backend-operation sequence direct and served, so every
// sim-derived counter matches exactly.
func TestServerStreamServedMatchesDirect(t *testing.T) {
	for _, kind := range serverDetBackends {
		direct, err := ServerStreamCell(kind)
		if err != nil {
			t.Fatal(err)
		}
		served, err := ServerStreamCell(crash.ServedPrefix + kind)
		if err != nil {
			t.Fatal(err)
		}
		dm, sm := metricMap(direct), metricMap(served)
		for name, dv := range dm {
			if sv, ok := sm[name]; !ok || sv != dv {
				t.Errorf("%s: %s direct=%v served=%v", kind, name, dv, sm[name])
			}
		}
	}
}

// TestServerStreamLeaseCell pins the zero-copy data plane's bench
// properties: a served-lease: cell issues the same backend-operation
// sequence as direct (every sim counter equal), moves its read volume
// through leased mappings, and sends zero data bytes through the read
// side of the wire codec.
func TestServerStreamLeaseCell(t *testing.T) {
	for _, kind := range serverDetBackends {
		direct, err := ServerStreamCell(kind)
		if err != nil {
			t.Fatal(err)
		}
		leased, err := ServerStreamCell(crash.ServedLeasePrefix + kind)
		if err != nil {
			t.Fatal(err)
		}
		dm, lm := metricMap(direct), metricMap(leased)
		// Gated counters only: ns_per_op is sim-clock-derived and a lease
		// grant costs clock (a metadata Stat), which is fine — the gate
		// pins I/O behavior, not the cost model.
		for _, name := range []string{"fences_per_op", "journal_commits", "log_appends",
			"relinks", "staging_reclaimed", "pm_bytes"} {
			dv, ok := dm[name]
			if !ok {
				continue
			}
			if lv := lm[name]; lv != dv {
				t.Errorf("%s: %s direct=%v leased=%v", kind, name, dv, lv)
			}
		}
		if lm["leased_read_bytes"] <= 0 {
			t.Errorf("%s: leased cell read no bytes through the mapping", kind)
		}
		if lm["read_wire_bytes"] != 0 {
			t.Errorf("%s: leased cell sent %v data bytes over the read wire, want 0",
				kind, lm["read_wire_bytes"])
		}
		if lm["leased_write_bytes"] <= 0 || lm["write_wire_bytes"] != 0 {
			t.Errorf("%s: leased cell write routing: leased=%v wire=%v, want all leased",
				kind, lm["leased_write_bytes"], lm["write_wire_bytes"])
		}
	}
}

// TestServerStreamDeterminism: two fresh processes-worth of state must
// agree on every counter (the property that lets CI pin the loopback
// cells in BENCH_baseline.json).
func TestServerStreamDeterminism(t *testing.T) {
	a, err := ServerStreamCell("served:splitfs-strict")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServerStreamCell("served:splitfs-strict")
	if err != nil {
		t.Fatal(err)
	}
	am, bm := metricMap(a), metricMap(b)
	for name, av := range am {
		if bv := bm[name]; bv != av {
			t.Errorf("rerun drift: %s %v vs %v", name, av, bv)
		}
	}
}

// TestRunServedSessionsSmoke drives a small concurrent sweep end to end.
func TestRunServedSessionsSmoke(t *testing.T) {
	r, err := RunServedSessions("splitfs-strict", 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 72 {
		t.Fatalf("ops = %d, want 72", r.Ops)
	}
	if r.Fences <= 0 || r.Commits <= 0 {
		t.Fatalf("no device activity recorded: fences=%d commits=%d", r.Fences, r.Commits)
	}
}
