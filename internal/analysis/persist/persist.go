// Package persist checks that simulated persistent-memory stores reach
// durability before the storing function returns. On the pmem device
// model a Store dirties cache lines (needs Flush, then Fence), a
// StoreNT enters the write-pending queue directly (needs Fence), and a
// StoreBuffered is checkpointed by the journaled commit machinery and
// needs nothing here. Persist/PersistNT bundle their own fence, and any
// Fence — the sfence is device-global — covers everything pending at
// that point.
//
// The walk is linear per function body in source order, so the check is
// an end-of-body one: stores still dirty or unfenced when the body runs
// out are reported. Functions whose contract is that the caller fences
// (ext4dax in-transaction writers, splitfs staging writers) carry a
// `// +persist:caller-fenced` annotation instead; the analyzer then
// exports an "unfenced" fact so their callers inherit the obligation,
// and a "fences" fact flows the other way for callees that fence
// unconditionally. Test files are skipped: crash tests leave stores
// unfenced on purpose.
package persist

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"splitfs/internal/analysis"
)

const name = "persist"

// CallerFenced is the annotation naming functions whose pending stores
// are the caller's responsibility.
const CallerFenced = "persist:caller-fenced"

// Analyzer is the persist analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check that pmem Store/StoreNT results are flushed and fenced (or " +
		"+persist:caller-fenced delegates the obligation) before return",
	Run: run,
}

type opKind int

const (
	opNone    opKind = iota
	opStore          // dirties cache lines: needs flush, then fence
	opStoreNT        // write-pending: needs fence
	opFlush          // moves dirty lines to write-pending
	opFence          // drains everything pending
	opCall           // named callee; effect comes from facts
)

// deviceOps classifies pmem.Device methods; mapOps the ext4dax.Mapping
// surface (whose Fence forwards to the device).
var deviceOps = map[string]opKind{
	"Store":         opStore,
	"StoreNT":       opStoreNT,
	"StoreBuffered": opNone, // journaled: the group commit flushes it
	"Flush":         opFlush,
	"Fence":         opFence,
	"Persist":       opFence, // store+flush+fence; ends drained
	"PersistNT":     opFence,
}

var mapOps = map[string]opKind{
	"StoreNT": opStoreNT,
	"Fence":   opFence,
}

type event struct {
	pos    token.Pos
	kind   opKind
	callee string // opCall
	what   string // human label for reports
}

type fnInfo struct {
	id        string
	annotated bool // +persist:caller-fenced
	events    []event
}

type pending struct {
	pos   token.Pos
	dirty bool // true: needs Flush first; false: needs Fence only
	what  string
}

func run(pass *analysis.Pass) error {
	var fns []*fnInfo
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			info := &fnInfo{
				id:        analysis.FuncID(fn),
				annotated: analysis.HasDirective(CallerFenced, fd.Doc),
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ev := classify(pass, call); ev != nil {
					info.events = append(info.events, *ev)
				}
				return true
			})
			fns = append(fns, info)
		}
	}

	local := map[string]*fnInfo{}
	for _, fn := range fns {
		if fn.id != "" {
			local[fn.id] = fn
		}
	}

	// Fixpoint 1: which functions fence. Monotone — a fence anywhere in
	// the body is an sfence covering the caller's pending stores too.
	fences := map[string]bool{}
	fenceFact := func(id string) bool {
		if f, ok := local[id]; ok {
			return fences[f.id]
		}
		if _, ok := pass.Facts.Import(name, "fences:"+id); ok {
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if fences[fn.id] {
				continue
			}
			for _, ev := range fn.events {
				if ev.kind == opFence || (ev.kind == opCall && fenceFact(ev.callee)) {
					fences[fn.id] = true
					changed = true
					break
				}
			}
		}
	}

	// Fixpoint 2: which annotated functions leave pending stores behind
	// (the caller-fenced obligation), with the fence map fixed.
	unfenced := map[string]bool{}
	unfencedFact := func(id string) bool {
		if f, ok := local[id]; ok {
			return unfenced[f.id]
		}
		if _, ok := pass.Facts.Import(name, "unfenced:"+id); ok {
			return true
		}
		return false
	}
	eval := func(fn *fnInfo) []pending {
		var pend []pending
		for _, ev := range fn.events {
			switch ev.kind {
			case opStore:
				pend = append(pend, pending{ev.pos, true, ev.what})
			case opStoreNT:
				pend = append(pend, pending{ev.pos, false, ev.what})
			case opFlush:
				for i := range pend {
					pend[i].dirty = false
				}
			case opFence:
				pend = nil
			case opCall:
				if fenceFact(ev.callee) {
					pend = nil
				}
				if unfencedFact(ev.callee) {
					pend = append(pend, pending{ev.pos, false, "call to " + ev.callee})
				}
			}
		}
		return pend
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if !fn.annotated || unfenced[fn.id] {
				continue
			}
			if len(eval(fn)) > 0 {
				unfenced[fn.id] = true
				changed = true
			}
		}
	}

	for _, fn := range fns {
		if fn.id == "" {
			continue
		}
		if fences[fn.id] {
			pass.Facts.Export(name, "fences:"+fn.id, true)
		}
		if unfenced[fn.id] {
			pass.Facts.Export(name, "unfenced:"+fn.id, true)
		}
	}

	// Report: non-annotated functions must end drained.
	for _, fn := range fns {
		if fn.annotated {
			continue
		}
		for _, p := range eval(fn) {
			if p.dirty {
				pass.Reportf(p.pos,
					"%s is not flushed and fenced before return; add Flush+Fence or annotate the function // +%s",
					p.what, CallerFenced)
			} else {
				pass.Reportf(p.pos,
					"%s is not fenced before return; add Fence or annotate the function // +%s",
					p.what, CallerFenced)
			}
		}
	}
	return nil
}

// classify maps a call to a persistence op. Device/Mapping methods
// match by receiver type; everything else with a named callee becomes
// an opCall resolved through facts.
func classify(pass *analysis.Pass, call *ast.CallExpr) *event {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil {
		return nil
	}
	if recv := receiverOf(fn); recv != "" {
		var kind opKind
		var ok bool
		switch recv {
		case "pmem.Device":
			kind, ok = deviceOps[fn.Name()]
		case "ext4dax.Mapping":
			kind, ok = mapOps[fn.Name()]
		}
		if ok {
			if kind == opNone {
				return nil
			}
			what := "pmem " + fn.Name()
			if kind == opStore || kind == opStoreNT {
				what += " result"
			}
			return &event{pos: call.Pos(), kind: kind, what: what}
		}
	}
	return &event{pos: call.Pos(), kind: opCall, callee: analysis.FuncID(fn)}
}

// receiverOf names a method receiver as "<pkgbase>.<Type>" for the two
// packages the device model lives in, else "".
func receiverOf(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	path := n.Obj().Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/pmem"):
		return "pmem." + n.Obj().Name()
	case strings.HasSuffix(path, "internal/ext4dax"):
		return "ext4dax." + n.Obj().Name()
	}
	return ""
}
