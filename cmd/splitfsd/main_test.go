package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"splitfs/internal/server"
	"splitfs/internal/vfs"
)

// TestDaemonCtlLive is the CI obs job's live-daemon check: build and
// start a real splitfsd with both sockets bound, drive nine concurrent
// tenant sessions over the data socket (the soak shape), and assert the
// control surface answers stats, sessions, and trace while the data
// plane is busy.
func TestDaemonCtlLive(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	// MkdirTemp on the default temp root keeps the unix socket paths
	// under the 108-byte sun_path limit.
	dir, err := os.MkdirTemp("", "splitfsd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	bin := filepath.Join(dir, "splitfsd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	const sessions = 9
	var mkdirs []string
	for i := 0; i < sessions; i++ {
		mkdirs = append(mkdirs, fmt.Sprintf("/tenant%d", i))
	}
	sock := filepath.Join(dir, "data.sock")
	ctl := filepath.Join(dir, "ctl.sock")
	cmd := exec.Command(bin,
		"-socket", sock,
		"-ctl-socket", ctl,
		"-backend", "splitfs-strict",
		"-mkdirs", strings.Join(mkdirs, ","))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	waitForSocket(t, sock)
	waitForSocket(t, ctl)

	ask := func(line string) string {
		t.Helper()
		c, err := net.Dial("unix", ctl)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 8192)
		for {
			n, err := c.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	// Soak: nine tenants, each writing and fsyncing in its own subtree.
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- tenantRun(sock, i)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var m server.ServerMetrics
	if err := json.Unmarshal([]byte(ask("stats")), &m); err != nil {
		t.Fatalf("stats reply is not JSON: %v", err)
	}
	if m.Ops == 0 || m.Bytes == 0 {
		t.Fatalf("daemon stats ops=%d bytes=%d after soak, want nonzero", m.Ops, m.Bytes)
	}
	// The daemon wires the wall clock as its op-cost feed.
	if m.Cost == 0 {
		t.Fatal("daemon stats cost = 0; wall-clock OpClock not wired")
	}

	var rows []server.SessionMetrics
	if err := json.Unmarshal([]byte(ask("sessions")), &rows); err != nil {
		t.Fatalf("sessions reply is not JSON: %v", err)
	}
	// All tenant sessions detached; the retired flight ring still serves
	// their traces. Find one via stats' totals: ask trace for ids 1..n
	// until one answers.
	traced := false
	for id := uint64(1); id <= sessions+2 && !traced; id++ {
		reply := ask(fmt.Sprintf("trace %d", id))
		if strings.HasPrefix(reply, "error: ") {
			continue
		}
		var sm server.SessionMetrics
		if err := json.Unmarshal([]byte(reply), &sm); err != nil {
			t.Fatalf("trace %d reply is not JSON: %v", id, err)
		}
		if len(sm.Flight) > 0 {
			traced = true
		}
	}
	if !traced {
		t.Fatal("no retired session's flight trace was retrievable over ctl")
	}
}

// waitForSocket polls until the daemon has bound path.
func waitForSocket(t *testing.T, path string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if c, err := net.Dial("unix", path); err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("socket %s never came up", path)
}

// tenantRun is one tenant session against a live daemon: create, write,
// fsync, read back, unlink half the files.
func tenantRun(sock string, tenant int) error {
	c, err := server.DialNetConfig("unix", sock,
		server.ClientConfig{Root: fmt.Sprintf("/tenant%d", tenant)})
	if err != nil {
		return fmt.Errorf("tenant %d: dial: %w", tenant, err)
	}
	defer c.Close()
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("/f%d", i)
		f, err := c.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			return fmt.Errorf("tenant %d: open %s: %w", tenant, p, err)
		}
		payload := []byte(strings.Repeat(fmt.Sprintf("t%d-%d ", tenant, i), 32))
		if _, err := f.Write(payload); err != nil {
			return fmt.Errorf("tenant %d: write %s: %w", tenant, p, err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("tenant %d: sync %s: %w", tenant, p, err)
		}
		got, err := vfs.ReadFile(c, p)
		if err != nil {
			return fmt.Errorf("tenant %d: read %s: %w", tenant, p, err)
		}
		if string(got) != string(payload) {
			return fmt.Errorf("tenant %d: %s readback mismatch", tenant, p)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("tenant %d: close %s: %w", tenant, p, err)
		}
		if i%2 == 1 {
			if err := c.Unlink(p); err != nil {
				return fmt.Errorf("tenant %d: unlink %s: %w", tenant, p, err)
			}
		}
	}
	return nil
}
