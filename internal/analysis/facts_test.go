package analysis

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFactRoundTrip covers the four wire shapes and the additive merge
// semantics the vettool protocol depends on: a vetx snapshot may repeat
// facts for shared dependencies, so merging must be idempotent.
func TestFactRoundTrip(t *testing.T) {
	a := NewFactStore()
	a.Export("t", "b", true)
	a.Export("t", "s", "v1")
	a.Export("t", "ss", []string{"b", "a"})
	a.Export("t", "m", map[string][]string{"x": {"y"}})

	var buf bytes.Buffer
	if err := a.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewFactStore()
	b.Export("t", "b", false)
	b.Export("t", "ss", []string{"c"})
	b.Export("t", "m", map[string][]string{"x": {"z"}, "w": {"q"}})
	if err := b.MergeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Merging the same snapshot again must not change anything.
	if err := b.MergeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if v, _ := b.Import("t", "b"); v != true {
		t.Errorf("bool fact: got %v, want true (merge ors)", v)
	}
	if v, _ := b.Import("t", "s"); v != "v1" {
		t.Errorf("string fact: got %v, want v1", v)
	}
	if v, _ := b.Import("t", "ss"); !reflect.DeepEqual(v, []string{"a", "b", "c"}) {
		t.Errorf("slice fact: got %v, want sorted union [a b c]", v)
	}
	want := map[string][]string{"x": {"y", "z"}, "w": {"q"}}
	if v, _ := b.Import("t", "m"); !reflect.DeepEqual(v, want) {
		t.Errorf("map fact: got %v, want %v", v, want)
	}
}

// TestFactEncodeRejectsUnsupported: a new analyzer exporting an
// unserializable fact type must fail loudly, not silently lose facts in
// vettool mode.
func TestFactEncodeRejectsUnsupported(t *testing.T) {
	s := NewFactStore()
	s.Export("t", "bad", 42)
	err := s.EncodeTo(&bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unsupported type") {
		t.Fatalf("EncodeTo = %v, want unsupported-type error", err)
	}
}
