package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles splitfs-vet into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "splitfs-vet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building splitfs-vet: %v\n%s", err, out)
	}
	return tool
}

// repoRoot locates the module root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestRepoClean is the suite self-check: the tree must carry zero
// surviving diagnostics, in the same standalone mode CI runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo analysis in -short mode")
	}
	tool := buildTool(t)
	cmd := exec.Command(tool, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("splitfs-vet ./... failed:\n%s", out)
	}
}

// TestInjectedViolationsFailGate writes a scratch module violating each
// of the five invariants and runs the tool in vettool mode through the
// real `go vet -vettool=` protocol: every analyzer must fire and the
// gate must fail. This is the regression test for the CI gate itself —
// a suite that silently reports nothing would pass a clean-tree check.
func TestInjectedViolationsFailGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and typechecks a scratch module in -short mode")
	}
	tool := buildTool(t)
	mod := t.TempDir()

	files := map[string]string{
		"go.mod": "module example.com/inj\n\ngo 1.24\n",
		// lockorder: inner held while acquiring outer.
		"locks/locks.go": `// Package locks violates the declared order.
//
// +lockrank:order outer < inner
package locks

import "sync"

type DB struct {
	Mu sync.Mutex // +lockrank:outer
}

type Table struct {
	Mu sync.Mutex // +lockrank:inner
}

func Bad(db *DB, t *Table) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	db.Mu.Lock()
	db.Mu.Unlock()
}
`,
		// determinism: wall-clock read in an unflagged package.
		"det/det.go": `package det

import "time"

func Bad() time.Time { return time.Now() }
`,
		// wireerr: opaque fmt.Errorf returned from a server package.
		"internal/server/server.go": `package server

import "fmt"

func Bad() error { return fmt.Errorf("opaque") }
`,
		// A pmem.Device lookalike: persist and evsource key on the
		// "internal/pmem" import-path suffix and method names.
		"internal/pmem/pmem.go": `package pmem

type EventSource int

type Device struct {
	src EventSource
}

func (d *Device) Store(off int64, p []byte)   {}
func (d *Device) StoreNT(off int64, p []byte) {}
func (d *Device) Flush(off, n int64)          {}
func (d *Device) Fence()                      {}

func (d *Device) SetEventSource(s EventSource) EventSource {
	prev := d.src
	d.src = s
	return prev
}
`,
		// persist: store escapes unfenced; evsource: switch without a
		// deferred restore.
		"use/use.go": `package use

import "example.com/inj/internal/pmem"

func BadStore(d *pmem.Device, p []byte) {
	d.Store(0, p)
}

func BadSwitch(d *pmem.Device) {
	prev := d.SetEventSource(1)
	d.Fence()
	d.SetEventSource(prev)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = mod
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a module violating every invariant:\n%s", out.String())
	}
	for _, want := range []string{
		"splitfs-lockorder:",
		"splitfs-determinism:",
		"splitfs-wireerr:",
		"splitfs-persist:",
		"splitfs-evsource:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("vettool output missing a %s diagnostic", want)
		}
	}
	if t.Failed() {
		t.Logf("vettool output:\n%s", out.String())
	}
}
