package pmem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"splitfs/internal/sim"
)

func newDev(t testing.TB, size int64) *Device {
	t.Helper()
	return New(Config{Size: size, Clock: sim.NewClock(), TrackPersistence: true, TrackWear: true})
}

func TestStoreNTReadBack(t *testing.T) {
	d := newDev(t, 1<<20)
	want := []byte("persistent memory")
	d.StoreNT(4096, want, sim.CatPMData)
	got := make([]byte, len(want))
	d.ReadAt(got, 4096, sim.CatPMData)
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestNTStoreNotDurableUntilFence(t *testing.T) {
	d := newDev(t, 1<<20)
	d.StoreNT(0, []byte("hello"), sim.CatPMData)
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	d.ReadAt(got, 0, sim.CatPMData)
	if !bytes.Equal(got, make([]byte, 5)) {
		t.Fatalf("unfenced NT store survived crash: %q", got)
	}
}

func TestNTStoreDurableAfterFence(t *testing.T) {
	d := newDev(t, 1<<20)
	d.StoreNT(0, []byte("hello"), sim.CatPMData)
	d.Fence()
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	d.ReadAt(got, 0, sim.CatPMData)
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("fenced NT store lost in crash: %q", got)
	}
}

func TestCachedStoreNeedsFlushAndFence(t *testing.T) {
	d := newDev(t, 1<<20)
	d.Store(128, []byte("cached"), sim.CatPMMeta)
	d.Fence() // fence without flush must NOT persist a cached store
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	d.ReadAt(got, 128, sim.CatPMMeta)
	if !bytes.Equal(got, make([]byte, 6)) {
		t.Fatalf("cached store persisted by fence alone: %q", got)
	}

	d.Store(128, []byte("cached"), sim.CatPMMeta)
	d.Flush(128, 6, sim.CatPMMeta)
	d.Fence()
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	d.ReadAt(got, 128, sim.CatPMMeta)
	if !bytes.Equal(got, []byte("cached")) {
		t.Fatalf("store+flush+fence lost in crash: %q", got)
	}
}

func TestPersistHelpers(t *testing.T) {
	d := newDev(t, 1<<20)
	d.PersistNT(0, []byte("nt"), sim.CatPMData)
	d.Persist(64, []byte("tmp"), sim.CatPMMeta)
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	d.ReadAt(got, 0, sim.CatPMData)
	if string(got) != "nt" {
		t.Fatalf("PersistNT lost: %q", got)
	}
	got3 := make([]byte, 3)
	d.ReadAt(got3, 64, sim.CatPMMeta)
	if string(got3) != "tmp" {
		t.Fatalf("Persist lost: %q", got3)
	}
}

func TestCrashTornLines(t *testing.T) {
	d := newDev(t, 1<<20)
	line := bytes.Repeat([]byte{0xAB}, sim.CacheLine)
	d.StoreNT(0, line, sim.CatOpLog) // unfenced
	rng := sim.NewRNG(99)
	if err := d.Crash(rng); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sim.CacheLine)
	d.ReadAt(got, 0, sim.CatOpLog)
	// With 8 independent 50% words, all-zero and all-AB are both ~0.4%
	// likely; the seed above produces a genuinely torn line.
	if bytes.Equal(got, line) || bytes.Equal(got, make([]byte, sim.CacheLine)) {
		t.Fatalf("expected torn line, got uniform %x", got[:8])
	}
}

func TestCrashWithoutTracking(t *testing.T) {
	d := New(Config{Size: 4096, Clock: sim.NewClock()})
	if err := d.Crash(nil); err != ErrNoPersistence {
		t.Fatalf("Crash() = %v, want ErrNoPersistence", err)
	}
}

func TestReadLatencySeqVsRand(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 1 << 20, Clock: clk})
	buf := make([]byte, 4096)
	d.ReadAt(buf, 0, sim.CatPMData) // first read: random
	before := clk.Now()
	d.ReadAt(buf, 4096, sim.CatPMData) // sequential continuation
	seq := clk.Now() - before
	before = clk.Now()
	d.ReadAt(buf, 512*1024, sim.CatPMData) // jump: random
	rnd := clk.Now() - before
	if rnd-seq != sim.PMRandReadLatencyNs-sim.PMSeqReadLatencyNs {
		t.Fatalf("rand-seq latency delta = %d, want %d", rnd-seq,
			sim.PMRandReadLatencyNs-sim.PMSeqReadLatencyNs)
	}
}

func TestTable2Anchor4KWrite(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 1 << 20, Clock: clk})
	d.StoreNT(0, make([]byte, 4096), sim.CatPMData)
	d.Fence()
	if got := clk.Now(); got < 640 || got > 700 {
		t.Fatalf("4KB NT write+fence = %dns, want ~671ns (paper §1)", got)
	}
}

func TestStatsAndWear(t *testing.T) {
	d := newDev(t, 1<<20)
	d.StoreNT(0, make([]byte, 4096), sim.CatPMData)
	d.Store(8192, make([]byte, 64), sim.CatPMMeta)
	d.Flush(8192, 64, sim.CatPMMeta)
	d.Fence()
	st := d.Stats()
	if st.BytesWrittenNT != 4096 || st.BytesWrittenCached != 64 {
		t.Fatalf("write stats = %+v", st)
	}
	if st.BytesWritten() != 4160 {
		t.Fatalf("BytesWritten() = %d", st.BytesWritten())
	}
	if st.Fences != 1 || st.Flushes != 1 {
		t.Fatalf("fences/flushes = %d/%d", st.Fences, st.Flushes)
	}
	if d.Wear(0) == 0 {
		t.Fatal("block 0 wear not recorded")
	}
	if d.MaxWear() == 0 {
		t.Fatal("MaxWear() = 0")
	}
}

func TestUnpersistedLines(t *testing.T) {
	d := newDev(t, 1<<20)
	d.StoreNT(0, make([]byte, 128), sim.CatPMData) // 2 lines
	if got := d.UnpersistedLines(); got != 2 {
		t.Fatalf("UnpersistedLines() = %d, want 2", got)
	}
	d.Fence()
	if got := d.UnpersistedLines(); got != 0 {
		t.Fatalf("after fence UnpersistedLines() = %d, want 0", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.StoreNT(4000, make([]byte, 200), sim.CatPMData)
}

func TestConcurrentDisjointWrites(t *testing.T) {
	d := newDev(t, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := []byte{byte(g + 1)}
			for i := 0; i < 100; i++ {
				off := int64(g*4096 + i)
				d.StoreNT(off, b, sim.CatPMData)
			}
		}(g)
	}
	wg.Wait()
	d.Fence()
	for g := 0; g < 8; g++ {
		got := make([]byte, 1)
		d.ReadAt(got, int64(g*4096+50), sim.CatPMData)
		if got[0] != byte(g+1) {
			t.Fatalf("goroutine %d data corrupted: %d", g, got[0])
		}
	}
}

// Property: any fenced NT write survives any crash, regardless of offset,
// length, and interleaving with unfenced writes elsewhere.
func TestPersistenceProperty(t *testing.T) {
	f := func(seed uint64, rawOff uint32, rawLen uint16) bool {
		d := newDev(t, 1<<20)
		off := int64(rawOff) % (1<<20 - 65536)
		n := int(rawLen)%4096 + 1
		rng := sim.NewRNG(seed)
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(rng.Uint64())
		}
		d.StoreNT(off, want, sim.CatPMData)
		d.Fence()
		// Unfenced noise elsewhere (different cache lines).
		noiseOff := (off + int64(n) + sim.CacheLine*4) % (1<<20 - 256)
		d.StoreNT(noiseOff, []byte{1, 2, 3}, sim.CatPMData)
		if err := d.Crash(sim.NewRNG(seed ^ 0xdead)); err != nil {
			return false
		}
		got := make([]byte, n)
		d.ReadAt(got, off, sim.CatPMData)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
