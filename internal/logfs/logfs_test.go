package logfs_test

import (
	"bytes"
	"errors"
	"testing"

	"splitfs/internal/logfs"
	"splitfs/internal/nova"
	"splitfs/internal/pmem"
	"splitfs/internal/pmfs"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

type mkfs func(dev *pmem.Device) *logfs.FS
type remount func(dev *pmem.Device) (*logfs.FS, int, error)

func variants() map[string]struct {
	mk mkfs
	mt remount
} {
	cfg := logfs.Config{LogBytes: 1 << 20, SnapshotSlotBytes: 1 << 20}
	return map[string]struct {
		mk mkfs
		mt remount
	}{
		"nova-strict": {
			mk: func(d *pmem.Device) *logfs.FS { return nova.New(d, nova.Strict, cfg) },
			mt: func(d *pmem.Device) (*logfs.FS, int, error) { return nova.Mount(d, nova.Strict, cfg) },
		},
		"nova-relaxed": {
			mk: func(d *pmem.Device) *logfs.FS { return nova.New(d, nova.Relaxed, cfg) },
			mt: func(d *pmem.Device) (*logfs.FS, int, error) { return nova.Mount(d, nova.Relaxed, cfg) },
		},
		"pmfs": {
			mk: func(d *pmem.Device) *logfs.FS { return pmfs.New(d, cfg) },
			mt: func(d *pmem.Device) (*logfs.FS, int, error) { return pmfs.Mount(d, cfg) },
		},
	}
}

func newDev(t testing.TB) *pmem.Device {
	t.Helper()
	return pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock(),
		TrackPersistence: true, TrackWear: true})
}

func TestBasicFileOperations(t *testing.T) {
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			fs := v.mk(newDev(t))
			if err := vfs.WriteFile(fs, "/f", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			got, err := vfs.ReadFile(fs, "/f")
			if err != nil || string(got) != "payload" {
				t.Fatalf("read = %q, %v", got, err)
			}
			if err := fs.Mkdir("/d", 0755); err != nil {
				t.Fatal(err)
			}
			if err := fs.Rename("/f", "/d/g"); err != nil {
				t.Fatal(err)
			}
			ents, _ := fs.ReadDir("/d")
			if len(ents) != 1 || ents[0].Name != "g" {
				t.Fatalf("entries = %v", ents)
			}
			if err := fs.Unlink("/d/g"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Rmdir("/d"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
				t.Fatalf("stat removed dir = %v", err)
			}
		})
	}
}

func TestOverwritePreservesNeighbors(t *testing.T) {
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			fs := v.mk(newDev(t))
			f, _ := vfs.Create(fs, "/f")
			f.Write(bytes.Repeat([]byte("A"), 3*sim.BlockSize))
			// Unaligned overwrite crossing a block boundary: COW must
			// preserve the uncovered bytes.
			patch := bytes.Repeat([]byte("B"), sim.BlockSize)
			if _, err := f.WriteAt(patch, sim.BlockSize/2); err != nil {
				t.Fatal(err)
			}
			got, _ := vfs.ReadFile(fs, "/f")
			want := bytes.Repeat([]byte("A"), 3*sim.BlockSize)
			copy(want[sim.BlockSize/2:], patch)
			if !bytes.Equal(got, want) {
				t.Fatal("overwrite corrupted neighboring bytes")
			}
			f.Close()
		})
	}
}

func TestOpsAreSynchronous(t *testing.T) {
	// NOVA and PMFS ops must be durable without fsync.
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			dev := newDev(t)
			fs := v.mk(dev)
			f, _ := vfs.Create(fs, "/sync")
			f.Write([]byte("durable-without-fsync"))
			// No fsync, no close; crash.
			if err := dev.Crash(nil); err != nil {
				t.Fatal(err)
			}
			fs2, _, err := v.mt(dev)
			if err != nil {
				t.Fatal(err)
			}
			got, err := vfs.ReadFile(fs2, "/sync")
			if err != nil || string(got) != "durable-without-fsync" {
				t.Fatalf("unsynced write lost: %q, %v", got, err)
			}
		})
	}
}

func TestRecoveryAfterCheckpoint(t *testing.T) {
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			dev := newDev(t)
			fs := v.mk(dev)
			for i := 0; i < 5; i++ {
				vfs.WriteFile(fs, "/pre"+string(rune('a'+i)), []byte{byte(i)})
			}
			fs.Checkpoint()
			vfs.WriteFile(fs, "/post", []byte("after-checkpoint"))
			if err := dev.Crash(nil); err != nil {
				t.Fatal(err)
			}
			fs2, _, err := v.mt(dev)
			if err != nil {
				t.Fatal(err)
			}
			got, err := vfs.ReadFile(fs2, "/prea")
			if err != nil || got[0] != 0 {
				t.Fatalf("pre-checkpoint file lost: %v", err)
			}
			got, err = vfs.ReadFile(fs2, "/post")
			if err != nil || string(got) != "after-checkpoint" {
				t.Fatalf("post-checkpoint file lost: %q %v", got, err)
			}
		})
	}
}

func TestAutoCheckpointWhenLogFills(t *testing.T) {
	dev := newDev(t)
	fs := nova.New(dev, nova.Relaxed, logfs.Config{
		LogBytes: 8192, SnapshotSlotBytes: 1 << 20, // tiny log: ~127 entries
	})
	f, _ := vfs.Create(fs, "/many")
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 300; i++ {
		if _, err := f.Write(blk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fs.Stats().Checkpoints == 0 {
		t.Fatal("log never checkpointed")
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := nova.Mount(dev, nova.Relaxed, logfs.Config{
		LogBytes: 8192, SnapshotSlotBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := fs2.Stat("/many")
	if err != nil || info.Size != 300*sim.BlockSize {
		t.Fatalf("after checkpointed recovery: %+v, %v", info, err)
	}
}

func TestNovaStrictWriteIsAtomicUnderTornCrash(t *testing.T) {
	// A COW overwrite that is interrupted must leave either the old or
	// the new content, never a mix. We crash with torn unfenced lines.
	dev := newDev(t)
	fs := nova.New(dev, nova.Strict, logfs.Config{})
	old := bytes.Repeat([]byte("O"), sim.BlockSize)
	vfs.WriteFile(fs, "/atomic", old)
	f, _ := fs.OpenFile("/atomic", vfs.O_RDWR, 0)
	f.WriteAt(bytes.Repeat([]byte("N"), sim.BlockSize), 0)
	if err := dev.Crash(sim.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := nova.Mount(dev, nova.Strict, logfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs2, "/atomic")
	if err != nil {
		t.Fatal(err)
	}
	allO := bytes.Equal(got, old)
	allN := bytes.Equal(got, bytes.Repeat([]byte("N"), sim.BlockSize))
	if !allO && !allN {
		t.Fatalf("NOVA-strict write torn: first bytes %q", got[:8])
	}
}

func TestTable1AppendCosts(t *testing.T) {
	// NOVA-strict 4 KB append ~3021 ns; PMFS ~4150 ns (Table 1).
	check := func(t *testing.T, fs vfs.FileSystem, clk *sim.Clock, lo, hi int64) {
		f, _ := vfs.Create(fs, "/bench")
		f.Write(make([]byte, sim.BlockSize)) // warm
		start := clk.Now()
		const n = 64
		for i := 0; i < n; i++ {
			f.Write(make([]byte, sim.BlockSize))
		}
		per := (clk.Now() - start) / n
		if per < lo || per > hi {
			t.Fatalf("append = %d ns/op, want [%d,%d]", per, lo, hi)
		}
	}
	t.Run("nova-strict", func(t *testing.T) {
		dev := newDev(t)
		check(t, nova.New(dev, nova.Strict, logfs.Config{}), dev.Clock(), 2300, 3800)
	})
	t.Run("pmfs", func(t *testing.T) {
		dev := newDev(t)
		check(t, pmfs.New(dev, pmfs.Config{}), dev.Clock(), 3100, 5200)
	})
}

func TestNovaTwoFencesPerOp(t *testing.T) {
	dev := newDev(t)
	fs := nova.New(dev, nova.Strict, logfs.Config{})
	f, _ := vfs.Create(fs, "/fences")
	f.Write(make([]byte, sim.BlockSize))
	before := dev.Stats().Fences
	f.Write(make([]byte, sim.BlockSize))
	// COW data fence + log entry fence + tail fence = 3 for strict
	// (the paper's "two cache lines and two fences" refers to logging
	// alone: entry + tail).
	if got := dev.Stats().Fences - before; got != 3 {
		t.Fatalf("NOVA-strict append used %d fences, want 3 (1 data + 2 log)", got)
	}
}

func TestSparseFilesAndEOF(t *testing.T) {
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			fs := v.mk(newDev(t))
			f, _ := vfs.Create(fs, "/sparse")
			f.WriteAt([]byte("end"), 100000)
			buf := make([]byte, 50)
			n, err := f.ReadAt(buf, 0)
			if err != nil || n != 50 {
				t.Fatalf("hole read = %d, %v", n, err)
			}
			if !bytes.Equal(buf, make([]byte, 50)) {
				t.Fatal("hole not zero")
			}
			info, _ := f.Stat()
			if info.Size != 100003 {
				t.Fatalf("size = %d", info.Size)
			}
			f.Close()
		})
	}
}

func TestTruncateAndSpaceReuse(t *testing.T) {
	for name, v := range variants() {
		t.Run(name, func(t *testing.T) {
			fs := v.mk(newDev(t))
			free := fs.FreeBlocks()
			f, _ := vfs.Create(fs, "/t")
			f.Write(make([]byte, 10*sim.BlockSize))
			f.Truncate(sim.BlockSize)
			f.Close()
			fs.Unlink("/t")
			if fs.FreeBlocks() != free {
				t.Fatalf("space leaked: %d -> %d", free, fs.FreeBlocks())
			}
		})
	}
}

func TestRenameReplaceFreesTarget(t *testing.T) {
	fs := variants()["pmfs"].mk(newDev(t))
	vfs.WriteFile(fs, "/a", make([]byte, 4*sim.BlockSize))
	vfs.WriteFile(fs, "/b", make([]byte, 2*sim.BlockSize))
	free := fs.FreeBlocks()
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free+2 {
		t.Fatalf("rename-replace freed %d, want 2", fs.FreeBlocks()-free)
	}
}
