package ext4dax

import (
	"sort"

	"splitfs/internal/alloc"
)

// appendFileExtent adds a physical extent at the end of the file's
// logical block space, merging with the last extent when physically
// contiguous.
func appendFileExtent(in *inode, e alloc.Extent) {
	logical := int64(0)
	if n := len(in.extents); n > 0 {
		last := &in.extents[n-1]
		logical = last.logicalEnd()
		if last.phys.End() == e.Start {
			last.phys.Len += e.Len
			return
		}
	}
	in.extents = append(in.extents, fileExtent{logical: logical, phys: e})
}

// insertFileExtent places a physical extent at an arbitrary logical block
// position (used for hole-filling writes and extent swaps). The caller
// guarantees the logical range [logical, logical+e.Len) is currently a
// hole.
func insertFileExtent(in *inode, logical int64, e alloc.Extent) {
	fe := fileExtent{logical: logical, phys: e}
	idx := sort.Search(len(in.extents), func(i int) bool {
		return in.extents[i].logical > logical
	})
	in.extents = append(in.extents, fileExtent{})
	copy(in.extents[idx+1:], in.extents[idx:])
	in.extents[idx] = fe
	mergeExtents(in)
}

// mergeExtents coalesces logically and physically adjacent extents.
func mergeExtents(in *inode) {
	if len(in.extents) < 2 {
		return
	}
	out := in.extents[:1]
	for _, e := range in.extents[1:] {
		last := &out[len(out)-1]
		if last.logicalEnd() == e.logical && last.phys.End() == e.phys.Start {
			last.phys.Len += e.phys.Len
		} else {
			out = append(out, e)
		}
	}
	in.extents = out
}

// translate maps a logical block to its device block, returning the
// number of blocks that are contiguous from there (within the extent).
// ok is false for holes.
func translate(fs *FS, in *inode, logical int64) (devOff int64, contig int64, ok bool) {
	idx := sort.Search(len(in.extents), func(i int) bool {
		return in.extents[i].logicalEnd() > logical
	})
	if idx == len(in.extents) || in.extents[idx].logical > logical {
		return 0, 0, false
	}
	e := in.extents[idx]
	delta := logical - e.logical
	return fs.bBmp.BlockOffset(e.phys.Start + delta), e.phys.Len - delta, true
}

// blockOf returns the device offset of one logical block.
func (fs *FS) blockOf(in *inode, logical int64) (int64, bool) {
	off, _, ok := translate(fs, in, logical)
	return off, ok
}

// truncateExtents removes all blocks at or after the given logical block,
// returning the freed physical extents. Partial extents are split.
func truncateExtents(in *inode, fromLogical int64) []alloc.Extent {
	var freed []alloc.Extent
	var keep []fileExtent
	for _, e := range in.extents {
		switch {
		case e.logicalEnd() <= fromLogical:
			keep = append(keep, e)
		case e.logical >= fromLogical:
			freed = append(freed, e.phys)
		default: // straddles: keep the head, free the tail
			headLen := fromLogical - e.logical
			keep = append(keep, fileExtent{
				logical: e.logical,
				phys:    alloc.Extent{Start: e.phys.Start, Len: headLen},
			})
			freed = append(freed, alloc.Extent{
				Start: e.phys.Start + headLen,
				Len:   e.phys.Len - headLen,
			})
		}
	}
	in.extents = keep
	return freed
}

// extractExtents removes the logical block range [from, from+count) from
// the file and returns the physical extents that backed it (for
// SwapExtents). Holes in the range yield nothing. Extents straddling the
// boundaries are split.
func extractExtents(in *inode, from, count int64) []alloc.Extent {
	to := from + count
	var removed []alloc.Extent
	var keep []fileExtent
	for _, e := range in.extents {
		if e.logicalEnd() <= from || e.logical >= to {
			keep = append(keep, e)
			continue
		}
		// Overlap: possibly keep a head and/or tail.
		if e.logical < from {
			headLen := from - e.logical
			keep = append(keep, fileExtent{
				logical: e.logical,
				phys:    alloc.Extent{Start: e.phys.Start, Len: headLen},
			})
		}
		ovStart := max64(e.logical, from)
		ovEnd := min64(e.logicalEnd(), to)
		removed = append(removed, alloc.Extent{
			Start: e.phys.Start + (ovStart - e.logical),
			Len:   ovEnd - ovStart,
		})
		if e.logicalEnd() > to {
			tailLen := e.logicalEnd() - to
			keep = append(keep, fileExtent{
				logical: to,
				phys: alloc.Extent{
					Start: e.phys.Start + (to - e.logical),
					Len:   tailLen,
				},
			})
		}
	}
	in.extents = keep
	return removed
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
