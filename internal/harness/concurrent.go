// Concurrent-mode throughput is measured in wall-clock time across
// worker goroutines; both are deliberate here (see below).
//
// +determinism:wallclock
// +determinism:concurrent

package harness

import (
	"fmt"
	"sync"
	"time"

	"splitfs/internal/apps/waldb"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Concurrent mode: N worker goroutines drive one file-system instance at
// once, each over its own files — the multi-threaded deployment of §3.5.
//
// The simulated clock is a single global tally and cannot express
// parallel elapsed time, so concurrent-mode results are wall-clock
// aggregate throughput: they measure how well the lock hierarchy (sharded
// PM device, per-file U-Split locks, per-inode K-Split locks) lets
// independent operations overlap. Meaningful scaling needs GOMAXPROCS >=
// threads; single-threaded runs of the same loops remain the simulated-
// time baseline (see DESIGN.md). Run `splitbench -threads N scaling` to
// sweep.

func init() {
	register("scaling", "Aggregate wall-clock throughput vs worker threads (concurrent mode)", scalingExp)
}

// threadCounts is the sweep used by the scaling experiment; see
// SetMaxThreads.
var threadCounts = []int{1, 2, 4}

// SetMaxThreads reconfigures the scaling sweep to powers of two up to and
// including n (cmd/splitbench's -threads flag).
func SetMaxThreads(n int) {
	if n < 1 {
		n = 1
	}
	var counts []int
	for t := 1; t < n; t *= 2 {
		counts = append(counts, t)
	}
	threadCounts = append(counts, n)
}

// ConcurrentResult is one measured concurrent run.
type ConcurrentResult struct {
	Threads int
	Ops     int64 // total operations across workers
	WallNs  int64 // wall-clock elapsed time
	SimNs   int64 // simulated time charged by all workers together
}

// WallKops is aggregate wall-clock throughput in Kops/s.
func (r ConcurrentResult) WallKops() float64 { return kops(r.Ops, r.WallNs) }

// concurrentRun spawns threads workers over fn (worker index, ops per
// worker) and measures the aggregate.
func concurrentRun(e *env, threads, opsPerThread int, fn func(worker int) error) (ConcurrentResult, error) {
	before := e.clk.Snapshot()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- fn(g)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ConcurrentResult{}, err
		}
	}
	return ConcurrentResult{
		Threads: threads,
		Ops:     int64(threads) * int64(opsPerThread),
		WallNs:  time.Since(start).Nanoseconds(),
		SimNs:   e.clk.Snapshot().Sub(before).Total,
	}, nil
}

// RunConcurrentAppends measures threads workers appending blockBytes
// blocks to distinct files (fsync every 16 appends) on a fresh instance
// of kind.
func RunConcurrentAppends(kind string, threads, opsPerThread, blockBytes int) (ConcurrentResult, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return ConcurrentResult{}, err
	}
	return concurrentRun(e, threads, opsPerThread, func(g int) error {
		f, err := vfs.Create(e.fs, fmt.Sprintf("/app%02d", g))
		if err != nil {
			return err
		}
		defer f.Close()
		blk := make([]byte, blockBytes)
		for i := 0; i < opsPerThread; i++ {
			if _, err := f.Write(blk); err != nil {
				return err
			}
			if i%16 == 15 {
				if err := f.Sync(); err != nil {
					return err
				}
			}
		}
		return f.Sync()
	})
}

// RunConcurrentReads measures threads workers reading blockBytes blocks
// from distinct pre-written files.
func RunConcurrentReads(kind string, threads, opsPerThread, blockBytes int) (ConcurrentResult, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return ConcurrentResult{}, err
	}
	// Per-worker file size shrinks at extreme thread counts so the
	// pre-fill never outgrows the device (cap: half of appDev total).
	fileBlocks := min(512, max(16, int(appDev/2/sim.BlockSize)/threads))
	for g := 0; g < threads; g++ {
		f, err := vfs.Create(e.fs, fmt.Sprintf("/rd%02d", g))
		if err != nil {
			return ConcurrentResult{}, err
		}
		blk := make([]byte, blockBytes)
		for i := 0; i < fileBlocks; i++ {
			if _, err := f.Write(blk); err != nil {
				return ConcurrentResult{}, err
			}
		}
		if err := f.Sync(); err != nil {
			return ConcurrentResult{}, err
		}
		if err := f.Close(); err != nil {
			return ConcurrentResult{}, err
		}
	}
	return concurrentRun(e, threads, opsPerThread, func(g int) error {
		f, err := vfs.Open(e.fs, fmt.Sprintf("/rd%02d", g))
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, blockBytes)
		for i := 0; i < opsPerThread; i++ {
			off := int64(i*2647%fileBlocks) * int64(blockBytes)
			if _, err := f.ReadAt(buf, off); err != nil {
				return err
			}
		}
		return nil
	})
}

// RunConcurrentWAL measures threads workers each committing transactions
// to their own waldb database (the §5.2 SQLite-WAL app pattern) on one
// shared instance of kind.
func RunConcurrentWAL(kind string, threads, txPerThread int) (ConcurrentResult, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return ConcurrentResult{}, err
	}
	return concurrentRun(e, threads, txPerThread, func(g int) error {
		db, err := waldb.Open(e.fs, waldb.Options{Path: fmt.Sprintf("/wal%02d.db", g)})
		if err != nil {
			return err
		}
		defer db.Close()
		page := make([]byte, waldb.PageSize)
		for i := 0; i < txPerThread; i++ {
			if err := db.Begin(); err != nil {
				return err
			}
			for p := 0; p < 4; p++ {
				if err := db.WritePage(uint32(i*4+p)%256+1, page); err != nil {
					return err
				}
			}
			if err := db.Commit(); err != nil {
				return err
			}
		}
		return nil
	})
}

// scalingExp sweeps worker threads over the append, read, and WAL-commit
// workloads on ext4 DAX and SplitFS-POSIX. The speedup column is
// aggregate wall-clock throughput relative to the same workload at one
// thread.
func scalingExp() (*Table, error) {
	t := &Table{
		ID:    "scaling",
		Title: "Concurrent-mode aggregate throughput (wall clock)",
		Note: fmt.Sprintf("threads swept %v (splitbench -threads N); wall-clock scaling needs GOMAXPROCS >= threads — "+
			"speedup is relative to the 1-thread run of the same workload", threadCounts),
		Headers: []string{"File system", "Threads",
			"4K appends (Kops/s)", "x", "4K reads (Kops/s)", "x", "WAL commits (Kops/s)", "x"},
	}
	const ops = 2048
	for _, kind := range []string{"ext4-dax", "splitfs-posix"} {
		var base [3]float64
		for ti, threads := range threadCounts {
			// At least one op per worker, so an extreme -threads value
			// degrades to more total ops instead of a meaningless 0-op run.
			a, err := RunConcurrentAppends(kind, threads, max(1, ops/threads), sim.BlockSize)
			if err != nil {
				return nil, fmt.Errorf("%s appends x%d: %w", kind, threads, err)
			}
			r, err := RunConcurrentReads(kind, threads, max(1, ops/threads), sim.BlockSize)
			if err != nil {
				return nil, fmt.Errorf("%s reads x%d: %w", kind, threads, err)
			}
			w, err := RunConcurrentWAL(kind, threads, max(1, 256/threads))
			if err != nil {
				return nil, fmt.Errorf("%s wal x%d: %w", kind, threads, err)
			}
			cur := [3]float64{a.WallKops(), r.WallKops(), w.WallKops()}
			if ti == 0 {
				base = cur
			}
			rel := func(i int) string {
				if base[i] == 0 {
					return "-"
				}
				return xf(cur[i] / base[i])
			}
			t.Rows = append(t.Rows, []string{
				kind, fmt.Sprint(threads),
				f1(cur[0]), rel(0), f1(cur[1]), rel(1), f1(cur[2]), rel(2),
			})
			for i, wl := range []string{"appends", "reads", "wal_commits"} {
				t.AddMetric(fmt.Sprintf("%s_%s_t%d", kind, wl, threads), cur[i], "kops/s-wall")
			}
		}
	}
	return t, nil
}
