package wireerr_test

import (
	"testing"

	"splitfs/internal/analysis/analysistest"
	"splitfs/internal/analysis/wireerr"
)

func TestWireErr(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), wireerr.Analyzer, "wiretest/server")
}
