package crash

import (
	"testing"
)

// TestDifferentialEquivalence feeds generated traces from all three
// workload generators through every backend and requires identical
// final namespaces and file contents.
func TestDifferentialEquivalence(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
	}{
		{"write", RandomOps(91, 30)},
		{"meta", MetadataOps(203, 30)},
		{"async", AsyncOps(119, 30)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Differential(tc.ops, 0)
			if err != nil {
				t.Fatalf("differential: %v", err)
			}
			if res.Syscalls == 0 {
				t.Fatal("empty trace")
			}
			for _, m := range res.Mismatches {
				t.Errorf("mismatch: %s", m)
			}
		})
	}
}

// TestDifferentialTraceGolden pins the compiled differential trace for a
// fixed seed: the suite's value depends on every run of a given seed
// exercising the same trace, so generator or compiler drift must be a
// conscious decision. If this fails after an intentional change to
// RandomOps/MetadataOps/AsyncOps or compile, update the constants from
// the failure message.
func TestDifferentialTraceGolden(t *testing.T) {
	golden := []struct {
		name     string
		ops      []Op
		syscalls int
		hash     uint64
	}{
		{"write-seed91", RandomOps(91, 30), 39, 0x8391ecd095a546f9},
		{"meta-seed203", MetadataOps(203, 30), 40, 0x98701796be629d3},
		{"async-seed119", AsyncOps(119, 30), 41, 0x14d52d344ede97e0},
	}
	for _, g := range golden {
		sys := compile(g.ops)
		h := TraceHash(renderTrace(sys))
		if len(sys) != g.syscalls || h != g.hash {
			t.Errorf("%s: trace changed: syscalls=%d hash=%#x (pinned %d/%#x)",
				g.name, len(sys), h, g.syscalls, g.hash)
		}
	}
}
