package vfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"":            "/",
		"/":           "/",
		"a":           "/a",
		"/a/b":        "/a/b",
		"/a//b/":      "/a/b",
		"/a/./b":      "/a/b",
		"/a/../b":     "/b",
		"/../a":       "/a",
		"a/b/../c/./": "/a/c",
		// Leading ".." runs clamp at the root — the lexical-confinement
		// property the server's session layer builds its subtree
		// resolution on.
		"..":          "/",
		"../..":       "/",
		"../../a":     "/a",
		"/../../a/..": "/",
		"..a":         "/..a", // not a dotdot component
		// "."-only and trailing-slash shapes.
		".":     "/",
		"./.":   "/",
		"./a/.": "/a",
		"a/":    "/a",
		"//":    "/",
		"a//":   "/a",
	}
	for in, want := range cases {
		if got := CleanPath(in); got != want {
			t.Errorf("CleanPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"/", nil},
		{".", nil},
		{"..", nil},
		{"../../..", nil},
		{"/a/b", []string{"a", "b"}},
		{"a//b///c", []string{"a", "b", "c"}},
		{"/a/../b/./c/..", []string{"b"}},
		{"../a", []string{"a"}},
		{"a/..", nil},
	}
	for _, c := range cases {
		got := SplitPath(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestSplitDir(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", ""},
		{"a/b", "/a", "b"},
		// Edge shapes the session layer leans on.
		{"", "/", ""},
		{"..", "/", ""},
		{"/a/b/", "/a", "b"},
		{"/a/../b", "/", "b"},
		{"a/./b/..", "/", "a"},
	}
	for _, c := range cases {
		d, b := SplitDir(c.in)
		if d != c.dir || b != c.base {
			t.Errorf("SplitDir(%q) = (%q,%q), want (%q,%q)", c.in, d, b, c.dir, c.base)
		}
	}
}

func TestCleanPathIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		c := CleanPath(s)
		return CleanPath(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlagHelpers(t *testing.T) {
	if !Readable(O_RDONLY) || !Readable(O_RDWR) || Readable(O_WRONLY) {
		t.Fatal("Readable wrong")
	}
	if !Writable(O_WRONLY) || !Writable(O_RDWR) || Writable(O_RDONLY) {
		t.Fatal("Writable wrong")
	}
	if Readable(O_WRONLY | O_CREATE | O_TRUNC) {
		t.Fatal("flags beyond access mode must not affect Readable")
	}
}

func TestPathError(t *testing.T) {
	err := WrapPath("open", "/x", ErrNotExist)
	if !errors.Is(err, ErrNotExist) {
		t.Fatal("PathError does not unwrap")
	}
	if err.Error() != "open /x: file does not exist" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if WrapPath("open", "/x", nil) != nil {
		t.Fatal("WrapPath(nil) != nil")
	}
}

// fakeFile counts Close calls for FD table tests.
type fakeFile struct {
	File
	closed int
	off    int64
}

func (f *fakeFile) Close() error                       { f.closed++; return nil }
func (f *fakeFile) Seek(o int64, w int) (int64, error) { f.off = o; return o, nil }
func (f *fakeFile) Path() string                       { return fmt.Sprintf("/fake%p", f) }

func TestFDTableInsertGetClose(t *testing.T) {
	tab := NewFDTable()
	f := &fakeFile{}
	fd := tab.Insert(f)
	got, err := tab.Get(fd)
	if err != nil || got != File(f) {
		t.Fatalf("Get(%d) = %v, %v", fd, got, err)
	}
	if err := tab.Close(fd); err != nil {
		t.Fatal(err)
	}
	if f.closed != 1 {
		t.Fatalf("file closed %d times, want 1", f.closed)
	}
	if _, err := tab.Get(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Get after close = %v, want ErrBadFD", err)
	}
}

func TestFDTableDupSharesFileAndDefersClose(t *testing.T) {
	tab := NewFDTable()
	f := &fakeFile{}
	fd := tab.Insert(f)
	dup, err := tab.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := tab.Get(fd)
	g2, _ := tab.Get(dup)
	if g1 != g2 {
		t.Fatal("dup'd descriptors do not share the open file description")
	}
	if err := tab.Close(fd); err != nil {
		t.Fatal(err)
	}
	if f.closed != 0 {
		t.Fatal("file closed while a dup'd descriptor remains")
	}
	if err := tab.Close(dup); err != nil {
		t.Fatal(err)
	}
	if f.closed != 1 {
		t.Fatalf("file closed %d times, want 1", f.closed)
	}
}

func TestFDTableErrors(t *testing.T) {
	tab := NewFDTable()
	if _, err := tab.Dup(42); !errors.Is(err, ErrBadFD) {
		t.Fatal("Dup of bad fd must fail")
	}
	if err := tab.Close(42); !errors.Is(err, ErrBadFD) {
		t.Fatal("Close of bad fd must fail")
	}
}

func TestFDTableCloseAllTeardown(t *testing.T) {
	tab := NewFDTable()
	a := &fakeFile{}
	b := &fakeFile{}
	fdA := tab.Insert(a)
	if _, err := tab.Dup(fdA); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Dup(fdA); err != nil {
		t.Fatal(err)
	}
	tab.Insert(b)
	if err := tab.CloseAll(); err != nil {
		t.Fatal(err)
	}
	// Each distinct file closes exactly once, however many dup'd
	// descriptors pointed at it.
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("closed counts a=%d b=%d, want 1/1", a.closed, b.closed)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after CloseAll", tab.Len())
	}
	// Idempotent: a second teardown is a no-op.
	if err := tab.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("second CloseAll re-closed files: a=%d b=%d", a.closed, b.closed)
	}
	// The table stays usable after teardown.
	fd := tab.Insert(&fakeFile{})
	if _, err := tab.Get(fd); err != nil {
		t.Fatal(err)
	}
}

func TestFDTableCloseAllPartiallyDupped(t *testing.T) {
	// A file whose dup'd descriptor was individually closed first must
	// still close exactly once at teardown.
	tab := NewFDTable()
	f := &fakeFile{}
	fd := tab.Insert(f)
	dup, err := tab.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(dup); err != nil {
		t.Fatal(err)
	}
	if f.closed != 0 {
		t.Fatal("file closed while a descriptor remains")
	}
	if err := tab.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if f.closed != 1 {
		t.Fatalf("closed %d times, want 1", f.closed)
	}
}

func TestFDTableFilesDedups(t *testing.T) {
	tab := NewFDTable()
	f := &fakeFile{}
	fd := tab.Insert(f)
	if _, err := tab.Dup(fd); err != nil {
		t.Fatal(err)
	}
	tab.Insert(&fakeFile{})
	if got := len(tab.Files()); got != 2 {
		t.Fatalf("Files() = %d distinct, want 2", got)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tab.Len())
	}
}
