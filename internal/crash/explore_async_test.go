package crash

import (
	"strings"
	"testing"

	"splitfs/internal/pmem"
	"splitfs/internal/splitfs"
)

// TestAsyncRelinkSweepAllModes sweeps persistence events over a workload
// shaped for the asynchronous relink pipeline — multi-file appends with
// per-file fsyncs and group syncs (OpSyncAll) — in all three modes. The
// pipeline runs in deterministic single-drain mode (the default), so the
// sweep crosses the background-stage events (relink workers, group
// commit, staging reclamation) at every point; all of them must be
// violation-free.
func TestAsyncRelinkSweepAllModes(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Explore(ExploreConfig{
				Mode: mode,
				Ops:  AsyncOps(53, 18),
				Seed: 5,
				// Bounded: the full windows run to thousands of events;
				// the deterministic sample still crosses dozens of
				// background-stage events (asserted below).
				Sample: 160,
			})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation at event %d: %s", v.Event, v.Msg)
			}
			if len(res.UnknownKinds) != 0 {
				t.Errorf("unknown event kinds: %v", res.UnknownKinds)
			}
			// The workload must actually produce background-pipeline
			// events, and the sweep must crash at some of them.
			var pipelineEvents, pipelineTested int64
			for k, n := range res.ByKind {
				if strings.Contains(k, "@relink") || strings.Contains(k, "@reclaim") {
					pipelineEvents += n
				}
			}
			for k, n := range res.TestedByKind {
				if strings.Contains(k, "@relink") || strings.Contains(k, "@reclaim") {
					pipelineTested += n
				}
			}
			if pipelineEvents == 0 {
				t.Fatalf("no background-pipeline events in window; ByKind=%v", res.ByKind)
			}
			if pipelineTested == 0 {
				t.Fatalf("sweep tested no background-pipeline events; TestedByKind=%v", res.TestedByKind)
			}
		})
	}
}

// TestGroupSyncDoubleCrash drives the multi-file group-commit drain
// through double crashes (a second crash inside recovery) to confirm
// recovery of group-committed batches is itself crash-consistent.
func TestGroupSyncDoubleCrash(t *testing.T) {
	res, err := Explore(ExploreConfig{
		Mode:        splitfs.Strict,
		Ops:         AsyncOps(29, 12),
		Seed:        3,
		Sample:      24,
		DoubleCrash: true,
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation event=%d double=%d: %s", v.Event, v.DoubleEvent, v.Msg)
	}
	if res.DoubleTested == 0 {
		t.Fatal("no double-crash runs executed")
	}
}

// TestUnknownEventKindsSurfaced verifies that a trace containing event
// kinds or sources this build does not know lands in UnknownKinds
// instead of being silently bucketed under a known label.
func TestUnknownEventKindsSurfaced(t *testing.T) {
	record := []pmem.Event{
		{Seq: 11, Kind: pmem.EvStoreNT, Src: pmem.SrcForeground},
		{Seq: 12, Kind: pmem.EventKind(57), Src: pmem.SrcForeground},
		{Seq: 13, Kind: pmem.EvFence, Src: pmem.EventSource(9)},
	}
	byKind := map[string]int64{}
	unknown := map[string]bool{}
	for _, ev := range record {
		label := kindLabel(ev)
		byKind[label]++
		if !ev.Kind.Known() || !ev.Src.Known() {
			unknown[label] = true
		}
	}
	if len(unknown) != 2 {
		t.Fatalf("want 2 unknown labels, got %v", unknown)
	}
	if !unknown["unknown-kind-57"] {
		t.Errorf("unknown kind not surfaced: %v", unknown)
	}
	if !unknown["fence@unknown-src-9"] {
		t.Errorf("unknown source not surfaced: %v", unknown)
	}
	if byKind["storent"] != 1 {
		t.Errorf("known kind mis-bucketed: %v", byKind)
	}
}
