// Package tpcc implements a scaled-down TPC-C online transaction
// processing workload over any transactional record store (canonically
// the waldb embedded database), reproducing the paper's "TPC-C on SQLite
// (WAL mode)" evaluation (§5.2). The five transaction types run in the
// standard mix — NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%,
// StockLevel 4% — with TPC-C's key access skews (1% remote warehouses,
// NURand-ish customer selection).
package tpcc

import (
	"encoding/binary"
	"fmt"

	"splitfs/internal/apps/waldb"
	"splitfs/internal/sim"
)

// Table is one keyed, fixed-row-size table of the store under test.
type Table interface {
	Insert(key uint64, row []byte) error
	Update(key uint64, row []byte) error
	Get(key uint64) ([]byte, error)
	Has(key uint64) bool
	Len() int
}

// DB is the transactional surface the workload drives: single-threaded
// begin/commit brackets around table reads and writes. Any
// vfs.FileSystem-backed engine can sit underneath; Wrap adapts the
// canonical *waldb.DB.
type DB interface {
	Begin() error
	Commit() error
	NewTable(name string, rowSize int) (Table, error)
}

// Wrap adapts a waldb database to the DB interface (Go methods cannot
// covariantly return *waldb.Table as Table, so the adapter is explicit).
func Wrap(db *waldb.DB) DB { return waldbAdapter{db} }

type waldbAdapter struct{ *waldb.DB }

func (w waldbAdapter) NewTable(name string, rowSize int) (Table, error) {
	return w.DB.NewTable(name, rowSize)
}

// Config scales the benchmark.
type Config struct {
	// Warehouses (paper-standard W; default 2).
	Warehouses int
	// DistrictsPerWarehouse (spec: 10).
	Districts int
	// CustomersPerDistrict (spec: 3000; scaled default 100).
	Customers int
	// Items (spec: 100000; scaled default 1000).
	Items int
	// Seed for the deterministic transaction stream.
	Seed uint64
}

func (c *Config) fill() {
	if c.Warehouses == 0 {
		c.Warehouses = 2
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.Customers == 0 {
		c.Customers = 100
	}
	if c.Items == 0 {
		c.Items = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Row sizes approximating the TPC-C schema's record widths.
const (
	warehouseRow = 96
	districtRow  = 104
	customerRow  = 664
	stockRow     = 312
	orderRow     = 32
	orderLineRow = 56
	newOrderRow  = 8
	historyRow   = 48
	itemRow      = 88
)

// Stats counts executed transactions.
type Stats struct {
	NewOrders     int64
	Payments      int64
	OrderStatuses int64
	Deliveries    int64
	StockLevels   int64
}

// Total returns all transactions executed.
func (s Stats) Total() int64 {
	return s.NewOrders + s.Payments + s.OrderStatuses + s.Deliveries + s.StockLevels
}

// Bench is a loaded TPC-C database ready to run transactions.
type Bench struct {
	cfg Config
	db  DB
	rng *sim.RNG

	warehouse Table
	district  Table
	customer  Table
	stock     Table
	orders    Table
	orderLine Table
	newOrder  Table
	history   Table
	item      Table

	nextOrderID  map[uint64]uint64 // district key -> next order id
	oldestNewOrd map[uint64]uint64 // district key -> oldest undelivered
	nextHistory  uint64
	stats        Stats
}

// key builders
func wKey(w int) uint64       { return uint64(w) }
func dKey(w, d int) uint64    { return uint64(w)<<8 | uint64(d) }
func cKey(w, d, c int) uint64 { return uint64(w)<<24 | uint64(d)<<16 | uint64(c) }
func sKey(w, i int) uint64    { return uint64(w)<<32 | uint64(i) }
func oKey(w, d int, o uint64) uint64 {
	return uint64(w)<<40 | uint64(d)<<32 | o
}
func olKey(w, d int, o uint64, l int) uint64 {
	return uint64(w)<<48 | uint64(d)<<40 | o<<8 | uint64(l)
}

// New loads the initial database population inside bulk transactions.
func New(db DB, cfg Config) (*Bench, error) {
	cfg.fill()
	b := &Bench{
		cfg: cfg, db: db, rng: sim.NewRNG(cfg.Seed),
		nextOrderID:  make(map[uint64]uint64),
		oldestNewOrd: make(map[uint64]uint64),
	}
	var err error
	mk := func(name string, size int) Table {
		if err != nil {
			return nil
		}
		t, e := db.NewTable(name, size)
		if e != nil {
			err = e
		}
		return t
	}
	b.warehouse = mk("warehouse", warehouseRow)
	b.district = mk("district", districtRow)
	b.customer = mk("customer", customerRow)
	b.stock = mk("stock", stockRow)
	b.orders = mk("orders", orderRow)
	b.orderLine = mk("order_line", orderLineRow)
	b.newOrder = mk("new_order", newOrderRow)
	b.history = mk("history", historyRow)
	b.item = mk("item", itemRow)
	if err != nil {
		return nil, err
	}
	if err := b.load(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *Bench) load() error {
	if err := b.db.Begin(); err != nil {
		return err
	}
	row := make([]byte, 1024)
	fill := func(n int) []byte {
		for i := 0; i < n; i++ {
			row[i] = byte(b.rng.Uint64())
		}
		return row[:n]
	}
	for i := 1; i <= b.cfg.Items; i++ {
		if err := b.item.Insert(uint64(i), fill(itemRow)); err != nil {
			return err
		}
	}
	for w := 1; w <= b.cfg.Warehouses; w++ {
		if err := b.warehouse.Insert(wKey(w), fill(warehouseRow)); err != nil {
			return err
		}
		for i := 1; i <= b.cfg.Items; i++ {
			s := fill(stockRow)
			binary.LittleEndian.PutUint32(s[0:4], 100) // quantity
			if err := b.stock.Insert(sKey(w, i), s); err != nil {
				return err
			}
		}
		for d := 1; d <= b.cfg.Districts; d++ {
			if err := b.district.Insert(dKey(w, d), fill(districtRow)); err != nil {
				return err
			}
			b.nextOrderID[dKey(w, d)] = 1
			b.oldestNewOrd[dKey(w, d)] = 1
			for c := 1; c <= b.cfg.Customers; c++ {
				if err := b.customer.Insert(cKey(w, d, c), fill(customerRow)); err != nil {
					return err
				}
			}
		}
		// Commit per warehouse to bound transaction size.
		if err := b.db.Commit(); err != nil {
			return err
		}
		if err := b.db.Begin(); err != nil {
			return err
		}
	}
	return b.db.Commit()
}

// Run executes n transactions in the standard mix and returns the stats.
func (b *Bench) Run(n int) (Stats, error) {
	for i := 0; i < n; i++ {
		var err error
		switch p := b.rng.Intn(100); {
		case p < 45:
			err = b.newOrderTx()
		case p < 88:
			err = b.paymentTx()
		case p < 92:
			err = b.orderStatusTx()
		case p < 96:
			err = b.deliveryTx()
		default:
			err = b.stockLevelTx()
		}
		if err != nil {
			return b.stats, fmt.Errorf("tpcc: txn %d: %w", i, err)
		}
	}
	return b.stats, nil
}

// Stats returns the executed-transaction counters.
func (b *Bench) Stats() Stats { return b.stats }

func (b *Bench) randWarehouse() int { return b.rng.Intn(b.cfg.Warehouses) + 1 }
func (b *Bench) randDistrict() int  { return b.rng.Intn(b.cfg.Districts) + 1 }
func (b *Bench) randCustomer() int  { return b.rng.Intn(b.cfg.Customers) + 1 }
func (b *Bench) randItem() int      { return b.rng.Intn(b.cfg.Items) + 1 }

// newOrderTx: read customer/district/items, update district and stock,
// insert order + order lines + new-order (45% of the mix; write-heavy).
func (b *Bench) newOrderTx() error {
	b.stats.NewOrders++
	w, d := b.randWarehouse(), b.randDistrict()
	c := b.randCustomer()
	if err := b.db.Begin(); err != nil {
		return err
	}
	if _, err := b.customer.Get(cKey(w, d, c)); err != nil {
		return err
	}
	drow, err := b.district.Get(dKey(w, d))
	if err != nil {
		return err
	}
	dmod := append([]byte(nil), drow...)
	oid := b.nextOrderID[dKey(w, d)]
	binary.LittleEndian.PutUint64(dmod[0:8], oid+1)
	if err := b.district.Update(dKey(w, d), dmod); err != nil {
		return err
	}
	b.nextOrderID[dKey(w, d)] = oid + 1

	nLines := b.rng.Intn(11) + 5 // 5-15 order lines
	orow := make([]byte, orderRow)
	binary.LittleEndian.PutUint32(orow[0:4], uint32(nLines))
	if err := b.orders.Insert(oKey(w, d, oid), orow); err != nil {
		return err
	}
	if err := b.newOrder.Insert(oKey(w, d, oid), make([]byte, newOrderRow)); err != nil {
		return err
	}
	for l := 0; l < nLines; l++ {
		item := b.randItem()
		supplyW := w
		if b.cfg.Warehouses > 1 && b.rng.Intn(100) == 0 {
			supplyW = b.randWarehouse() // 1% remote
		}
		if _, err := b.item.Get(uint64(item)); err != nil {
			return err
		}
		srow, err := b.stock.Get(sKey(supplyW, item))
		if err != nil {
			return err
		}
		smod := append([]byte(nil), srow...)
		qty := binary.LittleEndian.Uint32(smod[0:4])
		if qty < 10 {
			qty += 91
		}
		qty -= uint32(b.rng.Intn(10) + 1)
		binary.LittleEndian.PutUint32(smod[0:4], qty)
		if err := b.stock.Update(sKey(supplyW, item), smod); err != nil {
			return err
		}
		ol := make([]byte, orderLineRow)
		binary.LittleEndian.PutUint32(ol[0:4], uint32(item))
		if err := b.orderLine.Insert(olKey(w, d, oid, l), ol); err != nil {
			return err
		}
	}
	return b.db.Commit()
}

// paymentTx: update warehouse, district, customer balances; insert
// history (43%).
func (b *Bench) paymentTx() error {
	b.stats.Payments++
	w, d := b.randWarehouse(), b.randDistrict()
	c := b.randCustomer()
	if err := b.db.Begin(); err != nil {
		return err
	}
	for _, step := range []struct {
		t Table
		k uint64
	}{
		{b.warehouse, wKey(w)},
		{b.district, dKey(w, d)},
		{b.customer, cKey(w, d, c)},
	} {
		row, err := step.t.Get(step.k)
		if err != nil {
			return err
		}
		mod := append([]byte(nil), row...)
		amt := binary.LittleEndian.Uint64(mod[8:16]) + uint64(b.rng.Intn(5000))
		binary.LittleEndian.PutUint64(mod[8:16], amt)
		if err := step.t.Update(step.k, mod); err != nil {
			return err
		}
	}
	b.nextHistory++
	if err := b.history.Insert(b.nextHistory, make([]byte, historyRow)); err != nil {
		return err
	}
	return b.db.Commit()
}

// orderStatusTx: read-only customer + last order + lines (4%).
func (b *Bench) orderStatusTx() error {
	b.stats.OrderStatuses++
	w, d := b.randWarehouse(), b.randDistrict()
	c := b.randCustomer()
	if err := b.db.Begin(); err != nil {
		return err
	}
	if _, err := b.customer.Get(cKey(w, d, c)); err != nil {
		return err
	}
	if next := b.nextOrderID[dKey(w, d)]; next > 1 {
		oid := next - 1
		if row, err := b.orders.Get(oKey(w, d, oid)); err == nil {
			nLines := int(binary.LittleEndian.Uint32(row[0:4]))
			for l := 0; l < nLines; l++ {
				b.orderLine.Get(olKey(w, d, oid, l))
			}
		}
	}
	return b.db.Commit()
}

// deliveryTx: pop the oldest new-order of each district, update the
// order (4%).
func (b *Bench) deliveryTx() error {
	b.stats.Deliveries++
	w := b.randWarehouse()
	if err := b.db.Begin(); err != nil {
		return err
	}
	for d := 1; d <= b.cfg.Districts; d++ {
		oldest := b.oldestNewOrd[dKey(w, d)]
		if !b.newOrder.Has(oKey(w, d, oldest)) {
			continue
		}
		row, err := b.orders.Get(oKey(w, d, oldest))
		if err != nil {
			return err
		}
		mod := append([]byte(nil), row...)
		binary.LittleEndian.PutUint32(mod[4:8], 7) // carrier id
		if err := b.orders.Update(oKey(w, d, oldest), mod); err != nil {
			return err
		}
		b.oldestNewOrd[dKey(w, d)] = oldest + 1
	}
	return b.db.Commit()
}

// stockLevelTx: read-only district + recent order lines + stock counts
// (4%).
func (b *Bench) stockLevelTx() error {
	b.stats.StockLevels++
	w, d := b.randWarehouse(), b.randDistrict()
	if err := b.db.Begin(); err != nil {
		return err
	}
	if _, err := b.district.Get(dKey(w, d)); err != nil {
		return err
	}
	next := b.nextOrderID[dKey(w, d)]
	lo := uint64(1)
	if next > 20 {
		lo = next - 20
	}
	for oid := lo; oid < next; oid++ {
		row, err := b.orders.Get(oKey(w, d, oid))
		if err != nil {
			continue
		}
		nLines := int(binary.LittleEndian.Uint32(row[0:4]))
		for l := 0; l < nLines; l++ {
			olrow, err := b.orderLine.Get(olKey(w, d, oid, l))
			if err != nil {
				continue
			}
			item := int(binary.LittleEndian.Uint32(olrow[0:4]))
			if item > 0 {
				b.stock.Get(sKey(w, item))
			}
		}
	}
	return b.db.Commit()
}
