package ext4dax

import (
	"fmt"
	"sync"
	"sync/atomic"

	"splitfs/internal/alloc"
	"splitfs/internal/journal"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Config holds format-time parameters.
type Config struct {
	// JournalBlocks is the size of the JBD2 journal region (default 256
	// blocks = 1 MB).
	JournalBlocks int64
	// MaxInodes bounds the inode table (default 4096).
	MaxInodes int64
	// TxCommitThreshold commits the running transaction once it has noted
	// this many ranges, emulating jbd2's transaction-size trigger
	// (default 128).
	TxCommitThreshold int
}

func (c *Config) fill() {
	if c.JournalBlocks == 0 {
		c.JournalBlocks = 256
	}
	if c.MaxInodes == 0 {
		c.MaxInodes = 4096
	}
	if c.TxCommitThreshold == 0 {
		c.TxCommitThreshold = 128
	}
}

// Stats count file-system level activity.
type Stats struct {
	Traps      int64 // kernel entries
	DataReads  int64
	DataWrites int64
	MetaOps    int64
	Commits    int64
	// Group-commit merge accounting (CommitUpTo): GCLeaders counts
	// callers that committed the transaction themselves, GCFollowers
	// callers whose transaction a concurrent leader had already
	// committed — the jbd2-style coalescing win.
	GCLeaders   int64
	GCFollowers int64
}

// fsStats are the live counters behind Stats; atomics so the lock-free
// read path can count traps and reads without fs.mu.
type fsStats struct {
	traps       atomic.Int64
	dataReads   atomic.Int64
	dataWrites  atomic.Int64
	metaOps     atomic.Int64
	commits     atomic.Int64
	gcLeaders   atomic.Int64
	gcFollowers atomic.Int64
}

// FS is the ext4 DAX file system (K-Split).
//
// Locking: fs.mu guards the namespace (icache, directories), allocators'
// journaling, and the running transaction. Per-inode locks (inode.mu) let
// data reads proceed without fs.mu; mutators of file extents/size hold
// both, fs.mu first (see DESIGN.md).
type FS struct {
	dev *pmem.Device
	clk *sim.Clock
	cfg Config
	lay Layout

	// K-Split's half of DESIGN.md's "Lock hierarchy": fs.mu nests inside
	// every U-Split lock and outside inode.mu and the device shards.
	//
	// +lockrank:order ext4fs < inode < shard
	mu     sync.Mutex // +lockrank:ext4fs
	jnl    *journal.Journal
	iBmp   *alloc.Bitmap // inode numbers (block numbers double as inos)
	bBmp   *alloc.Bitmap // data blocks
	icache map[uint64]*inode
	tx     *journal.Tx
	txN    int
	// txID identifies the running transaction (valid while tx != nil);
	// ids are assigned from nextTxID in beginTx and are strictly
	// monotone. doneTxID is the highest id whose transaction committed.
	// Together they implement jbd2-style group commit: a mutation noted
	// under id T is durable exactly when doneTxID >= T, so a committer
	// that finds its id already covered (another fsync's commit — the
	// group-commit leader — absorbed it) returns without issuing any
	// journal IO or fences of its own. See CommitUpTo.
	txID     uint64
	nextTxID uint64
	doneTxID uint64
	// txHold counts open batch handles (BeginBatch); while positive, the
	// running transaction must not commit — jbd2's "a transaction cannot
	// commit while handles are open". txIdle signals txHold reaching zero.
	txHold int
	txIdle *sync.Cond
	// pendingFrees are extents released by the running transaction. Like
	// jbd2, the blocks stay marked allocated — and therefore cannot be
	// handed out again — until the transaction commits: if a crash rolls
	// the transaction back, their old owner gets them back, so any reuse
	// before the commit would let new data alias rolled-back state (e.g.
	// a relink-punched staging range scribbled over before the relink
	// committed). The bitmap clears join the committing transaction.
	pendingFrees []pendingFree

	stats fsStats
}

type pendingFree struct {
	bmp *alloc.Bitmap
	e   alloc.Extent
}

var _ vfs.FileSystem = (*FS)(nil)

// Mkfs formats the device and returns a mounted file system.
func Mkfs(dev *pmem.Device, cfg Config) (*FS, error) {
	cfg.fill()
	lay, err := computeLayout(dev.Size(), cfg.JournalBlocks, cfg.MaxInodes)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		dev:    dev,
		clk:    dev.Clock(),
		cfg:    cfg,
		lay:    lay,
		icache: make(map[uint64]*inode),
	}
	fs.txIdle = sync.NewCond(&fs.mu)
	fs.jnl = journal.New(dev, lay.JournalOff, lay.JournalBlocks)
	fs.iBmp = alloc.New(dev, lay.InodeBmpOff, 0, lay.MaxInodes)
	fs.bBmp = alloc.New(dev, lay.BlockBmpOff, lay.DataOff, lay.DataBlocks)

	// Zero the bitmap regions and persist the superblock.
	zero := make([]byte, lay.InodeBmpLen)
	dev.PersistNT(lay.InodeBmpOff, zero, sim.CatPMMeta)
	zero = make([]byte, lay.BlockBmpLen)
	dev.PersistNT(lay.BlockBmpOff, zero, sim.CatPMMeta)
	dev.PersistNT(lay.SuperOff, encodeSuper(lay), sim.CatPMMeta)

	// Reserve ino 0 (invalid) and create the root directory as ino 1.
	fs.beginTx()
	for i := 0; i < 2; i++ {
		if _, _, err := fs.iBmp.AllocExtent(1); err != nil {
			return nil, err
		}
	}
	// Note the inode bitmap byte containing inos 0..7.
	fs.tx.Note(lay.InodeBmpOff, 1)
	root := &inode{ino: RootIno, isDir: true, nlink: 2, entries: make(map[string]*dirEntry)}
	fs.icache[RootIno] = root
	fs.writeInode(root)
	if err := fs.commitTx(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount attaches to a previously formatted device, replaying the journal
// and rebuilding the DRAM caches. Returns the file system and the number
// of journal transactions replayed.
func Mount(dev *pmem.Device, cfg Config) (*FS, int, error) {
	cfg.fill()
	super := make([]byte, 128)
	dev.ReadAt(super, 0, sim.CatPMMeta)
	jblocks, maxInodes, err := decodeSuper(super)
	if err != nil {
		return nil, 0, err
	}
	cfg.JournalBlocks, cfg.MaxInodes = jblocks, maxInodes
	lay, err := computeLayout(dev.Size(), jblocks, maxInodes)
	if err != nil {
		return nil, 0, err
	}
	fs := &FS{
		dev:    dev,
		clk:    dev.Clock(),
		cfg:    cfg,
		lay:    lay,
		icache: make(map[uint64]*inode),
	}
	fs.txIdle = sync.NewCond(&fs.mu)
	fs.jnl, _, err = journal.Load(dev, lay.JournalOff, lay.JournalBlocks)
	if err != nil {
		return nil, 0, err
	}
	replayed := int(fs.jnl.Stats().Replayed)
	fs.iBmp = alloc.Load(dev, lay.InodeBmpOff, 0, lay.MaxInodes)
	fs.bBmp = alloc.Load(dev, lay.BlockBmpOff, lay.DataOff, lay.DataBlocks)
	// Load every allocated inode. A set bitmap bit with an unreadable
	// inode record is the remnant of an uncommitted create whose dirty
	// cache lines partially reached the media before the crash; like
	// e2fsck, treat the inode as free and move on — the create never
	// committed, so discarding it preserves metadata consistency.
	for ino := int64(1); ino < lay.MaxInodes; ino++ {
		if !fs.iBmp.Allocated(ino) {
			continue
		}
		in, err := fs.readInode(uint64(ino))
		if err != nil {
			fs.iBmp.Free(alloc.Extent{Start: ino, Len: 1})
			continue
		}
		fs.icache[uint64(ino)] = in
	}
	if _, ok := fs.icache[RootIno]; !ok {
		return nil, 0, fmt.Errorf("ext4dax: no root inode")
	}
	return fs, replayed, nil
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return "ext4-dax" }

// Device returns the underlying PM device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// Stats returns a snapshot of file-system counters.
func (fs *FS) Stats() Stats {
	return Stats{
		Traps:       fs.stats.traps.Load(),
		DataReads:   fs.stats.dataReads.Load(),
		DataWrites:  fs.stats.dataWrites.Load(),
		MetaOps:     fs.stats.metaOps.Load(),
		Commits:     fs.stats.commits.Load(),
		GCLeaders:   fs.stats.gcLeaders.Load(),
		GCFollowers: fs.stats.gcFollowers.Load(),
	}
}

// FreeBlocks reports remaining data capacity in blocks.
func (fs *FS) FreeBlocks() int64 { return fs.bBmp.FreeCount() }

// trap charges one user/kernel crossing. Lock-free, so the no-fs.mu read
// path can use it.
func (fs *FS) trap() {
	fs.clk.Charge(sim.CatKernelTrap, sim.KernelTrapNs)
	fs.stats.traps.Add(1)
}

// beginTx ensures a running transaction exists. Caller holds fs.mu.
func (fs *FS) beginTx() {
	if fs.tx == nil {
		fs.tx = fs.jnl.Begin()
		fs.txN = 0
		fs.nextTxID++
		fs.txID = fs.nextTxID
	}
}

// note adds a modified range to the running transaction. Caller holds
// fs.mu.
func (fs *FS) note(off int64, n int) {
	fs.beginTx()
	fs.tx.Note(off, n)
	fs.txN++
}

// maybeCommit commits the running transaction once it has grown past the
// jbd2-style threshold. Called at operation boundaries only, so a commit
// never splits one operation's updates; likewise it never fires while a
// batch handle is open, so a commit never splits a relink batch. Caller
// holds fs.mu.
func (fs *FS) maybeCommit() {
	if fs.txHold > 0 {
		return
	}
	if fs.txN >= fs.cfg.TxCommitThreshold {
		if err := fs.commitTx(); err != nil {
			// A threshold commit failing means the journal is too small
			// for the configured threshold; surface loudly rather than
			// corrupting.
			panic(fmt.Sprintf("ext4dax: threshold commit failed: %v", err))
		}
	}
}

// BeginBatch opens a batch handle: until the matching EndBatch, the
// running journal transaction will not commit — not by the size
// threshold, not by a concurrent CommitMeta or fsync. This is how the
// relink ioctl keeps a multi-step fsync batch atomic against other
// journal users (jbd2: a transaction with open handles cannot commit).
//
// Group commit lets many concurrent batches share one transaction, so a
// transaction can now grow well past the size threshold before anything
// commits it; the first batch to open against an already-bloated idle
// transaction commits it first, keeping the transaction within the
// journal descriptor's capacity.
func (fs *FS) BeginBatch() {
	fs.mu.Lock()
	if fs.txHold == 0 && fs.txN >= fs.cfg.TxCommitThreshold {
		if err := fs.commitTx(); err != nil {
			panic(fmt.Sprintf("ext4dax: pre-batch threshold commit failed: %v", err))
		}
	}
	fs.txHold++
	fs.mu.Unlock()
}

// EndBatch closes a batch handle and wakes committers that were waiting
// for the transaction to become committable.
func (fs *FS) EndBatch() {
	fs.mu.Lock()
	fs.txHold--
	if fs.txHold == 0 {
		fs.txIdle.Broadcast()
	}
	fs.mu.Unlock()
}

// awaitCommittable blocks until no batch handles are open. Caller holds
// fs.mu (released while waiting).
func (fs *FS) awaitCommittable() {
	for fs.txHold > 0 {
		fs.txIdle.Wait()
	}
}

// deferFree schedules an extent's release for the next commit. Caller
// holds fs.mu.
func (fs *FS) deferFree(bmp *alloc.Bitmap, e alloc.Extent) {
	fs.beginTx()
	fs.pendingFrees = append(fs.pendingFrees, pendingFree{bmp: bmp, e: e})
}

// commitTx commits the running transaction, if any, applying the
// transaction's deferred block frees first so the bitmap clears commit
// atomically with the rest of it. Caller holds fs.mu.
func (fs *FS) commitTx() error {
	if fs.tx == nil {
		return nil
	}
	for _, pf := range fs.pendingFrees {
		dirty := pf.bmp.Free(pf.e)
		fs.tx.Note(dirty.Off, dirty.Len)
	}
	fs.pendingFrees = nil
	tx := fs.tx
	id := fs.txID
	fs.tx = nil
	fs.txN = 0
	if err := tx.Commit(); err != nil {
		return err
	}
	fs.doneTxID = id
	fs.stats.commits.Add(1)
	return nil
}

// inodeOff returns the device offset of an inode record.
func (fs *FS) inodeOff(ino uint64) int64 {
	return fs.lay.InodeTblOff + int64(ino)*inodeSize
}

// writeInode serializes an inode (and its overflow extent blocks) to the
// device with cached stores and notes the ranges in the running
// transaction. Caller holds fs.mu.
func (fs *FS) writeInode(in *inode) {
	fs.clk.Charge(sim.CatCPU, sim.Ext4ExtentUpdateNs)
	// Overflow blocks: everything past the inline extents, in chunks.
	overflowNeeded := 0
	if len(in.extents) > inlineExtents {
		overflowNeeded = (len(in.extents) - inlineExtents + overflowCap - 1) / overflowCap
	}
	// Allocate or free overflow blocks to match.
	for len(in.overflow) < overflowNeeded {
		e, dirty, err := fs.bBmp.AllocExtent(1)
		if err != nil {
			panic("ext4dax: no space for extent overflow block")
		}
		fs.note(dirty.Off, dirty.Len)
		in.overflow = append(in.overflow, e.Start)
	}
	for len(in.overflow) > overflowNeeded {
		last := in.overflow[len(in.overflow)-1]
		in.overflow = in.overflow[:len(in.overflow)-1]
		fs.deferFree(fs.bBmp, alloc.Extent{Start: last, Len: 1})
	}
	rec := in.encode()
	off := fs.inodeOff(in.ino)
	fs.dev.StoreBuffered(off, rec, sim.CatPMMeta)
	fs.note(off, len(rec))
	// Write overflow chains.
	rest := in.extents
	if len(rest) > inlineExtents {
		rest = rest[inlineExtents:]
	} else {
		rest = nil
	}
	for i, blk := range in.overflow {
		chunk := rest
		if len(chunk) > overflowCap {
			chunk = chunk[:overflowCap]
		}
		rest = rest[len(chunk):]
		buf := make([]byte, overflowHeader+len(chunk)*extentRecSize)
		next := int64(0)
		if i+1 < len(in.overflow) {
			next = in.overflow[i+1]
		}
		putU64(buf[0:8], uint64(next))
		putU32(buf[8:12], uint32(len(chunk)))
		for k, e := range chunk {
			putExtent(buf[overflowHeader+k*extentRecSize:], e)
		}
		devOff := fs.bBmp.BlockOffset(blk)
		fs.dev.StoreBuffered(devOff, buf, sim.CatPMMeta)
		fs.note(devOff, len(buf))
		_ = i
	}
}

// readInode loads an inode record and its overflow chain from the device.
func (fs *FS) readInode(ino uint64) (*inode, error) {
	rec := make([]byte, inodeSize)
	fs.dev.ReadAt(rec, fs.inodeOff(ino), sim.CatPMMeta)
	in, next, err := decodeInode(ino, rec)
	if err != nil {
		return nil, err
	}
	for next != 0 {
		in.overflow = append(in.overflow, next)
		hdr := make([]byte, overflowHeader)
		devOff := fs.bBmp.BlockOffset(next)
		fs.dev.ReadAt(hdr, devOff, sim.CatPMMeta)
		cnt := int(getU32(hdr[8:12]))
		if cnt > overflowCap {
			return nil, fmt.Errorf("ext4dax: inode %d corrupt overflow block", ino)
		}
		buf := make([]byte, cnt*extentRecSize)
		fs.dev.ReadAt(buf, devOff+overflowHeader, sim.CatPMMeta)
		for k := 0; k < cnt; k++ {
			in.extents = append(in.extents, getExtent(buf[k*extentRecSize:]))
		}
		next = int64(getU64(hdr[0:8]))
	}
	return in, nil
}
