// Package ext4dax implements the kernel side of SplitFS: an extent-based
// DAX file system in the style of ext4, with a JBD2 journal for metadata
// atomicity, direct-access memory mapping, and the EXT4_IOC_MOVE_EXT
// extent-swap ioctl extended with the paper's metadata-only relink
// (§3.5). It is the K-Split component and also the POSIX-mode baseline in
// the evaluation.
//
// Semantics (matching ext4 DAX in ordered mode):
//
//   - Metadata operations are batched in a running journal transaction and
//     become durable on fsync (or when the transaction grows large).
//     Recovery replays committed transactions, giving metadata
//     consistency — the paper's POSIX-mode guarantee.
//   - Data writes go straight to PM with non-temporal stores; they are
//     durable after fsync's fence. Appends are not atomic: a crash can
//     leave the file with any prefix of the appended data.
//
// Every public entry point charges a kernel trap, since this file system
// lives across the syscall boundary.
package ext4dax

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"splitfs/internal/alloc"
	"splitfs/internal/sim"
)

const (
	superMagic = 0xE47DA9 // "ext4 dax", roughly

	// inodeSize is the on-disk inode record size.
	inodeSize = 512
	// inlineExtents is how many extents fit in the inode record.
	inlineExtents = 19
	// extentRecSize is the on-disk size of one extent record:
	// logical block (8) + physical start (8) + length (8).
	extentRecSize = 24
	// overflowHeader is next-pointer (8) + count (4) + pad (4).
	overflowHeader = 16
	// overflowCap is how many extents fit in a 4 KB overflow block.
	overflowCap = (sim.BlockSize - overflowHeader) / extentRecSize

	// RootIno is the inode number of the root directory.
	RootIno = 1
)

// Layout describes where each on-device region lives, in bytes.
type Layout struct {
	SuperOff      int64
	JournalOff    int64
	JournalBlocks int64
	InodeBmpOff   int64
	InodeBmpLen   int64
	BlockBmpOff   int64
	BlockBmpLen   int64
	InodeTblOff   int64
	MaxInodes     int64
	DataOff       int64
	DataBlocks    int64
}

// computeLayout slices a device of size bytes into regions.
func computeLayout(size int64, journalBlocks, maxInodes int64) (Layout, error) {
	var l Layout
	l.SuperOff = 0
	l.JournalOff = sim.BlockSize
	l.JournalBlocks = journalBlocks
	l.InodeBmpOff = l.JournalOff + journalBlocks*sim.BlockSize
	l.InodeBmpLen = roundUp(alloc.BitmapBytes(maxInodes), sim.BlockSize)
	l.MaxInodes = maxInodes
	l.InodeTblOff = l.InodeBmpOff + l.InodeBmpLen
	tblLen := roundUp(maxInodes*inodeSize, sim.BlockSize)
	l.BlockBmpOff = l.InodeTblOff + tblLen

	// Solve for the number of data blocks that fit with their bitmap.
	remaining := size - l.BlockBmpOff
	if remaining < 16*sim.BlockSize {
		return l, fmt.Errorf("ext4dax: device too small (%d bytes)", size)
	}
	// Each data block costs 4096 bytes + 1/8 byte of bitmap.
	nData := (remaining - sim.BlockSize) * 8 / (8*sim.BlockSize + 1)
	l.BlockBmpLen = roundUp(alloc.BitmapBytes(nData), sim.BlockSize)
	l.DataOff = l.BlockBmpOff + l.BlockBmpLen
	l.DataBlocks = (size - l.DataOff) / sim.BlockSize
	if l.DataBlocks < 8 {
		return l, fmt.Errorf("ext4dax: device too small for data (%d bytes)", size)
	}
	return l, nil
}

func roundUp(n, m int64) int64 { return (n + m - 1) / m * m }

// encodeSuper serializes the superblock.
func encodeSuper(l Layout) []byte {
	b := make([]byte, 128)
	binary.LittleEndian.PutUint32(b[0:4], superMagic)
	binary.LittleEndian.PutUint64(b[8:16], uint64(l.JournalBlocks))
	binary.LittleEndian.PutUint64(b[16:24], uint64(l.MaxInodes))
	binary.LittleEndian.PutUint64(b[24:32], uint64(l.DataBlocks))
	return b
}

// decodeSuper validates and returns the format parameters.
func decodeSuper(b []byte) (journalBlocks, maxInodes int64, err error) {
	if binary.LittleEndian.Uint32(b[0:4]) != superMagic {
		return 0, 0, fmt.Errorf("ext4dax: bad superblock magic %#x",
			binary.LittleEndian.Uint32(b[0:4]))
	}
	return int64(binary.LittleEndian.Uint64(b[8:16])),
		int64(binary.LittleEndian.Uint64(b[16:24])), nil
}

// fileExtent maps a run of logical file blocks onto physical blocks.
type fileExtent struct {
	logical int64 // first logical block in the file
	phys    alloc.Extent
}

func (e fileExtent) logicalEnd() int64 { return e.logical + e.phys.Len }

// inode is the in-DRAM (icache) representation of an on-disk inode.
//
// Locking (see DESIGN.md): mutations of extents/size/blocks on file
// inodes hold fs.mu AND in.mu; the lock-free data read path (File.ReadAt,
// offset resolution) holds only in.mu.RLock. Directory inodes and the
// remaining fields are accessed exclusively under fs.mu.
type inode struct {
	mu       sync.RWMutex // +lockrank:inode
	ino      uint64
	isDir    bool
	nlink    uint32
	size     int64
	blocks   int64 // allocated block count
	extents  []fileExtent
	overflow []int64 // physical block numbers of overflow extent blocks
	// uwm is an opaque user watermark, part of the SplitFS kernel patch:
	// U-Split stores its operation-log sequence number here during relink
	// so that crash recovery can tell which log entries the relink
	// already covered. Updated in the same journal transaction as the
	// relink, hence atomic with it.
	uwm uint64
	// openCnt counts live File handles; orphan marks an inode whose last
	// link was removed while handles were open (the tmpfile pattern) —
	// its blocks and number are freed at the last close, per POSIX, so
	// the inode number cannot be recycled under an open handle. Both are
	// guarded by fs.mu. Orphans are DRAM-only state: a crash leaks them
	// until a future fsck (real ext4 keeps an on-disk orphan list).
	openCnt int
	orphan  bool
	// mapEpoch counts remapping events — truncate, extent swap, hole
	// punch — that can retire this inode's physical blocks. Bumped under
	// in.mu *before* the freed blocks become reusable, read lock-free by
	// lease holders validating seqlock-style (see vfs.Mappable). DRAM
	// only: epochs restart at zero after a crash, which is fine because
	// no lease survives a server generation.
	mapEpoch atomic.Uint64
	// dir state, populated lazily for directories
	entries map[string]*dirEntry
	tailOff int64 // next free byte inside the directory file
}

// encode serializes the inode header and inline extents into a 512-byte
// record. Extents beyond the inline area live in overflow blocks encoded
// separately.
func (in *inode) encode() []byte {
	b := make([]byte, inodeSize)
	binary.LittleEndian.PutUint32(b[0:4], 0x1A0DE)
	if in.isDir {
		b[4] = 1
	}
	binary.LittleEndian.PutUint32(b[8:12], in.nlink)
	binary.LittleEndian.PutUint64(b[16:24], uint64(in.size))
	binary.LittleEndian.PutUint64(b[24:32], uint64(in.blocks))
	n := len(in.extents)
	if n > inlineExtents {
		n = inlineExtents
	}
	binary.LittleEndian.PutUint32(b[32:36], uint32(n))
	next := int64(0)
	if len(in.overflow) > 0 {
		next = in.overflow[0]
	}
	binary.LittleEndian.PutUint64(b[40:48], uint64(next))
	for i := 0; i < n; i++ {
		putExtent(b[48+i*extentRecSize:], in.extents[i])
	}
	binary.LittleEndian.PutUint64(b[504:512], in.uwm)
	return b
}

func putExtent(b []byte, e fileExtent) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.logical))
	binary.LittleEndian.PutUint64(b[8:16], uint64(e.phys.Start))
	binary.LittleEndian.PutUint64(b[16:24], uint64(e.phys.Len))
}

func getExtent(b []byte) fileExtent {
	return fileExtent{
		logical: int64(binary.LittleEndian.Uint64(b[0:8])),
		phys: alloc.Extent{
			Start: int64(binary.LittleEndian.Uint64(b[8:16])),
			Len:   int64(binary.LittleEndian.Uint64(b[16:24])),
		},
	}
}

// decodeInode parses an on-disk inode record. Overflow extents are
// resolved by the caller (it needs device access).
func decodeInode(ino uint64, b []byte) (*inode, int64, error) {
	if binary.LittleEndian.Uint32(b[0:4]) != 0x1A0DE {
		return nil, 0, fmt.Errorf("ext4dax: bad inode magic for ino %d", ino)
	}
	in := &inode{
		ino:    ino,
		isDir:  b[4] == 1,
		nlink:  binary.LittleEndian.Uint32(b[8:12]),
		size:   int64(binary.LittleEndian.Uint64(b[16:24])),
		blocks: int64(binary.LittleEndian.Uint64(b[24:32])),
		uwm:    binary.LittleEndian.Uint64(b[504:512]),
	}
	n := int(binary.LittleEndian.Uint32(b[32:36]))
	if n > inlineExtents {
		return nil, 0, fmt.Errorf("ext4dax: inode %d inline extent count %d", ino, n)
	}
	for i := 0; i < n; i++ {
		in.extents = append(in.extents, getExtent(b[48+i*extentRecSize:]))
	}
	next := int64(binary.LittleEndian.Uint64(b[40:48]))
	return in, next, nil
}

// dirEntry is a cached directory entry plus the device offset of its
// on-disk record, so unlink can tombstone it directly.
type dirEntry struct {
	name   string
	ino    uint64
	isDir  bool
	devOff int64
}

// direntSize returns the on-disk size of an entry with the given name.
func direntSize(name string) int64 { return 12 + int64(len(name)) }

// encodeDirent serializes a directory entry record:
// ino (8) | nameLen (2) | isDir (1) | pad (1) | name.
func encodeDirent(ino uint64, isDir bool, name string) []byte {
	b := make([]byte, direntSize(name))
	binary.LittleEndian.PutUint64(b[0:8], ino)
	binary.LittleEndian.PutUint16(b[8:10], uint16(len(name)))
	if isDir {
		b[10] = 1
	}
	copy(b[12:], name)
	return b
}
