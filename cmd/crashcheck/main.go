// Command crashcheck runs crash-consistency campaigns against SplitFS:
// random workloads crash at every operation boundary (with torn cache
// lines), recover, and are checked against each mode's guarantee
// (§3.2, Table 3; recovery per §5.3).
//
// Usage:
//
//	crashcheck [-seeds N] [-ops N]
package main

import (
	"flag"
	"fmt"
	"os"

	"splitfs/internal/crash"
	"splitfs/internal/splitfs"
)

func main() {
	seeds := flag.Int("seeds", 5, "number of random workloads per mode")
	nops := flag.Int("ops", 25, "operations per workload")
	flag.Parse()

	modes := []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict}
	total, violations := 0, 0
	for _, mode := range modes {
		for seed := 1; seed <= *seeds; seed++ {
			ops := crash.RandomOps(uint64(seed)*13, *nops)
			for point := 1; point <= len(ops); point++ {
				res, err := crash.Run(crash.Campaign{
					Mode: mode, Ops: ops, CrashAfter: point,
					Seed: uint64(seed)<<16 | uint64(point),
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "crashcheck: %v seed %d point %d: %v\n",
						mode, seed, point, err)
					os.Exit(1)
				}
				total++
				if res.Violation != "" {
					violations++
					fmt.Printf("VIOLATION %v seed=%d point=%d: %s\n",
						mode, seed, point, res.Violation)
				}
			}
		}
		fmt.Printf("mode %-6v: all crash points checked\n", mode)
	}
	fmt.Printf("crashcheck: %d crash points, %d violations\n", total, violations)
	if violations > 0 {
		os.Exit(1)
	}
}
