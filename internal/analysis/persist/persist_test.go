package persist_test

import (
	"testing"

	"splitfs/internal/analysis/analysistest"
	"splitfs/internal/analysis/persist"
)

func TestPersist(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), persist.Analyzer, "persistbasic", "persistuser")
}
