package server

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"splitfs/internal/vfs"
)

// countingFS counts successful applications of the non-idempotent
// namespace operations, so the exactly-once tests can prove a replayed
// request's effect did not land twice. (A replayed rename whose source
// is already gone still reaches the backend and fails there before the
// session layer heals it — an attempt, not a second application.)
type countingFS struct {
	vfs.FileSystem
	renames atomic.Int64
	unlinks atomic.Int64
	mkdirs  atomic.Int64
}

func (c *countingFS) Rename(oldPath, newPath string) error {
	err := c.FileSystem.Rename(oldPath, newPath)
	if err == nil {
		c.renames.Add(1)
	}
	return err
}

func (c *countingFS) Unlink(path string) error {
	err := c.FileSystem.Unlink(path)
	if err == nil {
		c.unlinks.Add(1)
	}
	return err
}

func (c *countingFS) Mkdir(path string, perm uint32) error {
	err := c.FileSystem.Mkdir(path, perm)
	if err == nil {
		c.mkdirs.Add(1)
	}
	return err
}

// resumeHarness wires a resumable client to a restartable server: the
// redial callback always connects to the current server, waiting (after
// the first dial) until the session has parked so a warm re-attach
// cannot race the server's own detection of the loss.
type resumeHarness struct {
	mu  sync.Mutex
	srv *Server

	dials    atomic.Int64
	waitPark atomic.Bool
}

func (h *resumeHarness) current() *Server {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.srv
}

func (h *resumeHarness) swap(srv *Server) {
	h.mu.Lock()
	h.srv = srv
	h.mu.Unlock()
}

func (h *resumeHarness) redial() (io.ReadWriteCloser, error) {
	if h.dials.Add(1) > 1 && h.waitPark.Load() {
		for h.current().ParkedSessions() == 0 {
			runtime.Gosched()
		}
	}
	cs, ss := net.Pipe()
	go h.current().ServeConn(ss)
	return cs, nil
}

// A reply dropped by a daemon-death fault (executed, never
// acknowledged) must not re-execute when the client replays it: the
// reply cache answers, and the operation applies exactly once.
func TestWarmResumeExactlyOnce(t *testing.T) {
	backend := &countingFS{FileSystem: faultBackend(t)}
	var failNext atomic.Bool
	srv := New(backend, Config{
		Workers:     2,
		FailReplies: func() bool { return failNext.CompareAndSwap(true, false) },
	})
	defer srv.Close()
	h := &resumeHarness{srv: srv}
	h.waitPark.Store(true)

	c, err := DialResumable(h.redial, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/d/f", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}

	// Rename with the reply dropped: executed server-side, never acked.
	failNext.Store(true)
	if err := c.Rename("/d/f", "/d/g"); err != nil {
		t.Fatalf("rename across dropped reply: %v", err)
	}
	if n := backend.renames.Load(); n != 1 {
		t.Fatalf("rename executed %d times, want exactly once", n)
	}
	st := srv.Stats()
	if st.DroppedReplies != 1 || st.Reattached != 1 || st.ReplayCacheHits != 1 {
		t.Fatalf("stats after warm resume: %+v", st)
	}

	// Unlink with the reply dropped, same guarantee.
	failNext.Store(true)
	if err := c.Unlink("/d/g"); err != nil {
		t.Fatalf("unlink across dropped reply: %v", err)
	}
	if n := backend.unlinks.Load(); n != 1 {
		t.Fatalf("unlink executed %d times, want exactly once", n)
	}
	if _, err := c.Stat("/d/g"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat unlinked file: %v", err)
	}

	// A positional append with the reply dropped must not double-apply.
	g, err := c.OpenFile("/d/log", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	failNext.Store(true)
	if _, err := g.WriteAt([]byte("bbbb"), 4); err != nil {
		t.Fatalf("append across dropped reply: %v", err)
	}
	fi, err := g.Stat()
	if err != nil || fi.Size != 8 {
		t.Fatalf("appended file size %d (%v), want 8", fi.Size, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// Killing the server entirely (the parked session dies with it) forces
// the cold path: a fresh attach, handle re-establishment at original
// IDs via Treopen, and an in-order replay of the tail since the last
// barrier — with heals absorbing operations the backend already holds.
func TestColdResumeAfterRestart(t *testing.T) {
	backend := &countingFS{FileSystem: faultBackend(t)}
	srv1 := New(backend, Config{Workers: 2, TokenSalt: 1})
	h := &resumeHarness{srv: srv1}

	c, err := DialResumable(h.redial, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f1, err := c.OpenFile("/d/f1", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err) // barrier: everything above leaves the replay log
	}
	// Post-barrier tail: a new file, writes on both handles, a rename.
	f2, err := c.OpenFile("/d/f2", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.WriteAt([]byte("world"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/d/f1", "/d/f1r"); err != nil {
		t.Fatal(err)
	}

	// The daemon dies. The backend survives (it is the recovered file
	// system); every acked operation above is still applied in it.
	srv1.Close()
	srv2 := New(backend, Config{Workers: 2, TokenSalt: 2})
	defer srv2.Close()
	h.swap(srv2)

	// The next operation discovers the loss, cold-attaches to the new
	// generation, reopens f1 (pre-barrier, now under its renamed name)
	// and f2 (converted inline from its logged open), and replays the
	// tail. The rename already applied, so its replay must heal.
	if _, err := f2.WriteAt([]byte("WORLD"), 0); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if renames := backend.renames.Load(); renames != 1 {
		t.Fatalf("rename executed %d times across restart, want exactly once", renames)
	}
	if st := srv2.Stats(); st.HealedReplays == 0 {
		t.Fatalf("expected healed replays on the new generation: %+v", st)
	}
	fi, err := c.Stat("/d/f1r")
	if err != nil || fi.Size != 5 {
		t.Fatalf("renamed file after cold resume: %+v, %v", fi, err)
	}
	if _, err := c.Stat("/d/f1"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("old name still present after cold resume: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := f2.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, []byte("WORLD")) {
		t.Fatalf("f2 content after cold resume: %q, %v", buf, err)
	}
	buf = make([]byte, 5)
	if _, err := f1.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, []byte("HELLO")) {
		t.Fatalf("f1 content after cold resume: %q, %v", buf, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// wedgedConn fails writes once armed but never closes the underlying
// pipe, so the server cannot notice the loss: the client's re-attach
// arrives while the server still believes the old transport is alive.
type wedgedConn struct {
	inner io.ReadWriteCloser
	fail  atomic.Bool
}

func (c *wedgedConn) Read(p []byte) (int, error) { return c.inner.Read(p) }

func (c *wedgedConn) Write(p []byte) (int, error) {
	if c.fail.Load() {
		return 0, errors.New("transport wedged")
	}
	return c.inner.Write(p)
}

func (c *wedgedConn) Close() error { return nil } // the pipe stays open

// A client that reconnects before the server's read loop notices the old
// transport died must take the session over — not bounce to a cold
// attach that leaks the old session — and the superseded read loop's
// eventual failure must not park over the adopted transport or count as
// a disconnect.
func TestWarmResumeTakeover(t *testing.T) {
	backend := &countingFS{FileSystem: faultBackend(t)}
	srv := New(backend, Config{Workers: 2})
	defer srv.Close()
	h := &resumeHarness{srv: srv}

	var wedged *wedgedConn
	var mu sync.Mutex
	redial := func() (io.ReadWriteCloser, error) {
		rwc, err := h.redial()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if wedged == nil {
			wedged = &wedgedConn{inner: rwc}
			return wedged, nil
		}
		return rwc, nil
	}
	c, err := DialResumable(redial, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	// The client's next write dies, but the server-side read loop stays
	// blocked on the still-open pipe: the re-attach races ahead of the
	// server's own loss detection and must take the session over.
	wedged.fail.Store(true)
	if err := c.Mkdir("/d2", 0o755); err != nil {
		t.Fatalf("mkdir across wedged transport: %v", err)
	}
	if n := backend.mkdirs.Load(); n != 2 {
		t.Fatalf("mkdir executed %d times, want 2", n)
	}
	st := srv.Stats()
	if st.Reattached != 1 || st.ParkedSessions != 0 {
		t.Fatalf("takeover stats: %+v", st)
	}
	if st.TornDisconnects != 0 || st.OtherDisconnects != 0 {
		t.Fatalf("superseded loop counted as a disconnect: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("takeover leaked a session: %d live", srv.SessionCount())
	}
}

// A torn transport (FaultConn cut) under a resumable client must be
// invisible to the caller: the op that lost its reply completes on the
// re-attached session, exactly once.
func TestWarmResumeAcrossTornFrame(t *testing.T) {
	backend := &countingFS{FileSystem: faultBackend(t)}
	srv := New(backend, Config{Workers: 2})
	defer srv.Close()
	h := &resumeHarness{srv: srv}
	h.waitPark.Store(true)

	var fc *FaultConn
	var fcMu sync.Mutex
	redial := func() (io.ReadWriteCloser, error) {
		rwc, err := h.redial()
		if err != nil {
			return nil, err
		}
		fcMu.Lock()
		fc = NewFaultConn(rwc)
		rwc = fc
		fcMu.Unlock()
		return rwc, nil
	}
	c, err := DialResumable(redial, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fcMu.Lock()
	fc.CutWriteAfter(3) // the next request dies inside its frame header
	fcMu.Unlock()
	if err := c.Mkdir("/d2", 0o755); err != nil {
		t.Fatalf("mkdir across torn frame: %v", err)
	}
	if n := backend.mkdirs.Load(); n != 2 {
		t.Fatalf("mkdir executed %d times, want 2", n)
	}
	fi, err := c.Stat("/d2")
	if err != nil || !fi.IsDir {
		t.Fatalf("stat after torn-frame resume: %+v, %v", fi, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
