package crash

import (
	"strings"
	"testing"

	"splitfs/internal/vfs"
)

// TestServedDifferentialEquivalence is the service-transparency gate:
// the PR 3 differential trace, run through the lisafs-style session/RPC
// layer (served: wrapper, loopback transport) over all nine backends,
// must land byte-identical namespaces and contents to the direct
// ext4-dax reference — and therefore to every direct backend, which the
// plain differential suite already pins against the same reference.
func TestServedDifferentialEquivalence(t *testing.T) {
	kinds := append([]string{"ext4-dax"}, ServedBackendKinds()...)
	kinds = append(kinds, ServedLeaseBackendKinds()...)
	for _, tc := range []struct {
		name string
		ops  []Op
	}{
		{"write", RandomOps(101, 25)},
		{"metadata", MetadataOps(707, 30)},
		{"async", AsyncOps(303, 25)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := DifferentialOver(kinds, tc.ops, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range res.Mismatches {
				t.Errorf("served mismatch: %s", m)
			}
		})
	}
}

// TestServedBackendRegistry pins the wrapper kind's registry behavior.
func TestServedBackendRegistry(t *testing.T) {
	if !IsBackendKind("served:splitfs-strict") {
		t.Fatal("served:splitfs-strict should be a valid kind")
	}
	if IsBackendKind("served:nope") {
		t.Fatal("served wrapper of an unknown kind must be invalid")
	}
	if _, err := NewBackend("served:served:ext4-dax", BackendSpec{}); err == nil {
		t.Fatal("nested served wrapper must be rejected")
	}
	b, err := NewBackend("served:logfs", BackendSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Direct == nil || b.Server == nil {
		t.Fatal("served backend must expose the direct FS and the server")
	}
	if !strings.HasPrefix(b.FS.Name(), "served:") {
		t.Fatalf("served FS name = %q", b.FS.Name())
	}
	if got := len(ServedBackendKinds()); got != len(BackendKinds()) {
		t.Fatalf("ServedBackendKinds has %d kinds", got)
	}
	if !IsBackendKind("served-lease:splitfs-strict") {
		t.Fatal("served-lease:splitfs-strict should be a valid kind")
	}
	if IsBackendKind("served-lease:nope") {
		t.Fatal("served-lease wrapper of an unknown kind must be invalid")
	}
	if _, err := NewBackend("served-lease:served:ext4-dax", BackendSpec{}); err == nil {
		t.Fatal("nested served-lease wrapper must be rejected")
	}
	if got := len(ServedLeaseBackendKinds()); got != len(BackendKinds()) {
		t.Fatalf("ServedLeaseBackendKinds has %d kinds", got)
	}
}

// TestServedEventStreamMatchesDirect verifies the loopback determinism
// claim the crash harness depends on: a single-session served run
// issues the exact persistence-event sequence of a direct run, so the
// device counters agree event for event.
func TestServedEventStreamMatchesDirect(t *testing.T) {
	ops := AsyncOps(42, 20)
	sys := compile(ops)

	run := func(kind string) (int64, int64) {
		b, err := NewBackend(kind, BackendSpec{})
		if err != nil {
			t.Fatal(err)
		}
		r := &runner{fs: b.FS, handles: map[string]vfs.File{}}
		for i, sc := range sys {
			if err := r.apply(sc); err != nil {
				t.Fatalf("%s: syscall %d: %v", kind, i, err)
			}
		}
		return b.Dev.Stats().Fences, b.Dev.Stats().BytesWritten()
	}

	dFences, dBytes := run("splitfs-strict")
	sFences, sBytes := run("served:splitfs-strict")
	if dFences != sFences || dBytes != sBytes {
		t.Fatalf("served run diverged from direct: fences %d vs %d, bytes %d vs %d",
			dFences, sFences, dBytes, sBytes)
	}
	// The zero-copy plane must not perturb the stream either: a leased
	// write stores through the same backend file a direct caller uses,
	// and lease grants read metadata only.
	lFences, lBytes := run("served-lease:splitfs-strict")
	if dFences != lFences || dBytes != lBytes {
		t.Fatalf("served-lease run diverged from direct: fences %d vs %d, bytes %d vs %d",
			dFences, lFences, dBytes, lBytes)
	}
}
