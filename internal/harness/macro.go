// The macrobenchmark matrix: YCSB workloads A-F (on the lsmkv
// LSM engine) and a scaled-down TPC-C (on the waldb WAL page store) over
// every backend in the repository, through the vfs interface. The paper's
// headline numbers are exactly this matrix (§5.2: LevelDB/YCSB and
// SQLite/TPC-C over ext4-DAX, NOVA, PMFS, Strata, and the three SplitFS
// modes); here each cell reports deterministic simulator-derived metrics —
// simulated ns/op, fences/op, journal commits, relink and
// staging-reclaim counts, bytes written to PM — plus the executed op mix.
//
// Because every metric comes from the deterministic cost model and
// seeded generators, a cell's numbers are reproducible byte-for-byte:
// CI diffs the counters against BENCH_baseline.json and fails on any
// unexplained drift (see DESIGN.md, "Macrobenchmark matrix").
package harness

import (
	"fmt"
	"strings"

	"splitfs/internal/apps/lsmkv"
	"splitfs/internal/apps/waldb"
	"splitfs/internal/crash"
	"splitfs/internal/ext4dax"
	"splitfs/internal/logfs"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/strata"
	"splitfs/internal/wl/tpcc"
	"splitfs/internal/wl/ycsb"
)

func init() {
	register("macro", "Macrobenchmark matrix: YCSB A-F + TPC-C over all nine backends", macroExp)
}

// MacroScales are the supported scale levels, smallest first. smoke is
// the CI gate (seconds for the full matrix); small approximates the
// repo's default workload sizes; full approaches the paper's scaled-down
// evaluation sizes.
var MacroScales = []string{"smoke", "small", "full"}

// MacroWorkloads returns the workload column of the matrix.
func MacroWorkloads() []string {
	return []string{"ycsb-A", "ycsb-B", "ycsb-C", "ycsb-D", "ycsb-E", "ycsb-F", "tpcc"}
}

// MacroBackends returns the backend row of the matrix — the same nine
// the differential suite compares.
func MacroBackends() []string { return crash.BackendKinds() }

// macroSel is the process-wide matrix selection, reconfigured by
// cmd/splitbench's -scale/-backend/-workload flags before the experiment
// runs (same pattern as SetMaxThreads).
var macroSel = struct {
	scale     string
	backends  []string
	workloads []string
}{scale: "smoke"}

// SetMacroConfig selects the scale level and optionally restricts the
// matrix to given backends and workloads (nil or empty = all).
func SetMacroConfig(scale string, backends, workloads []string) error {
	ok := false
	for _, s := range MacroScales {
		if s == scale {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("harness: unknown macro scale %q (have %v)", scale, MacroScales)
	}
	for _, b := range backends {
		if !crash.IsBackendKind(b) {
			return fmt.Errorf("harness: unknown backend %q (have %v)", b, MacroBackends())
		}
	}
	for _, w := range workloads {
		found := false
		for _, have := range MacroWorkloads() {
			if w == have {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("harness: unknown workload %q (have %v)", w, MacroWorkloads())
		}
	}
	macroSel.scale = scale
	macroSel.backends = append([]string(nil), backends...)
	macroSel.workloads = append([]string(nil), workloads...)
	return nil
}

// macroParams sizes one scale level: the backend spec plus the workload
// and engine configurations. The workload seeds are fixed per scale so
// every backend sees the identical op stream.
type macroParams struct {
	spec   crash.BackendSpec
	ycsb   ycsb.Config
	lsm    lsmkv.Options
	tpcc   tpcc.Config
	tpccTx int
	ckpt   int // waldb checkpoint threshold (frames)
}

func macroScaleParams(scale string) (macroParams, error) {
	switch scale {
	case "smoke":
		return macroParams{
			spec: crash.BackendSpec{DevBytes: 64 << 20, MaxInodes: 1024,
				StagingFiles: 6, StagingFileBytes: 1 << 20, OpLogBytes: 1 << 20,
				LogBytes: 4 << 20, SnapshotSlotBytes: 1 << 20, PrivateLogBytes: 2 << 20},
			// The memtable is sized well below the loaded dataset (~32 KB)
			// so flushes, compactions, and table reads all happen within a
			// smoke run — otherwise read-only workloads like C never leave
			// the DRAM memtable and measure nothing.
			ycsb:   ycsb.Config{Records: 120, Operations: 240, ValueBytes: 256, MaxScan: 20, Seed: 11},
			lsm:    lsmkv.Options{MemtableBytes: 8 << 10, SyncWrites: true, IndexEvery: 8},
			tpcc:   tpcc.Config{Warehouses: 1, Districts: 2, Customers: 20, Items: 60, Seed: 42},
			tpccTx: 60, ckpt: 128,
		}, nil
	case "small":
		return macroParams{
			spec: crash.BackendSpec{DevBytes: 256 << 20, MaxInodes: 4096,
				StagingFiles: 12, StagingFileBytes: 4 << 20, OpLogBytes: 4 << 20,
				LogBytes: 8 << 20, SnapshotSlotBytes: 2 << 20, PrivateLogBytes: 3 << 20},
			ycsb:   ycsb.Config{Records: 1000, Operations: 2000, ValueBytes: 1000, MaxScan: 50, Seed: 11},
			lsm:    lsmkv.Options{MemtableBytes: 256 << 10, SyncWrites: true},
			tpcc:   tpcc.Config{Warehouses: 1, Districts: 4, Customers: 60, Items: 200, Seed: 42},
			tpccTx: 400, ckpt: 256,
		}, nil
	case "full":
		return macroParams{
			spec: crash.BackendSpec{DevBytes: 1 << 30, MaxInodes: 8192,
				StagingFiles: 24, StagingFileBytes: 8 << 20, OpLogBytes: 8 << 20,
				LogBytes: 16 << 20, SnapshotSlotBytes: 4 << 20, PrivateLogBytes: 3 << 20},
			ycsb:   ycsb.Config{Records: 5000, Operations: 10000, ValueBytes: 1000, MaxScan: 100, Seed: 11},
			lsm:    lsmkv.Options{MemtableBytes: 1 << 20, SyncWrites: true},
			tpcc:   tpcc.Config{Warehouses: 2, Districts: 10, Customers: 100, Items: 1000, Seed: 42},
			tpccTx: 1000, ckpt: 256,
		}, nil
	default:
		return macroParams{}, fmt.Errorf("harness: unknown macro scale %q", scale)
	}
}

// MacroCell is one (backend, workload) matrix cell.
type MacroCell struct {
	Backend  string
	Workload string
	Ops      int64
	// Metrics in a fixed order: the deterministic counters first
	// (ns_per_op, fences_per_op, journal_commits, log_appends, relinks,
	// staging_reclaimed, pm_bytes, ops), then the executed op mix.
	Metrics []Metric
}

// macroCounters is one snapshot of every deterministic counter a cell
// reports, taken before and after the run phase.
type macroCounters struct {
	clk        sim.Breakdown
	dev        pmem.Stats
	commits    int64 // ext4-dax jbd2 transaction commits (splitfs: its K-Split)
	logAppends int64 // per-op log appends of the log-structured engines
	relinks    int64
	reclaimed  int64
}

func snapshotCounters(b *crash.Backend) macroCounters {
	c := macroCounters{clk: b.Clock.Snapshot(), dev: b.Dev.Stats()}
	// A served: backend's FS is the RPC client; the journal/relink
	// counters live on the backend behind the service.
	fsAny := b.FS
	if b.Direct != nil {
		fsAny = b.Direct
	}
	switch fs := fsAny.(type) {
	case *splitfs.FS:
		c.commits = fs.KFS().Stats().Commits
		c.relinks = fs.Stats().Relinks
		c.reclaimed = int64(fs.StagingFilesReclaimed())
	case *ext4dax.FS:
		c.commits = fs.Stats().Commits
	case *logfs.FS: // also nova-*, pmfs: type aliases of logfs.FS
		c.logAppends = fs.Stats().LogAppends
	case *strata.FS:
		c.logAppends = fs.Stats().LogAppends
	}
	return c
}

// cellMetrics renders the before/after counter delta into the cell's
// fixed metric order.
func cellMetrics(ops int64, before, after macroCounters) []Metric {
	d := after.clk.Sub(before.clk)
	perOp := func(v int64) float64 {
		if ops == 0 {
			return 0
		}
		return float64(v) / float64(ops)
	}
	return []Metric{
		{Name: "ns_per_op", Value: perOp(d.Total), Unit: "ns/op"},
		{Name: "fences_per_op", Value: perOp(after.dev.Fences - before.dev.Fences), Unit: "fences/op"},
		{Name: "journal_commits", Value: float64(after.commits - before.commits), Unit: "count"},
		{Name: "log_appends", Value: float64(after.logAppends - before.logAppends), Unit: "count"},
		{Name: "relinks", Value: float64(after.relinks - before.relinks), Unit: "count"},
		{Name: "staging_reclaimed", Value: float64(after.reclaimed - before.reclaimed), Unit: "count"},
		{Name: "pm_bytes", Value: float64(after.dev.BytesWritten() - before.dev.BytesWritten()), Unit: "bytes"},
		{Name: "ops", Value: float64(ops), Unit: "ops"},
	}
}

// RunMacroCell runs one workload on one backend at the given scale and
// returns the cell's metrics. Only the run phase is measured; the load
// phase (YCSB load, TPC-C population) warms the store first.
func RunMacroCell(backend, workload, scale string) (*MacroCell, error) {
	p, err := macroScaleParams(scale)
	if err != nil {
		return nil, err
	}
	b, err := crash.NewBackend(backend, p.spec)
	if err != nil {
		return nil, fmt.Errorf("macro %s: %w", backend, err)
	}
	cell := &MacroCell{Backend: backend, Workload: workload}
	switch {
	case strings.HasPrefix(workload, "ycsb-") && len(workload) == len("ycsb-")+1:
		w := ycsb.Workload(workload[len("ycsb-")])
		db, err := lsmkv.Open(b.FS, p.lsm)
		if err != nil {
			return nil, fmt.Errorf("macro %s/%s: open: %w", workload, backend, err)
		}
		cfg := p.ycsb
		if w == ycsb.E {
			cfg.Operations /= 2 // paper: 500K ops for E vs 1M elsewhere
		}
		if _, err := ycsb.Load(db, cfg); err != nil {
			return nil, fmt.Errorf("macro %s/%s: load: %w", workload, backend, err)
		}
		before := snapshotCounters(b)
		st, err := ycsb.Run(db, w, cfg)
		if err != nil {
			return nil, fmt.Errorf("macro %s/%s: run: %w", workload, backend, err)
		}
		after := snapshotCounters(b)
		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("macro %s/%s: close: %w", workload, backend, err)
		}
		cell.Ops = st.Ops()
		cell.Metrics = append(cellMetrics(cell.Ops, before, after),
			Metric{Name: "mix_reads", Value: float64(st.Reads), Unit: "ops"},
			Metric{Name: "mix_updates", Value: float64(st.Updates), Unit: "ops"},
			Metric{Name: "mix_inserts", Value: float64(st.Inserts), Unit: "ops"},
			Metric{Name: "mix_scans", Value: float64(st.Scans), Unit: "ops"},
			Metric{Name: "mix_scan_rows", Value: float64(st.ScanRows), Unit: "rows"},
			Metric{Name: "mix_rmws", Value: float64(st.RMWs), Unit: "ops"},
		)
	case workload == "tpcc":
		db, err := waldb.Open(b.FS, waldb.Options{CheckpointPages: p.ckpt})
		if err != nil {
			return nil, fmt.Errorf("macro tpcc/%s: open: %w", backend, err)
		}
		bench, err := tpcc.New(tpcc.Wrap(db), p.tpcc)
		if err != nil {
			return nil, fmt.Errorf("macro tpcc/%s: populate: %w", backend, err)
		}
		before := snapshotCounters(b)
		st, err := bench.Run(p.tpccTx)
		if err != nil {
			return nil, fmt.Errorf("macro tpcc/%s: run: %w", backend, err)
		}
		after := snapshotCounters(b)
		if err := db.Close(); err != nil {
			return nil, fmt.Errorf("macro tpcc/%s: close: %w", backend, err)
		}
		cell.Ops = st.Total()
		cell.Metrics = append(cellMetrics(cell.Ops, before, after),
			Metric{Name: "mix_new_orders", Value: float64(st.NewOrders), Unit: "txns"},
			Metric{Name: "mix_payments", Value: float64(st.Payments), Unit: "txns"},
			Metric{Name: "mix_order_statuses", Value: float64(st.OrderStatuses), Unit: "txns"},
			Metric{Name: "mix_deliveries", Value: float64(st.Deliveries), Unit: "txns"},
			Metric{Name: "mix_stock_levels", Value: float64(st.StockLevels), Unit: "txns"},
		)
	default:
		return nil, fmt.Errorf("harness: unknown macro workload %q", workload)
	}
	return cell, nil
}

// macroExp runs the selected matrix and renders one table, one row per
// cell, flattening every metric into Table.Metrics as
// "<workload>/<backend>/<metric>" so cmd/splitbench serializes one
// BENCH_results.json row per (backend x workload x metric).
func macroExp() (*Table, error) {
	backends := macroSel.backends
	if len(backends) == 0 {
		backends = MacroBackends()
	}
	workloads := macroSel.workloads
	if len(workloads) == 0 {
		workloads = MacroWorkloads()
	}
	t := &Table{
		ID:    "macro",
		Title: fmt.Sprintf("Macrobenchmark matrix at scale %q: %d workloads x %d backends", macroSel.scale, len(workloads), len(backends)),
		Note:  "deterministic sim-derived counters; CI pins fences/op, journal commits, and PM bytes against BENCH_baseline.json",
		Headers: []string{"Workload", "Backend", "ns/op", "fences/op", "commits",
			"log appends", "relinks", "reclaimed", "PM MB", "ops"},
	}
	for _, w := range workloads {
		for _, bk := range backends {
			cell, err := RunMacroCell(bk, w, macroSel.scale)
			if err != nil {
				return nil, err
			}
			m := map[string]float64{}
			for _, mm := range cell.Metrics {
				m[mm.Name] = mm.Value
			}
			t.Rows = append(t.Rows, []string{
				w, bk, f1(m["ns_per_op"]), f2(m["fences_per_op"]),
				fmt.Sprintf("%.0f", m["journal_commits"]),
				fmt.Sprintf("%.0f", m["log_appends"]),
				fmt.Sprintf("%.0f", m["relinks"]),
				fmt.Sprintf("%.0f", m["staging_reclaimed"]),
				f2(m["pm_bytes"] / (1 << 20)),
				fmt.Sprintf("%d", cell.Ops),
			})
			for _, mm := range cell.Metrics {
				t.AddMetric(w+"/"+bk+"/"+mm.Name, mm.Value, mm.Unit)
			}
		}
	}
	return t, nil
}

// MacroBackendHash runs every macro workload on one backend at the given
// scale and returns an FNV-1a digest over the rendered metric lines —
// the seed-stability golden pinning both the generators and the
// simulator's deterministic counters.
func MacroBackendHash(backend, scale string) (uint64, error) {
	var sb strings.Builder
	for _, w := range MacroWorkloads() {
		cell, err := RunMacroCell(backend, w, scale)
		if err != nil {
			return 0, err
		}
		for _, m := range cell.Metrics {
			fmt.Fprintf(&sb, "%s/%s/%s=%.6g %s\n", w, backend, m.Name, m.Value, m.Unit)
		}
	}
	return crash.TraceHash(sb.String()), nil
}
