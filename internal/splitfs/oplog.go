package splitfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/metalog"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// The strict-mode operation log (§3.3, "Optimized logging"):
//
//   - logical redo records, one 64-byte cache line in the common case;
//   - a 4-byte transactional checksum inside the entry, so persisting and
//     validating needs ONE fence (metalog.SingleFence), versus NOVA's two;
//   - the tail lives only in DRAM and is advanced with compare-and-swap
//     (charged as CASNs); recovery identifies valid entries by scanning
//     the zeroed log and checking checksums;
//   - entries hold a logical pointer to the staging file holding the
//     data, never the data itself;
//   - when the log fills, U-Split checkpoints by relinking every file
//     with staged data, then zeroes and reuses the log.

// Log entry opcodes.
const (
	opEntryWrite byte = 1 // staged append/overwrite
	opEntryMeta  byte = 3 // metadata operation (open/close/unlink/...)
)

// oplog wraps a metalog running inside a pre-allocated K-Split file.
type oplog struct {
	fs   *FS
	kf   *ext4dax.File
	log  *metalog.Log
	base int64 // device offset of the log region
	size int64
}

const oplogDir = "/.splitfs-oplog"

// newOpLog creates (or truncates) the instance's operation-log file,
// pre-allocates it, zeroes it, and maps it.
func newOpLog(fs *FS) (*oplog, error) {
	if err := fs.kfs.Mkdir(oplogDir, 0700); err != nil {
		if _, statErr := fs.kfs.Stat(oplogDir); statErr != nil {
			return nil, err
		}
	}
	path := fmt.Sprintf("%s/log-%s", oplogDir, fs.mode)
	f, err := fs.kfs.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0600)
	if err != nil {
		return nil, err
	}
	kf := f.(*ext4dax.File)
	if err := kf.Preallocate(fs.cfg.OpLogBytes / sim.BlockSize); err != nil {
		return nil, err
	}
	base, size, err := oplogRegion(fs, kf)
	if err != nil {
		return nil, err
	}
	o := &oplog{fs: fs, kf: kf, base: base, size: size}
	o.log = metalog.New(fs.dev, base, size, sim.CatOpLog)
	return o, nil
}

// loadOpLog attaches to an existing operation-log file after a crash and
// returns the valid entries.
func loadOpLog(fs *FS) (*oplog, [][]byte, error) {
	path := fmt.Sprintf("%s/log-%s", oplogDir, fs.mode)
	f, err := fs.kfs.OpenFile(path, vfs.O_RDWR, 0)
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil, nil, nil // no log: clean POSIX/sync shutdown
		}
		return nil, nil, err
	}
	kf := f.(*ext4dax.File)
	base, size, err := oplogRegion(fs, kf)
	if err != nil {
		return nil, nil, err
	}
	o := &oplog{fs: fs, kf: kf, base: base, size: size}
	var entries [][]byte
	o.log, entries = metalog.Load(fs.dev, base, size, sim.CatOpLog)
	return o, entries, nil
}

// oplogRegion maps the log file and returns its largest leading
// physically contiguous device region.
func oplogRegion(fs *FS, kf *ext4dax.File) (base, size int64, err error) {
	m, err := fs.kfs.Mmap(kf, 0, fs.cfg.OpLogBytes, ext4dax.MmapOptions{Populate: true})
	if err != nil {
		return 0, 0, err
	}
	base, contig, ok := m.Translate(0)
	if !ok {
		return 0, 0, fmt.Errorf("splitfs: op log not mapped")
	}
	size = contig
	if size > fs.cfg.OpLogBytes {
		size = fs.cfg.OpLogBytes
	}
	if size < 64<<10 {
		return 0, 0, fmt.Errorf("splitfs: op log fragmented to %d bytes", size)
	}
	return base, size, nil
}

// encWriteEntry builds a 41-byte staged-write record — one cache line on
// the log including the metalog header (§3.3: "all common case
// operations can be logged using a single 64B log entry"). seq is the
// monotonically increasing operation sequence compared against the
// inode's relink watermark at recovery. dataSum is a checksum over the
// staged bytes the entry points at: entry and data share one fence, so a
// crash between the entry store and that fence can leave the entry line
// intact while the staged data tore — recovery must treat such an entry
// as never completed, which only a checksum over the data can establish.
// (Found by the persistence-event crash sweep; see DESIGN.md.)
func encWriteEntry(ino uint32, fileOff int64, length uint32, stagingIno uint32, stagingOff int64, seq uint64, dataSum uint32) []byte {
	b := make([]byte, 41)
	b[0] = opEntryWrite
	binary.LittleEndian.PutUint32(b[1:], ino)
	binary.LittleEndian.PutUint32(b[5:], stagingIno)
	binary.LittleEndian.PutUint64(b[9:], uint64(fileOff))
	binary.LittleEndian.PutUint32(b[17:], length)
	binary.LittleEndian.PutUint64(b[21:], uint64(stagingOff))
	binary.LittleEndian.PutUint64(b[29:], seq)
	binary.LittleEndian.PutUint32(b[37:], dataSum)
	return b
}

// stagedSum checksums staged data for a write entry (FNV-1a folded to 32
// bits; zero is avoided so "no checksum" can never validate).
func stagedSum(p []byte) uint32 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	s := uint32(h ^ h>>32)
	if s == 0 {
		s = 1
	}
	return s
}

// encMetaEntry records a metadata operation (open, close, unlink, ...).
// Replay treats them as no-ops — K-Split journaling already makes
// metadata atomic — but logging them preserves the paper's cost profile
// for strict mode (Table 6: strict open 2.09 µs vs POSIX 1.82 µs).
func encMetaEntry(kind byte, ino uint64) []byte {
	b := make([]byte, 17)
	b[0] = opEntryMeta
	b[1] = kind
	binary.LittleEndian.PutUint64(b[2:], ino)
	return b
}

// appendLog writes one entry to the strict-mode operation log: CAS tail
// bump + non-temporal entry store + single fence. Checkpoints the log
// when full. Caller holds wmu (which serializes the log tail, standing in
// for the paper's CAS loop); owner is the ofile whose mu the caller
// already holds, or nil — the checkpoint needs every file's lock and must
// not re-lock that one.
func (fs *FS) appendLog(owner *ofile, entry []byte) {
	fs.clk.Charge(sim.CatCPU, sim.CASNs)
	fs.stats.logEntries.Add(1)
	if err := fs.olog.log.Append(entry, metalog.SingleFence); err == nil {
		return
	}
	// Log full (§3.3): relink all files with staged data, zero the log,
	// and retry.
	fs.checkpoint(owner)
	if err := fs.olog.log.Append(entry, metalog.SingleFence); err != nil {
		panic(fmt.Sprintf("splitfs: op log smaller than one entry: %v", err))
	}
}

// reset zeroes the log (after a checkpoint).
func (o *oplog) reset() { o.log.Reset() }
