package crash

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// Recovery idempotence: mounting twice and running RecoverFS twice over
// the same crashed image must yield byte-identical file contents, and
// the repeated recovery must have nothing left to do (its report shows
// an empty log and zero replays).
func TestRecoveryIdempotence(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		ops := MetadataOps(17, 12)
		// Probe a few crash points: boundary and intra-op events.
		record, err := Run(Campaign{Mode: mode, Ops: ops, CrashAfter: len(ops), Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		w0 := record.SysEvents[0]
		w1 := record.SysEvents[len(record.SysEvents)-1]
		rng := sim.NewRNG(99)
		for probe := 0; probe < 4; probe++ {
			k := w0 + 1 + rng.Int63n(w1-w0)
			env, fs, err := newEnv(mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			env.dev.ArmCrash(k, sim.NewRNG(mix(17, uint64(k))))
			r := &runner{fs: fs, handles: map[string]vfs.File{}}
			for _, sc := range compile(ops) {
				if err := r.apply(sc); err != nil {
					t.Fatal(err)
				}
			}
			if err := env.dev.Crash(sim.NewRNG(17)); err != nil {
				t.Fatal(err)
			}

			// Mount twice: the second journal replay must be a no-op.
			if _, _, err := ext4dax.Mount(env.dev, ext4dax.Config{}); err != nil {
				t.Fatalf("%v k=%d: first mount: %v", mode, k, err)
			}
			kfs, replayed2, err := ext4dax.Mount(env.dev, ext4dax.Config{})
			if err != nil {
				t.Fatalf("%v k=%d: second mount: %v", mode, k, err)
			}
			if replayed2 != 0 {
				t.Fatalf("%v k=%d: second mount replayed %d transactions", mode, k, replayed2)
			}

			_, rep1, err := splitfs.RecoverFS(kfs, env.cfg)
			if err != nil {
				t.Fatalf("%v k=%d: first recovery: %v", mode, k, err)
			}
			// Snapshot through the kernel view: reading via the recovered
			// strict instance would itself append open/close log entries.
			snap1 := dumpFiles(t, kfs)

			// Recover again over the recovered image (as if the machine
			// lost power right after recovery finished).
			kfs2, _, err := ext4dax.Mount(env.dev, ext4dax.Config{})
			if err != nil {
				t.Fatalf("%v k=%d: remount: %v", mode, k, err)
			}
			_, rep2, err := splitfs.RecoverFS(kfs2, env.cfg)
			if err != nil {
				t.Fatalf("%v k=%d: second recovery: %v", mode, k, err)
			}
			snap2 := dumpFiles(t, kfs2)

			if !bytes.Equal(snap1, snap2) {
				t.Fatalf("%v k=%d: repeated recovery changed file contents:\n%s\nvs\n%s",
					mode, k, snap1, snap2)
			}
			if rep2.Entries != 0 || rep2.Replayed != 0 {
				t.Fatalf("%v k=%d: second recovery not idempotent: first %+v, second %+v",
					mode, k, rep1, rep2)
			}
		}
	}
}

// dumpFiles serializes every user-visible file (path, size, contents)
// into a deterministic byte snapshot, skipping SplitFS-internal files
// (the staging pool is recreated by each recovery).
func dumpFiles(t *testing.T, fs vfs.FileSystem) []byte {
	t.Helper()
	dur, err := captureDurable(fs)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	var buf bytes.Buffer
	for _, p := range sortedPaths(dur.files) {
		if strings.HasPrefix(p, "/.splitfs") {
			continue
		}
		fmt.Fprintf(&buf, "%s %d %x\n", p, len(dur.files[p]), dur.files[p])
	}
	return buf.Bytes()
}
