package pmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"splitfs/internal/sim"
)

// These tests exercise the sharded device from many goroutines; run them
// under the race detector (go test -race ./internal/pmem) to validate the
// per-shard locking discipline.

func TestConcurrentDisjointWriters(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 8 << 20, Clock: clk, TrackPersistence: true, TrackWear: true})
	const goroutines = 8
	const region = 1 << 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * region
			blk := bytes.Repeat([]byte{byte(g + 1)}, sim.BlockSize)
			for i := 0; i < region/sim.BlockSize; i++ {
				off := base + int64(i)*sim.BlockSize
				if i%2 == 0 {
					d.StoreNT(off, blk, sim.CatPMData)
				} else {
					d.Store(off, blk, sim.CatPMData)
					d.Flush(off, len(blk), sim.CatPMData)
				}
			}
			d.Fence()
		}(g)
	}
	wg.Wait()
	d.Fence()
	// Every region holds its writer's byte pattern, durably.
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sim.BlockSize)
	for g := 0; g < goroutines; g++ {
		for _, i := range []int{0, 1, region/sim.BlockSize - 1} {
			off := int64(g)*region + int64(i)*sim.BlockSize
			d.ReadAt(buf, off, sim.CatPMData)
			want := bytes.Repeat([]byte{byte(g + 1)}, sim.BlockSize)
			if !bytes.Equal(buf, want) {
				t.Fatalf("region %d block %d corrupted after crash", g, i)
			}
		}
	}
	if d.MaxWear() == 0 {
		t.Fatal("wear tracking lost under concurrency")
	}
}

func TestConcurrentReadersAndWritersDisjoint(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 4 << 20, Clock: clk})
	// Writers own the first half, readers the second.
	init := bytes.Repeat([]byte{0xAB}, 2<<20)
	d.StoreNT(2<<20, init, sim.CatPMData)
	d.Fence()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blk := make([]byte, 4096)
			for i := 0; i < 64; i++ {
				d.StoreNT(int64(g)*(512<<10)+int64(i)*4096, blk, sim.CatPMData)
				d.Fence()
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < 64; i++ {
				off := 2<<20 + int64(g)*(512<<10) + int64(i)*4096
				d.ReadIntoUser(buf, off, sim.CatPMData)
				if buf[0] != 0xAB {
					t.Errorf("reader %d: got %#x at %d", g, buf[0], off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentSameShard drives all goroutines into one shard; the shard
// lock must serialize them without losing line state.
func TestConcurrentSameShard(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 1 << 20, Clock: clk, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			line := make([]byte, sim.CacheLine)
			for i := range line {
				line[i] = byte(g)
			}
			// All goroutines write distinct lines of the same 4 KB block.
			d.Store(int64(g)*sim.CacheLine, line, sim.CatPMData)
			d.Flush(int64(g)*sim.CacheLine, sim.CacheLine, sim.CatPMData)
		}(g)
	}
	wg.Wait()
	if got := d.UnpersistedLines(); got != 8 {
		t.Fatalf("UnpersistedLines() = %d, want 8", got)
	}
	d.Fence()
	if got := d.UnpersistedLines(); got != 0 {
		t.Fatalf("after fence UnpersistedLines() = %d, want 0", got)
	}
}

// TestShardBoundarySpan checks writes and reads that straddle shard
// boundaries are applied whole.
func TestShardBoundarySpan(t *testing.T) {
	clk := sim.NewClock()
	d := New(Config{Size: 1 << 20, Clock: clk, Shards: 16})
	span := (int64(1<<20) / 16)
	p := bytes.Repeat([]byte{0x5C}, int(2*sim.CacheLine))
	off := span - sim.CacheLine // straddles shard 0 / shard 1
	d.StoreNT(off, p, sim.CatPMData)
	d.Fence()
	got := make([]byte, len(p))
	d.ReadAt(got, off, sim.CatPMData)
	if !bytes.Equal(got, p) {
		t.Fatal("cross-shard write torn")
	}
}

func TestShardsConfig(t *testing.T) {
	clk := sim.NewClock()
	for _, shards := range []int{1, 3, 64, 1024} {
		d := New(Config{Size: 256 << 10, Clock: clk, Shards: shards})
		if d.Shards() < 1 {
			t.Fatalf("Shards()=%d for config %d", d.Shards(), shards)
		}
		// Whole-device write then read back.
		p := bytes.Repeat([]byte{7}, 256<<10)
		d.StoreNT(0, p, sim.CatPMData)
		got := make([]byte, len(p))
		d.ReadAt(got, 0, sim.CatPMData)
		if !bytes.Equal(got, p) {
			t.Fatalf("shards=%d: readback mismatch", shards)
		}
	}
}

// BenchmarkParallelStoreNT measures wall-clock append-style store
// throughput scaling across goroutines on disjoint regions — the device
// half of the ISSUE's >=2x-at-4-threads acceptance criterion. Each worker
// cycles over its own pre-touched 8 MB region, so only lock behaviour (not
// page-fault noise) varies with the thread count. Meaningful scaling
// needs GOMAXPROCS >= threads; on a single-CPU host the numbers only show
// that the sharded locks add no overhead.
func BenchmarkParallelStoreNT(b *testing.B) {
	const regionBytes = 8 << 20
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			clk := sim.NewClock()
			d := New(Config{Size: int64(threads) * regionBytes, Clock: clk})
			// Pre-touch the whole device so lazy page allocation stays out
			// of the timed region.
			zero := make([]byte, 1<<20)
			for off := int64(0); off < d.Size(); off += int64(len(zero)) {
				d.StoreNT(off, zero, sim.CatPMData)
			}
			d.Fence()
			blk := make([]byte, sim.BlockSize)
			blocksPerRegion := int64(regionBytes / sim.BlockSize)
			b.SetBytes(int64(threads) * sim.BlockSize)
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := int64(g) * regionBytes
					for i := 0; i < b.N; i++ {
						off := base + int64(i)%blocksPerRegion*sim.BlockSize
						d.StoreNT(off, blk, sim.CatPMData)
						if i%16 == 15 {
							d.Fence()
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
