package crash

import (
	"testing"

	"splitfs/internal/splitfs"
)

func TestStrictGuaranteeAtEveryCrashPoint(t *testing.T) {
	ops := RandomOps(21, 24)
	for point := 1; point <= len(ops); point += 3 {
		res, err := Run(Campaign{Mode: splitfs.Strict, Ops: ops,
			CrashAfter: point, Seed: uint64(point)})
		if err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
		if res.Violation != "" {
			t.Fatalf("point %d: %s", point, res.Violation)
		}
	}
}

func TestPosixAndSyncGuarantees(t *testing.T) {
	ops := RandomOps(33, 30)
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync} {
		for point := 2; point <= len(ops); point += 5 {
			res, err := Run(Campaign{Mode: mode, Ops: ops,
				CrashAfter: point, Seed: uint64(point) ^ 0x55})
			if err != nil {
				t.Fatalf("%v point %d: %v", mode, point, err)
			}
			if res.Violation != "" {
				t.Fatalf("%v point %d: %s", mode, point, res.Violation)
			}
		}
	}
}

func TestStrictReplaysOutstandingWrites(t *testing.T) {
	ops := []Op{
		{Path: "/f", Off: -1, Data: []byte("first"), Fsync: true},
		{Path: "/f", Off: -1, Data: []byte("second")}, // logged, never fsynced
	}
	res, err := Run(Campaign{Mode: splitfs.Strict, Ops: ops, CrashAfter: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatal(res.Violation)
	}
	if res.Replayed == 0 {
		t.Fatal("expected the unsynced strict write to be replayed")
	}
}

func TestCampaignSweepManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		ops := RandomOps(seed*7, 20)
		res, err := Run(Campaign{Mode: splitfs.Strict, Ops: ops,
			CrashAfter: len(ops), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != "" {
			t.Fatalf("seed %d: %s", seed, res.Violation)
		}
	}
}
