package lsmkv

import (
	"encoding/binary"
	"fmt"
	"io"

	"splitfs/internal/vfs"
)

// table is one immutable sorted string table.
//
// Layout: records [keyLen(4) valLen(4) key val]... then a footer:
// [indexOff(8) indexCount(4) magic(4)]. The sparse index holds every
// IndexEvery-th record as [keyLen(4) key off(8)].
type table struct {
	fs    vfs.FileSystem
	path  string
	f     vfs.File
	size  int64 // bytes of record area
	index []indexEntry
}

type indexEntry struct {
	key string
	off int64
}

const tableMagic = 0x55B1E5

// writeTable streams sorted key-value pairs into a new table file.
func writeTable(fs vfs.FileSystem, path string, kvs []KV, indexEvery int) (*table, error) {
	f, err := fs.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
	if err != nil {
		return nil, err
	}
	t := &table{fs: fs, path: path, f: f}
	var buf []byte
	off := int64(0)
	for i, kv := range kvs {
		if i%indexEvery == 0 {
			t.index = append(t.index, indexEntry{key: kv.Key, off: off})
		}
		rec := walRecord(kv.Key, kv.Val)
		buf = append(buf, rec...)
		off += int64(len(rec))
		// Write in ~64 KB chunks for sequential IO.
		if len(buf) >= 64<<10 {
			if _, err := f.Write(buf); err != nil {
				return nil, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			return nil, err
		}
	}
	t.size = off
	// Index block + footer.
	var ib []byte
	for _, e := range t.index {
		var kl [4]byte
		binary.LittleEndian.PutUint32(kl[:], uint32(len(e.key)))
		ib = append(ib, kl[:]...)
		ib = append(ib, e.key...)
		var ob [8]byte
		binary.LittleEndian.PutUint64(ob[:], uint64(e.off))
		ib = append(ib, ob[:]...)
	}
	footer := make([]byte, 16)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(off))
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(t.index)))
	binary.LittleEndian.PutUint32(footer[12:16], tableMagic)
	if _, err := f.Write(append(ib, footer...)); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	return t, nil
}

// openTable attaches to an existing table and loads its index.
func openTable(fs vfs.FileSystem, path string, indexEvery int) (*table, error) {
	f, err := fs.OpenFile(path, vfs.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	footer := make([]byte, 16)
	if _, err := f.ReadAt(footer, info.Size-16); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[12:16]) != tableMagic {
		return nil, fmt.Errorf("lsmkv: %s: bad table magic", path)
	}
	t := &table{fs: fs, path: path, f: f}
	t.size = int64(binary.LittleEndian.Uint64(footer[0:8]))
	count := int(binary.LittleEndian.Uint32(footer[8:12]))
	ib := make([]byte, info.Size-16-t.size)
	if len(ib) > 0 {
		if _, err := f.ReadAt(ib, t.size); err != nil {
			return nil, err
		}
	}
	pos := 0
	for i := 0; i < count; i++ {
		kl := int(binary.LittleEndian.Uint32(ib[pos : pos+4]))
		key := string(ib[pos+4 : pos+4+kl])
		off := int64(binary.LittleEndian.Uint64(ib[pos+4+kl : pos+12+kl]))
		t.index = append(t.index, indexEntry{key: key, off: off})
		pos += 12 + kl
	}
	return t, nil
}

// seekOff returns the record offset to start scanning from for key.
func (t *table) seekOff(key string) int64 {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.index[mid].key <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return t.index[lo-1].off
}

// get performs a point lookup: index seek + bounded sequential record
// scan.
func (t *table) get(key string) ([]byte, bool, error) {
	off := t.seekOff(key)
	// Read a window; records are small relative to the index stride.
	buf := make([]byte, 32<<10)
	for off < t.size {
		n, err := t.f.ReadAt(buf, off)
		if err != nil && err != io.EOF && n == 0 {
			return nil, false, err
		}
		window := buf[:n]
		pos := 0
		for pos+8 <= len(window) {
			kl := int(binary.LittleEndian.Uint32(window[pos : pos+4]))
			vl := int(binary.LittleEndian.Uint32(window[pos+4 : pos+8]))
			if pos+8+kl+vl > len(window) {
				break // record straddles the window; refill
			}
			k := string(window[pos+8 : pos+8+kl])
			if k == key {
				v := append([]byte(nil), window[pos+8+kl:pos+8+kl+vl]...)
				return v, true, nil
			}
			if k > key {
				return nil, false, nil
			}
			pos += 8 + kl + vl
		}
		if pos == 0 {
			return nil, false, fmt.Errorf("lsmkv: %s: record larger than window", t.path)
		}
		off += int64(pos)
		if off+8 > t.size {
			break
		}
	}
	return nil, false, nil
}

// scanInto merges records with key >= start into dst, up to max entries
// read from this table.
func (t *table) scanInto(dst map[string][]byte, start string, max int) error {
	off := t.seekOff(start)
	buf := make([]byte, 64<<10)
	added := 0
	for off < t.size && added < max {
		n, err := t.f.ReadAt(buf, off)
		if err != nil && err != io.EOF && n == 0 {
			return err
		}
		window := buf[:n]
		pos := 0
		for pos+8 <= len(window) && added < max {
			kl := int(binary.LittleEndian.Uint32(window[pos : pos+4]))
			vl := int(binary.LittleEndian.Uint32(window[pos+4 : pos+8]))
			if pos+8+kl+vl > len(window) {
				break
			}
			k := string(window[pos+8 : pos+8+kl])
			if k >= start {
				dst[k] = append([]byte(nil), window[pos+8+kl:pos+8+kl+vl]...)
				added++
			}
			pos += 8 + kl + vl
		}
		if pos == 0 {
			break
		}
		off += int64(pos)
	}
	return nil
}

func (t *table) close() {
	if t.f != nil {
		t.f.Close()
	}
}
