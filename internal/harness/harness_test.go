package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The harness tests verify that every experiment runs and that the
// paper's headline shape claims hold on the reproduced tables.

func runT(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tbl, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), tbl.Title) {
		t.Fatal("render lost the title")
	}
	return tbl
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.Fields(tbl.Rows[row][col])[0], "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "table2", "table6", "table7",
		"fig3", "fig4", "fig5", "fig6", "recovery", "resources", "ablation"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments", len(All()))
	}
}

func TestTable1Shape(t *testing.T) {
	tbl := runT(t, "table1")
	// Row order: ext4, pmfs, nova-strict, splitfs-strict, splitfs-posix.
	appendNs := func(r int) float64 { return cell(t, tbl, r, 1) }
	if !(appendNs(0) > appendNs(1) && appendNs(1) > appendNs(2) &&
		appendNs(2) > appendNs(3) && appendNs(3) > appendNs(4)) {
		t.Fatalf("Table 1 ordering broken: %v", tbl.Rows)
	}
	// Paper ratios: ext4/splitfs-posix ~7.8x.
	if r := appendNs(0) / appendNs(4); r < 5 || r > 11 {
		t.Fatalf("ext4/splitfs-posix append ratio = %.1f, want ~7.8", r)
	}
}

func TestTable2Anchors(t *testing.T) {
	tbl := runT(t, "table2")
	if got := cell(t, tbl, 0, 1); got < 160 || got > 180 {
		t.Fatalf("seq read latency = %v", got)
	}
	if got := cell(t, tbl, 2, 1); got < 80 || got > 100 {
		t.Fatalf("store+flush+fence = %v", got)
	}
}

func TestTable6Shape(t *testing.T) {
	tbl := runT(t, "table6")
	get := func(sys string, col int) float64 {
		for r, row := range tbl.Rows {
			if row[0] == sys {
				return cell(t, tbl, r, col)
			}
		}
		t.Fatalf("row %s missing", sys)
		return 0
	}
	// Columns: 1=strict 2=sync 3=posix 4=ext4.
	if !(get("append", 4) > 4*get("append", 3)) {
		t.Fatal("SplitFS appends must be several times faster than ext4")
	}
	if !(get("fsync", 4) > 2*get("fsync", 1)) {
		t.Fatal("SplitFS fsync must be far cheaper than ext4 fsync")
	}
	if !(get("unlink", 1) > get("unlink", 4)) {
		t.Fatal("SplitFS unlink must cost more than ext4 (munmaps)")
	}
	if !(get("open", 1) >= get("open", 3) && get("open", 3) > get("open", 4)) {
		t.Fatal("open cost must rise with stronger modes")
	}
}

func TestFig3Shape(t *testing.T) {
	tbl := runT(t, "fig3")
	// Appends: staging must beat split-arch alone; relink must beat
	// staging (paper: ~2x then ~2.5x more).
	appends := func(r int) float64 { return cell(t, tbl, r, 3) }
	if !(appends(2) > appends(1) && appends(3) > 1.5*appends(2)) {
		t.Fatalf("Fig 3 technique progression broken: %v", tbl.Rows)
	}
	// Overwrites: split architecture alone must already beat ext4 2x+.
	if ow := cell(t, tbl, 1, 1) / cell(t, tbl, 0, 1); ow < 2 {
		t.Fatalf("split architecture overwrite gain = %.2f, want > 2", ow)
	}
}

func TestFig4Shape(t *testing.T) {
	tbl := runT(t, "fig4")
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[1]] = row
	}
	pf := func(fs string, col int) float64 {
		v, err := strconv.ParseFloat(byName[fs][col], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Columns: 2 seq read, 3 rand read, 4 seq write, 5 rand write, 6 append.
	for _, pair := range [][2]string{
		{"splitfs-posix", "ext4-dax"},
		{"splitfs-sync", "pmfs"},
		{"splitfs-strict", "nova-strict"},
	} {
		for col := 2; col <= 6; col++ {
			if pf(pair[0], col) < pf(pair[1], col) {
				t.Errorf("%s slower than %s on pattern col %d", pair[0], pair[1], col)
			}
		}
	}
	// Strata appends must trail everything in the strict group (double
	// write).
	if pf("strata", 6) > pf("nova-strict", 6) {
		t.Error("Strata appends should trail NOVA-strict")
	}
}

func TestRecoveryScalesLinearly(t *testing.T) {
	tbl := runT(t, "recovery")
	if len(tbl.Rows) < 3 {
		t.Fatal("want 3 recovery points")
	}
	t0, m0 := cell(t, tbl, 0, 0), cell(t, tbl, 0, 2)
	t2, m2 := cell(t, tbl, 2, 0), cell(t, tbl, 2, 2)
	perEntry0, perEntry2 := m0/t0, m2/t2
	if perEntry2 > perEntry0*3 || perEntry0 > perEntry2*5 {
		t.Fatalf("recovery not ~linear: %.4f vs %.4f ms/entry", perEntry0, perEntry2)
	}
}

func TestAblationShape(t *testing.T) {
	tbl := runT(t, "ablation")
	get := func(prefix string, col int) float64 {
		for r, row := range tbl.Rows {
			if strings.HasPrefix(row[0], prefix) {
				return cell(t, tbl, r, col)
			}
		}
		t.Fatalf("ablation row %q missing", prefix)
		return 0
	}
	def := get("default", 2)
	if dram := get("staging in DRAM", 2); dram > def*0.6 {
		t.Fatalf("DRAM staging appends = %.1f vs default %.1f; must lose clearly (§4)", dram, def)
	}
	if noRelink := get("no relink", 2); noRelink > def*0.7 {
		t.Fatalf("no-relink appends = %.1f vs default %.1f; relink must matter", noRelink, def)
	}
}
