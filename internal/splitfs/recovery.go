package splitfs

import (
	"encoding/binary"
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/vfs"
)

// RecoveryReport summarizes a strict-mode crash recovery (§5.3).
type RecoveryReport struct {
	// Entries is the number of valid operation-log entries scanned.
	Entries int
	// Replayed is the number of staged writes re-applied (entries whose
	// staging range was still allocated, meaning the relink had not
	// committed before the crash).
	Replayed int
	// Skipped entries were already covered by a committed relink.
	Skipped int
	// ReplayNs is the simulated time the log replay took.
	ReplayNs int64
}

// RecoverFS performs crash recovery over a crashed device that has been
// re-mounted at the ext4 DAX level (journal replay), then rebuilds a
// U-Split instance and replays the operation log. POSIX and sync modes
// need nothing beyond ext4 DAX recovery (§5.3).
func RecoverFS(kfs *ext4dax.FS, cfg Config) (*FS, *RecoveryReport, error) {
	cfg.fill()
	fs := &FS{
		kfs:   kfs,
		dev:   kfs.Device(),
		clk:   kfs.Device().Clock(),
		cfg:   cfg,
		mode:  cfg.Mode,
		files: make(map[uint64]*ofile),
		attrs: make(map[string]vfs.FileInfo),
	}
	fs.mmaps = newMmapCache(fs)
	report := &RecoveryReport{}

	if fs.mode == Strict {
		start := fs.clk.Now()
		olog, entries, err := loadOpLog(fs)
		if err != nil {
			return nil, nil, fmt.Errorf("splitfs recovery: %w", err)
		}
		if olog != nil {
			if err := fs.replayEntries(entries, report); err != nil {
				return nil, nil, err
			}
			olog.reset()
			fs.olog = olog
		}
		report.ReplayNs = fs.clk.Now() - start
	}
	// Continue the operation sequence past every watermark ever issued,
	// so stale inode watermarks can never mask future entries.
	if wm := kfs.MaxUserWatermark(); wm > fs.opSeq {
		fs.opSeq = wm
	}
	if fs.olog == nil && fs.mode == Strict {
		var err error
		fs.olog, err = newOpLog(fs)
		if err != nil {
			return nil, nil, err
		}
	}
	// Old staging files from the crashed instance are obsolete (any live
	// data was replayed above); remove them and build a fresh pool.
	if ents, err := kfs.ReadDir(stagingDir); err == nil {
		for _, e := range ents {
			_ = kfs.Unlink(stagingDir + "/" + e.Name)
		}
	}
	var err error
	fs.staging, err = newStagingPool(fs)
	if err != nil {
		return nil, nil, err
	}
	// The fresh operation log and staging files (and the removal of the
	// crashed instance's staging files) must be durable before the
	// recovered instance accepts writes: a second crash would otherwise
	// find log entries pointing into staging files whose creation never
	// committed. This is also what makes recovery idempotent under
	// double crashes — the double-crash campaign sweeps RecoverFS itself.
	if err := kfs.CommitMeta(); err != nil {
		return nil, nil, err
	}
	fs.pipeline = newRelinkPipeline(fs, cfg.RelinkWorkers)
	return fs, report, nil
}

// replayEntries applies the operation log (§3.3 recovery: non-zero
// checksum-valid entries are replayed; replay is idempotent).
func (fs *FS) replayEntries(entries [][]byte, report *RecoveryReport) error {
	report.Entries = len(entries)
	for _, e := range entries {
		if len(e) == 0 {
			continue
		}
		switch e[0] {
		case opEntryWrite:
			if len(e) < 41 {
				return fmt.Errorf("splitfs recovery: short write entry (%d bytes)", len(e))
			}
			ino := uint64(binary.LittleEndian.Uint32(e[1:]))
			stagingIno := uint64(binary.LittleEndian.Uint32(e[5:]))
			fileOff := int64(binary.LittleEndian.Uint64(e[9:]))
			length := int64(binary.LittleEndian.Uint32(e[17:]))
			stagingOff := int64(binary.LittleEndian.Uint64(e[21:]))
			seq := binary.LittleEndian.Uint64(e[29:])
			dataSum := binary.LittleEndian.Uint32(e[37:])
			if seq > fs.opSeq {
				fs.opSeq = seq
			}
			applied, err := fs.replayWrite(ino, fileOff, length, stagingIno, stagingOff, seq, dataSum)
			if err != nil {
				return err
			}
			if applied {
				report.Replayed++
			} else {
				report.Skipped++
			}
		case opEntryMeta:
			// Metadata operations were journaled by K-Split; nothing to do.
		default:
			return fmt.Errorf("splitfs recovery: unknown log entry op %d", e[0])
		}
	}
	return nil
}

// replayWrite re-applies one staged write. An entry is live only when
// (a) its sequence number is above the target inode's relink watermark —
// the watermark commits atomically with each relink, so covered entries
// are already durable in the target — (b) its staging range is still
// allocated (punched ranges also mean a committed relink), and (c) the
// staged bytes match the entry's data checksum — entry and data share
// one fence, so an entry that survived a crash intact may point at torn
// data, and replaying it would materialize a half-written operation.
// Live entries are copied into the target; replay is idempotent.
func (fs *FS) replayWrite(ino uint64, fileOff, length int64, stagingIno uint64, stagingOff int64, seq uint64, dataSum uint32) (bool, error) {
	stagingPath, ok := fs.kfs.PathByIno(stagingIno)
	if !ok {
		return false, nil // staging file gone: entry predates a checkpoint
	}
	targetPath, ok := fs.kfs.PathByIno(ino)
	if !ok {
		return false, nil // target unlinked after the write was logged
	}
	if tf, err := fs.kfs.OpenFile(targetPath, vfs.O_RDONLY, 0); err == nil {
		wm := tf.(*ext4dax.File).UserWatermark()
		tf.Close()
		if seq <= wm {
			return false, nil // a committed relink already covers this entry
		}
	}
	sf, err := fs.kfs.OpenFile(stagingPath, vfs.O_RDONLY, 0)
	if err != nil {
		return false, err
	}
	defer sf.Close()
	skf := sf.(*ext4dax.File)
	if !skf.RangeAllocated(stagingOff, length) {
		return false, nil // relink committed before the crash
	}
	buf := make([]byte, length)
	if _, err := sf.ReadAt(buf, stagingOff); err != nil {
		return false, err
	}
	if stagedSum(buf) != dataSum {
		// The shared fence never completed: the entry line survived but
		// the staged data tore. The operation never completed, so it must
		// not be replayed (all-or-nothing).
		return false, nil
	}
	tf, err := fs.kfs.OpenFile(targetPath, vfs.O_RDWR, 0)
	if err != nil {
		return false, err
	}
	defer tf.Close()
	if _, err := tf.WriteAt(buf, fileOff); err != nil {
		return false, err
	}
	if err := tf.Sync(); err != nil {
		return false, err
	}
	return true, nil
}
