package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockChargeAccumulates(t *testing.T) {
	c := NewClock()
	c.Charge(CatPMData, 100)
	c.Charge(CatPMData, 50)
	c.Charge(CatFence, 25)
	if got := c.Now(); got != 175 {
		t.Fatalf("Now() = %d, want 175", got)
	}
	if got := c.Category(CatPMData); got != 150 {
		t.Fatalf("Category(CatPMData) = %d, want 150", got)
	}
	if got := c.Category(CatFence); got != 25 {
		t.Fatalf("Category(CatFence) = %d, want 25", got)
	}
}

func TestClockIgnoresNonPositive(t *testing.T) {
	c := NewClock()
	c.Charge(CatCPU, 0)
	c.Charge(CatCPU, -5)
	if c.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", c.Now())
	}
}

func TestClockSnapshotSub(t *testing.T) {
	c := NewClock()
	c.Charge(CatPMData, 40)
	before := c.Snapshot()
	c.Charge(CatPMData, 10)
	c.Charge(CatJournal, 30)
	d := c.Snapshot().Sub(before)
	if d.Total != 40 {
		t.Fatalf("delta total = %d, want 40", d.Total)
	}
	if d.DataTime() != 10 {
		t.Fatalf("delta data = %d, want 10", d.DataTime())
	}
	if d.Overhead() != 30 {
		t.Fatalf("delta overhead = %d, want 30", d.Overhead())
	}
}

func TestClockConcurrentCharges(t *testing.T) {
	c := NewClock()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Charge(CatCPU, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != goroutines*per {
		t.Fatalf("Now() = %d, want %d", got, goroutines*per)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Charge(CatAlloc, 99)
	c.Reset()
	if c.Now() != 0 || c.Category(CatAlloc) != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestCategoryString(t *testing.T) {
	if CatPMData.String() != "pm-data" {
		t.Fatalf("CatPMData = %q", CatPMData.String())
	}
	if Category(99).String() != "Category(99)" {
		t.Fatalf("unknown category = %q", Category(99).String())
	}
	if len(Categories()) != int(numCategories) {
		t.Fatalf("Categories() length = %d", len(Categories()))
	}
}

func TestBreakdownString(t *testing.T) {
	c := NewClock()
	c.Charge(CatPMData, 7)
	s := c.Snapshot().String()
	if s != "7ns [pm-data=7]" {
		t.Fatalf("String() = %q", s)
	}
}

func TestChargeBytes(t *testing.T) {
	cases := []struct {
		n    int
		ps   int64
		want int64
	}{
		{0, 100, 0},
		{-1, 100, 0},
		{1, 100, 1},  // rounds up
		{10, 100, 1}, // exactly 1ns
		{11, 100, 2}, // rounds up
		{4096, 144, 590},
		{64, 25, 2},
	}
	for _, tc := range cases {
		if got := ChargeBytes(tc.n, tc.ps); got != tc.want {
			t.Errorf("ChargeBytes(%d, %d) = %d, want %d", tc.n, tc.ps, got, tc.want)
		}
	}
}

func TestChargeBytesNeverFreeProperty(t *testing.T) {
	f := func(n uint16, ps uint8) bool {
		got := ChargeBytes(int(n), int64(ps))
		if n == 0 || ps == 0 {
			return got == (ChargeBytes(int(n), int64(ps)))
		}
		return got >= 1 && got >= int64(n)*int64(ps)/1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// §1: a 4 KB non-temporal write plus fence must cost ~671 ns.
	got := int64(PMWriteLatencyNs) + ChargeBytes(4096, PMWritePsPerByte) + FenceNs
	if got < 640 || got > 700 {
		t.Fatalf("4KB NT write+fence = %dns, want ~671ns", got)
	}
	// Table 2: store+flush+fence of one cache line must cost ~91 ns.
	sff := ChargeBytes(CacheLine, StorePsPerByte) + FlushLineNs + FenceNs
	if sff < 80 || sff > 100 {
		t.Fatalf("store+flush+fence = %dns, want ~91ns", sff)
	}
}
