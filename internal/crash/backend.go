package crash

import (
	"fmt"
	"strings"

	"splitfs/internal/ext4dax"
	"splitfs/internal/logfs"
	"splitfs/internal/nova"
	"splitfs/internal/obs"
	"splitfs/internal/pmem"
	"splitfs/internal/pmfs"
	"splitfs/internal/server"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/strata"
	"splitfs/internal/vfs"
)

// The backend registry: every file system in the repository, buildable
// on a fresh simulated device by kind name. The differential suite and
// the macrobenchmark matrix (internal/harness) both construct their
// backends here, so "all nine backends" means the same nine everywhere.

// BackendKinds returns the nine backend kind names, reference
// (ext4-dax) first. The returned slice is fresh; callers may mutate it.
func BackendKinds() []string {
	return []string{
		"ext4-dax",
		"splitfs-posix", "splitfs-sync", "splitfs-strict",
		"nova-strict", "nova-relaxed", "pmfs", "strata", "logfs",
	}
}

// ServedPrefix marks a wrapper kind: "served:<kind>" builds <kind> and
// serves it through the internal/server session/RPC layer over the
// deterministic loopback transport, so any campaign or benchmark can
// run the same workload through the multi-tenant service instead of
// direct calls. Exactly one level of wrapping is allowed.
const ServedPrefix = "served:"

// ServedLeasePrefix is the served wrapper with the zero-copy data plane
// negotiated on: "served-lease:<kind>" serves <kind> through a session
// that leases mapping segments for its data path. Backends without the
// vfs.Mappable capability still build — every grant fails and the
// client stays on the copy path, which is itself a property the
// differential suite wants pinned.
const ServedLeasePrefix = "served-lease:"

// ServedBackendKinds returns the nine backends wrapped in the service
// layer, for matrices that compare served against direct execution.
func ServedBackendKinds() []string {
	kinds := BackendKinds()
	for i, k := range kinds {
		kinds[i] = ServedPrefix + k
	}
	return kinds
}

// ServedLeaseBackendKinds returns the nine backends served with leases
// negotiated, for matrices that pin the zero-copy data plane against
// direct execution.
func ServedLeaseBackendKinds() []string {
	kinds := BackendKinds()
	for i, k := range kinds {
		kinds[i] = ServedLeasePrefix + k
	}
	return kinds
}

// IsBackendKind reports whether kind names a registered backend,
// including the served: / served-lease: wrapper of one.
func IsBackendKind(kind string) bool {
	base := strings.TrimPrefix(strings.TrimPrefix(kind, ServedLeasePrefix), ServedPrefix)
	for _, k := range BackendKinds() {
		if k == base {
			return true
		}
	}
	return false
}

// BackendSpec sizes one backend instance. Zero fields take the
// differential suite's defaults (32 MB device, small logs), which suit
// short traces; the macro matrix passes larger values per scale level.
type BackendSpec struct {
	DevBytes  int64 // device capacity (default 32 MB)
	MaxInodes int64 // ext4-dax inode table (default 512)

	// splitfs (U-Split) sizing.
	StagingFiles     int
	StagingFileBytes int64
	OpLogBytes       int64

	// log-structured engines (nova/pmfs/logfs shared area, strata).
	LogBytes          int64
	SnapshotSlotBytes int64
	PrivateLogBytes   int64 // strata per-process log
}

func (s *BackendSpec) fill() {
	if s.DevBytes == 0 {
		s.DevBytes = defaultDevBytes
	}
	if s.MaxInodes == 0 {
		s.MaxInodes = 512
	}
	if s.StagingFiles == 0 {
		s.StagingFiles = 4
	}
	if s.StagingFileBytes == 0 {
		s.StagingFileBytes = 1 << 20
	}
	if s.OpLogBytes == 0 {
		s.OpLogBytes = 256 << 10
	}
	if s.LogBytes == 0 {
		s.LogBytes = 4 << 20
	}
	if s.SnapshotSlotBytes == 0 {
		s.SnapshotSlotBytes = 1 << 20
	}
	if s.PrivateLogBytes == 0 {
		s.PrivateLogBytes = 2 << 20
	}
}

// Backend is one constructed file system with its device and clock, so
// callers can read simulated time and device counters alongside the
// vfs surface.
type Backend struct {
	Kind  string
	Clock *sim.Clock
	Dev   *pmem.Device
	FS    vfs.FileSystem
	// Direct is the unwrapped file system when FS is a served: client
	// (counters like journal commits live on the backend itself, not on
	// the RPC proxy); nil for direct kinds.
	Direct vfs.FileSystem
	// Server is the service instance behind a served: kind, nil
	// otherwise.
	Server *server.Server
}

// RegisterObs exports the backend's whole stack into an obs registry:
// the device's per-source counters, the file system's own stats (for
// the kinds that export them), and — for served kinds — the server's
// wire/op gauges. One call instruments everything the observability
// bench cells snapshot.
func (b *Backend) RegisterObs(r *obs.Registry) {
	if b.Dev != nil {
		b.Dev.RegisterObs(r)
	}
	fs := b.FS
	if b.Direct != nil {
		fs = b.Direct
	}
	switch t := fs.(type) {
	case *splitfs.FS:
		t.RegisterObs(r)
	case *ext4dax.FS:
		t.RegisterObs(r)
	}
	if b.Server != nil {
		b.Server.RegisterObs(r)
	}
}

// NewBackend builds one backend instance of the given kind on a fresh
// device sized by spec. A "served:<kind>" name builds <kind> and routes
// every operation through an internal/server session on the
// deterministic loopback transport.
func NewBackend(kind string, spec BackendSpec) (*Backend, error) {
	leases := false
	base, served := strings.CutPrefix(kind, ServedLeasePrefix)
	if served {
		leases = true
	} else {
		base, served = strings.CutPrefix(kind, ServedPrefix)
	}
	if served {
		if strings.HasPrefix(base, ServedPrefix) || strings.HasPrefix(base, ServedLeasePrefix) {
			return nil, fmt.Errorf("crash: nested served backend %q", kind)
		}
		b, err := NewBackend(base, spec)
		if err != nil {
			return nil, err
		}
		// Op cost and fence feeds come from the simulated clock and
		// device, so every served metric snapshot — histograms included
		// — is an exact function of the workload (pinnable, diffable).
		srv := server.New(b.FS, server.Config{
			OpClock:  b.Clock.Now,
			OpFences: b.Dev.FenceCount,
		})
		client, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/", EnableLeases: leases})
		if err != nil {
			return nil, err
		}
		b.Kind, b.Direct, b.Server, b.FS = kind, b.FS, srv, client
		return b, nil
	}
	spec.fill()
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: spec.DevBytes, Clock: clk})
	b := &Backend{Kind: kind, Clock: clk, Dev: dev}
	lcfg := logfs.Config{LogBytes: spec.LogBytes, SnapshotSlotBytes: spec.SnapshotSlotBytes}
	switch kind {
	case "ext4-dax":
		fs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: spec.MaxInodes})
		if err != nil {
			return nil, err
		}
		b.FS = fs
	case "splitfs-posix", "splitfs-sync", "splitfs-strict":
		kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: spec.MaxInodes})
		if err != nil {
			return nil, err
		}
		mode := splitfs.POSIX
		switch kind {
		case "splitfs-sync":
			mode = splitfs.Sync
		case "splitfs-strict":
			mode = splitfs.Strict
		}
		fs, err := splitfs.New(kfs, splitfs.Config{Mode: mode,
			StagingFiles:     spec.StagingFiles,
			StagingFileBytes: spec.StagingFileBytes,
			OpLogBytes:       spec.OpLogBytes})
		if err != nil {
			return nil, err
		}
		b.FS = fs
	case "nova-strict":
		b.FS = nova.New(dev, nova.Strict, lcfg)
	case "nova-relaxed":
		b.FS = nova.New(dev, nova.Relaxed, lcfg)
	case "pmfs":
		b.FS = pmfs.New(dev, lcfg)
	case "strata":
		b.FS = strata.New(dev, strata.Config{PrivateLogBytes: spec.PrivateLogBytes, Shared: lcfg})
	case "logfs":
		b.FS = logfs.New(dev, logfs.Profile{Name: "logfs"}, lcfg)
	default:
		return nil, fmt.Errorf("crash: unknown backend kind %q", kind)
	}
	return b, nil
}
