package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"splitfs/internal/crash"
	"splitfs/internal/server"
	"splitfs/internal/vfs"
)

// newBackend builds a direct backend for the server to wrap.
func newBackend(t *testing.T, kind string) vfs.FileSystem {
	t.Helper()
	b, err := crash.NewBackend(kind, crash.BackendSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return b.FS
}

// pipeClient starts a served session over net.Pipe and returns the
// client plus the raw client-side conn (for abrupt-disconnect tests).
func pipeClient(t *testing.T, srv *server.Server, root string) (*server.Client, net.Conn) {
	t.Helper()
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	c, err := server.Dial(cs, root)
	if err != nil {
		t.Fatal(err)
	}
	return c, cs
}

func TestServedBasicOps(t *testing.T) {
	for _, transport := range []string{"loopback", "pipe"} {
		t.Run(transport, func(t *testing.T) {
			fs := newBackend(t, "splitfs-strict")
			srv := server.New(fs, server.Config{})
			var c *server.Client
			var err error
			if transport == "loopback" {
				c, err = server.NewLoopback(srv, "/")
			} else {
				var conn net.Conn
				c, conn = pipeClient(t, srv, "/")
				defer conn.Close()
			}
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			if c.Name() != "served:splitfs-strict" {
				t.Fatalf("Name = %q", c.Name())
			}
			if err := c.Mkdir("/d", 0755); err != nil {
				t.Fatal(err)
			}
			f, err := c.OpenFile("/d/a.txt", vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			// Positional read through the proxy.
			buf := make([]byte, 5)
			if n, err := f.ReadAt(buf, 6); err != nil || string(buf[:n]) != "world" {
				t.Fatalf("ReadAt = %q, %v", buf[:n], err)
			}
			// Handle offset lives server-side: Seek then Read.
			if pos, err := f.Seek(0, vfs.SeekSet); err != nil || pos != 0 {
				t.Fatalf("Seek = %d, %v", pos, err)
			}
			all := make([]byte, 11)
			if n, err := f.Read(all); err != nil || string(all[:n]) != "hello world" {
				t.Fatalf("Read = %q, %v", all[:n], err)
			}
			fi, err := f.Stat()
			if err != nil || fi.Size != 11 {
				t.Fatalf("Fstat = %+v, %v", fi, err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if fi, _ = f.Stat(); fi.Size != 5 {
				t.Fatalf("size after truncate = %d", fi.Size)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// Path-level ops: stat, readdir, rename, unlink, rmdir.
			if fi, err := c.Stat("/d"); err != nil || !fi.IsDir {
				t.Fatalf("Stat(/d) = %+v, %v", fi, err)
			}
			ents, err := c.ReadDir("/d")
			if err != nil || len(ents) != 1 || ents[0].Name != "a.txt" {
				t.Fatalf("ReadDir = %+v, %v", ents, err)
			}
			if err := c.Rename("/d/a.txt", "/d/b.txt"); err != nil {
				t.Fatal(err)
			}
			got, err := vfs.ReadFile(c, "/d/b.txt")
			if err != nil || string(got) != "hello" {
				t.Fatalf("ReadFile = %q, %v", got, err)
			}
			if err := c.Unlink("/d/b.txt"); err != nil {
				t.Fatal(err)
			}
			if err := c.Rmdir("/d"); err != nil {
				t.Fatal(err)
			}
			// Error fidelity across the wire.
			if _, err := c.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
				t.Fatalf("Stat(removed) = %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if srv.SessionCount() != 0 {
				t.Fatalf("%d sessions after client close", srv.SessionCount())
			}
		})
	}
}

func TestServedEmptyAndLargeFiles(t *testing.T) {
	fs := newBackend(t, "ext4-dax")
	srv := server.New(fs, server.Config{})
	c, err := server.NewLoopback(srv, "/")
	if err != nil {
		t.Fatal(err)
	}
	// Empty file: ReadFile must return 0 bytes, no error (clean EOF).
	if err := vfs.WriteFile(c, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(c, "/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty ReadFile = %d bytes, %v", len(got), err)
	}
	// A file larger than one wire chunk must round-trip via chunked
	// pread/pwrite loops.
	big := make([]byte, 700<<10) // > 2 chunks of 256 KiB
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := vfs.WriteFile(c, "/big", big); err != nil {
		t.Fatal(err)
	}
	got, err = vfs.ReadFile(c, "/big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big ReadFile: %d bytes, equal=%v, err=%v", len(got), bytes.Equal(got, big), err)
	}
	// Reading past EOF is io.EOF itself, the == comparable sentinel.
	f, err := vfs.Open(c, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 10), int64(len(big))); err != io.EOF {
		t.Fatalf("read past EOF = %v, want io.EOF", err)
	}
	f.Close()
}

func TestSessionRootConfinement(t *testing.T) {
	fs := newBackend(t, "ext4-dax")
	srv := server.New(fs, server.Config{})
	root, err := server.NewLoopback(srv, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/t1", 0755); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/t2", 0755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(root, "/t2/secret", []byte("other tenant")); err != nil {
		t.Fatal(err)
	}

	c, err := server.NewLoopback(srv, "/t1")
	if err != nil {
		t.Fatal(err)
	}
	// ".." walks clamp at the session root instead of escaping it.
	for _, p := range []string{"/../t2/secret", "../t2/secret", "/a/../../t2/secret", "/../../../../t2/secret"} {
		if _, err := vfs.ReadFile(c, p); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("escape via %q = %v, want ErrNotExist", p, err)
		}
	}
	// The clamped path lands inside the subtree.
	if err := vfs.WriteFile(c, "/../escaped", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/t1/escaped"); err != nil {
		t.Fatalf("clamped write did not land in subtree: %v", err)
	}
	if _, err := root.Stat("/escaped"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("write escaped the session root: %v", err)
	}
	// Session-relative listing is subtree-relative.
	ents, err := c.ReadDir("/")
	if err != nil || len(ents) != 1 || ents[0].Name != "escaped" {
		t.Fatalf("ReadDir(/) in subtree = %+v, %v", ents, err)
	}
	// Attaching to a missing or non-directory root fails.
	if _, err := server.NewLoopback(srv, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("attach to missing root = %v", err)
	}
	if _, err := server.NewLoopback(srv, "/t2/secret"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("attach to file = %v", err)
	}
}

func TestDisconnectMidOperationTeardown(t *testing.T) {
	fs := newBackend(t, "splitfs-strict")
	srv := server.New(fs, server.Config{Workers: 2})
	defer srv.Close()
	c, rawConn := pipeClient(t, srv, "/")

	// Open a pile of handles, some dup'd onto the same file, then rip
	// the connection out mid-stream without closing anything.
	for i := 0; i < 10; i++ {
		if _, err := c.OpenFile(fmt.Sprintf("/f%d", i), vfs.O_RDWR|vfs.O_CREATE, 0644); err != nil {
			t.Fatal(err)
		}
	}
	if srv.OpenHandles() != 10 {
		t.Fatalf("open handles = %d, want 10", srv.OpenHandles())
	}
	// Issue a write and kill the conn immediately: teardown must not
	// race the in-flight operation (the worker finishes it first).
	f, err := c.OpenFile("/busy", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	go f.Write(make([]byte, 64<<10)) // may or may not complete
	rawConn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 0 || srv.OpenHandles() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("teardown incomplete: %d sessions, %d handles",
				srv.SessionCount(), srv.OpenHandles())
		}
		time.Sleep(time.Millisecond)
	}
	// The backend is still fully usable after the abrupt teardown.
	c2, conn2 := pipeClient(t, srv, "/")
	defer conn2.Close()
	if err := vfs.WriteFile(c2, "/after", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedRequests(t *testing.T) {
	fs := newBackend(t, "ext4-dax")
	srv := server.New(fs, server.Config{Workers: 4})
	defer srv.Close()
	c, conn := pipeClient(t, srv, "/")
	defer conn.Close()

	// Many goroutines pipeline requests onto one session; request IDs
	// demultiplex the replies, per-session FIFO keeps the server sane.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := fmt.Sprintf("/p%02d", g)
			if err := vfs.WriteFile(c, path, []byte(path)); err != nil {
				errs <- fmt.Errorf("%s: %w", path, err)
				return
			}
			got, err := vfs.ReadFile(c, path)
			if err != nil || string(got) != path {
				errs <- fmt.Errorf("%s readback = %q, %v", path, got, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnixSocketTransport(t *testing.T) {
	fs := newBackend(t, "splitfs-posix")
	srv := server.New(fs, server.Config{})
	sock := t.TempDir() + "/splitfsd.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Skipf("unix sockets unavailable: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		ln.Close()
	}()

	c, err := server.DialNet("unix", sock, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/sock", []byte("over the socket")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(c, "/sock")
	if err != nil || string(got) != "over the socket" {
		t.Fatalf("socket readback = %q, %v", got, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncAllThroughService exercises the group-sync RPC on a backend
// with its own SyncAll (splitfs: one group-committed batch) and on one
// without (per-handle degradation).
func TestSyncAllThroughService(t *testing.T) {
	for _, kind := range []string{"splitfs-strict", "nova-strict"} {
		t.Run(kind, func(t *testing.T) {
			fs := newBackend(t, kind)
			srv := server.New(fs, server.Config{})
			c, err := server.NewLoopback(srv, "/")
			if err != nil {
				t.Fatal(err)
			}
			var files []vfs.File
			for i := 0; i < 4; i++ {
				f, err := c.OpenFile(fmt.Sprintf("/s%d", i), vfs.O_RDWR|vfs.O_CREATE, 0644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("staged data")); err != nil {
					t.Fatal(err)
				}
				files = append(files, f)
			}
			if err := c.SyncAll(); err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
