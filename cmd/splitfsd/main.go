// Command splitfsd serves a simulated PM file system to many client
// processes over a unix socket — the repository's equivalent of the
// paper's multi-process U-Split deployment (§3), built on the
// internal/server session/RPC layer. Each connection is one confined
// session: the client's first frame names a subtree root, and every
// path it sends resolves inside that subtree.
//
// Usage:
//
//	splitfsd -socket /tmp/splitfs.sock -backend splitfs-strict
//	splitfsd -backend nova-relaxed -dev-mb 256 -workers 8
//	splitfsd -mkdirs /tenant0,/tenant1    # pre-create session roots
//	splitfsd -ctl-socket /tmp/splitfs.ctl # control/introspection socket
//
// -ctl-socket binds the observability plane's control surface on a
// second unix socket, kept separate from the data plane so a wedged
// daemon can still be inspected: one command line per connection —
// "stats", "sessions", "trace <id>", "pprof cpu [sec]", "pprof heap"
// (see internal/server ctl.go; splitfs-shell -ctl speaks it).
//
// Any of the nine backend kinds (crashcheck's registry) is servable.
// The daemon owns the device: all state is in memory and vanishes on
// exit, so splitfsd is a serving harness, not a persistence daemon.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"splitfs/internal/crash"
	"splitfs/internal/server"
)

func main() {
	socket := flag.String("socket", "/tmp/splitfsd.sock", "unix socket path to listen on")
	ctlSocket := flag.String("ctl-socket", "", "unix socket path for the control surface (empty = disabled)")
	backend := flag.String("backend", "splitfs-strict",
		fmt.Sprintf("backend kind to serve (one of %v)", crash.BackendKinds()))
	devMB := flag.Int64("dev-mb", 128, "simulated PM device size in MB")
	workers := flag.Int("workers", 0, "dispatch pool size (0 = GOMAXPROCS)")
	mkdirs := flag.String("mkdirs", "", "comma-separated directories to pre-create (session roots)")
	flag.Parse()

	if !crash.IsBackendKind(*backend) || strings.HasPrefix(*backend, crash.ServedPrefix) {
		fmt.Fprintf(os.Stderr, "splitfsd: unknown backend %q (have %v)\n", *backend, crash.BackendKinds())
		os.Exit(2)
	}
	b, err := crash.NewBackend(*backend, crash.BackendSpec{DevBytes: *devMB << 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitfsd: %v\n", err)
		os.Exit(1)
	}
	for _, d := range strings.Split(*mkdirs, ",") {
		if d = strings.TrimSpace(d); d != "" {
			if err := b.FS.Mkdir(d, 0755); err != nil {
				fmt.Fprintf(os.Stderr, "splitfsd: mkdir %s: %v\n", d, err)
				os.Exit(1)
			}
		}
	}

	os.Remove(*socket) // a stale socket from a dead daemon
	ln, err := net.Listen("unix", *socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitfsd: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(b.FS, server.Config{
		Workers: *workers,
		// A live daemon is outside the deterministic contract, so op
		// cost feeds from the wall clock; fence deltas still come from
		// the simulated device.
		OpClock:  func() int64 { return time.Now().UnixNano() },
		OpFences: b.Dev.FenceCount,
	})
	var ctlLn net.Listener
	if *ctlSocket != "" {
		os.Remove(*ctlSocket)
		ctlLn, err = net.Listen("unix", *ctlSocket)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitfsd: ctl listen: %v\n", err)
			os.Exit(1)
		}
		go srv.ServeCtl(ctlLn)
		fmt.Printf("splitfsd: control surface on %s\n", *ctlSocket)
	}
	fmt.Printf("splitfsd: serving %s (%d MB device) on %s\n", b.FS.Name(), *devMB, *socket)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("splitfsd: shutting down")
		srv.Close()
		ln.Close()
		os.Remove(*socket)
		if ctlLn != nil {
			ctlLn.Close()
			os.Remove(*ctlSocket)
		}
	}()
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "splitfsd: serve: %v\n", err)
		os.Exit(1)
	}
}
