package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"splitfs/internal/vfs"
)

// transport is how a Client reaches a server: either the deterministic
// in-process loopback or a framed byte stream.
type transport interface {
	// call issues one request and returns the matching reply frame.
	call(typ uint8, payload []byte) (uint8, []byte, error)
	close() error
}

// ClientConfig configures a session. The zero value matches the
// original positional constructors: whole-tree root, default chunk
// size, no leases.
type ClientConfig struct {
	// Root confines the session to a server subtree ("" or "/" = the
	// whole tree).
	Root string

	// ChunkBytes bounds one data frame on the copy path (default 256
	// KiB, clamped to the wire payload limit).
	ChunkBytes int

	// EnableLeases requests the zero-copy data plane in the attach
	// handshake. The session uses it only if the server agrees (feature
	// negotiation); on a resumable session leases are read-only, since
	// leased writes bypass the replay log.
	EnableLeases bool
}

func (cfg *ClientConfig) fill() {
	if cfg.Root == "" {
		cfg.Root = "/"
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = chunkBytes
	}
	if cfg.ChunkBytes > maxPayload-64 {
		cfg.ChunkBytes = maxPayload - 64
	}
}

// Client is a connected session implementing vfs.FileSystem, so every
// workload in the repository runs unmodified through the service.
type Client struct {
	t           transport
	fsName      string
	features    uint32 // agreed set from the attach handshake
	chunk       int
	leaseWrites bool // leased writes allowed (non-resumable sessions)
	stats       clientStats
}

// clientStats counts the client-side data plane.
type clientStats struct {
	leaseGrants      atomic.Int64
	leaseRevocations atomic.Int64 // Trevoke pushes observed
	leaseFallbacks   atomic.Int64 // leased attempts retired to the copy path
	leasedReadBytes  atomic.Int64
	leasedWriteBytes atomic.Int64
	wireReadBytes    atomic.Int64 // data payload bytes over Rread/Rpread
	wireWriteBytes   atomic.Int64 // data payload bytes over Twrite/Tpwrite
}

// ClientStats is a snapshot of the client's data-plane counters: how
// many bytes moved through leased mappings (zero-copy) versus through
// the chunked wire codec, and how the lease protocol behaved.
type ClientStats struct {
	LeaseGrants      int64
	LeaseRevocations int64
	LeaseFallbacks   int64
	LeasedReadBytes  int64
	LeasedWriteBytes int64
	WireReadBytes    int64
	WireWriteBytes   int64
}

// Stats snapshots the data-plane counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		LeaseGrants:      c.stats.leaseGrants.Load(),
		LeaseRevocations: c.stats.leaseRevocations.Load(),
		LeaseFallbacks:   c.stats.leaseFallbacks.Load(),
		LeasedReadBytes:  c.stats.leasedReadBytes.Load(),
		LeasedWriteBytes: c.stats.leasedWriteBytes.Load(),
		WireReadBytes:    c.stats.wireReadBytes.Load(),
		WireWriteBytes:   c.stats.wireWriteBytes.Load(),
	}
}

// leasesOn reports whether the negotiated session may use leases.
func (c *Client) leasesOn() bool { return c.features&featLeases != 0 }

// File is a served file handle. All state (offset included) lives
// server-side; File is a thin proxy, so semantics — O_APPEND writes,
// shared-offset dup behavior, EOF — are exactly the backend's own.
// When the session negotiated leases, the proxy additionally holds the
// handle's lease state (see lease.go and leasedReadAt below).
type File struct {
	c      *Client
	handle uint64
	path   string
	flag   int // open flags, for client-side readable/writable gating

	leaseMu     sync.Mutex
	lease       *clientLease
	leaseBroken bool // grant refused: this handle stays on the copy path
}

// clientLease is the client's view of a granted segment: the extent
// table and epoch it will validate every zero-copy operation against.
type clientLease struct {
	seg     *leaseSegment
	epoch   uint64
	size    int64
	extents []vfs.Extent
}

// ShortIOError reports a chunked read or write whose transport failed
// partway: Acked bytes completed (their replies arrived) before the
// chunk of InFlight bytes went unanswered. Without the counts a caller
// would read a mid-transfer disconnect as "nothing happened", when in
// fact the server may hold every acked byte — and may even have applied
// the in-flight chunk whose reply was lost. Unwrap exposes the
// transport error, so errors.Is against the underlying failure holds.
type ShortIOError struct {
	Op       string // "read" or "write"
	Path     string
	Acked    int // bytes confirmed by replies
	InFlight int // bytes of the chunk whose reply never arrived
	Err      error
}

func (e *ShortIOError) Error() string {
	return fmt.Sprintf("server: short %s on %s: %d bytes acked, %d in flight: %v",
		e.Op, e.Path, e.Acked, e.InFlight, e.Err)
}

func (e *ShortIOError) Unwrap() error { return e.Err }

// call checks the request encoder, unwraps Rerror replies, and checks
// the reply type. e may be nil for bodyless requests.
func (c *Client) call(typ uint8, want uint8, e *enc) ([]byte, error) {
	var payload []byte
	if e != nil {
		if e.err != nil {
			return nil, e.err
		}
		payload = e.b
	}
	rtyp, rp, err := c.t.call(typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp == rError {
		return nil, decodeError(rp)
	}
	if rtyp != want {
		return nil, fmt.Errorf("%w: %s reply to %s", errUnexpectedReply, msgName(rtyp), msgName(typ))
	}
	return rp, nil
}

// Name identifies the stack: "served:" + the backend's own name.
func (c *Client) Name() string { return "served:" + c.fsName }

// OpenFile opens path (relative to the session root) on the server and
// returns a proxy handle.
func (c *Client) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	var e enc
	e.u32(uint32(flag))
	e.u32(perm)
	e.str(path)
	rp, err := c.call(tOpen, rOpen, &e)
	if err != nil {
		return nil, err
	}
	d := dec{b: rp}
	h := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	return &File{c: c, handle: h, path: path, flag: flag}, nil
}

func (c *Client) pathOp(typ, want uint8, path string) error {
	var e enc
	e.str(path)
	_, err := c.call(typ, want, &e)
	return err
}

// Mkdir implements vfs.FileSystem.
func (c *Client) Mkdir(path string, perm uint32) error {
	var e enc
	e.u32(perm)
	e.str(path)
	_, err := c.call(tMkdir, rMkdir, &e)
	return err
}

// Unlink implements vfs.FileSystem.
func (c *Client) Unlink(path string) error { return c.pathOp(tUnlink, rUnlink, path) }

// Rmdir implements vfs.FileSystem.
func (c *Client) Rmdir(path string) error { return c.pathOp(tRmdir, rRmdir, path) }

// Rename implements vfs.FileSystem.
func (c *Client) Rename(oldPath, newPath string) error {
	var e enc
	e.str(oldPath)
	e.str(newPath)
	_, err := c.call(tRename, rRename, &e)
	return err
}

// Stat implements vfs.FileSystem.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var e enc
	e.str(path)
	rp, err := c.call(tStat, rStat, &e)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	d := dec{b: rp}
	fi := d.fileInfo()
	return fi, d.err
}

// ReadDir implements vfs.FileSystem.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var e enc
	e.str(path)
	rp, err := c.call(tReadDir, rReadDir, &e)
	if err != nil {
		return nil, err
	}
	d := dec{b: rp}
	n := int(d.u32())
	ents := make([]vfs.DirEntry, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		de := vfs.DirEntry{Name: d.str(), Ino: d.u64()}
		de.IsDir = d.u8() == 1
		ents = append(ents, de)
	}
	if d.err != nil {
		return nil, d.err
	}
	return ents, nil
}

// SyncAll asks the server for a group sync: the backend's own SyncAll
// when it has one (splitfs's group-committed multi-file drain), else a
// per-handle sync of this session's open files in path order.
func (c *Client) SyncAll() error {
	_, err := c.call(tSyncAll, rSyncAll, nil)
	return err
}

// Close detaches the session (the server closes any handles left open)
// and releases the transport.
func (c *Client) Close() error {
	_, derr := c.call(tDetach, rDetach, nil)
	cerr := c.t.close()
	if derr != nil {
		return derr
	}
	return cerr
}

// ---------------------------------------------------------------------
// File proxy.

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

func (f *File) handleOp(typ, want uint8) error {
	var e enc
	e.u64(f.handle)
	_, err := f.c.call(typ, want, &e)
	return err
}

// Read reads at the server-side handle offset. The offset lives on the
// server, so this always takes the wire; leased reads are positional.
func (f *File) Read(p []byte) (int, error) { return f.readLoop(tRead, rRead, p, -1) }

// ReadAt is positional (pread). With a negotiated lease it is satisfied
// by loads straight through the mapped extents — zero wire data bytes —
// falling back to the copy path when the mapping is stale, revoked, or
// does not cover the range.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if n, ok := f.leasedReadAt(p, off); ok {
		return n, nil
	}
	return f.readLoop(tPread, rPread, p, off)
}

// readLoop chunks a read through bounded frames. off < 0 selects the
// handle-offset variant; EOF after at least one byte reads as a short
// read (the io contract every backend here follows).
func (f *File) readLoop(typ, want uint8, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > f.c.chunk {
			n = f.c.chunk
		}
		var e enc
		e.u64(f.handle)
		if off >= 0 {
			e.i64(off + int64(total))
		}
		e.u32(uint32(n))
		rp, err := f.c.call(typ, want, &e)
		if err != nil {
			if err == io.EOF && total > 0 {
				return total, nil
			}
			if errors.Is(err, errConnLost) {
				return total, &ShortIOError{Op: "read", Path: f.path, Acked: total, InFlight: n, Err: err}
			}
			return total, err
		}
		d := dec{b: rp}
		data := d.bytes()
		if d.err != nil {
			return total, d.err
		}
		copy(p[total:], data)
		total += len(data)
		f.c.stats.wireReadBytes.Add(int64(len(data)))
		if len(data) < n {
			break // the backend clamped at EOF
		}
	}
	return total, nil
}

// Write writes at the server-side handle offset (EOF under O_APPEND).
// With a writable lease the bytes are stored through the mapped file
// directly (the paper's staged append through the process mapping);
// otherwise they take the chunked wire codec.
func (f *File) Write(p []byte) (int, error) {
	if n, err, ok := f.leasedWrite(p, -1); ok {
		return n, err
	}
	return f.writeLoop(tWrite, rWrite, p, -1)
}

// WriteAt is positional (pwrite).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if n, err, ok := f.leasedWrite(p, off); ok {
		return n, err
	}
	return f.writeLoop(tPwrite, rPwrite, p, off)
}

func (f *File) writeLoop(typ, want uint8, p []byte, off int64) (int, error) {
	total := 0
	for {
		n := len(p) - total
		if n > f.c.chunk {
			n = f.c.chunk
		}
		var e enc
		e.u64(f.handle)
		if off >= 0 {
			e.i64(off + int64(total))
		}
		e.bytes(p[total : total+n])
		rp, err := f.c.call(typ, want, &e)
		if err != nil {
			if errors.Is(err, errConnLost) {
				return total, &ShortIOError{Op: "write", Path: f.path, Acked: total, InFlight: n, Err: err}
			}
			return total, err
		}
		d := dec{b: rp}
		got := int(d.u32())
		if d.err != nil {
			return total, d.err
		}
		total += got
		f.c.stats.wireWriteBytes.Add(int64(got))
		if got < n || total >= len(p) {
			return total, nil
		}
	}
}

// ---------------------------------------------------------------------
// Client side of the zero-copy data plane. The File proxy holds at most
// one lease; it is granted lazily on the first eligible data operation
// and dropped on any validation failure, after which one re-grant is
// attempted before the operation retires to the copy path.

// leasedReadAt tries to satisfy a positional read through the handle's
// lease. ok=false means the caller must take the wire.
func (f *File) leasedReadAt(p []byte, off int64) (int, bool) {
	if !f.c.leasesOn() || !vfs.Readable(f.flag) || len(p) == 0 {
		return 0, false
	}
	f.leaseMu.Lock()
	defer f.leaseMu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		L := f.lease
		if L == nil {
			if L = f.grantLease(); L == nil {
				return 0, false
			}
			f.lease = L
		}
		if n, ok := f.tryLeasedRead(L, p, off); ok {
			f.c.stats.leasedReadBytes.Add(int64(n))
			return n, true
		}
		// Stale epoch, revoked, or the mapping does not cover the range:
		// drop the lease and re-grant once against the current mapping.
		f.lease = nil
	}
	f.c.stats.leaseFallbacks.Add(1)
	return 0, false
}

// tryLeasedRead is the seqlock read: validate, load through the
// extents, validate again. If the epoch moved during the loads a
// remapping may have recycled the device bytes mid-read, so the data
// is discarded and the caller falls back.
func (f *File) tryLeasedRead(L *clientLease, p []byte, off int64) (int, bool) {
	end := off + int64(len(p))
	if end > L.size {
		// EOF or grown-past-grant: the wire path owns short reads.
		return 0, false
	}
	seg := L.seg
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	if seg.revoked.Load() || seg.m.MapEpoch() != L.epoch {
		return 0, false
	}
	cur := off
	for _, x := range L.extents {
		if cur >= end {
			break
		}
		if x.FileOff > cur {
			return 0, false // hole in the mapping
		}
		if xe := x.FileOff + x.Length; xe > cur {
			span := end
			if xe < span {
				span = xe
			}
			seg.m.LoadMapped(p[cur-off:span-off], x.DevOff+(cur-x.FileOff))
			cur = span
		}
	}
	if cur < end {
		return 0, false
	}
	if seg.revoked.Load() || seg.m.MapEpoch() != L.epoch {
		return 0, false // remapped mid-read: bytes may be stale, discard
	}
	return len(p), true
}

// leasedWrite tries to store p through the leased mapping. off < 0 is
// the handle-offset variant (O_APPEND included — the leased file IS the
// server-side handle, so offset state is shared either way). ok=false
// means the caller must take the wire. Disabled on resumable sessions:
// a leased write bypasses the replay log.
func (f *File) leasedWrite(p []byte, off int64) (int, error, bool) {
	if !f.c.leaseWrites || !f.c.leasesOn() || !vfs.Writable(f.flag) || len(p) == 0 {
		return 0, nil, false
	}
	f.leaseMu.Lock()
	defer f.leaseMu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		L := f.lease
		if L == nil {
			if L = f.grantLease(); L == nil {
				return 0, nil, false
			}
			f.lease = L
		}
		seg := L.seg
		seg.mu.RLock()
		if seg.revoked.Load() {
			// Revoked since the grant: drop it and re-grant once against
			// the current mapping (writes don't validate the epoch — they
			// go through the backend file, which owns its own remapping).
			seg.mu.RUnlock()
			f.lease = nil
			continue
		}
		var n int
		var err error
		if off < 0 {
			n, err = seg.file.Write(p)
		} else {
			n, err = seg.file.WriteAt(p, off)
		}
		seg.mu.RUnlock()
		f.c.stats.leasedWriteBytes.Add(int64(n))
		return n, err, true
	}
	f.c.stats.leaseFallbacks.Add(1)
	return 0, nil, false
}

// grantLease round-trips Tlease for this handle and resolves the
// granted segment. Any refusal — non-mappable backend, directory,
// transport trouble — pins the handle to the copy path for its
// lifetime; a fresh open starts fresh. Caller holds f.leaseMu.
func (f *File) grantLease() *clientLease {
	if f.leaseBroken {
		return nil
	}
	var e enc
	e.u64(f.handle)
	rp, err := f.c.call(tLease, rLease, &e)
	if err != nil {
		f.leaseBroken = true
		return nil
	}
	d := dec{b: rp}
	segID := d.u64()
	epoch := d.u64()
	size := d.i64()
	n := int(d.u32())
	exts := make([]vfs.Extent, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		exts = append(exts, vfs.Extent{FileOff: d.i64(), DevOff: d.i64(), Length: d.i64()})
	}
	if d.err != nil {
		f.leaseBroken = true
		return nil
	}
	seg := lookupSegment(segID)
	if seg == nil {
		// An out-of-process peer cannot map the segment namespace.
		f.leaseBroken = true
		return nil
	}
	f.c.stats.leaseGrants.Add(1)
	return &clientLease{seg: seg, epoch: epoch, size: size, extents: exts}
}

// dropLease forgets the client-side lease state (Close: the server
// revokes the segment itself on Tclose).
func (f *File) dropLease() {
	f.leaseMu.Lock()
	f.lease = nil
	f.leaseMu.Unlock()
}

// handleRevoke is the Trevoke push handler: count it and acknowledge
// asynchronously. The shared revoked flag has already invalidated the
// segment, so per-File state is cleaned up lazily on the next
// validation failure.
func (c *Client) handleRevoke(payload []byte) {
	d := dec{b: payload}
	segID := d.u64()
	if d.err != nil {
		return
	}
	c.stats.leaseRevocations.Add(1)
	go func() {
		var e enc
		e.u64(segID)
		_, _ = c.call(tRevokeAck, rRevokeAck, &e)
	}()
}

// Seek implements vfs.File (the offset lives server-side).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var e enc
	e.u64(f.handle)
	e.i64(offset)
	e.u8(uint8(whence))
	rp, err := f.c.call(tSeek, rSeek, &e)
	if err != nil {
		return 0, err
	}
	d := dec{b: rp}
	pos := d.i64()
	return pos, d.err
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	var e enc
	e.u64(f.handle)
	e.i64(size)
	_, err := f.c.call(tTruncate, rTruncate, &e)
	return err
}

// Sync implements vfs.File (fsync through the service).
func (f *File) Sync() error { return f.handleOp(tFsync, rFsync) }

// Close implements vfs.File. The server revokes any lease on the
// handle as part of Tclose; the client just forgets its view.
func (f *File) Close() error {
	f.dropLease()
	return f.handleOp(tClose, rClose)
}

// Stat implements vfs.File (fstat on the server-side handle, so it
// works on orphaned — unlinked-while-open — files too).
func (f *File) Stat() (vfs.FileInfo, error) {
	var e enc
	e.u64(f.handle)
	rp, err := f.c.call(tFstat, rFstat, &e)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	d := dec{b: rp}
	fi := d.fileInfo()
	return fi, d.err
}

// ---------------------------------------------------------------------
// Stream transport: frames over any io.ReadWriteCloser (unix socket,
// net.Pipe), with request-ID multiplexing so callers may pipeline.

type streamTransport struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader

	writeMu sync.Mutex // serializes request frames

	// onPush handles server-initiated frames (Trevoke, request id 0).
	// Set before the demux loop starts; never called concurrently with
	// itself (the demux loop is the only caller).
	onPush func(payload []byte)

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan frameResp
	dead    error
}

type frameResp struct {
	typ     uint8
	payload []byte
}

// Dial attaches a session over a connected stream, whole defaults.
//
// Deprecated: use DialConfig, which also negotiates protocol features.
func Dial(rwc io.ReadWriteCloser, root string) (*Client, error) {
	return DialConfig(rwc, ClientConfig{Root: root})
}

// DialConfig attaches a session over a connected stream. The attach
// handshake offers the configured feature set; the server echoes the
// agreed subset (an old server echoes nothing, which reads as zero —
// clean downgrade in both directions).
func DialConfig(rwc io.ReadWriteCloser, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	t := &streamTransport{
		rwc:     rwc,
		br:      bufio.NewReaderSize(rwc, 64<<10),
		pending: make(map[uint32]chan frameResp),
	}
	// Attach synchronously before the demux loop starts.
	var req uint32
	if cfg.EnableLeases {
		req = featLeases
	}
	var e enc
	e.str(cfg.Root)
	e.u8(0) // not resumable
	e.u32(req)
	if e.err != nil {
		rwc.Close()
		return nil, e.err
	}
	if err := writeFrame(rwc, tAttach, 0, e.b); err != nil {
		rwc.Close()
		return nil, err
	}
	rtyp, _, rp, err := readFrame(t.br)
	if err != nil {
		rwc.Close()
		return nil, fmt.Errorf("server: attach: %w", err)
	}
	if rtyp == rError {
		rwc.Close()
		return nil, decodeError(rp)
	}
	if rtyp != rAttach {
		rwc.Close()
		return nil, fmt.Errorf("%w: attach reply %s", errUnexpectedReply, msgName(rtyp))
	}
	d := dec{b: rp}
	name := d.str()
	d.u64() // session id (diagnostic)
	d.u64() // resume token (plain sessions never present it)
	var agreed uint32
	if d.err == nil && len(d.b) >= 4 {
		agreed = d.u32()
	}
	if d.err != nil {
		rwc.Close()
		return nil, d.err
	}
	c := &Client{t: t, fsName: name, features: agreed & req, chunk: cfg.ChunkBytes, leaseWrites: true}
	t.onPush = c.handleRevoke
	go t.readLoop()
	return c, nil
}

// DialNet connects to a network address (cmd tools use unix sockets).
//
// Deprecated: use DialNetConfig.
func DialNet(network, addr, root string) (*Client, error) {
	return DialNetConfig(network, addr, ClientConfig{Root: root})
}

// DialNetConfig connects to a network address and attaches with cfg.
func DialNetConfig(network, addr string, cfg ClientConfig) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return DialConfig(c, cfg)
}

// readLoop demultiplexes replies to their waiting callers. Frames with
// request id 0 are server-initiated pushes (Trevoke), routed to onPush.
func (t *streamTransport) readLoop() {
	for {
		typ, reqID, payload, err := readFrame(t.br)
		if err != nil {
			t.fail(err)
			return
		}
		if typ == tRevoke {
			if t.onPush != nil {
				t.onPush(payload)
			}
			continue
		}
		t.mu.Lock()
		ch, ok := t.pending[reqID]
		delete(t.pending, reqID)
		t.mu.Unlock()
		if ok {
			ch <- frameResp{typ: typ, payload: payload}
		}
	}
}

// fail poisons the transport: every outstanding and future call errors
// with an errConnLost chain, so callers (and the File proxies above)
// can classify the loss with errors.Is.
func (t *streamTransport) fail(err error) {
	t.mu.Lock()
	if t.dead == nil {
		t.dead = fmt.Errorf("%w: %w", errConnLost, err)
	}
	pending := t.pending
	t.pending = make(map[uint32]chan frameResp)
	t.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

func (t *streamTransport) call(typ uint8, payload []byte) (uint8, []byte, error) {
	ch := make(chan frameResp, 1)
	// ID assignment and the frame write happen under one critical
	// section (lock order writeMu then mu): if they were split, two
	// pipelined callers could assign IDs in one order and write frames
	// in the other, and the server — which executes a session FIFO in
	// arrival order — would run them in an order that contradicts the
	// IDs. Request IDs are the replay log's sequence numbers, so they
	// must agree with execution order.
	t.writeMu.Lock()
	t.mu.Lock()
	if t.dead != nil {
		err := t.dead
		t.mu.Unlock()
		t.writeMu.Unlock()
		return 0, nil, err
	}
	t.nextID++
	id := t.nextID
	t.pending[id] = ch
	t.mu.Unlock()
	err := writeFrame(t.rwc, typ, id, payload)
	t.writeMu.Unlock()
	if err != nil {
		// A partial frame is unrecoverable on a shared stream: poison the
		// transport (wrapping the cause) rather than hand back a raw error
		// that hides the connection's death from the next caller.
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
		t.fail(err)
		t.rwc.Close()
		t.mu.Lock()
		dead := t.dead
		t.mu.Unlock()
		return 0, nil, dead
	}
	resp, ok := <-ch
	if !ok {
		t.mu.Lock()
		err := t.dead
		t.mu.Unlock()
		return 0, nil, err
	}
	return resp.typ, resp.payload, nil
}

func (t *streamTransport) close() error {
	err := t.rwc.Close()
	t.fail(io.ErrClosedPipe)
	return err
}

// ---------------------------------------------------------------------
// Loopback transport: the deterministic in-memory pair. Each call is
// encoded, framed, dispatched, and decoded inline on the caller's
// goroutine — no channels, no goroutines — so a single-session served
// stack issues the exact backend-operation sequence a direct caller
// would, and the crash harness's persistence-event streams stay
// bit-identical. The wire and session layers are fully exercised; only
// the dispatcher is bypassed (FIFO ordering is trivially the caller's
// program order).

type loopbackTransport struct {
	s  *Session
	mu sync.Mutex // reqID + the one-frame "wire"
	id uint32
}

// NewLoopback attaches a deterministic in-process session to srv.
//
// Deprecated: use NewLoopbackConfig, which also negotiates features.
func NewLoopback(srv *Server, root string) (*Client, error) {
	return NewLoopbackConfig(srv, ClientConfig{Root: root})
}

// NewLoopbackConfig attaches a deterministic in-process session with
// cfg. Negotiation runs the same intersection the wire handshake does.
func NewLoopbackConfig(srv *Server, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	var req uint32
	if cfg.EnableLeases {
		req = featLeases
	}
	s, err := srv.attach(cfg.Root, nil, false, req)
	if err != nil {
		return nil, err
	}
	return &Client{
		t: &loopbackTransport{s: s}, fsName: srv.fs.Name(),
		features: s.features, chunk: cfg.ChunkBytes, leaseWrites: true,
	}, nil
}

func (t *loopbackTransport) call(typ uint8, payload []byte) (uint8, []byte, error) {
	// A detached session (Client.Close, Server.Close) must reject
	// further calls, like the stream transport's dead-connection check —
	// operating on it would insert handles no teardown will ever close.
	if t.s.detached() {
		return 0, nil, &RemoteError{Code: codeClosed, Msg: "server: session detached"}
	}
	t.mu.Lock()
	t.id++
	id := t.id
	t.mu.Unlock()
	// Round-trip through the real framing so the codec path is identical
	// to the stream transport's.
	var buf loopbackBuf
	if err := writeFrame(&buf, typ, id, payload); err != nil {
		return 0, nil, err
	}
	rtyp, rid, rp, err := readFrame(&buf)
	if err != nil {
		return 0, nil, err
	}
	rtyp, rid, rp = t.s.handle(rtyp, rid, rp)
	buf = loopbackBuf{}
	if err := writeFrame(&buf, rtyp, rid, rp); err != nil {
		return 0, nil, err
	}
	rtyp, _, rp, err = readFrame(&buf)
	if err != nil {
		return 0, nil, err
	}
	return rtyp, rp, nil
}

func (t *loopbackTransport) close() error {
	t.s.teardown()
	return nil
}

// loopbackBuf is a minimal in-memory byte pipe for one frame.
type loopbackBuf struct{ b []byte }

func (l *loopbackBuf) Write(p []byte) (int, error) {
	l.b = append(l.b, p...)
	return len(p), nil
}

func (l *loopbackBuf) Read(p []byte) (int, error) {
	if len(l.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, l.b)
	l.b = l.b[n:]
	return n, nil
}
