package crash

import (
	"testing"

	"splitfs/internal/splitfs"
)

// TestServedOpsDiscipline checks the generator invariants the served
// oracles depend on: workloads end on a SyncAll barrier, never reuse a
// name (create and rename targets are always fresh), keep every write a
// positional append at the tracked size, keep data single-chunk, and
// close before unlink.
func TestServedOpsDiscipline(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		ops := ServedOps(seed, 40)
		if len(ops) == 0 || ops[len(ops)-1].Kind != OpSyncAll {
			t.Fatalf("seed %d: workload does not end with OpSyncAll", seed)
		}
		used := map[string]bool{}
		sizes := map[string]int64{}
		for i, op := range ops {
			switch op.Kind {
			case OpCreate:
				if used[op.Path] {
					t.Fatalf("seed %d op %d: create reuses name %s", seed, i, op.Path)
				}
				used[op.Path] = true
				sizes[op.Path] = 0
			case OpWrite:
				if op.Off != sizes[op.Path] {
					t.Fatalf("seed %d op %d: write at %d, size is %d (not an append)",
						seed, i, op.Off, sizes[op.Path])
				}
				if len(op.Data) == 0 || len(op.Data) > 1800 {
					t.Fatalf("seed %d op %d: data length %d outside (0, 1800]",
						seed, i, len(op.Data))
				}
				if !used[op.Path] {
					used[op.Path] = true
				}
				sizes[op.Path] += int64(len(op.Data))
			case OpRename:
				if used[op.Path2] {
					t.Fatalf("seed %d op %d: rename reuses name %s", seed, i, op.Path2)
				}
				used[op.Path2] = true
				sizes[op.Path2] = sizes[op.Path]
				delete(sizes, op.Path)
			case OpUnlink:
				if !op.Close {
					t.Fatalf("seed %d op %d: unlink without Close", seed, i)
				}
				delete(sizes, op.Path)
			case OpMkdir:
				if used[op.Path] {
					t.Fatalf("seed %d op %d: mkdir reuses name %s", seed, i, op.Path)
				}
				used[op.Path] = true
			case OpSyncAll:
			default:
				t.Fatalf("seed %d op %d: unexpected kind %v in served workload",
					seed, i, op.Kind)
			}
		}
	}
}

// TestServedCrashSweep kills the daemon at sampled persistence events in
// every mode and expects every oracle — per-tenant crash-point guarantee,
// exactly-once replay, and post-resume final state — to hold.
func TestServedCrashSweep(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := ServedExplore(ServedExploreConfig{
				Mode: mode, Tenants: 2, OpsPerTenant: 10, Seed: 11, Sample: 8})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("event %d: %s", v.Event, v.Msg)
			}
			if res.Tested == 0 {
				t.Fatal("sweep tested no events")
			}
			if res.Tested-res.NotFired == 0 {
				t.Fatal("no tested event fired the crash")
			}
			t.Logf("window %v: %d tested, %d fired, %d runs",
				res.Window, res.Tested, res.Tested-res.NotFired, res.Runs)
		})
	}
}

// TestServedCrashWireFaults layers mid-frame client-side transport cuts
// on top of the daemon death, so tenants survive torn frames, warm
// re-attach with replay, then the crash, then cold resume (possibly torn
// again) — still violation-free.
func TestServedCrashWireFaults(t *testing.T) {
	res, err := ServedExplore(ServedExploreConfig{
		Mode: splitfs.Strict, Tenants: 2, OpsPerTenant: 10, Seed: 17,
		Sample: 6, WireFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("event %d: %s", v.Event, v.Msg)
	}
	if res.Tested-res.NotFired == 0 {
		t.Fatal("no tested event fired the crash")
	}
}

// TestServedCrashReconnects pins one mid-window daemon death and checks
// the mechanics the sweep relies on: the crash fires, replies are
// dropped at the torn generation, every tenant reconnects and finishes
// on the recovered generation, and the oracles stay green.
func TestServedCrashReconnects(t *testing.T) {
	record, err := RunServed(ServedCampaign{Mode: splitfs.Strict, Tenants: 3,
		OpsPerTenant: 12, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if record.Violation != "" {
		t.Fatalf("recording run violated: %s", record.Violation)
	}
	event := (record.BaselineEvents + record.TotalEvents) / 2
	res, err := RunServed(ServedCampaign{Mode: splitfs.Strict, Tenants: 3,
		OpsPerTenant: 12, Seed: 23, CrashAtEvent: event})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatalf("mid-window event %d did not fire", event)
	}
	if res.Violation != "" {
		t.Fatalf("violation at event %d: %s", event, res.Violation)
	}
	if len(res.AckedSys) != 3 {
		t.Fatalf("acked prefixes for %d tenants, want 3", len(res.AckedSys))
	}
	if res.Gen1.DroppedReplies == 0 {
		t.Error("generation 1 dropped no replies at the crash")
	}
	t.Logf("event %d: acked %v, gen1 %+v, gen2 %+v", event, res.AckedSys, res.Gen1, res.Gen2)
}

// TestServedCrashWithLeases runs the daemon-death sweep with the
// zero-copy data plane negotiated on every tenant session: leased-read
// probes keep leases genuinely outstanding across the kill, generation
// 1's teardown must revoke all of them (oracle inside RunServed), and
// every crash/replay/final-state oracle must still hold — the lease
// plane may not weaken any serving guarantee.
func TestServedCrashWithLeases(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Strict} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := ServedExplore(ServedExploreConfig{
				Mode: mode, Tenants: 2, OpsPerTenant: 10, Seed: 29,
				Sample: 6, Leases: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("event %d: %s", v.Event, v.Msg)
			}
			if res.Tested-res.NotFired == 0 {
				t.Fatal("no tested event fired the crash")
			}
		})
	}
}

// TestServedLeaseGrantsAcrossGenerations pins the lease mechanics of
// one mid-window daemon death: generation 1 actually granted leases
// (the probes are not vacuous), none survived its teardown, and the
// recovered generation grants fresh ones.
func TestServedLeaseGrantsAcrossGenerations(t *testing.T) {
	record, err := RunServed(ServedCampaign{Mode: splitfs.Strict, Tenants: 2,
		OpsPerTenant: 12, Seed: 31, Leases: true})
	if err != nil {
		t.Fatal(err)
	}
	if record.Violation != "" {
		t.Fatalf("recording run violated: %s", record.Violation)
	}
	if record.Gen1.LeaseGrants == 0 {
		t.Fatal("lease campaign granted no leases: the probes are vacuous")
	}
	event := (record.BaselineEvents + record.TotalEvents) / 2
	res, err := RunServed(ServedCampaign{Mode: splitfs.Strict, Tenants: 2,
		OpsPerTenant: 12, Seed: 31, Leases: true, CrashAtEvent: event})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatalf("mid-window event %d did not fire", event)
	}
	if res.Violation != "" {
		t.Fatalf("violation at event %d: %s", event, res.Violation)
	}
	if res.Gen1.LeaseGrants == 0 {
		t.Error("generation 1 granted no leases before the kill")
	}
	t.Logf("event %d: gen1 grants=%d revokes=%d, gen2 grants=%d revokes=%d",
		event, res.Gen1.LeaseGrants, res.Gen1.LeaseRevokes,
		res.Gen2.LeaseGrants, res.Gen2.LeaseRevokes)
}

// TestServedOracleDetectsViolations proves the served oracles are not
// vacuous: with every workload fence skipped (the pmem fault-injection
// hook), strict-mode daemon deaths must surface guarantee breaches.
func TestServedOracleDetectsViolations(t *testing.T) {
	res, err := ServedExplore(ServedExploreConfig{
		Mode: splitfs.Strict, Tenants: 2, OpsPerTenant: 10, Seed: 29, Sample: 24,
		SkipFence: func(seq int64) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("skipped fences produced no violation — the served oracle is vacuous")
	}
	t.Logf("%d violations in %d tested events; first: %s",
		len(res.Violations), res.Tested, res.Violations[0].Msg)
}

// TestServedMinimize shrinks a seeded-fault served campaign to a small
// reproducer and keeps a witness violation.
func TestServedMinimize(t *testing.T) {
	res, err := ServedMinimize(ServedExploreConfig{
		Mode: splitfs.Strict, Tenants: 2, OpsPerTenant: 6, Seed: 31, Sample: 12,
		SkipFence: func(seq int64) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ops := range res.TenantOps {
		total += len(ops)
	}
	if total > 8 {
		t.Fatalf("minimized to %d total ops across tenants, want <= 8", total)
	}
	if res.Violation.Msg == "" {
		t.Fatal("no witness violation")
	}
	t.Logf("minimized to %d ops in %d runs: %s", total, res.Runs, res.Violation.Msg)
}

// TestServedMinimizeRejectsHealthy mirrors the direct minimizer's
// contract: a violation-free campaign refuses to minimize.
func TestServedMinimizeRejectsHealthy(t *testing.T) {
	_, err := ServedMinimize(ServedExploreConfig{
		Mode: splitfs.Strict, Tenants: 2, OpsPerTenant: 5, Seed: 37, Sample: 6})
	if err == nil {
		t.Fatal("expected error for a non-violating served campaign")
	}
}
