// Package logfs is a log-structured PM file-system engine: all metadata
// lives in DRAM and persists through an append-only metalog; file data
// lives in PM blocks tracked by extents. The two kernel baselines of the
// SplitFS paper are instances of this engine with different persistence
// profiles:
//
//   - NOVA (package nova): per-operation log entry plus persistent tail
//     update (2 cache lines, 2 fences), copy-on-write data in strict mode,
//     in-place data in relaxed mode. Atomic + synchronous operations.
//   - PMFS (package pmfs): fine-grained single-fence journaling, in-place
//     synchronous data, no data atomicity.
//
// The engine checkpoints its full metadata state into a snapshot area
// when the log fills, then resets the log; recovery loads the snapshot
// and replays the log suffix.
package logfs

import (
	"fmt"
	"sync"

	"splitfs/internal/alloc"
	"splitfs/internal/metalog"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Profile parameterizes the engine per file system.
type Profile struct {
	// Name returned by vfs.FileSystem.Name.
	Name string
	// FenceMode of metadata log appends.
	FenceMode metalog.FenceMode
	// PerOpCPU is charged for composing each metadata log record.
	PerOpCPU int64
	// WritePathCPU / ReadPathCPU are charged per data operation.
	WritePathCPU int64
	ReadPathCPU  int64
	// COW makes data writes copy-on-write (new blocks, then a log entry
	// remaps them), giving atomic data operations.
	COW bool
	// SyncData fences data at the end of every write (synchronous
	// semantics).
	SyncData bool
	// KernelFS charges a trap per operation.
	KernelFS bool
}

// Config sizes the on-device regions.
type Config struct {
	// LogBytes is the metadata log region size (default 4 MB).
	LogBytes int64
	// SnapshotSlotBytes is the checkpoint slot size (default 1 MB).
	SnapshotSlotBytes int64
	// ReserveTail keeps the last bytes of the device out of the data
	// region (Strata places its private log there).
	ReserveTail int64
}

func (c *Config) fill() {
	if c.LogBytes == 0 {
		c.LogBytes = 4 << 20
	}
	if c.SnapshotSlotBytes == 0 {
		c.SnapshotSlotBytes = 1 << 20
	}
}

// fext is a logical→physical extent mapping.
type fext struct {
	logical int64
	phys    alloc.Extent
}

func (e fext) logicalEnd() int64 { return e.logical + e.phys.Len }

// inode is the DRAM representation of a file or directory.
type inode struct {
	ino      uint64
	isDir    bool
	nlink    uint32
	size     int64
	extents  []fext
	children map[string]*inode // directories only
}

// Stats counts engine activity.
type Stats struct {
	Traps       int64
	DataReads   int64
	DataWrites  int64
	MetaOps     int64
	LogAppends  int64
	Checkpoints int64
}

// FS is a mounted logfs instance.
type FS struct {
	prof Profile
	cfg  Config
	dev  *pmem.Device
	clk  *sim.Clock

	mu      sync.Mutex
	log     *metalog.Log
	snap    *metalog.Snapshot
	bmp     *alloc.Bitmap
	root    *inode
	inodes  map[uint64]*inode
	nextIno uint64
	stats   Stats
	dataOff int64
}

var _ vfs.FileSystem = (*FS)(nil)

// New formats a device region for the engine and mounts it.
func New(dev *pmem.Device, prof Profile, cfg Config) *FS {
	cfg.fill()
	fs := newCommon(dev, prof, cfg)
	fs.log = metalog.New(dev, 0, cfg.LogBytes, sim.CatOpLog)
	fs.root = &inode{ino: 1, isDir: true, nlink: 2, children: map[string]*inode{}}
	fs.inodes = map[uint64]*inode{1: fs.root}
	fs.nextIno = 2
	// Persist an empty snapshot so Mount of a fresh device works.
	if err := fs.snap.Save(encodeState(fs)); err != nil {
		panic(fmt.Sprintf("logfs: initial snapshot: %v", err))
	}
	return fs
}

func newCommon(dev *pmem.Device, prof Profile, cfg Config) *FS {
	fs := &FS{prof: prof, cfg: cfg, dev: dev, clk: dev.Clock()}
	snapOff := cfg.LogBytes
	fs.snap = metalog.NewSnapshot(dev, snapOff, cfg.SnapshotSlotBytes, sim.CatPMMeta)
	fs.dataOff = snapOff + metalog.SnapshotSize(cfg.SnapshotSlotBytes)
	fs.dataOff = (fs.dataOff + sim.BlockSize - 1) / sim.BlockSize * sim.BlockSize
	nData := (dev.Size() - cfg.ReserveTail - fs.dataOff) / sim.BlockSize
	// The allocator is DRAM-only; its state is rebuilt from the log at
	// mount, like NOVA's per-CPU free lists.
	fs.bmp = alloc.NewVolatile(fs.clk, fs.dataOff, nData)
	return fs
}

// Mount recovers the engine from its snapshot and log.
func Mount(dev *pmem.Device, prof Profile, cfg Config) (*FS, int, error) {
	cfg.fill()
	fs := newCommon(dev, prof, cfg)
	state := fs.snap.LoadState()
	if state == nil {
		return nil, 0, fmt.Errorf("logfs(%s): no snapshot; device not formatted", prof.Name)
	}
	if err := decodeState(fs, state); err != nil {
		return nil, 0, err
	}
	var records [][]byte
	fs.log, records = metalog.Load(dev, 0, cfg.LogBytes, sim.CatOpLog)
	for _, rec := range records {
		if err := fs.replay(rec); err != nil {
			return nil, 0, err
		}
	}
	// Rebuild the allocator from the surviving extents.
	for _, in := range fs.inodes {
		for _, e := range in.extents {
			fs.bmp.MarkAllocated(e.phys)
		}
	}
	return fs, len(records), nil
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return fs.prof.Name }

// Device returns the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// Stats snapshots the engine counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// FreeBlocks returns remaining data capacity.
func (fs *FS) FreeBlocks() int64 { return fs.bmp.FreeCount() }

func (fs *FS) trap() {
	if fs.prof.KernelFS {
		fs.clk.Charge(sim.CatKernelTrap, sim.KernelTrapNs)
		fs.stats.Traps++
	}
}

// appendRecord persists one metadata record, checkpointing when full.
// Caller holds fs.mu.
func (fs *FS) appendRecord(rec []byte) {
	fs.clk.Charge(sim.CatOpLog, fs.prof.PerOpCPU)
	fs.stats.LogAppends++
	if err := fs.log.Append(rec, fs.prof.FenceMode); err == nil {
		return
	}
	// Log full: checkpoint the whole state and reset.
	fs.checkpointLocked()
	if err := fs.log.Append(rec, fs.prof.FenceMode); err != nil {
		panic(fmt.Sprintf("logfs(%s): record larger than log: %v", fs.prof.Name, err))
	}
}

// checkpointLocked saves a snapshot and resets the log.
func (fs *FS) checkpointLocked() {
	if err := fs.snap.Save(encodeState(fs)); err != nil {
		panic(fmt.Sprintf("logfs(%s): checkpoint: %v", fs.prof.Name, err))
	}
	fs.log.Reset()
	fs.stats.Checkpoints++
}

// resolve walks a cleaned path. Caller holds fs.mu.
func (fs *FS) resolve(path string) (*inode, error) {
	cur := fs.root
	for _, name := range vfs.SplitPath(path) {
		if !cur.isDir {
			return nil, vfs.ErrNotDir
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// resolveDir returns the parent directory and base name. Caller holds
// fs.mu.
func (fs *FS) resolveDir(path string) (*inode, string, error) {
	dir, base := vfs.SplitDir(vfs.CleanPath(path))
	if base == "" {
		return nil, "", vfs.ErrInval
	}
	parent, err := fs.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", vfs.ErrNotDir
	}
	return parent, base, nil
}

func (fs *FS) infoOf(in *inode) vfs.FileInfo {
	var blocks int64
	for _, e := range in.extents {
		blocks += e.phys.Len
	}
	return vfs.FileInfo{Ino: in.ino, Size: in.size, Blocks: blocks, IsDir: in.isDir, Nlink: in.nlink}
}

// freeExtents releases an inode's data blocks.
func (fs *FS) freeExtents(in *inode) {
	for _, e := range in.extents {
		fs.bmp.Free(e.phys)
	}
	in.extents = nil
}
