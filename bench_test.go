package splitfs_test

// One testing.B benchmark per paper table and figure, each driving the
// experiment registry in internal/harness. The reported metric is
// simulated nanoseconds (the paper's metric), not wall-clock time; run
//
//	go test -bench=. -benchmem
//
// and read the rendered tables from cmd/splitbench for the full output.

import (
	"fmt"
	"io"
	"testing"

	"splitfs/internal/harness"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			tbl.Render(io.Discard)
		}
	}
}

// BenchmarkTable1AppendOverhead regenerates Table 1: software overhead of
// 4 KB appends on all five file systems.
func BenchmarkTable1AppendOverhead(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2PMDevice regenerates Table 2: raw device characteristics.
func BenchmarkTable2PMDevice(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable6Syscalls regenerates Table 6: per-syscall latency across
// SplitFS modes and ext4 DAX.
func BenchmarkTable6Syscalls(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7Strata regenerates Table 7: YCSB on LevelDB, Strata vs
// SplitFS-strict.
func BenchmarkTable7Strata(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkFig3Techniques regenerates Figure 3: the contribution of the
// split architecture, staging, and relink.
func BenchmarkFig3Techniques(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4IOPatterns regenerates Figure 4: five IO patterns across
// all file systems by guarantee level.
func BenchmarkFig4IOPatterns(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5SoftwareOverhead regenerates Figure 5: relative software
// overhead in YCSB and TPCC.
func BenchmarkFig5SoftwareOverhead(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Applications regenerates Figure 6: application throughput
// and the metadata-heavy utilities.
func BenchmarkFig6Applications(b *testing.B) { runExperiment(b, "fig6") }

// Parallel benchmarks: N worker goroutines over one SplitFS-POSIX
// instance, distinct files each — the concurrency the sharded PM device
// and per-file lock hierarchy buy. Reported metrics are aggregate
// wall-clock Kops/s (meaningful when GOMAXPROCS >= the thread count) and
// simulated ns/op. Compare threads=4 against threads=1 for the scaling
// factor.
func benchConcurrent(b *testing.B, run func() (harness.ConcurrentResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WallKops(), "wall-Kops/s")
		b.ReportMetric(float64(r.SimNs)/float64(r.Ops), "sim-ns/op")
	}
}

func BenchmarkParallelAppends(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchConcurrent(b, func() (harness.ConcurrentResult, error) {
				return harness.RunConcurrentAppends("splitfs-posix", threads, 2048/threads, 4096)
			})
		})
	}
}

func BenchmarkParallelReads(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchConcurrent(b, func() (harness.ConcurrentResult, error) {
				return harness.RunConcurrentReads("splitfs-posix", threads, 4096/threads, 4096)
			})
		})
	}
}

func BenchmarkParallelWALCommits(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchConcurrent(b, func() (harness.ConcurrentResult, error) {
				return harness.RunConcurrentWAL("splitfs-posix", threads, 256/threads)
			})
		})
	}
}

// BenchmarkRecovery regenerates the §5.3 recovery-time measurement.
func BenchmarkRecovery(b *testing.B) { runExperiment(b, "recovery") }

// BenchmarkResources regenerates the §5.10 resource-consumption numbers.
func BenchmarkResources(b *testing.B) { runExperiment(b, "resources") }

// BenchmarkAblation regenerates the §3.6/§4 tunable-parameter ablations.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }
