package obs

import (
	"sync"
	"testing"
)

func TestRecorderSingleWriterExact(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Append(Record{ReqID: uint32(i + 1), Msg: 5, Bytes: int64(i)})
	}
	recs := r.Dump()
	if len(recs) != 8 {
		t.Fatalf("dump returned %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(13 + i)
		if rec.Seq != wantSeq || rec.ReqID != uint32(wantSeq) {
			t.Fatalf("record %d: seq=%d req=%d, want seq=req=%d", i, rec.Seq, rec.ReqID, wantSeq)
		}
	}
	if r.Len() != 20 || r.Cap() != 8 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
}

func TestRecorderRoundsUpToPowerOfTwo(t *testing.T) {
	if got := NewRecorder(100).Cap(); got != 128 {
		t.Fatalf("cap = %d, want 128", got)
	}
	if got := NewRecorder(0).Cap(); got != DefaultFlightSlots {
		t.Fatalf("cap = %d, want default %d", got, DefaultFlightSlots)
	}
}

func TestRecorderPackRoundTrip(t *testing.T) {
	in := Record{Seq: 9, ReqID: 0xDEADBEEF, Msg: 31, Flags: FlagError | FlagReplay,
		PathHash: 0x0123456789ABCDEF, Bytes: 1 << 40, Fences: 3, Cost: 123456789}
	if got := unpackRecord(packRecord(in)); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

// TestRecorderConcurrentReadersWriters is the satellite's race target:
// many writers appending while readers dump continuously. Under -race
// this proves the seqlock publishes through atomics only; the
// assertions prove dumps never surface torn records (every dumped
// record's fields must be self-consistent).
func TestRecorderConcurrentReadersWriters(t *testing.T) {
	const writers, readers, perWriter = 4, 3, 2000
	r := NewRecorder(64)
	var wWG, rWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < perWriter; i++ {
				// Self-consistent encoding: every field derives from ReqID,
				// so a torn record is detectable below.
				id := uint32(w*perWriter + i + 1)
				r.Append(Record{ReqID: id, Msg: uint8(id % 40),
					PathHash: uint64(id) * 7, Bytes: int64(id) * 3,
					Fences: int64(id % 5), Cost: int64(id) * 11})
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		rWG.Add(1)
		go func() {
			defer rWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := r.Dump()
				var last uint64
				for _, rec := range recs {
					if rec.Seq <= last {
						t.Errorf("dump out of order: %d after %d", rec.Seq, last)
						return
					}
					last = rec.Seq
					id := rec.ReqID
					if rec.PathHash != uint64(id)*7 || rec.Bytes != int64(id)*3 ||
						rec.Cost != int64(id)*11 || rec.Msg != uint8(id%40) {
						t.Errorf("torn record surfaced: %+v", rec)
						return
					}
				}
			}
		}()
	}

	wWG.Wait()
	close(stop)
	rWG.Wait()

	if r.Len() != writers*perWriter {
		t.Fatalf("len = %d, want %d", r.Len(), writers*perWriter)
	}
	// Quiescent dump: full ring, ordered, consistent.
	recs := r.Dump()
	if len(recs) != r.Cap() {
		t.Fatalf("final dump %d records, want %d", len(recs), r.Cap())
	}
}
