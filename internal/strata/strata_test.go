package strata

import (
	"bytes"
	"testing"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func newStrata(t testing.TB) (*pmem.Device, *FS) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock(),
		TrackPersistence: true, TrackWear: true})
	return dev, New(dev, Config{PrivateLogBytes: 2 << 20})
}

func TestWriteReadThroughLog(t *testing.T) {
	_, fs := newStrata(t)
	f, err := vfs.Create(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("logged-data"))
	got := make([]byte, 11)
	if n, err := f.ReadAt(got, 0); err != nil || n != 11 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if string(got) != "logged-data" {
		t.Fatalf("read %q", got)
	}
	// The data must still be only in the private log: shared file empty.
	if ss := fs.Stats(); ss.DigestBytes != 0 || ss.LoggedBytes != 11 {
		t.Fatalf("stats = %+v", ss)
	}
	f.Close()
}

func TestOverwriteNewestWins(t *testing.T) {
	_, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/f")
	f.WriteAt([]byte("AAAAAAAA"), 0)
	f.WriteAt([]byte("BBBB"), 2)
	got := make([]byte, 8)
	f.ReadAt(got, 0)
	if string(got) != "AABBBBAA" {
		t.Fatalf("overlay resolution = %q, want AABBBBAA", got)
	}
	f.Close()
}

func TestDigestMovesDataToShared(t *testing.T) {
	_, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/f")
	payload := bytes.Repeat([]byte("D"), 2*sim.BlockSize)
	f.Write(payload)
	fs.Digest()
	ss := fs.Stats()
	if ss.Digests != 1 || ss.DigestBytes != int64(len(payload)) {
		t.Fatalf("digest stats = %+v", ss)
	}
	// Content still correct after digest (now from the shared area).
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content wrong after digest")
	}
	f.Close()
}

func TestAppendWorkloadWritesDataTwice(t *testing.T) {
	// The paper's central claim about Strata: appends cannot coalesce, so
	// write IO is ~2x the application bytes.
	dev, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/appends")
	appBytes := int64(0)
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 64; i++ {
		f.Write(blk)
		appBytes += int64(len(blk))
	}
	fs.Digest()
	ss := fs.Stats()
	if ss.LoggedBytes != appBytes || ss.DigestBytes != appBytes {
		t.Fatalf("logged=%d digested=%d app=%d; appends must be written twice",
			ss.LoggedBytes, ss.DigestBytes, appBytes)
	}
	// Device-level write IO must be at least 2x the application bytes.
	if w := dev.Stats().BytesWritten(); w < 2*appBytes {
		t.Fatalf("device write IO %d < 2x app bytes %d", w, 2*appBytes)
	}
	f.Close()
}

func TestOverwriteWorkloadCoalesces(t *testing.T) {
	// Repeated overwrites of the same block coalesce at digest: digested
	// bytes ≪ logged bytes.
	_, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/ow")
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 32; i++ {
		blk[0] = byte(i)
		f.WriteAt(blk, 0)
	}
	fs.Digest()
	ss := fs.Stats()
	if ss.LoggedBytes != 32*sim.BlockSize {
		t.Fatalf("logged = %d", ss.LoggedBytes)
	}
	if ss.DigestBytes != sim.BlockSize {
		t.Fatalf("digested = %d, want one block after coalescing", ss.DigestBytes)
	}
	got := make([]byte, 1)
	f.ReadAt(got, 0)
	if got[0] != 31 {
		t.Fatalf("final content = %d, want 31", got[0])
	}
	f.Close()
}

func TestAutoDigestOnLogPressure(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	fs := New(dev, Config{PrivateLogBytes: 256 << 10, DigestAt: 50})
	f, _ := vfs.Create(fs, "/big")
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 64; i++ { // 256 KB of data through a 256 KB log
		if _, err := f.Write(blk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fs.Stats().Digests == 0 {
		t.Fatal("log pressure never triggered a digest")
	}
	info, _ := f.Stat()
	if info.Size != 64*sim.BlockSize {
		t.Fatalf("size = %d", info.Size)
	}
	f.Close()
}

func TestWritesNoKernelTrap(t *testing.T) {
	_, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/ut")
	traps := fs.shared.Stats().Traps
	f.Write(make([]byte, 128))
	if fs.shared.Stats().Traps != traps {
		t.Fatal("LibFS write trapped into the kernel")
	}
	f.Close()
}

func TestCrashRecoveryFromPrivateLog(t *testing.T) {
	dev, fs := newStrata(t)
	f, _ := vfs.Create(fs, "/r")
	f.Write([]byte("survives-in-log"))
	// Logged writes are synchronous: no fsync, crash now.
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, replayed, err := Mount(dev, Config{PrivateLogBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("no private-log records replayed")
	}
	got, err := vfs.ReadFile(fs2, "/r")
	if err != nil || string(got) != "survives-in-log" {
		t.Fatalf("after crash = %q, %v", got, err)
	}
}

func TestUnlinkFlushesOverlay(t *testing.T) {
	_, fs := newStrata(t)
	vfs.WriteFile(fs, "/a", []byte("aaa"))
	f, _ := fs.OpenFile("/a", vfs.O_RDWR, 0)
	f.WriteAt([]byte("xxx"), 0)
	f.Close()
	if err := fs.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	// Recreate same name: stale overlay must not leak into the new file.
	vfs.WriteFile(fs, "/a", []byte("yyy"))
	got, _ := vfs.ReadFile(fs, "/a")
	if string(got) != "yyy" {
		t.Fatalf("new file sees stale overlay: %q", got)
	}
}

func TestMetadataPassThrough(t *testing.T) {
	_, fs := newStrata(t)
	fs.Mkdir("/d", 0755)
	vfs.WriteFile(fs, "/d/f", []byte("z"))
	ents, err := fs.ReadDir("/d")
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Rename("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/d/g")
	if string(got) != "z" {
		t.Fatalf("after rename = %q", got)
	}
}
