package ext4dax

import (
	"testing"
	"testing/quick"

	"splitfs/internal/alloc"
	"splitfs/internal/sim"
)

func ext(logical, start, length int64) fileExtent {
	return fileExtent{logical: logical, phys: alloc.Extent{Start: start, Len: length}}
}

func TestAppendFileExtentMerges(t *testing.T) {
	in := &inode{}
	appendFileExtent(in, alloc.Extent{Start: 10, Len: 2})
	appendFileExtent(in, alloc.Extent{Start: 12, Len: 3}) // contiguous: merge
	if len(in.extents) != 1 || in.extents[0].phys.Len != 5 {
		t.Fatalf("extents = %+v", in.extents)
	}
	appendFileExtent(in, alloc.Extent{Start: 20, Len: 1}) // gap: new extent
	if len(in.extents) != 2 || in.extents[1].logical != 5 {
		t.Fatalf("extents = %+v", in.extents)
	}
}

func TestInsertFileExtentOrdersAndMerges(t *testing.T) {
	in := &inode{}
	insertFileExtent(in, 4, alloc.Extent{Start: 104, Len: 2})
	insertFileExtent(in, 0, alloc.Extent{Start: 100, Len: 2})
	insertFileExtent(in, 2, alloc.Extent{Start: 102, Len: 2}) // bridges: full merge
	if len(in.extents) != 1 {
		t.Fatalf("extents = %+v", in.extents)
	}
	if in.extents[0].logical != 0 || in.extents[0].phys.Len != 6 {
		t.Fatalf("merged = %+v", in.extents[0])
	}
}

func TestTruncateExtentsSplits(t *testing.T) {
	in := &inode{extents: []fileExtent{ext(0, 100, 10)}}
	freed := truncateExtents(in, 4)
	if len(freed) != 1 || freed[0].Start != 104 || freed[0].Len != 6 {
		t.Fatalf("freed = %+v", freed)
	}
	if len(in.extents) != 1 || in.extents[0].phys.Len != 4 {
		t.Fatalf("kept = %+v", in.extents)
	}
	// Truncate to zero frees everything.
	freed = truncateExtents(in, 0)
	if len(freed) != 1 || freed[0].Len != 4 || len(in.extents) != 0 {
		t.Fatalf("freed = %+v kept = %+v", freed, in.extents)
	}
}

func TestExtractExtentsMiddle(t *testing.T) {
	in := &inode{extents: []fileExtent{ext(0, 100, 10)}}
	removed := extractExtents(in, 3, 4)
	if len(removed) != 1 || removed[0].Start != 103 || removed[0].Len != 4 {
		t.Fatalf("removed = %+v", removed)
	}
	if len(in.extents) != 2 {
		t.Fatalf("kept = %+v", in.extents)
	}
	if in.extents[0].phys.Len != 3 || in.extents[1].logical != 7 ||
		in.extents[1].phys.Start != 107 {
		t.Fatalf("split wrong: %+v", in.extents)
	}
}

func TestExtractExtentsAcrossMultiple(t *testing.T) {
	in := &inode{extents: []fileExtent{ext(0, 100, 4), ext(4, 200, 4), ext(8, 300, 4)}}
	removed := extractExtents(in, 2, 8) // spans all three
	total := int64(0)
	for _, e := range removed {
		total += e.Len
	}
	if total != 8 {
		t.Fatalf("removed %d blocks, want 8: %+v", total, removed)
	}
	if len(in.extents) != 2 {
		t.Fatalf("kept = %+v", in.extents)
	}
}

// Property: extract + place back at the same position restores the
// mapping exactly.
func TestExtractPlaceRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		in := &inode{}
		logical := int64(0)
		for i := 0; i < 6; i++ {
			length := int64(rng.Intn(5) + 1)
			insertFileExtent(in, logical, alloc.Extent{
				Start: int64(1000*i + rng.Intn(100)), Len: length})
			logical += length + int64(rng.Intn(3)) // maybe holes
		}
		orig := append([]fileExtent(nil), in.extents...)
		from := int64(rng.Intn(int(logical)))
		count := int64(rng.Intn(int(logical-from)) + 1)
		removed := extractExtents(in, from, count)
		// Re-place piece by piece at their original logical positions.
		place := from
		for _, e := range removed {
			// Skip holes: find where this piece belongs by walking the
			// original mapping.
			for {
				if devBlockAt(orig, place) == e.Start {
					break
				}
				place++
			}
			insertFileExtent(in, place, e)
			place += e.Len
		}
		if len(in.extents) != len(orig) {
			return false
		}
		for i := range orig {
			if in.extents[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// devBlockAt returns the physical block at a logical position in an
// extent list, or -1 for holes.
func devBlockAt(exts []fileExtent, logical int64) int64 {
	for _, e := range exts {
		if logical >= e.logical && logical < e.logicalEnd() {
			return e.phys.Start + (logical - e.logical)
		}
	}
	return -1
}

func TestInodeEncodeDecodeRoundTrip(t *testing.T) {
	in := &inode{ino: 42, isDir: false, nlink: 2, size: 123456, blocks: 31, uwm: 77}
	for i := int64(0); i < 10; i++ {
		in.extents = append(in.extents, ext(i*4, 1000+i*8, 2))
	}
	rec := in.encode()
	if len(rec) != inodeSize {
		t.Fatalf("record size = %d", len(rec))
	}
	out, next, err := decodeInode(42, rec)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0 {
		t.Fatalf("unexpected overflow pointer %d", next)
	}
	if out.size != in.size || out.blocks != in.blocks || out.nlink != in.nlink ||
		out.uwm != 77 || len(out.extents) != 10 {
		t.Fatalf("decoded = %+v", out)
	}
	for i := range in.extents {
		if out.extents[i] != in.extents[i] {
			t.Fatalf("extent %d: %+v vs %+v", i, out.extents[i], in.extents[i])
		}
	}
	// Corrupt magic must be rejected.
	rec[0] ^= 0xFF
	if _, _, err := decodeInode(42, rec); err == nil {
		t.Fatal("corrupt inode accepted")
	}
}

func TestLayoutComputation(t *testing.T) {
	l, err := computeLayout(64<<20, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Regions must be ordered and non-overlapping.
	if !(l.SuperOff < l.JournalOff && l.JournalOff < l.InodeBmpOff &&
		l.InodeBmpOff < l.InodeTblOff && l.InodeTblOff < l.BlockBmpOff &&
		l.BlockBmpOff < l.DataOff) {
		t.Fatalf("layout disordered: %+v", l)
	}
	if l.DataOff+l.DataBlocks*sim.BlockSize > 64<<20 {
		t.Fatal("data region exceeds device")
	}
	if l.DataBlocks*sim.BlockSize < 48<<20 {
		t.Fatalf("data region too small: %d blocks", l.DataBlocks)
	}
	// Too-small devices are rejected.
	if _, err := computeLayout(300<<10, 64, 1024); err == nil {
		t.Fatal("tiny device accepted")
	}
}
