package lockorder_test

import (
	"testing"

	"splitfs/internal/analysis/analysistest"
	"splitfs/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), lockorder.Analyzer, "locks", "locksuser")
}
