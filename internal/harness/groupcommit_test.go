package harness

import (
	"testing"
)

// TestGroupCommitBatchedStrictlyCheaper is the acceptance gate for the
// async relink pipeline's group commit: making N files durable through
// one batched drain must issue strictly fewer journal commits AND
// strictly fewer pmem fences than N independent fsyncs, in both POSIX
// and strict modes.
func TestGroupCommitBatchedStrictlyCheaper(t *testing.T) {
	for _, kind := range []string{"splitfs-posix", "splitfs-strict"} {
		serial, err := RunGroupCommit(kind, 12, 16, 4096, false)
		if err != nil {
			t.Fatalf("%s serial: %v", kind, err)
		}
		batched, err := RunGroupCommit(kind, 12, 16, 4096, true)
		if err != nil {
			t.Fatalf("%s batched: %v", kind, err)
		}
		if serial.Commits == 0 {
			t.Fatalf("%s serial run issued no journal commits", kind)
		}
		if batched.Commits >= serial.Commits {
			t.Errorf("%s: batched commits %d not strictly fewer than serial %d",
				kind, batched.Commits, serial.Commits)
		}
		if batched.Fences >= serial.Fences {
			t.Errorf("%s: batched fences %d not strictly fewer than serial %d",
				kind, batched.Fences, serial.Fences)
		}
		t.Logf("%s: commits %d -> %d, fences %d -> %d", kind,
			serial.Commits, batched.Commits, serial.Fences, batched.Fences)
	}
}

// TestGroupCommitExperimentMetrics verifies the registered experiment
// runs and attaches the machine-readable metrics BENCH_results.json
// reports, with batched strictly below serial.
func TestGroupCommitExperimentMetrics(t *testing.T) {
	e, ok := Get("groupcommit")
	if !ok {
		t.Fatal("groupcommit experiment not registered")
	}
	tbl, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	vals := map[string]float64{}
	for _, m := range tbl.Metrics {
		vals[m.Name] = m.Value
	}
	for _, kind := range []string{"splitfs-posix", "splitfs-strict"} {
		for _, metric := range []string{"commits_per_1k_appends", "fences_per_fsync"} {
			s, okS := vals[kind+"_serial_"+metric]
			b, okB := vals[kind+"_batched_"+metric]
			if !okS || !okB {
				t.Fatalf("missing metric %s_{serial,batched}_%s in %v", kind, metric, vals)
			}
			if b >= s {
				t.Errorf("%s %s: batched %.3f not strictly below serial %.3f", kind, metric, b, s)
			}
		}
	}
}
