package lsmkv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// newFS builds a SplitFS-POSIX instance (the store must work on any
// vfs.FileSystem; SplitFS exercises the staging/relink paths hardest).
func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func newDB(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open(newFS(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGet(t *testing.T) {
	db := newDB(t, Options{})
	if err := db.Put("alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get("alpha")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get("missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("missing key = %v", err)
	}
	// Overwrite returns the newest value.
	db.Put("alpha", []byte("2"))
	v, _ = db.Get("alpha")
	if string(v) != "2" {
		t.Fatalf("after update = %q", v)
	}
	db.Close()
}

func TestDelete(t *testing.T) {
	db := newDB(t, Options{})
	db.Put("k", []byte("v"))
	db.Delete("k")
	if _, err := db.Get("k"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("deleted key = %v", err)
	}
	// Deletion survives a flush (tombstone in tables).
	db.Put("k2", []byte("v2"))
	db.Delete("k2")
	db.Flush()
	if _, err := db.Get("k2"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("deleted key after flush = %v", err)
	}
	db.Close()
}

func TestFlushAndTableReads(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 8 << 10})
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 200; i++ {
		if err := db.Put(fmt.Sprintf("key%05d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("memtable never flushed")
	}
	// Every key readable (from memtable, L0, or L1).
	for i := 0; i < 200; i++ {
		v, err := db.Get(fmt.Sprintf("key%05d", i))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("key%05d: %v", i, err)
		}
	}
	db.Close()
}

func TestCompaction(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 4 << 10, L0CompactAt: 2})
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 400; i++ {
		db.Put(fmt.Sprintf("k%06d", i%100), val) // heavy overwrite
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Get(fmt.Sprintf("k%06d", i)); err != nil {
			t.Fatalf("k%06d lost after compaction: %v", i, err)
		}
	}
	db.Close()
}

func TestScan(t *testing.T) {
	db := newDB(t, Options{MemtableBytes: 8 << 10})
	for i := 0; i < 150; i++ {
		db.Put(fmt.Sprintf("s%04d", i), []byte{byte(i)})
	}
	kvs, err := db.Scan("s0050", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i, kv := range kvs {
		want := fmt.Sprintf("s%04d", 50+i)
		if kv.Key != want {
			t.Fatalf("scan[%d] = %q, want %q", i, kv.Key, want)
		}
	}
	db.Close()
}

func TestRecoveryFromWAL(t *testing.T) {
	fs := newFS(t)
	db, err := Open(fs, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Put("durable", []byte("yes"))
	// No Close: simulate an app crash (the FS itself stays intact; WAL
	// replay must recover the put).
	db.wal.Sync()
	db2, err := Open(fs, Options{SyncWrites: true, Dir: db.opts.Dir})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get("durable")
	if err != nil || string(v) != "yes" {
		t.Fatalf("after WAL recovery: %q, %v", v, err)
	}
	db2.Close()
}

func TestRecoveryAcrossFlush(t *testing.T) {
	fs := newFS(t)
	db, _ := Open(fs, Options{MemtableBytes: 4 << 10})
	val := bytes.Repeat([]byte("r"), 100)
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("r%04d", i), val)
	}
	db.Close()
	db2, err := Open(fs, Options{MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db2.Get(fmt.Sprintf("r%04d", i)); err != nil {
			t.Fatalf("r%04d lost across reopen: %v", i, err)
		}
	}
	db2.Close()
}

// Property: the store agrees with a map model under random operations.
func TestModelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		db := newDB(t, Options{MemtableBytes: 4 << 10, L0CompactAt: 3})
		defer db.Close()
		rng := sim.NewRNG(seed)
		model := make(map[string]string)
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("p%03d", rng.Intn(50))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Uint64())
				if err := db.Put(k, []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2:
				if err := db.Delete(k); err != nil {
					return false
				}
				delete(model, k)
			}
			// Spot-check.
			ck := fmt.Sprintf("p%03d", rng.Intn(50))
			v, err := db.Get(ck)
			want, ok := model[ck]
			if ok != (err == nil) {
				t.Logf("seed %d: key %s presence mismatch (model %v, err %v)", seed, ck, ok, err)
				return false
			}
			if ok && string(v) != want {
				t.Logf("seed %d: key %s = %q want %q", seed, ck, v, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
