package splitfs

import (
	"encoding/binary"
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/vfs"
)

// This file implements the process-lifecycle handling of §3.5: fork(),
// execve(), and dup(). Dup itself lives in vfs.FDTable (descriptors share
// one File and therefore one offset); here are the library-state
// analogues for address-space events.

// Fork returns a U-Split instance for the child process: the library is
// copied with the parent's address space, so the child sees the same
// open-file descriptions, attribute cache, and mappings. The kernel file
// system, staging pool, and operation log are shared objects on PM, just
// as they are between a forked parent and child.
func (fs *FS) Fork() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	child := &FS{
		kfs:     fs.kfs,
		dev:     fs.dev,
		clk:     fs.clk,
		cfg:     fs.cfg,
		mode:    fs.mode,
		files:   make(map[uint64]*ofile, len(fs.files)),
		attrs:   make(map[string]vfs.FileInfo),
		staging: fs.staging,
		mmaps:   fs.mmaps,
		olog:    fs.olog,
	}
	for ino, of := range fs.files {
		of.mu.RLock()
		cp := &ofile{
			ino:    of.ino,
			kf:     of.kf,
			path:   of.path,
			size:   of.size,
			ksize:  of.ksize,
			staged: append([]stagedRange(nil), of.staged...),
			active: of.active,
			logSeq: of.logSeq,
			refs:   of.refs,
		}
		of.mu.RUnlock()
		// The child's copied overlay and active chunk are independent
		// references into the shared staging pool: without their own
		// counts, the first side to relink would let the reclaimer unmap
		// staging files the other still reads.
		fs.staging.mu.Lock()
		for _, s := range cp.staged {
			if s.sf != nil {
				s.sf.refs++
			}
		}
		if cp.active != nil {
			cp.active.sf.refs++
		}
		fs.staging.mu.Unlock()
		child.files[ino] = cp
	}
	fs.amu.Lock()
	for p, info := range fs.attrs {
		child.attrs[p] = info
	}
	fs.amu.Unlock()
	child.pipeline = newRelinkPipeline(child, child.cfg.RelinkWorkers)
	return child
}

// execState is the serialized open-file table written to the shm file.
const execShmDir = "/.splitfs-shm"

// PrepareExec serializes U-Split's in-memory state about open files to a
// shared-memory file named by pid, as SplitFS does before execve() (§3.5:
// "SplitFS copies its in-memory data about open files to a shared memory
// file on /dev/shm; the file name is the process ID").
//
// Staged data is relinked first: the post-exec image maps nothing, so
// staged overlays cannot be carried across the boundary.
func (fs *FS) PrepareExec(pid int) error {
	defer fs.lockStrict()()
	if err := fs.relinkAll(nil); err != nil {
		return err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var buf []byte
	u64 := func(v uint64) { var t [8]byte; binary.LittleEndian.PutUint64(t[:], v); buf = append(buf, t[:]...) }
	str := func(s string) {
		var t [2]byte
		binary.LittleEndian.PutUint16(t[:], uint16(len(s)))
		buf = append(buf, t[:]...)
		buf = append(buf, s...)
	}
	u64(uint64(len(fs.files)))
	for _, of := range fs.files {
		of.mu.RLock()
		u64(of.ino)
		str(of.path)
		u64(uint64(of.size))
		u64(uint64(of.refs))
		of.mu.RUnlock()
	}
	if err := fs.kfs.Mkdir(execShmDir, 0700); err != nil {
		if _, statErr := fs.kfs.Stat(execShmDir); statErr != nil {
			return err
		}
	}
	return vfs.WriteFile(fs.kfs, shmPath(pid), buf)
}

// ResumeExec reconstructs the open-file table in the post-exec image from
// the shm file and removes it.
func (fs *FS) ResumeExec(pid int) error {
	data, err := vfs.ReadFile(fs.kfs, shmPath(pid))
	if err != nil {
		return fmt.Errorf("splitfs: no exec state for pid %d: %w", pid, err)
	}
	defer fs.kfs.Unlink(shmPath(pid))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	off := 0
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(data[off:]); off += 8; return v }
	str := func() string {
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		s := string(data[off : off+n])
		off += n
		return s
	}
	n := int(u64())
	for i := 0; i < n; i++ {
		ino := u64()
		path := str()
		size := int64(u64())
		refs := int(u64())
		kf, err := fs.kfs.OpenFile(path, vfs.O_RDWR, 0)
		if err != nil {
			return err
		}
		fs.files[ino] = &ofile{
			ino: ino, path: path, kf: kf.(*ext4dax.File),
			size: size, ksize: size, refs: refs,
		}
		info, _ := kf.Stat()
		fs.amu.Lock()
		fs.attrs[path] = info
		fs.amu.Unlock()
	}
	return nil
}

func shmPath(pid int) string { return fmt.Sprintf("%s/%d", execShmDir, pid) }

// OpenHandle recreates a File for an inode restored by ResumeExec; the
// post-exec process uses it to keep using its pre-exec descriptors.
func (fs *FS) OpenHandle(ino uint64, flag int) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.files[ino]
	if !ok {
		return nil, vfs.ErrBadFD
	}
	return &File{fs: fs, of: of, flag: flag, path: of.path}, nil
}
