// Package metalog provides an append-only, checksummed, persistent record
// log with snapshot-based checkpointing. It is the shared persistence
// substrate for the log-structured baseline file systems in this
// repository:
//
//   - NOVA persists every operation as a log entry followed by a tail
//     update — two cache-line persists and two fences (§3.3 of the paper
//     contrasts this with SplitFS's single-fence logging).
//   - PMFS uses fine-grained journaling — one fenced record per metadata
//     update.
//   - Strata's private operation log and the U-Split operation log use the
//     same record format with their own cost profiles.
//
// Records are padded to 64-byte cache lines and carry a 4-byte checksum
// over the payload and sequence number, so torn writes (partially
// persisted lines after a crash) are detected and treated as the end of
// the log — the same trick SplitFS uses to need only one fence.
package metalog

import (
	"encoding/binary"
	"errors"
	"fmt"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// FenceMode selects the persistence discipline of Append.
type FenceMode int

const (
	// SingleFence writes the record with non-temporal stores and issues
	// one fence; validity is established by the checksum (SplitFS-style,
	// §3.3).
	SingleFence FenceMode = iota
	// EntryPlusTail additionally updates a persistent tail pointer with a
	// store+flush+fence (NOVA-style: "at least two cache lines and two
	// fences").
	EntryPlusTail
	// NoFence appends without fencing; the caller fences later (Strata
	// batches up to fsync).
	NoFence
)

const (
	headerSize = 16 // length (4) | seq (4) | checksum (4) | reserved (4)
	// tailSlot is the reserved first cache line of the region, used by
	// EntryPlusTail mode.
	tailSlot = sim.CacheLine
)

// ErrFull is returned when the log region cannot hold a record.
var ErrFull = errors.New("metalog: log full")

// Log is an append-only record log on a PM device region.
type Log struct {
	dev   *pmem.Device
	start int64
	size  int64
	cat   sim.Category

	tail int64 // next append offset, relative to start (DRAM-only)
	seq  uint32
}

// New formats (zeroes) a log region. The zeroing is what lets recovery
// identify the end of the log: the first record slot with a zero length
// terminates the scan.
func New(dev *pmem.Device, start, size int64, cat sim.Category) *Log {
	l := &Log{dev: dev, start: start, size: size, cat: cat, tail: tailSlot, seq: 1}
	l.zeroRegion()
	return l
}

func (l *Log) zeroRegion() {
	// Zero in block-sized chunks to bound allocation.
	buf := make([]byte, sim.BlockSize)
	for off := int64(0); off < l.size; off += sim.BlockSize {
		n := l.size - off
		if n > sim.BlockSize {
			n = sim.BlockSize
		}
		l.dev.StoreNT(l.start+off, buf[:n], l.cat)
	}
	l.dev.Fence()
}

// Load scans an existing log region and returns the log (positioned after
// the last valid record) plus every valid record payload in order.
// Scanning stops at the first zero-length slot or checksum mismatch
// (a torn record).
func Load(dev *pmem.Device, start, size int64, cat sim.Category) (*Log, [][]byte) {
	l := &Log{dev: dev, start: start, size: size, cat: cat, tail: tailSlot, seq: 1}
	var records [][]byte
	hdr := make([]byte, headerSize)
	for l.tail+headerSize <= size {
		dev.ReadAt(hdr, start+l.tail, cat)
		length := binary.LittleEndian.Uint32(hdr[0:4])
		if length == 0 {
			break
		}
		seq := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		recLen := recordLen(int(length))
		if l.tail+recLen > size || seq != l.seq {
			break
		}
		payload := make([]byte, length)
		dev.ReadAt(payload, start+l.tail+headerSize, cat)
		if checksum(seq, payload) != sum {
			break // torn record: end of valid log
		}
		records = append(records, payload)
		l.tail += recLen
		l.seq++
	}
	return l, records
}

// recordLen is the 64-byte-aligned on-log size of a payload.
func recordLen(payloadLen int) int64 {
	return (int64(payloadLen) + headerSize + sim.CacheLine - 1) /
		sim.CacheLine * sim.CacheLine
}

// Append writes one record. The common case (payload ≤ 48 bytes) is a
// single cache line. Returns ErrFull when the region is exhausted — the
// caller checkpoints and calls Reset.
func (l *Log) Append(payload []byte, mode FenceMode) error {
	recLen := recordLen(len(payload))
	if l.tail+recLen > l.size {
		return ErrFull
	}
	buf := make([]byte, recLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], l.seq)
	binary.LittleEndian.PutUint32(buf[8:12], checksum(l.seq, payload))
	copy(buf[headerSize:], payload)
	l.dev.Clock().Charge(sim.CatCPU, sim.ChecksumPerLogEntryNs)
	l.dev.StoreNT(l.start+l.tail, buf, l.cat)
	switch mode {
	case SingleFence:
		l.dev.Fence()
	case EntryPlusTail:
		l.dev.Fence()
		// Persistent tail pointer: one more cache line + fence.
		var tb [8]byte
		binary.LittleEndian.PutUint64(tb[:], uint64(l.tail+recLen))
		l.dev.Store(l.start, tb[:], l.cat)
		l.dev.Flush(l.start, 8, l.cat)
		l.dev.Fence()
	case NoFence:
	}
	l.tail += recLen
	l.seq++
	return nil
}

// Fence orders previously appended NoFence records.
func (l *Log) Fence() { l.dev.Fence() }

// Reset zeroes the log after a checkpoint.
func (l *Log) Reset() {
	l.zeroRegion()
	l.tail = tailSlot
	l.seq = 1
}

// Used returns the bytes consumed by records.
func (l *Log) Used() int64 { return l.tail - tailSlot }

// Capacity returns the total record capacity in bytes.
func (l *Log) Capacity() int64 { return l.size - tailSlot }

// Entries returns the number of records appended since New/Load/Reset.
func (l *Log) Entries() int { return int(l.seq - 1) }

func checksum(seq uint32, payload []byte) uint32 {
	h := uint64(0xcbf29ce484222325) ^ uint64(seq)
	for _, b := range payload {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	s := uint32(h ^ h>>32)
	if s == 0 {
		s = 1 // zero is reserved for "unwritten"
	}
	return s
}

// Snapshot is a two-slot alternating checkpoint area placed alongside a
// metalog: Save serializes opaque state into the inactive slot, persists
// it, then bumps a sequence selector, so a crash mid-checkpoint leaves
// the previous snapshot intact.
type Snapshot struct {
	dev   *pmem.Device
	start int64 // region: header line + 2 slots
	slot  int64 // bytes per slot
	cat   sim.Category
}

// NewSnapshot lays a snapshot area over [start, start+Size(slot)).
func NewSnapshot(dev *pmem.Device, start, slotSize int64, cat sim.Category) *Snapshot {
	return &Snapshot{dev: dev, start: start, slot: slotSize, cat: cat}
}

// SnapshotSize returns the device bytes needed for a snapshot area with
// the given slot size.
func SnapshotSize(slotSize int64) int64 { return sim.CacheLine + 2*slotSize }

// Save persists state into the inactive slot and flips the selector.
func (s *Snapshot) Save(state []byte) error {
	if int64(len(state)) > s.slot-8 {
		return fmt.Errorf("metalog: snapshot state %d exceeds slot %d", len(state), s.slot)
	}
	hdr := make([]byte, sim.CacheLine)
	s.dev.ReadAt(hdr[:16], s.start, s.cat)
	gen := binary.LittleEndian.Uint64(hdr[0:8])
	next := (gen % 2) // 0 -> slot0 ... gen odd means slot1 active; write the other
	slotOff := s.start + sim.CacheLine + int64(next)*s.slot
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(state)))
	s.dev.StoreNT(slotOff, lenBuf[:], s.cat)
	if len(state) > 0 {
		s.dev.StoreNT(slotOff+8, state, s.cat)
	}
	s.dev.Fence()
	binary.LittleEndian.PutUint64(hdr[0:8], gen+1)
	s.dev.PersistNT(s.start, hdr[:16], s.cat)
	return nil
}

// LoadState returns the most recent snapshot payload (nil when none).
func (s *Snapshot) LoadState() []byte {
	hdr := make([]byte, 16)
	s.dev.ReadAt(hdr, s.start, s.cat)
	gen := binary.LittleEndian.Uint64(hdr[0:8])
	if gen == 0 {
		return nil
	}
	active := (gen - 1) % 2
	slotOff := s.start + sim.CacheLine + int64(active)*s.slot
	var lenBuf [8]byte
	s.dev.ReadAt(lenBuf[:], slotOff, s.cat)
	n := int64(binary.LittleEndian.Uint64(lenBuf[:]))
	if n < 0 || n > s.slot-8 {
		return nil
	}
	state := make([]byte, n)
	if n > 0 {
		s.dev.ReadAt(state, slotOff+8, s.cat)
	}
	return state
}
