// This file opts into wall-clock reads and goroutine spawns.
//
// +determinism:wallclock
// +determinism:concurrent

package dettest

import "time"

// FlaggedWallclock is fine: the file declares wall-clock use.
func FlaggedWallclock() time.Time {
	return time.Now()
}

// FlaggedSpawn is fine: the file declares its concurrent mode.
func FlaggedSpawn(ch chan struct{}) {
	go func() { close(ch) }()
}
