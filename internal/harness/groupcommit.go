package harness

import (
	"fmt"

	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// The groupcommit experiment measures what the asynchronous relink
// pipeline's jbd2-style group commit buys on the fsync path: N files
// with staged appends are made durable either by N independent fsyncs
// (each relink batch commits its own journal transaction) or by one
// batched drain (GroupSync: all batches share a single transaction and
// fence pair). Reported as journal commits per 1k appends and pmem
// fences per fsync — batched must be strictly lower on both.

func init() {
	register("groupcommit", "Group-committed fsync: journal commits and fences, batched vs serial", groupCommitExp)
}

// GroupCommitResult is one measured configuration.
type GroupCommitResult struct {
	Kind    string
	Batched bool
	Files   int
	Appends int // total appends across files
	Commits int64
	Fences  int64
}

// CommitsPer1kAppends normalizes journal commits to the paper-style
// per-1k-operations rate.
func (r GroupCommitResult) CommitsPer1kAppends() float64 {
	if r.Appends == 0 {
		return 0
	}
	return float64(r.Commits) * 1000 / float64(r.Appends)
}

// FencesPerFsync is pmem fences per durability request (one per file in
// serial mode; the batch counts as one request per file here too, so
// the two configurations are directly comparable).
func (r GroupCommitResult) FencesPerFsync() float64 {
	if r.Files == 0 {
		return 0
	}
	return float64(r.Fences) / float64(r.Files)
}

// RunGroupCommit appends appendsPerFile 4K blocks to each of files
// distinct files on a fresh instance of kind, then makes them durable
// serially (fsync per file) or batched (one GroupSync), counting the
// journal commits and device fences of the durability phase only.
func RunGroupCommit(kind string, files, appendsPerFile, blockBytes int, batched bool) (GroupCommitResult, error) {
	e, err := newEnv(kind, appDev)
	if err != nil {
		return GroupCommitResult{}, err
	}
	sfs, ok := e.fs.(*splitfs.FS)
	if !ok {
		return GroupCommitResult{}, fmt.Errorf("groupcommit: %s is not a splitfs instance", kind)
	}
	handles := make([]*splitfs.File, files)
	blk := make([]byte, blockBytes)
	for i := range handles {
		f, err := vfs.Create(e.fs, fmt.Sprintf("/gc%02d", i))
		if err != nil {
			return GroupCommitResult{}, err
		}
		handles[i] = f.(*splitfs.File)
		for a := 0; a < appendsPerFile; a++ {
			if _, err := f.Write(blk); err != nil {
				return GroupCommitResult{}, err
			}
		}
	}
	kstats0 := sfs.KFS().Stats()
	dstats0 := e.dev.Stats()
	if batched {
		if err := sfs.GroupSync(handles...); err != nil {
			return GroupCommitResult{}, err
		}
	} else {
		for _, f := range handles {
			if err := f.Sync(); err != nil {
				return GroupCommitResult{}, err
			}
		}
	}
	kstats1 := sfs.KFS().Stats()
	dstats1 := e.dev.Stats()
	return GroupCommitResult{
		Kind:    kind,
		Batched: batched,
		Files:   files,
		Appends: files * appendsPerFile,
		Commits: kstats1.Commits - kstats0.Commits,
		Fences:  dstats1.Fences - dstats0.Fences,
	}, nil
}

// groupCommitExp renders the batched-vs-serial comparison for the POSIX
// and strict modes and attaches the machine-readable metrics the
// BENCH_results.json trajectory tracks.
func groupCommitExp() (*Table, error) {
	const (
		files          = 12
		appendsPerFile = 16
		blockBytes     = 4096
	)
	t := &Table{
		ID:    "groupcommit",
		Title: "Group-committed fsync (async relink pipeline)",
		Note: fmt.Sprintf("%d files x %d 4K appends; serial = fsync per file, batched = one GroupSync drain "+
			"(concurrent fsyncs coalesce the same way via CommitUpTo)", files, appendsPerFile),
		Headers: []string{"File system", "Mode", "Journal commits", "Commits/1k appends", "Fences", "Fences/fsync"},
	}
	for _, kind := range []string{"splitfs-posix", "splitfs-strict"} {
		for _, batched := range []bool{false, true} {
			r, err := RunGroupCommit(kind, files, appendsPerFile, blockBytes, batched)
			if err != nil {
				return nil, fmt.Errorf("%s batched=%v: %w", kind, batched, err)
			}
			mode := "serial"
			if batched {
				mode = "batched"
			}
			t.Rows = append(t.Rows, []string{
				kind, mode,
				fmt.Sprint(r.Commits), f2(r.CommitsPer1kAppends()),
				fmt.Sprint(r.Fences), f2(r.FencesPerFsync()),
			})
			t.AddMetric(fmt.Sprintf("%s_%s_commits_per_1k_appends", kind, mode),
				r.CommitsPer1kAppends(), "commits/1k-appends")
			t.AddMetric(fmt.Sprintf("%s_%s_fences_per_fsync", kind, mode),
				r.FencesPerFsync(), "fences/fsync")
		}
	}
	return t, nil
}
