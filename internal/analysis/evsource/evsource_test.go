package evsource_test

import (
	"testing"

	"splitfs/internal/analysis/analysistest"
	"splitfs/internal/analysis/evsource"
)

func TestEvSource(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), evsource.Analyzer, "evtest")
}
