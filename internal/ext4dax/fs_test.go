package ext4dax

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) (*pmem.Device, *FS) {
	t.Helper()
	dev := pmem.New(pmem.Config{
		Size: 64 << 20, Clock: sim.NewClock(),
		TrackPersistence: true, TrackWear: true,
	})
	fs, err := Mkfs(dev, Config{JournalBlocks: 64, MaxInodes: 512})
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs
}

func TestCreateWriteRead(t *testing.T) {
	_, fs := newFS(t)
	f, err := vfs.Create(fs, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, persistent memory")
	if n, err := f.Write(data); err != nil || n != len(data) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) || info.Blocks != 1 {
		t.Fatalf("info = %+v", info)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFlags(t *testing.T) {
	_, fs := newFS(t)
	if _, err := vfs.Open(fs, "/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	f, _ := vfs.Create(fs, "/f")
	f.Write([]byte("abcdef"))
	f.Close()
	if _, err := fs.OpenFile("/f", vfs.O_CREATE|vfs.O_EXCL|vfs.O_RDWR, 0644); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("O_EXCL on existing = %v", err)
	}
	// O_TRUNC empties the file.
	f2, err := fs.OpenFile("/f", vfs.O_RDWR|vfs.O_TRUNC, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := f2.Stat(); info.Size != 0 {
		t.Fatalf("O_TRUNC left size %d", info.Size)
	}
	f2.Close()
	// Writing a read-only handle fails.
	f3, _ := vfs.Open(fs, "/f")
	if _, err := f3.Write([]byte("x")); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("write on O_RDONLY = %v", err)
	}
	f3.Close()
}

func TestAppendMode(t *testing.T) {
	_, fs := newFS(t)
	f, _ := fs.OpenFile("/log", vfs.O_CREATE|vfs.O_WRONLY|vfs.O_APPEND, 0644)
	f.Write([]byte("one"))
	f.Seek(0, vfs.SeekSet) // O_APPEND ignores the offset for writes
	f.Write([]byte("two"))
	f.Close()
	got, err := vfs.ReadFile(fs, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "onetwo" {
		t.Fatalf("content = %q, want onetwo", got)
	}
}

func TestSequentialAppends128MBPattern(t *testing.T) {
	// The Table 1 workload shape: repeated 4 KB appends. Scaled to 2 MB.
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/appends")
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 512; i++ {
		blk[0] = byte(i)
		if _, err := f.Write(blk); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if info.Size != 512*sim.BlockSize {
		t.Fatalf("size = %d", info.Size)
	}
	got := make([]byte, sim.BlockSize)
	for _, i := range []int{0, 100, 511} {
		f.ReadAt(got, int64(i)*sim.BlockSize)
		if got[0] != byte(i) {
			t.Fatalf("block %d corrupted: %d", i, got[0])
		}
	}
	f.Close()
}

func TestOverwriteInPlaceNoMetadata(t *testing.T) {
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/ow")
	f.Write(make([]byte, 4*sim.BlockSize))
	f.Sync()
	commitsBefore := fs.Stats().Commits
	// In-place overwrites must not generate journal transactions.
	f.WriteAt([]byte("overwrite"), sim.BlockSize)
	f.Sync()
	// One commit can come from the fsync itself flushing the (empty) tx;
	// the overwrite alone must not have noted metadata.
	if got := fs.Stats().Commits; got != commitsBefore {
		t.Fatalf("in-place overwrite committed metadata: %d -> %d", commitsBefore, got)
	}
	got := make([]byte, 9)
	f.ReadAt(got, sim.BlockSize)
	if string(got) != "overwrite" {
		t.Fatalf("read %q", got)
	}
	f.Close()
}

func TestSparseWriteAndHoles(t *testing.T) {
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/sparse")
	// Write one block at 1 MB, leaving a hole before it.
	f.WriteAt([]byte("tail"), 1<<20)
	info, _ := f.Stat()
	if info.Size != 1<<20+4 {
		t.Fatalf("size = %d", info.Size)
	}
	if info.Blocks != 1 {
		t.Fatalf("hole allocated blocks: %d", info.Blocks)
	}
	// The hole reads as zeros.
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("hole not zero: %v", buf)
	}
	// Fill the hole; both pieces intact.
	f.WriteAt([]byte("head"), 0)
	b4 := make([]byte, 4)
	f.ReadAt(b4, 0)
	if string(b4) != "head" {
		t.Fatalf("head = %q", b4)
	}
	f.ReadAt(b4, 1<<20)
	if string(b4) != "tail" {
		t.Fatalf("tail = %q", b4)
	}
	f.Close()
}

func TestReadEOF(t *testing.T) {
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/eof")
	f.Write([]byte("abc"))
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != nil {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 3); err != io.EOF {
		t.Fatalf("read at EOF = %v, want io.EOF", err)
	}
	f.Close()
}

func TestTruncate(t *testing.T) {
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/t")
	f.Write(make([]byte, 3*sim.BlockSize))
	free := fs.FreeBlocks()
	if err := f.Truncate(sim.BlockSize); err != nil {
		t.Fatal(err)
	}
	// Freed blocks are released at the next journal commit (jbd2: no
	// reuse of blocks freed by a running transaction).
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free+2 {
		t.Fatalf("truncate freed %d blocks, want 2", fs.FreeBlocks()-free)
	}
	info, _ := f.Stat()
	if info.Size != sim.BlockSize || info.Blocks != 1 {
		t.Fatalf("after shrink: %+v", info)
	}
	// Grow produces a hole.
	f.Truncate(10 * sim.BlockSize)
	info, _ = f.Stat()
	if info.Size != 10*sim.BlockSize || info.Blocks != 1 {
		t.Fatalf("after grow: %+v", info)
	}
	f.Close()
}

func TestUnlinkFreesSpace(t *testing.T) {
	_, fs := newFS(t)
	// Warm the root directory's data block so it doesn't count as a leak.
	vfs.WriteFile(fs, "/warm", nil)
	free := fs.FreeBlocks()
	f, _ := vfs.Create(fs, "/big")
	f.Write(make([]byte, 64*sim.BlockSize))
	f.Close()
	if err := fs.Unlink("/big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // deferred frees apply at commit
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free {
		t.Fatalf("unlink leaked: free %d, want %d", fs.FreeBlocks(), free)
	}
	if _, err := fs.Stat("/big"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat after unlink = %v", err)
	}
	if err := fs.Unlink("/big"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("double unlink = %v", err)
	}
}

func TestMkdirTreeAndReadDir(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.Mkdir("/a", 0755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b", 0755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/f1", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/a/b/f2", []byte("2")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "f1" || ents[1].Name != "f2" {
		t.Fatalf("entries = %+v", ents)
	}
	if err := fs.Mkdir("/a", 0755); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir existing = %v", err)
	}
	if err := fs.Rmdir("/a/b"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	fs.Unlink("/a/b/f1")
	fs.Unlink("/a/b/f2")
	if err := fs.Rmdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/a"); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	_, fs := newFS(t)
	vfs.WriteFile(fs, "/src", []byte("payload"))
	fs.Mkdir("/d", 0755)
	if err := fs.Rename("/src", "/d/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/src"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("source still exists")
	}
	got, err := vfs.ReadFile(fs, "/d/dst")
	if err != nil || string(got) != "payload" {
		t.Fatalf("dst = %q, %v", got, err)
	}
	// Rename over an existing file replaces it and frees the target.
	vfs.WriteFile(fs, "/other", []byte("other"))
	free := fs.FreeBlocks()
	if err := fs.Rename("/d/dst", "/other"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // deferred frees apply at commit
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free+1 {
		t.Fatalf("replaced target not freed: %d -> %d", free, fs.FreeBlocks())
	}
	got, _ = vfs.ReadFile(fs, "/other")
	if string(got) != "payload" {
		t.Fatalf("after replace = %q", got)
	}
}

func TestManyExtentsOverflow(t *testing.T) {
	_, fs := newFS(t)
	// Force fragmentation: create interleaved files so extents cannot
	// merge, then verify a file with > inlineExtents extents round-trips
	// through mount.
	fa, _ := vfs.Create(fs, "/a")
	fb, _ := vfs.Create(fs, "/b")
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 64; i++ {
		blk[0] = byte(i)
		fa.Write(blk)
		fb.Write(blk) // interleaves allocation, fragmenting /a
	}
	fa.Sync()
	fb.Sync()
	fs.mu.Lock()
	nExt := len(fa.(*File).in.extents)
	fs.mu.Unlock()
	if nExt <= inlineExtents {
		t.Skipf("allocation pattern produced only %d extents", nExt)
	}
	fa.Close()
	fb.Close()
}

func TestPersistenceAcrossCrashAndMount(t *testing.T) {
	dev, fs := newFS(t)
	vfs.WriteFile(fs, "/data", bytes.Repeat([]byte("x"), 2*sim.BlockSize))
	fs.Mkdir("/dir", 0755)
	vfs.WriteFile(fs, "/dir/nested", []byte("nested-content"))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs2, "/dir/nested")
	if err != nil || string(got) != "nested-content" {
		t.Fatalf("nested after remount = %q, %v", got, err)
	}
	info, err := fs2.Stat("/data")
	if err != nil || info.Size != 2*sim.BlockSize {
		t.Fatalf("data after remount: %+v, %v", info, err)
	}
}

func TestCrashBeforeFsyncLosesUnsyncedMetadata(t *testing.T) {
	dev, fs := newFS(t)
	vfs.WriteFile(fs, "/durable", []byte("d")) // WriteFile syncs
	f, _ := vfs.Create(fs, "/volatile")        // never synced
	f.Write([]byte("v"))
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Stat("/durable"); err != nil {
		t.Fatalf("synced file lost: %v", err)
	}
	// The unsynced create may or may not survive depending on batching,
	// but the file system must mount and stay consistent either way.
	if _, err := fs2.Stat("/volatile"); err != nil && !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("inconsistent state for unsynced file: %v", err)
	}
}

func TestTable1AppendCostAnchor(t *testing.T) {
	dev, fs := newFS(t)
	f, _ := vfs.Create(fs, "/bench")
	// Warm up allocation path.
	f.Write(make([]byte, sim.BlockSize))
	clk := dev.Clock()
	before := clk.Now()
	const n = 64
	for i := 0; i < n; i++ {
		f.Write(make([]byte, sim.BlockSize))
	}
	per := (clk.Now() - before) / n
	// Paper Table 1: ext4 DAX 4 KB append = 9002 ns. Accept 25% slack.
	if per < 6700 || per > 11300 {
		t.Fatalf("ext4 DAX append = %d ns/op, want ~9002", per)
	}
	f.Close()
}

func TestTable6SyscallShape(t *testing.T) {
	dev, fs := newFS(t)
	clk := dev.Clock()
	meas := func(fn func()) int64 {
		s := clk.Now()
		fn()
		return clk.Now() - s
	}
	f, _ := vfs.Create(fs, "/m")
	f.Write(make([]byte, 16384))
	fsyncNs := meas(func() { f.Sync() })
	buf := make([]byte, 16384)
	readNs := meas(func() { f.ReadAt(buf, 0) })
	f.Close()
	var f2 vfs.File
	openNs := meas(func() { f2, _ = vfs.Open(fs, "/m") }) // open of existing file
	closeNs := meas(func() { f2.Close() })
	unlinkNs := meas(func() { fs.Unlink("/m") })
	// Shape from Table 6 (ext4 DAX column): open 1.54, close 0.34,
	// fsync 28.98, read(16K) 5.04, unlink 8.60 µs. Check ordering and
	// rough magnitude.
	if !(closeNs < openNs && openNs < readNs && readNs < unlinkNs && unlinkNs < fsyncNs) {
		t.Fatalf("syscall cost ordering wrong: open=%d close=%d fsync=%d read=%d unlink=%d",
			openNs, closeNs, fsyncNs, readNs, unlinkNs)
	}
	if openNs < 1000 || openNs > 2500 {
		t.Fatalf("open = %dns, want ~1540", openNs)
	}
	if fsyncNs < 20000 || fsyncNs > 40000 {
		t.Fatalf("fsync = %dns, want ~28980", fsyncNs)
	}
	if readNs < 3500 || readNs > 7000 {
		t.Fatalf("read 16K = %dns, want ~5040", readNs)
	}
}
