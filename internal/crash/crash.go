// Package crash is the crash-consistency exploration engine (§5.3 of the
// paper, grown into a persistence-event harness; see DESIGN.md): it runs
// a workload against SplitFS, injects a crash — at an operation boundary
// or at ANY numbered persistence event inside an operation, with torn
// unfenced cache lines — recovers, and checks the guarantee the mode
// advertises:
//
//   - POSIX: the file system mounts; the namespace equals the state after
//     some syscall prefix no older than the last journal commit; fsynced
//     content survives outside ranges rewritten since.
//   - Sync: every completed syscall is durable.
//   - Strict: every completed syscall is durable AND atomic — the durable
//     state must exactly equal the model just before or just after the
//     interrupted syscall.
//
// On top of single crashes the package offers full persistence-event
// sweeps (Explore), double-crash campaigns that crash again inside
// recovery itself, fault injection (skipping fences), and automatic
// workload minimization of violating campaigns (Minimize).
package crash

import (
	"fmt"
	"sort"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// Campaign configures a crash-injection run.
type Campaign struct {
	Mode splitfs.Mode
	// Ops is the workload.
	Ops []Op
	// CrashAfter is the operation index after which the crash is injected
	// (len(Ops) crashes after everything). Ignored when CrashAtEvent is
	// set.
	CrashAfter int
	// Seed drives torn-line injection.
	Seed uint64
	// CrashAtEvent, when positive, crashes at that absolute persistence
	// event instead of an operation boundary: the workload runs to
	// completion against a device whose durable image froze — torn lines
	// included — the moment event CrashAtEvent completed. Event numbers
	// come from a recording run's SysEvents (see Explore).
	CrashAtEvent int64
	// DoubleCrashEvent, when positive, injects a second crash at that
	// absolute persistence event during recovery from the first crash,
	// then recovers again — verifying that recovery itself is
	// crash-consistent and idempotent.
	DoubleCrashEvent int64
	// SkipFence is a fault-injection hook for harness self-tests: it
	// receives each fence's 1-based sequence number (counted from the
	// start of the workload) and suppresses the fence when it returns
	// true. The hook is removed before recovery runs.
	SkipFence func(seq int64) bool
	// DevBytes sizes the PM device (default 32 MB).
	DevBytes int64
	// Trace records the full persistence-event trace of the run.
	Trace bool
}

// Result reports what the checker verified.
type Result struct {
	Executed  int    // completed workload operations
	Replayed  int    // strict-mode log entries re-applied by recovery
	Violation string // empty when the guarantee held

	// SysEvents[i] is the device's persistence-event counter after the
	// i-th syscall of the workload; SysEvents[0] is the post-setup
	// baseline. Crashable events for this workload are
	// (SysEvents[0], SysEvents[len-1]].
	SysEvents []int64
	// CrashSys / Interrupted locate the injected crash: CrashSys syscalls
	// completed, and Interrupted means the crash hit inside the next one.
	CrashSys    int
	Interrupted bool
	// RecoveryStart/End bound the persistence events of the (first)
	// recovery — the window double-crash campaigns sweep.
	RecoveryStart, RecoveryEnd int64
	// DoubleFired reports whether the armed double-crash point was
	// actually reached inside recovery.
	DoubleFired bool
	// Trace is the recorded event trace (Campaign.Trace).
	Trace []pmem.Event
}

// env is one campaign's private simulated machine.
type env struct {
	clk *sim.Clock
	dev *pmem.Device
	cfg splitfs.Config
	// journalReplayed is set by recover1: K-Split journal transactions
	// replayed during the last mount (harness diagnostics).
	journalReplayed int
}

const defaultDevBytes = 32 << 20

func newEnv(mode splitfs.Mode, devBytes int64) (*env, *splitfs.FS, error) {
	if devBytes == 0 {
		devBytes = defaultDevBytes
	}
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: devBytes, Clock: clk, TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 512})
	if err != nil {
		return nil, nil, err
	}
	cfg := splitfs.Config{Mode: mode, StagingFiles: 4,
		StagingFileBytes: 1 << 20, OpLogBytes: 256 << 10}
	fs, err := splitfs.New(kfs, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &env{clk: clk, dev: dev, cfg: cfg}, fs, nil
}

// runner executes compiled syscalls, tracking open handles the way
// compile assumed. Handles dropped by unlink/rename without a close stay
// open (orphan inodes) until the simulated process dies with the crash.
// The runner drives any vfs.FileSystem, so the differential
// backend-equivalence suite feeds one trace through every backend.
type runner struct {
	fs      vfs.FileSystem
	handles map[string]vfs.File
	orphans []vfs.File
}

func (r *runner) apply(sc syscall) error {
	switch sc.kind {
	case sysOpen:
		h, err := r.fs.OpenFile(sc.path, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			return err
		}
		r.handles[sc.path] = h
		return nil
	case sysWrite:
		h := r.handles[sc.path]
		off := sc.off
		if off < 0 {
			info, err := h.Stat()
			if err != nil {
				return err
			}
			off = info.Size
		}
		_, err := h.WriteAt(sc.data, off)
		return err
	case sysFsync:
		return r.handles[sc.path].Sync()
	case sysClose:
		h := r.handles[sc.path]
		delete(r.handles, sc.path)
		return h.Close()
	case sysUnlink:
		if h, ok := r.handles[sc.path]; ok {
			// Unlink-while-open: the handle stays usable (orphan inode);
			// it is never closed, so the orphan lives until the crash.
			r.orphans = append(r.orphans, h)
			delete(r.handles, sc.path)
		}
		return r.fs.Unlink(sc.path)
	case sysRename:
		if h2, ok := r.handles[sc.path2]; ok {
			r.orphans = append(r.orphans, h2) // replaced target becomes an orphan
			delete(r.handles, sc.path2)
		}
		if err := r.fs.Rename(sc.path, sc.path2); err != nil {
			return err
		}
		if h, ok := r.handles[sc.path]; ok {
			r.handles[sc.path2] = h
			delete(r.handles, sc.path)
		}
		return nil
	case sysTruncate:
		return r.handles[sc.path].Truncate(sc.size)
	case sysMkdir:
		return r.fs.Mkdir(sc.path, 0755)
	case sysSyncall:
		// Group sync: splitfs drains every open file through one
		// group-committed relink batch. Backends without a SyncAll get
		// the equivalent sequence of per-handle fsyncs in path order.
		if sa, ok := r.fs.(interface{ SyncAll() error }); ok {
			return sa.SyncAll()
		}
		paths := make([]string, 0, len(r.handles))
		for p := range r.handles {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if err := r.handles[p].Sync(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("crash: unknown syscall %v", sc.kind)
	}
}

// Run executes the campaign and verifies the mode's guarantee.
func Run(c Campaign) (*Result, error) {
	env, fs, err := newEnv(c.Mode, c.DevBytes)
	if err != nil {
		return nil, err
	}
	sys := compile(c.Ops)
	stopSys := len(sys)
	if c.CrashAtEvent == 0 {
		stop := c.CrashAfter
		if stop > len(c.Ops) {
			stop = len(c.Ops)
		}
		stopSys = sysPrefix(sys, stop)
	}
	m := buildModel(c.Mode, sys)
	res := &Result{}

	if c.Trace {
		env.dev.SetTracing(true)
	}
	if c.SkipFence != nil {
		env.dev.SetFenceFilter(c.SkipFence)
	}
	if c.CrashAtEvent > 0 {
		env.dev.ArmCrash(c.CrashAtEvent, sim.NewRNG(mix(c.Seed, uint64(c.CrashAtEvent))))
	}

	r := &runner{fs: fs, handles: map[string]vfs.File{}}
	res.SysEvents = append(res.SysEvents, env.dev.Events())
	for i := 0; i < stopSys; i++ {
		if err := r.apply(sys[i]); err != nil {
			return nil, fmt.Errorf("op %d (%v %s): %w", sys[i].opIdx, sys[i].kind, sys[i].path, err)
		}
		res.SysEvents = append(res.SysEvents, env.dev.Events())
	}
	if c.Trace {
		res.Trace = env.dev.Trace()
		env.dev.SetTracing(false)
	}
	env.dev.SetFenceFilter(nil)

	// Locate the crash point in syscall terms.
	crashSys, interrupted := stopSys, false
	if c.CrashAtEvent > 0 && env.dev.CrashFired() {
		crashSys = 0
		for i, ev := range res.SysEvents {
			if ev <= c.CrashAtEvent {
				crashSys = i
			}
		}
		interrupted = res.SysEvents[crashSys] != c.CrashAtEvent
	}
	res.CrashSys, res.Interrupted = crashSys, interrupted
	for i := 0; i < crashSys; i++ {
		if sys[i].last {
			res.Executed++
		}
	}

	// Crash with torn unfenced lines (ignored if the armed point already
	// froze the image), then recover — possibly crashing again inside
	// recovery itself.
	if err := env.dev.Crash(sim.NewRNG(c.Seed)); err != nil {
		return nil, err
	}
	if c.DoubleCrashEvent > 0 {
		env.dev.ArmCrash(c.DoubleCrashEvent, sim.NewRNG(mix(c.Seed, uint64(c.DoubleCrashEvent))^0xD0))
	}
	res.RecoveryStart = env.dev.Events()
	fs2, report, vio := recover1(env)
	res.RecoveryEnd = env.dev.Events()
	if report != nil {
		res.Replayed = report.Replayed
	}
	if vio != "" {
		res.Violation = vio
		return res, nil
	}
	if c.DoubleCrashEvent > 0 {
		res.DoubleFired = env.dev.CrashFired()
		if err := env.dev.Crash(nil); err != nil {
			return nil, err
		}
		fs2, _, vio = recover1(env)
		if vio != "" {
			res.Violation = "double-crash: " + vio
			return res, nil
		}
	}

	dur, err := captureDurable(fs2)
	if err != nil {
		res.Violation = fmt.Sprintf("%v: recovered image unreadable: %v", c.Mode, err)
		return res, nil
	}
	res.Violation = checkGuarantee(m, crashSys, interrupted, dur)
	return res, nil
}

// recover1 performs one mount+recovery pass, mapping failures to
// violations (a crash must never leave an unmountable file system).
// Panics inside mount or recovery are violations too — a corrupt image
// crashing the recovery code (found by the served fence-fault self-test:
// an allocator double free in the staging-pool rebuild) must be recorded
// and minimized like any other breach, not kill the sweep process.
func recover1(env *env) (fs *splitfs.FS, report *splitfs.RecoveryReport, vio string) {
	defer func() {
		if r := recover(); r != nil {
			fs, report = nil, nil
			vio = fmt.Sprintf("recovery panicked: %v", r)
		}
	}()
	kfs, replayedTx, err := ext4dax.Mount(env.dev, ext4dax.Config{})
	if err != nil {
		return nil, nil, fmt.Sprintf("remount failed: %v", err)
	}
	env.journalReplayed = replayedTx
	fs, report, err = splitfs.RecoverFS(kfs, env.cfg)
	if err != nil {
		return nil, nil, fmt.Sprintf("recovery failed: %v", err)
	}
	return fs, report, ""
}

// mix is a splitmix64-style hash for deriving independent seeds.
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
