package logfs

import (
	"io"
	"sync"

	"splitfs/internal/alloc"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// File is an open logfs file handle.
type File struct {
	fs   *FS
	in   *inode
	flag int
	path string

	mu     sync.Mutex
	pos    int64
	closed bool
}

var _ vfs.File = (*File)(nil)

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

// Read reads at the handle offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Write writes at the handle offset (EOF with O_APPEND).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.pos
	if f.flag&vfs.O_APPEND != 0 {
		off = f.in.size
	}
	n, err := f.WriteAt(p, off)
	f.pos = off + int64(n)
	return n, err
}

// Seek implements vfs.File.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case vfs.SeekSet:
	case vfs.SeekCur:
		base = f.pos
	case vfs.SeekEnd:
		base = f.in.size
	default:
		return 0, vfs.ErrInval
	}
	if base+offset < 0 {
		return 0, vfs.ErrInval
	}
	f.pos = base + offset
	return f.pos, nil
}

// ReadAt is pread(2).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !vfs.Readable(f.flag) {
		return 0, vfs.ErrInval
	}
	fs.trap()
	fs.clk.Charge(sim.CatCPU, fs.prof.ReadPathCPU)
	fs.stats.DataReads++
	in := f.in
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if off >= in.size {
		return 0, io.EOF
	}
	if m := in.size - off; int64(len(p)) > m {
		p = p[:m]
	}
	n := 0
	for n < len(p) {
		cur := off + int64(n)
		logical := cur / blockSize
		inBlk := cur % blockSize
		devOff, contig, ok := fs.lookup(in, logical)
		var span int64
		if ok {
			span = contig*blockSize - inBlk
		} else {
			span = blockSize - inBlk // hole: zeros
		}
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		if ok {
			fs.dev.ReadIntoUser(p[n:n+int(span)], devOff+inBlk, sim.CatPMData)
		} else {
			for i := int64(0); i < span; i++ {
				p[n+int(i)] = 0
			}
		}
		n += int(span)
	}
	return n, nil
}

// WriteAt is pwrite(2). In COW mode (NOVA-strict) the covered blocks are
// rewritten into freshly allocated blocks and remapped with a log entry,
// making the write atomic; otherwise data is written in place and the
// write is synchronous but not atomic.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return 0, vfs.ErrReadOnly
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	fs.trap()
	fs.clk.Charge(sim.CatCPU, fs.prof.WritePathCPU)
	fs.stats.DataWrites++
	if len(p) == 0 {
		return 0, nil
	}
	if fs.prof.COW {
		return fs.writeCOW(f.in, p, off)
	}
	return fs.writeInPlace(f.in, p, off)
}

// writeInPlace writes data into existing blocks, allocating for holes and
// appends. Caller holds fs.mu.
func (fs *FS) writeInPlace(in *inode, p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	var newMaps []fext
	n := 0
	for n < len(p) {
		cur := off + int64(n)
		logical := cur / blockSize
		inBlk := cur % blockSize
		devOff, contig, ok := fs.lookup(in, logical)
		if !ok {
			need := (end - cur + inBlk + blockSize - 1) / blockSize
			if holeEnd := nextMappedAt(in, logical); holeEnd-logical < need {
				need = holeEnd - logical
			}
			e, _, err := fs.bmp.AllocExtent(need)
			if err != nil {
				if n > 0 {
					break
				}
				return 0, err
			}
			insertExt(in, logical, e)
			newMaps = append(newMaps, fext{logical: logical, phys: e})
			// Zero the uncovered edges of fresh blocks.
			base := fs.bmp.ExtentOffset(e)
			if inBlk > 0 {
				fs.dev.StoreNT(base, make([]byte, inBlk), sim.CatPMData)
			}
			lastByte := mini(end, (logical+e.Len)*blockSize)
			if tail := (logical+e.Len)*blockSize - lastByte; tail > 0 {
				fs.dev.StoreNT(base+e.Len*blockSize-tail, make([]byte, tail), sim.CatPMData)
			}
			devOff, contig, _ = fs.lookup(in, logical)
		}
		span := contig*blockSize - inBlk
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		fs.dev.StoreNT(devOff+inBlk, p[n:n+int(span)], sim.CatPMData)
		n += int(span)
	}
	if fs.prof.SyncData {
		fs.dev.Fence()
	}
	grew := end > in.size
	if grew {
		in.size = end
	}
	switch {
	case len(newMaps) > 0:
		// One record per new mapping (a single extent in the common case;
		// several only when filling fragmented holes).
		for _, m := range newMaps {
			fs.appendRecord(encWrite(in.ino, in.size, m.logical, []alloc.Extent{m.phys}))
		}
	case grew:
		fs.appendRecord(encSetSize(in.ino, in.size))
	default:
		// Pure in-place overwrite: PMFS/NOVA-relaxed still log the inode
		// update (mtime/size metadata) — this is the per-inode log update
		// the paper blames for NOVA-Relaxed's TPCC overhead (§5.7).
		fs.appendRecord(encSetSize(in.ino, in.size))
	}
	return n, nil
}

// writeCOW implements NOVA-strict's copy-on-write write path: fresh
// blocks for the whole covered range, edge bytes copied from the old
// blocks, data written NT, fence, then one log entry remaps — atomic and
// synchronous. Caller holds fs.mu.
func (fs *FS) writeCOW(in *inode, p []byte, off int64) (int, error) {
	fs.clk.Charge(sim.CatCPU, sim.NovaCOWNs)
	end := off + int64(len(p))
	firstBlk := off / blockSize
	lastBlk := (end + blockSize - 1) / blockSize
	count := lastBlk - firstBlk
	exts, _, err := fs.bmp.Alloc(count)
	if err != nil {
		return 0, err
	}
	// Assemble the new content block-run by block-run.
	headPad := off - firstBlk*blockSize
	tailPad := lastBlk*blockSize - end
	// Read the edge bytes that the write does not cover from the old
	// mapping (they must survive).
	var headBuf, tailBuf []byte
	if headPad > 0 {
		headBuf = make([]byte, headPad)
		fs.readOld(in, headBuf, firstBlk*blockSize)
	}
	if tailPad > 0 {
		tailBuf = make([]byte, tailPad)
		fs.readOld(in, tailBuf, end)
	}
	// Write new blocks.
	content := make([]byte, count*blockSize)
	copy(content, headBuf)
	copy(content[headPad:], p)
	copy(content[count*blockSize-tailPad:], tailBuf)
	pos := int64(0)
	for _, e := range exts {
		fs.dev.StoreNT(fs.bmp.ExtentOffset(e), content[pos:pos+e.Len*blockSize], sim.CatPMData)
		pos += e.Len * blockSize
	}
	fs.dev.Fence()
	// Remap atomically with one log entry; free the replaced blocks.
	old := removeRange(in, firstBlk, count)
	place := firstBlk
	for _, e := range exts {
		insertExt(in, place, e)
		place += e.Len
	}
	if end > in.size {
		in.size = end
	}
	fs.appendRecord(encWrite(in.ino, in.size, firstBlk, exts))
	for _, e := range old {
		fs.bmp.Free(e)
	}
	return len(p), nil
}

// readOld reads existing file content (for COW edge preservation),
// treating holes as zeros. Caller holds fs.mu.
func (fs *FS) readOld(in *inode, p []byte, off int64) {
	if off >= in.size {
		return
	}
	if m := in.size - off; int64(len(p)) > m {
		p = p[:m]
	}
	n := 0
	for n < len(p) {
		cur := off + int64(n)
		logical := cur / blockSize
		inBlk := cur % blockSize
		devOff, contig, ok := fs.lookup(in, logical)
		var span int64
		if ok {
			span = contig*blockSize - inBlk
		} else {
			span = blockSize - inBlk
		}
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		if ok {
			fs.dev.ReadAt(p[n:n+int(span)], devOff+inBlk, sim.CatPMData)
		}
		n += int(span)
	}
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return vfs.ErrReadOnly
	}
	fs.trap()
	fs.stats.MetaOps++
	fs.truncateLocked(f.in, size)
	return nil
}

// Sync is fsync(2). Operations are already synchronous in these file
// systems, so fsync only fences outstanding stores.
func (f *File) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	fs.trap()
	fs.dev.Fence()
	return nil
}

// Close implements vfs.File.
func (f *File) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	f.fs.trap()
	return nil
}

// Stat implements vfs.File.
func (f *File) Stat() (vfs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	f.fs.trap()
	return f.fs.infoOf(f.in), nil
}
