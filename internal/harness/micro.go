package harness

import (
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// This file reproduces the micro-benchmark artifacts: Table 1 (append
// software overhead), Table 2 (PM device characteristics), Table 6
// (per-syscall latency), Figure 3 (technique breakdown), and Figure 4
// (IO-pattern comparison).

const microDev = 256 << 20

func init() {
	register("table1", "Software overhead of a 4 KB append (paper Table 1)", table1)
	register("table2", "PM device performance characteristics (paper Table 2)", table2)
	register("table6", "SplitFS system call latencies in µs (paper Table 6)", table6)
	register("fig3", "Contribution of each technique (paper Figure 3)", fig3)
	register("fig4", "Throughput on five IO patterns, by guarantee level (paper Figure 4)", fig4)
}

// appendBench performs n sequential 4 KB appends and returns per-op total
// and per-op software overhead in ns.
func appendBench(kind string, n int) (total, overhead int64, err error) {
	e, err := newEnv(kind, microDev)
	if err != nil {
		return 0, 0, err
	}
	f, err := vfs.Create(e.fs, "/append.dat")
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	blk := make([]byte, sim.BlockSize)
	// Warm one append so staging chunks and allocator hints exist.
	if _, err := f.Write(blk); err != nil {
		return 0, 0, err
	}
	d, err := e.measure(func() error {
		for i := 0; i < n; i++ {
			if _, err := f.Write(blk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return d.Total / int64(n), d.Overhead() / int64(n), nil
}

func table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Software overhead of appending a 4 KB block",
		Note:    "paper: ext4-DAX 9002/8331ns 1241%, PMFS 4150/3479 518%, NOVA-strict 3021/2350 350%, SplitFS-strict 1251/580 86%, SplitFS-POSIX 1160/488 73% (671ns raw write)",
		Headers: []string{"File system", "Append (ns)", "Overhead (ns)", "Overhead (%)"},
	}
	const n = 2048 // 8 MB of appends (paper: 128 MB)
	for _, kind := range []string{"ext4-dax", "pmfs", "nova-strict", "splitfs-strict", "splitfs-posix"} {
		total, overhead, err := appendBench(kind, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		data := total - overhead
		t.Rows = append(t.Rows, []string{
			kind,
			fmt.Sprint(total),
			fmt.Sprint(overhead),
			pct(float64(overhead) / float64(data)),
		})
	}
	return t, nil
}

func table2() (*Table, error) {
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: clk})
	t := &Table{
		ID:      "table2",
		Title:   "PM device performance (device-level micro-ops)",
		Note:    "paper (Izraelevitz et al.): seq read 169ns, rand read 305ns, store+flush+fence 91ns, read BW 39.4GB/s, write BW ~6.9GB/s effective single-stream",
		Headers: []string{"Property", "Measured", "Paper"},
	}
	buf := make([]byte, sim.CacheLine)
	meas := func(fn func()) int64 {
		before := clk.Now()
		fn()
		return clk.Now() - before
	}
	// Sequential read latency: second of two adjacent single-line reads.
	dev.ReadAt(buf, 0, sim.CatPMData)
	seq := meas(func() { dev.ReadAt(buf, sim.CacheLine, sim.CatPMData) })
	rnd := meas(func() { dev.ReadAt(buf, 32<<20, sim.CatPMData) })
	sff := meas(func() { dev.Persist(4096, buf, sim.CatPMData) })
	big := make([]byte, 16<<20)
	rdNs := meas(func() { dev.ReadAt(big, 0, sim.CatPMData) })
	wrNs := meas(func() { dev.StoreNT(16<<20, big, sim.CatPMData); dev.Fence() })
	gbs := func(bytes int, ns int64) string {
		return fmt.Sprintf("%.1f GB/s", float64(bytes)/float64(ns))
	}
	t.Rows = [][]string{
		{"Sequential read latency", fmt.Sprintf("%d ns", seq), "169 ns"},
		{"Random read latency", fmt.Sprintf("%d ns", rnd), "305 ns"},
		{"Store + flush + fence", fmt.Sprintf("%d ns", sff), "91 ns"},
		{"Read bandwidth", gbs(len(big), rdNs), "39.4 GB/s"},
		{"Write bandwidth (single stream)", gbs(len(big), wrNs), "~6.9 GB/s"},
	}
	return t, nil
}

// table6 runs the Varmail-like syscall sequence of §5.4 on each SplitFS
// mode and on ext4 DAX.
func table6() (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "System call latency (µs)",
		Note:    "paper rows (strict/sync/posix/ext4): open 2.09/2.08/1.82/1.54 close .78/.69/.69/.34 append 3.14/3.09/2.84/11.05 fsync 6.85/6.80/6.80/28.98 read 4.57/4.53/4.53/5.04 unlink 14.60/13.56/14.33/8.60",
		Headers: []string{"Syscall", "Strict", "Sync", "POSIX", "ext4 DAX"},
	}
	type col = map[string]int64
	cols := make([]col, 0, 4)
	for _, kind := range []string{"splitfs-strict", "splitfs-sync", "splitfs-posix", "ext4-dax"} {
		e, err := newEnv(kind, microDev)
		if err != nil {
			return nil, err
		}
		c := col{}
		meas := func(name string, fn func() error) error {
			d, err := e.measure(fn)
			if err != nil {
				return fmt.Errorf("%s %s: %w", kind, name, err)
			}
			c[name] += d.Total
			return nil
		}
		// §5.4: create, 4 appends of 4 KB each + fsync, close; open, read
		// 16 KB, close; open+close; unlink. The create is measured apart
		// from the reopens: Table 6's open reflects warm opens ("opening
		// a file that we recently closed" is the cheap case, §5.4).
		var f vfs.File
		if err = meas("create", func() error { f, err = vfs.Create(e.fs, "/mail"); return err }); err != nil {
			return nil, err
		}
		blk := make([]byte, 4096)
		for i := 0; i < 4; i++ {
			if err = meas("append", func() error { _, err := f.Write(blk); return err }); err != nil {
				return nil, err
			}
			if err = meas("fsync", func() error { return f.Sync() }); err != nil {
				return nil, err
			}
		}
		meas("close", func() error { return f.Close() })
		meas("open", func() error { f, err = e.fs.OpenFile("/mail", vfs.O_RDWR, 0); return err })
		buf := make([]byte, 16384)
		meas("read", func() error { _, err := f.ReadAt(buf, 0); return err })
		meas("close", func() error { return f.Close() })
		meas("open", func() error { f, err = e.fs.OpenFile("/mail", vfs.O_RDWR, 0); return err })
		meas("close", func() error { return f.Close() })
		if err = meas("unlink", func() error { return e.fs.Unlink("/mail") }); err != nil {
			return nil, err
		}
		// Averages over repeats.
		c["open"] /= 2
		c["close"] /= 3
		c["append"] /= 4
		c["fsync"] /= 4
		cols = append(cols, c)
	}
	for _, sys := range []string{"open", "close", "append", "fsync", "read", "unlink"} {
		row := []string{sys}
		for _, c := range cols {
			row = append(row, us(c[sys]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig3 shows how each technique contributes: ext4 DAX baseline, the split
// architecture alone, + staging, + relink, on sequential 4 KB overwrites
// and appends with an fsync every 10 operations.
func fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Technique breakdown: throughput relative to ext4 DAX",
		Note:    "paper: split architecture >2x on overwrites; staging ~2x on appends; relink a further ~2.5x (5x total over split-arch appends)",
		Headers: []string{"Configuration", "Seq 4K overwrites (Kops/s)", "rel", "4K appends (Kops/s)", "rel"},
	}
	type cfg struct {
		name  string
		kind  string
		tweak func(*splitfs.Config)
	}
	cfgs := []cfg{
		{"ext4 DAX", "ext4-dax", nil},
		{"+ split architecture", "splitfs-posix", func(c *splitfs.Config) { c.DisableStaging = true }},
		{"+ staging (no relink)", "splitfs-posix", func(c *splitfs.Config) { c.DisableRelink = true }},
		{"+ relink (full SplitFS)", "splitfs-posix", nil},
	}
	const nOps = 2048
	var base [2]float64
	for i, c := range cfgs {
		var fs vfs.FileSystem
		var clk *sim.Clock
		if c.kind == "ext4-dax" {
			e, err := newEnv(c.kind, microDev)
			if err != nil {
				return nil, err
			}
			fs, clk = e.fs, e.clk
		} else {
			e, err := newEnv("ext4-dax", microDev)
			if err != nil {
				return nil, err
			}
			scfg := splitfs.Config{StagingFiles: 8, StagingFileBytes: 8 << 20}
			if c.tweak != nil {
				c.tweak(&scfg)
			}
			sfs, err := splitfs.New(fsAsExt4(e), scfg)
			if err != nil {
				return nil, err
			}
			fs, clk = sfs, e.clk
		}
		thr := [2]float64{}
		// Overwrites over a pre-written file.
		f, err := vfs.Create(fs, "/ow")
		if err != nil {
			return nil, err
		}
		blk := make([]byte, sim.BlockSize)
		for i := 0; i < 64; i++ {
			f.Write(blk)
		}
		f.Sync()
		before := clk.Now()
		for i := 0; i < nOps; i++ {
			f.WriteAt(blk, int64(i%64)*sim.BlockSize)
			if i%10 == 9 {
				f.Sync()
			}
		}
		thr[0] = kops(nOps, clk.Now()-before)
		f.Close()
		// Appends.
		g, err := vfs.Create(fs, "/ap")
		if err != nil {
			return nil, err
		}
		before = clk.Now()
		for i := 0; i < nOps; i++ {
			g.Write(blk)
			if i%10 == 9 {
				g.Sync()
			}
		}
		thr[1] = kops(nOps, clk.Now()-before)
		g.Close()
		if i == 0 {
			base = thr
		}
		t.Rows = append(t.Rows, []string{
			c.name, f1(thr[0]), xf(thr[0] / base[0]), f1(thr[1]), xf(thr[1] / base[1]),
		})
	}
	return t, nil
}

// fig4 compares all file systems on the five IO patterns, grouped by
// guarantee level as in the paper.
func fig4() (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "Throughput (Kops/s) on 4 KB IO patterns over a 16 MB file",
		Note:    "paper (normalized): SplitFS-POSIX up to 7.85x ext4 on appends, 1.27x on seq reads; SplitFS-sync up to 2.89x PMFS on writes; SplitFS-strict up to 5.8x NOVA on random writes",
		Headers: []string{"Group", "File system", "seq read", "rand read", "seq write", "rand write", "append"},
	}
	const fileBlocks = 4096 // 16 MB
	const nOps = 2048
	groups := []struct {
		name  string
		kinds []string
	}{
		{"POSIX", posixKinds},
		{"sync", syncKinds},
		{"strict", strictKinds},
	}
	for _, g := range groups {
		for _, kind := range g.kinds {
			e, err := newEnv(kind, 512<<20)
			if err != nil {
				return nil, err
			}
			f, err := vfs.Create(e.fs, "/data")
			if err != nil {
				return nil, err
			}
			blk := make([]byte, sim.BlockSize)
			for i := 0; i < fileBlocks; i++ {
				if _, err := f.Write(blk); err != nil {
					return nil, fmt.Errorf("%s fill: %w", kind, err)
				}
			}
			if err := f.Sync(); err != nil {
				return nil, err
			}
			rng := sim.NewRNG(3)
			row := []string{g.name, kind}
			patterns := []func(i int) error{
				func(i int) error { // seq read
					_, err := f.ReadAt(blk, int64(i%fileBlocks)*sim.BlockSize)
					return err
				},
				func(i int) error { // rand read
					_, err := f.ReadAt(blk, rng.Int63n(fileBlocks)*sim.BlockSize)
					return err
				},
				func(i int) error { // seq write (overwrite)
					_, err := f.WriteAt(blk, int64(i%fileBlocks)*sim.BlockSize)
					return err
				},
				func(i int) error { // rand write
					_, err := f.WriteAt(blk, rng.Int63n(fileBlocks)*sim.BlockSize)
					return err
				},
				nil, // append: separate file below
			}
			for pi, p := range patterns {
				if p == nil {
					g2, err := vfs.Create(e.fs, "/appends")
					if err != nil {
						return nil, err
					}
					before := e.clk.Now()
					for i := 0; i < nOps; i++ {
						if _, err := g2.Write(blk); err != nil {
							return nil, fmt.Errorf("%s append: %w", kind, err)
						}
					}
					g2.Sync()
					row = append(row, f1(kops(nOps, e.clk.Now()-before)))
					g2.Close()
					continue
				}
				before := e.clk.Now()
				for i := 0; i < nOps; i++ {
					if err := p(i); err != nil {
						return nil, fmt.Errorf("%s pattern %d: %w", kind, pi, err)
					}
				}
				// Strict-mode writes are synchronous and atomic per
				// operation (via the op log); the deferred relink runs at
				// close, outside the pattern, exactly as NOVA's per-op
				// logging is measured.
				row = append(row, f1(kops(nOps, e.clk.Now()-before)))
				if pi >= 2 {
					f.Sync() // settle staged state between patterns
				}
			}
			f.Close()
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// fsAsExt4 extracts the ext4dax FS from an env built with kind
// "ext4-dax".
func fsAsExt4(e *env) *ext4dax.FS { return e.fs.(*ext4dax.FS) }
