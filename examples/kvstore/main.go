// kvstore: run the LevelDB-like LSM store over SplitFS and ext4 DAX and
// compare the simulated cost of a small YCSB-A-style workload — the
// paper's headline application scenario (§5.8).
package main

import (
	"fmt"
	"log"

	root "splitfs"
	"splitfs/internal/apps/lsmkv"
	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
	"splitfs/internal/wl/ycsb"
)

func run(name string, fs vfs.FileSystem, clk *sim.Clock) {
	db, err := lsmkv.Open(fs, lsmkv.Options{MemtableBytes: 512 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	cfg := ycsb.Config{Records: 500, Operations: 1000, ValueBytes: 500}
	if _, err := ycsb.Load(db, cfg); err != nil {
		log.Fatal(err)
	}
	before := clk.Now()
	st, err := ycsb.Run(db, ycsb.A, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := clk.Now() - before
	fmt.Printf("%-14s YCSB-A: %d ops in %.2f ms simulated -> %.1f Kops/s\n",
		name, st.Ops(), float64(elapsed)/1e6,
		float64(st.Ops())/(float64(elapsed)/1e9)/1e3)
}

func main() {
	// SplitFS (POSIX mode).
	stack, err := root.NewStack(root.StackConfig{DeviceBytes: 512 << 20})
	if err != nil {
		log.Fatal(err)
	}
	run("splitfs-posix", stack.FS, stack.Clock)

	// ext4 DAX baseline.
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: clk})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 4096})
	if err != nil {
		log.Fatal(err)
	}
	run("ext4-dax", kfs, clk)
}
