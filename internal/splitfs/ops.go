package splitfs

import (
	"sort"

	"splitfs/internal/vfs"
)

// Metadata operations pass through to K-Split (§3.3), with U-Split
// bookkeeping layered on top: attribute-cache maintenance, mmap-cache
// teardown on unlink, and strict-mode operation logging.

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string, perm uint32) error {
	fs.bookkeep()
	if err := fs.kfs.Mkdir(path, perm); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Unlink implements vfs.FileSystem. Cached mappings are unmapped — the
// reason unlink is U-Split's most expensive call (Table 6: 14.60 µs
// strict vs 8.60 µs on ext4 DAX).
func (fs *FS) Unlink(path string) error {
	defer fs.lockStrict()()
	fs.bookkeep()
	clean := vfs.CleanPath(path)
	info, statErr := fs.kfs.Stat(clean)
	if fs.olog != nil && statErr == nil {
		fs.appendLog(nil, encMetaEntry('u', info.Ino))
	}
	if err := fs.kfs.Unlink(clean); err != nil {
		return err
	}
	// All cache teardown happens after the kernel unlink, and the attrs
	// delete comes after retireIno's fs.mu acquisition. Ordering is what
	// makes a racing OpenFile harmless: its Linked() check and its
	// files/attrs inserts share one fs.mu critical section, so the insert
	// either precedes retireIno (and is swept by it and by the attrs
	// delete below) or follows it — in which case the open observed the
	// dead inode, Linked() failed, and nothing was cached. Mappings get
	// the same treatment from mmapCache.get's insert-time Linked() check.
	// So no stale description, attribute, or mapping can survive to serve
	// a recycled inode number.
	if statErr == nil {
		// Unlinked while open: the description leaves the table but keeps
		// its staged overlay — the orphan inode stays readable and
		// writable through open handles (POSIX), and the close-time
		// relink into it is harmless because its blocks free with it.
		fs.retireIno(info.Ino)
	}
	fs.amu.Lock()
	delete(fs.attrs, clean)
	fs.amu.Unlock()
	if statErr == nil {
		fs.mmaps.drop(info.Ino)
	}
	return fs.syncMeta()
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.bookkeep()
	clean := vfs.CleanPath(path)
	if err := fs.kfs.Rmdir(clean); err != nil {
		return err
	}
	// Drop the cached attributes after the kernel rmdir (the same
	// ordering rule Unlink follows), or a later Stat would revive the
	// removed directory from the cache. Directories have no ofile or
	// mapping, so the attrs entry is the only cache to sweep.
	fs.amu.Lock()
	delete(fs.attrs, clean)
	fs.amu.Unlock()
	return fs.syncMeta()
}

// retireIno removes the open-file table entry for an inode whose on-disk
// inode is being freed (unlink, rename-over-target). Open handles keep
// working through their ofile pointer; the table must stop resolving the
// ino so that a recycled inode number gets a fresh description instead of
// the stale one (whose kernel handle points at the freed inode). Returns
// the retired ofile, if any.
func (fs *FS) retireIno(ino uint64) *ofile {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of := fs.files[ino]
	if of != nil {
		delete(fs.files, ino)
	}
	return of
}

// Rename implements vfs.FileSystem. Rename is one of the uncommon
// operations needing multiple log entries in strict mode (§3.3).
func (fs *FS) Rename(oldPath, newPath string) error {
	defer fs.lockStrict()()
	fs.bookkeep()
	oldClean, newClean := vfs.CleanPath(oldPath), vfs.CleanPath(newPath)
	// One stat per endpoint; every later step reuses these.
	oldInfo, oldErr := fs.kfs.Stat(oldClean)
	newInfo, newErr := fs.kfs.Stat(newClean)
	replacing := newErr == nil && (oldErr != nil || newInfo.Ino != oldInfo.Ino)
	// Flush staged state of both endpoints so the kernel sees final
	// contents.
	flush := func(ino uint64) error {
		fs.mu.RLock()
		of := fs.files[ino]
		fs.mu.RUnlock()
		if of == nil {
			return nil
		}
		of.mu.Lock()
		defer of.mu.Unlock()
		if len(of.staged) == 0 {
			return nil
		}
		return fs.relinkLocked(of)
	}
	if oldErr == nil {
		if err := flush(oldInfo.Ino); err != nil {
			return err
		}
	}
	if replacing {
		if err := flush(newInfo.Ino); err != nil {
			return err
		}
	}
	if fs.olog != nil && oldErr == nil {
		// Two entries: drop-target + move (the multi-entry rename case).
		fs.appendLog(nil, encMetaEntry('r', oldInfo.Ino))
		fs.appendLog(nil, encMetaEntry('R', oldInfo.Ino))
	}
	// Caches are updated only after the kernel rename succeeds; a failed
	// rename must not leave attrs describing a path that does not exist.
	if err := fs.kfs.Rename(oldClean, newClean); err != nil {
		return err
	}
	fs.amu.Lock()
	// The destination's old attributes are wrong either way: replaced by
	// the source's if cached, gone if not.
	delete(fs.attrs, newClean)
	if info, ok := fs.attrs[oldClean]; ok {
		fs.attrs[newClean] = info
		delete(fs.attrs, oldClean)
	}
	fs.amu.Unlock()
	// An open ofile keeps working through its kernel handle; update its
	// path for diagnostics.
	if oldErr == nil {
		fs.mu.RLock()
		of := fs.files[oldInfo.Ino]
		fs.mu.RUnlock()
		if of != nil {
			of.mu.Lock()
			of.path = newClean
			of.mu.Unlock()
		}
	}
	// The replaced destination's inode is freed by the rename: retire its
	// open-file entry and mappings so a recycled inode number cannot
	// resolve to the stale description or stale mappings.
	if replacing {
		fs.retireIno(newInfo.Ino)
		fs.mmaps.drop(newInfo.Ino)
	}
	return fs.syncMeta()
}

// Stat implements vfs.FileSystem, served from the attribute cache when
// possible (§3.5: cached attributes answer later calls).
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.bookkeep()
	clean := vfs.CleanPath(path)
	fs.amu.Lock()
	info, ok := fs.attrs[clean]
	fs.amu.Unlock()
	if ok {
		fs.mu.RLock()
		of := fs.files[info.Ino]
		fs.mu.RUnlock()
		if of != nil {
			of.mu.RLock()
			info.Size = of.size
			of.mu.RUnlock()
		}
		return info, nil
	}
	// Cache fill happens entirely under amu so it cannot interleave with
	// an Unlink's attribute delete (which runs after the kernel unlink,
	// also under amu): a stat that precedes the unlink is swept by the
	// delete, one that follows it fails and caches nothing.
	fs.amu.Lock()
	defer fs.amu.Unlock()
	if info, ok := fs.attrs[clean]; ok {
		return info, nil // filled by a racing stat
	}
	info, err := fs.kfs.Stat(clean)
	if err != nil {
		return info, err
	}
	fs.attrs[clean] = info
	return info, nil
}

// ReadDir implements vfs.FileSystem, hiding U-Split's internal staging
// and log files.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.bookkeep()
	ents, err := fs.kfs.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := ents[:0]
	for _, e := range ents {
		if vfs.CleanPath(path) == "/" &&
			(e.Name == vfs.BaseName(stagingDir) || e.Name == vfs.BaseName(oplogDir)) {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// SyncAll relinks every open file's staged data (shutdown path, and the
// multi-file fsync of the group-commit benchmark): all files drain
// through the relink pipeline as one batch, sharing a single journal
// commit, in deterministic inode order.
func (fs *FS) SyncAll() error {
	fs.mu.RLock()
	all := make([]*ofile, 0, len(fs.files))
	for _, of := range fs.files {
		all = append(all, of)
	}
	fs.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].ino < all[j].ino })
	if err := fs.pipeline.groupSync(all); err != nil {
		return err
	}
	fs.dev.Fence()
	return nil
}
