// Package sim provides the simulated-time substrate for the SplitFS
// reproduction: a virtual nanosecond clock with per-category accounting,
// the calibrated cost model for persistent memory and kernel-side work,
// and deterministic random-number helpers used by the workload generators.
//
// Every file-system operation in this repository charges simulated
// nanoseconds to a Clock instead of consuming wall-clock time. This makes
// the paper's evaluation deterministic and lets us decompose latency into
// the categories the paper reasons about (raw PM data time vs. software
// overhead, Table 1 and Figure 5).
package sim

import (
	"fmt"
	"sync/atomic"
)

// Category labels a charge against the clock. The paper's core metric,
// software overhead, is defined as total time minus the time spent moving
// data to or from the PM device (CatPMData).
type Category int

const (
	// CatPMData is raw file data transferred to or from PM, including the
	// memcpy into user buffers. This is the "time spent actually accessing
	// data on the PM device" in the paper's §5.7 definition.
	CatPMData Category = iota
	// CatPMMeta is file-system metadata traffic to PM (inodes, bitmaps,
	// extent blocks, directory blocks).
	CatPMMeta
	// CatFence is time spent in persistence fences (sfence).
	CatFence
	// CatKernelTrap is the user/kernel crossing cost of a system call.
	CatKernelTrap
	// CatPageFault is page-fault handling during mmap population or
	// first-touch access.
	CatPageFault
	// CatAlloc is block/extent allocation work.
	CatAlloc
	// CatJournal is journaling work: transaction handles, descriptor,
	// journal block, and commit writes.
	CatJournal
	// CatOpLog is user-space operation logging (U-Split, NOVA logs).
	CatOpLog
	// CatCPU is other DRAM-side bookkeeping (index updates, lookups,
	// checksums).
	CatCPU

	numCategories
)

var categoryNames = [numCategories]string{
	"pm-data", "pm-meta", "fence", "kernel-trap", "page-fault",
	"alloc", "journal", "oplog", "cpu",
}

// String returns the short human-readable name of the category.
func (c Category) String() string {
	if c < 0 || c >= numCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Clock is a virtual nanosecond clock. It is safe for concurrent use; all
// counters are updated with atomic operations. The zero value is ready to
// use.
type Clock struct {
	now   atomic.Int64
	byCat [numCategories]atomic.Int64
}

// NewClock returns a fresh clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Charge advances the clock by ns nanoseconds attributed to category cat.
// Negative charges are ignored.
func (c *Clock) Charge(cat Category, ns int64) {
	if ns <= 0 {
		return
	}
	c.now.Add(ns)
	if cat >= 0 && cat < numCategories {
		c.byCat[cat].Add(ns)
	}
}

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() int64 { return c.now.Load() }

// Category returns the total nanoseconds charged to cat.
func (c *Clock) Category(cat Category) int64 {
	if cat < 0 || cat >= numCategories {
		return 0
	}
	return c.byCat[cat].Load()
}

// Breakdown is a snapshot of the clock's per-category totals.
type Breakdown struct {
	Total int64
	ByCat [int(numCategories)]int64
}

// Snapshot returns the current totals.
func (c *Clock) Snapshot() Breakdown {
	var b Breakdown
	b.Total = c.now.Load()
	for i := range b.ByCat {
		b.ByCat[i] = c.byCat[i].Load()
	}
	return b
}

// Sub returns the breakdown of time elapsed since the earlier snapshot.
func (b Breakdown) Sub(earlier Breakdown) Breakdown {
	var out Breakdown
	out.Total = b.Total - earlier.Total
	for i := range b.ByCat {
		out.ByCat[i] = b.ByCat[i] - earlier.ByCat[i]
	}
	return out
}

// DataTime returns the nanoseconds spent moving file data to/from PM.
func (b Breakdown) DataTime() int64 { return b.ByCat[CatPMData] }

// Overhead returns the paper's software-overhead metric: total time minus
// raw data time.
func (b Breakdown) Overhead() int64 { return b.Total - b.DataTime() }

// String renders the breakdown as "total [cat=ns ...]" listing non-zero
// categories.
func (b Breakdown) String() string {
	s := fmt.Sprintf("%dns [", b.Total)
	first := true
	for i, v := range b.ByCat {
		if v == 0 {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		s += fmt.Sprintf("%s=%d", Category(i), v)
	}
	return s + "]"
}

// Reset zeroes the clock and all category counters. Not safe to call
// concurrently with Charge.
func (c *Clock) Reset() {
	c.now.Store(0)
	for i := range c.byCat {
		c.byCat[i].Store(0)
	}
}
