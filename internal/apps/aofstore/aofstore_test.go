package aofstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 128 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSetGet(t *testing.T) {
	s, err := Open(newFS(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := s.Get("absent"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("absent = %v", err)
	}
	s.Close()
}

func TestPeriodicFsync(t *testing.T) {
	s, _ := Open(newFS(t), Options{FsyncEvery: 10})
	for i := 0; i < 25; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if got := s.Stats().Fsyncs; got != 2 {
		t.Fatalf("fsyncs = %d, want 2 (every 10 of 25)", got)
	}
	s.Close()
}

func TestReplayAfterReopen(t *testing.T) {
	fs := newFS(t)
	s, _ := Open(fs, Options{})
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("key%03d", i), val)
	}
	s.Set("key010", []byte("newest")) // update must win at replay
	s.Close()

	s2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 50 {
		t.Fatalf("replayed %d keys, want 50", s2.Len())
	}
	v, err := s2.Get("key010")
	if err != nil || string(v) != "newest" {
		t.Fatalf("key010 = %q, %v", v, err)
	}
	s2.Close()
}

func TestAOFGrowsAppendOnly(t *testing.T) {
	fs := newFS(t)
	s, _ := Open(fs, Options{})
	for i := 0; i < 20; i++ {
		s.Set("same-key", []byte("value"))
	}
	s.Close()
	info, err := fs.Stat("/appendonly.aof")
	if err != nil {
		t.Fatal(err)
	}
	// 20 records of 8+8+5 bytes: the AOF never rewrites in place.
	if info.Size != 20*(8+8+5) {
		t.Fatalf("AOF size = %d, want %d", info.Size, 20*(8+8+5))
	}
}
