package pmem

// Per-event-source device accounting for the observability plane: the
// same evSrc label that tags persistence events (SetEventSource) also
// buckets write bytes, flushed lines, and fences, so a stats snapshot
// can attribute PM traffic to the foreground syscall path versus the
// background relink and reclaim stages. Like the event-source label
// itself, the split is exact under deterministic single-drain and
// best-effort when background stages run concurrently.

import "splitfs/internal/obs"

// SourceStats is the per-source slice of the write-path counters.
type SourceStats struct {
	BytesWritten int64 // temporal + non-temporal + buffered store bytes
	FlushedLines int64 // dirty lines moved to the write-pending queue
	Fences       int64
}

// srcIdx returns the current event-source label clamped into the known
// range, so an out-of-range label (possible only through a caller
// inventing a source) misattributes to foreground rather than
// corrupting a neighbour counter.
func (d *Device) srcIdx() uint32 {
	if s := d.evSrc.Load(); s < uint32(evSources) {
		return s
	}
	return uint32(SrcForeground)
}

// FenceCount reports the cumulative fence count — the feed the served
// stack samples around each op for flight-record fence deltas.
func (d *Device) FenceCount() int64 { return d.nFences.Load() }

// SourceStats returns the counters attributed to one event source.
func (d *Device) SourceStats(src EventSource) SourceStats {
	if !src.Known() {
		return SourceStats{}
	}
	return SourceStats{
		BytesWritten: d.srcBytes[src].Load(),
		FlushedLines: d.srcFlushes[src].Load(),
		Fences:       d.srcFences[src].Load(),
	}
}

// RegisterObs exports the device counters into an obs registry as
// computed gauges (zero hot-path cost): totals under pmem/, and the
// write path broken down by event source under pmem/src/<label>/.
func (d *Device) RegisterObs(r *obs.Registry) {
	r.Func("pmem/bytes_written", func() int64 { return d.Stats().BytesWritten() })
	r.Func("pmem/bytes_read", d.nBytesRead.Load)
	r.Func("pmem/flushes", d.nFlushes.Load)
	r.Func("pmem/fences", d.nFences.Load)
	r.Func("pmem/lines_persisted", d.nPersisted.Load)
	r.Func("pmem/events", d.events.Load)
	for src := EventSource(0); src < evSources; src++ {
		src := src
		prefix := "pmem/src/" + src.String() + "/"
		r.Func(prefix+"bytes_written", d.srcBytes[src].Load)
		r.Func(prefix+"flushed_lines", d.srcFlushes[src].Load)
		r.Func(prefix+"fences", d.srcFences[src].Load)
	}
}
