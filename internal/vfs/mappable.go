package vfs

// Extent is one contiguous piece of a file's backing store: Length
// bytes at FileOff within the file live at DevOff on the persistent
// device. Extents are what a DAX mmap exposes to user space — a lease
// on a file's extents lets a client satisfy data operations with plain
// loads, no kernel or server round trip.
type Extent struct {
	FileOff int64 // byte offset within the file
	DevOff  int64 // byte offset on the device
	Length  int64 // bytes
}

// Mappable is the optional capability a backend implements when its
// files can be memory-mapped for zero-copy access. It is deliberately
// not part of File: the server feature-detects it with a type
// assertion, so backends without a stable device-offset story (DRAM
// maps, strace replays, the POSIX model) need no changes and simply
// never grant leases.
//
// The epoch is the coherence protocol. MapExtents returns the extents
// together with the file's current mapping epoch; every remapping event
// — truncate, extent swap, hole punch, a staged write shadowing mapped
// bytes, a relink retiring staged data — bumps the epoch *before* the
// old physical bytes can be reused. A reader therefore validates
// seqlock-style: check the epoch, load through the extents, check the
// epoch again; if it moved, the loaded bytes are discarded and the
// operation retries on the copy path. In-place overwrites of the same
// physical blocks do not bump the epoch: that is ordinary shared-memory
// coherence, exactly what a real mmap gives.
type Mappable interface {
	// MapExtents returns extents covering parts of [off, off+length),
	// sorted by FileOff, together with the mapping epoch they were
	// collected under. Holes and bytes without a stable device offset
	// (e.g. DRAM-staged data) are simply absent; callers must treat
	// uncovered ranges as unmapped and fall back to the copy path.
	MapExtents(off, length int64) ([]Extent, uint64, error)

	// MapEpoch returns the current mapping epoch. It must be cheap and
	// safe to call concurrently with mutations (lock-free).
	MapEpoch() uint64

	// LoadMapped copies length bytes at devOff into p with processor
	// loads — no kernel trap, no server involvement. devOff must come
	// from an Extent returned by MapExtents. Returns len(p).
	LoadMapped(p []byte, devOff int64) int
}
