package vfs

import (
	"sort"
	"sync"
)

// FDTable maps small integer descriptors to open files with POSIX dup
// semantics: Dup returns a new descriptor sharing the same open file
// description (and therefore the same offset — the behaviour the paper
// calls out in "Handling dup", §3.5). The underlying File is closed only
// when its last descriptor is closed.
type FDTable struct {
	mu   sync.Mutex
	next int
	fds  map[int]*fdEntry
}

type fdEntry struct {
	file File
	refs *int // shared across dup'd descriptors
}

// NewFDTable returns an empty table. Descriptors start at 3, leaving room
// for the conventional stdio numbers.
func NewFDTable() *FDTable {
	return &FDTable{next: 3, fds: make(map[int]*fdEntry)}
}

// Insert registers an open file and returns its descriptor.
func (t *FDTable) Insert(f File) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd := t.next
	t.next++
	refs := 1
	t.fds[fd] = &fdEntry{file: f, refs: &refs}
	return fd
}

// InsertAt registers an open file at a caller-chosen descriptor — the
// session re-attach path, where a reconnecting client re-establishes its
// handles under their original wire IDs so the replay log's handle
// references stay valid. ErrExist if the descriptor is live. The next
// auto-assigned descriptor always jumps past fd, so later Inserts cannot
// collide with re-established handles.
func (t *FDTable) InsertAt(fd int, f File) error {
	if fd < 0 {
		return ErrInval
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.fds[fd]; ok {
		return ErrExist
	}
	if fd >= t.next {
		t.next = fd + 1
	}
	refs := 1
	t.fds[fd] = &fdEntry{file: f, refs: &refs}
	return nil
}

// Get resolves a descriptor.
func (t *FDTable) Get(fd int) (File, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.fds[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return e.file, nil
}

// Dup duplicates a descriptor; both descriptors share one offset.
func (t *FDTable) Dup(fd int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.fds[fd]
	if !ok {
		return -1, ErrBadFD
	}
	nfd := t.next
	t.next++
	*e.refs++
	t.fds[nfd] = &fdEntry{file: e.file, refs: e.refs}
	return nfd, nil
}

// Close releases a descriptor, closing the file when no descriptors
// remain.
func (t *FDTable) Close(fd int) error {
	t.mu.Lock()
	e, ok := t.fds[fd]
	if !ok {
		t.mu.Unlock()
		return ErrBadFD
	}
	delete(t.fds, fd)
	*e.refs--
	last := *e.refs == 0
	t.mu.Unlock()
	if last {
		return e.file.Close()
	}
	return nil
}

// CloseAll releases every descriptor, closing each distinct open file
// exactly once (dup'd descriptors share one close). It is idempotent —
// a second call on an emptied table is a no-op — which is what session
// teardown in internal/server relies on when a client disconnects
// mid-operation. The first close error is returned; all files are
// closed regardless.
func (t *FDTable) CloseAll() error {
	t.mu.Lock()
	groups := make(map[*int]File)
	for fd, e := range t.fds {
		delete(t.fds, fd)
		*e.refs--
		groups[e.refs] = e.file
	}
	var files []File
	for refs, f := range groups {
		if *refs == 0 {
			files = append(files, f)
		}
	}
	t.mu.Unlock()
	// Close in path order so teardown issues a deterministic operation
	// sequence (the crash harness replays rely on bit-identical streams).
	sort.Slice(files, func(i, j int) bool { return files[i].Path() < files[j].Path() })
	var first error
	for _, f := range files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len reports the number of live descriptors.
func (t *FDTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.fds)
}

// Files returns the distinct open files, for snapshot/restore (the
// execve analogue, §3.5).
func (t *FDTable) Files() []File {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Walk descriptors in sorted order so the returned slice (and any
	// close/snapshot work driven by it) is deterministic.
	nums := make([]int, 0, len(t.fds))
	for fd := range t.fds {
		nums = append(nums, fd)
	}
	sort.Ints(nums)
	seen := make(map[File]bool)
	var out []File
	for _, fd := range nums {
		e := t.fds[fd]
		if !seen[e.file] {
			seen[e.file] = true
			out = append(out, e.file)
		}
	}
	return out
}
