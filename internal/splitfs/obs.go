package splitfs

import "splitfs/internal/obs"

// RegisterObs exports U-Split's counters into an obs registry as
// computed gauges and cascades to the kernel file system underneath,
// so one call per instance wires the whole persistence stack. The
// gauges read the same atomics Stats() snapshots — zero data-path
// cost, evaluated only when a snapshot is taken.
func (fs *FS) RegisterObs(r *obs.Registry) {
	r.Func("splitfs/user_reads", fs.stats.userReads.Load)
	r.Func("splitfs/user_writes", fs.stats.userWrites.Load)
	r.Func("splitfs/appends", fs.stats.appends.Load)
	r.Func("splitfs/staged_bytes", fs.stats.stagedBytes.Load)
	r.Func("splitfs/relinks", fs.stats.relinks.Load)
	r.Func("splitfs/relink_blocks", fs.stats.relinkBlocks.Load)
	r.Func("splitfs/copied_bytes", fs.stats.copiedBytes.Load)
	r.Func("splitfs/log_entries", fs.stats.logEntries.Load)
	r.Func("splitfs/checkpoints", fs.stats.checkpoints.Load)
	r.Func("splitfs/mmap_hits", fs.stats.mmapHits.Load)
	r.Func("splitfs/mmap_misses", fs.stats.mmapMisses.Load)
	r.Func("splitfs/staging_reclaims", func() int64 { return int64(fs.StagingFilesReclaimed()) })
	fs.kfs.RegisterObs(r)
}
