// Served crash campaigns run N concurrent tenants through the
// internal/server session/RPC layer over real stream transports, kill
// the daemon at an armed persistence event, recover the backend from the
// frozen durable image, restart the server as a new generation, and let
// every client re-attach and replay. Tenant goroutines and the
// crash-monitor goroutine are the point of the campaign; scheduling
// nondeterminism is accepted (the per-tenant oracles derive the crash
// prefix from acknowledgements, not from a recorded event map).
//
// +determinism:concurrent

package crash

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"splitfs/internal/pmem"
	"splitfs/internal/server"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// ServedCampaign configures one daemon-death run: tenants drive
// independent workloads over resumable sessions, the device crash is
// armed at an absolute persistence event, and — because replies are
// suppressed the instant the crash fires (Config.FailReplies) — an
// operation is only ever acknowledged if it finished executing before
// the durable image froze. After recovery the clients reconnect, replay,
// and finish; the campaign then verifies three things:
//
//  1. Crash-point oracle, per tenant: the recovered subtree satisfies the
//     mode's guarantee for the tenant's acknowledged syscall prefix
//     (checkGuarantee with interrupted=true — the single outstanding
//     request may have partially executed past the last ack).
//  2. Exactly-once: on the recovered generation no non-idempotent
//     operation (rename, unlink, mkdir) applies twice — a replayed
//     request that already executed is answered from the reply cache or
//     healed, never re-applied.
//  3. Final state, per tenant: once every client has resumed and
//     finished, the file system matches the model's end state exactly —
//     every operation applied, none lost, none doubled.
type ServedCampaign struct {
	Mode splitfs.Mode
	// Tenants is the number of concurrent resumable sessions (default 3).
	// Ignored when TenantOps is set.
	Tenants int
	// OpsPerTenant sizes each generated workload (default 12). Each
	// workload ends with an OpSyncAll barrier.
	OpsPerTenant int
	// TenantOps, when non-nil, overrides the generated workloads (one
	// slice per tenant) — minimization shrinks campaigns through this.
	TenantOps [][]Op
	// Seed drives workload generation, torn-line injection, and the wire
	// fault cadence.
	Seed uint64
	// CrashAtEvent arms the daemon death at that absolute persistence
	// event (0 = no crash; the campaign still verifies the final state).
	CrashAtEvent int64
	// WireFaults arms client-side mid-frame write cuts on a deterministic
	// dial cadence (see FaultCadence), forcing warm re-attaches and
	// replay even before the crash (and during cold resume after it).
	WireFaults bool
	// FaultCadence sets how often WireFaults arms a cut: every
	// FaultCadence-th dial starting with the first (default 2 — the
	// historical every-other-dial alternation). 1 arms every dial;
	// higher values thin the fault pressure. The nightly matrix sweeps
	// this.
	FaultCadence int
	// Leases negotiates the zero-copy data plane on every tenant session
	// and interleaves leased-read probes through the workload, so leases
	// are genuinely outstanding when the daemon dies. The campaign then
	// additionally asserts that no lease survives generation 1's
	// teardown.
	Leases bool
	// SkipFence is the fence fault-injection hook for harness self-tests
	// (see Campaign.SkipFence); it must be safe for concurrent calls.
	SkipFence func(seq int64) bool
	// DevBytes sizes the PM device (default 32 MB).
	DevBytes int64
	// Trace records the full persistence-event trace (debug).
	Trace bool
}

// ServedResult reports one served campaign.
type ServedResult struct {
	// Fired reports whether the armed crash event was reached (with
	// concurrent scheduling an event near the end of the recording window
	// may not be).
	Fired bool
	// AckedSys[i] is tenant i's acknowledged syscall count when the
	// daemon died — the prefix its crash-point oracle verified.
	AckedSys []int
	// Violation is empty when every check held.
	Violation string
	// Replayed counts strict-mode log entries recovery re-applied;
	// JournalReplayed counts K-Split journal transactions replayed at
	// mount.
	Replayed        int
	JournalReplayed int
	// BaselineEvents/TotalEvents bound the run's persistence events
	// (TotalEvents from a no-crash run is the sweep window for
	// ServedExplore).
	BaselineEvents, TotalEvents int64
	// Gen1/Gen2 snapshot the wire/replay counters of the two server
	// generations (Gen2 is zero when the crash never fired).
	Gen1, Gen2 server.WireStats
	// Trace is the recorded event trace (ServedCampaign.Trace).
	Trace []pmem.Event
	// Flight carries the flight-recorder traces of the server
	// generation that was active when Violation was detected (empty
	// when every check held): the last ops each tenant had in flight,
	// so a minimized reproducer ships with its own trace.
	Flight string
}

// errServedAborted releases tenants blocked on redial when the campaign
// stops without restarting the server (recovery failed or an oracle
// already violated).
var errServedAborted = errors.New("crash: served campaign aborted")

// servedTenant is one tenant's workload, model, and progress counter.
type servedTenant struct {
	root   string
	ops    []Op
	sys    []syscall
	model  *modelRun
	leases bool
	// acked counts acknowledged syscalls. The driver increments it before
	// sending the next syscall, so at any instant every syscall beyond
	// acked+1 has provably not begun executing — the precondition of the
	// per-tenant crash oracle's (acked, interrupted=true) invocation.
	acked atomic.Int64
	err   error
}

// drive runs the tenant's compiled workload over a resumable session
// rooted at the tenant's subtree. The session root confines every path,
// so workloads use root-relative names and the per-tenant model needs no
// translation.
func (t *servedTenant) drive(redial func() (io.ReadWriteCloser, error)) error {
	cl, err := server.DialResumableConfig(redial,
		server.ClientConfig{Root: t.root, EnableLeases: t.leases})
	if err != nil {
		return fmt.Errorf("tenant %s: attach: %w", t.root, err)
	}
	r := &runner{fs: cl, handles: map[string]vfs.File{}}
	for i := range t.sys {
		if err := r.apply(t.sys[i]); err != nil {
			cl.Close()
			return fmt.Errorf("tenant %s: op %d (%v %s): %w",
				t.root, t.sys[i].opIdx, t.sys[i].kind, t.sys[i].path, err)
		}
		t.acked.Add(1)
		if t.leases {
			t.probe(r, i)
		}
	}
	cl.Close() // best-effort goodbye; the daemon may die mid-detach
	return nil
}

// probe issues one small positional read against an open handle so that
// a lease is genuinely outstanding whenever the daemon dies (the
// generated workloads have no read syscalls — without probes the lease
// plane would sit empty across the kill). Content and errors are
// ignored: the crash oracles own correctness; the probe's only job is
// to keep leases granted and in flight.
func (t *servedTenant) probe(r *runner, i int) {
	if len(r.handles) == 0 {
		return
	}
	names := make([]string, 0, len(r.handles))
	for n := range r.handles {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf [64]byte
	_, _ = r.handles[names[i%len(names)]].ReadAt(buf[:], 0)
}

// servedDialer hands tenants transports into the current server
// generation, blocking redials while the daemon is down. "Down" starts
// the instant the armed crash fires — not when the monitor gets around
// to tearing generation 1 down — because a redial into the dying server
// only ever gets its replies dropped, and letting those attempts through
// would burn the client's bounded resume budget against a corpse.
type servedDialer struct {
	mu     sync.Mutex
	srv    *server.Server
	fallen func() bool // true once the crash fired (nil = never)
	gen    int
	// blocked covers the monitor's teardown/recover/restart span; wait is
	// re-made on every completeRestart and woken by closing it.
	blocked bool
	wait    chan struct{}
	err     error
}

func newServedDialer(srv *server.Server, fallen func() bool) *servedDialer {
	return &servedDialer{srv: srv, fallen: fallen, gen: 1, wait: make(chan struct{})}
}

// beginRestart blocks subsequent redials until completeRestart.
func (d *servedDialer) beginRestart() {
	d.mu.Lock()
	d.blocked = true
	d.mu.Unlock()
}

// completeRestart installs the recovered generation, or — with err set —
// aborts every blocked and future redial.
func (d *servedDialer) completeRestart(srv *server.Server, err error) {
	d.mu.Lock()
	d.srv = srv
	d.err = err
	d.gen++
	d.blocked = false
	close(d.wait)
	d.wait = make(chan struct{})
	d.mu.Unlock()
}

func (d *servedDialer) redial() (io.ReadWriteCloser, error) {
	for {
		d.mu.Lock()
		if d.err != nil {
			err := d.err
			d.mu.Unlock()
			return nil, err
		}
		down := d.blocked || (d.gen == 1 && d.fallen != nil && d.fallen())
		if !down {
			srv := d.srv
			d.mu.Unlock()
			cs, ss := net.Pipe()
			go srv.ServeConn(ss)
			return cs, nil
		}
		ch := d.wait
		d.mu.Unlock()
		<-ch
	}
}

// tenantDialer layers the wire-fault cadence over the shared dialer:
// every cadence-th dial (the first included) is armed with a
// client-side write cut at a seeded byte offset, tearing the transport
// mid-frame somewhere into the session — so warm re-attach and request
// replay are exercised even before the crash, and again during cold
// resume after it. The default cadence of 2 alternates armed and clean
// dials, keeping each resume within the client's bounded attempt
// budget; cadence 1 arms every dial (the client's budget still wins
// because the cut offset eventually lands past the whole workload).
// The budget floor keeps the cut past the attach handshake.
type tenantDialer struct {
	d       *servedDialer
	rng     *sim.RNG
	faults  bool
	cadence int
	dials   int
}

func (t *tenantDialer) redial() (io.ReadWriteCloser, error) {
	rwc, err := t.d.redial()
	if err != nil || !t.faults {
		return rwc, err
	}
	cadence := t.cadence
	if cadence <= 0 {
		cadence = 2
	}
	t.dials++
	if (t.dials-1)%cadence == 0 {
		fc := server.NewFaultConn(rwc)
		fc.CutWriteAfter(t.rng.Intn(512) + 48)
		return fc, nil
	}
	return rwc, nil
}

// servedCounter counts successful applications of the non-idempotent
// namespace operations by signature. The workloads never reuse names, so
// on the recovered generation a signature applying twice is exactly a
// broken replay (cache miss plus failed heal). SyncAll forwards to the
// backend so the group-commit path — and strict-mode atomicity — is
// preserved through the wrapper.
type servedCounter struct {
	vfs.FileSystem
	mu      sync.Mutex
	applied map[string]int
}

func (c *servedCounter) bump(sig string) {
	c.mu.Lock()
	if c.applied == nil {
		c.applied = map[string]int{}
	}
	c.applied[sig]++
	c.mu.Unlock()
}

func (c *servedCounter) Mkdir(path string, perm uint32) error {
	err := c.FileSystem.Mkdir(path, perm)
	if err == nil {
		c.bump("mkdir " + path)
	}
	return err
}

func (c *servedCounter) Unlink(path string) error {
	err := c.FileSystem.Unlink(path)
	if err == nil {
		c.bump("unlink " + path)
	}
	return err
}

func (c *servedCounter) Rename(oldPath, newPath string) error {
	err := c.FileSystem.Rename(oldPath, newPath)
	if err == nil {
		c.bump("rename " + oldPath + " -> " + newPath)
	}
	return err
}

func (c *servedCounter) SyncAll() error {
	sa, ok := c.FileSystem.(interface{ SyncAll() error })
	if !ok {
		return fmt.Errorf("crash: served backend lacks SyncAll")
	}
	return sa.SyncAll()
}

// doubleApplied lists signatures that applied more than once.
func (c *servedCounter) doubleApplied() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for sig, n := range c.applied {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s (applied %d times)", sig, n))
		}
	}
	sort.Strings(out)
	return out
}

// captureSubtree walks one subtree of the (recovered) file system,
// returning paths relative to root, so per-tenant models — built on
// root-relative workloads, matching the session confinement the tenants
// attach with — compare directly.
func captureSubtree(fs vfs.FileSystem, root string) (*durableState, error) {
	d := &durableState{files: map[string][]byte{}, dirs: map[string]bool{}}
	var walk func(dir string, depth int) error
	walk = func(dir string, depth int) error {
		// Same cycle guard as captureDurable: a corrupt image must fail
		// the capture, not hang it.
		if depth > maxWalkDepth {
			return fmt.Errorf("walk of %.80s... exceeds depth %d: directory cycle in recovered image",
				dir, maxWalkDepth)
		}
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("readdir %s: %w", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			rel := strings.TrimPrefix(p, root)
			if e.IsDir {
				d.dirs[rel] = true
				if err := walk(p, depth+1); err != nil {
					return err
				}
				continue
			}
			data, err := vfs.ReadFile(fs, p)
			if err != nil {
				return fmt.Errorf("read %s: %w", p, err)
			}
			d.files[rel] = data
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return d, nil
}

// servedWorkloads generates the per-tenant workloads of a campaign.
func servedWorkloads(seed uint64, tenants, ops int) [][]Op {
	out := make([][]Op, tenants)
	for i := range out {
		out[i] = ServedOps(mix(seed, uint64(i)+0x7e57), ops)
	}
	return out
}

// finalCheck verifies, per tenant, that the fully-resumed file system
// matches the model's end state exactly: every operation applied, none
// lost, none doubled — in every mode, because by now every operation has
// been acknowledged.
func finalCheck(tenants []*servedTenant, fs vfs.FileSystem) string {
	for i, t := range tenants {
		dur, err := captureSubtree(fs, t.root)
		if err != nil {
			return fmt.Sprintf("tenant %d: final subtree unreadable: %v", i, err)
		}
		if why := matchExact(t.model.states[len(t.sys)], dur); why != "" {
			return fmt.Sprintf("tenant %d: final state diverged after resume: %s", i, why)
		}
	}
	return ""
}

func tenantsErr(tenants []*servedTenant) error {
	for _, t := range tenants {
		if t.err != nil {
			return t.err
		}
	}
	return nil
}

// RunServed executes one served campaign and verifies its oracles.
func RunServed(c ServedCampaign) (*ServedResult, error) {
	if c.TenantOps != nil {
		c.Tenants = len(c.TenantOps)
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.OpsPerTenant <= 0 {
		c.OpsPerTenant = 12
	}
	env, fs, err := newEnv(c.Mode, c.DevBytes)
	if err != nil {
		return nil, err
	}
	res := &ServedResult{}

	// Setup: per-tenant subtree roots, then a journal-commit barrier
	// (create+fsync a marker) so every /t<i> is durable at any crash the
	// campaign arms — the per-tenant oracles verify subtrees, so the
	// subtree roots themselves must survive, and a cold re-attach after
	// the restart must find its session root to attach to.
	workloads := c.TenantOps
	if workloads == nil {
		workloads = servedWorkloads(c.Seed, c.Tenants, c.OpsPerTenant)
	}
	tenants := make([]*servedTenant, c.Tenants)
	for i := range tenants {
		root := fmt.Sprintf("/t%d", i)
		if err := fs.Mkdir(root, 0o755); err != nil {
			return nil, err
		}
		sys := compile(workloads[i])
		tenants[i] = &servedTenant{root: root, ops: workloads[i], sys: sys,
			model: buildModel(c.Mode, sys), leases: c.Leases}
	}
	mark, err := fs.OpenFile("/served-setup", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := mark.Sync(); err != nil {
		return nil, err
	}
	if err := mark.Close(); err != nil {
		return nil, err
	}
	res.BaselineEvents = env.dev.Events()
	if c.CrashAtEvent > 0 && c.CrashAtEvent <= res.BaselineEvents {
		return nil, fmt.Errorf("crash: served crash event %d falls inside setup (baseline %d)",
			c.CrashAtEvent, res.BaselineEvents)
	}
	if c.SkipFence != nil {
		env.dev.SetFenceFilter(c.SkipFence)
	}
	if c.Trace {
		env.dev.SetTracing(true)
	}
	if c.CrashAtEvent > 0 {
		env.dev.ArmCrash(c.CrashAtEvent, sim.NewRNG(mix(c.Seed, uint64(c.CrashAtEvent))))
	}

	srv := server.New(fs, server.Config{
		Workers:   c.Tenants,
		TokenSalt: mix(c.Seed, 0xA11CE),
		// A reply is only ever written while the durable image is still
		// live: once the armed crash fires, every reply is dropped and its
		// connection killed — the executed-but-unacknowledged window of a
		// real daemon death.
		FailReplies: func() bool { return env.dev.CrashFired() },
		// Sim-clock cost and device fence deltas annotate each flight
		// record, so a violation's trace shows what each op persisted.
		OpClock:  env.clk.Now,
		OpFences: env.dev.FenceCount,
	})
	dial := newServedDialer(srv, env.dev.CrashFired)

	var wg sync.WaitGroup
	for i := range tenants {
		t := tenants[i]
		td := &tenantDialer{d: dial, faults: c.WireFaults, cadence: c.FaultCadence,
			rng: sim.NewRNG(mix(c.Seed, uint64(i)^0xFA7))}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.err = t.drive(td.redial)
		}()
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Monitor: wait for the armed crash to fire or for every tenant to
	// finish (an event at the very end may fire during the final detach
	// teardown, after the last acknowledgement — check once more).
	armed := c.CrashAtEvent > 0
	for {
		if armed && env.dev.CrashFired() {
			res.Fired = true
			break
		}
		select {
		case <-finished:
		default:
			runtime.Gosched()
			continue
		}
		res.Fired = armed && env.dev.CrashFired()
		break
	}

	if !res.Fired {
		<-finished
		srv.Close()
		env.dev.SetFenceFilter(nil)
		res.Gen1 = srv.Stats()
		res.TotalEvents = env.dev.Events()
		if err := tenantsErr(tenants); err != nil {
			return nil, err
		}
		if n := srv.ActiveLeases(); n != 0 {
			res.Violation = fmt.Sprintf("lease plane: %d leases survived server Close", n)
			res.Flight = srv.FlightReport()
			return res, nil
		}
		res.Violation = finalCheck(tenants, fs)
		if res.Violation != "" {
			res.Flight = srv.FlightReport()
		}
		return res, nil
	}

	// The daemon dies mid-flight: block redials, tear the server down
	// (Close waits out the worker pool, so no request is mid-execution
	// when the device image is finalized), snapshot each tenant's
	// acknowledged prefix, then crash and recover.
	dial.beginRestart()
	srv.Close()
	env.dev.SetFenceFilter(nil)
	if c.Trace {
		res.Trace = env.dev.Trace()
		env.dev.SetTracing(false)
	}
	res.Gen1 = srv.Stats()
	if n := srv.ActiveLeases(); n != 0 {
		// Teardown revokes every session's leases; one outliving the
		// generation would hand a client a mapping onto a device image
		// that recovery is about to rewrite.
		res.Violation = fmt.Sprintf("lease plane: %d leases survived generation-1 teardown", n)
		res.Flight = srv.FlightReport()
		abortEarly := func() {
			dial.completeRestart(nil, errServedAborted)
			<-finished
		}
		abortEarly()
		return res, nil
	}
	for _, t := range tenants {
		res.AckedSys = append(res.AckedSys, int(t.acked.Load()))
	}
	abort := func() {
		dial.completeRestart(nil, errServedAborted)
		<-finished
	}
	if err := env.dev.Crash(sim.NewRNG(mix(c.Seed, uint64(c.CrashAtEvent)) ^ 0xC4A5)); err != nil {
		abort()
		return nil, err
	}
	fs2, report, vio := recover1(env)
	res.JournalReplayed = env.journalReplayed
	if report != nil {
		res.Replayed = report.Replayed
	}
	if vio != "" {
		res.Violation = vio
		res.Flight = srv.FlightReport()
		abort()
		return res, nil
	}

	// Crash-point oracle: each tenant's recovered subtree against its own
	// model at its acknowledged prefix. interrupted=true — the single
	// outstanding request beyond the last ack may have executed partially
	// (or fully, with its reply suppressed).
	for i, t := range tenants {
		dur, err := captureSubtree(fs2, t.root)
		if err != nil {
			res.Violation = fmt.Sprintf("tenant %d: recovered subtree unreadable: %v", i, err)
			break
		}
		if v := checkGuarantee(t.model, res.AckedSys[i], true, dur); v != "" {
			res.Violation = fmt.Sprintf("tenant %d (after %d acked syscalls): %s",
				i, res.AckedSys[i], v)
			break
		}
	}
	if res.Violation != "" {
		// The generation-1 traces show what each tenant had in flight
		// when the image froze — the context a minimized reproducer
		// needs alongside the oracle's diff.
		res.Flight = srv.FlightReport()
		abort()
		return res, nil
	}

	// Recovered generation: a fresh token salt (stale generation-1 tokens
	// must read as unknown and fall back to cold attach), an exactly-once
	// counter on the backend, and no reply faults. Unblocked tenants
	// re-attach, replay, and finish.
	counter := &servedCounter{FileSystem: fs2}
	srv2 := server.New(counter, server.Config{
		Workers:   c.Tenants,
		TokenSalt: mix(c.Seed, 0xB0B2),
		OpClock:   env.clk.Now,
		OpFences:  env.dev.FenceCount,
	})
	dial.completeRestart(srv2, nil)
	<-finished
	srv2.Close()
	res.Gen2 = srv2.Stats()
	res.TotalEvents = env.dev.Events()
	if err := tenantsErr(tenants); err != nil {
		// A tenant that cannot finish its workload against the recovered
		// generation is a serving failure, not a harness error: under
		// fault injection (skipped fences) the recovered image can be
		// corrupt in ways mount and the subtree oracle miss but replay
		// trips over. Record it like any breach so sweeps report and
		// minimize it instead of aborting.
		res.Violation = fmt.Sprintf("post-restart serving failed: %v", err)
		res.Flight = srv2.FlightReport()
		return res, nil
	}
	if dbl := counter.doubleApplied(); len(dbl) > 0 {
		res.Violation = "exactly-once: replayed operations applied twice on the recovered generation: " +
			strings.Join(dbl, "; ")
		res.Flight = srv2.FlightReport()
		return res, nil
	}
	res.Violation = finalCheck(tenants, fs2)
	if res.Violation != "" {
		res.Flight = srv2.FlightReport()
	}
	return res, nil
}
