// Package strata implements the Strata baseline of the SplitFS paper
// (Kwon et al., SOSP '17): a user-space LibFS that appends every data
// operation (data included) to a per-process private log in PM, plus a
// KernFS shared area the log is digested into.
//
// The property the paper measures against: append-dominated workloads
// cannot be coalesced at digest time, so every byte is written twice —
// once to the private log and once to the shared area — doubling write IO
// and PM wear (§2.3, §5.8, Table 7). Overwrite-heavy workloads coalesce
// well and digest less than they logged.
//
// Simplifications (documented in DESIGN.md): metadata operations pass
// through to the shared area immediately instead of being logged and
// digested (visibility is single-process in this reproduction and the
// guarantee — synchronous, atomic — is unchanged); the digest runs
// synchronously when the private log crosses its high-water mark rather
// than on a background KernFS thread.
package strata

import (
	"encoding/binary"
	"sort"
	"sync"

	"splitfs/internal/logfs"
	"splitfs/internal/metalog"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Config sizes the Strata regions.
type Config struct {
	// PrivateLogBytes is the per-process update log (paper: up to 20 GB;
	// default here 8 MB).
	PrivateLogBytes int64
	// DigestAt is the log fill fraction (in percent) that triggers a
	// digest (default 75).
	DigestAt int
	// Shared configures the KernFS shared area.
	Shared logfs.Config
}

func (c *Config) fill() {
	if c.PrivateLogBytes == 0 {
		c.PrivateLogBytes = 8 << 20
	}
	if c.DigestAt == 0 {
		c.DigestAt = 75
	}
}

// Stats counts Strata-specific activity.
type Stats struct {
	LogAppends  int64
	LoggedBytes int64 // data bytes written to the private log
	Digests     int64
	DigestBytes int64 // data bytes copied into the shared area
}

// interval is one logged write: file range backed by log bytes.
type interval struct {
	off    int64 // file offset
	length int64
	logOff int64 // device offset of the data inside the private log
}

// FS is a mounted Strata instance.
type FS struct {
	dev *pmem.Device
	clk *sim.Clock
	cfg Config

	shared *logfs.FS

	mu       sync.Mutex
	plog     *metalog.Log
	overlay  map[uint64][]interval // ino -> logged writes, oldest first
	sizeOver map[uint64]int64      // ino -> size including logged appends
	stats    Stats
}

var _ vfs.FileSystem = (*FS)(nil)

func sharedProfile() logfs.Profile {
	return logfs.Profile{
		Name:         "strata-shared",
		FenceMode:    metalog.SingleFence,
		PerOpCPU:     sim.PMFSJournalNs,
		WritePathCPU: sim.StrataDigestPerBlockNs,
		ReadPathCPU:  sim.Ext4ReadPathNs,
		SyncData:     true,
		KernelFS:     true,
	}
}

// New formats dev as a Strata file system.
func New(dev *pmem.Device, cfg Config) *FS {
	cfg.fill()
	cfg.Shared.ReserveTail = cfg.PrivateLogBytes
	fs := &FS{
		dev: dev, clk: dev.Clock(), cfg: cfg,
		shared:   logfs.New(dev, sharedProfile(), cfg.Shared),
		overlay:  map[uint64][]interval{},
		sizeOver: map[uint64]int64{},
	}
	fs.plog = metalog.New(dev, dev.Size()-cfg.PrivateLogBytes, cfg.PrivateLogBytes, sim.CatOpLog)
	return fs
}

// Mount recovers a Strata file system: the shared area recovers via its
// own snapshot+log, then the private log is replayed into the overlay.
func Mount(dev *pmem.Device, cfg Config) (*FS, int, error) {
	cfg.fill()
	cfg.Shared.ReserveTail = cfg.PrivateLogBytes
	shared, _, err := logfs.Mount(dev, sharedProfile(), cfg.Shared)
	if err != nil {
		return nil, 0, err
	}
	fs := &FS{
		dev: dev, clk: dev.Clock(), cfg: cfg,
		shared:   shared,
		overlay:  map[uint64][]interval{},
		sizeOver: map[uint64]int64{},
	}
	logStart := dev.Size() - cfg.PrivateLogBytes
	var records [][]byte
	fs.plog, records = metalog.Load(dev, logStart, cfg.PrivateLogBytes, sim.CatOpLog)
	// Rebuild the overlay. Record payloads hold (ino, off, len) with the
	// data inline; we recompute each record's data device offset by
	// replaying append positions.
	cursor := logStart + sim.CacheLine // metalog tailSlot
	for _, rec := range records {
		ino := binary.LittleEndian.Uint64(rec[0:8])
		off := int64(binary.LittleEndian.Uint64(rec[8:16]))
		length := int64(binary.LittleEndian.Uint64(rec[16:24]))
		dataOff := cursor + 16 /* metalog header */ + 24 /* our header */
		fs.addInterval(ino, interval{off: off, length: length, logOff: dataOff})
		cursor += recLen(len(rec))
	}
	return fs, len(records), nil
}

// recLen mirrors metalog's 64-byte record rounding.
func recLen(payload int) int64 {
	return (int64(payload) + 16 + sim.CacheLine - 1) / sim.CacheLine * sim.CacheLine
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return "strata" }

// Device returns the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// Stats returns Strata counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

func (fs *FS) addInterval(ino uint64, iv interval) {
	fs.overlay[ino] = append(fs.overlay[ino], iv)
	if end := iv.off + iv.length; end > fs.sizeOver[ino] {
		fs.sizeOver[ino] = end
	}
}

// logWrite appends one write record (header + data) to the private log
// and returns the device offset of the data portion.
func (fs *FS) logWrite(ino uint64, off int64, data []byte) (int64, error) {
	payload := make([]byte, 24+len(data))
	binary.LittleEndian.PutUint64(payload[0:8], ino)
	binary.LittleEndian.PutUint64(payload[8:16], uint64(off))
	binary.LittleEndian.PutUint64(payload[16:24], uint64(len(data)))
	copy(payload[24:], data)
	fs.clk.Charge(sim.CatCPU, sim.StrataLogAppendNs)
	logStart := fs.dev.Size() - fs.cfg.PrivateLogBytes
	dataOff := logStart + sim.CacheLine + fs.plog.Used() + 16 + 24
	if err := fs.plog.Append(payload, metalog.SingleFence); err != nil {
		// Log full: digest and retry once.
		fs.digestLocked()
		dataOff = logStart + sim.CacheLine + fs.plog.Used() + 16 + 24
		if err := fs.plog.Append(payload, metalog.SingleFence); err != nil {
			return 0, err
		}
	}
	fs.stats.LogAppends++
	fs.stats.LoggedBytes += int64(len(data))
	return dataOff, nil
}

// digestLocked coalesces the private log into the shared area. Caller
// holds fs.mu.
func (fs *FS) digestLocked() {
	fs.stats.Digests++
	inos := make([]uint64, 0, len(fs.overlay))
	for ino := range fs.overlay {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		fs.digestIno(ino)
	}
	fs.overlay = map[uint64][]interval{}
	fs.sizeOver = map[uint64]int64{}
	fs.plog.Reset()
}

// digestIno coalesces one inode's intervals (newest wins) and writes each
// surviving segment once into the shared file — the second data write the
// paper charges Strata for.
func (fs *FS) digestIno(ino uint64) {
	ivs := fs.overlay[ino]
	if len(ivs) == 0 {
		return
	}
	path, ok := fs.pathOf(ino)
	if !ok {
		return // file was unlinked; its log data dies here
	}
	// Coalesce newest-first, clipping against already-covered ranges.
	type seg struct{ off, length, logOff int64 }
	var covered []seg
	clip := func(iv interval) []seg {
		pending := []seg{{iv.off, iv.length, iv.logOff}}
		for _, c := range covered {
			var next []seg
			for _, p := range pending {
				pEnd, cEnd := p.off+p.length, c.off+c.length
				if pEnd <= c.off || p.off >= cEnd {
					next = append(next, p)
					continue
				}
				if p.off < c.off {
					next = append(next, seg{p.off, c.off - p.off, p.logOff})
				}
				if pEnd > cEnd {
					next = append(next, seg{cEnd, pEnd - cEnd, p.logOff + (cEnd - p.off)})
				}
			}
			pending = next
		}
		return pending
	}
	var out []seg
	for i := len(ivs) - 1; i >= 0; i-- {
		segs := clip(ivs[i])
		out = append(out, segs...)
		covered = append(covered, segs...)
	}
	// Write segments in file order through the shared (KernFS) file.
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	f, err := fs.shared.OpenFile(path, vfs.O_RDWR, 0)
	if err != nil {
		return
	}
	defer f.Close()
	for _, s := range out {
		buf := make([]byte, s.length)
		fs.dev.ReadAt(buf, s.logOff, sim.CatPMData)
		if _, err := f.WriteAt(buf, s.off); err != nil {
			break
		}
		fs.stats.DigestBytes += s.length
	}
}

// pathOf finds the shared-area path of an inode (reverse lookup through
// the shared namespace). Strata keeps this mapping in its DRAM inode
// cache; a walk is adequate at reproduction scale.
func (fs *FS) pathOf(ino uint64) (string, bool) {
	var found string
	var walk func(dir string) bool
	walk = func(dir string) bool {
		ents, err := fs.shared.ReadDir(dir)
		if err != nil {
			return false
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.Ino == ino && !e.IsDir {
				found = p
				return true
			}
			if e.IsDir && walk(p) {
				return true
			}
		}
		return false
	}
	if walk("/") {
		return found, true
	}
	return "", false
}

// Digest forces a synchronous digest (exposed for benchmarks and tests).
func (fs *FS) Digest() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.digestLocked()
}

// digestIfNeeded runs a digest past the high-water mark. Caller holds
// fs.mu.
func (fs *FS) digestIfNeeded() {
	if fs.plog.Used()*100 >= fs.plog.Capacity()*int64(fs.cfg.DigestAt) {
		fs.digestLocked()
	}
}

// flushIno digests before metadata operations that would invalidate the
// overlay (unlink, truncate, rename). Caller holds fs.mu.
func (fs *FS) flushIno(ino uint64) {
	if len(fs.overlay[ino]) > 0 {
		fs.digestLocked()
	}
}
