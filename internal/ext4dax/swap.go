package ext4dax

import (
	"fmt"

	"splitfs/internal/alloc"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// This file is the reproduction of the paper's 500-line ext4 patch: the
// EXT4_IOC_MOVE_EXT extent-swap ioctl, modified to touch only metadata,
// plus the fallocate-style helpers U-Split composes it with. Together
// they implement relink(file1, offset1, file2, offset2, size) — §3.3.

// AllocRange ensures [off, off+n) of the file is backed by allocated
// blocks (fallocate). Offsets must be block-aligned. File size is not
// changed (keep-size semantics); callers extend it explicitly.
func (f *File) AllocRange(off, n int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
	if off%sim.BlockSize != 0 || n <= 0 || n%sim.BlockSize != 0 {
		return vfs.ErrInval
	}
	f.in.mu.Lock()
	err := fs.allocRangeLocked(f.in, off, n, true)
	f.in.mu.Unlock()
	fs.maybeCommit()
	return err
}

// lockPair write-locks two distinct inodes in ino order, so concurrent
// relinks/swaps over overlapping file pairs cannot deadlock. Returns the
// unlock function.
func lockPair(a, b *inode) func() {
	if a == b {
		a.mu.Lock()
		return a.mu.Unlock
	}
	if a.ino > b.ino {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	return func() { b.mu.Unlock(); a.mu.Unlock() }
}

// allocRangeLocked fills holes in [off, off+n). writeBack controls
// whether the inode record is persisted here; relink batches the write.
// Caller holds fs.mu and in.mu.
func (fs *FS) allocRangeLocked(in *inode, off, n int64, writeBack bool) error {
	logical := off / sim.BlockSize
	end := (off + n) / sim.BlockSize
	for logical < end {
		if _, contig, ok := translate(fs, in, logical); ok {
			logical += contig
			continue
		}
		holeEnd := nextMapped(in, logical)
		if holeEnd > end {
			holeEnd = end
		}
		e, dirty, err := fs.bBmp.AllocExtent(holeEnd - logical)
		if err != nil {
			return err
		}
		fs.note(dirty.Off, dirty.Len)
		if logical == fileBlocks(in) {
			appendFileExtent(in, e)
		} else {
			// Holes and sparse past-the-end allocations land at their
			// requested logical position.
			insertFileExtent(in, logical, e)
		}
		in.blocks += e.Len
		logical += e.Len
	}
	if writeBack {
		fs.writeInode(in)
	}
	return nil
}

// PunchHole deallocates the blocks backing [off, off+n), leaving a hole.
// Offsets must be block-aligned.
func (f *File) PunchHole(off, n int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
	if off%sim.BlockSize != 0 || n <= 0 || n%sim.BlockSize != 0 {
		return vfs.ErrInval
	}
	f.in.mu.Lock()
	f.in.mapEpoch.Add(1) // remap event: blocks become reusable below
	for _, e := range extractExtents(f.in, off/sim.BlockSize, n/sim.BlockSize) {
		fs.deferFree(fs.bBmp, e)
		f.in.blocks -= e.Len
	}
	fs.writeInode(f.in)
	f.in.mu.Unlock()
	fs.maybeCommit()
	return nil
}

// SwapExtents atomically exchanges the physical blocks backing
// [srcOff, srcOff+n) of src with those backing [dstOff, dstOff+n) of dst.
// Metadata only: no data is copied, moved, or flushed, and existing
// memory mappings remain valid (they keep pointing at the same physical
// blocks). Offsets and length must be block-aligned and both ranges fully
// allocated. Atomicity comes from noting both inodes in the running
// journal transaction; Relink commits it.
func (fs *FS) SwapExtents(src, dst *File, srcOff, dstOff, n int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
	unlock := lockPair(src.in, dst.in)
	err := fs.swapExtentsLocked(src.in, dst.in, srcOff, dstOff, n, true)
	unlock()
	fs.maybeCommit()
	return err
}

func (fs *FS) swapExtentsLocked(src, dst *inode, srcOff, dstOff, n int64, writeBack bool) error {
	if srcOff%sim.BlockSize != 0 || dstOff%sim.BlockSize != 0 ||
		n <= 0 || n%sim.BlockSize != 0 {
		return vfs.ErrInval
	}
	srcBlk, dstBlk, cnt := srcOff/sim.BlockSize, dstOff/sim.BlockSize, n/sim.BlockSize
	if !rangeMapped(fs, src, srcBlk, cnt) {
		return fmt.Errorf("src unmapped at blk %d cnt %d: %w", srcBlk, cnt, vfs.ErrInval)
	}
	if !rangeMapped(fs, dst, dstBlk, cnt) {
		return fmt.Errorf("dst unmapped at blk %d cnt %d: %w", dstBlk, cnt, vfs.ErrInval)
	}
	// Remap event for both inodes: each now addresses different physical
	// blocks at the swapped range. (The data itself does not move — an
	// ext4dax.Mapping stays valid — but a lease's Extent.DevOff table is
	// stale the moment ownership changes, because the counterpart file
	// may free or overwrite its newly acquired blocks.)
	src.mapEpoch.Add(1)
	dst.mapEpoch.Add(1)
	srcExts := extractExtents(src, srcBlk, cnt)
	dstExts := extractExtents(dst, dstBlk, cnt)
	placeExtents(dst, dstBlk, srcExts)
	placeExtents(src, srcBlk, dstExts)
	if writeBack {
		fs.writeInode(src)
		fs.writeInode(dst)
	}
	return nil
}

// rangeMapped reports whether [blk, blk+cnt) is fully allocated.
func rangeMapped(fs *FS, in *inode, blk, cnt int64) bool {
	for cur := blk; cur < blk+cnt; {
		_, contig, ok := translate(fs, in, cur)
		if !ok {
			return false
		}
		cur += contig
	}
	return true
}

// placeExtents inserts physical extents consecutively starting at the
// given logical block (the range is a hole after extractExtents).
func placeExtents(in *inode, logical int64, exts []alloc.Extent) {
	for _, e := range exts {
		insertFileExtent(in, logical, e)
		logical += e.Len
	}
}

// Relink is the kernel half of the paper's relink primitive: it logically
// and atomically moves [srcOff, srcOff+n) of src to [dstOff, dstOff+n) of
// dst without copying data. It performs, in one journal transaction:
//
//  1. allocate blocks at the destination range (so the swap has both
//     sides populated, as the real ioctl requires — §3.5),
//  2. swap extents (metadata only),
//  3. punch the now-swapped blocks out of the source (the "de-allocate
//     the blocks" step that keeps relink space-neutral),
//  4. extend the destination file size to newDstSize if larger.
//
// The commit makes the move atomic; a crash before it leaves both files
// untouched. Existing memory mappings of the moved blocks remain valid.
func (fs *FS) Relink(src, dst *File, srcOff, dstOff, n int64, newDstSize int64) error {
	if err := fs.RelinkStep(src, dst, srcOff, dstOff, n, newDstSize); err != nil {
		return err
	}
	return fs.CommitMeta()
}

// RelinkStep performs the relink without committing, so U-Split can batch
// several runs of one fsync into a single atomic journal transaction.
// The caller must finish with CommitMeta.
func (fs *FS) RelinkStep(src, dst *File, srcOff, dstOff, n int64, newDstSize int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	// One journal handle covers the whole ioctl (alloc + swap + punch).
	fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
	unlock := lockPair(src.in, dst.in)
	defer unlock()
	if err := fs.allocRangeLocked(dst.in, dstOff, n, false); err != nil {
		return err
	}
	if err := fs.swapExtentsLocked(src.in, dst.in, srcOff, dstOff, n, false); err != nil {
		return err
	}
	// Punch the source range: it now holds the destination's old blocks
	// (or the fresh ones from step 1); either way the staging space is
	// reclaimed — at commit time, per the deferred-free rule.
	for _, e := range extractExtents(src.in, srcOff/sim.BlockSize, n/sim.BlockSize) {
		fs.deferFree(fs.bBmp, e)
		src.in.blocks -= e.Len
	}
	if newDstSize > dst.in.size {
		dst.in.size = newDstSize
	}
	dst.in.blocks = countBlocks(dst.in)
	// One inode write-back per side for the whole ioctl.
	fs.writeInode(src.in)
	fs.writeInode(dst.in)
	return nil
}

// CommitMeta commits the running journal transaction. It is the tail of
// the relink ioctl: this is what makes SplitFS's fsync (6.85 µs, Table 6)
// far cheaper than ext4's full fsync path (28.98 µs). If another thread
// holds an open batch handle, the commit waits until the batch closes so
// it can never persist a half-applied relink.
func (fs *FS) CommitMeta() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.awaitCommittable()
	return fs.commitTx()
}

// TxID returns the id of the running journal transaction, starting one if
// none is. Every mutation noted while this id stays current commits with
// it; CommitUpTo(id) then makes them durable. Capture the id while a
// batch handle (BeginBatch) is still open: the transaction cannot commit
// while the handle is held, so the id is guaranteed to cover every note
// the batch made.
func (fs *FS) TxID() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.beginTx()
	return fs.txID
}

// CommitUpTo is the group-commit form of CommitMeta: it returns once
// transaction txid has committed. If a concurrent committer — the
// group-commit leader, in jbd2 terms — already committed it, the call
// returns immediately with no journal IO and no fences of its own; this
// is how concurrent fsyncs of distinct files coalesce into one journal
// transaction and one fence pair. Otherwise the caller becomes the
// leader, waits for open batch handles to close, and commits.
func (fs *FS) CommitUpTo(txid uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.doneTxID >= txid {
		fs.stats.gcFollowers.Add(1)
		return nil
	}
	// awaitCommittable releases fs.mu while batch handles are open; a
	// concurrent leader may commit our transaction in that window, so
	// re-check afterwards rather than double-commit.
	fs.awaitCommittable()
	if fs.doneTxID >= txid {
		fs.stats.gcFollowers.Add(1)
		return nil
	}
	if err := fs.commitTx(); err != nil {
		return err
	}
	fs.stats.gcLeaders.Add(1)
	if fs.doneTxID < txid {
		// Ids are monotone, so one successful commit of the running
		// transaction covers txid — unless that transaction was consumed
		// by an earlier failed commit. Surface that instead of spinning.
		return fmt.Errorf("ext4dax: transaction %d cannot commit (committed through %d; lost to an earlier failed commit)", txid, fs.doneTxID)
	}
	return nil
}

// DoneTxID reports the highest committed transaction id (tests and
// harness instrumentation).
func (fs *FS) DoneTxID() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.doneTxID
}

// SetUserWatermark stores U-Split's log-sequence watermark in the inode.
// It joins the running journal transaction, so a relink and its watermark
// update commit atomically; the caller commits via CommitMeta.
func (f *File) SetUserWatermark(v uint64) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f.in.mu.Lock()
	defer f.in.mu.Unlock()
	f.in.uwm = v
	fs.writeInode(f.in)
}

// UserWatermark reads the inode's U-Split watermark.
func (f *File) UserWatermark() uint64 {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return f.in.uwm
}

// MaxUserWatermark scans all inodes for the highest watermark, so a
// recovered U-Split instance can continue its sequence monotonically.
func (fs *FS) MaxUserWatermark() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var m uint64
	for _, in := range fs.icache {
		if in.uwm > m {
			m = in.uwm
		}
	}
	return m
}

// RangeAllocated reports whether every block of [off, off+n) is backed by
// physical blocks. U-Split's recovery uses it to probe whether a relink
// already punched a staging range (§5.3).
func (f *File) RangeAllocated(off, n int64) bool {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	first := off / sim.BlockSize
	cnt := (off+n+sim.BlockSize-1)/sim.BlockSize - first
	return rangeMapped(fs, f.in, first, cnt)
}

// PathByIno finds the path of a live inode by walking the directory tree;
// used by U-Split recovery to reopen files named in operation-log entries.
func (fs *FS) PathByIno(ino uint64) (string, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var found string
	var walk func(prefix string, dir *inode) bool
	walk = func(prefix string, dir *inode) bool {
		if fs.ensureDir(dir) != nil {
			return false
		}
		for name, de := range dir.entries {
			p := prefix + "/" + name
			if de.ino == ino {
				found = p
				return true
			}
			if de.isDir {
				if child := fs.icache[de.ino]; child != nil && walk(p, child) {
					return true
				}
			}
		}
		return false
	}
	if walk("", fs.icache[RootIno]) {
		return found, true
	}
	return "", false
}

func countBlocks(in *inode) int64 {
	var n int64
	for _, e := range in.extents {
		n += e.phys.Len
	}
	return n
}
