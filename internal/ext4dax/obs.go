package ext4dax

import "splitfs/internal/obs"

// RegisterObs exports K-Split's counters into an obs registry as
// computed gauges: the snapshot evaluates the same atomics Stats()
// reads, so the data path pays nothing for the export.
func (fs *FS) RegisterObs(r *obs.Registry) {
	r.Func("ext4dax/traps", fs.stats.traps.Load)
	r.Func("ext4dax/data_reads", fs.stats.dataReads.Load)
	r.Func("ext4dax/data_writes", fs.stats.dataWrites.Load)
	r.Func("ext4dax/meta_ops", fs.stats.metaOps.Load)
	r.Func("ext4dax/commits", fs.stats.commits.Load)
	r.Func("ext4dax/gc_leaders", fs.stats.gcLeaders.Load)
	r.Func("ext4dax/gc_followers", fs.stats.gcFollowers.Load)
}
