// Package nova implements the NOVA baseline of the SplitFS paper: a
// log-structured PM file system (Xu & Swanson, FAST '16) with per-
// operation log entries and persistent tail updates — "NOVA writes at
// least two cache lines and issues two fences" per operation (§3.3).
//
// Two configurations from the paper's evaluation:
//
//   - Strict: copy-on-write data updates, atomic + synchronous operations
//     (the paper's NOVA-Strict, compared against SplitFS-strict).
//   - Relaxed: in-place data updates, synchronous but not atomic data
//     (the paper's NOVA-Relaxed, compared against SplitFS-sync).
package nova

import (
	"splitfs/internal/logfs"
	"splitfs/internal/metalog"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// Mode selects the NOVA configuration.
type Mode int

const (
	Strict Mode = iota
	Relaxed
)

func profile(m Mode) logfs.Profile {
	p := logfs.Profile{
		FenceMode:    metalog.EntryPlusTail, // entry + tail: 2 lines, 2 fences
		PerOpCPU:     sim.NovaLogEntryNs,
		WritePathCPU: sim.NovaWritePathNs,
		ReadPathCPU:  sim.Ext4ReadPathNs, // read paths are comparably lean
		SyncData:     true,
		KernelFS:     true,
	}
	if m == Strict {
		p.Name = "nova-strict"
		p.COW = true
	} else {
		p.Name = "nova-relaxed"
		// In-place updates still rewrite per-inode log entries first
		// (§5.7), making the relaxed write path more expensive per
		// operation than the COW bookkeeping it saves.
		p.WritePathCPU = sim.NovaRelaxedWritePathNs
	}
	return p
}

// FS is a mounted NOVA instance.
type FS = logfs.FS

// Config re-exports the engine configuration.
type Config = logfs.Config

// New formats dev as a NOVA file system in the given mode.
func New(dev *pmem.Device, m Mode, cfg Config) *FS {
	return logfs.New(dev, profile(m), cfg)
}

// Mount recovers a NOVA file system after a crash, replaying its logs.
// Returns the file system and the number of log records replayed.
func Mount(dev *pmem.Device, m Mode, cfg Config) (*FS, int, error) {
	return logfs.Mount(dev, profile(m), cfg)
}
