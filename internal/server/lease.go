// Zero-copy data plane: leases over shared mapping segments.
//
// A lease is the served equivalent of the paper's per-application mmap:
// the server collects a file's extent mappings through the backend's
// vfs.Mappable capability and publishes them as a *segment* — an
// in-process object standing in for a shared-memory window onto the PM
// device (modeled on ext4dax.Mapping). The client library resolves the
// segment by id and satisfies reads with plain loads through the
// extents, and staged appends by storing through the mapped file
// directly; neither crosses the RPC codec. Only metadata operations,
// lease grants, and revocations stay on the wire.
//
// Coherence is seqlock-style (see vfs.Mappable): every remapping event
// bumps the backend's mapping epoch before stale device bytes can be
// recycled, and a leased read validates the epoch after its loads,
// discarding the bytes and retiring to the copy path if it moved. The
// segment's revoked flag is the server-initiated half: destructive
// namespace/size operations (truncate, O_TRUNC or conflicting writable
// opens, rename, unlink) revoke outstanding leases on the inode before
// executing — the revoker sets the flag, then takes the segment lock
// write-side to drain readers pinned under the read side, then pushes a
// Trevoke message so a stream client learns eagerly rather than on its
// next validation failure.
//
// Lock hierarchy: leasetab (the server's ino→segment index) is taken on
// its own, never inside a segment or backend lock; leaseseg is held
// read-side across backend data operations, hence ordered outside the
// splitfs writer lock.
//
// +lockrank:order leaseseg < wmu
package server

import (
	"sync"
	"sync/atomic"

	"splitfs/internal/vfs"
)

// leaseSegment is one granted lease: the published mapping window plus
// the revocation state shared between server and client (the flag page
// of the shared-memory segment, in the model).
type leaseSegment struct {
	id      uint64
	ino     uint64
	sess    *Session
	handle  uint64
	file    vfs.File     // server-side open file backing the lease
	m       vfs.Mappable // same object, mapped capability
	epoch   uint64       // mapping epoch the extents were collected under
	size    int64        // file size at grant time
	extents []vfs.Extent

	// mu pins in-flight leased I/O: readers hold the read side across
	// their loads, the revoker takes the write side once to drain them
	// before the destructive operation proceeds.
	mu      sync.RWMutex // +lockrank:leaseseg
	revoked atomic.Bool
	acked   atomic.Bool // client acknowledged the revoke (advisory)
}

// segRegistry is the process-global segment namespace — the stand-in
// for the shared-memory object store both sides map. A client that
// cannot resolve a segment id here (a hypothetical out-of-process peer)
// simply stays on the copy path.
var segRegistry = struct {
	mu   sync.Mutex // +lockrank:leasereg
	m    map[uint64]*leaseSegment
	next uint64
}{m: map[uint64]*leaseSegment{}}

func registerSegment(seg *leaseSegment) {
	segRegistry.mu.Lock()
	segRegistry.next++
	seg.id = segRegistry.next
	segRegistry.m[seg.id] = seg
	segRegistry.mu.Unlock()
}

func lookupSegment(id uint64) *leaseSegment {
	segRegistry.mu.Lock()
	defer segRegistry.mu.Unlock()
	return segRegistry.m[id]
}

func unregisterSegment(id uint64) {
	segRegistry.mu.Lock()
	delete(segRegistry.m, id)
	segRegistry.mu.Unlock()
}

// grantLease builds and indexes a lease for the session's open handle.
// Caller is the session's dispatch goroutine (tLease).
func (srv *Server) grantLease(s *Session, handle uint64, f vfs.File) (*leaseSegment, error) {
	m, ok := f.(vfs.Mappable)
	if !ok {
		return nil, vfs.WrapPath("lease", "", vfs.ErrInval)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.IsDir {
		return nil, vfs.WrapPath("lease", "", vfs.ErrIsDir)
	}
	exts, epoch, err := m.MapExtents(0, fi.Size)
	if err != nil {
		return nil, err
	}
	seg := &leaseSegment{
		ino: fi.Ino, sess: s, handle: handle,
		file: f, m: m, epoch: epoch, size: fi.Size, extents: exts,
	}
	registerSegment(seg)
	srv.leaseMu.Lock()
	byIno := srv.leases[seg.ino]
	if byIno == nil {
		byIno = map[uint64]*leaseSegment{}
		srv.leases[seg.ino] = byIno
	}
	byIno[seg.id] = seg
	if s.leases == nil {
		s.leases = map[uint64]*leaseSegment{}
	}
	s.leases[seg.id] = seg
	srv.leaseMu.Unlock()
	srv.nLeases.Add(1)
	srv.stats.leaseGrants.Add(1)
	return seg, nil
}

// leasesActive reports whether any lease is outstanding. The revocation
// hooks in Session.execute are gated on it so that lease-free serving
// performs exactly the operation sequence it did before leases existed
// (the determinism the crash differential pins).
func (srv *Server) leasesActive() bool { return srv.nLeases.Load() > 0 }

// revokeIno revokes every outstanding lease on an inode. Called by the
// destructive-operation hooks before the operation executes.
func (srv *Server) revokeIno(ino uint64) {
	srv.revokeWhere(func(seg *leaseSegment) bool { return seg.ino == ino })
}

// revokeHandleLeases revokes leases granted on one session handle
// (Tclose: the backing file is about to be closed, which may free an
// orphan's blocks).
func (srv *Server) revokeHandleLeases(s *Session, handle uint64) {
	srv.revokeWhere(func(seg *leaseSegment) bool {
		return seg.sess == s && seg.handle == handle
	})
}

// revokeSessionLeases revokes everything a session holds. Teardown runs
// it before closing the handle table, so no lease survives its session
// — and, since Server.Close tears every session down, no lease survives
// a server generation.
func (srv *Server) revokeSessionLeases(s *Session) {
	srv.revokeWhere(func(seg *leaseSegment) bool { return seg.sess == s })
}

// revokeWhere removes matching segments from the index under leaseMu,
// then revokes them with no lease-table lock held (the drain must not
// nest inside leaseMu: a reader pinned under seg.mu never takes
// leaseMu, but keeping the scopes disjoint keeps the hierarchy flat).
func (srv *Server) revokeWhere(match func(*leaseSegment) bool) {
	if srv.nLeases.Load() == 0 {
		return
	}
	var victims []*leaseSegment
	srv.leaseMu.Lock()
	for ino, byIno := range srv.leases {
		for id, seg := range byIno {
			if !match(seg) {
				continue
			}
			delete(byIno, id)
			if seg.sess.leases != nil {
				delete(seg.sess.leases, id)
			}
			victims = append(victims, seg)
		}
		if len(byIno) == 0 {
			delete(srv.leases, ino)
		}
	}
	srv.leaseMu.Unlock()
	for _, seg := range victims {
		srv.revokeSegment(seg)
	}
}

// revokeSegment performs the revocation protocol on one segment: flag,
// drain, notify. Idempotent.
func (srv *Server) revokeSegment(seg *leaseSegment) {
	if seg.revoked.Swap(true) {
		return
	}
	// Drain: an in-flight leased read or write holds seg.mu read-side;
	// once the write side is acquired every pinned operation has
	// completed, and any later one observes the revoked flag.
	seg.mu.Lock()
	seg.mu.Unlock() //nolint — empty critical section IS the drain barrier
	srv.nLeases.Add(-1)
	srv.stats.leaseRevokes.Add(1)
	seg.sess.pushRevoke(seg.id)
	unregisterSegment(seg.id)
}

// pushRevoke sends the server-initiated Trevoke frame. Request id 0 is
// reserved for it (client request ids start at 1). Loopback and parked
// sessions have no conn; their clients learn from the shared revoked
// flag, which is already set.
func (s *Session) pushRevoke(segID uint64) {
	s.replyMu.Lock()
	defer s.replyMu.Unlock()
	if s.conn == nil {
		return
	}
	if ff := s.srv.cfg.FailReplies; ff != nil && ff() {
		// Dying daemon: pushes die with the replies. The flag page has
		// already propagated the revocation.
		return
	}
	var e enc
	e.u64(segID)
	_ = writeFrame(s.conn.rwc, tRevoke, 0, e.b)
}

// ackRevoke records the client's Trevokeack (advisory: the revoked flag
// is the hard edge of the protocol).
func (srv *Server) ackRevoke(segID uint64) {
	if seg := lookupSegment(segID); seg != nil {
		seg.acked.Store(true)
	}
	srv.stats.revokeAcks.Add(1)
}

// ActiveLeases reports the number of outstanding leases — zero after
// Close, which the served crash campaign asserts: a lease must not
// survive its server generation.
func (srv *Server) ActiveLeases() int64 { return srv.nLeases.Load() }
