// Package splitfs is the public facade of the SplitFS reproduction: a
// persistent-memory file-system stack, entirely simulated in Go, that
// implements the system from
//
//	Kadekodi, Lee, Kashyap, Kim, Kolli, Chidambaram.
//	"SplitFS: Reducing Software Overhead in File Systems for Persistent
//	Memory", SOSP 2019.
//
// The stack comprises a PM device emulator with Optane-calibrated costs
// and a crash/persistence model, the ext4 DAX kernel file system with the
// relink extent-swap primitive (K-Split), the U-Split user-space library
// file system with three consistency modes, and the baselines the paper
// compares against (PMFS, NOVA strict/relaxed, Strata).
//
// Quick start:
//
//	stack, _ := splitfs.NewStack(splitfs.StackConfig{Mode: splitfs.Strict})
//	f, _ := vfs.Create(stack.FS, "/hello")
//	f.Write([]byte("persistent"))
//	f.Sync() // relink: staged data moves into the file without a copy
//
// See examples/ for complete programs and cmd/splitbench for the paper's
// evaluation tables.
package splitfs

import (
	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// Re-exported consistency modes (§3.2, Table 3).
const (
	POSIX  = splitfs.POSIX
	Sync   = splitfs.Sync
	Strict = splitfs.Strict
)

// Mode re-exports the U-Split consistency mode type.
type Mode = splitfs.Mode

// FS re-exports the U-Split file system type.
type FS = splitfs.FS

// StackConfig configures a full SplitFS stack on a fresh simulated PM
// device.
type StackConfig struct {
	// DeviceBytes is the PM module size (default 256 MB).
	DeviceBytes int64
	// Mode is the consistency mode (default POSIX).
	Mode Mode
	// TrackPersistence enables Crash() on the device (costs 2x memory).
	TrackPersistence bool
	// USplit tunables; zero values take the §3.6 defaults.
	USplit splitfs.Config
	// KSplit (ext4 DAX) format parameters.
	KSplit ext4dax.Config
}

// Stack is a ready-to-use SplitFS instance with access to every layer.
type Stack struct {
	Device *pmem.Device
	Clock  *sim.Clock
	KFS    *ext4dax.FS
	FS     *splitfs.FS
}

// NewStack builds a device, formats K-Split, and mounts a U-Split
// instance over it.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = 256 << 20
	}
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{
		Size:             cfg.DeviceBytes,
		Clock:            clk,
		TrackPersistence: cfg.TrackPersistence,
		TrackWear:        true,
	})
	kfs, err := ext4dax.Mkfs(dev, cfg.KSplit)
	if err != nil {
		return nil, err
	}
	cfg.USplit.Mode = cfg.Mode
	fs, err := splitfs.New(kfs, cfg.USplit)
	if err != nil {
		return nil, err
	}
	return &Stack{Device: dev, Clock: clk, KFS: kfs, FS: fs}, nil
}

// Crash simulates power failure (the device must have been built with
// TrackPersistence). rngSeed 0 drops all unfenced lines; otherwise
// unfenced lines tear at 8-byte granularity.
func (s *Stack) Crash(rngSeed uint64) error {
	var rng *sim.RNG
	if rngSeed != 0 {
		rng = sim.NewRNG(rngSeed)
	}
	return s.Device.Crash(rng)
}

// Recover remounts the crashed device: ext4 DAX journal replay followed
// by U-Split operation-log replay (§5.3). It returns a fresh stack over
// the same device.
func (s *Stack) Recover(mode Mode) (*Stack, *splitfs.RecoveryReport, error) {
	kfs, _, err := ext4dax.Mount(s.Device, ext4dax.Config{})
	if err != nil {
		return nil, nil, err
	}
	fs, report, err := splitfs.RecoverFS(kfs, splitfs.Config{Mode: mode})
	if err != nil {
		return nil, nil, err
	}
	return &Stack{Device: s.Device, Clock: s.Clock, KFS: kfs, FS: fs}, report, nil
}

// File re-exports the POSIX-shaped file handle interface.
type File = vfs.File

// FileSystem re-exports the file-system interface all five
// implementations share.
type FileSystem = vfs.FileSystem
