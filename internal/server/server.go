package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"splitfs/internal/obs"
	"splitfs/internal/vfs"
)

// Config sizes the service.
type Config struct {
	// Workers is the dispatch pool size (default GOMAXPROCS). The pool
	// bounds cross-session concurrency; within a session requests always
	// execute FIFO.
	Workers int

	// TokenSalt diversifies re-attach tokens across server generations.
	// A restarted server (the crash campaigns build one per recovery)
	// should use a different salt so a stale token from the previous
	// generation cannot collide with a fresh session's token.
	TokenSalt uint64

	// DisableLeases removes featLeases from the server's advertised
	// feature set: every attach negotiates down to the chunked copy
	// path, as against a pre-lease server. Used by the downgrade tests
	// and available as an operational kill switch.
	DisableLeases bool

	// FailReplies, when set, is consulted before every reply frame is
	// written; returning true makes the server close the connection
	// instead of replying — the executed-but-unacknowledged window a real
	// daemon death creates. The crash campaigns key this on the simulated
	// device's CrashFired, so an operation is only ever acknowledged if
	// it completed before the durable image froze (the SetFenceFilter
	// pattern applied to the wire).
	FailReplies func() bool

	// Logf, when set, receives disconnect classification and re-attach
	// diagnostics (cmd/splitfsd wires log.Printf here).
	Logf func(format string, args ...any)

	// OpClock, when set, is sampled before and after every executed
	// request; the delta is the op's cost in the session's cost
	// histogram and flight records. Deterministic contexts feed the sim
	// clock here (crash.NewBackend does it automatically), so op costs
	// — and the metric snapshots built from them — are exact functions
	// of the workload; cmd/splitfsd feeds the wall clock, which is fine
	// outside the deterministic set.
	OpClock func() int64

	// OpFences, when set, is sampled alongside OpClock; the delta is
	// the op's fence count in its flight record (the pmem device's
	// cumulative fence counter in deterministic contexts).
	OpFences func() int64

	// Registry, when set, receives the server's computed gauges at
	// construction (RegisterObs). Optional: per-session metric blocks
	// and flight recorders exist regardless.
	Registry *obs.Registry

	// FlightSlots sizes each session's flight recorder ring (default
	// obs.DefaultFlightSlots; rounded up to a power of two). Negative
	// disables flight recording.
	FlightSlots int
}

// wireStats is the server-side transport/replay counter set.
type wireStats struct {
	cleanCloses      atomic.Int64
	tornDisconnects  atomic.Int64
	otherDisconnects atomic.Int64
	parkedSessions   atomic.Int64
	reattached       atomic.Int64
	replayedRequests atomic.Int64
	replayCacheHits  atomic.Int64
	healedReplays    atomic.Int64
	droppedReplies   atomic.Int64
	leaseGrants      atomic.Int64
	leaseRevokes     atomic.Int64
	revokeAcks       atomic.Int64
}

// WireStats is a snapshot of the server's transport and replay counters:
// how connections ended (clean close at a frame boundary vs. torn
// mid-frame vs. other transport errors), how many resumable sessions
// parked and re-attached, and how replayed requests resolved (served
// from the exactly-once cache, executed fresh, healed).
type WireStats struct {
	CleanCloses      int64
	TornDisconnects  int64
	OtherDisconnects int64
	ParkedSessions   int64 // cumulative park events
	Reattached       int64
	ReplayedRequests int64
	ReplayCacheHits  int64
	HealedReplays    int64
	DroppedReplies   int64 // replies suppressed by FailReplies
	LeaseGrants      int64 // zero-copy leases granted
	LeaseRevokes     int64 // leases revoked (teardown included)
	RevokeAcks       int64 // client Trevokeack frames received
}

// Server multiplexes client sessions onto one vfs.FileSystem. The
// backend must be safe for concurrent use (every backend in this
// repository is, since the PR 1 lock decomposition); the server adds no
// global lock of its own — distinct sessions proceed in parallel
// through the worker pool, meeting at the backend's own fine-grained
// locks and at ext4dax group commit.
type Server struct {
	fs  vfs.FileSystem
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*Session
	byToken  map[uint64]*Session // resumable sessions, keyed by re-attach token
	nextSess uint64
	conns    map[*serverConn]bool
	closed   bool

	stats wireStats

	// Observability plane (metrics.go): detached sessions fold their
	// metric blocks here so server-wide totals are exact across churn,
	// and their flight recorders park in the retired ring for
	// post-teardown dumps (guarded by mu).
	retiredObs sessionObs
	retired    []retiredFlight

	// Zero-copy lease index: inode → segment id → segment, plus the
	// session-side maps (Session.leases) guarded by the same lock. The
	// atomic count gates the revocation hooks in Session.execute so a
	// lease-free server performs no extra work (see lease.go).
	leaseMu sync.Mutex // +lockrank:leasetab
	leases  map[uint64]map[uint64]*leaseSegment
	nLeases atomic.Int64

	work      chan *Session
	quit      chan struct{}
	workersUp sync.Once
	wg        sync.WaitGroup
}

// logf forwards to Config.Logf when set.
func (srv *Server) logf(format string, args ...any) {
	if srv.cfg.Logf != nil {
		srv.cfg.Logf(format, args...)
	}
}

// Stats snapshots the transport/replay counters.
func (srv *Server) Stats() WireStats {
	return WireStats{
		CleanCloses:      srv.stats.cleanCloses.Load(),
		TornDisconnects:  srv.stats.tornDisconnects.Load(),
		OtherDisconnects: srv.stats.otherDisconnects.Load(),
		ParkedSessions:   srv.stats.parkedSessions.Load(),
		Reattached:       srv.stats.reattached.Load(),
		ReplayedRequests: srv.stats.replayedRequests.Load(),
		ReplayCacheHits:  srv.stats.replayCacheHits.Load(),
		HealedReplays:    srv.stats.healedReplays.Load(),
		DroppedReplies:   srv.stats.droppedReplies.Load(),
		LeaseGrants:      srv.stats.leaseGrants.Load(),
		LeaseRevokes:     srv.stats.leaseRevokes.Load(),
		RevokeAcks:       srv.stats.revokeAcks.Load(),
	}
}

// ParkedSessions reports how many resumable sessions currently sit
// parked awaiting re-attach (distinct from the cumulative stat).
func (srv *Server) ParkedSessions() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	n := 0
	for _, s := range srv.sessions {
		s.mu.Lock()
		if s.parked {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// mix64 is the splitmix64 finalizer — the token generator. Tokens are
// credentials only against accidental cross-session confusion (a stale
// client from a previous server generation), not an adversary.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// serverConn is one accepted stream connection (unix socket, net.Pipe).
type serverConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
}

// New builds a server over fs. No goroutines start until the first
// stream connection arrives, so loopback-only servers (the crash
// harness's served: wrapper) stay goroutine-free and deterministic.
func New(fs vfs.FileSystem, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	srv := &Server{
		fs:       fs,
		cfg:      cfg,
		sessions: make(map[uint64]*Session),
		byToken:  make(map[uint64]*Session),
		conns:    make(map[*serverConn]bool),
		leases:   make(map[uint64]map[uint64]*leaseSegment),
		work:     make(chan *Session),
		quit:     make(chan struct{}),
	}
	if cfg.Registry != nil {
		srv.RegisterObs(cfg.Registry)
	}
	return srv
}

// FS returns the served backend.
func (srv *Server) FS() vfs.FileSystem { return srv.fs }

// features is the server's advertised feature set. A backend that is
// not vfs.Mappable still advertises leases: grants simply fail per
// handle and the client caches the refusal.
func (srv *Server) features() uint32 {
	if srv.cfg.DisableLeases {
		return 0
	}
	return featLeases
}

// attach creates a session confined to root ("" or "/" = whole tree).
// A non-root subtree must already exist as a directory. A resumable
// session gets a nonzero re-attach token and survives transport loss by
// parking (see Session.disconnect). feats is the client's requested
// feature set; the session operates under the intersection.
func (srv *Server) attach(root string, conn *serverConn, resumable bool, feats uint32) (*Session, error) {
	root = vfs.CleanPath(root)
	if root != "/" {
		fi, err := srv.fs.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("attach %s: %w", root, err)
		}
		if !fi.IsDir {
			return nil, vfs.WrapPath("attach", root, vfs.ErrNotDir)
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, errServerClosed
	}
	srv.nextSess++
	s := &Session{srv: srv, id: srv.nextSess, root: root, ht: newHandleTable(), conn: conn, resumable: resumable,
		features: feats & srv.features()}
	s.gen.Store(1)
	if srv.cfg.FlightSlots >= 0 {
		n := srv.cfg.FlightSlots
		if n == 0 {
			n = obs.DefaultFlightSlots
		}
		s.flight = obs.NewRecorder(n)
	}
	if resumable {
		s.token = mix64(srv.cfg.TokenSalt ^ mix64(s.id))
		if s.token == 0 {
			s.token = 1 // zero means "no token" on the wire
		}
		srv.byToken[s.token] = s
	}
	srv.sessions[s.id] = s
	return s, nil
}

// reattach resolves a live session by token and hands it conn, writing
// the handshake reply atomically with the adoption (see Session.adopt).
// The session may still think it owns its old transport — a client can
// reconnect before the server notices the loss — in which case the
// adoption is a takeover. Any lookup failure reads as errUnknownSession
// so the client falls back to a cold attach — always safe, never
// privileged.
func (srv *Server) reattach(token uint64, conn *serverConn, handshake func(*Session) error) (*Session, error) {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil, errServerClosed
	}
	s := srv.byToken[token]
	srv.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w (token unknown)", errUnknownSession)
	}
	if err := s.adopt(conn, func() error { return handshake(s) }); err != nil {
		if errors.Is(err, errUnknownSession) {
			return nil, err
		}
		// The session was adopted but the handshake write failed; hand it
		// back so the caller can re-park it for the next attempt.
		return s, err
	}
	srv.stats.reattached.Add(1)
	srv.logf("server: session %d: re-attached", s.id)
	return s, nil
}

// detach unregisters a session (teardown calls it once).
func (srv *Server) detach(s *Session) {
	srv.mu.Lock()
	delete(srv.sessions, s.id)
	if s.token != 0 {
		delete(srv.byToken, s.token)
	}
	srv.mu.Unlock()
	srv.retireSession(s)
}

// SessionCount reports the live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// OpenHandles reports live handles across every session.
func (srv *Server) OpenHandles() int {
	srv.mu.Lock()
	sess := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sess = append(sess, s)
	}
	srv.mu.Unlock()
	n := 0
	for _, s := range sess {
		n += s.ht.open()
	}
	return n
}

// startWorkers brings the dispatch pool up (first stream connection).
func (srv *Server) startWorkers() {
	srv.workersUp.Do(func() {
		for i := 0; i < srv.cfg.Workers; i++ {
			srv.wg.Add(1)
			go func() {
				defer srv.wg.Done()
				for {
					select {
					case s := <-srv.work:
						s.drain()
					case <-srv.quit:
						return
					}
				}
			}()
		}
	})
}

// enqueue appends a request to the session queue and schedules the
// session on the pool unless a worker already owns it — the per-session
// FIFO rule: one worker at a time, requests in arrival order.
func (s *Session) enqueue(req request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return // the connection is going away; replies are undeliverable
	}
	s.queue = append(s.queue, req)
	schedule := !s.running
	if schedule {
		s.running = true
	}
	s.mu.Unlock()
	if schedule {
		select {
		case s.srv.work <- s:
		case <-s.srv.quit:
			s.teardownOwned()
		}
	}
}

// teardownOwned finishes teardown for a session this goroutine owns
// (running == true was claimed but no worker will drain it).
func (s *Session) teardownOwned() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.finishTeardown()
}

// drain executes the session's queue until it empties or the session
// closes. Only one worker runs drain for a session at a time.
func (s *Session) drain() {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.finishTeardown()
			return
		}
		if len(s.queue) == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		rtyp, rid, payload := s.handle(req.typ, req.id, req.payload)
		s.reply(rtyp, rid, payload)
	}
}

// reply writes one response frame. An oversized payload (a handler bug
// — handlers bound their replies) degrades to an Rerror so one request
// cannot wedge the connection; an I/O failure kills the connection (the
// read loop then tears the session down or parks it). The connection
// pointer is read under replyMu because park/adopt swap it. When the
// FailReplies hook fires the reply is dropped and the connection killed
// instead — the executed-but-unacknowledged window of a daemon death —
// so an acknowledged operation always finished executing before the
// fault point.
func (s *Session) reply(typ uint8, reqID uint32, payload []byte) {
	if len(payload) > maxFrame-frameHeader {
		typ, reqID, payload = encodeError(reqID, fmt.Errorf("server: %s reply exceeds the wire payload bound", msgName(typ)))
	}
	s.replyMu.Lock()
	conn := s.conn
	if conn == nil {
		s.replyMu.Unlock()
		return
	}
	if fr := s.srv.cfg.FailReplies; fr != nil && fr() {
		s.replyMu.Unlock()
		s.srv.stats.droppedReplies.Add(1)
		conn.rwc.Close()
		return
	}
	err := writeFrame(conn.rwc, typ, reqID, payload)
	s.replyMu.Unlock()
	if err != nil {
		conn.rwc.Close()
	}
}

// ServeConn speaks the wire protocol over one stream connection. The
// first frame must be Tattach (optionally marking the session
// resumable) or Treattach (adopting a parked session by token);
// afterwards frames are enqueued for the dispatcher. ServeConn blocks
// until the connection fails or closes. A plain session is always left
// torn down (every handle closed) — the mid-operation disconnect
// guarantee; a resumable one parks instead, holding its handles and
// reply cache for the client's re-attach.
func (srv *Server) ServeConn(rwc io.ReadWriteCloser) error {
	srv.startWorkers()
	conn := &serverConn{rwc: rwc, br: bufio.NewReaderSize(rwc, 64<<10)}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		rwc.Close()
		return errServerClosed
	}
	srv.conns[conn] = true
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		rwc.Close()
	}()

	typ, reqID, payload, err := readFrame(conn.br)
	if err != nil {
		return fmt.Errorf("server: attach read: %w", err)
	}
	var s *Session
	d := dec{b: payload}
	switch typ {
	case tAttach:
		// Payload: root string, then an optional resumable flag byte,
		// then an optional requested-feature bitmap (each absent in
		// older protocol revisions — old clients decode fine, and their
		// missing fields read as zero: not resumable, no features).
		root := d.str()
		resumable := len(d.b) > 0 && d.u8() == 1
		var feats uint32
		if len(d.b) >= 4 {
			feats = d.u32()
		}
		if d.err != nil {
			return fmt.Errorf("server: malformed Tattach: %w", d.err)
		}
		s, err = srv.attach(root, conn, resumable, feats)
		if err != nil {
			etyp, eid, ep := encodeError(reqID, err)
			writeFrame(rwc, etyp, eid, ep)
			return err
		}
		var e enc
		e.str(srv.fs.Name())
		e.u64(s.id)
		e.u64(s.token)
		e.u32(s.features) // agreed set; old clients ignore trailing bytes
		if werr := writeFrame(rwc, rAttach, reqID, e.b); werr != nil {
			s.teardown()
			return werr
		}
	case tReattach:
		token := d.u64()
		if d.err != nil {
			return fmt.Errorf("server: malformed Treattach: %w", d.err)
		}
		s, err = srv.reattach(token, conn, func(s *Session) error {
			var e enc
			e.str(srv.fs.Name())
			// The agreed feature set was fixed at the original attach;
			// echo it so a resumed client restores the same mode.
			// (features is immutable after attach — no lock needed.)
			e.u32(s.features)
			return writeFrame(rwc, rReattach, reqID, e.b)
		})
		if err != nil {
			if s != nil {
				s.disconnect(conn, err) // adopted, handshake write failed: re-park
			} else {
				etyp, eid, ep := encodeError(reqID, err)
				writeFrame(rwc, etyp, eid, ep)
			}
			return err
		}
	default:
		writeFrame(rwc, rError, reqID, encodeAttachError(fmt.Errorf("expected Tattach or Treattach, got %s", msgName(typ))))
		return fmt.Errorf("%w: first frame %s, want Tattach or Treattach", errBadHandshake, msgName(typ))
	}

	for {
		typ, reqID, payload, err := readFrame(conn.br)
		if err != nil {
			s.disconnect(conn, err)
			if err == io.EOF {
				return nil
			}
			return err
		}
		s.enqueue(request{typ: typ, id: reqID, payload: payload})
	}
}

func encodeAttachError(err error) []byte {
	var e enc
	e.u32(uint32(codeGeneric))
	e.str(err.Error())
	return e.b
}

// Serve accepts connections from ln until ln or the server closes.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	closed := srv.closed
	srv.mu.Unlock()
	if closed {
		return errServerClosed
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go srv.ServeConn(c)
	}
}

// Close tears down every session and stops the worker pool. Safe to
// call more than once.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	conns := make([]*serverConn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	sess := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sess = append(sess, s)
	}
	srv.mu.Unlock()

	// Closing the connections unblocks every read loop; tearing every
	// session down directly (not via the read loops) also covers loopback
	// sessions and parked ones, which have no connection to close.
	for _, c := range conns {
		c.rwc.Close()
	}
	for _, s := range sess {
		s.teardown()
	}
	close(srv.quit)
	srv.wg.Wait()
	return nil
}
