package ext4dax

import (
	"bytes"
	"testing"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func TestMmapLoadStore(t *testing.T) {
	dev, fs := newFS(t)
	f, _ := vfs.Create(fs, "/m")
	want := bytes.Repeat([]byte("abcd"), sim.BlockSize) // 16 KB
	f.Write(want)
	f.Sync()

	m, err := fs.Mmap(f.(*File), 0, int64(len(want)), MmapOptions{Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n := m.Load(got, 0); n != len(want) {
		t.Fatalf("Load = %d", n)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mmap read mismatch")
	}

	// Store through the mapping; visible via read() and durable after
	// fence.
	traps := fs.Stats().Traps
	m.StoreNT([]byte("ZZZZ"), 8)
	m.Fence()
	if fs.Stats().Traps != traps {
		t.Fatal("mmap store trapped into the kernel")
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs2, "/m")
	if string(data[8:12]) != "ZZZZ" {
		t.Fatalf("mmap store lost: %q", data[8:12])
	}
}

func TestMmapClampsToAllocation(t *testing.T) {
	_, fs := newFS(t)
	f, _ := vfs.Create(fs, "/small")
	f.Write(make([]byte, 100)) // one block allocated
	m, err := fs.Mmap(f.(*File), 0, 2<<20, MmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Length != sim.BlockSize {
		t.Fatalf("mapping length = %d, want one block", m.Length)
	}
	// Mapping an offset past allocation fails.
	if _, err := fs.Mmap(f.(*File), 4096, 4096, MmapOptions{}); err == nil {
		t.Fatal("mmap past allocation succeeded")
	}
}

func TestMmapFirstTouchFaults(t *testing.T) {
	dev, fs := newFS(t)
	f, _ := vfs.Create(fs, "/ft")
	f.Write(make([]byte, 4*sim.BlockSize))
	clk := dev.Clock()

	m, _ := fs.Mmap(f.(*File), 0, 4*sim.BlockSize, MmapOptions{})
	before := clk.Category(sim.CatPageFault)
	buf := make([]byte, 10)
	m.Load(buf, 0) // first touch of page 0
	afterFirst := clk.Category(sim.CatPageFault)
	if afterFirst-before != sim.PageFault4KNs {
		t.Fatalf("first touch charged %d, want %d", afterFirst-before, sim.PageFault4KNs)
	}
	m.Load(buf, 16) // same page: no new fault
	if clk.Category(sim.CatPageFault) != afterFirst {
		t.Fatal("second touch of same page faulted again")
	}
}

func TestMmapPopulateChargesUpFront(t *testing.T) {
	dev, fs := newFS(t)
	f, _ := vfs.Create(fs, "/pop")
	f.Write(make([]byte, 8*sim.BlockSize))
	clk := dev.Clock()
	before := clk.Category(sim.CatPageFault)
	m, _ := fs.Mmap(f.(*File), 0, 8*sim.BlockSize, MmapOptions{Populate: true})
	if got := clk.Category(sim.CatPageFault) - before; got != 8*sim.PageFault4KNs {
		t.Fatalf("populate charged %d, want %d", got, 8*sim.PageFault4KNs)
	}
	buf := make([]byte, 10)
	m.Load(buf, 0)
	if clk.Category(sim.CatPageFault) != before+8*sim.PageFault4KNs {
		t.Fatal("populated mapping faulted on access")
	}
}

func TestHugePageRequiresAlignment(t *testing.T) {
	_, fs := newFS(t)
	// A fresh fs: the first big allocation is physically contiguous but
	// almost certainly not 2 MB aligned on the device; the mapping must
	// fall back to 4 KB pages rather than fail.
	f, _ := vfs.Create(fs, "/huge")
	f.Write(make([]byte, 4<<20))
	m, err := fs.Mmap(f.(*File), 0, 2<<20, MmapOptions{Populate: true, Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	// Whether huge was granted depends on physical alignment; both are
	// legal, but the mapping must work either way.
	buf := make([]byte, 64)
	if n := m.Load(buf, 1<<20); n != 64 {
		t.Fatalf("Load through maybe-huge mapping = %d", n)
	}
	// An unaligned length can never be huge.
	m2, err := fs.Mmap(f.(*File), 0, 2<<20+sim.BlockSize, MmapOptions{Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Huge {
		t.Fatal("unaligned mapping granted huge pages")
	}
}

func TestRelinkMovesBlocksWithoutCopy(t *testing.T) {
	dev, fs := newFS(t)
	// Staging file with data; target file initially empty.
	staging, _ := vfs.Create(fs, "/staging")
	staging.(*File).Preallocate(8)
	payload := bytes.Repeat([]byte("R"), 2*sim.BlockSize)
	staging.WriteAt(payload, 0)
	target, _ := vfs.Create(fs, "/target")

	dataBefore := dev.Stats().BytesWrittenNT

	err := fs.Relink(staging.(*File), target.(*File), 0, 0,
		2*sim.BlockSize, 2*sim.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	// Relink is metadata-only: no file data rewritten. Journal blocks are
	// NT writes too, so allow only journal-sized growth (desc + images +
	// commit + superblock), not the 2 data blocks.
	ntGrowth := dev.Stats().BytesWrittenNT - dataBefore
	if ntGrowth > 8*sim.BlockSize {
		t.Fatalf("relink wrote %d bytes NT; data was copied", ntGrowth)
	}
	got, err := vfs.ReadFile(fs, "/target")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("target content wrong after relink")
	}
	// Staging range was punched out.
	info, _ := staging.Stat()
	if info.Blocks != 6 {
		t.Fatalf("staging blocks = %d, want 6", info.Blocks)
	}
	// Atomic: crash after relink keeps the target intact.
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	fs2, _, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs2, "/target")
	if !bytes.Equal(got, payload) {
		t.Fatal("relink not durable after crash")
	}
}

func TestRelinkIntoMiddleReplacesBlocks(t *testing.T) {
	dev, fs := newFS(t)
	target, _ := vfs.Create(fs, "/t")
	old := bytes.Repeat([]byte("o"), 4*sim.BlockSize)
	target.Write(old)
	staging, _ := vfs.Create(fs, "/s")
	staging.(*File).Preallocate(4)
	fresh := bytes.Repeat([]byte("n"), sim.BlockSize)
	staging.WriteAt(fresh, 0)

	free := fs.FreeBlocks()
	// Replace target block 1 with staging block 0 (a strict-mode
	// overwrite relink).
	if err := fs.Relink(staging.(*File), target.(*File),
		0, sim.BlockSize, sim.BlockSize, 0); err != nil {
		t.Fatal(err)
	}
	// Net space: staging lost 1 block, target gained then freed its old
	// block; total free goes up by one.
	if fs.FreeBlocks() != free+1 {
		t.Fatalf("free = %d, want %d", fs.FreeBlocks(), free+1)
	}
	got, _ := vfs.ReadFile(fs, "/t")
	if !bytes.Equal(got[:sim.BlockSize], old[:sim.BlockSize]) {
		t.Fatal("block 0 damaged")
	}
	if !bytes.Equal(got[sim.BlockSize:2*sim.BlockSize], fresh) {
		t.Fatal("block 1 not replaced")
	}
	if !bytes.Equal(got[2*sim.BlockSize:], old[2*sim.BlockSize:]) {
		t.Fatal("tail damaged")
	}
	_ = dev
}

func TestMappingSurvivesRelink(t *testing.T) {
	_, fs := newFS(t)
	staging, _ := vfs.Create(fs, "/stg")
	staging.(*File).Preallocate(4)
	payload := bytes.Repeat([]byte("M"), sim.BlockSize)
	staging.WriteAt(payload, 0)
	// Map the staging region BEFORE relinking, as U-Split does.
	m, err := fs.Mmap(staging.(*File), 0, sim.BlockSize, MmapOptions{Populate: true})
	if err != nil {
		t.Fatal(err)
	}
	target, _ := vfs.Create(fs, "/tgt")
	if err := fs.Relink(staging.(*File), target.(*File), 0, 0,
		sim.BlockSize, sim.BlockSize); err != nil {
		t.Fatal(err)
	}
	// The mapping still addresses the same physical blocks, which now
	// belong to the target: reads through it see the target's data.
	got := make([]byte, sim.BlockSize)
	if n := m.Load(got, 0); n != sim.BlockSize {
		t.Fatalf("Load after relink = %d", n)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("mapping invalidated by relink")
	}
}

func TestSwapExtentsRejectsUnaligned(t *testing.T) {
	_, fs := newFS(t)
	a, _ := vfs.Create(fs, "/a")
	a.Write(make([]byte, 2*sim.BlockSize))
	b, _ := vfs.Create(fs, "/b")
	b.Write(make([]byte, 2*sim.BlockSize))
	if err := fs.SwapExtents(a.(*File), b.(*File), 100, 0, sim.BlockSize); err == nil {
		t.Fatal("unaligned swap accepted")
	}
	if err := fs.SwapExtents(a.(*File), b.(*File), 0, 0, 100); err == nil {
		t.Fatal("unaligned size accepted")
	}
	// Unmapped range rejected.
	if err := fs.SwapExtents(a.(*File), b.(*File), 4*sim.BlockSize, 0, sim.BlockSize); err == nil {
		t.Fatal("swap of hole accepted")
	}
}

func TestUnmapCharges(t *testing.T) {
	dev, fs := newFS(t)
	f, _ := vfs.Create(fs, "/u")
	f.Write(make([]byte, sim.BlockSize))
	m, _ := fs.Mmap(f.(*File), 0, sim.BlockSize, MmapOptions{})
	before := dev.Clock().Now()
	m.Unmap()
	if dev.Clock().Now()-before != sim.MunmapPerMappingNs {
		t.Fatal("Unmap cost wrong")
	}
}
