package ext4dax

import (
	"encoding/binary"

	"splitfs/internal/alloc"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }

// ensureDir populates a directory inode's entry cache from its data
// blocks (the dcache fill on first access). Caller holds fs.mu.
func (fs *FS) ensureDir(in *inode) error {
	if in.entries != nil {
		return nil
	}
	in.entries = make(map[string]*dirEntry)
	in.tailOff = 0
	nblocks := in.blocks
	for b := int64(0); b < nblocks; b++ {
		devOff, ok := fs.blockOf(in, b)
		if !ok {
			continue
		}
		blk := make([]byte, sim.BlockSize)
		fs.dev.ReadAt(blk, devOff, sim.CatPMMeta)
		pos := int64(0)
		for pos+12 <= sim.BlockSize {
			ino := getU64(blk[pos : pos+8])
			nameLen := int64(getU16(blk[pos+8 : pos+10]))
			if nameLen == 0 { // end of records in this block
				break
			}
			if pos+12+nameLen > sim.BlockSize {
				break // corrupt tail; treat as end
			}
			if ino != 0 { // not a tombstone
				name := string(blk[pos+12 : pos+12+nameLen])
				in.entries[name] = &dirEntry{
					name:   name,
					ino:    ino,
					isDir:  blk[pos+10] == 1,
					devOff: devOff + pos,
				}
			}
			pos += 12 + nameLen
			in.tailOff = b*sim.BlockSize + pos
		}
	}
	return nil
}

// addDirent appends a directory entry record to the directory file,
// allocating a block when needed, and updates the cache. Caller holds
// fs.mu.
func (fs *FS) addDirent(dir *inode, name string, ino uint64, isDir bool) error {
	fs.clk.Charge(sim.CatCPU, sim.Ext4DirOpNs)
	if err := fs.ensureDir(dir); err != nil {
		return err
	}
	rec := encodeDirent(ino, isDir, name)
	need := int64(len(rec))
	// Records never straddle a block boundary: skip to the next block if
	// the remainder cannot hold this record.
	if rem := sim.BlockSize - dir.tailOff%sim.BlockSize; rem < need {
		dir.tailOff += rem
	}
	// Grow the directory file if the tail is past the allocated blocks.
	for dir.tailOff+need > dir.blocks*sim.BlockSize {
		e, dirty, err := fs.bBmp.AllocExtent(1)
		if err != nil {
			return err
		}
		fs.note(dirty.Off, dirty.Len)
		// Zero the fresh directory block so record parsing terminates.
		fs.dev.StoreBuffered(fs.bBmp.ExtentOffset(e), make([]byte, sim.BlockSize), sim.CatPMMeta)
		fs.note(fs.bBmp.ExtentOffset(e), sim.BlockSize)
		appendFileExtent(dir, e)
		dir.blocks += e.Len
	}
	devOff, ok := fs.blockOf(dir, dir.tailOff/sim.BlockSize)
	if !ok {
		return vfs.ErrInval
	}
	devOff += dir.tailOff % sim.BlockSize
	fs.dev.StoreBuffered(devOff, rec, sim.CatPMMeta)
	fs.note(devOff, len(rec))
	dir.entries[name] = &dirEntry{name: name, ino: ino, isDir: isDir, devOff: devOff}
	dir.tailOff += need
	if dir.tailOff > dir.size {
		dir.size = dir.tailOff
	}
	fs.writeInode(dir)
	return nil
}

// removeDirent tombstones an entry on disk and removes it from the cache.
// Caller holds fs.mu.
func (fs *FS) removeDirent(dir *inode, name string) (*dirEntry, error) {
	fs.clk.Charge(sim.CatCPU, sim.Ext4DirOpNs)
	if err := fs.ensureDir(dir); err != nil {
		return nil, err
	}
	de, ok := dir.entries[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	// Tombstone: zero the ino field, keep nameLen so parsers skip it.
	var zero [8]byte
	fs.dev.StoreBuffered(de.devOff, zero[:], sim.CatPMMeta)
	fs.note(de.devOff, 8)
	delete(dir.entries, name)
	return de, nil
}

// resolve walks a cleaned path to its inode. Caller holds fs.mu.
func (fs *FS) resolve(path string) (*inode, error) {
	parts := vfs.SplitPath(path)
	cur := fs.icache[RootIno]
	for _, name := range parts {
		if !cur.isDir {
			return nil, vfs.ErrNotDir
		}
		fs.clk.Charge(sim.CatCPU, sim.Ext4DirOpNs)
		if err := fs.ensureDir(cur); err != nil {
			return nil, err
		}
		de, ok := cur.entries[name]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		next, ok := fs.icache[de.ino]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// resolveDir resolves the parent directory of a path and returns it with
// the base name. Caller holds fs.mu.
func (fs *FS) resolveDir(path string) (*inode, string, error) {
	dir, base := vfs.SplitDir(vfs.CleanPath(path))
	if base == "" {
		return nil, "", vfs.ErrInval
	}
	parent, err := fs.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", vfs.ErrNotDir
	}
	if err := fs.ensureDir(parent); err != nil {
		return nil, "", err
	}
	// The caller will look up or insert base in this directory.
	fs.clk.Charge(sim.CatCPU, sim.Ext4DirOpNs)
	return parent, base, nil
}

// allocInode reserves a fresh inode number. Caller holds fs.mu.
func (fs *FS) allocInode(isDir bool) (*inode, error) {
	e, dirty, err := fs.iBmp.AllocExtent(1)
	if err != nil {
		return nil, err
	}
	fs.note(dirty.Off, dirty.Len)
	in := &inode{ino: uint64(e.Start), isDir: isDir, nlink: 1}
	if isDir {
		in.nlink = 2
		in.entries = make(map[string]*dirEntry)
	}
	fs.icache[in.ino] = in
	return in, nil
}

// freeInode releases an inode's data blocks, overflow blocks, and number.
// Caller holds fs.mu; the inode lock is taken here because freeing the
// extents races lock-free readers still holding a handle.
func (fs *FS) freeInode(in *inode) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, e := range in.extents {
		fs.deferFree(fs.bBmp, e.phys)
	}
	for _, blk := range in.overflow {
		fs.deferFree(fs.bBmp, alloc.Extent{Start: blk, Len: 1})
	}
	in.extents, in.overflow = nil, nil
	in.size, in.blocks = 0, 0
	fs.deferFree(fs.iBmp, alloc.Extent{Start: int64(in.ino), Len: 1})
	delete(fs.icache, in.ino)
}
