package ext4dax

import (
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// mappedRun is one contiguous piece of a memory mapping.
type mappedRun struct {
	fileOff int64 // offset within the mapped file
	devOff  int64 // device byte offset
	length  int64
}

// Mapping is a DAX memory mapping: a direct window onto the file's PM
// extents. Loads and stores through a Mapping cost no kernel trap — this
// is the mechanism U-Split uses to serve data operations in user space.
//
// A Mapping remains valid after SwapExtents/Relink move its physical
// blocks to another file; it keeps addressing the same physical data,
// which is the property the paper's relink depends on to avoid page
// faults (§3.5).
type Mapping struct {
	fs      *FS
	Ino     uint64
	FileOff int64
	Length  int64
	Huge    bool // backed by 2 MB pages
	runs    []mappedRun

	faulted []bool // per-page soft-fault state when not pre-populated
	pageSz  int64
}

// MmapOptions control population and huge-page behaviour.
type MmapOptions struct {
	// Populate pre-faults all pages (MAP_POPULATE), moving fault cost to
	// mmap time; the paper observes this makes open() expensive but keeps
	// faults off the data path (§4).
	Populate bool
	// Huge requests 2 MB pages. Granted only if the file offset and every
	// backing physical extent piece is 2 MB aligned and sized — the
	// fragility the paper describes (§4: "huge pages are fragile").
	Huge bool
}

const hugePage = 2 << 20

// Mmap maps [off, off+length) of the file. The range is clamped to the
// file's allocated blocks; mapping a hole is an error (it would SIGBUS on
// access).
func (fs *FS) Mmap(f *File, off, length int64, opts MmapOptions) (*Mapping, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.clk.Charge(sim.CatCPU, sim.MmapSyscallNs)
	return fs.mmapLocked(f, off, length, opts, true)
}

// MmapQuiet rebuilds a mapping with no syscall, fault, or population
// charges and all pages pre-faulted. It models the paper's modified
// relink ioctl, which updates existing memory mappings in place so that
// post-relink accesses incur no page faults (§3.5).
func (fs *FS) MmapQuiet(f *File, off, length int64, huge bool) (*Mapping, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mmapLocked(f, off, length, MmapOptions{Populate: true, Huge: huge}, false)
}

func (fs *FS) mmapLocked(f *File, off, length int64, opts MmapOptions, charge bool) (*Mapping, error) {
	if off%sim.BlockSize != 0 || length <= 0 {
		return nil, vfs.ErrInval
	}
	// Clamp to the allocated end of the file.
	if allocEnd := fileBlocks(f.in) * sim.BlockSize; off+length > allocEnd {
		length = allocEnd - off
	}
	if length <= 0 {
		return nil, vfs.ErrInval
	}
	m := &Mapping{fs: fs, Ino: f.in.ino, FileOff: off, Length: length}
	// Collect the physical runs covering the range.
	cur := off
	for cur < off+length {
		logical := cur / sim.BlockSize
		devOff, contig, ok := translate(fs, f.in, logical)
		if !ok {
			return nil, vfs.WrapPath("mmap", f.path, vfs.ErrInval)
		}
		span := contig * sim.BlockSize
		if rem := off + length - cur; span > rem {
			span = rem
		}
		m.runs = append(m.runs, mappedRun{fileOff: cur, devOff: devOff, length: span})
		cur += span
	}
	// Huge pages need 2 MB alignment in both the file offset (virtual
	// side) and every physical run (physical side).
	m.Huge = opts.Huge && off%hugePage == 0 && length%hugePage == 0
	if m.Huge {
		for _, r := range m.runs {
			if r.devOff%hugePage != 0 || r.length%hugePage != 0 {
				m.Huge = false // fragmentation defeated the huge mapping
				break
			}
		}
	}
	m.pageSz = sim.BlockSize
	faultCost := int64(sim.PageFault4KNs)
	if m.Huge {
		m.pageSz = hugePage
		faultCost = sim.PageFault2MNs
	}
	nPages := (length + m.pageSz - 1) / m.pageSz
	switch {
	case opts.Populate && charge:
		fs.clk.Charge(sim.CatPageFault, nPages*faultCost)
	case opts.Populate:
		// Quiet rebuild: pages considered faulted, nothing charged.
	default:
		m.faulted = make([]bool, nPages)
	}
	return m, nil
}

// translate maps an offset within the mapped file range to a device
// offset and the contiguous length available there. It charges the page
// fault on first touch for non-populated mappings.
func (m *Mapping) translate(fileOff int64) (devOff, contig int64, ok bool) {
	if fileOff < m.FileOff || fileOff >= m.FileOff+m.Length {
		return 0, 0, false
	}
	if m.faulted != nil {
		pg := (fileOff - m.FileOff) / m.pageSz
		if !m.faulted[pg] {
			m.faulted[pg] = true
			cost := int64(sim.PageFault4KNs)
			if m.Huge {
				cost = sim.PageFault2MNs
			}
			m.fs.clk.Charge(sim.CatPageFault, cost)
		}
	}
	for _, r := range m.runs {
		if fileOff >= r.fileOff && fileOff < r.fileOff+r.length {
			d := fileOff - r.fileOff
			return r.devOff + d, r.length - d, true
		}
	}
	return 0, 0, false
}

// Translate maps an offset within the mapped range to its device offset
// and the contiguous length available there; it charges first-touch page
// faults like any access through the mapping.
func (m *Mapping) Translate(fileOff int64) (devOff, contig int64, ok bool) {
	return m.translate(fileOff)
}

// PageSize returns the page size the mapping was granted (2 MB when Huge,
// 4 KB otherwise) — the unit of its DRAM page-table overhead.
func (m *Mapping) PageSize() int64 { return m.pageSz }

// Load copies from the mapping into p using processor loads; no kernel
// involvement. Returns the bytes copied (short if the mapping ends).
func (m *Mapping) Load(p []byte, fileOff int64) int {
	n := 0
	for n < len(p) {
		devOff, contig, ok := m.translate(fileOff + int64(n))
		if !ok {
			break
		}
		span := contig
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		m.fs.dev.ReadIntoUser(p[n:n+int(span)], devOff, sim.CatPMData)
		n += int(span)
	}
	return n
}

// StoreNT copies p into the mapping with non-temporal stores; durable
// only after the caller's Fence on the device (that is the mmap
// contract). No kernel involvement.
//
// +persist:caller-fenced
func (m *Mapping) StoreNT(p []byte, fileOff int64) int {
	n := 0
	for n < len(p) {
		devOff, contig, ok := m.translate(fileOff + int64(n))
		if !ok {
			break
		}
		span := contig
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		m.fs.dev.StoreNT(devOff, p[n:n+int(span)], sim.CatPMData)
		n += int(span)
	}
	return n
}

// Fence orders previously issued stores; exposed so user-space writers
// can implement sync semantics without a syscall.
func (m *Mapping) Fence() { m.fs.dev.Fence() }

// Unmap charges the munmap cost that makes SplitFS unlink expensive
// (Table 6). The translation runs are deliberately left intact: a reader
// that raced the unmap and still holds the Mapping keeps addressing the
// same physical bytes (exactly the lazily-reclaimed-pages semantics of a
// real munmap racing a load), and nulling them here would be a data race
// with such readers.
func (m *Mapping) Unmap() {
	m.fs.clk.Charge(sim.CatKernelTrap, sim.MunmapPerMappingNs)
}
