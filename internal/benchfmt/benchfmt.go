// Package benchfmt defines the machine-readable benchmark-result format
// shared by cmd/splitbench and the CI perf gate: the BENCH_results.json
// trajectory file (one row per experiment metric per git revision) and
// the BENCH_baseline.json regression baseline (the deterministic macro
// counters a PR must reproduce exactly or explicitly update).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Record is one serialized metric row.
type Record struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
	GitRev     string  `json:"git_rev"`
}

// Key identifies a row for deduplication: reruns at the same revision
// replace rows with the same key instead of appending stale duplicates.
func (r Record) Key() string {
	return r.Experiment + "\x00" + r.Metric + "\x00" + r.GitRev
}

// Validate checks the schema the CI gate relies on: every field
// non-empty and every value finite. Returns the first violation.
func Validate(recs []Record) error {
	for i, r := range recs {
		switch {
		case r.Experiment == "":
			return fmt.Errorf("benchfmt: record %d: empty experiment", i)
		case r.Metric == "":
			return fmt.Errorf("benchfmt: record %d (%s): empty metric", i, r.Experiment)
		case r.Unit == "":
			return fmt.Errorf("benchfmt: record %d (%s/%s): empty unit", i, r.Experiment, r.Metric)
		case r.GitRev == "":
			return fmt.Errorf("benchfmt: record %d (%s/%s): empty git_rev", i, r.Experiment, r.Metric)
		case math.IsNaN(r.Value) || math.IsInf(r.Value, 0):
			return fmt.Errorf("benchfmt: record %d (%s/%s): non-finite value", i, r.Experiment, r.Metric)
		}
	}
	return nil
}

// Load reads and validates a record file.
func Load(path string) ([]Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(buf, &recs); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if err := Validate(recs); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return recs, nil
}

// Save validates and writes records as indented JSON.
func Save(path string, recs []Record) error {
	if err := Validate(recs); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0644)
}

// Merge appends fresh rows to old, replacing any old row with the same
// (experiment, metric, git_rev) key — the rerun-deduplication rule — and
// keeping row order stable (old rows first, in place; new keys appended
// in fresh order).
func Merge(old, fresh []Record) []Record {
	replace := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		replace[r.Key()] = r
	}
	out := make([]Record, 0, len(old)+len(fresh))
	seen := make(map[string]bool, len(fresh))
	for _, r := range old {
		if nr, ok := replace[r.Key()]; ok {
			if !seen[r.Key()] {
				out = append(out, nr)
				seen[r.Key()] = true
			}
			continue
		}
		out = append(out, r)
	}
	for _, r := range fresh {
		if !seen[r.Key()] {
			out = append(out, r)
			seen[r.Key()] = true
		}
	}
	return out
}

// gatedSuffixes are the deterministic counters the regression baseline
// pins, as suffixes of the macro matrix's "<workload>/<backend>/<name>"
// metric names. Simulated-time metrics (ns_per_op) are deliberately NOT
// gated: retuning the cost model shifts them legitimately, while fences,
// journal commits, log appends, relink/reclaim counts, and PM write
// volume only move when the I/O behavior itself changes.
var gatedSuffixes = []string{
	"/fences_per_op",
	"/journal_commits",
	"/log_appends",
	"/relinks",
	"/staging_reclaimed",
	"/pm_bytes",
	// Zero-copy data plane (server experiment lease cells): how many
	// data bytes moved through leased mappings versus the wire codec is
	// a deterministic property of the op stream, and the baseline
	// pinning read_wire_bytes at ~0 is the "leased reads cross no wire"
	// guarantee itself.
	"/lease_grants",
	"/leased_read_bytes",
	"/leased_write_bytes",
	"/read_wire_bytes",
	"/write_wire_bytes",
}

// Gated reports whether a metric row belongs in the regression baseline:
// the macro matrix's deterministic counters, plus the server
// experiment's loopback and lease cells — the single-session served
// stream is deterministic by the loopback-transport contract (requests
// execute inline), so its counters pin both the backend AND the service
// layer's transparency; the lease cells additionally pin the zero-copy
// data plane's byte routing. The server experiment's wall-clock session
// sweep stays ungated. The obs experiment is gated in full: every row
// is a registry instrument read after a sim-clocked deterministic
// stream, so there is no wall-clock row to exclude — pinning the whole
// snapshot is the observability plane's zero-drift guarantee in CI.
func Gated(r Record) bool {
	switch r.Experiment {
	case "obs":
		return true
	case "macro":
	case "server":
		if !strings.HasPrefix(r.Metric, "loopback/") && !strings.HasPrefix(r.Metric, "lease/") {
			return false
		}
	default:
		return false
	}
	for _, s := range gatedSuffixes {
		if strings.HasSuffix(r.Metric, s) {
			return true
		}
	}
	return false
}

// GatedSubset filters the rows the baseline pins, in input order.
func GatedSubset(recs []Record) []Record {
	var out []Record
	for _, r := range recs {
		if Gated(r) {
			out = append(out, r)
		}
	}
	return out
}

// Drift is one baseline mismatch.
type Drift struct {
	Experiment string
	Metric     string
	Want       float64 // baseline value (NaN if the row is new)
	Got        float64 // current value (NaN if the row disappeared)
}

func (d Drift) String() string {
	// %v keeps full float64 precision: large counters (pm_bytes) can
	// differ past 6 significant digits and must not print identically.
	switch {
	case math.IsNaN(d.Want):
		return fmt.Sprintf("%s %s: new metric %v not in baseline", d.Experiment, d.Metric, d.Got)
	case math.IsNaN(d.Got):
		return fmt.Sprintf("%s %s: baseline row (%v) missing from this run", d.Experiment, d.Metric, d.Want)
	default:
		return fmt.Sprintf("%s %s: baseline %v, got %v", d.Experiment, d.Metric, d.Want, d.Got)
	}
}

// DiffBaseline compares the gated subset of a run against the baseline,
// ignoring git_rev (the baseline was recorded at an older revision by
// construction). The counters are deterministic, so the comparison is
// exact, not statistical: any difference is a drift. Missing and new
// rows are drifts too — a backend or workload silently dropping out of
// the matrix must not pass the gate. ran names the experiments this run
// executed: baseline rows of experiments that did not run are skipped
// (so a job may gate only its own experiment), while within a ran
// experiment a vanished row is still a drift.
func DiffBaseline(baseline, run []Record, ran []string) []Drift {
	inRun := make(map[string]bool, len(ran))
	for _, e := range ran {
		inRun[e] = true
	}
	key := func(r Record) string { return r.Experiment + "\x00" + r.Metric }
	got := make(map[string]Record)
	for _, r := range GatedSubset(run) {
		got[key(r)] = r
	}
	var drifts []Drift
	seen := make(map[string]bool)
	for _, b := range GatedSubset(baseline) {
		if !inRun[b.Experiment] {
			continue
		}
		seen[key(b)] = true
		g, ok := got[key(b)]
		if !ok {
			drifts = append(drifts, Drift{b.Experiment, b.Metric, b.Value, math.NaN()})
			continue
		}
		if g.Value != b.Value {
			drifts = append(drifts, Drift{b.Experiment, b.Metric, b.Value, g.Value})
		}
	}
	extra := make([]string, 0)
	for k := range got {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		r := got[k]
		drifts = append(drifts, Drift{r.Experiment, r.Metric, math.NaN(), r.Value})
	}
	return drifts
}
