package server

import (
	"fmt"
	"sort"
	"sync"

	"splitfs/internal/vfs"
)

// Session is one client's view of the served file system: a confining
// root, a sharded handle table, and (on the stream transport) a FIFO
// request queue drained by the dispatcher. Sessions are path-confined —
// every client path is resolved lexically against the session root, so
// "../.." walks clamp at the root instead of escaping it (the gofer
// confinement rule).
type Session struct {
	srv  *Server
	id   uint64
	root string // cleaned; "/" means the whole tree
	ht   *handleTable

	mu      sync.Mutex
	queue   []request // pending requests (stream transport only)
	running bool      // a worker currently owns this session
	closed  bool      // no further requests accepted
	torn    bool      // teardown has run

	conn    *serverConn // nil for loopback sessions
	replyMu sync.Mutex  // serializes reply frames onto conn
}

// request is one decoded-enough frame waiting for dispatch.
type request struct {
	typ     uint8
	id      uint32
	payload []byte
}

// ID returns the session's identifier.
func (s *Session) ID() uint64 { return s.id }

// Root returns the session's confining root path.
func (s *Session) Root() string { return s.root }

// OpenHandles reports the session's live handle count.
func (s *Session) OpenHandles() int { return s.ht.open() }

// resolve maps a client path into the session's subtree. CleanPath
// resolves ".." lexically and cannot ascend above "/", so the result
// always stays under root.
func (s *Session) resolve(p string) string {
	c := vfs.CleanPath(p)
	if s.root == "/" {
		return c
	}
	if c == "/" {
		return s.root
	}
	return s.root + c
}

// detached reports whether the session has been closed (detach,
// disconnect, or server shutdown).
func (s *Session) detached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// teardown closes the session. If a worker is mid-request the teardown
// is deferred to that worker (it observes closed and finishes it), so a
// handle is never closed underneath an executing operation. Idempotent.
func (s *Session) teardown() {
	s.mu.Lock()
	s.closed = true
	if s.running {
		s.mu.Unlock()
		return // the owning worker completes the teardown
	}
	s.running = true
	s.mu.Unlock()
	s.finishTeardown()
}

// finishTeardown drops queued requests and closes every handle. Called
// with queue ownership (running == true).
func (s *Session) finishTeardown() {
	s.mu.Lock()
	if s.torn {
		s.running = false
		s.mu.Unlock()
		return
	}
	s.torn = true
	s.queue = nil
	s.running = false
	s.mu.Unlock()
	s.ht.closeAll()
	s.srv.detach(s.id)
}

// handle executes one request against the backend and renders the reply
// frame. It is the single entry point for both transports: the loopback
// calls it inline, the dispatcher calls it from a worker.
func (s *Session) handle(typ uint8, reqID uint32, payload []byte) (uint8, uint32, []byte) {
	d := dec{b: payload}
	var e enc
	var err error
	rtyp := typ + 1 // every T* reply type is the next constant

	switch typ {
	case tDetach:
		// Teardown completes before the Rdetach reply renders, so a
		// client that saw the reply can rely on every handle being
		// closed (and SessionCount reflecting the detach).
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.finishTeardown()
	case tOpen:
		flag := int(d.u32())
		perm := d.u32()
		path := d.str()
		if d.err == nil {
			var f vfs.File
			if f, err = s.srv.fs.OpenFile(s.resolve(path), flag, perm); err == nil {
				e.u64(s.ht.insert(f))
			}
		}
	case tClose:
		id := d.u64()
		if d.err == nil {
			err = s.ht.closeHandle(id)
		}
	case tRead:
		id := d.u64()
		n := d.u32()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				buf := make([]byte, capRead(n))
				got, rerr := f.Read(buf)
				if rerr != nil {
					return rerr
				}
				e.bytes(buf[:got])
				return nil
			})
		}
	case tWrite:
		id := d.u64()
		data := d.bytes()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				got, werr := f.Write(data)
				if werr != nil {
					return werr
				}
				e.u32(uint32(got))
				return nil
			})
		}
	case tPread:
		id := d.u64()
		off := d.i64()
		n := d.u32()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				buf := make([]byte, capRead(n))
				got, rerr := f.ReadAt(buf, off)
				if rerr != nil {
					return rerr
				}
				e.bytes(buf[:got])
				return nil
			})
		}
	case tPwrite:
		id := d.u64()
		off := d.i64()
		data := d.bytes()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				got, werr := f.WriteAt(data, off)
				if werr != nil {
					return werr
				}
				e.u32(uint32(got))
				return nil
			})
		}
	case tSeek:
		id := d.u64()
		off := d.i64()
		whence := int(d.u8())
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				pos, serr := f.Seek(off, whence)
				if serr != nil {
					return serr
				}
				e.i64(pos)
				return nil
			})
		}
	case tTruncate:
		id := d.u64()
		size := d.i64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error { return f.Truncate(size) })
		}
	case tFsync:
		id := d.u64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error { return f.Sync() })
		}
	case tFstat:
		id := d.u64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				fi, serr := f.Stat()
				if serr != nil {
					return serr
				}
				e.fileInfo(fi)
				return nil
			})
		}
	case tStat:
		path := d.str()
		if d.err == nil {
			var fi vfs.FileInfo
			if fi, err = s.srv.fs.Stat(s.resolve(path)); err == nil {
				e.fileInfo(fi)
			}
		}
	case tReadDir:
		path := d.str()
		if d.err == nil {
			var ents []vfs.DirEntry
			if ents, err = s.srv.fs.ReadDir(s.resolve(path)); err == nil {
				e.u32(uint32(len(ents)))
				for _, de := range ents {
					e.str(de.Name)
					e.u64(de.Ino)
					if de.IsDir {
						e.u8(1)
					} else {
						e.u8(0)
					}
				}
				// An enormous directory must degrade to an error reply,
				// not an oversized frame that would kill the connection.
				if len(e.b) > maxPayload {
					err = fmt.Errorf("server: readdir %s: %d entries exceed the wire payload bound", path, len(ents))
				}
			}
		}
	case tMkdir:
		perm := d.u32()
		path := d.str()
		if d.err == nil {
			err = s.srv.fs.Mkdir(s.resolve(path), perm)
		}
	case tUnlink:
		path := d.str()
		if d.err == nil {
			err = s.srv.fs.Unlink(s.resolve(path))
		}
	case tRmdir:
		path := d.str()
		if d.err == nil {
			err = s.srv.fs.Rmdir(s.resolve(path))
		}
	case tRename:
		oldPath := d.str()
		newPath := d.str()
		if d.err == nil {
			err = s.srv.fs.Rename(s.resolve(oldPath), s.resolve(newPath))
		}
	case tSyncAll:
		err = s.syncAll()
	default:
		err = fmt.Errorf("server: unknown message %s", msgName(typ))
	}

	if d.err != nil {
		err = fmt.Errorf("server: %s: %w", msgName(typ), d.err)
	}
	if err == nil && e.err != nil {
		err = e.err // a reply field that cannot be encoded (over-long name)
	}
	if err != nil {
		return encodeError(reqID, err)
	}
	return rtyp, reqID, e.b
}

// withFile resolves a handle and runs fn on it.
func (s *Session) withFile(id uint64, fn func(vfs.File) error) error {
	f, err := s.ht.get(id)
	if err != nil {
		return err
	}
	return fn(f)
}

// capRead bounds a read request to the payload limit; the client chunks
// larger reads, so hitting the cap just produces a short read.
func capRead(n uint32) int {
	if n > maxPayload-64 {
		return maxPayload - 64
	}
	return int(n)
}

// syncAll is the group-sync operation. A backend with its own SyncAll
// (splitfs: one group-committed relink batch over every open file) uses
// it; otherwise every live handle of this session syncs in path order —
// the same degradation rule the crash-harness runner applies directly.
func (s *Session) syncAll() error {
	if sa, ok := s.srv.fs.(interface{ SyncAll() error }); ok {
		return sa.SyncAll()
	}
	files := s.ht.files()
	sort.Slice(files, func(i, j int) bool { return files[i].Path() < files[j].Path() })
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}
