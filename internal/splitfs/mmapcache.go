package splitfs

import (
	"sync"

	"splitfs/internal/ext4dax"
)

// mmapCache is the collection of memory-mappings (§3.3): every mapping
// U-Split creates is cached and reused until the file is unlinked, which
// keeps page faults and mmap syscalls off the data path and preserves
// huge pages once established (§4).
//
// The cache has its own lock, at the bottom of the U-Split hierarchy
// (callers may hold ofile.mu): the common case is a read-locked map hit,
// so concurrent readers of different — or the same — files never
// serialize here.
type mmapCache struct {
	fs *FS

	mu sync.RWMutex // +lockrank:mmapcache
	// regions[ino][regionIndex] — one entry per MmapBytes-sized window.
	regions map[uint64]map[int64]*ext4dax.Mapping
}

func newMmapCache(fs *FS) *mmapCache {
	return &mmapCache{fs: fs, regions: make(map[uint64]map[int64]*ext4dax.Mapping)}
}

// get returns a mapping covering fileOff of the file, creating and
// caching the surrounding MmapBytes region on miss. Returns nil when the
// region cannot be mapped (e.g. a hole). The kernel mmap runs outside
// the cache lock — one file's cold-region fault (syscall + population
// cost) must not stall readers of every other file — so the insert
// re-validates under the lock: a racing mapper's region wins, and a
// mapping that raced an unlink of its file is discarded rather than
// cached over freed blocks.
func (c *mmapCache) get(of *ofile, fileOff int64) *ext4dax.Mapping {
	rsize := c.fs.cfg.MmapBytes
	idx := fileOff / rsize
	c.mu.RLock()
	m := c.regions[of.ino][idx]
	c.mu.RUnlock()
	// The cached region may predate growth of the file; if the offset is
	// beyond it, remap the region to its current extent.
	if m != nil && fileOff < m.FileOff+m.Length {
		c.fs.stats.mmapHits.Add(1)
		return m
	}
	nm, err := c.fs.kfs.Mmap(of.kf, idx*rsize, rsize, ext4dax.MmapOptions{
		Populate: true,
		Huge:     !c.fs.cfg.DisableHugePages,
	})
	if err != nil {
		c.fs.stats.mmapMisses.Add(1)
		return nil
	}
	c.mu.Lock()
	if m := c.regions[of.ino][idx]; m != nil && fileOff < m.FileOff+m.Length {
		// Lost the mapping race: reuse the winner's region; ours is
		// unmapped like the real library would.
		c.mu.Unlock()
		c.fs.stats.mmapHits.Add(1)
		nm.Unmap()
		return m
	}
	if !of.kf.Linked() {
		// Raced an unlink: the file is now an orphan inode, alive only
		// until our handle closes. The mapping is valid (orphan blocks
		// stay allocated, per POSIX) so serve it for this access, but
		// don't cache state for an inode number that frees on close.
		c.mu.Unlock()
		c.fs.stats.mmapMisses.Add(1)
		return nm
	}
	byIno := c.regions[of.ino]
	if byIno == nil {
		byIno = make(map[int64]*ext4dax.Mapping)
		c.regions[of.ino] = byIno
	}
	byIno[idx] = nm
	c.mu.Unlock()
	c.fs.stats.mmapMisses.Add(1)
	return nm
}

// refresh quietly rebuilds cached mappings covering [fileOff,
// fileOff+length) after a relink: the modified ioctl keeps page tables
// valid across the extent swap, so refreshed mappings carry no syscall
// or fault cost. Appended regions whose staged bytes were written
// through a staging-file mapping also stay mapped for free — §3.3,
// Figure 2: the relinked block "retains its mmap() region". Regions
// never mapped by either path still fault on first touch.
func (c *mmapCache) refresh(of *ofile, fileOff, length int64, staged bool) {
	rsize := c.fs.cfg.MmapBytes
	c.mu.Lock()
	defer c.mu.Unlock()
	byIno := c.regions[of.ino]
	if byIno == nil {
		if !staged {
			return
		}
		byIno = make(map[int64]*ext4dax.Mapping)
		c.regions[of.ino] = byIno
	}
	for idx := fileOff / rsize; idx <= (fileOff+length-1)/rsize; idx++ {
		if _, ok := byIno[idx]; !ok && !staged {
			continue // never mapped: first access pays its faults
		}
		m, err := c.fs.kfs.MmapQuiet(of.kf, idx*rsize, rsize, !c.fs.cfg.DisableHugePages)
		if err != nil {
			delete(byIno, idx)
			continue
		}
		byIno[idx] = m
	}
}

// drop unmaps and forgets every mapping of an inode (unlink path, §3.5:
// "A memory-mapping is only discarded on unlink()"). Returns how many
// mappings were torn down.
func (c *mmapCache) drop(ino uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	byIno := c.regions[ino]
	for _, m := range byIno {
		m.Unmap()
	}
	delete(c.regions, ino)
	return len(byIno)
}

// count returns the number of cached mappings for an inode.
func (c *mmapCache) count(ino uint64) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.regions[ino])
}

func (c *mmapCache) memoryUsage() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, byIno := range c.regions {
		n += int64(len(byIno))
	}
	return n * 160
}
