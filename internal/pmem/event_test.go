package pmem

import (
	"bytes"
	"testing"

	"splitfs/internal/sim"
)

func newEvDev(t *testing.T) *Device {
	t.Helper()
	return New(Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
}

func TestEventCountingByKind(t *testing.T) {
	d := newEvDev(t)
	base := d.Events()
	d.Store(0, []byte("abc"), sim.CatPMMeta)
	d.StoreNT(4096, []byte("def"), sim.CatPMData)
	d.Flush(0, 3, sim.CatPMMeta)
	d.Fence()
	st := d.EventStats()
	if st.Stores < 1 || st.StoresNT < 1 || st.Flushes < 1 || st.Fences < 1 {
		t.Fatalf("missing kinds: %+v", st)
	}
	if got := d.Events() - base; got != 4 {
		t.Fatalf("expected 4 events, got %d", got)
	}
	if st.Total() != d.Events() {
		t.Fatalf("breakdown %d != counter %d", st.Total(), d.Events())
	}
}

func TestTraceRecordsRangeAndCategory(t *testing.T) {
	d := newEvDev(t)
	d.SetTracing(true)
	d.StoreNT(128, []byte("xyzw"), sim.CatOpLog)
	d.Fence()
	tr := d.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0].Kind != EvStoreNT || tr[0].Off != 128 || tr[0].Len != 4 || tr[0].Cat != sim.CatOpLog {
		t.Fatalf("bad store event %+v", tr[0])
	}
	if tr[1].Kind != EvFence || tr[1].Seq != tr[0].Seq+1 {
		t.Fatalf("bad fence event %+v", tr[1])
	}
	d.SetTracing(false)
	d.Fence()
	if len(d.Trace()) != 0 {
		t.Fatal("trace not cleared")
	}
}

// An armed crash at event k must produce exactly the durable image a run
// truncated at event k produces — record/replay's core property.
func TestArmCrashMatchesTruncatedRun(t *testing.T) {
	ops := func(d *Device, n int) {
		seq := [](func()){
			func() { d.StoreNT(0, []byte("first-line-of-data!"), sim.CatPMData) },
			func() { d.Fence() },
			func() { d.StoreNT(4096, bytes.Repeat([]byte{7}, 200), sim.CatPMData) },
			func() { d.Store(8192, []byte("cached"), sim.CatPMMeta) },
			func() { d.Flush(8192, 6, sim.CatPMMeta) },
			func() { d.Fence() },
			func() { d.StoreNT(300, []byte("tail-unfenced"), sim.CatPMData) },
		}
		for i := 0; i < n; i++ {
			seq[i]()
		}
	}
	for k := int64(1); k <= 7; k++ {
		// Truncated run: execute exactly the first k events, then crash.
		dt := newEvDev(t)
		ops(dt, int(k))
		if err := dt.Crash(sim.NewRNG(99)); err != nil {
			t.Fatal(err)
		}
		// Replay run: arm at k, execute everything, then crash.
		dr := newEvDev(t)
		dr.ArmCrash(k, sim.NewRNG(99))
		ops(dr, 7)
		if !dr.CrashFired() {
			t.Fatalf("k=%d: crash point not reached", k)
		}
		if err := dr.Crash(sim.NewRNG(12345)); err != nil { // rng must be ignored
			t.Fatal(err)
		}
		if !bytes.Equal(dt.data[:16384], dr.data[:16384]) {
			t.Fatalf("k=%d: replay image diverges from truncated run", k)
		}
	}
}

func TestArmCrashDeterministic(t *testing.T) {
	img := func() []byte {
		d := newEvDev(t)
		d.ArmCrash(3, sim.NewRNG(42))
		d.StoreNT(0, bytes.Repeat([]byte{1}, 500), sim.CatPMData)
		d.Store(4096, bytes.Repeat([]byte{2}, 500), sim.CatPMData)
		d.StoreNT(8192, bytes.Repeat([]byte{3}, 500), sim.CatPMData)
		d.Fence()
		if err := d.Crash(nil); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), d.data[:12288]...)
	}
	if !bytes.Equal(img(), img()) {
		t.Fatal("same seed, same events: images differ")
	}
}

// Buffered stores model jbd2 write-ahead metadata: visible to loads,
// never durable until flushed+fenced, wholly reverted on crash.
func TestStoreBufferedWriteAhead(t *testing.T) {
	d := newEvDev(t)
	payload := bytes.Repeat([]byte{0xAB}, 128)
	d.StoreBuffered(0, payload, sim.CatPMMeta)

	got := make([]byte, 128)
	d.Peek(got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("buffered store not visible to loads")
	}
	// A fence alone must not persist it, and tearing must not leak it.
	d.Fence()
	if err := d.Crash(sim.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	d.Peek(got, 0)
	if !bytes.Equal(got, make([]byte, 128)) {
		t.Fatal("uncommitted buffered metadata leaked to the durable image")
	}

	// Flush + fence (the journal checkpoint) makes it durable.
	d.StoreBuffered(0, payload, sim.CatPMMeta)
	d.Flush(0, 128, sim.CatPMMeta)
	d.Fence()
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	d.Peek(got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("checkpointed buffered metadata lost")
	}
}

func TestFenceFilterDropsPersistence(t *testing.T) {
	d := newEvDev(t)
	d.SetFenceFilter(func(seq int64) bool { return seq == 1 })
	d.StoreNT(0, []byte("gone"), sim.CatPMData)
	d.Fence() // dropped
	d.SetFenceFilter(nil)
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	d.Peek(got, 0)
	if bytes.Equal(got, []byte("gone")) {
		t.Fatal("dropped fence still persisted data")
	}

	d.StoreNT(0, []byte("kept"), sim.CatPMData)
	d.Fence()
	if err := d.Crash(nil); err != nil {
		t.Fatal(err)
	}
	d.Peek(got, 0)
	if !bytes.Equal(got, []byte("kept")) {
		t.Fatal("normal fence lost data after filter removed")
	}
}
