package server

import (
	"sync/atomic"

	"splitfs/internal/vfs"
)

// handleShards is the number of vfs.FDTable shards per session. Handle
// IDs interleave across shards (id = fd*handleShards + shard), so two
// concurrent pipelined requests on one session rarely contend on the
// same shard lock, and a session with one outstanding request assigns
// IDs deterministically.
const handleShards = 8

// handleTable is the per-session handle table: a sharded generalization
// of vfs.FDTable. Each shard keeps FDTable's POSIX dup semantics and
// close-on-teardown behavior; the table adds only the shard routing.
type handleTable struct {
	rr     atomic.Uint64 // round-robin insert cursor
	shards [handleShards]*vfs.FDTable
}

func newHandleTable() *handleTable {
	t := &handleTable{}
	for i := range t.shards {
		t.shards[i] = vfs.NewFDTable()
	}
	return t
}

// insert registers an open file and returns its wire handle ID.
func (t *handleTable) insert(f vfs.File) uint64 {
	shard := t.rr.Add(1) % handleShards
	fd := t.shards[shard].Insert(f)
	return uint64(fd)*handleShards + shard
}

// insertAt re-binds a file at an exact wire handle ID (session
// re-attach: the client's replay log references its original IDs).
// vfs.ErrExist if the ID is live.
func (t *handleTable) insertAt(id uint64, f vfs.File) error {
	tab, fd := t.locate(id)
	return tab.InsertAt(fd, f)
}

func (t *handleTable) locate(id uint64) (*vfs.FDTable, int) {
	return t.shards[id%handleShards], int(id / handleShards)
}

// get resolves a handle ID; unknown IDs return vfs.ErrBadFD.
func (t *handleTable) get(id uint64) (vfs.File, error) {
	tab, fd := t.locate(id)
	return tab.Get(fd)
}

// closeHandle releases one handle, closing the file when no handle
// refers to it (dup semantics live inside the shard).
func (t *handleTable) closeHandle(id uint64) error {
	tab, fd := t.locate(id)
	return tab.Close(fd)
}

// closeAll tears down every handle in every shard. Idempotent: shards
// empty out on the first call and further calls are no-ops.
func (t *handleTable) closeAll() error {
	var first error
	for _, s := range t.shards {
		if err := s.CloseAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// open reports the number of live handles.
func (t *handleTable) open() int {
	n := 0
	for _, s := range t.shards {
		n += s.Len()
	}
	return n
}

// files returns the distinct open files across all shards.
func (t *handleTable) files() []vfs.File {
	var out []vfs.File
	for _, s := range t.shards {
		out = append(out, s.Files()...)
	}
	return out
}
