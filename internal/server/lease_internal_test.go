package server

import (
	"errors"
	"net"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func leaseTestBackend(t *testing.T) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock()})
	fs, err := ext4dax.Mkfs(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestWireDowngradeOldClient replays the legacy handshake byte-for-byte:
// a pre-lease client sends Tattach carrying only the root string — no
// resumable byte, no feature bitmap. The server must settle on the empty
// feature set and reject a (protocol-violating) Tlease with Rerror
// instead of handing out a mapping the client never negotiated for.
func TestWireDowngradeOldClient(t *testing.T) {
	srv := New(leaseTestBackend(t), Config{})
	defer srv.Close()
	cs, ss := net.Pipe()
	defer cs.Close()
	go srv.ServeConn(ss)

	// Legacy Tattach: root string only.
	var e enc
	e.str("/")
	if err := writeFrame(cs, tAttach, 1, e.b); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err := readFrame(cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rAttach {
		t.Fatalf("attach reply %s", msgName(typ))
	}
	// The modern Rattach carries a trailing agreed-features word; a
	// legacy client stops decoding before it. Decode it here to pin the
	// agreement: request-absent means empty set, whatever the server
	// supports.
	d := dec{b: payload}
	d.str() // fs name
	d.u64() // session id
	d.u64() // resume token
	if agreed := d.u32(); d.err != nil || agreed != 0 {
		t.Fatalf("agreed features = %#x (err %v), want 0", agreed, d.err)
	}

	// Open a file the legacy way to get a real handle.
	e = enc{}
	e.u32(uint32(vfs.O_RDWR | vfs.O_CREATE))
	e.u32(0644)
	e.str("/a")
	if err := writeFrame(cs, tOpen, 2, e.b); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err = readFrame(cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rOpen {
		t.Fatalf("open reply %s", msgName(typ))
	}
	d = dec{b: payload}
	handle := d.u64()
	if d.err != nil {
		t.Fatal(d.err)
	}

	// A Tlease on the un-negotiated session is a protocol violation.
	e = enc{}
	e.u64(handle)
	if err := writeFrame(cs, tLease, 3, e.b); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err = readFrame(cs)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rError {
		t.Fatalf("Tlease on legacy session answered %s, want Rerror", msgName(typ))
	}
	if derr := decodeError(payload); !errors.Is(derr, vfs.ErrInval) {
		t.Fatalf("Tlease rejection = %v, want ErrInval", derr)
	}
	if n := srv.ActiveLeases(); n != 0 {
		t.Fatalf("legacy session holds %d leases", n)
	}
}

// TestWireDowngradeOldServer runs a lease-requesting client against a
// hand-rolled legacy server whose Rattach omits the trailing features
// word. The client must settle on the empty set and keep every byte on
// the copy path.
func TestWireDowngradeOldServer(t *testing.T) {
	cs, ss := net.Pipe()
	defer ss.Close()
	done := make(chan error, 1)
	go func() {
		typ, rid, payload, err := readFrame(ss)
		if err != nil {
			done <- err
			return
		}
		if typ != tAttach {
			done <- errors.New("first frame not Tattach")
			return
		}
		d := dec{b: payload}
		if root := d.str(); root != "/" {
			done <- errors.New("bad root " + root)
			return
		}
		// Legacy Rattach: name + session id + token, nothing after.
		var e enc
		e.str("legacy")
		e.u64(1)
		e.u64(42)
		done <- writeFrame(ss, rAttach, rid, e.b)
	}()

	c, err := DialConfig(cs, ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	// Tear the raw conn down rather than Client.Close: the legacy stub
	// above has already exited, so a Tdetach would block on the pipe.
	defer cs.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.features != 0 {
		t.Fatalf("client agreed features = %#x against a legacy server, want 0", c.features)
	}
	if c.leasesOn() {
		t.Fatal("leasesOn() on a legacy session")
	}
}
