package benchfmt

import (
	"math"
	"path/filepath"
	"testing"
)

func rec(exp, metric string, v float64, rev string) Record {
	return Record{Experiment: exp, Metric: metric, Value: v, Unit: "count", GitRev: rev}
}

func TestValidate(t *testing.T) {
	good := []Record{rec("macro", "ycsb-A/pmfs/pm_bytes", 1, "abc")}
	if err := Validate(good); err != nil {
		t.Fatalf("valid records rejected: %v", err)
	}
	bad := []struct {
		name string
		r    Record
	}{
		{"empty experiment", Record{Metric: "m", Unit: "u", GitRev: "r"}},
		{"empty metric", Record{Experiment: "e", Unit: "u", GitRev: "r"}},
		{"empty unit", Record{Experiment: "e", Metric: "m", GitRev: "r"}},
		{"empty rev", Record{Experiment: "e", Metric: "m", Unit: "u"}},
		{"NaN", Record{Experiment: "e", Metric: "m", Unit: "u", GitRev: "r", Value: math.NaN()}},
		{"Inf", Record{Experiment: "e", Metric: "m", Unit: "u", GitRev: "r", Value: math.Inf(1)}},
	}
	for _, tc := range bad {
		if err := Validate([]Record{tc.r}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSaveLoadRoundTrip pins that what cmd/splitbench -json writes is
// exactly what the CI gate reads back: schema-valid and value-identical.
func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	recs := []Record{
		rec("macro", "ycsb-A/ext4-dax/fences_per_op", 2.841666666666667, "e72fb09"),
		rec("macro", "tpcc/splitfs-strict/pm_bytes", 3.375104e+06, "e72fb09"),
		rec("scaling", "appends_4t_kops", 123.25, "e72fb09"),
	}
	if err := Save(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("row %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

// TestMergeDedup pins the rerun rule: same (experiment, metric, git_rev)
// replaces in place; a new revision appends.
func TestMergeDedup(t *testing.T) {
	old := []Record{
		rec("macro", "m1", 1, "rev1"),
		rec("macro", "m2", 2, "rev1"),
	}
	fresh := []Record{
		rec("macro", "m1", 10, "rev1"), // rerun at same rev: replace
		rec("macro", "m1", 11, "rev2"), // new rev: append
	}
	got := Merge(old, fresh)
	want := []Record{
		rec("macro", "m1", 10, "rev1"),
		rec("macro", "m2", 2, "rev1"),
		rec("macro", "m1", 11, "rev2"),
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d rows, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGatedSelection(t *testing.T) {
	gated := []Record{
		rec("macro", "ycsb-A/pmfs/fences_per_op", 1, "r"),
		rec("macro", "tpcc/strata/journal_commits", 1, "r"),
		rec("macro", "ycsb-E/logfs/log_appends", 1, "r"),
		rec("macro", "ycsb-F/splitfs-sync/relinks", 1, "r"),
		rec("macro", "tpcc/splitfs-posix/staging_reclaimed", 1, "r"),
		rec("macro", "ycsb-B/ext4-dax/pm_bytes", 1, "r"),
		// The server experiment's loopback cells are deterministic by the
		// loopback-transport contract and pin the service's transparency.
		rec("server", "loopback/splitfs-strict/fences_per_op", 1, "r"),
		rec("server", "loopback/ext4-dax/pm_bytes", 1, "r"),
		// The lease cells pin the zero-copy data plane: fences/op must
		// stay equal to direct, and read_wire_bytes ~0 IS the "leased
		// reads cross no wire" guarantee.
		rec("server", "lease/splitfs-strict/fences_per_op", 1, "r"),
		rec("server", "lease/splitfs-strict/read_wire_bytes", 0, "r"),
		rec("server", "lease/ext4-dax/leased_read_bytes", 1, "r"),
		rec("server", "loopback/splitfs-strict/write_wire_bytes", 1, "r"),
	}
	ungated := []Record{
		rec("macro", "ycsb-A/pmfs/ns_per_op", 1, "r"),                 // cost-model dependent
		rec("macro", "ycsb-A/pmfs/mix_reads", 1, "r"),                 // mix, not a counter
		rec("scaling", "x/fences_per_op", 1, "r"),                     // not a gated experiment
		rec("server", "loopback/ext4-dax/wall_ns_per_op", 1, "r"),     // wall clock
		rec("server", "direct/ext4-dax/fences_per_op", 1, "r"),        // covered by loopback == direct test
		rec("server", "sessions/splitfs-strict/t8_kops_wall", 1, "r"), // concurrent mode
	}
	for _, r := range gated {
		if !Gated(r) {
			t.Errorf("%s should be gated", r.Metric)
		}
	}
	for _, r := range ungated {
		if Gated(r) {
			t.Errorf("%s/%s should not be gated", r.Experiment, r.Metric)
		}
	}
}

// TestDiffBaselineCatchesInjectedRegression is the acceptance-criteria
// demonstration: a run identical to the baseline passes, and injecting a
// counter regression (one extra fence per op on one cell) fails the
// gate.
func TestDiffBaselineCatchesInjectedRegression(t *testing.T) {
	baseline := []Record{
		rec("macro", "ycsb-A/splitfs-strict/fences_per_op", 3.52, "old"),
		rec("macro", "ycsb-A/splitfs-strict/pm_bytes", 2862080, "old"),
		rec("macro", "macro_wallclock_note", 99, "old"), // not gated: ignored
	}
	clean := []Record{
		rec("macro", "ycsb-A/splitfs-strict/fences_per_op", 3.52, "new"),
		rec("macro", "ycsb-A/splitfs-strict/pm_bytes", 2862080, "new"),
		rec("macro", "ycsb-A/splitfs-strict/ns_per_op", 8825.7, "new"), // ungated extra
	}
	if drifts := DiffBaseline(baseline, clean, []string{"macro"}); len(drifts) != 0 {
		t.Fatalf("clean run flagged: %v", drifts)
	}

	regressed := append([]Record(nil), clean...)
	regressed[0].Value = 4.52 // injected: one extra fence per op
	drifts := DiffBaseline(baseline, regressed, []string{"macro"})
	if len(drifts) != 1 {
		t.Fatalf("injected regression produced %d drifts, want 1: %v", len(drifts), drifts)
	}
	if drifts[0].Metric != "ycsb-A/splitfs-strict/fences_per_op" ||
		drifts[0].Want != 3.52 || drifts[0].Got != 4.52 {
		t.Errorf("wrong drift: %+v", drifts[0])
	}

	// A cell silently vanishing from the matrix is drift too.
	missing := clean[:1]
	if drifts := DiffBaseline(baseline, missing, []string{"macro"}); len(drifts) != 1 {
		t.Errorf("missing row produced %d drifts, want 1", len(drifts))
	}
	// And so is a new gated cell the baseline has never seen.
	extra := append([]Record(nil), clean...)
	extra = append(extra, rec("macro", "ycsb-A/zfs/fences_per_op", 1, "new"))
	if drifts := DiffBaseline(baseline, extra, []string{"macro"}); len(drifts) != 1 {
		t.Errorf("new gated row produced %d drifts, want 1", len(drifts))
	}
}

// TestDiffBaselineScopedToRanExperiments: a job that ran only one gated
// experiment must not be failed by the other's baseline rows, while
// rows of the ran experiment still gate fully.
func TestDiffBaselineScopedToRanExperiments(t *testing.T) {
	baseline := []Record{
		rec("macro", "ycsb-A/pmfs/fences_per_op", 2, "old"),
		rec("server", "loopback/ext4-dax/fences_per_op", 3, "old"),
	}
	serverOnly := []Record{
		rec("server", "loopback/ext4-dax/fences_per_op", 3, "new"),
	}
	if drifts := DiffBaseline(baseline, serverOnly, []string{"server"}); len(drifts) != 0 {
		t.Fatalf("server-only run flagged macro rows: %v", drifts)
	}
	// The ran experiment's rows still gate: a drifted value fails.
	serverOnly[0].Value = 4
	if drifts := DiffBaseline(baseline, serverOnly, []string{"server"}); len(drifts) != 1 {
		t.Fatalf("scoped check missed a drift: %v", drifts)
	}
	// And running both scopes everything.
	if drifts := DiffBaseline(baseline, serverOnly, []string{"macro", "server"}); len(drifts) != 2 {
		t.Fatalf("full scope should flag the drift and the missing macro row: %v", drifts)
	}
}
