// Package server is the multi-tenant file service: a lisafs-inspired
// session/RPC layer (after gvisor's gofer protocol) that multiplexes N
// client sessions onto any vfs.FileSystem. It has four layers:
//
//   - a wire layer: a compact little-endian message codec with request
//     IDs for pipelining and bounded payload framing, spoken over two
//     transports — a deterministic in-process loopback (every request
//     encoded, dispatched, and decoded inline on the caller's goroutine,
//     so the crash harness and the differential suite stay bit-identical
//     to direct calls) and a byte-stream transport (unix socket for
//     cmd/splitfsd, net.Pipe in tests);
//   - a session layer: per-session root confinement (client paths are
//     resolved lexically against the session's subtree, so ".." cannot
//     escape), a sharded handle table built from vfs.FDTable shards, and
//     idempotent teardown that closes every handle when a client
//     disconnects mid-operation;
//   - a dispatch layer: a worker pool with per-session ordering — one
//     session's requests execute FIFO in arrival order, distinct
//     sessions run concurrently on the pool;
//   - a client library (Client, File) implementing vfs.FileSystem, so
//     every workload in the repository runs unmodified through the
//     service against any backend.
//
// This is the serving seam the paper's user-space design implies (§3:
// one U-Split service interposing for many application processes); the
// reproduction's equivalent of gvisor's gofer/lisafs split.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"splitfs/internal/vfs"
)

// Message types. Requests and their replies pair as T*/R*; Rerror may
// answer any request.
const (
	tAttach uint8 = iota + 1
	rAttach
	tDetach
	rDetach
	tOpen
	rOpen
	tClose
	rClose
	tRead
	rRead
	tWrite
	rWrite
	tPread
	rPread
	tPwrite
	rPwrite
	tSeek
	rSeek
	tTruncate
	rTruncate
	tFsync
	rFsync
	tFstat
	rFstat
	tStat
	rStat
	tReadDir
	rReadDir
	tMkdir
	rMkdir
	tUnlink
	rUnlink
	tRmdir
	rRmdir
	tRename
	rRename
	tSyncAll
	rSyncAll
	rError
	tReattach
	rReattach
	tReopen
	rReopen
	// Zero-copy data plane (PR 9). Tlease asks for a lease on an open
	// handle's extent mappings; Trevoke is the only server-initiated
	// message in the protocol — it is pushed with request id 0 (client
	// ids start at 1) when the server must invalidate a lease, and the
	// client acknowledges with Trevokeack. The ordering here matters:
	// Session.execute derives each reply type as typ+1.
	tLease
	rLease
	tRevoke
	tRevokeAck
	rRevokeAck
)

// flagReplay marks a request the client is re-sending after a transport
// loss: the original may or may not have executed. The dispatcher masks
// the flag off before decoding and (a) answers from the session's reply
// cache when the request already executed — the exactly-once path — or
// (b) executes it fresh under the replay heal rules (see Session.handle:
// a replayed rename/unlink whose source is already gone succeeded the
// first time). Request type constants stay below the flag bit.
const flagReplay uint8 = 0x80

var msgNames = map[uint8]string{
	tAttach: "Tattach", rAttach: "Rattach", tDetach: "Tdetach", rDetach: "Rdetach",
	tOpen: "Topen", rOpen: "Ropen", tClose: "Tclose", rClose: "Rclose",
	tRead: "Tread", rRead: "Rread", tWrite: "Twrite", rWrite: "Rwrite",
	tPread: "Tpread", rPread: "Rpread", tPwrite: "Tpwrite", rPwrite: "Rpwrite",
	tSeek: "Tseek", rSeek: "Rseek", tTruncate: "Ttruncate", rTruncate: "Rtruncate",
	tFsync: "Tfsync", rFsync: "Rfsync", tFstat: "Tfstat", rFstat: "Rfstat",
	tStat: "Tstat", rStat: "Rstat", tReadDir: "Treaddir", rReadDir: "Rreaddir",
	tMkdir: "Tmkdir", rMkdir: "Rmkdir", tUnlink: "Tunlink", rUnlink: "Runlink",
	tRmdir: "Trmdir", rRmdir: "Rrmdir", tRename: "Trename", rRename: "Rrename",
	tSyncAll: "Tsyncall", rSyncAll: "Rsyncall", rError: "Rerror",
	tReattach: "Treattach", rReattach: "Rreattach",
	tReopen: "Treopen", rReopen: "Rreopen",
	tLease: "Tlease", rLease: "Rlease", tRevoke: "Trevoke",
	tRevokeAck: "Trevokeack", rRevokeAck: "Rrevokeack",
}

// Feature bits negotiated at attach time. Tattach carries the client's
// requested set as a trailing u32 (absent on old clients: the codec
// tolerates missing trailing fields, decoding them as zero); Rattach
// echoes the agreed set the same way. Either side missing the field
// settles on the empty set — today's chunked copy path.
const featLeases uint32 = 1 << 0

func msgName(t uint8) string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msg(%d)", t)
}

// Framing bounds. A frame on the wire is
//
//	[u32 body length][u8 type][u32 request id][payload ...]
//
// with the length covering type+id+payload. maxPayload bounds what a
// single data-carrying request may ship; the client chunks larger reads
// and writes (see chunkBytes). maxFrame adds headroom for the non-data
// fields so a maximal chunk still fits.
const (
	frameHeader = 4 + 1 + 4 // length + type + request id
	maxPayload  = 1 << 20
	maxFrame    = maxPayload + 256
	chunkBytes  = 256 << 10
)

// errFrameTooBig reports an oversized frame, which is a protocol error:
// the connection is unrecoverable after it (framing is lost).
var errFrameTooBig = errors.New("server: frame exceeds payload bound")

// errServerClosed is returned for any operation on a closed server;
// callers match it with errors.Is rather than string comparison.
var errServerClosed = errors.New("server: closed")

// errUnexpectedReply reports a reply frame whose type does not match the
// outstanding request — a protocol violation, not a backend error.
var errUnexpectedReply = errors.New("server: unexpected reply type")

// errBadHandshake reports a connection whose first frame was not
// Tattach.
var errBadHandshake = errors.New("server: bad handshake")

// errTornFrame reports a stream that died in the middle of a frame — a
// torn disconnect, as opposed to a clean peer close at a frame boundary
// (io.EOF). Teardown classifies the two differently (WireStats), and the
// resumable client treats both as transport loss. Always wrapped, so
// errors.Is holds through the connection-lost chain.
var errTornFrame = errors.New("server: connection torn mid-frame")

// errConnLost poisons a failed stream transport: every outstanding and
// future call on it unwraps to this sentinel (and, below it, to the root
// cause — errTornFrame for a mid-frame tear). The resumable client keys
// its reconnect-and-replay path on it.
var errConnLost = errors.New("server: connection lost")

// errUnknownSession answers a Treattach whose token names no parked
// session: the server restarted (or the session was torn down), so the
// client must fall back to a cold attach and a full replay. It crosses
// the wire as codeUnknownSession so errors.Is survives the transport.
var errUnknownSession = errors.New("server: unknown or unparked session token")

// writeFrame writes one frame to w. Callers serialize access to w.
func writeFrame(w io.Writer, typ uint8, reqID uint32, payload []byte) error {
	if len(payload) > maxFrame-frameHeader {
		return fmt.Errorf("%w (%s, %d bytes)", errFrameTooBig, msgName(typ), len(payload))
	}
	hdr := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+4+len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:9], reqID)
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame from r. A stream that ends cleanly between
// frames returns io.EOF untouched; one that dies inside a frame — a
// partial length header or a truncated body — comes back wrapped in
// errTornFrame, so teardown can tell a polite close from a torn
// mid-frame disconnect.
func readFrame(r io.Reader) (typ uint8, reqID uint32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, 0, nil, fmt.Errorf("%w: %w in frame header", errTornFrame, err)
		}
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 5 || n > maxFrame-4 {
		return 0, 0, nil, fmt.Errorf("%w (%d bytes)", errFrameTooBig, n)
	}
	body := make([]byte, n)
	got, err := io.ReadFull(r, body)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, nil, fmt.Errorf("%w: %d of %d body bytes: %w", errTornFrame, got, n, err)
		}
		return 0, 0, nil, err
	}
	return body[0], binary.LittleEndian.Uint32(body[1:5]), body[5:], nil
}

// enc is an append-style payload encoder. A field that cannot be
// represented (an over-long string) poisons the encoder; senders check
// err before the payload goes anywhere, so a path that does not fit is
// an explicit error, never a silently reinterpreted prefix.
type enc struct {
	b   []byte
	err error
}

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

func (e *enc) str(s string) {
	if len(s) > 0xffff {
		if e.err == nil {
			e.err = fmt.Errorf("server: string field of %d bytes exceeds the wire bound", len(s))
		}
		s = ""
	}
	e.b = binary.LittleEndian.AppendUint16(e.b, uint16(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// dec is the matching decoder; the first short read poisons it, and the
// caller checks dec.err once after decoding every field.
type dec struct {
	b   []byte
	err error
}

var errShortPayload = errors.New("server: truncated payload")

func (d *dec) take(n int) []byte {
	if d.err != nil || len(d.b) < n {
		if d.err == nil {
			d.err = errShortPayload
		}
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if n > maxPayload {
		d.err = errFrameTooBig
		return nil
	}
	return d.take(n)
}

// FileInfo encoding shared by Rstat/Rfstat.
func (e *enc) fileInfo(fi vfs.FileInfo) {
	e.u64(fi.Ino)
	e.i64(fi.Size)
	e.i64(fi.Blocks)
	if fi.IsDir {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u32(fi.Nlink)
}

func (d *dec) fileInfo() vfs.FileInfo {
	fi := vfs.FileInfo{Ino: d.u64(), Size: d.i64(), Blocks: d.i64()}
	fi.IsDir = d.u8() == 1
	fi.Nlink = d.u32()
	return fi
}

// ---------------------------------------------------------------------
// Error transport. The shared vfs error set (plus io.EOF) round-trips
// as numeric codes so errors.Is keeps working across the wire; anything
// else degrades to a generic code carrying the message text.

const (
	codeGeneric uint16 = iota
	codeNotExist
	codeExist
	codeIsDir
	codeNotDir
	codeNotEmpty
	codeNoSpace
	codeBadFD
	codeInval
	codeReadOnly
	codeClosed
	codeEOF
	codeUnknownSession
)

var codeToErr = map[uint16]error{
	codeNotExist: vfs.ErrNotExist,
	codeExist:    vfs.ErrExist,
	codeIsDir:    vfs.ErrIsDir,
	codeNotDir:   vfs.ErrNotDir,
	codeNotEmpty: vfs.ErrNotEmpty,
	codeNoSpace:  vfs.ErrNoSpace,
	codeBadFD:    vfs.ErrBadFD,
	codeInval:    vfs.ErrInval,
	codeReadOnly: vfs.ErrReadOnly,
	codeClosed:   vfs.ErrClosed,
	codeEOF:      io.EOF,

	codeUnknownSession: errUnknownSession,
}

func errToCode(err error) uint16 {
	switch {
	case errors.Is(err, errUnknownSession):
		return codeUnknownSession
	case errors.Is(err, io.EOF):
		return codeEOF
	case errors.Is(err, vfs.ErrNotExist):
		return codeNotExist
	case errors.Is(err, vfs.ErrExist):
		return codeExist
	case errors.Is(err, vfs.ErrIsDir):
		return codeIsDir
	case errors.Is(err, vfs.ErrNotDir):
		return codeNotDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return codeNotEmpty
	case errors.Is(err, vfs.ErrNoSpace):
		return codeNoSpace
	case errors.Is(err, vfs.ErrBadFD):
		return codeBadFD
	case errors.Is(err, vfs.ErrInval):
		return codeInval
	case errors.Is(err, vfs.ErrReadOnly):
		return codeReadOnly
	case errors.Is(err, vfs.ErrClosed):
		return codeClosed
	default:
		return codeGeneric
	}
}

// RemoteError is a server-side failure delivered over the wire. It
// unwraps to the shared vfs sentinel (or io.EOF) the server matched, so
// client-side errors.Is behaves exactly as it would against a direct
// backend, while Error() preserves the server's full message.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

func (e *RemoteError) Unwrap() error {
	if err, ok := codeToErr[e.Code]; ok {
		return err
	}
	return nil
}

// encodeError renders err as an Rerror payload.
func encodeError(reqID uint32, err error) (uint8, uint32, []byte) {
	var e enc
	e.b = make([]byte, 0, 32+len(err.Error()))
	e.u32(uint32(errToCode(err)))
	e.str(err.Error())
	return rError, reqID, e.b
}

// decodeError reconstructs the client-side error for an Rerror payload.
// A bare EOF code comes back as io.EOF itself: callers throughout the
// repository compare with == (the io convention), not just errors.Is.
func decodeError(payload []byte) error {
	d := dec{b: payload}
	code := uint16(d.u32())
	msg := d.str()
	if d.err != nil {
		return fmt.Errorf("server: malformed Rerror: %w", d.err)
	}
	if code == codeEOF {
		return io.EOF
	}
	return &RemoteError{Code: code, Msg: msg}
}
