package metalog

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

func newLog(t testing.TB, size int64) (*pmem.Device, *Log) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	return dev, New(dev, 0, size, sim.CatOpLog)
}

func TestAppendAndReplay(t *testing.T) {
	dev, l := newLog(t, 1<<16)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte("c"), 100)}
	for _, r := range recs {
		if err := l.Append(r, SingleFence); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	_, got := Load(dev, 0, 1<<16, sim.CatOpLog)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
}

func TestUnfencedRecordLostOrDetected(t *testing.T) {
	dev, l := newLog(t, 1<<16)
	l.Append([]byte("durable"), SingleFence)
	l.Append([]byte("unfenced"), NoFence)
	// Torn crash: random 8-byte words of the unfenced record persist.
	if err := dev.Crash(sim.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	_, got := Load(dev, 0, 1<<16, sim.CatOpLog)
	// The fenced record must be there; the torn one must either be
	// entirely absent or, if all its words happened to persist, intact.
	if len(got) == 0 || !bytes.Equal(got[0], []byte("durable")) {
		t.Fatalf("durable record lost: %q", got)
	}
	if len(got) == 2 && !bytes.Equal(got[1], []byte("unfenced")) {
		t.Fatalf("torn record passed checksum: %q", got[1])
	}
	if len(got) > 2 {
		t.Fatalf("phantom records: %d", len(got))
	}
}

func TestSingleFenceCostsOneFence(t *testing.T) {
	dev, l := newLog(t, 1<<16)
	fences := dev.Stats().Fences
	l.Append(make([]byte, 40), SingleFence) // one cache line
	if got := dev.Stats().Fences - fences; got != 1 {
		t.Fatalf("SingleFence used %d fences, want 1", got)
	}
	// NOVA-style: entry fence + tail fence.
	fences = dev.Stats().Fences
	l.Append(make([]byte, 40), EntryPlusTail)
	if got := dev.Stats().Fences - fences; got != 2 {
		t.Fatalf("EntryPlusTail used %d fences, want 2", got)
	}
}

func TestCommonCaseRecordIsOneCacheLine(t *testing.T) {
	if recordLen(48) != sim.CacheLine {
		t.Fatalf("48B payload record = %d bytes, want %d", recordLen(48), sim.CacheLine)
	}
	if recordLen(49) != 2*sim.CacheLine {
		t.Fatalf("49B payload record = %d bytes", recordLen(49))
	}
}

func TestLogFullAndReset(t *testing.T) {
	_, l := newLog(t, 1024) // small: (1024-64)/64 = 15 one-line records
	n := 0
	for {
		if err := l.Append([]byte("x"), NoFence); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	if n != 15 {
		t.Fatalf("fit %d records, want 15", n)
	}
	l.Reset()
	if l.Used() != 0 || l.Entries() != 0 {
		t.Fatal("Reset did not clear the log")
	}
	if err := l.Append([]byte("fresh"), SingleFence); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsOldRecords(t *testing.T) {
	dev, l := newLog(t, 1<<12)
	l.Append([]byte("old"), SingleFence)
	l.Reset()
	l.Append([]byte("new"), SingleFence)
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	_, got := Load(dev, 0, 1<<12, sim.CatOpLog)
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("after reset = %q", got)
	}
}

func TestReplayProperty(t *testing.T) {
	// Any sequence of fenced appends replays exactly.
	f := func(seed uint64, count uint8) bool {
		dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
		l := New(dev, 0, 1<<18, sim.CatOpLog)
		rng := sim.NewRNG(seed)
		n := int(count%50) + 1
		var want [][]byte
		for i := 0; i < n; i++ {
			rec := make([]byte, rng.Intn(120)+1)
			for j := range rec {
				rec[j] = byte(rng.Uint64())
			}
			if err := l.Append(rec, SingleFence); err != nil {
				return false
			}
			want = append(want, rec)
		}
		if err := dev.Crash(nil); err != nil {
			return false
		}
		_, got := Load(dev, 0, 1<<18, sim.CatOpLog)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	s := NewSnapshot(dev, 0, 4096, sim.CatPMMeta)
	if got := s.LoadState(); got != nil {
		t.Fatalf("empty snapshot returned %q", got)
	}
	if err := s.Save([]byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	if got := string(s.LoadState()); got != "state-v2" {
		t.Fatalf("LoadState = %q, want state-v2", got)
	}
}

func TestSnapshotCrashMidSaveKeepsPrevious(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	s := NewSnapshot(dev, 0, 4096, sim.CatPMMeta)
	s.Save([]byte("good"))
	// Simulate a torn second save: write the slot but crash before the
	// selector flip. We approximate by writing garbage into the inactive
	// slot without updating the header.
	dev.PersistNT(sim.CacheLine+4096, []byte("garbage-no-flip"), sim.CatPMMeta)
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	if got := string(s.LoadState()); got != "good" {
		t.Fatalf("LoadState = %q, want good", got)
	}
}

func TestSnapshotTooLarge(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	s := NewSnapshot(dev, 0, 128, sim.CatPMMeta)
	if err := s.Save(make([]byte, 200)); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}
