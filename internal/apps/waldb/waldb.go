// Package waldb is a SQLite-style transactional page store in
// write-ahead-logging mode, the substrate for the paper's TPC-C
// evaluation (§5.2: "SQLite v3.23.1 ... in the Write-Ahead-Logging (WAL)
// mode"). Transactions buffer page images; commit appends them to the
// -wal file with a checksummed commit frame and one fsync; a checkpoint
// copies WAL pages back into the main database file when the WAL grows
// past a threshold.
//
// The file-system pattern is exactly what the paper measures: bursts of
// multi-page WAL appends + fsync per transaction (overwrite-heavy at
// steady state thanks to WAL reset), periodic checkpoint writes into the
// main file, and random page reads.
package waldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"splitfs/internal/vfs"
)

// PageSize is the database page size (SQLite default 4096).
const PageSize = 4096

// Options configure the database.
type Options struct {
	// Path of the main database file; the WAL lives at Path + "-wal".
	Path string
	// CheckpointPages triggers a checkpoint when the WAL holds this many
	// frames (SQLite default 1000; scaled default 256).
	CheckpointPages int
}

func (o *Options) fill() {
	if o.Path == "" {
		o.Path = "/db.sqlite"
	}
	if o.CheckpointPages == 0 {
		o.CheckpointPages = 256
	}
}

// Stats counts database activity.
type Stats struct {
	Commits     int64
	PagesLogged int64
	Checkpoints int64
	PageReads   int64
	PageWrites  int64
}

// DB is an open database.
type DB struct {
	fs   vfs.FileSystem
	opts Options
	db   vfs.File
	wal  vfs.File

	// walIndex maps a page number to its newest frame offset in the WAL.
	walIndex map[uint32]int64
	walSize  int64
	nFrames  int
	nPages   uint32 // pages in the main file
	stats    Stats

	tx map[uint32][]byte // open transaction's dirty pages
}

// frame layout: pageNo(4) commitMark(4) checksum(8) page(PageSize).
const frameSize = 16 + PageSize

// Open creates or recovers a database.
func Open(fs vfs.FileSystem, opts Options) (*DB, error) {
	opts.fill()
	d := &DB{fs: fs, opts: opts, walIndex: make(map[uint32]int64)}
	var err error
	d.db, err = fs.OpenFile(opts.Path, vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		return nil, err
	}
	info, err := d.db.Stat()
	if err != nil {
		return nil, err
	}
	d.nPages = uint32(info.Size / PageSize)
	d.wal, err = fs.OpenFile(opts.Path+"-wal", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		return nil, err
	}
	if err := d.recoverWAL(); err != nil {
		return nil, err
	}
	return d, nil
}

// recoverWAL rebuilds the WAL index, stopping at the last committed
// frame (SQLite semantics: uncommitted trailing frames are ignored).
func (d *DB) recoverWAL() error {
	info, err := d.wal.Stat()
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	var off int64
	pending := make(map[uint32]int64)
	for off+frameSize <= info.Size {
		if _, err := d.wal.ReadAt(buf, off); err != nil {
			return err
		}
		pageNo := binary.LittleEndian.Uint32(buf[0:4])
		commit := binary.LittleEndian.Uint32(buf[4:8])
		sum := binary.LittleEndian.Uint64(buf[8:16])
		if sum != frameChecksum(pageNo, commit, off) {
			break // torn frame
		}
		pending[pageNo] = off + 16
		if pageNo >= d.nPages {
			d.nPages = pageNo + 1
		}
		off += frameSize
		d.nFrames++
		if commit == 1 {
			for p, fo := range pending {
				d.walIndex[p] = fo
			}
			pending = make(map[uint32]int64)
			d.walSize = off
			d.stats.Commits++
		}
	}
	// Truncate any torn/uncommitted tail.
	if d.walSize < info.Size {
		if err := d.wal.Truncate(d.walSize); err != nil {
			return err
		}
	}
	return nil
}

func frameChecksum(pageNo, commit uint32, off int64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	h ^= uint64(pageNo) * 0x100000001b3
	h ^= uint64(commit) << 32
	h ^= uint64(off) * 0xff51afd7ed558ccd
	return h
}

// Begin starts a transaction. Only one transaction may be open.
func (d *DB) Begin() error {
	if d.tx != nil {
		return errors.New("waldb: transaction already open")
	}
	d.tx = make(map[uint32][]byte)
	return nil
}

// ReadPage returns a page's current content (transaction-local if dirty,
// then WAL, then the main file). Pages never written read as zeros.
func (d *DB) ReadPage(pageNo uint32) ([]byte, error) {
	d.stats.PageReads++
	if d.tx != nil {
		if p, ok := d.tx[pageNo]; ok {
			return append([]byte(nil), p...), nil
		}
	}
	if off, ok := d.walIndex[pageNo]; ok {
		p := make([]byte, PageSize)
		if _, err := d.wal.ReadAt(p, off); err != nil {
			return nil, err
		}
		return p, nil
	}
	p := make([]byte, PageSize)
	if pageNo < d.nPages {
		// Pages allocated but not yet checkpointed may lie past the main
		// file's end: they read as zeros, like a sparse database file.
		if _, err := d.db.ReadAt(p, int64(pageNo)*PageSize); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return p, nil
}

// WritePage stages a full page image in the open transaction.
func (d *DB) WritePage(pageNo uint32, page []byte) error {
	if d.tx == nil {
		return errors.New("waldb: no open transaction")
	}
	if len(page) != PageSize {
		return fmt.Errorf("waldb: page must be %d bytes", PageSize)
	}
	d.stats.PageWrites++
	d.tx[pageNo] = append([]byte(nil), page...)
	return nil
}

// Commit appends the transaction's pages to the WAL (the last frame
// carries the commit mark), fsyncs once, and publishes the WAL index.
func (d *DB) Commit() error {
	if d.tx == nil {
		return errors.New("waldb: no open transaction")
	}
	tx := d.tx
	d.tx = nil
	if len(tx) == 0 {
		return nil
	}
	pageNos := make([]uint32, 0, len(tx))
	for p := range tx {
		pageNos = append(pageNos, p)
	}
	// Deterministic frame order.
	sort.Slice(pageNos, func(i, j int) bool { return pageNos[i] < pageNos[j] })
	frame := make([]byte, frameSize)
	newIndex := make(map[uint32]int64, len(pageNos))
	for i, p := range pageNos {
		commit := uint32(0)
		if i == len(pageNos)-1 {
			commit = 1
		}
		binary.LittleEndian.PutUint32(frame[0:4], p)
		binary.LittleEndian.PutUint32(frame[4:8], commit)
		binary.LittleEndian.PutUint64(frame[8:16], frameChecksum(p, commit, d.walSize))
		copy(frame[16:], tx[p])
		if _, err := d.wal.WriteAt(frame, d.walSize); err != nil {
			return err
		}
		newIndex[p] = d.walSize + 16
		d.walSize += frameSize
		d.nFrames++
		d.stats.PagesLogged++
		if p >= d.nPages {
			d.nPages = p + 1
		}
	}
	if err := d.wal.Sync(); err != nil {
		return err
	}
	for p, off := range newIndex {
		d.walIndex[p] = off
	}
	d.stats.Commits++
	if d.nFrames >= d.opts.CheckpointPages {
		return d.Checkpoint()
	}
	return nil
}

// Rollback discards the open transaction.
func (d *DB) Rollback() {
	d.tx = nil
}

// Checkpoint copies every WAL page into the main database file, fsyncs
// it, and resets the WAL.
func (d *DB) Checkpoint() error {
	if len(d.walIndex) == 0 {
		return nil
	}
	d.stats.Checkpoints++
	// Copy back in ascending page order: map-order iteration would vary
	// the main file's first-touch allocation pattern run to run, and the
	// macro matrix pins the resulting metadata counters byte-for-byte.
	pageNos := make([]uint32, 0, len(d.walIndex))
	for pageNo := range d.walIndex {
		pageNos = append(pageNos, pageNo)
	}
	sort.Slice(pageNos, func(i, j int) bool { return pageNos[i] < pageNos[j] })
	page := make([]byte, PageSize)
	for _, pageNo := range pageNos {
		if _, err := d.wal.ReadAt(page, d.walIndex[pageNo]); err != nil {
			return err
		}
		if _, err := d.db.WriteAt(page, int64(pageNo)*PageSize); err != nil {
			return err
		}
	}
	if err := d.db.Sync(); err != nil {
		return err
	}
	if err := d.wal.Truncate(0); err != nil {
		return err
	}
	if err := d.wal.Sync(); err != nil {
		return err
	}
	d.walIndex = make(map[uint32]int64)
	d.walSize = 0
	d.nFrames = 0
	return nil
}

// Stats returns database counters.
func (d *DB) Stats() Stats { return d.stats }

// Close checkpoints and closes the database.
func (d *DB) Close() error {
	if d.tx != nil {
		d.Rollback()
	}
	if err := d.Checkpoint(); err != nil {
		return err
	}
	d.wal.Close()
	return d.db.Close()
}
