// Package harness regenerates every table and figure from the SplitFS
// paper's evaluation (§5) on the simulated substrate. Each experiment is
// registered with the paper artifact it reproduces; cmd/splitbench and
// the repository's bench_test.go drive this registry.
//
// Absolute numbers come from the calibrated cost model (internal/sim);
// the claims under test are the paper's shapes: who wins, by what factor,
// and where the crossovers are. EXPERIMENTS.md records paper-vs-measured
// for every row.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"splitfs/internal/ext4dax"
	"splitfs/internal/logfs"
	"splitfs/internal/nova"
	"splitfs/internal/pmem"
	"splitfs/internal/pmfs"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/strata"
	"splitfs/internal/vfs"
)

// Table is one rendered result table.
type Table struct {
	ID      string
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
	// Metrics are the experiment's machine-readable results;
	// cmd/splitbench serializes them (with the experiment id and git
	// revision) into BENCH_results.json so the perf trajectory can be
	// tracked across revisions.
	Metrics []Metric
}

// Metric is one machine-readable measurement of an experiment.
type Metric struct {
	Name  string  `json:"metric"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// AddMetric appends a machine-readable measurement to the table.
func (t *Table) AddMetric(name string, value float64, unit string) {
	t.Metrics = append(t.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Render writes the table in an aligned text format.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				sb.WriteString(fmt.Sprintf("  %-*s", widths[i], c))
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered reproduction.
type Experiment struct {
	ID    string // e.g. "table1", "fig4"
	Title string
	Run   func() (*Table, error)
}

var registry []Experiment

func register(id, title string, run func() (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return false }) // keep order
	return out
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// env is one file system under test on its own device and clock.
type env struct {
	kind string
	dev  *pmem.Device
	clk  *sim.Clock
	fs   vfs.FileSystem
}

// fsKinds in the order the paper groups them (by guarantee level).
var posixKinds = []string{"ext4-dax", "splitfs-posix"}
var syncKinds = []string{"pmfs", "nova-relaxed", "splitfs-sync"}
var strictKinds = []string{"nova-strict", "strata", "splitfs-strict"}

// newEnv builds a fresh file system of the given kind.
func newEnv(kind string, devBytes int64) (*env, error) {
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: devBytes, Clock: clk, TrackWear: true})
	e := &env{kind: kind, dev: dev, clk: clk}
	lcfg := logfs.Config{LogBytes: 8 << 20, SnapshotSlotBytes: 2 << 20}
	switch kind {
	case "ext4-dax":
		fs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 8192})
		if err != nil {
			return nil, err
		}
		e.fs = fs
	case "pmfs":
		e.fs = pmfs.New(dev, lcfg)
	case "nova-strict":
		e.fs = nova.New(dev, nova.Strict, lcfg)
	case "nova-relaxed":
		e.fs = nova.New(dev, nova.Relaxed, lcfg)
	case "strata":
		// The private log is sized so the digest cycles during a run, as
		// it does at steady state on the paper's long workloads; an
		// oversized log would let Strata dodge its double-write cost.
		e.fs = strata.New(dev, strata.Config{PrivateLogBytes: 3 << 20, Shared: lcfg})
	case "splitfs-posix", "splitfs-sync", "splitfs-strict":
		kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 8192})
		if err != nil {
			return nil, err
		}
		mode := splitfs.POSIX
		switch kind {
		case "splitfs-sync":
			mode = splitfs.Sync
		case "splitfs-strict":
			mode = splitfs.Strict
		}
		fs, err := splitfs.New(kfs, splitfs.Config{
			Mode:             mode,
			StagingFiles:     24, // sized so the background thread never blocks a run
			StagingFileBytes: 8 << 20,
			OpLogBytes:       8 << 20,
		})
		if err != nil {
			return nil, err
		}
		e.fs = fs
	default:
		return nil, fmt.Errorf("harness: unknown fs kind %q", kind)
	}
	return e, nil
}

// measure runs fn and returns the simulated-time breakdown it consumed.
func (e *env) measure(fn func() error) (sim.Breakdown, error) {
	before := e.clk.Snapshot()
	err := fn()
	return e.clk.Snapshot().Sub(before), err
}

// kops converts (ops, ns) to Kops/s of simulated time.
func kops(ops int64, ns int64) float64 {
	if ns == 0 {
		return 0
	}
	return float64(ops) / (float64(ns) / 1e9) / 1e3
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func us(ns int64) string   { return fmt.Sprintf("%.2f", float64(ns)/1000) }
func xf(v float64) string  { return fmt.Sprintf("%.2fx", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
