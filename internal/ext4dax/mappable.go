package ext4dax

import (
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// ext4dax files are vfs.Mappable: extents translate directly to device
// offsets (that is what DAX means), so a lease on them is exactly an
// ext4dax.Mapping handed across the trust boundary. Remap events —
// truncateLocked, swapExtentsLocked, PunchHole — bump in.mapEpoch under
// in.mu before freed blocks can be recycled; MapExtents snapshots
// extents and epoch under in.mu.RLock, the same lock discipline as the
// data read path.
var _ vfs.Mappable = (*File)(nil)

// MapExtents implements vfs.Mappable. The walk stops at the first hole:
// a hole has no device bytes to lease, and readers of uncovered ranges
// fall back to the copy path, which zero-fills.
func (f *File) MapExtents(off, length int64) ([]vfs.Extent, uint64, error) {
	if off < 0 || length < 0 {
		return nil, 0, vfs.ErrInval
	}
	fs := f.fs
	if f.closed.Load() {
		return nil, 0, vfs.ErrClosed
	}
	f.in.mu.RLock()
	defer f.in.mu.RUnlock()
	epoch := f.in.mapEpoch.Load()
	end := off + length
	if end > f.in.size {
		end = f.in.size
	}
	var exts []vfs.Extent
	for cur := off; cur < end; {
		logical := cur / sim.BlockSize
		inBlk := cur % sim.BlockSize
		devOff, contig, ok := translate(fs, f.in, logical)
		if !ok {
			break
		}
		span := contig*sim.BlockSize - inBlk
		if rem := end - cur; span > rem {
			span = rem
		}
		exts = append(exts, vfs.Extent{FileOff: cur, DevOff: devOff + inBlk, Length: span})
		cur += span
	}
	return exts, epoch, nil
}

// MapEpoch implements vfs.Mappable (lock-free).
func (f *File) MapEpoch() uint64 { return f.in.mapEpoch.Load() }

// LoadMapped implements vfs.Mappable: a processor load through the
// mapping, charged like any other user-space PM read. No trap.
func (f *File) LoadMapped(p []byte, devOff int64) int {
	f.fs.dev.ReadIntoUser(p, devOff, sim.CatPMData)
	return len(p)
}
