package crash

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// The in-memory model mirrors the workload at syscall granularity and
// derives, for a crash at any point, the set of durable states each mode
// is allowed to exhibit (the per-mode crash oracles; see DESIGN.md):
//
//   - Strict: every completed syscall durable and atomic, so the durable
//     state must equal the model exactly — either just before or just
//     after the interrupted syscall.
//   - Sync: every completed syscall durable (metadata committed, in-place
//     data fenced) but not atomic; staged appends become durable at
//     relink points (fsync/close/truncate/rename-flush), matching the
//     implementation's guarantee.
//   - POSIX: metadata consistency only — the namespace must equal the
//     model after SOME syscall prefix no older than the last guaranteed
//     journal commit, and fsynced content must survive byte-for-byte
//     outside ranges rewritten since.
//
// Data-byte durability is tracked per byte with a small class lattice:
//
//	clean      byte equals the last-fsynced content
//	eitherOr   single in-place POSIX overwrite: old or new value (torn
//	           words are whole, so each byte is one or the other)
//	durable    completed sync-mode in-place overwrite: must be the new value
//	dirty      anything goes (staged, rewritten, or mid-operation)
type byteClass = byte

const (
	clsClean byteClass = iota
	clsEither
	clsDurable
	clsDirty
)

// span is a half-open file range.
type span struct{ off, end int64 }

// mfile is an immutable snapshot of one file identity after a syscall.
type mfile struct {
	id         int
	data       []byte // logical content
	cls        []byte // per-byte durability class, len == len(data)
	synced     []byte // content at the last durability point
	everSynced bool
	ksize      int64  // kernel-visible (relinked) size
	staged     []span // staged ranges not yet relinked
}

// mstate is the model state after a syscall prefix.
type mstate struct {
	files map[string]*mfile
	dirs  map[string]bool
	// commitFloor is the syscall index of the last operation that is
	// guaranteed to have committed the running journal transaction (any
	// relink: fsync/close with staged data, truncate, rename flush). In
	// POSIX mode the durable namespace can never be older than this.
	commitFloor int
}

// modelRun is the model evaluated over a whole syscall sequence.
type modelRun struct {
	mode   splitfs.Mode
	sys    []syscall
	states []*mstate        // states[i] = after syscall i; states[0] = empty
	ids    []map[int]*mfile // per-state identity table (retains dead ids)
}

func cloneState(s *mstate) *mstate {
	ns := &mstate{
		files:       make(map[string]*mfile, len(s.files)),
		dirs:        make(map[string]bool, len(s.dirs)),
		commitFloor: s.commitFloor,
	}
	for p, f := range s.files {
		ns.files[p] = f
	}
	for d := range s.dirs {
		ns.dirs[d] = true
	}
	return ns
}

func cloneIDs(m map[int]*mfile) map[int]*mfile {
	nm := make(map[int]*mfile, len(m))
	for id, f := range m {
		nm[id] = f
	}
	return nm
}

// mutate returns a private copy of f ready for modification.
func (f *mfile) mutate() *mfile {
	nf := *f
	nf.data = append([]byte(nil), f.data...)
	nf.cls = append([]byte(nil), f.cls...)
	nf.staged = append([]span(nil), f.staged...)
	return &nf
}

func overlapsSpans(spans []span, off, end int64) bool {
	for _, s := range spans {
		if s.off < end && off < s.end {
			return true
		}
	}
	return false
}

// buildModel evaluates the syscall sequence and snapshots the state after
// every syscall.
func buildModel(mode splitfs.Mode, sys []syscall) *modelRun {
	m := &modelRun{mode: mode, sys: sys}
	cur := &mstate{files: map[string]*mfile{}, dirs: map[string]bool{}}
	curIDs := map[int]*mfile{}
	m.states = append(m.states, cur)
	m.ids = append(m.ids, curIDs)
	nextID := 1

	// relinked applies the durability point a relink (fsync/close with
	// staged data, truncate, rename flush) creates: staged data becomes
	// durable in place and the journal transaction commits. The commit
	// happens inside syscall sysIdx, before the syscall's own namespace
	// mutation (a rename's flush precedes the rename), so the namespace
	// floor it establishes is the state before the syscall.
	relinked := func(st *mstate, ids map[int]*mfile, f *mfile, sysIdx int) *mfile {
		f = f.mutate()
		f.staged = nil
		f.ksize = int64(len(f.data))
		f.synced = append([]byte(nil), f.data...)
		f.everSynced = true
		for i := range f.cls {
			f.cls[i] = clsClean
		}
		if sysIdx-1 > st.commitFloor {
			st.commitFloor = sysIdx - 1
		}
		ids[f.id] = f
		return f
	}

	for i, sc := range sys {
		st := cloneState(cur)
		ids := cloneIDs(curIDs)
		sysIdx := i + 1
		switch sc.kind {
		case sysOpen:
			if _, ok := st.files[sc.path]; !ok {
				f := &mfile{id: nextID}
				nextID++
				st.files[sc.path] = f
				ids[f.id] = f
			}
		case sysWrite:
			f, ok := st.files[sc.path]
			if !ok { // cannot happen: compile emits the open first
				f = &mfile{id: nextID}
				nextID++
			}
			f = f.mutate()
			off := sc.off
			if off < 0 {
				off = int64(len(f.data))
			}
			end := off + int64(len(sc.data))
			for int64(len(f.data)) < end {
				f.data = append(f.data, 0)
				f.cls = append(f.cls, clsDirty)
			}
			copy(f.data[off:end], sc.data)
			staged := mode == splitfs.Strict || end > f.ksize ||
				overlapsSpans(f.staged, off, end)
			if staged {
				f.staged = append(f.staged, span{off, end})
				for i := off; i < end; i++ {
					if i >= f.ksize {
						f.cls[i] = clsDirty
					}
					// Bytes below ksize shadowed by a staged overwrite
					// keep their class: the media under them is untouched
					// until the relink.
				}
			} else {
				for i := off; i < end; i++ {
					if mode == splitfs.Sync {
						f.cls[i] = clsDurable // fenced before return
					} else if f.cls[i] == clsClean {
						f.cls[i] = clsEither
					} else {
						f.cls[i] = clsDirty
					}
				}
			}
			st.files[sc.path] = f
			ids[f.id] = f
		case sysFsync:
			if f, ok := st.files[sc.path]; ok {
				// fsync is always a durability point: staged data relinks
				// (or, with nothing staged, a fence drains outstanding
				// stores), and the journal transaction commits either way.
				st.files[sc.path] = relinked(st, ids, f, sysIdx)
			}
		case sysClose:
			if f, ok := st.files[sc.path]; ok && len(f.staged) > 0 {
				st.files[sc.path] = relinked(st, ids, f, sysIdx)
			}
		case sysUnlink:
			delete(st.files, sc.path) // identity stays in ids
		case sysRename:
			src, ok := st.files[sc.path]
			if ok {
				if len(src.staged) > 0 {
					src = relinked(st, ids, src, sysIdx)
				}
				if dst, ok2 := st.files[sc.path2]; ok2 && len(dst.staged) > 0 {
					relinked(st, ids, dst, sysIdx)
				}
				delete(st.files, sc.path)
				st.files[sc.path2] = src
			}
		case sysTruncate:
			if f, ok := st.files[sc.path]; ok {
				if len(f.staged) > 0 {
					f = relinked(st, ids, f, sysIdx)
				}
				f = f.mutate()
				if sc.size < int64(len(f.data)) {
					f.data = f.data[:sc.size]
					f.cls = f.cls[:sc.size]
				} else {
					for int64(len(f.data)) < sc.size {
						f.data = append(f.data, 0)
						f.cls = append(f.cls, clsDirty)
					}
				}
				if int64(len(f.synced)) > sc.size {
					f.synced = f.synced[:sc.size]
				}
				// U-Split resets the kernel-visible size in both
				// directions: later writes below it go in place.
				f.ksize = sc.size
				st.files[sc.path] = f
				ids[f.id] = f
			}
		case sysMkdir:
			st.dirs[sc.path] = true
		case sysSyncall:
			// Group sync: every file with staged data relinks, all batches
			// sharing one journal commit. Files without staged data only
			// gain fence-level durability, which the model conservatively
			// does not credit (fewer clean bytes = weaker assertions, never
			// false violations). Iterate in sorted path order so model
			// construction is deterministic.
			var paths []string
			for p, f := range st.files {
				if len(f.staged) > 0 {
					paths = append(paths, p)
				}
			}
			sort.Strings(paths)
			for _, p := range paths {
				st.files[p] = relinked(st, ids, st.files[p], sysIdx)
			}
		}
		m.states = append(m.states, st)
		m.ids = append(m.ids, ids)
		cur, curIDs = st, ids
	}
	return m
}

// ---------------------------------------------------------------------
// Durable-state capture and the per-mode oracle checks.

// durableState is what the recovered file system actually contains.
type durableState struct {
	files map[string][]byte
	dirs  map[string]bool
}

// captureDurable walks the recovered file system. Unreadable files are
// reported as violations by returning an error.
func captureDurable(fs vfs.FileSystem) (*durableState, error) {
	d := &durableState{files: map[string][]byte{}, dirs: map[string]bool{}}
	var walk func(dir string, depth int) error
	walk = func(dir string, depth int) error {
		// A corrupt recovered image can contain a directory cycle (found
		// by the served fence-fault self-test); an unbounded walk would
		// hang the sweep instead of reporting the corruption.
		if depth > maxWalkDepth {
			return fmt.Errorf("walk of %.80s... exceeds depth %d: directory cycle in recovered image",
				dir, maxWalkDepth)
		}
		ents, err := fs.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("readdir %s: %w", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				d.dirs[p] = true
				if err := walk(p, depth+1); err != nil {
					return err
				}
				continue
			}
			data, err := vfs.ReadFile(fs, p)
			if err != nil {
				return fmt.Errorf("read %s: %w", p, err)
			}
			d.files[p] = data
		}
		return nil
	}
	if err := walk("/", 0); err != nil {
		return nil, err
	}
	return d, nil
}

// maxWalkDepth bounds durable-state capture walks. Workloads nest a
// handful of directories at most; anything deeper is a cycle stitched
// together by a corrupt image, not legitimate state.
const maxWalkDepth = 64

// dirtyOverlay returns, per identity, the spans the in-progress syscall
// may have been mutating on media when the crash hit (its own write
// range, plus every staged range and the not-yet-relinked tail for
// relink-performing syscalls). Bytes inside the overlay are exempt from
// content checks in the sync and POSIX oracles.
func dirtyOverlay(m *modelRun, c int) map[int][]span {
	out := map[int][]span{}
	if c >= len(m.sys) {
		return out
	}
	sc := m.sys[c] // the interrupted syscall (1-based index c+1)
	st := m.states[c]
	add := func(path string, spans ...span) {
		f, ok := st.files[path]
		if !ok {
			return
		}
		all := append(append([]span(nil), f.staged...), spans...)
		all = append(all, span{f.ksize, 1 << 62})
		out[f.id] = all
	}
	switch sc.kind {
	case sysWrite:
		off := sc.off
		if f, ok := st.files[sc.path]; ok && off < 0 {
			off = int64(len(f.data))
		}
		if off < 0 {
			off = 0
		}
		add(sc.path, span{off, off + int64(len(sc.data))})
	case sysFsync, sysClose, sysTruncate:
		add(sc.path)
	case sysRename:
		add(sc.path)
		add(sc.path2)
	case sysSyncall:
		// The interrupted group sync may have been relinking any file
		// with staged data.
		for p, f := range st.files {
			if len(f.staged) > 0 {
				add(p)
			}
		}
	}
	return out
}

func inSpans(spans []span, i int64) bool {
	for _, s := range spans {
		if i >= s.off && i < s.end {
			return true
		}
	}
	return false
}

// checkGuarantee verifies the recovered state against the mode's oracle.
// c is the number of completed syscalls; if interrupted is true the crash
// hit inside syscall c+1 (event-level crash), otherwise it fell exactly
// on the boundary after syscall c.
func checkGuarantee(m *modelRun, c int, interrupted bool, dur *durableState) string {
	candidates := []int{c}
	if interrupted && c+1 <= len(m.sys) {
		candidates = append(candidates, c+1)
	}
	switch m.mode {
	case splitfs.Strict:
		var why string
		for _, j := range candidates {
			if why = matchExact(m.states[j], dur); why == "" {
				return ""
			}
		}
		at := describeCrashPoint(m, c, interrupted)
		return fmt.Sprintf("strict: durable state is neither pre- nor post-%s: %s", at, why)
	case splitfs.Sync:
		// fallthrough to the namespace-candidate check below
	case splitfs.POSIX:
		// POSIX: the namespace may be any syscall prefix no older than
		// the last guaranteed commit.
		floor := m.states[c].commitFloor
		candidates = nil
		for j := floor; j <= c; j++ {
			candidates = append(candidates, j)
		}
		if interrupted && c+1 <= len(m.sys) {
			candidates = append(candidates, c+1)
		}
	}
	overlay := map[int][]span{}
	if interrupted {
		overlay = dirtyOverlay(m, c)
	}
	var lastWhy string
	for _, j := range candidates {
		if why := matchNamespace(m.states[j], dur); why != "" {
			lastWhy = why
			continue
		}
		if why := matchContent(m, j, c, interrupted, overlay, dur); why != "" {
			lastWhy = why
			continue
		}
		return ""
	}
	at := describeCrashPoint(m, c, interrupted)
	return fmt.Sprintf("%v: no acceptable state matches at %s: %s", m.mode, at, lastWhy)
}

func describeCrashPoint(m *modelRun, c int, interrupted bool) string {
	if interrupted && c < len(m.sys) {
		sc := m.sys[c]
		return fmt.Sprintf("op %d (%s %s)", sc.opIdx, sc.kind, sc.path)
	}
	return fmt.Sprintf("syscall boundary %d", c)
}

// matchExact requires byte-identical namespace and contents (strict).
func matchExact(st *mstate, dur *durableState) string {
	if why := matchNamespace(st, dur); why != "" {
		return why
	}
	for p, f := range st.files {
		got := dur.files[p]
		if !bytes.Equal(got, f.data) {
			return fmt.Sprintf("%s diverged at byte %d (len got %d want %d)",
				p, firstDiff(got, f.data), len(got), len(f.data))
		}
	}
	return ""
}

// matchNamespace requires the durable path sets (files and directories)
// to equal the model state's.
func matchNamespace(st *mstate, dur *durableState) string {
	if len(dur.files) != len(st.files) || len(dur.dirs) != len(st.dirs) {
		return fmt.Sprintf("namespace shape: %d files/%d dirs durable (%s / %s), want %d/%d (%s / %s)",
			len(dur.files), len(dur.dirs), pathList(dur.files), pathList(dur.dirs),
			len(st.files), len(st.dirs), pathList(st.files), pathList(st.dirs))
	}
	for p := range st.files {
		if _, ok := dur.files[p]; !ok {
			return fmt.Sprintf("file %s missing", p)
		}
	}
	for p := range st.dirs {
		if !dur.dirs[p] {
			return fmt.Sprintf("directory %s missing", p)
		}
	}
	return ""
}

// pathList renders a path set compactly for namespace-mismatch messages.
func pathList[V any](m map[string]V) string {
	if len(m) == 0 {
		return "∅"
	}
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if len(paths) > 8 {
		paths = append(paths[:8], "…")
	}
	return strings.Join(paths, " ")
}

// matchContent checks every durable file's bytes against the sync/POSIX
// durability classes. Path-to-identity binding comes from the candidate
// state j; durability facts (synced content, classes) come from the
// crash-time identity table (state c) — data durability evolves
// independently of the namespace. When the crash interrupted syscall
// c+1, the post-syscall record is allowed too: the interrupted syscall's
// durability effect (say, a truncate's size change) may have committed.
func matchContent(m *modelRun, j, c int, interrupted bool, overlay map[int][]span, dur *durableState) string {
	for p, bound := range m.states[j].files {
		got := dur.files[p]
		recs := make([]*mfile, 0, 2)
		if rec, ok := m.ids[c][bound.id]; ok {
			recs = append(recs, rec)
		}
		if interrupted && c+1 < len(m.ids) {
			if rec, ok := m.ids[c+1][bound.id]; ok {
				recs = append(recs, rec)
			}
		}
		var why string
		okAny := len(recs) == 0 // identity born in the interrupted syscall: no constraints yet
		for _, rec := range recs {
			if why = contentAgainst(p, got, rec, overlay[bound.id]); why == "" {
				okAny = true
				break
			}
		}
		if !okAny {
			return why
		}
	}
	return ""
}

// contentAgainst verifies one file's durable bytes against one identity
// record; overlay spans are exempt (the interrupted syscall was mutating
// them).
func contentAgainst(p string, got []byte, rec *mfile, dirty []span) string {
	if !rec.everSynced {
		return ""
	}
	if int64(len(got)) < int64(len(rec.synced)) {
		return fmt.Sprintf("%s truncated below synced length: %d < %d",
			p, len(got), len(rec.synced))
	}
	n := len(rec.synced)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if inSpans(dirty, int64(i)) {
			continue
		}
		ok := false
		switch rec.cls[i] {
		case clsClean:
			ok = got[i] == rec.synced[i]
		case clsEither:
			ok = got[i] == rec.synced[i] || got[i] == rec.data[i]
		case clsDurable:
			ok = got[i] == rec.data[i]
		default: // clsDirty
			ok = true
		}
		if !ok {
			return fmt.Sprintf("%s byte %d (class %d) is neither synced nor durable value",
				p, i, rec.cls[i])
		}
	}
	return ""
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// sortedPaths is a debugging helper used by tests and the CLI.
func sortedPaths(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
