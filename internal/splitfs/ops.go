package splitfs

import (
	"splitfs/internal/vfs"
)

// Metadata operations pass through to K-Split (§3.3), with U-Split
// bookkeeping layered on top: attribute-cache maintenance, mmap-cache
// teardown on unlink, and strict-mode operation logging.

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string, perm uint32) error {
	fs.bookkeep()
	if err := fs.kfs.Mkdir(path, perm); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Unlink implements vfs.FileSystem. Cached mappings are unmapped — the
// reason unlink is U-Split's most expensive call (Table 6: 14.60 µs
// strict vs 8.60 µs on ext4 DAX).
func (fs *FS) Unlink(path string) error {
	fs.bookkeep()
	clean := vfs.CleanPath(path)
	info, statErr := fs.kfs.Stat(clean)
	fs.mu.Lock()
	if statErr == nil {
		if of, ok := fs.files[info.Ino]; ok {
			// Unlinked while open: staged data is dropped with the file.
			of.staged = nil
			of.active = nil
		}
		fs.mmaps.drop(info.Ino)
	}
	delete(fs.attrs, clean)
	if fs.olog != nil && statErr == nil {
		fs.olog.append(encMetaEntry('u', info.Ino))
	}
	fs.mu.Unlock()
	if err := fs.kfs.Unlink(clean); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.bookkeep()
	if err := fs.kfs.Rmdir(path); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Rename implements vfs.FileSystem. Rename is one of the uncommon
// operations needing multiple log entries in strict mode (§3.3).
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.bookkeep()
	oldClean, newClean := vfs.CleanPath(oldPath), vfs.CleanPath(newPath)
	fs.mu.Lock()
	// Flush staged state of both endpoints so the kernel sees final
	// contents.
	for _, p := range []string{oldClean, newClean} {
		if info, err := fs.kfs.Stat(p); err == nil {
			if of, ok := fs.files[info.Ino]; ok && len(of.staged) > 0 {
				if err := fs.relinkLocked(of); err != nil {
					fs.mu.Unlock()
					return err
				}
			}
		}
	}
	if fs.olog != nil {
		// Two entries: drop-target + move (the multi-entry rename case).
		if info, err := fs.kfs.Stat(oldClean); err == nil {
			fs.olog.append(encMetaEntry('r', info.Ino))
			fs.olog.append(encMetaEntry('R', info.Ino))
		}
	}
	if info, ok := fs.attrs[oldClean]; ok {
		fs.attrs[newClean] = info
		delete(fs.attrs, oldClean)
	}
	// An open ofile keeps working through its kernel handle; update its
	// path for diagnostics.
	if info, err := fs.kfs.Stat(oldClean); err == nil {
		if of, ok := fs.files[info.Ino]; ok {
			of.path = newClean
		}
	}
	fs.mu.Unlock()
	if err := fs.kfs.Rename(oldClean, newClean); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Stat implements vfs.FileSystem, served from the attribute cache when
// possible (§3.5: cached attributes answer later calls).
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.bookkeep()
	clean := vfs.CleanPath(path)
	fs.mu.Lock()
	if info, ok := fs.attrs[clean]; ok {
		if of, live := fs.files[info.Ino]; live {
			info.Size = of.size
		}
		fs.mu.Unlock()
		return info, nil
	}
	fs.mu.Unlock()
	info, err := fs.kfs.Stat(clean)
	if err != nil {
		return info, err
	}
	fs.mu.Lock()
	fs.attrs[clean] = info
	fs.mu.Unlock()
	return info, nil
}

// ReadDir implements vfs.FileSystem, hiding U-Split's internal staging
// and log files.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.bookkeep()
	ents, err := fs.kfs.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := ents[:0]
	for _, e := range ents {
		if vfs.CleanPath(path) == "/" &&
			(e.Name == vfs.BaseName(stagingDir) || e.Name == vfs.BaseName(oplogDir)) {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// SyncAll relinks every open file's staged data (shutdown path).
func (fs *FS) SyncAll() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, of := range fs.files {
		if len(of.staged) > 0 {
			if err := fs.relinkLocked(of); err != nil {
				return err
			}
		}
	}
	fs.dev.Fence()
	return nil
}
