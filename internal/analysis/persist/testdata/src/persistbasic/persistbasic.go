// Package persistbasic exercises the persist analyzer against the real
// pmem device API, resolved from module export data.
package persistbasic

import (
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// BadStore leaves a temporal store dirty in cache.
func BadStore(dev *pmem.Device, p []byte) {
	dev.Store(0, p, sim.CatPMData) // want `pmem Store result is not flushed and fenced before return`
}

// BadStoreNT leaves a non-temporal store in the write-pending queue.
func BadStoreNT(dev *pmem.Device, p []byte) {
	dev.StoreNT(0, p, sim.CatPMData) // want `pmem StoreNT result is not fenced before return`
}

// BadFlushOnly flushes but never fences: still not durable.
func BadFlushOnly(dev *pmem.Device, p []byte) {
	dev.Store(0, p, sim.CatPMData) // want `pmem Store result is not fenced before return`
	dev.Flush(0, len(p), sim.CatPMData)
}

// OKPersist uses the bundled store+flush+fence helpers.
func OKPersist(dev *pmem.Device, p []byte) {
	dev.Persist(0, p, sim.CatPMData)
	dev.PersistNT(64, p, sim.CatPMData)
}

// OKExplicit drains by hand.
func OKExplicit(dev *pmem.Device, p []byte) {
	dev.Store(0, p, sim.CatPMData)
	dev.StoreNT(64, p, sim.CatPMData)
	dev.Flush(0, len(p), sim.CatPMData)
	dev.Fence()
}

// OKBuffered delegates durability to the journaled group commit.
func OKBuffered(dev *pmem.Device, p []byte) {
	dev.StoreBuffered(0, p, sim.CatPMData)
}

// StageRecord is fenced by its caller, by contract.
//
// +persist:caller-fenced
func StageRecord(dev *pmem.Device, p []byte) {
	dev.StoreNT(0, p, sim.CatPMData)
}

// CommitAll fences unconditionally; callers inherit the fact.
func CommitAll(dev *pmem.Device) {
	dev.Fence()
}

// OKDelegated stages through an annotated helper, then fences through
// another call: both effects flow through facts.
func OKDelegated(dev *pmem.Device, p []byte) {
	StageRecord(dev, p)
	CommitAll(dev)
}

// BadDelegated stages but never fences: the pending store surfaced by
// StageRecord's unfenced fact is reported at the call site.
func BadDelegated(dev *pmem.Device, p []byte) {
	StageRecord(dev, p) // want `call to persistbasic.StageRecord is not fenced before return`
}

// Suppressed carries a reviewed escape.
func Suppressed(dev *pmem.Device, p []byte) {
	//lint:ignore splitfs-persist golden test exercises suppression
	dev.Store(0, p, sim.CatPMData)
}
