// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface the splitfs-vet suite needs.
//
// The real x/tools module is not vendored (the repository builds with
// the standard library only), so this package provides the same three
// moving parts the suite would otherwise import:
//
//   - Analyzer / Pass / Diagnostic — the per-package unit of analysis
//     (analysis.go, this file);
//   - a loader that type-checks module packages from source while
//     resolving imports from compiler export data produced by
//     `go list -export`, so the whole tree can be analyzed offline
//     with full type information (load.go);
//   - a driver that runs analyzers over packages in dependency order
//     with a shared fact store, then applies //lint:ignore
//     suppressions (driver.go, annotations.go).
//
// The five analyzers themselves live in subpackages (lockorder,
// persist, determinism, wireerr, evsource); cmd/splitfs-vet is the
// multichecker binary, runnable standalone or as a `go vet -vettool`.
// DESIGN.md ("Static analysis") documents the annotation grammar each
// analyzer consumes and the suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run is invoked once per
// loaded package, in dependency order, so facts exported while
// analyzing a package are visible when its importers are analyzed.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments ("//lint:ignore splitfs-<name> reason").
	Name string
	// Doc is the one-paragraph description printed by splitfs-vet.
	Doc string
	// Run performs the analysis. Diagnostics go through pass.Reportf;
	// an error aborts the whole run (reserved for internal failures,
	// not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's worth of material to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // parsed with comments
	Pkg      *types.Package
	Info     *types.Info
	Facts    *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: splitfs-%s: %s", d.Pos, d.Analyzer, d.Message)
}

// FactStore is the cross-package memory of one driver run. Facts are
// keyed by (analyzer, object id) where object ids are stable strings
// built by FuncID/FieldID, so a fact exported while source-checking a
// package can be found later from an importer whose view of the same
// object came from compiler export data.
type FactStore struct {
	m map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[string]any{}} }

func factKey(analyzer, id string) string { return analyzer + "\x00" + id }

// Export records fact value v for object id under the analyzer's
// namespace, replacing any previous value.
func (s *FactStore) Export(analyzer, id string, v any) {
	s.m[factKey(analyzer, id)] = v
}

// Import returns the fact for (analyzer, id), if any.
func (s *FactStore) Import(analyzer, id string) (any, bool) {
	v, ok := s.m[factKey(analyzer, id)]
	return v, ok
}

// FuncID returns the stable identifier of a function or method, e.g.
// "splitfs/internal/pmem.New" or "splitfs/internal/pmem.(Device).Fence".
// It returns "" for builtins and other objects without a package.
func FuncID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), name, fn.Name())
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// FieldID returns the stable identifier of a struct field, e.g.
// "splitfs/internal/pmem.shard.mu". recv is the type owning the field
// (pointers are stripped); it returns "" when the owner is unnamed.
func FieldID(recv types.Type, field *types.Var) string {
	if field == nil || field.Pkg() == nil {
		return ""
	}
	name := recvTypeName(recv)
	if name == "" {
		return ""
	}
	return fmt.Sprintf("%s.%s.%s", field.Pkg().Path(), name, field.Name())
}

// recvTypeName names the defined type under ptr/alias wrappers.
func recvTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and calls of function-typed values. Method
// values and qualified identifiers both resolve.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsTestFile reports whether f came from a _test.go file. Analyzers
// whose invariants only bind production code (persist, determinism,
// lockorder) skip such files: crash and race tests violate them on
// purpose, under the harness's control.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// IsPkgPathIn reports whether path is pkg or a subpackage of pkg.
func IsPkgPathIn(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}
