package splitfs

import (
	"bytes"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Regression: a strict FS recovered from an image crashed before its
// first write (even before any op-log file became durable) must have a
// working operation log — the first post-recovery write used to find
// fs.olog unusable state — and everything the recovered instance sets up
// must itself be durable, so a second crash right after recovery+write
// still recovers the write.
func TestStrictRecoverFromPreFirstWriteCrash(t *testing.T) {
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: 32 << 20, Clock: clk, TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: Strict, StagingFiles: 2, StagingFileBytes: 1 << 20, OpLogBytes: 128 << 10}

	// Crash the image before a strict instance ever existed: no op-log
	// file, no staging directory.
	_ = kfs
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, _, err := RecoverFS(kfs2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The first strict write through the recovered instance must work
	// (it appends to the op log RecoverFS created).
	payload := []byte("first write after recovery")
	f, err := fs2.OpenFile("/post", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("first post-recovery strict write: %v", err)
	}

	// Crash again WITHOUT an fsync: the strict guarantee says the logged
	// write survives — which requires the op log and staging files
	// RecoverFS created to have durable metadata by the time the entry
	// was logged.
	if err := dev.Crash(sim.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	kfs3, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs3, report, err := RecoverFS(kfs3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Replayed == 0 {
		t.Fatalf("unfsynced strict write not replayed: %+v", report)
	}
	got, err := vfs.ReadFile(fs3, "/post")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-recovery write lost: %q, want %q", got, payload)
	}
}
