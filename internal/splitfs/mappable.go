package splitfs

import (
	"sort"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// splitfs files are vfs.Mappable: the kernel file's DAX extents cover
// the relinked prefix ([0, ksize)), and the staged overlay — whose
// ranges live in mmap'd staging files — covers the rest, projected to
// the staging files' device offsets. That is exactly the paper's
// U-Split read path (base mmap + staged patch) expressed as a lease.
// Bytes shadowed by a staged range are served from the staging file,
// never from the stale kernel blocks underneath; DRAM-staged bytes
// (StageInDRAM ablation) have no device offset and are simply absent,
// as are zero-fill gaps between ksize and staged ranges.
//
// The epoch is the sum of the overlay epoch (of.mapEpoch) and the
// kernel inode's epoch: both are monotone, so equality across a
// seqlock validation window implies neither moved.
var _ vfs.Mappable = (*File)(nil)

// MapExtents implements vfs.Mappable. Caller-visible ordering: the
// returned epoch is collected under of.mu together with the extents,
// and every mutation that invalidates them bumps one of the two epoch
// counters under the same lock before stale bytes can be recycled.
func (f *File) MapExtents(off, length int64) ([]vfs.Extent, uint64, error) {
	if off < 0 || length < 0 {
		return nil, 0, vfs.ErrInval
	}
	if f.closed.Load() {
		return nil, 0, vfs.ErrClosed
	}
	of := f.of
	of.mu.RLock()
	defer of.mu.RUnlock()
	epoch := of.mapEpoch.Load() + of.kf.MapEpoch()
	end := off + length
	if end > of.size {
		end = of.size
	}
	if end <= off {
		return nil, epoch, nil
	}
	var exts []vfs.Extent
	// Kernel base: the relinked prefix, minus byte ranges shadowed by
	// any staged range (the overlay wins there, aligned or not).
	if kEnd := min64(end, of.ksize); kEnd > off {
		for _, g := range subtractStaged(of.staged, off, kEnd) {
			kexts, _, err := of.kf.MapExtents(g.a, g.b-g.a)
			if err != nil {
				return nil, 0, err
			}
			exts = append(exts, kexts...)
		}
	}
	// Staged overlay, flattened latest-writer-wins so every byte has
	// exactly one source, then projected through the staging files'
	// populated mappings to device offsets.
	for _, pc := range partitionStaged(of.staged) {
		a, b := max64(pc.a, off), min64(pc.b, end)
		if a >= b || pc.src.dram != nil {
			continue
		}
		sfOff := pc.src.sfOff + (a - pc.src.fileOff)
		for cur := a; cur < b; {
			devOff, contig, ok := pc.src.sf.m.Translate(sfOff + (cur - a))
			if !ok {
				break
			}
			span := min64(contig, b-cur)
			exts = append(exts, vfs.Extent{FileOff: cur, DevOff: devOff, Length: span})
			cur += span
		}
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].FileOff < exts[j].FileOff })
	return exts, epoch, nil
}

// MapEpoch implements vfs.Mappable (lock-free). Monotone sum of the
// overlay and kernel epochs.
func (f *File) MapEpoch() uint64 {
	return f.of.mapEpoch.Load() + f.of.kf.MapEpoch()
}

// LoadMapped implements vfs.Mappable: a user-space load through the
// leased mapping, no kernel or U-Split involvement.
func (f *File) LoadMapped(p []byte, devOff int64) int {
	f.fs.dev.ReadIntoUser(p, devOff, sim.CatPMData)
	return len(p)
}

// span is a half-open byte interval.
type span struct{ a, b int64 }

// subtractStaged returns the maximal subranges of [off, end) that no
// staged range touches, in ascending order.
func subtractStaged(staged []stagedRange, off, end int64) []span {
	gaps := []span{{off, end}}
	for _, s := range staged {
		lo, hi := s.fileOff, s.fileOff+s.length
		next := gaps[:0:0]
		for _, g := range gaps {
			if g.b <= lo || hi <= g.a {
				next = append(next, g)
				continue
			}
			if g.a < lo {
				next = append(next, span{g.a, lo})
			}
			if hi < g.b {
				next = append(next, span{hi, g.b})
			}
		}
		gaps = next
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].a < gaps[j].a })
	return gaps
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
