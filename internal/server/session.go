package server

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"splitfs/internal/obs"
	"splitfs/internal/vfs"
)

// Session is one client's view of the served file system: a confining
// root, a sharded handle table, and (on the stream transport) a FIFO
// request queue drained by the dispatcher. Sessions are path-confined —
// every client path is resolved lexically against the session root, so
// "../.." walks clamp at the root instead of escaping it (the gofer
// confinement rule).
//
// A resumable session additionally survives its transport: on connection
// loss it parks (handles stay open, the reply cache stays warm) until
// the client re-attaches by token, and every reply it renders is cached
// by request ID so a replayed request that already executed is answered
// from the cache instead of executing twice — the exactly-once rule for
// non-idempotent operations (rename, unlink, append, truncate).
type Session struct {
	srv  *Server
	id   uint64
	root string // cleaned; "/" means the whole tree
	ht   *handleTable

	resumable bool
	token     uint64 // re-attach credential (0 for non-resumable)

	// features is the agreed feature set from attach-time negotiation
	// (featLeases & co). Immutable after attach.
	features uint32

	// leases holds the session's outstanding lease segments by id,
	// guarded by srv.leaseMu alongside the server's ino index.
	leases map[uint64]*leaseSegment

	mu      sync.Mutex
	queue   []request // pending requests (stream transport only)
	running bool      // a worker currently owns this session
	closed  bool      // no further requests accepted
	torn    bool      // teardown has run
	parked  bool      // transport lost; awaiting re-attach

	conn    *serverConn // guarded by replyMu; nil for loopback and while parked
	replyMu sync.Mutex  // serializes reply frames onto conn

	replies replyCache // exactly-once reply cache (resumable sessions)

	// Observability plane (metrics.go): gen counts transport
	// attachments (1 at attach, +1 per adopt), obs is the per-session
	// metric block, flight the last-N-ops ring (nil when disabled).
	gen    atomic.Int64
	obs    sessionObs
	flight *obs.Recorder
}

// replyCacheCap bounds the per-session reply cache. The resumable client
// keeps at most a handful of requests outstanding and truncates its
// replay log at every acknowledged SyncAll barrier, so the window of
// request IDs a replay can present is far smaller than this.
const replyCacheCap = 512

// replyCacheMaxEntry bounds one cached payload; larger replies (big
// sequential reads) are not cached, and a replayed request that misses
// re-executes — safe for every operation the resumable client logs
// (positional I/O and namespace ops), documented as the reason resumable
// clients should prefer positional reads.
const replyCacheMaxEntry = 128 << 10

type cachedReply struct {
	typ     uint8
	payload []byte
}

// replyCache is a bounded FIFO map of request ID → rendered reply.
type replyCache struct {
	mu   sync.Mutex
	m    map[uint32]cachedReply
	fifo []uint32
}

func (c *replyCache) put(id uint32, typ uint8, payload []byte) {
	if len(payload) > replyCacheMaxEntry {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[uint32]cachedReply)
	}
	if _, ok := c.m[id]; ok {
		return
	}
	for len(c.fifo) >= replyCacheCap {
		delete(c.m, c.fifo[0])
		c.fifo = c.fifo[1:]
	}
	// Cached payloads are retained beyond the dispatch that built them;
	// copy so no caller-owned buffer is shared.
	c.m[id] = cachedReply{typ: typ, payload: append([]byte(nil), payload...)}
	c.fifo = append(c.fifo, id)
}

func (c *replyCache) get(id uint32) (uint8, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[id]
	return r.typ, r.payload, ok
}

// request is one decoded-enough frame waiting for dispatch.
type request struct {
	typ     uint8
	id      uint32
	payload []byte
}

// ID returns the session's identifier.
func (s *Session) ID() uint64 { return s.id }

// Root returns the session's confining root path.
func (s *Session) Root() string { return s.root }

// OpenHandles reports the session's live handle count.
func (s *Session) OpenHandles() int { return s.ht.open() }

// resolve maps a client path into the session's subtree. CleanPath
// resolves ".." lexically and cannot ascend above "/", so the result
// always stays under root.
func (s *Session) resolve(p string) string {
	c := vfs.CleanPath(p)
	if s.root == "/" {
		return c
	}
	if c == "/" {
		return s.root
	}
	return s.root + c
}

// detached reports whether the session has been closed (detach,
// disconnect, or server shutdown).
func (s *Session) detached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Token returns the session's re-attach token (0 for non-resumable
// sessions).
func (s *Session) Token() uint64 { return s.token }

// park detaches the transport but keeps the session alive — handles
// open, reply cache warm — for a later re-attach. from is the connection
// the caller believes it is detaching: if a takeover re-attach already
// swapped in a newer transport, park reports superseded and leaves the
// session alone. Reports parked=false, superseded=false when the session
// cannot park (not resumable, or already closed), in which case the
// caller tears it down instead. Lock order: s.mu, then replyMu — adopt
// holds both across its transition, so park sees either the old or the
// new transport, never a half-installed one.
func (s *Session) park(from *serverConn) (parked, superseded bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replyMu.Lock()
	defer s.replyMu.Unlock()
	if from != nil && s.conn != from {
		return false, true
	}
	if s.closed || !s.resumable {
		return false, false
	}
	s.parked = true
	s.conn = nil
	return true, false
}

// adopt hands a session a new transport. A parked session simply
// resumes; a live one is taken over — the client reconnected before the
// server noticed the old transport die, so the stale connection is
// closed and its read loop's eventual failure reads as superseded (see
// park) instead of parking over the new transport. Only a closed session
// refuses, as errUnknownSession, sending the client to a cold attach —
// always safe, never privileged. The handshake reply is written while
// replyMu is held — the instant conn is visible, a worker draining
// requests queued before the loss may reply on it, and that frame must
// not interleave with the handshake frame.
func (s *Session) adopt(conn *serverConn, handshake func() error) error {
	s.mu.Lock()
	s.replyMu.Lock()
	if s.closed {
		s.replyMu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("%w (session %d closed)", errUnknownSession, s.id)
	}
	s.parked = false
	old := s.conn
	s.conn = conn
	s.gen.Add(1)
	s.mu.Unlock()
	defer s.replyMu.Unlock()
	if old != nil {
		old.rwc.Close() // kick the superseded read loop off the old transport
		s.srv.logf("server: session %d: transport takeover", s.id)
	}
	if handshake != nil {
		if err := handshake(); err != nil {
			return err
		}
	}
	return nil
}

// disconnect handles a read-loop failure on conn: classify the loss
// (clean peer close at a frame boundary vs. torn mid-frame vs. other),
// then park a resumable session or tear a plain one down. A loop whose
// transport was superseded by a takeover re-attach is a no-op — the
// session already moved on, and the loss it reports was deliberate.
func (s *Session) disconnect(conn *serverConn, err error) {
	srv := s.srv
	parked, superseded := s.park(conn)
	if superseded {
		srv.logf("server: session %d: superseded transport closed", s.id)
		return
	}
	switch {
	case err == io.EOF:
		srv.stats.cleanCloses.Add(1)
		srv.logf("server: session %d: clean close", s.id)
	case errors.Is(err, errTornFrame):
		srv.stats.tornDisconnects.Add(1)
		srv.logf("server: session %d: torn mid-frame disconnect: %v", s.id, err)
	default:
		srv.stats.otherDisconnects.Add(1)
		srv.logf("server: session %d: transport error: %v", s.id, err)
	}
	if parked {
		srv.stats.parkedSessions.Add(1)
		srv.logf("server: session %d: parked for re-attach", s.id)
		return
	}
	s.teardown()
}

// teardown closes the session. If a worker is mid-request the teardown
// is deferred to that worker (it observes closed and finishes it), so a
// handle is never closed underneath an executing operation. Idempotent.
func (s *Session) teardown() {
	s.mu.Lock()
	s.closed = true
	if s.running {
		s.mu.Unlock()
		return // the owning worker completes the teardown
	}
	s.running = true
	s.mu.Unlock()
	s.finishTeardown()
}

// finishTeardown drops queued requests and closes every handle. Called
// with queue ownership (running == true).
func (s *Session) finishTeardown() {
	s.mu.Lock()
	if s.torn {
		s.running = false
		s.mu.Unlock()
		return
	}
	s.torn = true
	s.queue = nil
	s.running = false
	s.mu.Unlock()
	// Leases die with their session: revoke before the handles close so
	// a client still holding a segment observes the flag, not a load
	// against blocks an orphan close is about to free. Server.Close
	// tears every session down, so no lease survives a generation.
	s.srv.revokeSessionLeases(s)
	s.ht.closeAll()
	s.srv.detach(s)
}

// handle executes one request against the backend and renders the reply
// frame. It is the single entry point for both transports: the loopback
// calls it inline, the dispatcher calls it from a worker.
//
// A request carrying flagReplay is a client re-send after transport
// loss. If the original already executed, its cached reply is returned
// verbatim (exactly-once); otherwise the request executes fresh under
// the replay heal rules (healReplay) — a replayed rename/unlink whose
// source is already gone, or a replayed mkdir that already took effect,
// reads as success, because in-order replay guarantees the only way the
// precondition can be missing is that the original applied durably.
func (s *Session) handle(typ uint8, reqID uint32, payload []byte) (uint8, uint32, []byte) {
	replay := typ&flagReplay != 0
	typ &^= flagReplay
	var flags uint8
	if replay {
		flags |= obs.FlagReplay
		s.srv.stats.replayedRequests.Add(1)
		if rtyp, rp, ok := s.replies.get(reqID); ok {
			s.srv.stats.replayCacheHits.Add(1)
			s.observe(typ, reqID, payload, rp, rtyp, flags|obs.FlagCached, 0, 0)
			return rtyp, reqID, rp
		}
	}
	cost0, fences0 := s.srv.probe()
	rtyp, rid, rp := s.execute(typ, reqID, payload, replay)
	cost1, fences1 := s.srv.probe()
	if s.resumable {
		s.replies.put(reqID, rtyp, rp)
	}
	s.observe(typ, reqID, payload, rp, rtyp, flags, cost1-cost0, fences1-fences0)
	return rtyp, rid, rp
}

// healReplay reports whether err, produced by a replayed request of the
// given type, proves the original execution already applied. Sound
// because replay is in-order from the last durable barrier: a replayed
// unlink/rename can only find its source missing if the original ran
// (the syscall that created the source replays first), and a replayed
// mkdir can only collide with itself.
func healReplay(typ uint8, err error) bool {
	switch typ {
	case tMkdir:
		return errors.Is(err, vfs.ErrExist)
	case tUnlink, tRmdir, tRename:
		return errors.Is(err, vfs.ErrNotExist)
	case tClose:
		// The original close freed the handle (or a cold re-attach never
		// re-established a handle that was closed later in the log).
		return errors.Is(err, vfs.ErrBadFD)
	}
	return false
}

// execute runs one decoded request against the backend.
func (s *Session) execute(typ uint8, reqID uint32, payload []byte, replay bool) (uint8, uint32, []byte) {
	d := dec{b: payload}
	var e enc
	var err error
	rtyp := typ + 1 // every T* reply type is the next constant

	switch typ {
	case tDetach:
		// Teardown completes before the Rdetach reply renders, so a
		// client that saw the reply can rely on every handle being
		// closed (and SessionCount reflecting the detach).
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.finishTeardown()
	case tOpen:
		flag := int(d.u32())
		perm := d.u32()
		path := d.str()
		if d.err == nil {
			// A conflicting writable open (another tenant, or O_TRUNC
			// which frees blocks inside OpenFile) invalidates leases on
			// the target before the open executes.
			if vfs.Writable(flag) {
				s.revokePathLeases(path)
			}
			var f vfs.File
			if f, err = s.srv.fs.OpenFile(s.resolve(path), flag, perm); err == nil {
				e.u64(s.ht.insert(f))
			}
		}
	case tClose:
		id := d.u64()
		if d.err == nil {
			// The backing file may free orphan blocks at last close.
			s.srv.revokeHandleLeases(s, id)
			err = s.ht.closeHandle(id)
		}
	case tRead:
		id := d.u64()
		n := d.u32()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				buf := make([]byte, capRead(n))
				got, rerr := f.Read(buf)
				if rerr != nil {
					return rerr
				}
				e.bytes(buf[:got])
				return nil
			})
		}
	case tWrite:
		id := d.u64()
		data := d.bytes()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				got, werr := f.Write(data)
				if werr != nil {
					return werr
				}
				e.u32(uint32(got))
				return nil
			})
		}
	case tPread:
		id := d.u64()
		off := d.i64()
		n := d.u32()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				buf := make([]byte, capRead(n))
				got, rerr := f.ReadAt(buf, off)
				if rerr != nil {
					return rerr
				}
				e.bytes(buf[:got])
				return nil
			})
		}
	case tPwrite:
		id := d.u64()
		off := d.i64()
		data := d.bytes()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				got, werr := f.WriteAt(data, off)
				if werr != nil {
					return werr
				}
				e.u32(uint32(got))
				return nil
			})
		}
	case tSeek:
		id := d.u64()
		off := d.i64()
		whence := int(d.u8())
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				pos, serr := f.Seek(off, whence)
				if serr != nil {
					return serr
				}
				e.i64(pos)
				return nil
			})
		}
	case tTruncate:
		id := d.u64()
		size := d.i64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				s.revokeFileLeases(f) // truncate frees blocks
				return f.Truncate(size)
			})
		}
	case tFsync:
		id := d.u64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error { return f.Sync() })
		}
	case tFstat:
		id := d.u64()
		if d.err == nil {
			err = s.withFile(id, func(f vfs.File) error {
				fi, serr := f.Stat()
				if serr != nil {
					return serr
				}
				e.fileInfo(fi)
				return nil
			})
		}
	case tStat:
		path := d.str()
		if d.err == nil {
			var fi vfs.FileInfo
			if fi, err = s.srv.fs.Stat(s.resolve(path)); err == nil {
				e.fileInfo(fi)
			}
		}
	case tReadDir:
		path := d.str()
		if d.err == nil {
			var ents []vfs.DirEntry
			if ents, err = s.srv.fs.ReadDir(s.resolve(path)); err == nil {
				e.u32(uint32(len(ents)))
				for _, de := range ents {
					e.str(de.Name)
					e.u64(de.Ino)
					if de.IsDir {
						e.u8(1)
					} else {
						e.u8(0)
					}
				}
				// An enormous directory must degrade to an error reply,
				// not an oversized frame that would kill the connection.
				if len(e.b) > maxPayload {
					err = fmt.Errorf("server: readdir %s: %d entries exceed the wire payload bound", path, len(ents))
				}
			}
		}
	case tMkdir:
		perm := d.u32()
		path := d.str()
		if d.err == nil {
			err = s.srv.fs.Mkdir(s.resolve(path), perm)
		}
	case tUnlink:
		path := d.str()
		if d.err == nil {
			s.revokePathLeases(path)
			err = s.srv.fs.Unlink(s.resolve(path))
		}
	case tRmdir:
		path := d.str()
		if d.err == nil {
			err = s.srv.fs.Rmdir(s.resolve(path))
		}
	case tRename:
		oldPath := d.str()
		newPath := d.str()
		if d.err == nil {
			// Both ends: the source moves (attribute-cache interplay —
			// a leased path must not serve bytes under a stale name) and
			// a replaced destination is unlinked.
			s.revokePathLeases(oldPath)
			s.revokePathLeases(newPath)
			err = s.srv.fs.Rename(s.resolve(oldPath), s.resolve(newPath))
		}
	case tSyncAll:
		err = s.syncAll()
	case tLease:
		id := d.u64()
		if d.err == nil {
			if s.features&featLeases == 0 {
				err = fmt.Errorf("server: lease: not negotiated: %w", vfs.ErrInval)
			} else {
				err = s.withFile(id, func(f vfs.File) error {
					seg, gerr := s.srv.grantLease(s, id, f)
					if gerr != nil {
						return gerr
					}
					e.u64(seg.id)
					e.u64(seg.epoch)
					e.i64(seg.size)
					e.u32(uint32(len(seg.extents)))
					for _, x := range seg.extents {
						e.i64(x.FileOff)
						e.i64(x.DevOff)
						e.i64(x.Length)
					}
					if len(e.b) > maxPayload {
						// Pathologically fragmented file: refuse rather
						// than render an oversized frame; the client
						// stays on the copy path.
						s.srv.revokeHandleLeases(s, id)
						return fmt.Errorf("server: lease: %d extents exceed the wire payload bound: %w", len(seg.extents), vfs.ErrInval)
					}
					return nil
				})
			}
		}
	case tRevokeAck:
		segID := d.u64()
		if d.err == nil {
			s.srv.ackRevoke(segID)
		}
	case tReopen:
		id := d.u64()
		flag := int(d.u32())
		perm := d.u32()
		off := d.i64()
		n := int(d.u16())
		chain := make([]string, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			chain = append(chain, d.str())
		}
		if d.err == nil {
			err = s.reopen(id, flag, perm, off, chain)
		}
	default:
		err = fmt.Errorf("server: unknown message %s", msgName(typ))
	}

	if d.err != nil {
		err = fmt.Errorf("server: %s: %w", msgName(typ), d.err)
	}
	if err == nil && e.err != nil {
		err = e.err // a reply field that cannot be encoded (over-long name)
	}
	if err != nil && replay && healReplay(typ, err) {
		err = nil
		e = enc{} // healed ops all carry empty reply bodies
		s.srv.stats.healedReplays.Add(1)
	}
	if err != nil {
		return encodeError(reqID, err)
	}
	return rtyp, reqID, e.b
}

// revokePathLeases revokes outstanding leases on the inode a (session-
// relative) path resolves to. Gated on leasesActive so lease-free
// serving performs exactly the pre-lease operation sequence — the
// determinism the crash differential and the bench baselines pin.
func (s *Session) revokePathLeases(path string) {
	if !s.srv.leasesActive() {
		return
	}
	fi, err := s.srv.fs.Stat(s.resolve(path))
	if err != nil {
		return // nothing at the path, nothing leased
	}
	s.srv.revokeIno(fi.Ino)
}

// revokeFileLeases revokes outstanding leases on an open file's inode.
// Same gating as revokePathLeases.
func (s *Session) revokeFileLeases(f vfs.File) {
	if !s.srv.leasesActive() {
		return
	}
	fi, err := f.Stat()
	if err != nil {
		return
	}
	s.srv.revokeIno(fi.Ino)
}

// reopen re-establishes a handle at its original wire ID during a cold
// resume (the session is fresh; the parked one died with the server).
// chain lists every path the file may durably sit at, oldest first: the
// path the handle was opened under (or held at the last barrier) plus
// each rename destination the client sent since. Recovery rolled the
// namespace back to some prefix of those operations, so exactly one
// chain entry exists — probe newest first, and if none exists the file's
// creation itself was lost: recreate it empty at the oldest name and let
// the replayed log rebuild it. O_TRUNC/O_EXCL are stripped — a re-open
// must never destroy recovered data.
func (s *Session) reopen(id uint64, flag int, perm uint32, off int64, chain []string) error {
	if len(chain) == 0 {
		return vfs.WrapPath("reopen", "", vfs.ErrInval)
	}
	if _, err := s.ht.get(id); err == nil {
		return nil // already bound: an earlier resume attempt won
	}
	probe := flag &^ (vfs.O_TRUNC | vfs.O_EXCL | vfs.O_CREATE)
	var f vfs.File
	for i := len(chain) - 1; i >= 0; i-- {
		g, err := s.srv.fs.OpenFile(s.resolve(chain[i]), probe, perm)
		if err == nil {
			f = g
			break
		}
		if !errors.Is(err, vfs.ErrNotExist) {
			return err
		}
	}
	if f == nil {
		g, err := s.srv.fs.OpenFile(s.resolve(chain[0]), probe|vfs.O_CREATE, perm)
		if err != nil {
			return err
		}
		f = g
	}
	if off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return err
		}
	}
	if err := s.ht.insertAt(id, f); err != nil {
		f.Close()
		return err
	}
	return nil
}

// withFile resolves a handle and runs fn on it.
func (s *Session) withFile(id uint64, fn func(vfs.File) error) error {
	f, err := s.ht.get(id)
	if err != nil {
		return err
	}
	return fn(f)
}

// capRead bounds a read request to the payload limit; the client chunks
// larger reads, so hitting the cap just produces a short read.
func capRead(n uint32) int {
	if n > maxPayload-64 {
		return maxPayload - 64
	}
	return int(n)
}

// syncAll is the group-sync operation. A backend with its own SyncAll
// (splitfs: one group-committed relink batch over every open file) uses
// it; otherwise every live handle of this session syncs in path order —
// the same degradation rule the crash-harness runner applies directly.
func (s *Session) syncAll() error {
	if sa, ok := s.srv.fs.(interface{ SyncAll() error }); ok {
		return sa.SyncAll()
	}
	files := s.ht.files()
	sort.Slice(files, func(i, j int) bool { return files[i].Path() < files[j].Path() })
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}
