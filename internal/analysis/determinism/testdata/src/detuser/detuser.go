// Package detuser checks cross-package emits facts: dettest.EmitAll
// was recorded as emitting when its package was analyzed.
package detuser

import (
	"dettest"

	"splitfs/internal/pmem"
)

// Bad emits through an imported function.
func Bad(dev *pmem.Device, batches map[string]map[int64][]byte) {
	for _, m := range batches { // want `map iteration emits persistence/I-O events in random order`
		dettest.EmitAll(dev, m)
	}
}

// OK only counts.
func OK(batches map[string]map[int64][]byte) int {
	n := 0
	for _, m := range batches {
		n += len(m)
	}
	return n
}
