package logfs

import (
	"sort"

	"splitfs/internal/alloc"
)

// insertExt places a physical extent at a logical block position; the
// caller guarantees the range is a hole.
func insertExt(in *inode, logical int64, e alloc.Extent) {
	fe := fext{logical: logical, phys: e}
	idx := sort.Search(len(in.extents), func(i int) bool {
		return in.extents[i].logical > logical
	})
	in.extents = append(in.extents, fext{})
	copy(in.extents[idx+1:], in.extents[idx:])
	in.extents[idx] = fe
	// Merge adjacent.
	merged := in.extents[:1]
	for _, x := range in.extents[1:] {
		last := &merged[len(merged)-1]
		if last.logicalEnd() == x.logical && last.phys.End() == x.phys.Start {
			last.phys.Len += x.phys.Len
		} else {
			merged = append(merged, x)
		}
	}
	in.extents = merged
}

// removeRange unmaps [logical, logical+count) and returns the physical
// extents that backed it.
func removeRange(in *inode, logical, count int64) []alloc.Extent {
	to := logical + count
	var removed []alloc.Extent
	var keep []fext
	for _, e := range in.extents {
		if e.logicalEnd() <= logical || e.logical >= to {
			keep = append(keep, e)
			continue
		}
		if e.logical < logical {
			keep = append(keep, fext{logical: e.logical,
				phys: alloc.Extent{Start: e.phys.Start, Len: logical - e.logical}})
		}
		ovStart := maxi(e.logical, logical)
		ovEnd := mini(e.logicalEnd(), to)
		removed = append(removed, alloc.Extent{
			Start: e.phys.Start + (ovStart - e.logical),
			Len:   ovEnd - ovStart,
		})
		if e.logicalEnd() > to {
			keep = append(keep, fext{logical: to,
				phys: alloc.Extent{
					Start: e.phys.Start + (to - e.logical),
					Len:   e.logicalEnd() - to,
				}})
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].logical < keep[j].logical })
	in.extents = keep
	return removed
}

// shrinkTo drops all blocks at or past the block containing size (used in
// replay, where freed blocks are reclaimed by the mount-time allocator
// rebuild).
func shrinkTo(in *inode, size int64) []alloc.Extent {
	from := (size + blockSize - 1) / blockSize
	freed := removeRange(in, from, 1<<40)
	in.size = size
	return freed
}

// lookup translates a logical block to (device offset, contiguous
// blocks). Caller converts via the allocator's data base.
func (fs *FS) lookup(in *inode, logical int64) (devOff, contig int64, ok bool) {
	idx := sort.Search(len(in.extents), func(i int) bool {
		return in.extents[i].logicalEnd() > logical
	})
	if idx == len(in.extents) || in.extents[idx].logical > logical {
		return 0, 0, false
	}
	e := in.extents[idx]
	d := logical - e.logical
	return fs.bmp.BlockOffset(e.phys.Start + d), e.phys.Len - d, true
}

// lastBlock returns the end of the mapped logical space.
func lastBlock(in *inode) int64 {
	if len(in.extents) == 0 {
		return 0
	}
	return in.extents[len(in.extents)-1].logicalEnd()
}

// nextMappedAt returns the first mapped logical block >= logical.
func nextMappedAt(in *inode, logical int64) int64 {
	for _, e := range in.extents {
		if e.logicalEnd() > logical {
			if e.logical > logical {
				return e.logical
			}
			return logical
		}
	}
	return 1 << 60
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
