// Package server is outside the deterministic set: client scheduling
// drives it, so wall time and goroutines are its normal mode. Nothing
// here may be reported.
package server

import "time"

// Tick uses wall time freely.
func Tick() time.Time {
	return time.Now()
}

// Serve spawns per-connection goroutines.
func Serve(ch chan struct{}) {
	go func() { close(ch) }()
}
