// Package utilsim reproduces the access patterns of the paper's three
// metadata-heavy utilities (§5.2, §5.9):
//
//   - git: "git add" + "git commit" of a source tree — content hashing,
//     many small object files created under fanout directories, index and
//     ref updates. The paper's worst case for SplitFS (≤15% slowdown).
//   - tar: archive a tree — sequential reads of many files, one large
//     sequential append stream with 512-byte headers.
//   - rsync: copy a tree — per-file read + write + fsync, pattern of the
//     paper's 7 GB backup-dataset copy (scaled).
package utilsim

import (
	"encoding/binary"
	"fmt"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// TreeConfig describes the synthetic source tree.
type TreeConfig struct {
	// Dirs and FilesPerDir shape the tree (defaults 8 x 16).
	Dirs        int
	FilesPerDir int
	// FileBytes is the mean file size (default 8 KB; sizes vary 0.5x-1.5x).
	FileBytes int
	// Seed drives deterministic content.
	Seed uint64
}

func (c *TreeConfig) fill() {
	if c.Dirs == 0 {
		c.Dirs = 8
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 16
	}
	if c.FileBytes == 0 {
		c.FileBytes = 8 << 10
	}
	if c.Seed == 0 {
		c.Seed = 123
	}
}

// MakeTree creates the source tree under root and returns the file paths.
func MakeTree(fs vfs.FileSystem, root string, cfg TreeConfig) ([]string, error) {
	cfg.fill()
	rng := sim.NewRNG(cfg.Seed)
	if err := fs.Mkdir(root, 0755); err != nil {
		return nil, err
	}
	var paths []string
	for d := 0; d < cfg.Dirs; d++ {
		dir := fmt.Sprintf("%s/dir%03d", root, d)
		if err := fs.Mkdir(dir, 0755); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.FilesPerDir; i++ {
			p := fmt.Sprintf("%s/src%04d.c", dir, i)
			n := cfg.FileBytes/2 + rng.Intn(cfg.FileBytes)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
			if err := vfs.WriteFile(fs, p, data); err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
	}
	return paths, nil
}

// GitAddCommit simulates "git add -A && git commit" over the tree:
// every file is read and hashed, an object file is written under a
// two-character fanout directory, then tree/commit objects and ref
// updates finish the commit. Returns the number of objects written.
func GitAddCommit(fs vfs.FileSystem, root, gitDir string, paths []string, round int) (int, error) {
	objDir := gitDir + "/objects"
	for _, d := range []string{gitDir, objDir} {
		if err := fs.Mkdir(d, 0755); err != nil && !exists(fs, d) {
			return 0, err
		}
	}
	objects := 0
	var indexPayload []byte
	for _, p := range paths {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return objects, err
		}
		h := hashBytes(data, uint64(round))
		fan := fmt.Sprintf("%s/%02x", objDir, byte(h))
		if err := fs.Mkdir(fan, 0755); err != nil && !exists(fs, fan) {
			return objects, err
		}
		objPath := fmt.Sprintf("%s/%016x", fan, h)
		if !exists(fs, objPath) {
			// "Compress" to ~60% and write the loose object. git does not
			// fsync loose objects; durability comes from the eventual ref
			// update. This create-write-close pattern with no fsync is
			// what makes git SplitFS's worst case (§5.9).
			of, err := vfs.Create(fs, objPath)
			if err != nil {
				return objects, err
			}
			if _, err := of.Write(data[:len(data)*6/10]); err != nil {
				of.Close()
				return objects, err
			}
			if err := of.Close(); err != nil {
				return objects, err
			}
			objects++
		}
		var rec [24]byte
		binary.LittleEndian.PutUint64(rec[0:8], h)
		indexPayload = append(indexPayload, rec[:]...)
		indexPayload = append(indexPayload, p...)
	}
	// Index rewrite (git writes a new index then renames it).
	if err := vfs.WriteFile(fs, gitDir+"/index.tmp", indexPayload); err != nil {
		return objects, err
	}
	if err := fs.Rename(gitDir+"/index.tmp", gitDir+"/index"); err != nil {
		return objects, err
	}
	// Tree + commit objects and ref update.
	commitFan := fmt.Sprintf("%s/%02x", objDir, round%256)
	if err := fs.Mkdir(commitFan, 0755); err != nil && !exists(fs, commitFan) {
		return objects, err
	}
	commit := fmt.Sprintf("%s/commit-%06d", commitFan, round)
	if err := vfs.WriteFile(fs, commit, indexPayload[:min(256, len(indexPayload))]); err != nil {
		return objects, err
	}
	if err := vfs.WriteFile(fs, gitDir+"/HEAD", []byte(commit)); err != nil {
		return objects, err
	}
	logf, err := fs.OpenFile(gitDir+"/log", vfs.O_RDWR|vfs.O_CREATE|vfs.O_APPEND, 0644)
	if err != nil {
		return objects, err
	}
	logf.Write([]byte(commit + "\n"))
	logf.Sync()
	logf.Close()
	return objects, nil
}

// Tar archives the tree into one file: sequential whole-file reads,
// 512-byte headers, data rounded to 512-byte blocks, one fsync at the
// end. Returns the archive size.
func Tar(fs vfs.FileSystem, archive string, paths []string) (int64, error) {
	out, err := fs.OpenFile(archive, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0644)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	var total int64
	hdr := make([]byte, 512)
	for _, p := range paths {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return total, err
		}
		copy(hdr, p)
		binary.LittleEndian.PutUint64(hdr[256:264], uint64(len(data)))
		if _, err := out.Write(hdr); err != nil {
			return total, err
		}
		pad := (512 - len(data)%512) % 512
		if _, err := out.Write(append(data, make([]byte, pad)...)); err != nil {
			return total, err
		}
		total += 512 + int64(len(data)+pad)
	}
	if err := out.Sync(); err != nil {
		return total, err
	}
	return total, nil
}

// Rsync copies the tree file by file into dstRoot, fsyncing each file
// (rsync's default safe copy: write temp, fsync, rename).
func Rsync(fs vfs.FileSystem, srcRoot, dstRoot string, paths []string) (int64, error) {
	if err := fs.Mkdir(dstRoot, 0755); err != nil && !exists(fs, dstRoot) {
		return 0, err
	}
	var total int64
	madeDirs := map[string]bool{}
	for _, p := range paths {
		data, err := vfs.ReadFile(fs, p)
		if err != nil {
			return total, err
		}
		rel := p[len(srcRoot):]
		dst := dstRoot + rel
		dir, _ := vfs.SplitDir(dst)
		if !madeDirs[dir] {
			if err := fs.Mkdir(dir, 0755); err != nil && !exists(fs, dir) {
				return total, err
			}
			madeDirs[dir] = true
		}
		tmp := dst + ".tmp"
		if err := vfs.WriteFile(fs, tmp, data); err != nil {
			return total, err
		}
		if err := fs.Rename(tmp, dst); err != nil {
			return total, err
		}
		total += int64(len(data))
	}
	return total, nil
}

func exists(fs vfs.FileSystem, p string) bool {
	_, err := fs.Stat(p)
	return err == nil
}

func hashBytes(data []byte, seed uint64) uint64 {
	h := 0xcbf29ce484222325 ^ seed
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
