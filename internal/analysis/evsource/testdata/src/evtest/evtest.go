// Package evtest exercises the evsource analyzer against the real pmem
// event-source API.
package evtest

import "splitfs/internal/pmem"

// OK is the canonical save-and-defer idiom.
func OK(dev *pmem.Device) {
	prev := dev.SetEventSource(pmem.SrcRelinkWorker)
	defer dev.SetEventSource(prev)
}

// OKRetag switches sources mid-section under an active deferred
// restore.
func OKRetag(dev *pmem.Device) {
	prev := dev.SetEventSource(pmem.SrcRelinkWorker)
	defer dev.SetEventSource(prev)
	dev.SetEventSource(pmem.SrcReclaim)
}

// BadManualRestore is the async.go bug shape: saved and restored, but
// not via defer — an early return or panic leaks the source. The
// manual restore itself also counts as an unprotected discard.
func BadManualRestore(dev *pmem.Device, fail bool) {
	prev := dev.SetEventSource(pmem.SrcRelinkWorker) // want `SetEventSource switch is not restored by a deferred SetEventSource\(prev\)`
	if fail {
		return
	}
	dev.SetEventSource(prev) // want `SetEventSource discards the previous source with no deferred restore in scope`
}

// BadDiscard drops the previous source outright.
func BadDiscard(dev *pmem.Device) {
	dev.SetEventSource(pmem.SrcReclaim) // want `SetEventSource discards the previous source with no deferred restore in scope`
}

// BadUnderscore discards through the blank identifier.
func BadUnderscore(dev *pmem.Device) {
	_ = dev.SetEventSource(pmem.SrcReclaim) // want `SetEventSource discards the previous source with no deferred restore in scope`
}

// BadLateDefer registers the restore after a retag already happened.
func BadLateDefer(dev *pmem.Device) {
	dev.SetEventSource(pmem.SrcRelinkWorker) // want `SetEventSource discards the previous source with no deferred restore in scope`
	prev := dev.SetEventSource(pmem.SrcReclaim)
	defer dev.SetEventSource(prev)
}

// ClosureScopes checks that closures are their own scope: the enclosing
// defer does not protect the closure body.
func ClosureScopes(dev *pmem.Device) func() {
	prev := dev.SetEventSource(pmem.SrcRelinkWorker)
	defer dev.SetEventSource(prev)
	return func() {
		dev.SetEventSource(pmem.SrcReclaim) // want `SetEventSource discards the previous source with no deferred restore in scope`
	}
}

// OKClosure has its own save-and-defer inside the closure.
func OKClosure(dev *pmem.Device) func() {
	return func() {
		prev := dev.SetEventSource(pmem.SrcReclaim)
		defer dev.SetEventSource(prev)
	}
}

// Suppressed carries a reviewed escape: teardown code that never
// returns to event-emitting work.
func Suppressed(dev *pmem.Device) {
	//lint:ignore splitfs-evsource golden test exercises suppression
	dev.SetEventSource(pmem.SrcForeground)
}
