// Package vfs defines the POSIX-shaped interface every file system in this
// repository implements — the nine backends of the differential and macro
// matrices: ext4-dax, the three SplitFS modes (posix/sync/strict), the two
// NOVA modes (strict/relaxed), PMFS, Strata, and logfs — plus the shared
// error set, open flags, and a file-descriptor table with POSIX dup
// semantics.
//
// The paper's SplitFS intercepts 35 POSIX calls via LD_PRELOAD; here the
// equivalent seam is this interface: applications and workloads are written
// against vfs.FileSystem and run unmodified on any of the nine
// implementations, which is exactly the transparency property the paper
// claims (§3.1).
package vfs

import (
	"errors"
	"fmt"
	"io"
)

// Open flags, mirroring the POSIX values the paper's applications use.
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_CREATE = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// The shared error set. Implementations wrap these with %w so callers can
// use errors.Is.
var (
	ErrNotExist = errors.New("file does not exist")
	ErrExist    = errors.New("file already exists")
	ErrIsDir    = errors.New("is a directory")
	ErrNotDir   = errors.New("not a directory")
	ErrNotEmpty = errors.New("directory not empty")
	ErrNoSpace  = errors.New("no space left on device")
	ErrBadFD    = errors.New("bad file descriptor")
	ErrInval    = errors.New("invalid argument")
	ErrReadOnly = errors.New("file not open for writing")
	ErrClosed   = errors.New("file already closed")
)

// FileInfo describes a file, in the spirit of stat(2).
type FileInfo struct {
	Ino    uint64
	Size   int64
	Blocks int64 // allocated 4 KB blocks
	IsDir  bool
	Nlink  uint32
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name  string
	Ino   uint64
	IsDir bool
}

// File is an open file handle. Read/Write use the handle's offset; ReadAt/
// WriteAt are positional (pread/pwrite). Sync is fsync(2).
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (FileInfo, error)
	// Path returns the path the file was opened with, for diagnostics.
	Path() string
}

// FileSystem is the POSIX-shaped surface shared by every file system in
// the reproduction.
type FileSystem interface {
	// Name identifies the implementation and mode, e.g. "splitfs-strict".
	Name() string
	OpenFile(path string, flag int, perm uint32) (File, error)
	Mkdir(path string, perm uint32) error
	Unlink(path string) error
	Rmdir(path string) error
	Rename(oldPath, newPath string) error
	Stat(path string) (FileInfo, error)
	ReadDir(path string) ([]DirEntry, error)
}

// Create opens path for writing, creating and truncating as needed.
func Create(fs FileSystem, path string) (File, error) {
	return fs.OpenFile(path, O_RDWR|O_CREATE|O_TRUNC, 0644)
}

// Open opens path read-only.
func Open(fs FileSystem, path string) (File, error) {
	return fs.OpenFile(path, O_RDONLY, 0)
}

// WriteFile writes data to path in a single call, creating it.
func WriteFile(fs FileSystem, path string, data []byte) error {
	f, err := Create(fs, path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads the whole of path.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	f, err := Open(fs, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	n, err := f.ReadAt(buf, 0)
	// A clean EOF at exactly the stat'd size is the expected outcome (and
	// what a zero-length file reports); every other error — including a
	// non-EOF error on a full read — must propagate.
	if err != nil && !(errors.Is(err, io.EOF) && n == len(buf)) {
		return nil, err
	}
	return buf[:n], nil
}

// PathError decorates an error with the operation and path, like
// os.PathError.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return fmt.Sprintf("%s %s: %v", e.Op, e.Path, e.Err) }

// Unwrap supports errors.Is/As.
func (e *PathError) Unwrap() error { return e.Err }

// WrapPath returns a PathError around err, or nil when err is nil.
func WrapPath(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &PathError{Op: op, Path: path, Err: err}
}

// Readable reports whether the flag permits reading.
func Readable(flag int) bool { return flag&0x3 == O_RDONLY || flag&0x3 == O_RDWR }

// Writable reports whether the flag permits writing.
func Writable(flag int) bool { return flag&0x3 == O_WRONLY || flag&0x3 == O_RDWR }
