// Command splitbench regenerates the SplitFS paper's evaluation tables
// and figures on the simulated PM substrate.
//
// Usage:
//
//	splitbench                  # run every experiment
//	splitbench list             # list experiment IDs
//	splitbench table1 fig4 ...  # run selected experiments
//	splitbench -threads 8 scaling
//
// -threads N sets the worker-goroutine sweep of the concurrent-mode
// "scaling" experiment to powers of two up to N (default 4). Wall-clock
// scaling needs GOMAXPROCS >= N.
package main

import (
	"flag"
	"fmt"
	"os"

	"splitfs/internal/harness"
)

func main() {
	threads := flag.Int("threads", 0,
		"max worker threads for the concurrent-mode scaling experiment (0 keeps the default sweep)")
	flag.Parse()
	if *threads < 0 {
		fmt.Fprintln(os.Stderr, "splitbench: -threads must not be negative")
		os.Exit(2)
	}
	if *threads > 0 {
		harness.SetMaxThreads(*threads)
	}
	args := flag.Args()
	// flag.Parse stops at the first positional argument; a flag placed
	// after an experiment ID would otherwise be silently treated as one.
	for _, a := range args {
		if len(a) > 0 && a[0] == '-' {
			fmt.Fprintf(os.Stderr, "splitbench: flags must precede experiment IDs (got %q after positional arguments)\n", a)
			os.Exit(2)
		}
	}
	if len(args) == 1 && args[0] == "list" {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var exps []harness.Experiment
	if len(args) == 0 {
		exps = harness.All()
	} else {
		for _, id := range args {
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (try 'splitbench list')\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	failed := false
	for _, e := range exps {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		tbl.Render(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
