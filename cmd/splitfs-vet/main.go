// splitfs-vet runs the repository's static-analysis suite (lockorder,
// persist, determinism, wireerr, evsource — see DESIGN.md, "Static
// analysis") in either of two modes.
//
// Standalone, over a package pattern:
//
//	go run ./cmd/splitfs-vet ./...
//
// loads the matched packages in dependency order, runs standard `go
// vet` as a subprocess (one analysis step in CI covers both), then the
// suite, and prints surviving diagnostics. -suppressions=error
// additionally inventories every //lint:ignore comment and fails if
// any exist — the nightly job uses it to keep the suppression count
// visible.
//
// As a vettool, driven per package by cmd/go:
//
//	go build -o /tmp/splitfs-vet ./cmd/splitfs-vet
//	go vet -vettool=/tmp/splitfs-vet ./...
//
// cmd/go first invokes the tool with -flags (it must print a JSON
// array of its flags), then once per package with a vet.cfg path:
// sources are parsed from GoFiles, imports resolve through
// ImportMap/PackageFile export data, cross-package facts arrive via
// the PackageVetx files of dependencies and leave via VetxOutput.
// Diagnostics go to stderr with a nonzero exit; VetxOnly packages get
// facts only.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"splitfs/internal/analysis"
	"splitfs/internal/analysis/suite"
)

func main() {
	// The cmd/go tool-ID handshake: print a version line and exit. The
	// buildID is a hash of this binary, so go's vet result cache
	// invalidates whenever the tool itself changes.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-V") {
			fmt.Printf("splitfs-vet version devel buildID=%s\n", selfID())
			return
		}
	}
	// The vettool flag handshake: print our flag set as JSON.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println(`[{"Name":"suppressions","Bool":false,"Usage":"ignore|error: treat //lint:ignore comments as errors"}]`)
		return
	}

	suppressions := flag.String("suppressions", "ignore",
		"ignore|error: error inventories every //lint:ignore comment and fails if any exist")
	flag.Parse()
	args := flag.Args()

	// A single argument naming an existing *.cfg file is a vet.cfg from
	// cmd/go: run in vettool mode.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if _, err := os.Stat(args[0]); err == nil {
			os.Exit(vettool(args[0]))
		}
	}
	os.Exit(standalone(args, *suppressions == "error"))
}

// selfID hashes the running binary for the -V=full handshake.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, err = io.Copy(h, f)
			f.Close()
			if err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
	}
	return "unknown"
}

// standalone analyzes whole package patterns in one process.
func standalone(patterns []string, suppressionsAreErrors bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Fold the standard vet pass in: one CI step, one command.
	govet := exec.Command("go", append([]string{"vet"}, patterns...)...)
	govet.Stdout = os.Stdout
	govet.Stderr = os.Stderr
	code := 0
	if err := govet.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "splitfs-vet: standard go vet failed")
		code = 1
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
		return 1
	}
	res, err := analysis.Run(pkgs, suite.All, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
		return 1
	}
	for _, d := range res.Diags {
		fmt.Fprintln(os.Stderr, d)
		code = 1
	}
	if suppressionsAreErrors && len(res.Suppressions) > 0 {
		fmt.Fprintf(os.Stderr, "splitfs-vet: %d active suppression(s):\n", len(res.Suppressions))
		for _, s := range res.Suppressions {
			name := s.Analyzer
			if name == "" {
				name = "(malformed)"
			}
			fmt.Fprintf(os.Stderr, "  %s: splitfs-%s: %s\n", s.Pos, name, s.Reason)
		}
		code = 1
	}
	return code
}

// vetConfig mirrors the JSON cmd/go writes for each vetted package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes the single package a vet.cfg describes.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "splitfs-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}

	// Imports resolve exactly as the compiler saw them: through
	// ImportMap to the export data listed in PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		r, err := os.Open(vetx)
		if err != nil {
			continue // dep analyzed by a different tool: no facts, not fatal
		}
		err = facts.MergeFrom(r)
		r.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitfs-vet: reading facts %s: %v\n", vetx, err)
			return 1
		}
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Files:   files,
		Fset:    fset,
		Types:   tpkg,
		Info:    info,
	}
	res, err := analysis.Run([]*analysis.Package{pkg}, suite.All, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		out, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
			return 1
		}
		err = facts.EncodeTo(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "splitfs-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	code := 0
	for _, d := range res.Diags {
		fmt.Fprintln(os.Stderr, d)
		code = 1
	}
	return code
}

// typecheckFailed honors SucceedOnTypecheckFailure: cmd/go sets it when
// the package already failed to build, so vet should stay quiet.
func typecheckFailed(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "splitfs-vet: type-checking %s: %v\n", cfg.ImportPath, err)
	return 1
}
