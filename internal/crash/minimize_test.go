package crash

import (
	"testing"

	"splitfs/internal/splitfs"
)

// A seeded fault — every workload fence is "forgotten" via the pmem test
// hook — must be caught by the sweep and minimized to a tiny reproducer.
func TestMinimizeSeededFenceViolation(t *testing.T) {
	cfg := ExploreConfig{
		Mode:      splitfs.Strict,
		Ops:       RandomOps(3, 10),
		Seed:      3,
		Sample:    24,
		SkipFence: func(seq int64) bool { return true },
	}
	res, err := Minimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) > 5 {
		t.Fatalf("minimized to %d ops, want <= 5", len(res.Ops))
	}
	if res.Violation.Msg == "" {
		t.Fatal("no witness violation")
	}
	t.Logf("minimized to %d ops in %d runs: %s", len(res.Ops), res.Runs, res.Violation.Msg)
}

// A healthy campaign must refuse to minimize.
func TestMinimizeRejectsHealthyCampaign(t *testing.T) {
	_, err := Minimize(ExploreConfig{Mode: splitfs.Strict, Ops: RandomOps(5, 4),
		Seed: 5, Sample: 10})
	if err == nil {
		t.Fatal("expected error for a non-violating campaign")
	}
}
