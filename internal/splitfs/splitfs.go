// Package splitfs implements the paper's primary contribution: U-Split, a
// user-space library file system layered on the ext4 DAX kernel file
// system (K-Split, package ext4dax).
//
// Division of labour (§3.3):
//
//   - Data operations (read, overwrite) are served in user space through a
//     collection of memory-mappings — processor loads and non-temporal
//     stores, no kernel traps.
//   - Appends (and, in strict mode, overwrites) are redirected to
//     pre-allocated staging files and relinked into the target file on
//     fsync via the relink primitive — no data copies for block-aligned
//     ranges.
//   - Metadata operations (open, close, unlink, mkdir, ...) pass through
//     to K-Split, inheriting ext4's mature metadata path.
//
// Three consistency modes (§3.2, Table 3) per instance:
//
//	POSIX  — metadata consistency, atomic appends (ext4 DAX equivalent).
//	Sync   — + synchronous data and metadata ops (PMFS / NOVA-Relaxed).
//	Strict — + atomic operations via the optimized operation log
//	         (NOVA-Strict / Strata equivalent).
//
// Multiple instances with different modes can share one K-Split, as in
// the paper's multi-application deployments.
package splitfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Mode is the consistency mode of a U-Split instance.
type Mode int

const (
	// POSIX provides metadata consistency plus atomic appends.
	POSIX Mode = iota
	// Sync additionally makes every operation synchronous.
	Sync
	// Strict additionally makes every operation atomic.
	Strict
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case POSIX:
		return "posix"
	case Sync:
		return "sync"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the tunable parameters of §3.6.
type Config struct {
	// Mode selects the consistency mode (default POSIX).
	Mode Mode
	// MmapBytes is the size of each memory-mapping in the collection of
	// mmaps (§3.6: 2 MB to 512 MB, default 2 MB to enable huge pages).
	MmapBytes int64
	// StagingFiles is the number of staging files pre-allocated at
	// startup (§3.6: default 10).
	StagingFiles int
	// StagingFileBytes is the size of each staging file (paper: 160 MB;
	// scaled default here 4 MB).
	StagingFileBytes int64
	// StagingChunkBytes is the per-file reservation unit inside a staging
	// file (default 256 KB).
	StagingChunkBytes int64
	// OpLogBytes is the strict-mode operation log size (paper: 128 MB;
	// scaled default here 8 MB).
	OpLogBytes int64
	// DisableHugePages turns off 2 MB mappings (for the §4 ablation).
	DisableHugePages bool
	// DisableStaging routes appends through the kernel (for the Fig 3
	// technique breakdown).
	DisableStaging bool
	// DisableRelink makes fsync copy staged data through the kernel
	// instead of relinking (for the Fig 3 technique breakdown).
	DisableRelink bool
	// StageInDRAM buffers staged writes in DRAM instead of PM staging
	// files — the design alternative §4 discusses and rejects ("the cost
	// of copying data from DRAM to PM on fsync() overshadowed the
	// benefit"). fsync must then copy every byte through the kernel.
	// Only meaningful for POSIX mode; it forfeits strict-mode recovery.
	StageInDRAM bool
	// RelinkWorkers selects how the asynchronous relink pipeline drains
	// (see DESIGN.md, "Asynchronous relink pipeline"):
	//
	//	0 (default) — deterministic single-drain: fsync enqueues its file
	//	  and the calling goroutine drains the whole queue itself, so a
	//	  single-threaded run produces a bit-identical persistence-event
	//	  stream every time. The crash harness's record/replay depends on
	//	  this mode to pin "worker" scheduling.
	//	N > 0 — N background worker goroutines drain the queue; fsync
	//	  blocks only until its file's relink batch has group-committed.
	//	  Event numbering is interleaving-dependent in this mode.
	RelinkWorkers int
}

func (c *Config) fill() {
	if c.MmapBytes == 0 {
		c.MmapBytes = 2 << 20
	}
	if c.StagingFiles == 0 {
		c.StagingFiles = 10
	}
	if c.StagingFileBytes == 0 {
		c.StagingFileBytes = 4 << 20
	}
	if c.StagingChunkBytes == 0 {
		c.StagingChunkBytes = 256 << 10
	}
	if c.OpLogBytes == 0 {
		c.OpLogBytes = 8 << 20
	}
}

// Stats counts U-Split activity.
type Stats struct {
	UserReads    int64 // reads served from user space
	UserWrites   int64 // overwrites served from user space
	Appends      int64 // staged appends
	StagedBytes  int64 // bytes written through the staging path
	Relinks      int64 // relink invocations
	RelinkBlocks int64 // blocks moved without copying
	CopiedBytes  int64 // unaligned bytes copied through the kernel at fsync
	LogEntries   int64
	Checkpoints  int64 // op-log checkpoints
	MmapHits     int64
	MmapMisses   int64
}

// fsStats are the live counters behind Stats, atomics so the lock-free
// data path can count without any process-wide lock.
type fsStats struct {
	userReads    atomic.Int64
	userWrites   atomic.Int64
	appends      atomic.Int64
	stagedBytes  atomic.Int64
	relinks      atomic.Int64
	relinkBlocks atomic.Int64
	copiedBytes  atomic.Int64
	logEntries   atomic.Int64
	checkpoints  atomic.Int64
	mmapHits     atomic.Int64
	mmapMisses   atomic.Int64
}

// FS is a U-Split instance.
//
// Lock hierarchy, outermost first (full discussion in DESIGN.md):
//
//		wmu → pipeline.mu → mu → ofile.mu → {amu, stagingPool.mu, mmapCache.mu}
//		    → ext4dax locks → pmem shard locks
//
//	  - wmu serializes strict-mode mutating operations: the shared
//	    operation log orders entries by a monotone sequence that the relink
//	    watermark is compared against, so log appends and the staged-state
//	    changes they describe must be mutually ordered.
//	  - pipeline.mu guards only the relink queue (enqueue/pop); it is
//	    never held across relink work.
//	  - mu guards only the open-file table (files map and refcounts).
//	  - ofile.mu (read/write) guards one file's staged overlay and sizes;
//	    reads and staged appends to different files never share a lock.
//	  - amu guards the attribute cache.
//
// Relink batches of distinct files no longer take a process-wide lock
// (PR 1's rmu): each batch holds a K-Split batch handle, which pins the
// shared running journal transaction open, and group commit (one leader
// commits the transaction for every batch that joined it) preserves
// per-batch atomicity — jbd2's "many handles, one transaction" rule.
//
// The lockrank chains below declare DESIGN.md's "Lock hierarchy" for
// the lockorder analyzer; the three level-5 locks (amu, stagingpool,
// mmapcache) are mutual siblings, each between ofile and ext4fs.
//
// +lockrank:order wmu < pipeline < fstable < ofile < amu < ext4fs
// +lockrank:order ofile < stagingpool < ext4fs
// +lockrank:order ofile < mmapcache < ext4fs
type FS struct {
	kfs  *ext4dax.FS
	dev  *pmem.Device
	clk  *sim.Clock
	cfg  Config
	mode Mode

	// Strict-mode writer serialization (op-log order).
	wmu sync.Mutex // +lockrank:wmu

	// Open-file table.
	mu    sync.RWMutex      // +lockrank:fstable
	files map[uint64]*ofile // live open files by inode

	// Attribute cache.
	amu   sync.Mutex // +lockrank:amu
	attrs map[string]vfs.FileInfo

	pipeline *relinkPipeline // asynchronous relink + group commit

	staging *stagingPool
	mmaps   *mmapCache
	olog    *oplog // nil unless Strict
	opSeq   uint64 // monotone operation sequence; guarded by wmu
	stats   fsStats
}

var _ vfs.FileSystem = (*FS)(nil)

// ofile is the shared open-file description U-Split keeps per inode
// (§3.5: one offset per open file, dup'd descriptors share it).
//
// mu guards size, ksize, staged, active, and path; refs is guarded by
// FS.mu (it belongs to the open-file table).
type ofile struct {
	ino uint64
	kf  *ext4dax.File

	mu     sync.RWMutex // +lockrank:ofile
	path   string
	size   int64 // U-Split's view, including staged appends
	ksize  int64 // K-Split's view (what has been relinked)
	staged []stagedRange
	active *stagingChunk // current append region
	// logSeq is the highest strict-mode op-log sequence logged for this
	// file (guarded by mu, written under mu+wmu). A relink advances the
	// inode's recovery watermark to exactly this value, which covers
	// every entry the relink absorbs without the relink needing wmu —
	// that independence is what lets background pipeline workers relink
	// without serializing against strict-mode writers.
	logSeq uint64

	// mapEpoch counts overlay remap events: a staged write shadowing
	// already-visible bytes, a truncate, and a relink that pops staged
	// ranges (their staging blocks are swapped away and recycled). It is
	// bumped under of.mu before the stale bytes can be reused and read
	// lock-free by lease holders validating seqlock-style; together with
	// the kernel inode's own epoch it forms the file's mapping epoch
	// (see File.MapEpoch).
	mapEpoch atomic.Uint64

	refs     int  // open handles; guarded by FS.mu
	kfClosed bool // kernel handle retired (unique last closer); FS.mu
}

// stagedRange maps a file range onto a staging file — or onto a DRAM
// buffer in the StageInDRAM ablation.
type stagedRange struct {
	fileOff int64
	length  int64
	sf      *stagingFile
	sfOff   int64
	dram    []byte // non-nil in the StageInDRAM configuration
}

// New creates a U-Split instance over a mounted K-Split, pre-allocating
// its staging files and (in strict mode) its operation log.
func New(kfs *ext4dax.FS, cfg Config) (*FS, error) {
	cfg.fill()
	fs := &FS{
		kfs:   kfs,
		dev:   kfs.Device(),
		clk:   kfs.Device().Clock(),
		cfg:   cfg,
		mode:  cfg.Mode,
		files: make(map[uint64]*ofile),
		attrs: make(map[string]vfs.FileInfo),
	}
	fs.mmaps = newMmapCache(fs)
	var err error
	fs.staging, err = newStagingPool(fs)
	if err != nil {
		return nil, fmt.Errorf("splitfs: staging pool: %w", err)
	}
	if fs.mode == Strict {
		fs.olog, err = newOpLog(fs)
		if err != nil {
			return nil, fmt.Errorf("splitfs: operation log: %w", err)
		}
	}
	// Make the staging files and operation log durable before any data is
	// staged into them: recovery depends on their extents being owned.
	if err := kfs.CommitMeta(); err != nil {
		return nil, err
	}
	fs.pipeline = newRelinkPipeline(fs, cfg.RelinkWorkers)
	return fs, nil
}

// Close drains the relink pipeline and stops its background workers.
// Instances with RelinkWorkers == 0 have no goroutines to stop, but
// closing is still the polite shutdown (it flushes queued relinks).
func (fs *FS) Close() error {
	err := fs.SyncAll()
	fs.pipeline.stop()
	return err
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return "splitfs-" + fs.mode.String() }

// Mode returns the instance's consistency mode.
func (fs *FS) Mode() Mode { return fs.mode }

// KFS exposes the kernel file system (for tests and tooling).
func (fs *FS) KFS() *ext4dax.FS { return fs.kfs }

// Stats snapshots the U-Split counters.
func (fs *FS) Stats() Stats {
	return Stats{
		UserReads:    fs.stats.userReads.Load(),
		UserWrites:   fs.stats.userWrites.Load(),
		Appends:      fs.stats.appends.Load(),
		StagedBytes:  fs.stats.stagedBytes.Load(),
		Relinks:      fs.stats.relinks.Load(),
		RelinkBlocks: fs.stats.relinkBlocks.Load(),
		CopiedBytes:  fs.stats.copiedBytes.Load(),
		LogEntries:   fs.stats.logEntries.Load(),
		Checkpoints:  fs.stats.checkpoints.Load(),
		MmapHits:     fs.stats.mmapHits.Load(),
		MmapMisses:   fs.stats.mmapMisses.Load(),
	}
}

// MemoryUsage estimates U-Split's DRAM footprint in bytes (§5.10).
func (fs *FS) MemoryUsage() int64 {
	fs.mu.RLock()
	var b int64
	for _, of := range fs.files {
		of.mu.RLock()
		b += 200 + int64(len(of.path)) + int64(len(of.staged))*48
		of.mu.RUnlock()
	}
	fs.mu.RUnlock()
	fs.amu.Lock()
	b += int64(len(fs.attrs)) * 96
	fs.amu.Unlock()
	b += fs.mmaps.memoryUsage()
	b += fs.staging.memoryUsage()
	if fs.olog != nil {
		b += 64 // DRAM tail + bookkeeping
	}
	return b
}

func (fs *FS) bookkeep() {
	fs.clk.Charge(sim.CatCPU, sim.USplitBookkeepNs)
}

// lockStrict takes the strict-mode writer lock; in POSIX and sync modes
// mutating operations on different files run fully in parallel and this
// is a no-op. Returns the unlock function.
func (fs *FS) lockStrict() func() {
	if fs.mode != Strict {
		return func() {}
	}
	fs.wmu.Lock()
	return fs.wmu.Unlock
}

// syncMeta makes a metadata mutation durable in sync and strict modes
// (Table 3: synchronous metadata operations). Committing an empty journal
// transaction is free, so calling this after every metadata op only costs
// when something actually changed.
func (fs *FS) syncMeta() error {
	if fs.mode == POSIX {
		return nil
	}
	return fs.kfs.CommitMeta()
}

// lookupStaged returns the staged ranges overlapping [off, off+n),
// oldest first. Caller holds of.mu.
// overlapsAny reports whether any staged range intersects [off, off+n)
// without allocating. Caller holds of.mu.
func (of *ofile) overlapsAny(off, n int64) bool {
	end := off + n
	for _, s := range of.staged {
		if s.fileOff < end && off < s.fileOff+s.length {
			return true
		}
	}
	return false
}

func (of *ofile) overlaps(off, n int64) []stagedRange {
	var out []stagedRange
	end := off + n
	for _, s := range of.staged {
		if s.fileOff < end && off < s.fileOff+s.length {
			out = append(out, s)
		}
	}
	return out
}

// addStaged records a staged write, merging with the previous range when
// both file offsets and staging bytes are contiguous (consecutive appends
// into one relink run). Returns true when a new overlay entry was
// appended (the caller then takes a staging-file reference for it) and
// false when the write merged into the previous entry. Caller holds
// of.mu.
func (of *ofile) addStaged(r stagedRange) bool {
	if n := len(of.staged); n > 0 {
		last := &of.staged[n-1]
		if last.fileOff+last.length == r.fileOff &&
			last.sf == r.sf && last.sfOff+last.length == r.sfOff {
			last.length += r.length
			return false
		}
	}
	of.staged = append(of.staged, r)
	return true
}
