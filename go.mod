module splitfs

go 1.24
