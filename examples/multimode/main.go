// multimode: two U-Split instances with different consistency modes
// sharing one kernel file system, as the paper's concurrent-application
// deployment allows (§3.2: "Concurrent applications can use different
// modes at the same time").
package main

import (
	"fmt"
	"log"

	root "splitfs"
	isplitfs "splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func main() {
	stack, err := root.NewStack(root.StackConfig{Mode: root.POSIX})
	if err != nil {
		log.Fatal(err)
	}
	posixApp := stack.FS

	// A second application process attaches in strict mode over the same
	// K-Split.
	strictApp, err := isplitfs.New(stack.KFS, isplitfs.Config{Mode: isplitfs.Strict})
	if err != nil {
		log.Fatal(err)
	}

	// Each app writes with its own guarantees...
	if err := vfs.WriteFile(posixApp, "/editor.tmp", []byte("draft")); err != nil {
		log.Fatal(err)
	}
	f, err := vfs.Create(strictApp, "/database.log")
	if err != nil {
		log.Fatal(err)
	}
	f.Write([]byte("BEGIN; UPDATE accounts; COMMIT;"))
	f.Close()

	// ...and each sees the other's files through the shared kernel FS.
	got, err := vfs.ReadFile(strictApp, "/editor.tmp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict app reads posix app's file: %q\n", got)
	got, err = vfs.ReadFile(posixApp, "/database.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("posix app reads strict app's file: %q\n", got)

	fmt.Printf("\nmodes coexist: %s and %s on one device; strict logged %d entries, posix logged %d\n",
		posixApp.Name(), strictApp.Name(),
		strictApp.Stats().LogEntries, posixApp.Stats().LogEntries)
}
