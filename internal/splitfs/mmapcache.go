package splitfs

import (
	"splitfs/internal/ext4dax"
)

// mmapCache is the collection of memory-mappings (§3.3): every mapping
// U-Split creates is cached and reused until the file is unlinked, which
// keeps page faults and mmap syscalls off the data path and preserves
// huge pages once established (§4).
type mmapCache struct {
	fs *FS
	// regions[ino][regionIndex] — one entry per MmapBytes-sized window.
	regions map[uint64]map[int64]*ext4dax.Mapping
}

func newMmapCache(fs *FS) *mmapCache {
	return &mmapCache{fs: fs, regions: make(map[uint64]map[int64]*ext4dax.Mapping)}
}

// get returns a mapping covering fileOff of the file, creating and
// caching the surrounding MmapBytes region on miss. Returns nil when the
// region cannot be mapped (e.g. a hole). Caller holds fs.mu.
func (c *mmapCache) get(of *ofile, fileOff int64) *ext4dax.Mapping {
	rsize := c.fs.cfg.MmapBytes
	idx := fileOff / rsize
	byIno := c.regions[of.ino]
	if m, ok := byIno[idx]; ok {
		c.fs.stats.MmapHits++
		// The cached region may predate growth of the file; if the
		// offset is beyond it, remap the region to its current extent.
		if fileOff < m.FileOff+m.Length {
			return m
		}
	}
	c.fs.stats.MmapMisses++
	m, err := c.fs.kfs.Mmap(of.kf, idx*rsize, rsize, ext4dax.MmapOptions{
		Populate: true,
		Huge:     !c.fs.cfg.DisableHugePages,
	})
	if err != nil {
		return nil
	}
	if byIno == nil {
		byIno = make(map[int64]*ext4dax.Mapping)
		c.regions[of.ino] = byIno
	}
	byIno[idx] = m
	return m
}

// refresh quietly rebuilds cached mappings covering [fileOff,
// fileOff+length) after a relink: the modified ioctl keeps page tables
// valid across the extent swap, so refreshed mappings carry no syscall
// or fault cost. Appended regions whose staged bytes were written
// through a staging-file mapping also stay mapped for free — §3.3,
// Figure 2: the relinked block "retains its mmap() region". Regions
// never mapped by either path still fault on first touch. Caller holds
// fs.mu.
func (c *mmapCache) refresh(of *ofile, fileOff, length int64, staged bool) {
	rsize := c.fs.cfg.MmapBytes
	byIno := c.regions[of.ino]
	if byIno == nil {
		if !staged {
			return
		}
		byIno = make(map[int64]*ext4dax.Mapping)
		c.regions[of.ino] = byIno
	}
	for idx := fileOff / rsize; idx <= (fileOff+length-1)/rsize; idx++ {
		if _, ok := byIno[idx]; !ok && !staged {
			continue // never mapped: first access pays its faults
		}
		m, err := c.fs.kfs.MmapQuiet(of.kf, idx*rsize, rsize, !c.fs.cfg.DisableHugePages)
		if err != nil {
			delete(byIno, idx)
			continue
		}
		byIno[idx] = m
	}
}

// drop unmaps and forgets every mapping of an inode (unlink path, §3.5:
// "A memory-mapping is only discarded on unlink()"). Returns how many
// mappings were torn down. Caller holds fs.mu.
func (c *mmapCache) drop(ino uint64) int {
	byIno := c.regions[ino]
	for _, m := range byIno {
		m.Unmap()
	}
	delete(c.regions, ino)
	return len(byIno)
}

// count returns the number of cached mappings for an inode.
func (c *mmapCache) count(ino uint64) int { return len(c.regions[ino]) }

func (c *mmapCache) memoryUsage() int64 {
	var n int64
	for _, byIno := range c.regions {
		n += int64(len(byIno))
	}
	return n * 160
}
