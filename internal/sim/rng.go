package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Workload generators use it so that every experiment is
// reproducible from its seed. It is not safe for concurrent use; give each
// goroutine its own instance.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipfian generates integers in [0, n) following a zipfian distribution
// with the YCSB-standard skew constant. It implements the Gray et al.
// "Quickly generating billion-record synthetic databases" algorithm used by
// the YCSB ZipfianGenerator, so key popularity matches the paper's YCSB
// runs.
type Zipfian struct {
	rng   *RNG
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian generator over [0, n).
func NewZipfian(rng *RNG, n int64) *Zipfian {
	z := &Zipfian{rng: rng, n: n, theta: ZipfianConstant}
	z.alpha = 1.0 / (1.0 - z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.zeta2 = zetaStatic(2, z.theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipfian-distributed value.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledNext returns a zipfian value scattered across the keyspace with
// an FNV hash, matching YCSB's ScrambledZipfianGenerator: popular keys are
// spread uniformly over [0, n) rather than clustered at 0.
func (z *Zipfian) ScrambledNext() int64 {
	v := z.Next()
	return int64(fnv64(uint64(v)) % uint64(z.n))
}

func fnv64(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// Latest generates YCSB workload-D style "latest" keys: zipfian distance
// from the most recently inserted record.
type Latest struct {
	z *Zipfian
	// Max is the current number of records; callers bump it as they insert.
	Max int64
}

// NewLatest returns a latest-distribution generator over an initially
// n-record keyspace.
func NewLatest(rng *RNG, n int64) *Latest {
	return &Latest{z: NewZipfian(rng, n), Max: n}
}

// Next returns the next key, biased toward recently inserted records.
func (l *Latest) Next() int64 {
	k := l.Max - 1 - l.z.Next()
	if k < 0 {
		k = 0
	}
	return k
}
