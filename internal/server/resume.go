package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// resumeMaxAttempts bounds reconnect attempts per failed operation; the
// redial callback is expected to block until the service is reachable,
// so exhaustion means the service is persistently refusing us.
const resumeMaxAttempts = 8

// DialResumable attaches a crash-tolerant session: the returned Client
// transparently survives transport loss and full server restarts.
// redial is called for every (re)connection — it should block until the
// service is reachable again and may be called several times per
// outage. Requests are strictly serialized (one outstanding at a time),
// which is what makes the client's replay log a faithful record of the
// server's execution order.
//
// The resume guarantee: after any interleaving of disconnects, server
// restarts, and resumes, an acknowledged SyncAll means every previously
// acknowledged operation is durable; operations after the last
// acknowledged SyncAll are re-applied exactly once on reconnect — the
// server's per-session reply cache dedupes re-sent requests that
// already executed, and the replay heal rules absorb namespace
// operations that recovery preserved. Two disciplines are required of
// the workload (the crash campaigns follow both): path names are never
// reused once unlinked or renamed away (reopen chains identify files by
// name), and writes are positional — handle-offset appends degrade to
// at-least-once across a server restart because the server-side offset
// cannot be reconstructed exactly.
// Deprecated: use DialResumableConfig, which also negotiates features.
func DialResumable(redial func() (io.ReadWriteCloser, error), root string) (*Client, error) {
	return DialResumableConfig(redial, ClientConfig{Root: root})
}

// DialResumableConfig attaches a crash-tolerant session with cfg (see
// DialResumable for the resume guarantee). Leases on a resumable
// session are read-only: a leased write would bypass the replay log,
// so writes always take the logged wire path. The feature set is the
// one agreed at the first attach; if a restarted server stops offering
// leases, grants fail and handles degrade to the copy path.
func DialResumableConfig(redial func() (io.ReadWriteCloser, error), cfg ClientConfig) (*Client, error) {
	cfg.fill()
	var req uint32
	if cfg.EnableLeases {
		req = featLeases
	}
	t := &resumeState{redial: redial, root: cfg.Root, req: req, handles: make(map[uint64]*handleMeta)}
	t.mu.Lock()
	err := t.resume()
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c := &Client{t: t, fsName: t.fsName, features: t.feats & req, chunk: cfg.ChunkBytes}
	t.onPush = c.handleRevoke
	return c, nil
}

// resumeState is the resumable transport: a synchronous frame exchange
// plus the replay log and per-handle metadata that let it rebuild the
// session on another connection — or another server generation.
type resumeState struct {
	redial func() (io.ReadWriteCloser, error)
	root   string
	req    uint32 // feature set offered at attach
	feats  uint32 // feature set agreed at the first attach

	// onPush handles server-initiated Trevoke frames surfacing in the
	// synchronous read loop. Called with t.mu held.
	onPush func(payload []byte)

	mu          sync.Mutex // serializes calls: one outstanding request
	rwc         io.ReadWriteCloser
	br          *bufio.Reader
	token       uint64
	fsName      string
	nextSeq     uint32
	records     []*opRecord // mutating ops since the last durable barrier
	handles     map[uint64]*handleMeta
	coldPending bool // a cold rebuild started and has not completed
	closed      bool
}

// opRecord is one logged mutating request: the raw payload it went out
// with (replayed verbatim under its original sequence number) and the
// reply once acknowledged.
type opRecord struct {
	seq     uint32
	typ     uint8
	payload []byte
	acked   bool
	rtyp    uint8
	reply   []byte
	openID  uint64 // Topen only: the handle the reply assigned
}

// handleMeta tracks what a cold resume needs to re-establish a handle
// at its original wire ID: open mode, the chain of names the file may
// durably sit at (its name at the last barrier plus every rename
// destination sent since — an over-approximation the server probes
// newest-first), and the offset at the last barrier (replayed
// operations re-advance it from there).
type handleMeta struct {
	id         uint64
	flag       int
	perm       uint32
	curPath    string
	chain      []string
	curOff     int64 // best-effort tracked handle offset
	baseOff    int64 // offset at the last barrier
	reopenSeq  uint32
	preBarrier bool // opened before the last barrier (no Topen in the log)
	closed     bool
}

// pureOp reports requests with no server-side effect beyond their
// reply; they are never logged, just retried fresh after a resume.
// (Tread and Tseek move the handle offset, so they are not pure.)
func pureOp(typ uint8) bool {
	switch typ {
	case tStat, tFstat, tReadDir, tPread, tLease, tRevokeAck:
		// tLease grants nothing a replay must rebuild: leases die with
		// their session, and the client re-grants on demand. Logging it
		// would re-grant stale mappings during replay.
		return true
	}
	return false
}

func (t *resumeState) seq() uint32 {
	t.nextSeq++
	return t.nextSeq
}

func (t *resumeState) call(typ uint8, payload []byte) (uint8, []byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, nil, &RemoteError{Code: codeClosed, Msg: "server: session detached"}
	}
	if typ == tDetach {
		// Best effort: if the transport is gone the parked session lives
		// until the server closes; resuming just to say goodbye would
		// re-apply the whole tail for nothing.
		t.closed = true
		return t.roundTrip(typ, t.seq(), payload)
	}
	if pureOp(typ) {
		for attempt := 0; ; attempt++ {
			rtyp, rp, err := t.roundTrip(typ, t.seq(), payload)
			if err == nil {
				return rtyp, rp, nil
			}
			if attempt >= resumeMaxAttempts {
				return 0, nil, err
			}
			if rerr := t.resume(); rerr != nil {
				return 0, nil, rerr
			}
		}
	}
	// Mutating operation: log first, then drive it to an acknowledged
	// reply, resuming the session as often as the transport fails.
	rec := &opRecord{seq: t.seq(), typ: typ, payload: payload}
	t.chainRenames(typ, payload)
	t.records = append(t.records, rec)
	for attempt := 0; ; attempt++ {
		rtyp, rp, err := t.roundTrip(rec.typ, rec.seq, rec.payload)
		if err == nil {
			t.ack(rec, rtyp, rp)
			return rtyp, rp, nil
		}
		if attempt >= resumeMaxAttempts {
			return 0, nil, err
		}
		if rerr := t.resume(); rerr != nil {
			return 0, nil, rerr
		}
		if rec.acked {
			// resume's replay already carried it to a reply.
			return rec.rtyp, rec.reply, nil
		}
	}
}

func (t *resumeState) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.rwc == nil {
		return nil
	}
	err := t.rwc.Close()
	t.rwc, t.br = nil, nil
	return err
}

// roundTrip performs one synchronous request/reply exchange. Replies
// whose ID does not match are dropped — duplicated or stale frames from
// a faulty transport — so a misbehaving wire surfaces as a documented
// error or a clean retry, never as a misattributed reply.
func (t *resumeState) roundTrip(typ uint8, seq uint32, payload []byte) (uint8, []byte, error) {
	if t.rwc == nil {
		return 0, nil, fmt.Errorf("%w: no transport", errConnLost)
	}
	if err := writeFrame(t.rwc, typ, seq, payload); err != nil {
		t.dropConn()
		return 0, nil, fmt.Errorf("%w: %w", errConnLost, err)
	}
	for {
		rtyp, rid, rp, err := readFrame(t.br)
		if err != nil {
			t.dropConn()
			return 0, nil, fmt.Errorf("%w: %w", errConnLost, err)
		}
		if rtyp == tRevoke {
			// Server-initiated push surfacing mid-exchange; the shared
			// revoked flag already invalidated the segment.
			if t.onPush != nil {
				t.onPush(rp)
			}
			continue
		}
		if rid != seq {
			continue
		}
		return rtyp, rp, nil
	}
}

func (t *resumeState) dropConn() {
	if t.rwc != nil {
		t.rwc.Close()
		t.rwc, t.br = nil, nil
	}
}

// chainRenames extends handle reopen chains when a rename is SENT, not
// when it is acknowledged: after a crash the rename may or may not have
// applied durably, so the chain over-approximates the names the file
// can sit at and the server probes newest-first. Because resumable
// workloads never reuse names, a chain entry for a rename that never
// applied cannot resolve to some other file.
func (t *resumeState) chainRenames(typ uint8, payload []byte) {
	if typ != tRename {
		return
	}
	d := dec{b: payload}
	oldPath := d.str()
	newPath := d.str()
	if d.err != nil {
		return
	}
	for _, m := range t.handles {
		if m.closed {
			continue
		}
		if m.curPath == oldPath {
			m.chain = append(m.chain, newPath)
		} else if strings.HasPrefix(m.curPath, oldPath+"/") {
			m.chain = append(m.chain, newPath+m.curPath[len(oldPath):])
		}
	}
}

// ack records a reply and folds its effect into the handle metadata.
func (t *resumeState) ack(rec *opRecord, rtyp uint8, rp []byte) {
	rec.acked, rec.rtyp, rec.reply = true, rtyp, rp
	if rtyp == rError {
		return
	}
	d := dec{b: rec.payload}
	switch rec.typ {
	case tOpen:
		flag := int(d.u32())
		perm := d.u32()
		path := d.str()
		rd := dec{b: rp}
		id := rd.u64()
		if d.err != nil || rd.err != nil {
			return
		}
		rec.openID = id
		t.handles[id] = &handleMeta{id: id, flag: flag, perm: perm, curPath: path, chain: []string{path}}
	case tClose:
		if m := t.handles[d.u64()]; m != nil && d.err == nil {
			m.closed = true
		}
	case tSeek:
		id := d.u64()
		rd := dec{b: rp}
		pos := rd.i64()
		if m := t.handles[id]; m != nil && d.err == nil && rd.err == nil {
			m.curOff = pos
		}
	case tRead:
		id := d.u64()
		rd := dec{b: rp}
		data := rd.bytes()
		if m := t.handles[id]; m != nil && d.err == nil && rd.err == nil {
			m.curOff += int64(len(data))
		}
	case tWrite:
		id := d.u64()
		rd := dec{b: rp}
		n := rd.u32()
		if m := t.handles[id]; m != nil && d.err == nil && rd.err == nil {
			m.curOff += int64(n)
		}
	case tRename:
		oldPath := d.str()
		newPath := d.str()
		if d.err != nil {
			return
		}
		for _, m := range t.handles {
			if m.closed {
				continue
			}
			if m.curPath == oldPath {
				m.curPath = newPath
			} else if strings.HasPrefix(m.curPath, oldPath+"/") {
				m.curPath = newPath + m.curPath[len(oldPath):]
			}
		}
	case tSyncAll:
		t.barrier()
	}
}

// barrier runs when a SyncAll acknowledges successfully: everything
// acknowledged before it is durable in every mode, so the replay log
// empties and each surviving handle's reopen chain collapses to its
// current name at its current offset.
func (t *resumeState) barrier() {
	t.records = nil
	for id, m := range t.handles {
		if m.closed {
			delete(t.handles, id)
			continue
		}
		m.preBarrier = true
		m.chain = []string{m.curPath}
		m.baseOff = m.curOff
	}
}

// resume re-establishes the session after transport loss. Warm path:
// re-attach by token — the parked session kept every handle and its
// exactly-once reply cache, so only the unacknowledged tail is re-sent.
// Cold path (server restarted, the parked session died with it): attach
// a fresh resumable session, re-establish pre-barrier handles with
// Treopen, then replay the full log since the barrier in order —
// acknowledged operations rebuild session state and any data recovery
// rolled back, the reply cache and heal rules keep each of them
// single-application, and the unacknowledged tail completes normally.
func (t *resumeState) resume() error {
	var lastErr error
	for attempt := 0; attempt < resumeMaxAttempts; attempt++ {
		rwc, err := t.redial()
		if err != nil {
			return fmt.Errorf("%w: redial: %w", errConnLost, err)
		}
		br := bufio.NewReaderSize(rwc, 64<<10)
		if t.token != 0 {
			herr := t.handshake(rwc, br, true)
			switch {
			case herr == nil:
				// A cold rebuild interrupted mid-replay must run to
				// completion even though the session re-adopted warm: the
				// reply cache dedupes whatever already re-executed.
				if rerr := t.replay(t.coldPending); rerr != nil {
					lastErr = rerr
					continue
				}
				t.coldPending = false
				return nil
			case errors.Is(herr, errUnknownSession):
				// Token names no parked session: the server restarted or
				// tore the session down. Fall through to a cold attach on a
				// fresh connection (the refused one is closed).
				t.token = 0
				rwc, err = t.redial()
				if err != nil {
					return fmt.Errorf("%w: redial: %w", errConnLost, err)
				}
				br = bufio.NewReaderSize(rwc, 64<<10)
			default:
				lastErr = herr
				continue
			}
		}
		if herr := t.handshake(rwc, br, false); herr != nil {
			if errors.Is(herr, errConnLost) {
				lastErr = herr
				continue
			}
			return herr // the server refused the attach outright
		}
		t.coldPending = true
		if rerr := t.replay(true); rerr != nil {
			lastErr = rerr
			continue
		}
		t.coldPending = false
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: resume attempts exhausted", errConnLost)
	}
	return lastErr
}

// handshake performs the first-frame exchange on a fresh connection:
// Treattach by token (warm) or a resumable Tattach (cold, which also
// rotates the token to the new session's). On success the connection
// becomes the transport; on failure it is closed.
func (t *resumeState) handshake(rwc io.ReadWriteCloser, br *bufio.Reader, warm bool) error {
	var e enc
	typ := tAttach
	want := rAttach
	if warm {
		typ, want = tReattach, rReattach
		e.u64(t.token)
	} else {
		e.str(t.root)
		e.u8(1) // resumable
		e.u32(t.req)
	}
	if e.err != nil {
		rwc.Close()
		return e.err
	}
	if err := writeFrame(rwc, typ, 0, e.b); err != nil {
		rwc.Close()
		return fmt.Errorf("%w: %s: %w", errConnLost, msgName(typ), err)
	}
	rtyp, _, rp, err := readFrame(br)
	if err != nil {
		rwc.Close()
		return fmt.Errorf("%w: %s reply: %w", errConnLost, msgName(typ), err)
	}
	if rtyp == rError {
		rwc.Close()
		return decodeError(rp)
	}
	if rtyp != want {
		rwc.Close()
		return fmt.Errorf("%w: %s reply to %s", errUnexpectedReply, msgName(rtyp), msgName(typ))
	}
	d := dec{b: rp}
	name := d.str()
	if !warm {
		d.u64() // session id (diagnostic)
		t.token = d.u64()
	}
	if d.err == nil && len(d.b) >= 4 {
		// Trailing agreed-feature word; an old server sends none, which
		// reads as zero — clean downgrade. Only the first attach's set
		// governs the Client (later resumes never widen it).
		if t.feats == 0 {
			t.feats = d.u32()
		}
	}
	if d.err != nil {
		rwc.Close()
		return d.err
	}
	t.fsName = name
	t.dropConn()
	t.rwc, t.br = rwc, br
	return nil
}

// replay rebuilds session state on the current connection. Warm resumes
// re-send only the unacknowledged tail; cold resumes first re-establish
// every pre-barrier handle at its original wire ID, then walk the whole
// log — converting acknowledged Topens to Treopens inline, at their
// original position, so namespace operations that precede an open
// replay before it.
func (t *resumeState) replay(cold bool) error {
	if cold {
		metas := make([]*handleMeta, 0, len(t.handles))
		for _, m := range t.handles {
			if m.preBarrier {
				metas = append(metas, m)
			}
		}
		sort.Slice(metas, func(i, j int) bool { return metas[i].id < metas[j].id })
		for _, m := range metas {
			if m.reopenSeq == 0 {
				m.reopenSeq = t.seq()
			}
			if err := t.sendReopen(m.reopenSeq, m, m.baseOff); err != nil {
				return err
			}
		}
	}
	recs := t.records
	for _, rec := range recs {
		if !cold && rec.acked {
			continue
		}
		if rec.typ == tOpen && rec.acked {
			if rec.openID == 0 {
				continue // the original open failed; nothing to rebuild
			}
			m := t.handles[rec.openID]
			if m == nil {
				continue
			}
			if err := t.sendReopen(rec.seq, m, 0); err != nil {
				return err
			}
			continue
		}
		rtyp, rp, err := t.roundTrip(rec.typ|flagReplay, rec.seq, rec.payload)
		if err != nil {
			return err
		}
		if !rec.acked {
			t.ack(rec, rtyp, rp)
		}
	}
	return nil
}

func (t *resumeState) sendReopen(seq uint32, m *handleMeta, off int64) error {
	var e enc
	e.u64(m.id)
	e.u32(uint32(m.flag))
	e.u32(m.perm)
	e.i64(off)
	e.u16(uint16(len(m.chain)))
	for _, p := range m.chain {
		e.str(p)
	}
	if e.err != nil {
		return e.err
	}
	rtyp, rp, err := t.roundTrip(tReopen|flagReplay, seq, e.b)
	if err != nil {
		return err
	}
	if rtyp == rError {
		return fmt.Errorf("server: reopen handle %d: %w", m.id, decodeError(rp))
	}
	return nil
}
