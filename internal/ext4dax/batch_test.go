package ext4dax

import (
	"testing"
	"time"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// The batch handle is what keeps a relink batch atomic against other
// journal users: while one is open, neither the size-threshold commit
// nor a concurrent CommitMeta may commit the running transaction.

func newBatchFS(t *testing.T) *FS {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock()})
	fs, err := Mkfs(dev, Config{MaxInodes: 256, TxCommitThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestBatchBlocksThresholdCommit(t *testing.T) {
	fs := newBatchFS(t)
	f, err := fs.OpenFile("/f", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	base := fs.Stats().Commits
	fs.BeginBatch()
	// Far more journaled ranges than TxCommitThreshold=4: without the
	// handle, maybeCommit would fire repeatedly.
	blk := make([]byte, sim.BlockSize)
	for i := 0; i < 32; i++ {
		if _, err := f.(*File).WriteAt(blk, int64(i)*sim.BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Stats().Commits; got != base {
		t.Fatalf("threshold commit fired inside an open batch: %d commits", got-base)
	}
	fs.EndBatch()
	if err := fs.CommitMeta(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().Commits; got != base+1 {
		t.Fatalf("commit after EndBatch: %d commits, want 1", got-base)
	}
}

func TestLinkedTracksUnlink(t *testing.T) {
	fs := newBatchFS(t)
	f, err := fs.OpenFile("/f", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	kf := f.(*File)
	if !kf.Linked() {
		t.Fatal("fresh file reported unlinked")
	}
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if kf.Linked() {
		t.Fatal("handle still reported linked after unlink")
	}
	// Recycle the ino: the new file's handle is linked, the ghost is not.
	g, err := fs.OpenFile("/g", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if g.(*File).Ino() == kf.Ino() && kf.Linked() {
		t.Fatal("ghost handle claims the recycled inode")
	}
	if !g.(*File).Linked() {
		t.Fatal("new file reported unlinked")
	}
}

func TestCommitMetaWaitsForBatch(t *testing.T) {
	fs := newBatchFS(t)
	fs.BeginBatch()
	done := make(chan struct{})
	go func() {
		if err := fs.CommitMeta(); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("CommitMeta returned while a batch handle was open")
	case <-time.After(20 * time.Millisecond):
	}
	fs.EndBatch()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("CommitMeta never woke after EndBatch")
	}
}
