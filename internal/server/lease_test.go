package server_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"splitfs/internal/server"
	"splitfs/internal/vfs"
)

// leasePipeClient attaches a stream session with leases negotiated.
func leasePipeClient(t *testing.T, srv *server.Server, root string) (*server.Client, net.Conn) {
	t.Helper()
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	c, err := server.DialConfig(cs, server.ClientConfig{Root: root, EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, cs
}

// pattern is the reader-side oracle: the byte at every offset of the
// leased file is a pure function of the offset, and every value stays
// below 0x80 — the churn files write only 0x80+ bytes, so a leased read
// that returns a high byte has observed recycled staging storage.
func pattern(off int64) byte { return byte(off%96) + 1 }

func fillPattern(p []byte, off int64) {
	for i := range p {
		p[i] = pattern(off + int64(i))
	}
}

// TestLeasedDataPlane pins the zero-copy contract on the loopback
// transport: reads and writes of a mappable backend route through the
// leased mapping (zero data bytes on the wire codec), and the bytes are
// identical to what a direct caller sees.
func TestLeasedDataPlane(t *testing.T) {
	for _, kind := range []string{"ext4-dax", "splitfs-strict"} {
		t.Run(kind, func(t *testing.T) {
			fs := newBackend(t, kind)
			srv := server.New(fs, server.Config{})
			defer srv.Close()
			c, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/", EnableLeases: true})
			if err != nil {
				t.Fatal(err)
			}

			f, err := c.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 9000)
			fillPattern(data, 0)
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			n, err := f.ReadAt(got, 0)
			if err != nil || n != len(data) {
				t.Fatalf("leased ReadAt = %d, %v", n, err)
			}
			for i := range got {
				if got[i] != data[i] {
					t.Fatalf("leased read diverged at %d: %#x want %#x", i, got[i], data[i])
				}
			}
			// Direct view must agree byte for byte.
			direct, err := vfs.ReadFile(fs, "/a")
			if err != nil {
				t.Fatal(err)
			}
			if string(direct) != string(data) {
				t.Fatal("backend content diverged from leased writes")
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			st := c.Stats()
			if st.LeaseGrants == 0 {
				t.Fatal("no lease granted on a mappable backend")
			}
			if st.LeasedReadBytes != int64(len(data)) {
				t.Errorf("LeasedReadBytes = %d, want %d", st.LeasedReadBytes, len(data))
			}
			if st.LeasedWriteBytes != int64(len(data)) {
				t.Errorf("LeasedWriteBytes = %d, want %d", st.LeasedWriteBytes, len(data))
			}
			if st.WireReadBytes != 0 || st.WireWriteBytes != 0 {
				t.Errorf("data bytes leaked onto the wire: read=%d write=%d",
					st.WireReadBytes, st.WireWriteBytes)
			}
			if srv.ActiveLeases() != 0 {
				t.Errorf("ActiveLeases = %d after Close(handle)", srv.ActiveLeases())
			}
		})
	}
}

// TestLeaseUnsupportedBackend: a backend without vfs.Mappable serves a
// lease-negotiated session correctly — every grant fails, the handle
// pins to the copy path, and the data still round-trips.
func TestLeaseUnsupportedBackend(t *testing.T) {
	fs := newBackend(t, "nova-strict")
	srv := server.New(fs, server.Config{})
	defer srv.Close()
	c, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("plain"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "plain" {
		t.Fatalf("read %q", buf)
	}
	st := c.Stats()
	if st.LeaseGrants != 0 || st.LeasedReadBytes != 0 {
		t.Errorf("leases on a non-mappable backend: %+v", st)
	}
	if st.WireReadBytes == 0 || st.WireWriteBytes == 0 {
		t.Errorf("copy path unused: %+v", st)
	}
}

// TestLeaseNegotiationDowngrade covers the server-side knob: a client
// asking for leases against a server configured without them agrees on
// the empty set and serves everything over the wire.
func TestLeaseNegotiationDowngrade(t *testing.T) {
	fs := newBackend(t, "splitfs-strict")
	srv := server.New(fs, server.Config{DisableLeases: true})
	defer srv.Close()
	c, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("downgraded"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "downgraded" {
		t.Fatalf("read %q", buf)
	}
	st := c.Stats()
	if st.LeaseGrants != 0 {
		t.Errorf("grants on a lease-disabled server: %+v", st)
	}
	if st.WireReadBytes == 0 {
		t.Error("reads did not take the wire on the downgraded session")
	}
	if gs := srv.Stats(); gs.LeaseGrants != 0 {
		t.Errorf("server counted grants: %+v", gs)
	}
}

// TestLeaseRevocationRaces races leased reads against every revocation
// trigger — rename, truncate, conflicting writable open, unlink — plus
// background relink (fsync) recycling staging storage, over the stream
// transport. The oracle: the leased file holds only low-alphabet bytes,
// the churn traffic writes only 0x80+ bytes, so any high byte returned
// by a successful leased read is recycled staging observed through a
// stale mapping. Run with -race for the locking half of the claim.
func TestLeaseRevocationRaces(t *testing.T) {
	fs := newBackend(t, "splitfs-strict")
	srv := server.New(fs, server.Config{Workers: 4})
	defer srv.Close()

	reader, rconn := leasePipeClient(t, srv, "/")
	defer rconn.Close()
	churn, cconn := leasePipeClient(t, srv, "/")
	defer cconn.Close()

	const fileSize = 8192
	wf, err := churn.OpenFile("/hot", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, fileSize)
	fillPattern(seed, 0)
	if _, err := wf.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}
	if err := wf.Sync(); err != nil {
		t.Fatal(err)
	}

	rf, err := reader.OpenFile("/hot", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)

	// Leased-read loop: full-file positional reads; every byte that
	// comes back must match the offset pattern (truncation shrinks the
	// file, so short reads and read errors are fine — torn content is
	// not).
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, fileSize)
		for !stop.Load() {
			n, err := rf.ReadAt(buf, 0)
			if err != nil {
				continue // racing truncate/rename: size moved, not a breach
			}
			for i := 0; i < n; i++ {
				if buf[i] != pattern(int64(i)) {
					errc <- fmt.Errorf("leased read returned stale byte %#x at offset %d", buf[i], i)
					return
				}
			}
		}
	}()

	// Churn loop 1: staging pressure in a high alphabet plus fsync
	// (relink pops staged extents and recycles staging blocks under the
	// reader's feet — the epoch recheck must catch any overlap).
	wg.Add(1)
	go func() {
		defer wg.Done()
		junk := make([]byte, 4096)
		for i := range junk {
			junk[i] = 0x80 | byte(i)
		}
		jf, err := churn.OpenFile("/junk", vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			errc <- err
			return
		}
		defer jf.Close()
		for i := 0; !stop.Load(); i++ {
			if _, err := jf.WriteAt(junk, int64(i%4)*4096); err != nil {
				errc <- err
				return
			}
			if err := jf.Sync(); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Churn loop 2: revocation triggers on the hot file itself —
	// rename away and back, truncate to half and rewrite, conflicting
	// writable opens. Every rewrite restores the offset pattern before
	// the next trigger, and each mutation step syncs so strict-mode
	// staging recycles continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		half := make([]byte, fileSize/2)
		fillPattern(half, fileSize/2)
		for i := 0; i < 60 && !stop.Load(); i++ {
			switch i % 3 {
			case 0:
				if err := churn.Rename("/hot", "/warm"); err != nil {
					errc <- err
					return
				}
				if err := churn.Rename("/warm", "/hot"); err != nil {
					errc <- err
					return
				}
			case 1:
				if err := wf.Truncate(fileSize / 2); err != nil {
					errc <- err
					return
				}
				if _, err := wf.WriteAt(half, fileSize/2); err != nil {
					errc <- err
					return
				}
				if err := wf.Sync(); err != nil {
					errc <- err
					return
				}
			case 2:
				g, err := churn.OpenFile("/hot", vfs.O_RDWR, 0)
				if err != nil {
					errc <- err
					return
				}
				if err := g.Close(); err != nil {
					errc <- err
					return
				}
			}
		}
		stop.Store(true)
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.LeaseRevokes == 0 {
		t.Error("churn revoked no leases: the race is vacuous")
	}
	if st := reader.Stats(); st.LeasedReadBytes == 0 {
		t.Error("reader never read through the lease: the race is vacuous")
	}
}

// TestLeaseAcrossServerGenerations: leases die with their server
// generation — Close revokes everything, and a fresh generation over
// the same backend grants fresh leases.
func TestLeaseAcrossServerGenerations(t *testing.T) {
	fs := newBackend(t, "splitfs-strict")
	srv := server.New(fs, server.Config{})
	c, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("gen1"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().LeaseGrants == 0 {
		t.Fatal("generation 1 granted no lease")
	}
	if srv.ActiveLeases() == 0 {
		t.Fatal("no lease outstanding before Close")
	}
	srv.Close()
	if n := srv.ActiveLeases(); n != 0 {
		t.Fatalf("%d leases survived server Close", n)
	}

	// Generation 2 over the same backend: fresh sessions re-lease.
	srv2 := server.New(fs, server.Config{})
	defer srv2.Close()
	c2, err := server.NewLoopbackConfig(srv2, server.ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := c2.OpenFile("/a", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "gen1" {
		t.Fatalf("generation 2 read %q", buf)
	}
	if c2.Stats().LeaseGrants == 0 {
		t.Fatal("generation 2 granted no lease")
	}
}

// TestLeaseResumableReadOnly: a resumable session negotiates leases but
// keeps writes on the logged wire path — a leased write would bypass
// the replay log.
func TestLeaseResumableReadOnly(t *testing.T) {
	fs := newBackend(t, "splitfs-strict")
	srv := server.New(fs, server.Config{})
	defer srv.Close()
	redial := func() (io.ReadWriteCloser, error) {
		cs, ss := net.Pipe()
		go srv.ServeConn(ss)
		return cs, nil
	}
	c, err := server.DialResumableConfig(redial, server.ClientConfig{Root: "/", EnableLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.OpenFile("/a", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2048)
	fillPattern(data, 0)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("resumable leased read diverged")
	}
	st := c.Stats()
	if st.LeasedWriteBytes != 0 || st.WireWriteBytes == 0 {
		t.Errorf("resumable writes must stay on the wire: %+v", st)
	}
	if st.LeasedReadBytes == 0 {
		t.Errorf("resumable reads should lease: %+v", st)
	}
}
