package utilsim

import (
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallTree() TreeConfig {
	return TreeConfig{Dirs: 3, FilesPerDir: 5, FileBytes: 2 << 10, Seed: 3}
}

func TestMakeTree(t *testing.T) {
	fs := newFS(t)
	paths, err := MakeTree(fs, "/src", smallTree())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 15 {
		t.Fatalf("tree has %d files", len(paths))
	}
	for _, p := range paths {
		info, err := fs.Stat(p)
		if err != nil || info.Size == 0 {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestGitAddCommit(t *testing.T) {
	fs := newFS(t)
	paths, _ := MakeTree(fs, "/src", smallTree())
	objs, err := GitAddCommit(fs, "/src", "/git", paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if objs != len(paths) {
		t.Fatalf("wrote %d objects, want %d", objs, len(paths))
	}
	// Second commit of unchanged files writes no new blob objects.
	objs2, err := GitAddCommit(fs, "/src", "/git", paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if objs2 != 0 {
		t.Fatalf("unchanged commit wrote %d objects", objs2)
	}
	if _, err := fs.Stat("/git/index"); err != nil {
		t.Fatal("no index written")
	}
	if _, err := fs.Stat("/git/HEAD"); err != nil {
		t.Fatal("no HEAD written")
	}
}

func TestTar(t *testing.T) {
	fs := newFS(t)
	paths, _ := MakeTree(fs, "/src", smallTree())
	size, err := Tar(fs, "/out.tar", paths)
	if err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/out.tar")
	if err != nil || info.Size != size {
		t.Fatalf("archive size %d vs reported %d, %v", info.Size, size, err)
	}
	if size%512 != 0 {
		t.Fatalf("archive not block-padded: %d", size)
	}
}

func TestRsync(t *testing.T) {
	fs := newFS(t)
	paths, _ := MakeTree(fs, "/src", smallTree())
	copied, err := Rsync(fs, "/src", "/dst", paths)
	if err != nil {
		t.Fatal(err)
	}
	if copied == 0 {
		t.Fatal("nothing copied")
	}
	// Every file byte-identical at the destination.
	for _, p := range paths {
		want, _ := vfs.ReadFile(fs, p)
		got, err := vfs.ReadFile(fs, "/dst"+p[len("/src"):])
		if err != nil {
			t.Fatalf("missing %s: %v", p, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs after rsync", p)
		}
	}
}
