// Worker mode spawns background relink goroutines by design; in
// single-drain mode none start and the event stream stays deterministic.
//
// +determinism:concurrent

package splitfs

import (
	"sort"
	"sync"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// The asynchronous relink pipeline (see DESIGN.md, "Asynchronous relink
// pipeline"). fsync no longer runs its relink inline: it enqueues its
// file on a per-ofile-deduplicated FIFO and blocks only until the batch
// containing its file has group-committed. Draining happens either on
// background worker goroutines (Config.RelinkWorkers > 0) or — the
// deterministic single-drain mode the crash harness requires — on the
// enqueuing goroutine itself, which pops and processes the entire queue.
//
// A drain takes whatever is queued, runs every file's relink steps
// (each under only that file's lock), and issues ONE journal commit for
// the whole batch: concurrent fsyncs of distinct files coalesce into one
// journal transaction and one fence pair, jbd2-style. After the commit
// the drain releases the consumed staging references and advances the
// staging pool's reclamation epoch, so retired staging files are
// unmapped and unlinked off the fsync hot path.

// relinkRequest is one queued fsync. Requests for the same ofile
// coalesce while still queued: the eventual drain relinks everything
// staged at that moment, which covers every waiter. A request being
// processed no longer coalesces (its steps may have already snapshotted
// the overlay), so a new fsync starts a fresh request.
type relinkRequest struct {
	of   *ofile
	done chan struct{}
	err  error

	// drain-time scratch, owned by the processing goroutine
	txid     uint64
	released []stagedRange
}

// relinkPipeline is the queue plus its drain machinery.
type relinkPipeline struct {
	fs      *FS
	workers int

	mu      sync.Mutex                // +lockrank:pipeline
	queue   []*relinkRequest          // FIFO
	pending map[*ofile]*relinkRequest // queued (not yet popped) per ofile

	wake    chan struct{} // buffered worker doorbell
	stopped chan struct{}
	wg      sync.WaitGroup
}

func newRelinkPipeline(fs *FS, workers int) *relinkPipeline {
	p := &relinkPipeline{
		fs:      fs,
		workers: workers,
		pending: make(map[*ofile]*relinkRequest),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// stop terminates the background workers after the queue empties. The
// caller must have quiesced fsync traffic (requests enqueued after stop
// would hang in worker mode).
func (p *relinkPipeline) stop() {
	select {
	case <-p.stopped:
		return
	default:
	}
	close(p.stopped)
	p.wg.Wait()
}

// enqueue adds an ofile to the queue, coalescing with a still-queued
// request for the same file.
func (p *relinkPipeline) enqueue(of *ofile) *relinkRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.pending[of]; ok {
		return r
	}
	r := &relinkRequest{of: of, done: make(chan struct{})}
	p.pending[of] = r
	p.queue = append(p.queue, r)
	return r
}

// popAll takes the whole queue — the group that will share one commit.
func (p *relinkPipeline) popAll() []*relinkRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	batch := p.queue
	p.queue = nil
	for _, r := range batch {
		delete(p.pending, r.of)
	}
	return batch
}

// syncFile is fsync's durability path: enqueue, then either drain on
// this goroutine (single-drain mode) or wait for a worker.
func (p *relinkPipeline) syncFile(of *ofile) error {
	p.fs.clk.Charge(sim.CatCPU, sim.USplitEnqueueNs)
	r := p.enqueue(of)
	if p.workers > 0 {
		select {
		case p.wake <- struct{}{}:
		default:
		}
		<-r.done
		return r.err
	}
	p.drainUntil(r)
	return r.err
}

// groupSync makes every listed ofile's staged data durable through as
// few commits as the queue allows — typically exactly one. The ofiles
// must be in deterministic order when single-drain determinism matters
// (callers sort by inode).
func (p *relinkPipeline) groupSync(ofiles []*ofile) error {
	if len(ofiles) == 0 {
		return nil
	}
	p.fs.clk.Charge(sim.CatCPU, sim.USplitEnqueueNs)
	reqs := make([]*relinkRequest, len(ofiles))
	for i, of := range ofiles {
		reqs[i] = p.enqueue(of)
	}
	if p.workers > 0 {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	var first error
	for _, r := range reqs {
		if p.workers > 0 {
			<-r.done
		} else {
			p.drainUntil(r)
		}
		if r.err != nil && first == nil {
			first = r.err
		}
	}
	return first
}

// drainUntil processes queue batches on the calling goroutine until r
// completes. If another drainer raced us to the whole queue, r is in its
// batch and we only wait.
func (p *relinkPipeline) drainUntil(r *relinkRequest) {
	for {
		select {
		case <-r.done:
			return
		default:
		}
		batch := p.popAll()
		if len(batch) == 0 {
			<-r.done
			return
		}
		p.processBatch(batch)
	}
}

// worker is the background drain loop.
func (p *relinkPipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.wake:
		case <-p.stopped:
			// Drain what is left so no waiter hangs, then exit.
			if batch := p.popAll(); len(batch) != 0 {
				p.processBatch(batch)
				continue
			}
			return
		}
		for {
			batch := p.popAll()
			if len(batch) == 0 {
				break
			}
			p.processBatch(batch)
		}
	}
}

// processBatch runs the relink steps of every request — each under only
// its own file's lock — then group-commits the shared journal
// transaction once, releases the consumed staging references, and lets
// the epoch reclaimer unmap retired staging files. Persistence events
// issued here are tagged SrcRelinkWorker (and SrcReclaim) so the crash
// harness's coverage stats can see the background pipeline; in
// single-drain mode the tags are exact and the event stream is
// deterministic.
func (p *relinkPipeline) processBatch(batch []*relinkRequest) {
	fs := p.fs
	prev := fs.dev.SetEventSource(pmem.SrcRelinkWorker)
	defer fs.dev.SetEventSource(prev)
	var maxTx uint64
	for _, r := range batch {
		r.of.mu.Lock()
		r.txid, r.released, r.err = fs.relinkStepsLocked(r.of)
		r.of.mu.Unlock()
		if r.err == nil && r.txid > maxTx {
			maxTx = r.txid
		}
	}
	// One commit covers the whole batch: transaction ids are monotone and
	// every successful step set joined a transaction with id <= maxTx.
	var commitErr error
	if maxTx > 0 {
		commitErr = fs.kfs.CommitUpTo(maxTx)
	}
	for _, r := range batch {
		if r.err == nil {
			r.err = commitErr
		}
		// On error the staging references are deliberately NOT released:
		// the popped overlay is gone from the volatile view (pre-existing
		// fsync-failure semantics), but strict-mode recovery can still
		// replay the writes from the op log as long as the staged bytes
		// stay allocated — releasing them could reclaim (unlink) the
		// staging file and turn a reported error into silent data loss
		// after a crash.
		if r.err == nil {
			fs.staging.release(r.released)
		}
	}
	if commitErr == nil {
		fs.dev.SetEventSource(pmem.SrcReclaim)
		fs.staging.reclaim()
	}
	for _, r := range batch {
		close(r.done)
	}
}

// GroupSync makes the staged data of every listed file durable through
// one group-committed relink batch — the batched fsync the paper's
// jbd2-style group commit enables. Duplicate and nil handles are
// tolerated; files are drained in deterministic (inode) order.
func (fs *FS) GroupSync(files ...*File) error {
	seen := make(map[*ofile]bool, len(files))
	ofiles := make([]*ofile, 0, len(files))
	for _, f := range files {
		if f == nil || f.closed.Load() || seen[f.of] {
			continue
		}
		seen[f.of] = true
		ofiles = append(ofiles, f.of)
	}
	sort.Slice(ofiles, func(i, j int) bool { return ofiles[i].ino < ofiles[j].ino })
	fs.bookkeep()
	return fs.pipeline.groupSync(ofiles)
}
