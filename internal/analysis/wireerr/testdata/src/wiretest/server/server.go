// Package server mirrors the wire codec idioms of internal/server for
// the wireerr golden tests.
package server

import (
	"errors"
	"fmt"

	"splitfs/internal/vfs"
)

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *enc) u64(v uint64) { e.u32(uint32(v)); e.u32(uint32(v >> 32)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

type dec struct {
	b   []byte
	err error
}

func (d *dec) take(n int) []byte {
	if len(d.b) < n {
		d.err = errors.New("short")
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}
func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}
func (d *dec) u64() uint64 { lo := d.u32(); return uint64(lo) | uint64(d.u32())<<32 }
func (d *dec) i64() int64  { return int64(d.u64()) }
func (d *dec) str() string { n := int(d.u32()); return string(d.take(n)) }

// stat is a composite codec pair whose halves agree: u64 i64 u8 u32,
// with an if/else on the encode side that collapses.
func (e *enc) stat(ino uint64, size int64, dir bool, nlink uint32) {
	e.u64(ino)
	e.i64(size)
	if dir {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u32(nlink)
}

func (d *dec) stat() (uint64, int64, bool, uint32) {
	ino := d.u64()
	size := d.i64()
	dir := d.u8() == 1
	nlink := d.u32()
	return ino, size, dir, nlink
}

// encodeEntry / decodeEntry disagree: decode reads the name before the
// inode number.
func encodeEntry(name string, ino uint64) []byte {
	var e enc
	e.u64(ino)
	e.str(name)
	return e.b
}

func decodeEntry(p []byte) (string, uint64) { // want `wire field order mismatch for "Entry": encode writes \[u64 str\], decode reads \[str u64\]`
	d := dec{b: p}
	name := d.str()
	ino := d.u64()
	return name, ino
}

// encodeList / decodeList use symmetric loops and agree.
func encodeList(names []string) []byte {
	var e enc
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return e.b
}

func decodeList(p []byte) []string {
	d := dec{b: p}
	n := int(d.u32())
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

// Errors returned across the wire must wrap a sentinel.

func badOpaque(path string) error {
	return fmt.Errorf("server: open %s failed", path) // want `returned fmt.Errorf error does not wrap with %w`
}

func badNew() error {
	return errors.New("server: handshake failed") // want `returned errors.New error cannot round-trip the wire`
}

func okWrapped(path string) error {
	return fmt.Errorf("server: open %s: %w", path, vfs.ErrNotExist)
}

func okSentinel() error {
	return vfs.ErrClosed
}

func okSuppressed() error {
	//lint:ignore splitfs-wireerr golden test exercises suppression
	return errors.New("server: deliberate opaque error")
}
