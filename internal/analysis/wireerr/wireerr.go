// Package wireerr keeps the server's error and codec contracts honest.
// It applies only to internal/server packages and checks two things.
//
// Error transport: errors returned across the wire round-trip as codes
// only when they are (or wrap) a vfs sentinel — errToCode walks the
// Unwrap chain. A `return fmt.Errorf(...)` without a %w verb, or a
// `return errors.New(...)`, manufactures an error no client can match
// with errors.Is, so both are flagged. Package-level sentinel
// declarations stay legal; so does any expression the analyzer cannot
// see through (returned variables are the caller's business).
//
// Codec pairing: an encode function and its decode partner must touch
// the same primitive sequence in the same order. Pairs are matched by
// name — methods (e *enc) X / (d *dec) X, and functions encodeX /
// decodeX — and each body is reduced to its sequence of enc/dec
// primitive calls (u8 u16 u32 u64 i64 str bytes, plus nested composite
// names like fileInfo). An if/else whose branches reduce to the same
// sequence collapses; a body with genuinely divergent branches is
// incomparable and skipped rather than guessed at. Loop bodies reduce
// inside [ ] markers so symmetric repetition still compares.
package wireerr

import (
	"go/ast"
	"go/types"
	"strings"

	"splitfs/internal/analysis"
)

const name = "wireerr"

// Analyzer is the wireerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check internal/server error returns wrap vfs sentinels and " +
		"encode/decode pairs agree on wire field order",
	Run: run,
}

// InScope reports whether a package is subject to the wire contracts.
func InScope(path string) bool {
	return strings.Contains(path, "internal/server") || strings.HasSuffix(path, "/server") || path == "server"
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	type half struct {
		fd  *ast.FuncDecl
		seq []string
		ok  bool
	}
	encs := map[string]*half{}
	decs := map[string]*half{}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrorReturns(pass, fd)

			role, key := codecRole(pass, fd)
			if role == "" {
				continue
			}
			seq, ok := reduce(pass, fd.Body)
			h := &half{fd: fd, seq: seq, ok: ok}
			if role == "enc" {
				encs[key] = h
			} else {
				decs[key] = h
			}
		}
	}

	for key, e := range encs {
		d, ok := decs[key]
		if !ok {
			continue
		}
		if !e.ok || !d.ok {
			continue // divergent branches: incomparable, not wrong
		}
		if strings.Join(e.seq, " ") != strings.Join(d.seq, " ") {
			pass.Reportf(d.fd.Name.Pos(),
				"wire field order mismatch for %q: encode writes [%s], decode reads [%s]",
				key, strings.Join(e.seq, " "), strings.Join(d.seq, " "))
		}
	}
	return nil
}

// checkErrorReturns flags returned errors that cannot round-trip.
func checkErrorReturns(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				continue
			}
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "errors.New":
				pass.Reportf(call.Pos(),
					"returned errors.New error cannot round-trip the wire; wrap a vfs sentinel with fmt.Errorf and %%w, or define a package sentinel")
			case "fmt.Errorf":
				if len(call.Args) == 0 {
					continue
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					continue // non-constant format: can't judge
				}
				if !strings.Contains(lit.Value, "%w") {
					pass.Reportf(call.Pos(),
						"returned fmt.Errorf error does not wrap with %%w; clients cannot match it with errors.Is across the wire")
				}
			}
		}
		return true
	})
}

// codecRole classifies fd as one half of a codec pair and returns its
// pairing key.
func codecRole(pass *analysis.Pass, fd *ast.FuncDecl) (role, key string) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		// The primitive layer itself is asymmetric by construction
		// (enc appends bytes, dec consumes via take): only composite
		// codec methods pair up.
		if primitives[fd.Name.Name] || fd.Name.Name == "take" {
			return "", ""
		}
		switch recvName(pass, fd) {
		case "enc":
			return "enc", fd.Name.Name
		case "dec":
			return "dec", fd.Name.Name
		}
		return "", ""
	}
	if rest, ok := strings.CutPrefix(fd.Name.Name, "encode"); ok && rest != "" {
		return "enc", rest
	}
	if rest, ok := strings.CutPrefix(fd.Name.Name, "decode"); ok && rest != "" {
		return "dec", rest
	}
	return "", ""
}

func recvName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// primitives are the wire-atom methods of enc and dec.
var primitives = map[string]bool{
	"u8": true, "u16": true, "u32": true, "u64": true,
	"i64": true, "str": true, "bytes": true,
}

// reduce flattens a node into its ordered enc/dec primitive sequence.
// ok is false when an if statement has branches with differing
// sequences (or a primitive-bearing branch with no else), making the
// body incomparable.
func reduce(pass *analysis.Pass, n ast.Node) (seq []string, ok bool) {
	ok = true
	switch n := n.(type) {
	case nil:
		return nil, true
	case *ast.BlockStmt:
		for _, st := range n.List {
			s, o := reduce(pass, st)
			seq, ok = append(seq, s...), ok && o
		}
		return seq, ok
	case *ast.IfStmt:
		thenSeq, o1 := reduce(pass, n.Body)
		elseSeq, o2 := reduce(pass, n.Else)
		if !o1 || !o2 {
			return nil, false
		}
		if strings.Join(thenSeq, " ") == strings.Join(elseSeq, " ") {
			return thenSeq, true
		}
		if len(thenSeq) == 0 && n.Else == nil {
			return nil, true
		}
		return nil, false
	case *ast.ForStmt:
		body, o := reduce(pass, n.Body)
		if !o {
			return nil, false
		}
		if len(body) == 0 {
			return nil, true
		}
		return append(append([]string{"["}, body...), "]"), true
	case *ast.RangeStmt:
		body, o := reduce(pass, n.Body)
		if !o {
			return nil, false
		}
		if len(body) == 0 {
			return nil, true
		}
		return append(append([]string{"["}, body...), "]"), true
	case ast.Stmt:
		var bad bool
		ast.Inspect(n, func(in ast.Node) bool {
			switch in := in.(type) {
			case *ast.FuncLit, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt:
				// Nested control flow below expression level: handled
				// above when it is a direct statement; here it means a
				// shape reduce does not model.
				if _, isLit := in.(*ast.FuncLit); isLit {
					return false
				}
				bad = true
				return false
			case *ast.CallExpr:
				if name := codecCall(pass, in); name != "" {
					seq = append(seq, name)
				}
			}
			return true
		})
		if bad {
			// Re-reduce structured statements that Inspect found nested
			// (e.g. an if inside a switch case) conservatively.
			return nil, false
		}
		return seq, true
	default:
		return nil, true
	}
}

// codecCall names a call on an enc or dec receiver: a primitive or a
// nested composite codec method.
func codecCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	recv := n.Obj().Name()
	if recv != "enc" && recv != "dec" {
		return ""
	}
	// Primitive or nested composite (fileInfo): compare by call name.
	return fn.Name()
}
