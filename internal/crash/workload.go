package crash

import (
	"fmt"

	"splitfs/internal/sim"
)

// OpKind selects what a workload operation does. The zero value is
// OpWrite, so legacy write-only campaigns keep constructing Op literals
// unchanged.
type OpKind int

const (
	// OpWrite writes Data at Off (-1 = append), optionally fsyncs.
	OpWrite OpKind = iota
	// OpCreate ensures Path exists (open with O_CREATE).
	OpCreate
	// OpUnlink removes Path. With Close=false while a handle is open it
	// exercises the unlink-while-open orphan path.
	OpUnlink
	// OpRename moves Path to Path2, replacing a file at Path2.
	OpRename
	// OpTruncate truncates Path to Size.
	OpTruncate
	// OpMkdir creates directory Path.
	OpMkdir
	// OpSyncAll fsyncs every open file at once (splitfs.SyncAll): the
	// multi-file drain of the asynchronous relink pipeline, where all
	// files' relink batches share one group-committed journal
	// transaction. On backends without a SyncAll, it degrades to fsync
	// of each open handle in path order.
	OpSyncAll
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpUnlink:
		return "unlink"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	case OpSyncAll:
		return "syncall"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one workload operation for the campaign.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Off   int64  // -1 means append at current size
	Size  int64  // truncate target size
	Data  []byte
	Fsync bool
	// Close closes the operation's file handle afterwards (for OpUnlink:
	// before the unlink, making it a clean delete; without it an open
	// handle makes the unlink exercise the orphan-inode path).
	Close bool
}

// A workload Op expands into POSIX syscalls — open, write, fsync, close,
// unlink, rename, truncate, mkdir. Syscalls are the atomicity unit of
// the crash oracles (a crash between the open and the write of one Op
// legitimately leaves a created-but-empty file), so the model snapshots
// state per syscall, and the harness records the persistence-event
// counter per syscall.
type sysKind int

const (
	sysOpen sysKind = iota
	sysWrite
	sysFsync
	sysClose
	sysUnlink
	sysRename
	sysTruncate
	sysMkdir
	sysSyncall
)

func (k sysKind) String() string {
	return [...]string{"open", "write", "fsync", "close", "unlink",
		"rename", "truncate", "mkdir", "syncall"}[k]
}

type syscall struct {
	kind  sysKind
	path  string
	path2 string
	off   int64
	size  int64
	data  []byte
	opIdx int  // 1-based index of the Op this syscall came from
	last  bool // final syscall of its Op
}

// compile expands ops into the syscall sequence the executor will issue,
// tracking which paths have open handles (the executor follows the same
// rules, so compilation is exact). orphan unlinks (Close=false with an
// open handle) drop the handle from the table without a close syscall.
func compile(ops []Op) []syscall {
	open := map[string]bool{}
	var out []syscall
	emit := func(s syscall) { out = append(out, s) }
	for i, op := range ops {
		idx := i + 1
		switch op.Kind {
		case OpWrite:
			if !open[op.Path] {
				emit(syscall{kind: sysOpen, path: op.Path, opIdx: idx})
				open[op.Path] = true
			}
			emit(syscall{kind: sysWrite, path: op.Path, off: op.Off, data: op.Data, opIdx: idx})
			if op.Fsync {
				emit(syscall{kind: sysFsync, path: op.Path, opIdx: idx})
			}
			if op.Close {
				emit(syscall{kind: sysClose, path: op.Path, opIdx: idx})
				delete(open, op.Path)
			}
		case OpCreate:
			if !open[op.Path] {
				emit(syscall{kind: sysOpen, path: op.Path, opIdx: idx})
				open[op.Path] = true
			}
			if op.Close {
				emit(syscall{kind: sysClose, path: op.Path, opIdx: idx})
				delete(open, op.Path)
			}
		case OpUnlink:
			if open[op.Path] && op.Close {
				emit(syscall{kind: sysClose, path: op.Path, opIdx: idx})
			}
			// Close=false with an open handle: the executor keeps the
			// handle open across the unlink (orphan inode, tmpfile
			// pattern) but the path no longer resolves to it.
			delete(open, op.Path)
			emit(syscall{kind: sysUnlink, path: op.Path, opIdx: idx})
		case OpRename:
			emit(syscall{kind: sysRename, path: op.Path, path2: op.Path2, opIdx: idx})
			// A replaced destination's handle becomes an orphan handle;
			// the source handle follows the file to its new name.
			if open[op.Path] {
				delete(open, op.Path)
				open[op.Path2] = true
			} else {
				delete(open, op.Path2)
			}
		case OpTruncate:
			if !open[op.Path] {
				emit(syscall{kind: sysOpen, path: op.Path, opIdx: idx})
				open[op.Path] = true
			}
			emit(syscall{kind: sysTruncate, path: op.Path, size: op.Size, opIdx: idx})
			if op.Close {
				emit(syscall{kind: sysClose, path: op.Path, opIdx: idx})
				delete(open, op.Path)
			}
		case OpMkdir:
			emit(syscall{kind: sysMkdir, path: op.Path, opIdx: idx})
		case OpSyncAll:
			emit(syscall{kind: sysSyncall, opIdx: idx})
		}
	}
	for j := range out {
		out[j].last = j == len(out)-1 || out[j+1].opIdx != out[j].opIdx
	}
	return out
}

// sysPrefix returns how many syscalls the first n ops compile to.
func sysPrefix(sys []syscall, n int) int {
	for i, s := range sys {
		if s.opIdx > n {
			return i
		}
	}
	return len(sys)
}

// RandomOps builds a deterministic workload of writes/appends/fsyncs for
// campaign sweeps.
func RandomOps(seed uint64, n int) []Op {
	rng := sim.NewRNG(seed)
	sizes := map[string]int64{}
	paths := []string{"/c0", "/c1", "/c2"}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		p := paths[rng.Intn(len(paths))]
		data := make([]byte, rng.Intn(3000)+1)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		off := int64(-1)
		if sizes[p] > 0 && rng.Intn(3) == 0 {
			off = rng.Int63n(sizes[p])
		}
		end := off + int64(len(data))
		if off < 0 {
			end = sizes[p] + int64(len(data))
		}
		if end > sizes[p] {
			sizes[p] = end
		}
		ops = append(ops, Op{Path: p, Off: off, Data: data, Fsync: rng.Intn(4) == 0})
	}
	return ops
}

// AsyncOps builds a deterministic workload shaped for the asynchronous
// relink pipeline: appends and overwrites spread over several files with
// frequent per-file fsyncs and periodic group syncs (OpSyncAll), so the
// persistence-event sweep crosses many background relink-worker drains
// and multi-file group commits.
func AsyncOps(seed uint64, n int) []Op {
	rng := sim.NewRNG(seed)
	sizes := map[string]int64{}
	paths := []string{"/a0", "/a1", "/a2", "/a3"}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(7) == 0 {
			ops = append(ops, Op{Kind: OpSyncAll})
			continue
		}
		p := paths[rng.Intn(len(paths))]
		data := make([]byte, rng.Intn(2600)+1)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		off := int64(-1)
		if sizes[p] > 0 && rng.Intn(4) == 0 {
			off = rng.Int63n(sizes[p])
		}
		end := off + int64(len(data))
		if off < 0 {
			end = sizes[p] + int64(len(data))
		}
		if end > sizes[p] {
			sizes[p] = end
		}
		ops = append(ops, Op{Path: p, Off: off, Data: data, Fsync: rng.Intn(3) == 0})
	}
	return ops
}

// ServedOps builds a deterministic workload shaped for the served crash
// campaigns' resume discipline (see server.DialResumable):
//
//   - names are never reused once unlinked or renamed away, so a
//     re-opened handle chain identifies at most one durable file;
//   - writes are positional appends (offset = tracked size), so a
//     replayed write is idempotent — handle-offset appends would degrade
//     to at-least-once across a server restart;
//   - unlinks close their handle first, because a cold re-attach
//     re-establishes handles by path and cannot rebuild orphans;
//   - periodic and final OpSyncAll barriers bound every tenant's replay
//     log (the resumable client truncates its log at each acked barrier).
func ServedOps(seed uint64, n int) []Op {
	rng := sim.NewRNG(seed)
	sizes := map[string]int64{}
	var live []string // live file paths in creation order
	var dirs []string
	nextFile, nextDir := 0, 0

	freshPath := func() string {
		d := ""
		if len(dirs) > 0 && rng.Intn(2) == 0 {
			d = dirs[rng.Intn(len(dirs))]
		}
		p := fmt.Sprintf("%s/s%d", d, nextFile)
		nextFile++
		return p
	}
	data := func() []byte {
		b := make([]byte, rng.Intn(1800)+1)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		return b
	}

	ops := make([]Op, 0, n+1)
	for len(ops) < n {
		roll := rng.Intn(100)
		if len(live) == 0 && roll >= 60 && roll < 86 {
			roll = 55 // nothing to rename/unlink: create instead
		}
		switch {
		case roll < 50:
			// Positional append to an existing or fresh file.
			var p string
			if len(live) > 0 && rng.Intn(4) != 0 {
				p = live[rng.Intn(len(live))]
			} else {
				p = freshPath()
				live = append(live, p)
			}
			d := data()
			ops = append(ops, Op{Path: p, Off: sizes[p], Data: d,
				Fsync: rng.Intn(4) == 0, Close: rng.Intn(6) == 0})
			sizes[p] += int64(len(d))
		case roll < 60:
			p := freshPath()
			live = append(live, p)
			ops = append(ops, Op{Kind: OpCreate, Path: p, Close: rng.Intn(2) == 0})
		case roll < 74:
			// Rename to an always-fresh destination (never replacing).
			i := rng.Intn(len(live))
			src := live[i]
			dst := freshPath()
			live[i] = dst
			sizes[dst] = sizes[src]
			delete(sizes, src)
			ops = append(ops, Op{Kind: OpRename, Path: src, Path2: dst})
		case roll < 82:
			// Clean unlink: the handle (if any) closes first.
			i := rng.Intn(len(live))
			p := live[i]
			live = append(live[:i], live[i+1:]...)
			delete(sizes, p)
			ops = append(ops, Op{Kind: OpUnlink, Path: p, Close: true})
		case roll < 88:
			if len(dirs) >= 2 {
				continue // keep the tree small; reroll
			}
			d := fmt.Sprintf("/sd%d", nextDir)
			nextDir++
			dirs = append(dirs, d)
			ops = append(ops, Op{Kind: OpMkdir, Path: d})
		default:
			ops = append(ops, Op{Kind: OpSyncAll})
		}
	}
	if len(ops) == 0 || ops[len(ops)-1].Kind != OpSyncAll {
		ops = append(ops, Op{Kind: OpSyncAll})
	}
	return ops
}

// MetadataOps builds a deterministic workload mixing data writes with
// metadata operations — create, unlink (incl. unlink-while-open), rename
// (incl. replacing renames), truncate, mkdir — and per-op handle closes,
// driving the paths the per-mode metadata oracles check.
func MetadataOps(seed uint64, n int) []Op {
	rng := sim.NewRNG(seed)
	type fstate struct{ size int64 }
	files := map[string]*fstate{}
	dirs := []string{} // beyond "/"
	nextFile, nextDir := 0, 0

	fileNames := func() []string {
		// Deterministic iteration order: names are generated in sequence.
		var out []string
		for i := 0; i < nextFile; i++ {
			for _, d := range append([]string{""}, dirs...) {
				p := fmt.Sprintf("%s/f%d", d, i)
				if _, ok := files[p]; ok {
					out = append(out, p)
				}
			}
		}
		return out
	}
	freshPath := func() string {
		d := ""
		if len(dirs) > 0 && rng.Intn(2) == 0 {
			d = dirs[rng.Intn(len(dirs))]
		}
		p := fmt.Sprintf("%s/f%d", d, nextFile)
		nextFile++
		return p
	}
	data := func() []byte {
		b := make([]byte, rng.Intn(2500)+1)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		return b
	}

	ops := make([]Op, 0, n)
	for len(ops) < n {
		live := fileNames()
		roll := rng.Intn(100)
		if len(live) == 0 && roll >= 55 && roll < 88 {
			roll = 50 // nothing to unlink/rename/truncate: create instead
		}
		switch {
		case roll < 45:
			// Data write: mostly appends to an existing or fresh file.
			var p string
			if len(live) > 0 && rng.Intn(4) != 0 {
				p = live[rng.Intn(len(live))]
			} else {
				p = freshPath()
				files[p] = &fstate{}
			}
			f := files[p]
			d := data()
			off := int64(-1)
			if f.size > 0 && rng.Intn(3) == 0 {
				off = rng.Int63n(f.size)
			}
			end := off + int64(len(d))
			if off < 0 {
				end = f.size + int64(len(d))
			}
			if end > f.size {
				f.size = end
			}
			ops = append(ops, Op{Path: p, Off: off, Data: d,
				Fsync: rng.Intn(4) == 0, Close: rng.Intn(5) == 0})
		case roll < 55:
			p := freshPath()
			files[p] = &fstate{}
			ops = append(ops, Op{Kind: OpCreate, Path: p, Close: rng.Intn(2) == 0})
		case roll < 67:
			p := live[rng.Intn(len(live))]
			delete(files, p)
			// Close=false keeps any open handle across the unlink: the
			// orphan-inode (tmpfile) path.
			ops = append(ops, Op{Kind: OpUnlink, Path: p, Close: rng.Intn(2) == 0})
		case roll < 79:
			src := live[rng.Intn(len(live))]
			var dst string
			if len(live) > 1 && rng.Intn(2) == 0 {
				// Replacing rename over another live file.
				dst = live[rng.Intn(len(live))]
				if dst == src {
					dst = freshPath()
				}
			} else {
				dst = freshPath()
			}
			files[dst] = files[src]
			delete(files, src)
			ops = append(ops, Op{Kind: OpRename, Path: src, Path2: dst})
		case roll < 88:
			p := live[rng.Intn(len(live))]
			f := files[p]
			var sz int64
			if f.size > 0 {
				sz = rng.Int63n(f.size + f.size/3 + 1)
			}
			f.size = sz
			ops = append(ops, Op{Kind: OpTruncate, Path: p, Size: sz,
				Close: rng.Intn(3) == 0})
		default:
			if len(dirs) >= 3 {
				continue // keep the tree small; reroll
			}
			d := fmt.Sprintf("/d%d", nextDir)
			nextDir++
			dirs = append(dirs, d)
			ops = append(ops, Op{Kind: OpMkdir, Path: d})
		}
	}
	return ops
}
