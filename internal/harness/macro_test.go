package harness

import (
	"path/filepath"
	"testing"

	"splitfs/internal/benchfmt"
)

// macroGoldens pin the full smoke-scale metric stream of every backend:
// workload-generator drift, cost-model retuning, or any I/O-behavior
// change shows up as a hash mismatch here before it shows up as an
// unexplained BENCH_baseline.json drift in CI. Update by rerunning
// internal/harness.MacroBackendHash (see DESIGN.md, "Macrobenchmark
// matrix") when the change is intentional.
var macroGoldens = map[string]uint64{
	"ext4-dax":       0xb7ed5005a861284b,
	"splitfs-posix":  0x27b6d89126da20ac,
	"splitfs-sync":   0x70e8fab6dc7d42d0,
	"splitfs-strict": 0x990b2b094bd3fb97,
	"nova-strict":    0xae931dc930372b53,
	"nova-relaxed":   0x44760be720988130,
	"pmfs":           0x111fa5d6d4567525,
	"strata":         0x23128460b63fcf33,
	"logfs":          0xc5a5c2bf6b25abf5,
}

func TestMacroSeedStabilityGoldens(t *testing.T) {
	if len(macroGoldens) != len(MacroBackends()) {
		t.Fatalf("goldens cover %d backends, registry has %d", len(macroGoldens), len(MacroBackends()))
	}
	for _, backend := range MacroBackends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			want, ok := macroGoldens[backend]
			if !ok {
				t.Fatalf("no golden for backend %q — add it to macroGoldens", backend)
			}
			got, err := MacroBackendHash(backend, "smoke")
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("macro metric hash for %s = %#016x, golden %#016x\n"+
					"(deterministic counters changed; if intentional, update macroGoldens "+
					"and run `go run ./cmd/splitbench -update-baseline`)", backend, got, want)
			}
		})
	}
}

// TestMacroCellDeterminism re-runs one write-heavy cell and requires
// every metric — including simulated ns/op — to match exactly. This is
// the property the CI gate's exact (non-statistical) comparison stands
// on.
func TestMacroCellDeterminism(t *testing.T) {
	run := func() []Metric {
		cell, err := RunMacroCell("splitfs-strict", "ycsb-A", "smoke")
		if err != nil {
			t.Fatal(err)
		}
		return cell.Metrics
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("metric counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("metric %s: %v vs %v", a[i].Name, a[i].Value, b[i].Value)
		}
	}
}

// TestMacroMatrixShape checks the acceptance-criteria contract: one cell
// per (backend x workload), each emitting the full fixed metric set, for
// all nine backends and both workload families.
func TestMacroMatrixShape(t *testing.T) {
	if err := SetMacroConfig("smoke", nil, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := macroExp()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(MacroBackends()) * len(MacroWorkloads())
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	// Every cell contributes the 8 deterministic counters plus its mix.
	perCell := map[string]int{}
	for _, m := range tbl.Metrics {
		// metric name is "<workload>/<backend>/<name>"
		i := 0
		for n := 0; n < 2; n++ {
			for i < len(m.Name) && m.Name[i] != '/' {
				i++
			}
			i++
		}
		perCell[m.Name[:i-1]]++
	}
	if len(perCell) != wantRows {
		t.Fatalf("metric cells = %d, want %d", len(perCell), wantRows)
	}
	for cell, n := range perCell {
		if n < 8 {
			t.Errorf("cell %s has %d metrics, want >= 8", cell, n)
		}
	}
}

// TestMacroMetricsRoundTripSchema feeds real matrix metrics through the
// exact serialization cmd/splitbench -json performs and requires the
// result to satisfy the schema the CI gate loads, survive a disk
// round-trip value-identically, and contain gated (baseline-pinned)
// rows.
func TestMacroMetricsRoundTripSchema(t *testing.T) {
	cell, err := RunMacroCell("splitfs-sync", "tpcc", "smoke")
	if err != nil {
		t.Fatal(err)
	}
	var recs []benchfmt.Record
	for _, m := range cell.Metrics {
		recs = append(recs, benchfmt.Record{
			Experiment: "macro",
			Metric:     cell.Workload + "/" + cell.Backend + "/" + m.Name,
			Value:      m.Value, Unit: m.Unit, GitRev: "test",
		})
	}
	if err := benchfmt.Validate(recs); err != nil {
		t.Fatalf("macro metrics violate the gate's schema: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := benchfmt.Save(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := benchfmt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("row %d changed across round-trip: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if n := len(benchfmt.GatedSubset(recs)); n != 6 {
		t.Errorf("cell contributes %d gated counters, want 6", n)
	}
}

func TestMacroConfigValidation(t *testing.T) {
	defer SetMacroConfig("smoke", nil, nil)
	if err := SetMacroConfig("bogus", nil, nil); err == nil {
		t.Error("bogus scale accepted")
	}
	if err := SetMacroConfig("smoke", []string{"zfs"}, nil); err == nil {
		t.Error("bogus backend accepted")
	}
	if err := SetMacroConfig("smoke", nil, []string{"ycsb-Z"}); err == nil {
		t.Error("bogus workload accepted")
	}
	if err := SetMacroConfig("small", []string{"splitfs-strict"}, []string{"tpcc"}); err != nil {
		t.Errorf("valid selection rejected: %v", err)
	}
}
