// Command splitbench regenerates the SplitFS paper's evaluation tables
// and figures on the simulated PM substrate.
//
// Usage:
//
//	splitbench                  # run every experiment
//	splitbench list             # list experiment IDs
//	splitbench table1 fig4 ...  # run selected experiments
//	splitbench -threads 8 scaling
//	splitbench -json "" ...     # suppress BENCH_results.json
//
//	splitbench -experiment macro -scale smoke            # full 9-backend matrix
//	splitbench -experiment macro -backend splitfs-strict -workload ycsb-A,tpcc
//	splitbench -experiment macro -scale smoke -check-baseline   # CI perf gate
//	splitbench -update-baseline                                 # refresh BENCH_baseline.json
//
// -threads N sets the worker-goroutine sweep of the concurrent-mode
// "scaling" experiment to powers of two up to N (default 4). Wall-clock
// scaling needs GOMAXPROCS >= N.
//
// Experiments that attach machine-readable metrics (macro, scaling,
// groupcommit) are additionally serialized to the -json file as records
// of {experiment, metric, value, unit, git_rev}. Reruns at the same
// revision replace their previous rows, so the file accumulates one
// clean perf trajectory across revisions.
//
// The macro matrix's deterministic counters (fences/op, journal commits,
// log appends, relink/reclaim counts, PM bytes) — the server
// experiment's loopback cells, which pin the file service's
// transparency — and the obs experiment's registry snapshots, which pin
// the observability plane's zero-drift guarantee — are additionally
// held by BENCH_baseline.json:
// -check-baseline recomputes them and fails on any drift;
// -update-baseline rewrites the baseline after an intentional change
// (the documented escape hatch the CI bench job points at). Baseline
// runs with no experiment named run both gated experiments.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"splitfs/internal/benchfmt"
	"splitfs/internal/harness"
)

// gitRev resolves the working tree's revision, falling back to CI's
// GITHUB_SHA and then "unknown" (the JSON stays well-formed either way).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "unknown"
}

// writeResults merges the run's metrics into the trajectory file,
// replacing rows a rerun at the same revision already produced. An
// unreadable or corrupt existing file is started fresh.
func writeResults(path string, recs []benchfmt.Record) error {
	old, err := benchfmt.Load(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "splitbench: %s unreadable (%v); starting fresh\n", path, err)
		old = nil
	}
	return benchfmt.Save(path, benchfmt.Merge(old, recs))
}

// splitList splits a comma-separated flag value into its entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	threads := flag.Int("threads", 0,
		"max worker threads for the concurrent-mode scaling experiment (0 keeps the default sweep)")
	jsonPath := flag.String("json", "BENCH_results.json",
		"write machine-readable metrics here (empty disables)")
	experiment := flag.String("experiment", "",
		"experiment IDs to run (comma-separated; alternative to positional arguments)")
	scale := flag.String("scale", "smoke",
		"macro matrix scale level: smoke, small, or full")
	backend := flag.String("backend", "",
		"restrict the macro matrix to these backends (comma-separated; empty = all nine)")
	workload := flag.String("workload", "",
		"restrict the macro matrix to these workloads (comma-separated; empty = ycsb-A..F and tpcc)")
	baselinePath := flag.String("baseline", "BENCH_baseline.json",
		"regression baseline for the macro matrix's deterministic counters")
	checkBaseline := flag.Bool("check-baseline", false,
		"diff the macro matrix's deterministic counters against -baseline and fail on drift")
	updateBaseline := flag.Bool("update-baseline", false,
		"rewrite -baseline from this run's macro counters (escape hatch after an intentional change)")
	flag.Parse()
	if *threads < 0 {
		fmt.Fprintln(os.Stderr, "splitbench: -threads must not be negative")
		os.Exit(2)
	}
	if *threads > 0 {
		harness.SetMaxThreads(*threads)
	}
	if err := harness.SetMacroConfig(*scale, splitList(*backend), splitList(*workload)); err != nil {
		fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
		os.Exit(2)
	}
	args := flag.Args()
	// flag.Parse stops at the first positional argument; a flag placed
	// after an experiment ID would otherwise be silently treated as one.
	for _, a := range args {
		if len(a) > 0 && a[0] == '-' {
			fmt.Fprintf(os.Stderr, "splitbench: flags must precede experiment IDs (got %q after positional arguments)\n", a)
			os.Exit(2)
		}
	}
	if len(args) == 1 && args[0] == "list" {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := append(splitList(*experiment), args...)
	if len(ids) == 0 && (*checkBaseline || *updateBaseline) {
		// The baseline covers the macro matrix, the server experiment's
		// loopback cells, and the obs registry snapshots; gate runs that
		// name no experiment mean "run everything the baseline pins".
		ids = []string{"macro", "server", "obs"}
	}
	var exps []harness.Experiment
	if len(ids) == 0 {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (try 'splitbench list')\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	failed := false
	rev := gitRev()
	var recs []benchfmt.Record
	ranMacro, ranServer, ranObs := false, false, false
	for _, e := range exps {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		switch e.ID {
		case "macro":
			ranMacro = true
		case "server":
			ranServer = true
		case "obs":
			ranObs = true
		}
		tbl.Render(os.Stdout)
		for _, m := range tbl.Metrics {
			recs = append(recs, benchfmt.Record{
				Experiment: e.ID, Metric: m.Name, Value: m.Value, Unit: m.Unit, GitRev: rev,
			})
		}
	}
	if *jsonPath != "" && len(recs) > 0 {
		if err := writeResults(*jsonPath, recs); err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: write %s: %v\n", *jsonPath, err)
			failed = true
		} else {
			fmt.Printf("wrote %d metrics to %s (rev %s)\n", len(recs), *jsonPath, rev)
		}
	}
	// The baseline can be *checked* per gated experiment (a CI job may
	// gate only the experiment it ran), but *rewritten* only from a run
	// covering everything it pins — a partial update would silently drop
	// the other experiment's rows.
	var ranGated []string
	if ranMacro {
		ranGated = append(ranGated, "macro")
	}
	if ranServer {
		ranGated = append(ranGated, "server")
	}
	if ranObs {
		ranGated = append(ranGated, "obs")
	}
	allGated := ranMacro && ranServer && ranObs
	if *checkBaseline && len(ranGated) == 0 {
		fmt.Fprintln(os.Stderr, "splitbench: -check-baseline needs a gated experiment (macro, server, or obs) in the run")
		failed = true
	}
	if *updateBaseline && !allGated {
		fmt.Fprintln(os.Stderr, "splitbench: -update-baseline needs the macro, server, and obs experiments in the run")
		failed = true
	}
	// The baseline pins the full smoke-scale matrix; recording or
	// checking it at another scale or on a restricted selection would
	// silently break the CI gate with hundreds of unexplained drifts.
	if (*checkBaseline || *updateBaseline) &&
		(*scale != "smoke" || *backend != "" || *workload != "") {
		fmt.Fprintln(os.Stderr, "splitbench: baseline operations require -scale smoke and no -backend/-workload restriction")
		os.Exit(2)
	}
	if *updateBaseline && allGated {
		gated := benchfmt.GatedSubset(recs)
		if err := benchfmt.Save(*baselinePath, gated); err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: write %s: %v\n", *baselinePath, err)
			failed = true
		} else {
			fmt.Printf("baseline %s updated: %d pinned counters (rev %s)\n", *baselinePath, len(gated), rev)
		}
	} else if *checkBaseline && len(ranGated) > 0 {
		base, err := benchfmt.Load(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: load baseline %s: %v\n", *baselinePath, err)
			failed = true
		} else if drifts := benchfmt.DiffBaseline(base, recs, ranGated); len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "splitbench: %d deterministic counter(s) drifted from %s:\n", len(drifts), *baselinePath)
			for _, d := range drifts {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			fmt.Fprintln(os.Stderr, "if this change is intentional, refresh the baseline with:")
			fmt.Fprintln(os.Stderr, "  go run ./cmd/splitbench -update-baseline")
			failed = true
		} else {
			fmt.Printf("baseline check passed: %d pinned counters match %s\n",
				len(benchfmt.GatedSubset(recs)), *baselinePath)
		}
	}
	if failed {
		os.Exit(1)
	}
}
