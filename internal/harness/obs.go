// The obs experiment: the observability plane measured on its own
// contract. Each served loopback cell runs the deterministic mixed op
// stream with a metrics registry attached and reports the full registry
// snapshot — server op/byte/error totals, sim-derived op cost, splitfs
// and ext4-dax engine counters, per-source PM traffic — as baseline-
// gated rows: under the sim clock every instrument is an exact function
// of the workload, so the snapshot is pinnable the same way the macro
// counters are. The experiment also enforces the plane's two promises
// in-line: zero drift (two fresh instrumented runs produce identical
// snapshot hashes) and zero overhead (an instrumented run's macro
// counter deltas equal an uninstrumented run's exactly — attaching the
// registry must not perturb the op stream).
package harness

import (
	"fmt"
	"strings"

	"splitfs/internal/crash"
	"splitfs/internal/obs"
)

func init() {
	register("obs", "Observability plane: deterministic registry snapshots over the served loopback stream", obsExp)
}

// obsDelta is the macro counter movement of one stream run — the
// quantities the zero-overhead assertion compares between instrumented
// and uninstrumented runs.
type obsDelta struct {
	fences, commits, logAppends, relinks, reclaimed, pmBytes int64
}

func obsDeltaOf(before, after macroCounters) obsDelta {
	return obsDelta{
		fences:     after.dev.Fences - before.dev.Fences,
		commits:    after.commits - before.commits,
		logAppends: after.logAppends - before.logAppends,
		relinks:    after.relinks - before.relinks,
		reclaimed:  after.reclaimed - before.reclaimed,
		pmBytes:    after.dev.BytesWritten() - before.dev.BytesWritten(),
	}
}

// obsStreamRun builds one backend, optionally attaches a fresh metrics
// registry, runs the deterministic loopback op stream, and returns the
// registry snapshot (nil when not attached) and the macro counter delta.
func obsStreamRun(kind string, attach bool) (obs.Snapshot, obsDelta, error) {
	b, err := crash.NewBackend(kind, crash.BackendSpec{DevBytes: 64 << 20,
		StagingFiles: 8, StagingFileBytes: 1 << 20, OpLogBytes: 2 << 20})
	if err != nil {
		return nil, obsDelta{}, err
	}
	var reg *obs.Registry
	if attach {
		reg = obs.NewRegistry()
		b.RegisterObs(reg)
	}
	before := snapshotCounters(b)
	if _, err := runServerStream(b.FS, serverStreamOps); err != nil {
		return nil, obsDelta{}, fmt.Errorf("obs stream %s: %w", kind, err)
	}
	delta := obsDeltaOf(before, snapshotCounters(b))
	var snap obs.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	return snap, delta, nil
}

// obsMetricUnit picks the row unit from the instrument name: byte-named
// instruments report bytes, cost-named ones sim-nanoseconds, the rest
// plain counts.
func obsMetricUnit(name string) string {
	switch {
	case strings.Contains(name, "bytes"):
		return "bytes"
	case strings.Contains(name, "cost"):
		return "sim-ns"
	default:
		return "count"
	}
}

// obsExp renders the experiment. Every metric row is deterministic and
// baseline-gated (benchfmt gates the whole obs experiment), so a PR that
// changes any instrument's accounting — or the served stack's behavior —
// must explicitly refresh BENCH_baseline.json.
func obsExp() (*Table, error) {
	t := &Table{
		ID:    "obs",
		Title: "Observability plane: deterministic snapshots, zero drift, zero overhead",
		Note: "every row is a registry instrument after the served loopback stream, CI-gated against " +
			"BENCH_baseline.json; drift/overhead are asserted in-experiment (a mismatch fails the run)",
		Headers: []string{"Backend", "ops", "server/ops", "wire KB", "op cost ms", "PM MB", "drift", "overhead"},
	}
	for _, kind := range serverDetBackends {
		served := crash.ServedPrefix + kind
		// Uninstrumented reference run: the counter movement the
		// instrumented runs must reproduce exactly.
		_, ref, err := obsStreamRun(served, false)
		if err != nil {
			return nil, err
		}
		snap1, d1, err := obsStreamRun(served, true)
		if err != nil {
			return nil, err
		}
		snap2, d2, err := obsStreamRun(served, true)
		if err != nil {
			return nil, err
		}
		if h1, h2 := snap1.Hash(), snap2.Hash(); h1 != h2 {
			return nil, fmt.Errorf("obs %s: snapshot drift across identical runs: %016x vs %016x", kind, h1, h2)
		}
		if d1 != ref || d2 != ref {
			return nil, fmt.Errorf("obs %s: instrumentation overhead: counter deltas %+v / %+v, uninstrumented %+v",
				kind, d1, d2, ref)
		}
		get := func(name string) int64 {
			m, _ := snap1.Get(name)
			return m.Value
		}
		t.Rows = append(t.Rows, []string{
			kind,
			fmt.Sprintf("%d", serverStreamOps),
			fmt.Sprintf("%d", get("server/ops")),
			f1(float64(get("server/wire_bytes")) / (1 << 10)),
			f2(float64(get("server/op_cost")) / 1e6),
			f2(float64(get("pmem/bytes_written")) / (1 << 20)),
			"none",
			"zero",
		})
		for _, m := range snap1 {
			t.AddMetric(kind+"/"+m.Name, float64(m.Value), obsMetricUnit(m.Name))
			if m.Kind == obs.KindHist {
				t.AddMetric(kind+"/"+m.Name+"/sum", float64(m.Sum), obsMetricUnit(m.Name))
			}
		}
	}
	return t, nil
}
