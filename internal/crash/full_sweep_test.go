package crash

import (
	"testing"

	"splitfs/internal/splitfs"
)

// TestFullAsyncSweepAllModes is the unsampled acceptance sweep: every
// persistence event of an async-relink workload (multi-file appends,
// per-file fsyncs, group syncs) is crashed at, in all three modes, and
// must be violation-free. Slow (thousands of runs); -short skips it in
// favour of the bounded TestAsyncRelinkSweepAllModes.
func TestFullAsyncSweepAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full event sweep in -short mode")
	}
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Explore(ExploreConfig{
				Mode: mode,
				Ops:  AsyncOps(53, 14),
				Seed: 5,
			})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if int64(res.Tested) != res.TotalEvents {
				t.Fatalf("swept %d of %d events", res.Tested, res.TotalEvents)
			}
			for _, v := range res.Violations {
				t.Errorf("violation at event %d: %s", v.Event, v.Msg)
			}
			if len(res.UnknownKinds) != 0 {
				t.Errorf("unknown event kinds: %v", res.UnknownKinds)
			}
			t.Logf("%v: %d events, all crashed, 0 violations; coverage %v",
				mode, res.TotalEvents, res.ByKind)
		})
	}
}
