package splitfs

import (
	"fmt"
	"sort"

	"splitfs/internal/sim"
)

// relinkLocked applies a file's staged ranges to the target file and
// group-commits the batch: the inline form used by truncate, rename
// flushes, close, and checkpoints. fsync instead routes through the
// relink pipeline (async.go), which runs the same steps but can batch
// several files into one commit. Caller holds of.mu.
func (fs *FS) relinkLocked(of *ofile) error {
	txid, released, err := fs.relinkStepsLocked(of)
	if err != nil {
		return err
	}
	if err := fs.kfs.CommitUpTo(txid); err != nil {
		return err
	}
	fs.staging.release(released)
	return nil
}

// relinkStepsLocked performs a file's relink batch WITHOUT committing the
// journal transaction (§3.4): block-aligned runs move by relink (no data
// copy); unaligned head/tail bytes are copied through the kernel, as the
// paper prescribes for partial blocks. Every step joins one K-Split
// journal transaction, pinned open by a batch handle so no concurrent
// journal user can commit it half applied; concurrent batches of
// distinct files share the transaction and group-commit together.
//
// It returns the id of the journal transaction the batch joined — the
// caller makes the batch durable with kfs.CommitUpTo(txid) — and the
// staged ranges consumed, whose staging-pool references the caller
// releases after that commit (recovery may need the staged bytes until
// the relink is durable). U-Split's volatile view (sizes, mappings,
// attributes) is updated here, under of.mu, so readers stay consistent
// even though durability arrives later. Caller holds of.mu.
//
// Recovery safety needs no markers: each strict-mode log entry names its
// staging range, and relink punches exactly the block-aligned ranges it
// moved. Replay re-applies an entry only if its staging range is still
// allocated; punched ranges mean the relink transaction committed.
// Copy-only (sub-block) entries are idempotent to re-apply.
func (fs *FS) relinkStepsLocked(of *ofile) (txid uint64, released []stagedRange, err error) {
	if len(of.staged) == 0 {
		// Nothing staged: fence outstanding stores (in-place overwrites in
		// POSIX mode) and have the caller commit the running journal
		// transaction — fsync promises durability of the file's metadata
		// too, so an earlier truncate or allocating write must not be
		// lost. An empty transaction commits for free. (Found by the
		// persistence-event crash sweep: truncate + fsync + crash lost
		// the truncate.)
		fs.dev.Fence()
		return fs.kfs.TxID(), nil, nil
	}
	staged := of.staged
	of.staged = nil
	// Remap event: the popped ranges' staging blocks are swapped into
	// the target (aligned runs) or copied and released (partial blocks);
	// either way their old device offsets go back to the staging pool
	// and may be recycled. Bump before that can happen, so lease holders
	// re-validating after their loads observe it (vfs.Mappable).
	of.mapEpoch.Add(1)
	// The active chunk survives the relink: only the bytes consumed so
	// far are moved/punched, and the chunk tail stays byte-continuous
	// with the file, so subsequent appends keep packing into it. Without
	// this, WAL-style workloads (small append + fsync per operation)
	// would burn one chunk per fsync.
	fs.stats.relinks.Add(1)

	if fs.cfg.DisableRelink {
		// Fig 3 ablation: staging without relink — copy everything
		// through the kernel on fsync (committing internally).
		return fs.kfs.TxID(), staged, fs.copyStaged(of, staged)
	}

	// Hold a K-Split batch handle across the steps: while it is open, no
	// other journal user (a concurrent syncMeta, staging-file creation,
	// or the size-threshold commit) can commit the shared running
	// transaction with this relink half applied.
	fs.kfs.BeginBatch()
	batchOpen := true
	endBatch := func() {
		if batchOpen {
			batchOpen = false
			fs.kfs.EndBatch()
		}
	}
	defer endBatch()

	// Later staged ranges shadow earlier ones, so partition the staged
	// list into latest-writer-wins pieces: every file byte is sourced
	// from exactly one staged range. Beyond avoiding dead copies, the
	// disjointness is a crash-safety requirement: a sub-block copy must
	// never land inside a file range whose blocks an earlier step of this
	// same (uncommitted) batch swapped in from the staging file — if the
	// crash rolls the batch back, those blocks return to the staging file
	// with the copy scribbled over the staged data recovery replays.
	// Disjoint pieces make such an overlap impossible, because a relinked
	// run covers only whole blocks that belong entirely to its own piece.
	// (Found by the persistence-event crash sweep; see DESIGN.md.)
	for _, pc := range partitionStaged(staged) {
		s, a, b := pc.src, pc.a, pc.b
		if s.dram != nil {
			// DRAM-staged data has no PM blocks to relink: copy it all
			// (§4: this copy is why DRAM staging loses).
			if err := fs.copyRange(of, s, a, b); err != nil {
				return 0, nil, err
			}
			continue
		}
		head := (a + sim.BlockSize - 1) / sim.BlockSize * sim.BlockSize
		tail := b / sim.BlockSize * sim.BlockSize
		// Whole blocks move by relink; the partial head and tail are
		// copied (§3.3: "SplitFS copies the partial data for that block").
		// Block-aligned appends — the common case the paper measures —
		// therefore incur no copying at all.
		if head > a {
			stop := head
			if stop > b {
				stop = b
			}
			if err := fs.copyRange(of, s, a, stop); err != nil {
				return 0, nil, err
			}
		}
		if tail > head {
			err := fs.kfs.RelinkStep(s.sf.kf, of.kf,
				s.sfOff+(head-s.fileOff), head, tail-head, of.size)
			if err != nil {
				return 0, nil, fmt.Errorf("relinkstep a=%d b=%d head=%d tail=%d sfOff=%d: %w", a, b, head, tail, s.sfOff, err)
			}
			fs.stats.relinkBlocks.Add((tail - head) / sim.BlockSize)
		}
		if b > tail && tail >= head {
			if err := fs.copyRange(of, s, tail, b); err != nil {
				return 0, nil, err
			}
		}
	}
	// In strict mode, advance the inode's relink watermark in the same
	// transaction: every log entry for this file with seq <= watermark is
	// now covered by the relink, and recovery must not replay it (an
	// older copy-only entry replayed over newer relinked data would
	// corrupt the file). The watermark is the file's own highest logged
	// sequence — not the global op sequence — so relinks (including
	// background pipeline drains) never need the strict-mode writer lock.
	if fs.olog != nil {
		of.kf.SetUserWatermark(of.logSeq)
	}
	// Capture the transaction id while the batch handle is still open (the
	// transaction cannot commit, so the id covers every note the batch
	// made), then close the handle: a complete batch is safe for anyone to
	// commit, and the caller's CommitUpTo(txid) — or any concurrent
	// group-commit leader — makes the whole batch atomic at once.
	txid = fs.kfs.TxID()
	endBatch()
	// The modified ioctl keeps existing memory mappings valid across the
	// swap (§3.5); staged ranges were written through staging-file
	// mappings that remain valid too. Refresh both at no fault cost.
	for _, s := range staged {
		fs.mmaps.refresh(of, s.fileOff, s.length, s.dram == nil)
	}
	if of.size > of.ksize {
		of.ksize = of.size
	}
	fs.setAttrSize(of, of.size)
	return txid, staged, nil
}

// relinkPiece is a maximal sub-range [a, b) of one staged range that no
// later staged range shadows.
type relinkPiece struct {
	src stagedRange
	a   int64
	b   int64
}

// partitionStaged splits staged ranges into disjoint latest-writer-wins
// pieces: each piece's bytes come from the last range that wrote them.
func partitionStaged(staged []stagedRange) []relinkPiece {
	var pieces []relinkPiece
	for i, s := range staged {
		segs := []relinkPiece{{src: s, a: s.fileOff, b: s.fileOff + s.length}}
		for _, later := range staged[i+1:] {
			lo, hi := later.fileOff, later.fileOff+later.length
			next := segs[:0:0]
			for _, g := range segs {
				if g.b <= lo || hi <= g.a {
					next = append(next, g)
					continue
				}
				if g.a < lo {
					next = append(next, relinkPiece{src: s, a: g.a, b: lo})
				}
				if hi < g.b {
					next = append(next, relinkPiece{src: s, a: hi, b: g.b})
				}
			}
			segs = next
		}
		pieces = append(pieces, segs...)
	}
	return pieces
}

// setAttrSize updates the attribute cache's size for a file's path —
// unless the file was unlinked (its path no longer names it; re-caching
// would resurrect attributes for a dead or reused name). The liveness
// check happens inside amu: Unlink deletes the attribute after the
// kernel unlink, also under amu, so this insert either precedes that
// delete (and is swept by it) or observes the dead inode and bails.
func (fs *FS) setAttrSize(of *ofile, size int64) {
	fs.amu.Lock()
	defer fs.amu.Unlock()
	if !of.kf.Linked() {
		return
	}
	info := fs.attrs[of.path]
	info.Size = size
	fs.attrs[of.path] = info
}

// copyRange copies staged bytes [a, b) through the kernel write path (the
// partial-block copy of §3.3). Caller holds of.mu.
func (fs *FS) copyRange(of *ofile, s stagedRange, a, b int64) error {
	buf := make([]byte, b-a)
	if s.dram != nil {
		fs.clk.Charge(sim.CatCPU, sim.ChargeBytes(len(buf), sim.DRAMCopyPsPerByte))
		copy(buf, s.dram[a-s.fileOff:])
	} else {
		s.sf.m.Load(buf, s.sfOff+(a-s.fileOff))
	}
	if _, err := of.kf.WriteAt(buf, a); err != nil {
		return err
	}
	fs.stats.copiedBytes.Add(b - a)
	return nil
}

// copyStaged is the no-relink fallback (Fig 3 ablation): every staged
// byte is copied through the kernel and fsynced.
func (fs *FS) copyStaged(of *ofile, staged []stagedRange) error {
	for _, s := range staged {
		if err := fs.copyRange(of, s, s.fileOff, s.fileOff+s.length); err != nil {
			return err
		}
	}
	if fs.olog != nil {
		of.kf.SetUserWatermark(of.logSeq)
	}
	if err := of.kf.Sync(); err != nil {
		return err
	}
	if of.size > of.ksize {
		of.ksize = of.size
	}
	fs.setAttrSize(of, of.size)
	return nil
}

// relinkAll relinks every open file that has staged data, inline and one
// commit per file — the checkpoint path, which runs under wmu while (in
// the log-full case) already holding one file's mu, and therefore cannot
// detour through the pipeline queue. owner, when non-nil, is an ofile
// whose mu the caller already holds; it is relinked without re-locking.
// Shutdown-style multi-file syncs use FS.SyncAll, which batches through
// the pipeline instead.
func (fs *FS) relinkAll(owner *ofile) error {
	fs.mu.RLock()
	all := make([]*ofile, 0, len(fs.files))
	for _, of := range fs.files {
		all = append(all, of)
	}
	fs.mu.RUnlock()
	// Deterministic order: the crash harness replays workloads by
	// absolute persistence-event number, so a checkpoint must relink
	// files in the same order every run (map order would not be).
	sort.Slice(all, func(i, j int) bool { return all[i].ino < all[j].ino })
	for _, of := range all {
		if of != owner {
			of.mu.Lock()
		}
		var err error
		if len(of.staged) > 0 {
			err = fs.relinkLocked(of)
		}
		if of != owner {
			of.mu.Unlock()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// checkpoint relinks every file with staged data, then zeroes the
// operation log for reuse (§3.3: "If it becomes full, we checkpoint the
// state of the application by calling relink() on all the open files
// that have data in staging files. We then zero out the log and reuse
// it."). Caller holds wmu (checkpoints only happen in strict mode) and,
// when the log filled during a staged write, that file's of.mu — passed
// as owner so it is not re-locked.
func (fs *FS) checkpoint(owner *ofile) {
	if err := fs.relinkAll(owner); err != nil {
		panic("splitfs: checkpoint relink failed: " + err.Error())
	}
	// A concurrent pipeline drain may have popped a file's staged ranges
	// (so relinkAll skipped it) with its relink batch complete but its
	// group commit still pending. The pop-to-batch-close window runs
	// entirely under that file's mu — which relinkAll just held — so by
	// now any such relink's notes and watermark sit in the running
	// journal transaction: commit it before zeroing the log, or a crash
	// could find the entries gone AND the relink rolled back, losing
	// completed strict-mode writes.
	if err := fs.kfs.CommitMeta(); err != nil {
		panic("splitfs: checkpoint commit failed: " + err.Error())
	}
	fs.olog.reset()
	fs.stats.checkpoints.Add(1)
}
