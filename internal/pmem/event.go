package pmem

// Persistence-event trace and crash record/replay (see DESIGN.md,
// "Persistence events").
//
// Every operation that can change the device's *crash image* — the bytes
// a power failure at that instant would leave on media — is a
// persistence event, numbered by a monotone counter:
//
//	Store    content of a tearable (dirty) line changed
//	StoreNT  content of a tearable (pending) line changed
//	Flush    dirty lines moved to the write-pending queue
//	Fence    the write-pending queue drained to media
//
// Buffered stores (StoreBuffered, the jbd2 page-cache model) are NOT
// events: their lines always revert wholly on crash, so the crash image
// before and after one is identical.
//
// The facility is record/replay shaped. A recording run executes a
// workload once with no crash and observes Events() and an optional
// Trace(). A replay run arms ArmCrash(k, rng) before the workload: when
// event k completes, the device freezes its durable image — torn
// unfenced words are materialized immediately, deterministically — and
// execution continues unharmed on the volatile view, so the replay stays
// bit-identical to the recording. A later Crash() call then rewinds the
// volatile view to the frozen image.
//
// Determinism requirements: the workload must be single-threaded (event
// numbering is interleaving-dependent), and torn-word injection iterates
// unpersisted lines in sorted order so one seed always yields one image.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"splitfs/internal/sim"
)

// EventKind classifies a persistence event.
type EventKind uint8

const (
	EvStore EventKind = iota
	EvStoreNT
	EvFlush
	EvFence
	evKinds
)

// Known reports whether the kind is one this package defines. Consumers
// bucketing events by kind (coverage stats, summaries) must check this
// and surface unknown kinds loudly instead of silently mis-bucketing
// them — a new kind added here is a signal every table needs updating.
func (k EventKind) Known() bool { return k < evKinds }

// String names the kind for reports. Unknown kinds keep their numeric
// value visible so they cannot be silently confused with known ones.
func (k EventKind) String() string {
	switch k {
	case EvStore:
		return "store"
	case EvStoreNT:
		return "storent"
	case EvFlush:
		return "flush"
	case EvFence:
		return "fence"
	default:
		return fmt.Sprintf("unknown-kind-%d", uint8(k))
	}
}

// EventSource labels which execution context issued a persistence event.
// The asynchronous relink pipeline runs stores, fences, and journal
// commits from background stages; tagging events with their source lets
// the crash harness's coverage stats distinguish foreground syscall
// events from pipeline events, and lets traces document that a replayed
// schedule pinned the background work deterministically (the pipeline's
// single-drain mode). The source is device-global state: it is only
// meaningful under deterministic single-threaded drain, which is the
// only mode record/replay supports anyway.
type EventSource uint8

const (
	// SrcForeground is the default: the event came from the thread
	// executing the workload's syscall.
	SrcForeground EventSource = iota
	// SrcRelinkWorker marks events issued while a relink-pipeline drain
	// (background relink + group commit) was executing.
	SrcRelinkWorker
	// SrcReclaim marks events issued by epoch-based staging-file
	// reclamation (unmap, unlink of retired staging files).
	SrcReclaim
	evSources
)

// Known reports whether the source is one this package defines.
func (s EventSource) Known() bool { return s < evSources }

// String names the source for reports.
func (s EventSource) String() string {
	switch s {
	case SrcForeground:
		return "fg"
	case SrcRelinkWorker:
		return "relink"
	case SrcReclaim:
		return "reclaim"
	default:
		return fmt.Sprintf("unknown-src-%d", uint8(s))
	}
}

// Event is one recorded persistence event.
type Event struct {
	Seq  int64 // 1-based monotone sequence number
	Kind EventKind
	Src  EventSource  // execution context (foreground, relink worker, ...)
	Cat  sim.Category // clock category of the triggering operation
	Off  int64        // affected device range (zero-length for fences)
	Len  int64
}

// EventStats breaks down the event counter by kind.
type EventStats struct {
	Stores   int64
	StoresNT int64
	Flushes  int64
	Fences   int64
}

// Total sums the per-kind counts.
func (s EventStats) Total() int64 { return s.Stores + s.StoresNT + s.Flushes + s.Fences }

// eventState holds the record/replay machinery; it lives behind its own
// lock so the always-on counter stays a bare atomic. hooks mirrors
// "tracing || armed || fence filter installed" so the per-event fast
// path — every Store/StoreNT/Flush/Fence on the device — can skip the
// lock entirely when no harness is attached, preserving the sharded
// device's scalability for ordinary multi-threaded workloads.
type eventState struct {
	hooks atomic.Bool

	mu      sync.Mutex // +lockrank:pmevent
	tracing bool
	trace   []Event

	armedAt int64    // crash event; 0 = disarmed
	rng     *sim.RNG // torn-word seed for the armed crash

	fenceFilter func(seq int64) bool // test hook: true = drop this fence
	fenceSeq    int64
}

// refreshHooks recomputes the fast-path flag. Caller holds ev.mu.
func (ev *eventState) refreshHooks() {
	ev.hooks.Store(ev.tracing || ev.armedAt != 0 || ev.fenceFilter != nil)
}

// Events returns the number of persistence events so far.
func (d *Device) Events() int64 { return d.events.Load() }

// SetEventSource sets the source label attached to subsequent persistence
// events and returns the previous one, so pipeline stages can bracket
// their work:
//
//	prev := dev.SetEventSource(pmem.SrcRelinkWorker)
//	defer dev.SetEventSource(prev)
//
// The label is device-global; with concurrent foreground and background
// activity it is best-effort. Record/replay requires the deterministic
// single-drain pipeline mode, where exactly one goroutine issues events
// at a time and the label is exact.
func (d *Device) SetEventSource(s EventSource) EventSource {
	return EventSource(d.evSrc.Swap(uint32(s)))
}

// EventSourceNow returns the current event-source label.
func (d *Device) EventSourceNow() EventSource {
	return EventSource(d.evSrc.Load())
}

// EventStats returns the per-kind event counts.
func (d *Device) EventStats() EventStats {
	return EventStats{
		Stores:   d.evKind[EvStore].Load(),
		StoresNT: d.evKind[EvStoreNT].Load(),
		Flushes:  d.evKind[EvFlush].Load(),
		Fences:   d.evKind[EvFence].Load(),
	}
}

// SetTracing enables (or disables) full event recording; enabling resets
// the trace. Tracing is for recording runs only — it grows without bound.
func (d *Device) SetTracing(on bool) {
	d.ev.mu.Lock()
	d.ev.tracing = on
	d.ev.trace = nil
	d.ev.refreshHooks()
	d.ev.mu.Unlock()
}

// Trace returns the events recorded since tracing was enabled.
func (d *Device) Trace() []Event {
	d.ev.mu.Lock()
	defer d.ev.mu.Unlock()
	return append([]Event(nil), d.ev.trace...)
}

// ArmCrash schedules a crash at persistence event k (which must be in
// the future): when event k completes, the device freezes its durable
// image, materializing torn unfenced lines with rng (nil = every
// unpersisted line reverts wholly; buffered lines always revert).
// Execution continues on the volatile view so replay runs stay
// bit-identical to recording runs; a subsequent Crash() rewinds to the
// frozen image. Panics without TrackPersistence.
func (d *Device) ArmCrash(k int64, rng *sim.RNG) {
	if d.persisted == nil {
		panic("pmem: ArmCrash without TrackPersistence")
	}
	d.ev.mu.Lock()
	d.ev.armedAt = k
	d.ev.rng = rng
	d.ev.refreshHooks()
	d.ev.mu.Unlock()
}

// CrashFired reports whether an armed crash point has been reached (the
// durable image is frozen).
func (d *Device) CrashFired() bool { return d.frozen.Load() }

// SetFenceFilter installs a fault-injection hook for tests: each Fence
// calls f with a 1-based fence sequence number, and a true return makes
// that fence a no-op for durability (the write-pending queue is NOT
// drained), modeling a missing sfence. The fence still counts as a
// persistence event and charges the clock. Pass nil to remove the hook,
// which also resets the sequence.
func (d *Device) SetFenceFilter(f func(seq int64) bool) {
	d.ev.mu.Lock()
	d.ev.fenceFilter = f
	d.ev.fenceSeq = 0
	d.ev.refreshHooks()
	d.ev.mu.Unlock()
}

// dropFence reports whether the fence filter suppresses this fence.
func (d *Device) dropFence() bool {
	if !d.ev.hooks.Load() {
		return false
	}
	d.ev.mu.Lock()
	defer d.ev.mu.Unlock()
	if d.ev.fenceFilter == nil {
		return false
	}
	d.ev.fenceSeq++
	return d.ev.fenceFilter(d.ev.fenceSeq)
}

// event records one persistence event and fires the armed crash when its
// sequence number comes up. The lock-free fast path keeps event counting
// from re-serializing the sharded device when no harness is attached.
func (d *Device) event(kind EventKind, cat sim.Category, off, n int64) {
	seq := d.events.Add(1)
	d.evKind[kind].Add(1)
	if !d.ev.hooks.Load() {
		return
	}
	d.ev.mu.Lock()
	if d.ev.tracing {
		d.ev.trace = append(d.ev.trace, Event{Seq: seq, Kind: kind,
			Src: EventSource(d.evSrc.Load()), Cat: cat, Off: off, Len: n})
	}
	fire := d.ev.armedAt != 0 && seq == d.ev.armedAt
	rng := d.ev.rng
	d.ev.mu.Unlock()
	if fire {
		d.freeze(rng)
	}
}

// freeze materializes the crash image at the current instant: torn
// unfenced words are written into the durable shadow now, and the frozen
// flag stops all later persistence. The volatile view is untouched, so
// the workload keeps executing exactly as in a recording run.
func (d *Device) freeze(rng *sim.RNG) {
	d.lockAll()
	defer d.unlockAll()
	if d.frozen.Load() {
		return
	}
	for i := range d.shards {
		tearLines(d, &d.shards[i], rng)
	}
	d.frozen.Store(true)
}

// tearLines applies the torn-word crash model to one shard's unpersisted
// lines, writing surviving words into the durable shadow. Buffered
// (journaled-metadata) lines always revert: real jbd2 keeps uncommitted
// metadata in the DRAM page cache, so it can never reach the media.
// Lines are visited in sorted order so a given rng seed always produces
// the same image. Caller holds the shard's lock.
func tearLines(d *Device, s *shard, rng *sim.RNG) {
	if rng == nil {
		return
	}
	lns := make([]int64, 0, len(s.lines))
	for ln, st := range s.lines {
		if st == lineBuffered {
			continue
		}
		lns = append(lns, ln)
	}
	sort.Slice(lns, func(i, j int) bool { return lns[i] < lns[j] })
	for _, ln := range lns {
		off := ln * sim.CacheLine
		for w := int64(0); w < sim.CacheLine; w += 8 {
			if rng.Uint64()&1 == 0 {
				copy(d.persisted[off+w:off+w+8], d.data[off+w:off+w+8])
			}
		}
	}
}
