package harness

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"splitfs/internal/crash"
)

// TestObsSnapshotChild is the re-exec target of the two-process
// determinism test: it runs the instrumented loopback stream on every
// gated backend and prints one "hash <kind> <hex>" line per backend.
// Inert unless the parent sets the env var.
func TestObsSnapshotChild(t *testing.T) {
	if os.Getenv("SPLITFS_OBS_DET_CHILD") != "1" {
		t.Skip("re-exec child of TestObsSnapshotTwoProcesses")
	}
	for _, kind := range serverDetBackends {
		snap, _, err := obsStreamRun(crash.ServedPrefix+kind, true)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		fmt.Printf("hash %s %016x\n", kind, snap.Hash())
	}
}

// TestObsSnapshotTwoProcesses is the determinism proof the obs plane
// advertises: two FRESH processes running the same instrumented
// workload must produce identical metric snapshots — not just equal in
// one address space (where a shared seed or package-level state could
// mask nondeterminism), but across processes with independent runtime
// schedules and ASLR'd maps. It re-execs the test binary twice and
// compares the per-backend snapshot hashes, then checks them against an
// in-process run of this process too.
func TestObsSnapshotTwoProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary twice")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	runChild := func() string {
		cmd := exec.Command(exe, "-test.run", "TestObsSnapshotChild$", "-test.v")
		cmd.Env = append(os.Environ(), "SPLITFS_OBS_DET_CHILD=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child run: %v\n%s", err, out)
		}
		var hashes []string
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "hash ") {
				hashes = append(hashes, line)
			}
		}
		if len(hashes) != len(serverDetBackends) {
			t.Fatalf("child printed %d hash lines, want %d:\n%s", len(hashes), len(serverDetBackends), out)
		}
		return strings.Join(hashes, "\n")
	}
	a := runChild()
	b := runChild()
	if a != b {
		t.Fatalf("snapshot hashes differ across fresh processes:\nrun 1:\n%s\nrun 2:\n%s", a, b)
	}
	var local []string
	for _, kind := range serverDetBackends {
		snap, _, err := obsStreamRun(crash.ServedPrefix+kind, true)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		local = append(local, fmt.Sprintf("hash %s %016x", kind, snap.Hash()))
	}
	if got := strings.Join(local, "\n"); got != a {
		t.Fatalf("in-process snapshot hashes differ from child processes:\nlocal:\n%s\nchild:\n%s", got, a)
	}
}

// TestObsExperiment runs the full experiment — which self-asserts zero
// drift and zero instrumentation overhead — and sanity-checks the rows.
func TestObsExperiment(t *testing.T) {
	tbl, err := obsExp()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(serverDetBackends) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), len(serverDetBackends))
	}
	if len(tbl.Metrics) == 0 {
		t.Fatal("no metrics emitted")
	}
	for _, m := range tbl.Metrics {
		if m.Unit == "" {
			t.Fatalf("metric %s has no unit", m.Name)
		}
	}
	// The served stream must have flowed through the service layer: the
	// snapshot's server/ops row is the dispatched request count.
	found := false
	for _, m := range tbl.Metrics {
		if strings.HasSuffix(m.Name, "/server/ops") && m.Value > float64(serverStreamOps) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no backend reported server/ops > %d", serverStreamOps)
	}
}
