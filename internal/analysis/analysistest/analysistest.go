// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against "// want" expectations, mirroring the
// x/tools package of the same name.
//
// Test packages live in GOPATH-style layout under the calling test's
// testdata directory: testdata/src/<importpath>/*.go. They may import
// one another (cross-package fact flow is exercised by listing the
// dependency first) and real module packages such as
// splitfs/internal/pmem, which resolve from compiler export data.
//
// An expectation is a comment on the flagged line:
//
//	dev.StoreNT(0, p, cat) // want `not covered by a fence`
//
// Each backquoted (or double-quoted) string is a regexp that must match
// the message of exactly one diagnostic reported on that line; any
// diagnostic or expectation left unmatched fails the test.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"splitfs/internal/analysis"
)

// Run loads each listed package from dir (a testdata root) in order,
// runs the analyzer over all of them with a shared fact store, and
// checks every package's want expectations. It returns the surviving
// diagnostics for any extra assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) []analysis.Diagnostic {
	t.Helper()
	loader := analysis.NewLoader("")
	loader.SrcRoot = filepath.Join(testdata, "src")

	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := loader.LoadDir(filepath.Join(loader.SrcRoot, filepath.FromSlash(path)), path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	res, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatal(err)
	}

	wants := map[key][]*wantExpectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, wants)
		}
	}
	for _, d := range res.Diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
	return res.Diags
}

type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[key][]*wantExpectation) {
	t.Helper()
	for _, g := range f.Comments {
		for _, c := range g.List {
			// A want marker may trail other comment content, e.g. a
			// directive or suppression under test: `//lint:ignore x // want ...`.
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				if i := strings.Index(text, "// want "); i >= 0 {
					rest, ok = text[i+len("// want "):], true
				}
			}
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], &wantExpectation{re: re})
			}
		}
	}
}

type key struct {
	file string
	line int
}

// Testdata returns the canonical testdata directory for the caller.
func Testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
