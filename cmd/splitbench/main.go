// Command splitbench regenerates the SplitFS paper's evaluation tables
// and figures on the simulated PM substrate.
//
// Usage:
//
//	splitbench            # run every experiment
//	splitbench list       # list experiment IDs
//	splitbench table1 fig4 ...
package main

import (
	"fmt"
	"os"

	"splitfs/internal/harness"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "list" {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var exps []harness.Experiment
	if len(args) == 0 {
		exps = harness.All()
	} else {
		for _, id := range args {
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (try 'splitbench list')\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	failed := false
	for _, e := range exps {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		tbl.Render(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
