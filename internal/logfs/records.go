package logfs

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"splitfs/internal/alloc"
)

// Metadata record opcodes.
const (
	opCreate byte = iota + 1
	opMkdir
	opUnlink
	opRmdir
	opRename
	opWrite    // extent remap: logical range now backed by new extents
	opTruncate // size change; extents beyond are dropped
	opSetSize  // size-only change (in-place extension)
)

// Record encoding helpers. Records are compact little-endian blobs; the
// common case (opWrite with one extent) fits the 48-byte single-cache-
// line payload budget.

type recWriter struct{ buf bytes.Buffer }

func (w *recWriter) b(v byte) { w.buf.WriteByte(v) }
func (w *recWriter) u64(v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	w.buf.Write(t[:])
}
func (w *recWriter) i64(v int64) { w.u64(uint64(v)) }
func (w *recWriter) str(s string) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], uint16(len(s)))
	w.buf.Write(t[:])
	w.buf.WriteString(s)
}
func (w *recWriter) bytes() []byte { return w.buf.Bytes() }

type recReader struct {
	buf []byte
	off int
}

func (r *recReader) b() byte { v := r.buf[r.off]; r.off++; return v }
func (r *recReader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *recReader) i64() int64 { return int64(r.u64()) }
func (r *recReader) str() string {
	n := int(binary.LittleEndian.Uint16(r.buf[r.off:]))
	r.off += 2
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func encCreate(ino uint64, isDir bool, path string) []byte {
	var w recWriter
	if isDir {
		w.b(opMkdir)
	} else {
		w.b(opCreate)
	}
	w.u64(ino)
	w.str(path)
	return w.bytes()
}

func encUnlink(path string, isDir bool) []byte {
	var w recWriter
	if isDir {
		w.b(opRmdir)
	} else {
		w.b(opUnlink)
	}
	w.str(path)
	return w.bytes()
}

func encRename(oldPath, newPath string) []byte {
	var w recWriter
	w.b(opRename)
	w.str(oldPath)
	w.str(newPath)
	return w.bytes()
}

func encWrite(ino uint64, newSize, logical int64, exts []alloc.Extent) []byte {
	var w recWriter
	w.b(opWrite)
	w.u64(ino)
	w.i64(newSize)
	w.i64(logical)
	w.b(byte(len(exts)))
	for _, e := range exts {
		w.i64(e.Start)
		w.i64(e.Len)
	}
	return w.bytes()
}

func encTruncate(ino uint64, size int64) []byte {
	var w recWriter
	w.b(opTruncate)
	w.u64(ino)
	w.i64(size)
	return w.bytes()
}

func encSetSize(ino uint64, size int64) []byte {
	var w recWriter
	w.b(opSetSize)
	w.u64(ino)
	w.i64(size)
	return w.bytes()
}

// replay applies one record during Mount. Data blocks referenced by
// opWrite already contain their data (it was written before the record
// was logged), so replay is metadata-only. Caller holds fs.mu (mount is
// single-threaded).
func (fs *FS) replay(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("logfs: empty record")
	}
	r := &recReader{buf: rec}
	switch op := r.b(); op {
	case opCreate, opMkdir:
		ino := r.u64()
		path := r.str()
		parent, base, err := fs.resolveDir(path)
		if err != nil {
			return fmt.Errorf("logfs replay create %s: %w", path, err)
		}
		in := &inode{ino: ino, isDir: op == opMkdir, nlink: 1}
		if in.isDir {
			in.nlink = 2
			in.children = map[string]*inode{}
			parent.nlink++
		}
		parent.children[base] = in
		fs.inodes[ino] = in
		if ino >= fs.nextIno {
			fs.nextIno = ino + 1
		}
	case opUnlink, opRmdir:
		path := r.str()
		parent, base, err := fs.resolveDir(path)
		if err != nil {
			return fmt.Errorf("logfs replay unlink %s: %w", path, err)
		}
		in := parent.children[base]
		if in != nil {
			delete(fs.inodes, in.ino)
			if in.isDir {
				parent.nlink--
			}
		}
		delete(parent.children, base)
	case opRename:
		oldPath := r.str()
		newPath := r.str()
		op2, ob, err := fs.resolveDir(oldPath)
		if err != nil {
			return err
		}
		np, nb, err := fs.resolveDir(newPath)
		if err != nil {
			return err
		}
		in := op2.children[ob]
		if in == nil {
			return fmt.Errorf("logfs replay rename: %s missing", oldPath)
		}
		if victim, ok := np.children[nb]; ok && !victim.isDir {
			delete(fs.inodes, victim.ino)
		}
		delete(op2.children, ob)
		np.children[nb] = in
	case opWrite:
		ino := r.u64()
		newSize := r.i64()
		logical := r.i64()
		n := int(r.b())
		in := fs.inodes[ino]
		if in == nil {
			return fmt.Errorf("logfs replay write: ino %d missing", ino)
		}
		var total int64
		exts := make([]alloc.Extent, n)
		for i := range exts {
			exts[i] = alloc.Extent{Start: r.i64(), Len: r.i64()}
			total += exts[i].Len
		}
		// Remap: drop whatever backed the logical range, then insert.
		removeRange(in, logical, total)
		place := logical
		for _, e := range exts {
			insertExt(in, place, e)
			place += e.Len
		}
		if newSize > in.size {
			in.size = newSize
		}
	case opTruncate:
		ino := r.u64()
		size := r.i64()
		in := fs.inodes[ino]
		if in == nil {
			return fmt.Errorf("logfs replay truncate: ino %d missing", ino)
		}
		shrinkTo(in, size)
	case opSetSize:
		ino := r.u64()
		size := r.i64()
		in := fs.inodes[ino]
		if in == nil {
			return fmt.Errorf("logfs replay setsize: ino %d missing", ino)
		}
		in.size = size
	default:
		return fmt.Errorf("logfs: unknown record op %d", op)
	}
	return nil
}

// encodeState serializes the whole tree for a checkpoint snapshot.
func encodeState(fs *FS) []byte {
	var w recWriter
	w.u64(fs.nextIno)
	var walk func(path string, in *inode)
	walk = func(path string, in *inode) {
		w.u64(in.ino)
		if in.isDir {
			w.b(1)
		} else {
			w.b(0)
		}
		w.str(path)
		w.i64(in.size)
		w.u64(uint64(len(in.extents)))
		for _, e := range in.extents {
			w.i64(e.logical)
			w.i64(e.phys.Start)
			w.i64(e.phys.Len)
		}
		if in.isDir {
			for name, child := range in.children {
				walk(path+"/"+name, child)
			}
		}
	}
	// Root is implicit; walk its children.
	for name, child := range fs.root.children {
		walk("/"+name, child)
	}
	return w.bytes()
}

// decodeState rebuilds the tree from a snapshot.
func decodeState(fs *FS, state []byte) error {
	fs.root = &inode{ino: 1, isDir: true, nlink: 2, children: map[string]*inode{}}
	fs.inodes = map[uint64]*inode{1: fs.root}
	fs.nextIno = 2
	if len(state) == 0 {
		return nil
	}
	r := &recReader{buf: state}
	fs.nextIno = r.u64()
	for r.off < len(state) {
		ino := r.u64()
		isDir := r.b() == 1
		path := r.str()
		size := r.i64()
		n := int(r.u64())
		in := &inode{ino: ino, isDir: isDir, nlink: 1, size: size}
		if isDir {
			in.nlink = 2
			in.children = map[string]*inode{}
		}
		for i := 0; i < n; i++ {
			logical := r.i64()
			start := r.i64()
			ln := r.i64()
			in.extents = append(in.extents, fext{logical: logical,
				phys: alloc.Extent{Start: start, Len: ln}})
		}
		parent, base, err := fs.resolveDir(path)
		if err != nil {
			return fmt.Errorf("logfs snapshot decode %s: %w", path, err)
		}
		parent.children[base] = in
		if isDir {
			parent.nlink++
		}
		fs.inodes[ino] = in
	}
	return nil
}
