package splitfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// TestRandomOpsMatchModel drives a U-Split instance with random
// operations (writes at random offsets, appends, fsyncs, reopens,
// truncates) and checks every read against an in-memory golden model.
func TestRandomOpsMatchModel(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				return runModelCheck(t, mode, seed)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func runModelCheck(t *testing.T, mode Mode, seed uint64) bool {
	t.Helper()
	_, fs := newEnv(t, mode)
	rng := sim.NewRNG(seed)
	model := make(map[string][]byte)
	handles := make(map[string]vfs.File)
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()

	paths := []string{"/a", "/b", "/c"}
	getHandle := func(p string) vfs.File {
		if h, ok := handles[p]; ok {
			return h
		}
		h, err := fs.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		handles[p] = h
		if _, ok := model[p]; !ok {
			model[p] = nil
		}
		return h
	}

	const maxLen = 3 * sim.BlockSize
	for step := 0; step < 150; step++ {
		p := paths[rng.Intn(len(paths))]
		h := getHandle(p)
		switch rng.Intn(10) {
		case 0, 1, 2: // append
			n := rng.Intn(6000) + 1
			data := randBytes(rng, n)
			off := int64(len(model[p]))
			if _, err := h.WriteAt(data, off); err != nil {
				t.Fatalf("append %s: %v", p, err)
			}
			model[p] = append(model[p], data...)
		case 3, 4, 5: // overwrite at random offset (may extend)
			if len(model[p]) == 0 {
				continue
			}
			off := int64(rng.Intn(len(model[p])))
			n := rng.Intn(4000) + 1
			data := randBytes(rng, n)
			if _, err := h.WriteAt(data, off); err != nil {
				t.Fatalf("overwrite %s@%d: %v", p, off, err)
			}
			end := off + int64(n)
			for int64(len(model[p])) < end {
				model[p] = append(model[p], 0)
			}
			copy(model[p][off:end], data)
		case 6: // fsync
			if err := h.Sync(); err != nil {
				t.Fatalf("fsync %s: %v", p, err)
			}
		case 7: // close + reopen
			h.Close()
			delete(handles, p)
			continue // the handle is gone; next touch reopens
		case 8: // truncate
			if int64(len(model[p])) > maxLen {
				continue
			}
			nsz := 0
			if len(model[p]) > 0 {
				nsz = rng.Intn(len(model[p]))
			}
			if err := h.Truncate(int64(nsz)); err != nil {
				t.Fatalf("truncate %s: %v", p, err)
			}
			model[p] = model[p][:nsz]
		case 9: // full read + compare
			// handled below; fallthrough to verification
		}
		// Verify a random window every step.
		if len(model[p]) > 0 {
			off := rng.Intn(len(model[p]))
			n := rng.Intn(len(model[p])-off) + 1
			got := make([]byte, n)
			read, err := h.ReadAt(got, int64(off))
			if err != nil && read != n {
				t.Fatalf("read %s@%d+%d: %v", p, off, n, err)
			}
			if !bytes.Equal(got[:read], model[p][off:off+read]) {
				t.Fatalf("seed %d step %d: %s@%d+%d diverged from model (first diff at %d)",
					seed, step, p, off, n, firstDiff(got[:read], model[p][off:off+read]))
			}
		}
	}
	// Final full-content check through fresh handles.
	for _, h := range handles {
		h.Close()
	}
	handles = map[string]vfs.File{}
	for p, want := range model {
		got, err := vfs.ReadFile(fs, p)
		if err != nil {
			t.Fatalf("final read %s: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: final %s = %d bytes, model %d bytes, first diff %d",
				seed, p, len(got), len(want), firstDiff(got, want))
		}
	}
	return true
}

func randBytes(rng *sim.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestStrictCrashRecoveryProperty: at a random crash point, strict-mode
// recovery must restore every completed logged write (synchronous +
// atomic operations).
func TestStrictCrashRecoveryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		dev, fs := newEnv(t, Strict)
		rng := sim.NewRNG(seed)
		model := make(map[string][]byte)
		nOps := rng.Intn(40) + 5
		for i := 0; i < nOps; i++ {
			p := fmt.Sprintf("/f%d", rng.Intn(3))
			h, err := fs.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				t.Fatal(err)
			}
			data := randBytes(rng, rng.Intn(3000)+1)
			off := int64(len(model[p]))
			if rng.Intn(3) == 0 && off > 0 {
				off = int64(rng.Intn(int(off)))
			}
			if _, err := h.WriteAt(data, off); err != nil {
				t.Fatal(err)
			}
			end := off + int64(len(data))
			for int64(len(model[p])) < end {
				model[p] = append(model[p], 0)
			}
			copy(model[p][off:end], data)
			if rng.Intn(4) == 0 {
				h.Sync()
			}
			h.Close()
		}
		// Torn crash at an arbitrary point in the persistence pipeline.
		if err := dev.Crash(sim.NewRNG(seed ^ 0xbeef)); err != nil {
			t.Fatal(err)
		}
		kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
		if err != nil {
			t.Fatalf("seed %d: remount: %v", seed, err)
		}
		fs2, _, err := RecoverFS(kfs2, Config{Mode: Strict,
			StagingFiles: 4, StagingFileBytes: 2 << 20, OpLogBytes: 1 << 20})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		for p, want := range model {
			got, err := vfs.ReadFile(fs2, p)
			if err != nil {
				t.Fatalf("seed %d: read %s after recovery: %v", seed, p, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: %s diverged after recovery: got %d bytes want %d, diff at %d",
					seed, p, len(got), len(want), firstDiff(got, want))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
