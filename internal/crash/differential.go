package crash

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"splitfs/internal/vfs"
)

// The differential backend-equivalence suite: one generated syscall
// trace (the same generators the crash campaigns use) is fed through
// every file system in the repository via the vfs interface, and the
// final namespace plus file contents must be identical everywhere. The
// crash oracles verify SplitFS against a model of itself; this suite
// verifies the model-independent claim — §3.1's transparency property —
// that all backends implement the same POSIX-visible semantics, using
// the other five implementations as each other's oracle.

// DiffBackends lists the backends the suite compares, reference first —
// the full registry from backend.go.
var DiffBackends = BackendKinds()

// DiffMismatch is one divergence from the reference backend.
type DiffMismatch struct {
	Backend string
	Path    string
	Why     string
}

func (m DiffMismatch) String() string {
	return fmt.Sprintf("%s: %s: %s", m.Backend, m.Path, m.Why)
}

// DiffResult reports one differential run.
type DiffResult struct {
	Reference  string // backend the others are compared against
	Backends   []string
	Syscalls   int
	Trace      string // canonical trace rendering (seed-stability golden)
	Mismatches []DiffMismatch
}

// newDiffFS builds one backend instance on a fresh device via the
// registry, with the suite's default small-log sizing.
func newDiffFS(kind string, devBytes int64) (vfs.FileSystem, error) {
	b, err := NewBackend(kind, BackendSpec{DevBytes: devBytes})
	if err != nil {
		return nil, err
	}
	return b.FS, nil
}

// renderTrace produces the canonical, human-readable form of a compiled
// trace; the seed-stability golden pins its hash so generator drift is
// caught explicitly.
func renderTrace(sys []syscall) string {
	var sb strings.Builder
	for i, sc := range sys {
		fmt.Fprintf(&sb, "%d %s %s %s off=%d size=%d len=%d\n",
			i, sc.kind, sc.path, sc.path2, sc.off, sc.size, len(sc.data))
	}
	return sb.String()
}

// TraceHash is an FNV-1a digest of a differential trace rendering, the
// quantity the seed-stability goldens pin.
func TraceHash(trace string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(trace); i++ {
		h ^= uint64(trace[i])
		h *= 0x100000001b3
	}
	return h
}

// Differential feeds ops through every backend and compares final
// states against the first backend's. devBytes sizes each backend's
// device (0 = 32 MB).
func Differential(ops []Op, devBytes int64) (*DiffResult, error) {
	return DifferentialOver(DiffBackends, ops, devBytes)
}

// DifferentialOver runs the suite over an explicit kind list (reference
// first) — e.g. direct ext4-dax against every served: wrapper, which is
// how the service layer's transparency is verified: the same trace
// through the session/RPC stack must land byte-identically.
func DifferentialOver(kinds []string, ops []Op, devBytes int64) (*DiffResult, error) {
	if devBytes == 0 {
		devBytes = defaultDevBytes
	}
	sys := compile(ops)
	res := &DiffResult{
		Reference: kinds[0],
		Backends:  append([]string(nil), kinds...),
		Syscalls:  len(sys),
		Trace:     renderTrace(sys),
	}
	states := make(map[string]*durableState, len(kinds))
	for _, kind := range kinds {
		fs, err := newDiffFS(kind, devBytes)
		if err != nil {
			return nil, fmt.Errorf("diff backend %s: %w", kind, err)
		}
		r := &runner{fs: fs, handles: map[string]vfs.File{}}
		for i, sc := range sys {
			if err := r.apply(sc); err != nil {
				return nil, fmt.Errorf("diff backend %s: syscall %d (%v %s): %w",
					kind, i, sc.kind, sc.path, err)
			}
		}
		// Close every live handle so close-time relinks/digests run and
		// the captured state is the settled one (orphan handles stay open:
		// their unlinked inodes must NOT reappear in any namespace).
		paths := make([]string, 0, len(r.handles))
		for p := range r.handles {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if err := r.handles[p].Close(); err != nil {
				return nil, fmt.Errorf("diff backend %s: close %s: %w", kind, p, err)
			}
		}
		st, err := captureDurable(fs)
		if err != nil {
			return nil, fmt.Errorf("diff backend %s: capture: %w", kind, err)
		}
		states[kind] = st
	}
	ref := states[res.Reference]
	for _, kind := range kinds[1:] {
		res.Mismatches = append(res.Mismatches, diffStates(kind, ref, states[kind])...)
	}
	return res, nil
}

// diffStates compares one backend's final state against the reference.
func diffStates(kind string, ref, got *durableState) []DiffMismatch {
	var out []DiffMismatch
	add := func(path, why string) {
		out = append(out, DiffMismatch{Backend: kind, Path: path, Why: why})
	}
	for _, p := range sortedPaths(ref.files) {
		g, ok := got.files[p]
		if !ok {
			add(p, "file missing")
			continue
		}
		w := ref.files[p]
		if !bytes.Equal(g, w) {
			add(p, fmt.Sprintf("content diverges at byte %d (len got %d want %d)",
				firstDiff(g, w), len(g), len(w)))
		}
	}
	for _, p := range sortedPaths(got.files) {
		if _, ok := ref.files[p]; !ok {
			add(p, "unexpected file")
		}
	}
	for p := range ref.dirs {
		if !got.dirs[p] {
			add(p, "directory missing")
		}
	}
	for p := range got.dirs {
		if !ref.dirs[p] {
			add(p, "unexpected directory")
		}
	}
	return out
}
