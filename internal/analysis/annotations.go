package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar (documented in DESIGN.md, "Static analysis"):
//
//	// +lockrank:<name>              on a sync.Mutex/RWMutex struct field
//	// +lockrank:order a < b < c     declares hierarchy edges (outer first)
//	// +persist:caller-fenced        on a func whose stores the caller fences
//	// +determinism:wallclock        file flag: wall-clock time allowed
//	// +determinism:concurrent       file flag: goroutine spawns allowed
//	// +determinism:unordered        on a map-range stmt with a commutative body
//	//lint:ignore splitfs-<name> reason   suppresses one diagnostic
//
// Directives attach to the declaration their comment group documents
// (Doc comment or trailing line comment); file flags may appear in any
// comment of the file. Suppressions cover the line they trail, or the
// line immediately below a comment of their own.

// Directives extracts "+" directive lines from the given comment
// groups, with the leading "+" stripped: "// +lockrank:shard" yields
// "lockrank:shard".
func Directives(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "+") {
				out = append(out, strings.TrimPrefix(text, "+"))
			}
		}
	}
	return out
}

// HasDirective reports whether any group carries exactly directive d.
func HasDirective(d string, groups ...*ast.CommentGroup) bool {
	for _, line := range Directives(groups...) {
		if line == d {
			return true
		}
	}
	return false
}

// FileFlag reports whether any comment in f is the file-level directive
// "// +<flag>" (e.g. flag "determinism:wallclock").
func FileFlag(f *ast.File, flag string) bool {
	for _, g := range f.Comments {
		if HasDirective(flag, g) {
			return true
		}
	}
	return false
}

// RangeDirective reports whether a statement at pos is annotated with
// directive d: the directive must appear in a comment on the statement's
// own line or the line immediately above it.
func RangeDirective(fset *token.FileSet, file *ast.File, pos token.Pos, d string) bool {
	line := fset.Position(pos).Line
	for _, g := range file.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "+") || strings.TrimPrefix(text, "+") != d {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// Suppression is one //lint:ignore comment.
type Suppression struct {
	Pos      token.Position // position of the comment
	Line     int            // line the suppression covers
	Analyzer string         // bare analyzer name (no "splitfs-" prefix)
	Reason   string
}

const suppressPrefix = "lint:ignore "

// Suppressions extracts every //lint:ignore comment from a file. A
// trailing comment covers its own line; a comment alone on a line
// covers the next line. Malformed suppressions (no "splitfs-" check
// name or no reason) are returned with Analyzer == "" so the driver
// can flag them instead of silently ignoring a typo.
func Suppressions(fset *token.FileSet, f *ast.File) []Suppression {
	// Lines that hold non-comment tokens: a comment sharing such a line
	// is trailing and covers that same line.
	codeLines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	var out []Suppression
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, suppressPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, suppressPrefix))
			check, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			s := Suppression{Pos: pos, Line: pos.Line}
			if !codeLines[pos.Line] {
				s.Line = pos.Line + 1
			}
			if name, ok := strings.CutPrefix(check, "splitfs-"); ok && strings.TrimSpace(reason) != "" {
				s.Analyzer = name
				s.Reason = strings.TrimSpace(reason)
			}
			out = append(out, s)
		}
	}
	return out
}
