package ext4dax

import (
	"io"
	"sync"
	"sync/atomic"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// File is an open ext4 DAX file.
type File struct {
	fs   *FS
	in   *inode
	flag int
	path string

	mu     sync.Mutex // handle offset
	pos    int64
	closed atomic.Bool
}

var _ vfs.File = (*File)(nil)

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

// Ino exposes the inode number (used by U-Split's attribute cache).
func (f *File) Ino() uint64 { return f.in.ino }

// Linked reports whether the handle's inode is still live in the
// namespace — this exact inode, not a recycled successor of its number.
// U-Split checks it before caching an open-file description: a handle
// that lost a race with unlink still works (tmpfile semantics) but must
// not be registered under an inode number that may be reallocated.
func (f *File) Linked() bool {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.icache[f.in.ino] == f.in && f.in.nlink > 0
}

// Read reads from the handle offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Write writes at the handle offset (or at EOF with O_APPEND). The EOF
// offset is resolved under the inode lock, so concurrent O_APPEND writers
// through distinct handles never overwrite each other.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, end, err := f.writeAt(p, f.pos, f.flag&vfs.O_APPEND != 0)
	f.pos = end
	return n, err
}

// Seek implements vfs.File.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case vfs.SeekSet:
		base = 0
	case vfs.SeekCur:
		base = f.pos
	case vfs.SeekEnd:
		f.in.mu.RLock()
		base = f.in.size
		f.in.mu.RUnlock()
	default:
		return 0, vfs.ErrInval
	}
	if base+offset < 0 {
		return 0, vfs.ErrInval
	}
	f.pos = base + offset
	return f.pos, nil
}

// ReadAt is pread(2): it charges the kernel trap and read path, then
// copies data out of PM extent by extent. Holes read as zeros. Reads at
// or past EOF return io.EOF. It takes only the inode's read lock —
// concurrent reads, and writes to other files, proceed in parallel.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	fs := f.fs
	if f.closed.Load() {
		return 0, vfs.ErrClosed
	}
	if !vfs.Readable(f.flag) {
		return 0, vfs.ErrInval
	}
	fs.trap()
	fs.clk.Charge(sim.CatCPU, sim.Ext4ReadPathNs)
	fs.stats.dataReads.Add(1)
	f.in.mu.RLock()
	defer f.in.mu.RUnlock()
	return fs.readLocked(f.in, p, off)
}

// readLocked copies file content into p. Caller holds in.mu (read or
// write side).
func (fs *FS) readLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if off >= in.size {
		return 0, io.EOF
	}
	if max := in.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		cur := off + int64(n)
		logical := cur / sim.BlockSize
		inBlk := cur % sim.BlockSize
		devOff, contig, ok := translate(fs, in, logical)
		span := contig*sim.BlockSize - inBlk
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		if !ok {
			// Hole: zero fill one block's worth.
			span = sim.BlockSize - inBlk
			if span > int64(len(p)-n) {
				span = int64(len(p) - n)
			}
			for i := int64(0); i < span; i++ {
				p[n+int(i)] = 0
			}
			n += int(span)
			continue
		}
		fs.dev.ReadIntoUser(p[n:n+int(span)], devOff+inBlk, sim.CatPMData)
		n += int(span)
	}
	return n, nil
}

// WriteAt is pwrite(2). Overwrites of allocated blocks go straight to PM
// with non-temporal stores (the DAX path); writes into holes or past the
// allocated blocks take the allocating write path: block allocation,
// extent tree update, journal handle, and new-block zeroing — the
// software overhead the paper measures in Table 1.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	n, _, err := f.writeAt(p, off, false)
	return n, err
}

// writeAt performs the write, resolving atEOF to the current size under
// the locks, and returns the end offset for handle-position updates.
func (f *File) writeAt(p []byte, off int64, atEOF bool) (int, int64, error) {
	fs := f.fs
	if f.closed.Load() {
		return 0, off, vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return 0, off, vfs.ErrReadOnly
	}
	fs.trap()
	fs.clk.Charge(sim.CatCPU, sim.Ext4DaxIomapNs)
	fs.stats.dataWrites.Add(1)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f.in.mu.Lock()
	if atEOF {
		off = f.in.size
	}
	n, err := fs.writeLocked(f.in, p, off)
	f.in.mu.Unlock()
	fs.maybeCommit()
	return n, off + int64(n), err
}

// writeLocked performs the write. Caller holds fs.mu and in.mu. Data
// stores are non-temporal and deliberately unfenced: like ext4-DAX,
// write() data becomes durable only at fsync (or a journal commit),
// which fences.
//
// +persist:caller-fenced
func (fs *FS) writeLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	end := off + int64(len(p))
	allocated := false
	n := 0
	for n < len(p) {
		cur := off + int64(n)
		logical := cur / sim.BlockSize
		inBlk := cur % sim.BlockSize
		devOff, contig, ok := translate(fs, in, logical)
		if !ok {
			// Allocating write: fill the hole / extend the file.
			if !allocated {
				// Charged once per call, like one journal handle and
				// unwritten-extent conversion per write syscall.
				fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
				fs.clk.Charge(sim.CatCPU, sim.Ext4AllocWritePathNs)
				allocated = true
			}
			needBlocks := (end-cur+inBlk+sim.BlockSize-1)/sim.BlockSize - 0
			// Bound the request to the hole: find the next mapped block.
			holeLen := nextMapped(in, logical) - logical
			if holeLen > 0 && needBlocks > holeLen {
				needBlocks = holeLen
			}
			e, dirty, err := fs.bBmp.AllocExtent(needBlocks)
			if err != nil {
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
			fs.note(dirty.Off, dirty.Len)
			if logical == fileBlocks(in) {
				appendFileExtent(in, e)
			} else {
				insertFileExtent(in, logical, e)
			}
			in.blocks += e.Len
			// Zero the edges of the new allocation that this write does
			// not cover (DAX zeroes fresh blocks for security).
			newDev := fs.bBmp.ExtentOffset(e)
			if inBlk > 0 {
				fs.dev.StoreNT(newDev, make([]byte, inBlk), sim.CatPMData)
			}
			lastByte := min64(end, (logical+e.Len)*sim.BlockSize)
			if tail := (logical+e.Len)*sim.BlockSize - lastByte; tail > 0 {
				fs.dev.StoreNT(newDev+e.Len*sim.BlockSize-tail,
					make([]byte, tail), sim.CatPMData)
			}
			devOff, contig, _ = translate(fs, in, logical)
		}
		span := contig*sim.BlockSize - inBlk
		if span > int64(len(p)-n) {
			span = int64(len(p) - n)
		}
		fs.dev.StoreNT(devOff+inBlk, p[n:n+int(span)], sim.CatPMData)
		n += int(span)
	}
	grew := end > in.size
	if grew {
		in.size = end
	}
	// Pure in-place overwrites need no metadata update; allocating or
	// size-extending writes persist the inode through the journal.
	if allocated || grew {
		fs.writeInode(in)
	}
	return n, nil
}

// fileBlocks returns the logical block count (end of the last extent).
func fileBlocks(in *inode) int64 {
	if len(in.extents) == 0 {
		return 0
	}
	return in.extents[len(in.extents)-1].logicalEnd()
}

// nextMapped returns the first mapped logical block at or after logical,
// or a very large value when none exists.
func nextMapped(in *inode, logical int64) int64 {
	for _, e := range in.extents {
		if e.logicalEnd() > logical {
			if e.logical > logical {
				return e.logical
			}
			return logical // already mapped (caller should not hit this)
		}
	}
	return 1 << 60
}

// Truncate implements ftruncate(2).
func (f *File) Truncate(size int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return vfs.ErrReadOnly
	}
	fs.trap()
	fs.clk.Charge(sim.CatJournal, sim.Ext4JournalHandleNs)
	fs.stats.metaOps.Add(1)
	f.in.mu.Lock()
	fs.truncateLocked(f.in, size)
	f.in.mu.Unlock()
	fs.maybeCommit()
	return nil
}

// truncateLocked shrinks or grows (as a hole) the file. Caller holds
// fs.mu and, for file inodes, in.mu.
func (fs *FS) truncateLocked(in *inode, size int64) {
	if size < in.size {
		// Remap event: the bump must be visible before any freed block
		// can be recycled, so lease holders re-validating after their
		// loads are guaranteed to observe it (vfs.Mappable contract).
		in.mapEpoch.Add(1)
		fromLogical := (size + sim.BlockSize - 1) / sim.BlockSize
		for _, e := range truncateExtents(in, fromLogical) {
			fs.deferFree(fs.bBmp, e)
			in.blocks -= e.Len
		}
	}
	in.size = size
	fs.writeInode(in)
}

// Sync is fsync(2): commit the running journal transaction and fence the
// file's outstanding non-temporal data. On ext4 DAX this is the expensive
// call the paper measures at 28.98 µs (Table 6).
func (f *File) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	fs.trap()
	fs.clk.Charge(sim.CatCPU, sim.Ext4FsyncNs)
	fs.awaitCommittable()
	if err := fs.commitTx(); err != nil {
		return err
	}
	fs.dev.Fence()
	return nil
}

// Close implements vfs.File. ext4 keeps no per-handle state beyond the
// offset, so close is nearly free (Table 6: 0.34 µs) — except for the
// last close of an orphan (unlinked-while-open) inode, which frees it.
func (f *File) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return vfs.ErrClosed
	}
	fs := f.fs
	fs.trap()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f.in.openCnt--
	if f.in.openCnt == 0 && f.in.orphan {
		fs.freeInode(f.in)
		fs.maybeCommit()
	}
	return nil
}

// Stat implements vfs.File.
func (f *File) Stat() (vfs.FileInfo, error) {
	if f.closed.Load() {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	f.fs.trap()
	f.in.mu.RLock()
	defer f.in.mu.RUnlock()
	return f.fs.infoOf(f.in), nil
}

// Preallocate adds count blocks to the end of the file in as few extents
// as possible; used by U-Split to create staging files off the critical
// path. The file's size is extended to cover them.
func (f *File) Preallocate(count int64) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	exts, dirties, err := fs.bBmp.Alloc(count)
	if err != nil {
		return err
	}
	f.in.mu.Lock()
	defer f.in.mu.Unlock()
	for i, e := range exts {
		fs.note(dirties[i].Off, dirties[i].Len)
		appendFileExtent(f.in, e)
		f.in.blocks += e.Len
	}
	f.in.size = fileBlocks(f.in) * sim.BlockSize
	fs.writeInode(f.in)
	fs.maybeCommit()
	return nil
}
