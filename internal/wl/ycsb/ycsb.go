// Package ycsb implements the Yahoo! Cloud Serving Benchmark core
// workloads A-F over any Store (canonically the lsmkv key-value store),
// matching the paper's "YCSB on LevelDB" evaluation (§5.2, Table 7,
// Fig 5, Fig 6):
//
//	A: 50% reads / 50% updates, zipfian
//	B: 95% reads /  5% updates, zipfian
//	C: 100% reads, zipfian
//	D: 95% reads of latest / 5% inserts
//	E: 95% scans (1-100 records) / 5% inserts
//	F: 50% reads / 50% read-modify-writes, zipfian
package ycsb

import (
	"fmt"

	"splitfs/internal/apps/lsmkv"
	"splitfs/internal/sim"
)

// Store is the key-value surface the workloads drive. Any engine backed
// by a vfs.FileSystem that exposes point operations and ordered range
// scans can sit underneath; *lsmkv.DB is the canonical implementation,
// which is what lets the macrobenchmark matrix run the same op stream
// over every backend in the repository.
type Store interface {
	Put(key string, val []byte) error
	Get(key string) ([]byte, error)
	Scan(start string, count int) ([]lsmkv.KV, error)
}

var _ Store = (*lsmkv.DB)(nil)

// Workload identifies one YCSB core workload.
type Workload byte

// The six core workloads.
const (
	A Workload = 'A'
	B Workload = 'B'
	C Workload = 'C'
	D Workload = 'D'
	E Workload = 'E'
	F Workload = 'F'
)

// Config scales a run.
type Config struct {
	// Records loaded in the load phase (paper: 1M; scaled default 2000).
	Records int
	// Operations in the run phase (paper: 1M, 500K for E; scaled default
	// 5000).
	Operations int
	// ValueBytes per record (YCSB default: 10 fields x 100 B).
	ValueBytes int
	// MaxScan is the maximum scan length for workload E (spec: 100).
	MaxScan int
	// Seed drives the deterministic op stream.
	Seed uint64
}

func (c *Config) fill() {
	if c.Records == 0 {
		c.Records = 2000
	}
	if c.Operations == 0 {
		c.Operations = 5000
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 1000
	}
	if c.MaxScan == 0 {
		c.MaxScan = 100
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// Stats counts the executed operations.
type Stats struct {
	Reads    int64
	Updates  int64
	Inserts  int64
	Scans    int64
	ScanRows int64 // rows returned across all scans (workload E depth)
	RMWs     int64
	Misses   int64 // reads of keys not found (should be 0)
}

// Ops returns the total operations.
func (s Stats) Ops() int64 { return s.Reads + s.Updates + s.Inserts + s.Scans + s.RMWs }

func key(i int64) string { return fmt.Sprintf("user%012d", i) }

// Load performs the load phase: Records sequential inserts.
func Load(db Store, cfg Config) (Stats, error) {
	cfg.fill()
	rng := sim.NewRNG(cfg.Seed)
	var st Stats
	val := make([]byte, cfg.ValueBytes)
	for i := 0; i < cfg.Records; i++ {
		for j := range val {
			val[j] = byte(rng.Uint64())
		}
		if err := db.Put(key(int64(i)), val); err != nil {
			return st, err
		}
		st.Inserts++
	}
	return st, nil
}

// Run executes the run phase of workload w against a loaded store.
func Run(db Store, w Workload, cfg Config) (Stats, error) {
	cfg.fill()
	rng := sim.NewRNG(cfg.Seed ^ uint64(w))
	zipf := sim.NewZipfian(rng, int64(cfg.Records))
	latest := sim.NewLatest(rng, int64(cfg.Records))
	inserted := int64(cfg.Records)
	var st Stats
	val := make([]byte, cfg.ValueBytes)

	readKey := func() string {
		switch w {
		case D:
			return key(latest.Next())
		default:
			return key(zipf.ScrambledNext())
		}
	}
	read := func() error {
		st.Reads++
		if _, err := db.Get(readKey()); err != nil {
			st.Misses++
		}
		return nil
	}
	update := func() error {
		st.Updates++
		for j := range val {
			val[j] = byte(rng.Uint64())
		}
		return db.Put(readKey(), val)
	}
	insert := func() error {
		st.Inserts++
		k := key(inserted)
		inserted++
		latest.Max = inserted
		for j := range val {
			val[j] = byte(rng.Uint64())
		}
		return db.Put(k, val)
	}
	scan := func() error {
		st.Scans++
		start := key(zipf.ScrambledNext())
		n := rng.Intn(cfg.MaxScan) + 1
		kvs, err := db.Scan(start, n)
		st.ScanRows += int64(len(kvs))
		return err
	}
	rmw := func() error {
		st.RMWs++
		k := readKey()
		v, err := db.Get(k)
		if err != nil {
			st.Misses++
			v = val
		}
		mod := append([]byte(nil), v...)
		if len(mod) > 0 {
			mod[0]++
		}
		return db.Put(k, mod)
	}

	for i := 0; i < cfg.Operations; i++ {
		p := rng.Intn(100)
		var err error
		switch w {
		case A:
			if p < 50 {
				err = read()
			} else {
				err = update()
			}
		case B:
			if p < 95 {
				err = read()
			} else {
				err = update()
			}
		case C:
			err = read()
		case D:
			if p < 95 {
				err = read()
			} else {
				err = insert()
			}
		case E:
			if p < 95 {
				err = scan()
			} else {
				err = insert()
			}
		case F:
			if p < 50 {
				err = read()
			} else {
				err = rmw()
			}
		default:
			return st, fmt.Errorf("ycsb: unknown workload %c", w)
		}
		if err != nil {
			return st, fmt.Errorf("ycsb %c op %d: %w", w, i, err)
		}
	}
	return st, nil
}
