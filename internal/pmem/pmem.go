// Package pmem emulates an Intel Optane DC Persistent Memory device, the
// substrate the SplitFS paper evaluates on.
//
// The emulator models the three properties PM file systems depend on:
//
//  1. The cost profile of PM (latencies and bandwidths from the paper's
//     Table 2), charged to a sim.Clock.
//  2. The persistence model of the x86 + PM controller stack: cached
//     (temporal) stores are volatile until flushed (clwb) and fenced
//     (sfence); non-temporal stores are volatile until fenced; fences
//     drain the write-pending queue. Crash() discards everything that was
//     not persisted, optionally with torn (partially persisted) lines at
//     8-byte store granularity, exactly the failure the paper's 4-byte
//     transactional log checksum defends against (§3.3).
//  3. Wear: per-block write counters and total write IO, used for the
//     paper's write-amplification comparison with Strata (§2.3, §5.8).
//
// All methods are safe for concurrent use. The device is sharded: the
// address space is split into contiguous cache-line-aligned ranges, each
// with its own lock and line-state map, so goroutines operating on
// disjoint regions (different files, different staging chunks) never
// contend (see DESIGN.md, "Shard granularity"). Cumulative counters are
// atomics; per-block wear counters are atomics too. Operations spanning
// several shards take the shard locks one at a time in ascending order,
// so cross-shard tearing of a concurrent overlapping read/write pair is
// possible — which mirrors real hardware, where only cache-line-sized
// accesses are ever atomic.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"splitfs/internal/sim"
)

// lineState tracks where a modified cache line sits in the persistence
// pipeline.
type lineState uint8

const (
	// lineDirty: written with temporal stores, still in the CPU cache; a
	// fence alone does NOT persist it, and on crash it may be partially
	// written back by random eviction.
	lineDirty lineState = iota + 1
	// linePending: flushed (clwb) or written with non-temporal stores; it
	// is sitting in the write-pending queue and persists at the next fence.
	linePending
	// lineBuffered: written with write-ahead buffered stores
	// (StoreBuffered). It models a jbd2-style metadata buffer that lives
	// in the DRAM page cache: loads observe it, but it can never reach
	// the media until explicitly Flushed (journal checkpoint) and fenced.
	// On crash it reverts wholly — no tearing, no random eviction.
	lineBuffered
)

// Config configures a Device.
type Config struct {
	// Size is the device capacity in bytes; it is rounded up to a whole
	// number of cache lines.
	Size int64
	// Clock receives all simulated-time charges. Required.
	Clock *sim.Clock
	// TrackPersistence maintains a durable shadow copy so Crash() can
	// rewind to the persisted state. Costs 2x memory; benchmarks that do
	// not crash can leave it off.
	TrackPersistence bool
	// TrackWear maintains per-4KB-block write counters.
	TrackWear bool
	// Shards is the number of independently locked device regions
	// (default 64). Each shard is a contiguous cache-line-aligned byte
	// range; operations on disjoint shards proceed concurrently.
	Shards int
}

// defaultShards balances lock granularity against the cost of
// whole-device sweeps (Fence, Crash), which visit every shard.
const defaultShards = 64

// Stats are cumulative device counters.
type Stats struct {
	BytesWrittenNT     int64 // bytes written with non-temporal stores
	BytesWrittenCached int64 // bytes written with temporal stores
	BytesRead          int64
	Flushes            int64 // clwb count
	Fences             int64
	LinesPersisted     int64 // cache lines made durable by fences
}

// BytesWritten is the total write IO issued to the device.
func (s Stats) BytesWritten() int64 { return s.BytesWrittenNT + s.BytesWrittenCached }

// shard owns one contiguous cache-line-aligned byte range of the device:
// its slice of data/persisted and the persistence state of its lines.
type shard struct {
	// Innermost data lock of the hierarchy; the event sink nests inside
	// it (crash sweeps hold shard locks while recording).
	//
	// +lockrank:order shard < pmevent
	mu    sync.Mutex // +lockrank:shard
	lines map[int64]lineState
	// active is a lock-free hint that lines may be non-empty, so the
	// device-global sweeps (Fence, UnpersistedLines) skip clean shards
	// without taking their locks. Set under mu whenever a line is marked;
	// cleared under mu when the map empties. A store racing a fence was
	// not ordered before it, so skipping it is exactly sfence semantics.
	active atomic.Bool
	// Pad shards apart so neighbouring locks never share a cache line.
	_ [40]byte
}

// Device is a simulated PM module.
type Device struct {
	cfg   Config
	clock *sim.Clock

	data      []byte // volatile view (what loads observe)
	persisted []byte // durable view (nil unless TrackPersistence)
	shards    []shard
	shardSpan int64           // bytes per shard, a cache-line multiple
	wear      []atomic.Uint32 // writes per 4 KB block (nil unless TrackWear)

	lastReadEnd atomic.Int64 // for sequential-vs-random latency

	// Persistence-event machinery (event.go). events is the monotone
	// event counter; frozen means an armed crash point has been reached
	// and the durable shadow must no longer change. evSrc labels events
	// with the execution context that issued them (SetEventSource).
	events atomic.Int64
	evKind [evKinds]atomic.Int64
	evSrc  atomic.Uint32
	frozen atomic.Bool
	ev     eventState

	nBytesNT     atomic.Int64
	nBytesCached atomic.Int64
	nBytesRead   atomic.Int64
	nFlushes     atomic.Int64
	nFences      atomic.Int64
	nPersisted   atomic.Int64

	// Per-event-source breakdowns of the write-path counters, indexed
	// by the current evSrc label (observability plane; see
	// SourceStats). One extra atomic add per store/flush/fence.
	srcBytes   [evSources]atomic.Int64
	srcFlushes [evSources]atomic.Int64
	srcFences  [evSources]atomic.Int64
}

// ErrNoPersistence is returned by Crash on a device without persistence
// tracking.
var ErrNoPersistence = errors.New("pmem: device built without TrackPersistence")

// New creates a device. It panics if Size is not positive or Clock is nil,
// since both indicate a programming error.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: non-positive size")
	}
	if cfg.Clock == nil {
		panic("pmem: nil clock")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	size := (cfg.Size + sim.CacheLine - 1) / sim.CacheLine * sim.CacheLine
	span := (size + int64(cfg.Shards) - 1) / int64(cfg.Shards)
	span = (span + sim.CacheLine - 1) / sim.CacheLine * sim.CacheLine
	if span < sim.CacheLine {
		span = sim.CacheLine
	}
	d := &Device{
		cfg:       cfg,
		clock:     cfg.Clock,
		data:      make([]byte, size),
		shards:    make([]shard, (size+span-1)/span),
		shardSpan: span,
	}
	for i := range d.shards {
		d.shards[i].lines = make(map[int64]lineState)
	}
	if cfg.TrackPersistence {
		d.persisted = make([]byte, size)
	}
	if cfg.TrackWear {
		d.wear = make([]atomic.Uint32, (size+sim.BlockSize-1)/sim.BlockSize)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.data)) }

// Clock returns the clock this device charges.
func (d *Device) Clock() *sim.Clock { return d.clock }

// Shards returns the number of independently locked device regions.
func (d *Device) Shards() int { return len(d.shards) }

func (d *Device) checkRange(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(d.data)) {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of %d bytes",
			off, off+int64(n), len(d.data)))
	}
}

// forShards visits every shard overlapping [off, off+n) in ascending
// order, holding exactly one shard lock at a time, and calls fn with the
// byte sub-range [lo, hi) the shard owns. Shard boundaries are cache-line
// aligned, so each cache line belongs to exactly one shard.
func (d *Device) forShards(off int64, n int64, fn func(s *shard, lo, hi int64)) {
	end := off + n
	for si := off / d.shardSpan; si*d.shardSpan < end; si++ {
		lo, hi := si*d.shardSpan, (si+1)*d.shardSpan
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		s := &d.shards[si]
		s.mu.Lock()
		fn(s, lo, hi)
		s.mu.Unlock()
	}
}

// lockAll acquires every shard lock in ascending order (Crash needs a
// device-wide consistent point). Safe against forShards because no code
// path ever holds more than one shard lock while waiting for another.
func (d *Device) lockAll() {
	for i := range d.shards {
		d.shards[i].mu.Lock()
	}
}

func (d *Device) unlockAll() {
	for i := range d.shards {
		d.shards[i].mu.Unlock()
	}
}

// ReadAt copies device contents into p, charging device read latency plus
// read-bandwidth time to cat. The latency is sequential (169 ns) when the
// read continues where the previous one ended, random (305 ns) otherwise.
func (d *Device) ReadAt(p []byte, off int64, cat sim.Category) {
	d.checkRange(off, len(p))
	lat := int64(sim.PMRandReadLatencyNs)
	if d.lastReadEnd.Load() == off {
		lat = sim.PMSeqReadLatencyNs
	}
	d.lastReadEnd.Store(off + int64(len(p)))
	d.clock.Charge(cat, lat+sim.ChargeBytes(len(p), sim.PMReadPsPerByte))
	d.nBytesRead.Add(int64(len(p)))
	d.forShards(off, int64(len(p)), func(_ *shard, lo, hi int64) {
		copy(p[lo-off:hi-off], d.data[lo:hi])
	})
}

// ReadIntoUser copies device contents into a user buffer, charging the
// end-to-end load+memcpy cost of the file-data read path (§5.4, Table 6)
// rather than the raw device bandwidth.
func (d *Device) ReadIntoUser(p []byte, off int64, cat sim.Category) {
	d.checkRange(off, len(p))
	lat := int64(sim.PMRandReadLatencyNs)
	if d.lastReadEnd.Load() == off {
		lat = sim.PMSeqReadLatencyNs
	}
	d.lastReadEnd.Store(off + int64(len(p)))
	d.clock.Charge(cat, lat+sim.ChargeBytes(len(p), sim.PMUserCopyPsPerByte))
	d.nBytesRead.Add(int64(len(p)))
	d.forShards(off, int64(len(p)), func(_ *shard, lo, hi int64) {
		copy(p[lo-off:hi-off], d.data[lo:hi])
	})
}

// Peek copies device contents into p charging only CPU-cache-speed time.
// It models reading metadata that is resident in the CPU cache or page
// cache (e.g. the journal re-reading buffers it is about to log); cold
// reads must use ReadAt.
func (d *Device) Peek(p []byte, off int64) {
	d.checkRange(off, len(p))
	d.clock.Charge(sim.CatCPU, sim.ChargeBytes(len(p), sim.StorePsPerByte))
	d.forShards(off, int64(len(p)), func(_ *shard, lo, hi int64) {
		copy(p[lo-off:hi-off], d.data[lo:hi])
	})
}

// StoreNT writes p with non-temporal stores: the data bypasses the cache
// and lands in the write-pending queue, becoming durable at the next
// Fence. Charges the NT store startup latency plus store-bandwidth time.
func (d *Device) StoreNT(off int64, p []byte, cat sim.Category) {
	d.checkRange(off, len(p))
	d.clock.Charge(cat, int64(sim.PMWriteLatencyNs)+sim.ChargeBytes(len(p), sim.PMWritePsPerByte))
	d.write(off, p, linePending)
	d.nBytesNT.Add(int64(len(p)))
	d.srcBytes[d.srcIdx()].Add(int64(len(p)))
	d.event(EvStoreNT, cat, off, int64(len(p)))
}

// Store writes p with ordinary temporal stores. The data sits in the CPU
// cache: it is NOT durable until the covering lines are Flushed and a
// Fence completes. Cheap (cache-speed) on the clock.
func (d *Device) Store(off int64, p []byte, cat sim.Category) {
	d.checkRange(off, len(p))
	d.clock.Charge(cat, sim.ChargeBytes(len(p), sim.StorePsPerByte))
	d.write(off, p, lineDirty)
	d.nBytesCached.Add(int64(len(p)))
	d.srcBytes[d.srcIdx()].Add(int64(len(p)))
	d.event(EvStore, cat, off, int64(len(p)))
}

// StoreBuffered writes p as write-ahead-buffered metadata: loads observe
// the new content immediately, but the covered lines can never reach the
// media until they are Flushed (a journal checkpoint) and fenced, and on
// crash they revert wholly. This models jbd2's metadata buffers, which
// live in the DRAM page cache until the journal's commit record is
// durable — the write-ahead property that makes journaled metadata
// atomic. Cache-speed on the clock, like Store. Not a persistence event:
// the crash image is unchanged.
func (d *Device) StoreBuffered(off int64, p []byte, cat sim.Category) {
	d.checkRange(off, len(p))
	d.clock.Charge(cat, sim.ChargeBytes(len(p), sim.StorePsPerByte))
	d.write(off, p, lineBuffered)
	d.nBytesCached.Add(int64(len(p)))
	d.srcBytes[d.srcIdx()].Add(int64(len(p)))
}

func (d *Device) write(off int64, p []byte, st lineState) {
	d.forShards(off, int64(len(p)), func(s *shard, lo, hi int64) {
		copy(d.data[lo:hi], p[lo-off:hi-off])
		first := lo / sim.CacheLine
		last := (hi - 1) / sim.CacheLine
		for ln := first; ln <= last; ln++ {
			// An NT store to a dirty line still leaves the line pending: the
			// NT data is in the WPQ regardless of prior cached stores. A
			// buffered store claims the line outright — write-ahead metadata
			// must never leak to media via an older state — while a plain
			// dirty store only claims untracked lines.
			if st != lineDirty || s.lines[ln] == 0 {
				s.lines[ln] = st
			}
		}
		s.active.Store(true)
	})
	if d.wear != nil {
		for b := off / sim.BlockSize; b <= (off+int64(len(p))-1)/sim.BlockSize; b++ {
			d.wear[b].Add(1)
		}
	}
}

// Flush issues clwb for every cache line covering [off, off+n): dirty
// and buffered lines move to the write-pending queue and will persist at
// the next Fence (for buffered metadata this is the journal-checkpoint
// write-back). Only modified lines cost write-back time; a clwb of a
// clean line has nothing to write back.
func (d *Device) Flush(off int64, n int, cat sim.Category) {
	if n <= 0 {
		return
	}
	d.checkRange(off, n)
	dirty := int64(0)
	d.forShards(off, int64(n), func(s *shard, lo, hi int64) {
		first := lo / sim.CacheLine
		last := (hi - 1) / sim.CacheLine
		for ln := first; ln <= last; ln++ {
			if st := s.lines[ln]; st == lineDirty || st == lineBuffered {
				s.lines[ln] = linePending
				dirty++
			}
		}
	})
	d.nFlushes.Add(dirty)
	d.srcFlushes[d.srcIdx()].Add(dirty)
	d.clock.Charge(cat, dirty*sim.FlushLineNs)
	d.event(EvFlush, cat, off, int64(n))
}

// Fence issues an sfence: every line in the write-pending queue becomes
// durable. The write-pending queue is device-global, so the fence sweeps
// every shard — one at a time, so disjoint stores keep flowing while it
// drains.
func (d *Device) Fence() {
	d.clock.Charge(sim.CatFence, sim.FenceNs)
	d.nFences.Add(1)
	d.srcFences[d.srcIdx()].Add(1)
	if d.dropFence() {
		// Fault injection (SetFenceFilter): the sfence was "forgotten" —
		// nothing drains. Still a persistence event.
		d.event(EvFence, sim.CatFence, 0, 0)
		return
	}
	persisted := int64(0)
	for i := range d.shards {
		s := &d.shards[i]
		if !s.active.Load() {
			continue
		}
		s.mu.Lock()
		for ln, st := range s.lines {
			if st != linePending {
				continue
			}
			d.persistLine(ln)
			delete(s.lines, ln)
			persisted++
		}
		if len(s.lines) == 0 {
			s.active.Store(false)
		}
		s.mu.Unlock()
	}
	d.nPersisted.Add(persisted)
	d.event(EvFence, sim.CatFence, 0, 0)
}

// persistLine copies one cache line from the volatile view to the durable
// view. A frozen device (armed crash point reached) keeps its durable
// image fixed: later fences drain the queue but write nothing back.
// Caller holds the lock of the shard owning the line.
func (d *Device) persistLine(ln int64) {
	if d.persisted == nil || d.frozen.Load() {
		return
	}
	off := ln * sim.CacheLine
	copy(d.persisted[off:off+sim.CacheLine], d.data[off:off+sim.CacheLine])
}

// PersistNT is the common StoreNT followed by Fence.
func (d *Device) PersistNT(off int64, p []byte, cat sim.Category) {
	d.StoreNT(off, p, cat)
	d.Fence()
}

// Persist is the store + clwb + sfence sequence for temporal stores.
func (d *Device) Persist(off int64, p []byte, cat sim.Category) {
	d.Store(off, p, cat)
	d.Flush(off, len(p), cat)
	d.Fence()
}

// Crash simulates power failure and rewinds the volatile view to the
// durable state. Lines still in the cache or write-pending queue are
// handled per the x86/PM failure model:
//
//   - If rng is nil, every unpersisted line reverts entirely.
//   - If rng is non-nil, each unpersisted 8-byte word independently has a
//     50% chance of having reached the media, producing torn lines — the
//     failure mode SplitFS's log-entry checksum must detect. Lines are
//     visited in sorted order, so one seed yields one image.
//   - Buffered (write-ahead metadata) lines always revert wholly.
//
// If an armed crash point fired (CrashFired), the durable image was
// already frozen — torn words included — at that event; rng is ignored
// and the volatile view rewinds to the frozen image, which also disarms
// and unfreezes the device.
//
// Returns ErrNoPersistence when the device has no durable shadow.
func (d *Device) Crash(rng *sim.RNG) error {
	if d.persisted == nil {
		return ErrNoPersistence
	}
	d.lockAll()
	defer d.unlockAll()
	frozen := d.frozen.Load()
	for i := range d.shards {
		s := &d.shards[i]
		if !frozen {
			tearLines(d, s, rng)
		}
		s.lines = make(map[int64]lineState)
		s.active.Store(false)
	}
	d.frozen.Store(false)
	d.ev.mu.Lock()
	d.ev.armedAt, d.ev.rng = 0, nil
	d.ev.refreshHooks()
	d.ev.mu.Unlock()
	copy(d.data, d.persisted)
	d.lastReadEnd.Store(-1)
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesWrittenNT:     d.nBytesNT.Load(),
		BytesWrittenCached: d.nBytesCached.Load(),
		BytesRead:          d.nBytesRead.Load(),
		Flushes:            d.nFlushes.Load(),
		Fences:             d.nFences.Load(),
		LinesPersisted:     d.nPersisted.Load(),
	}
}

// Wear returns the write count of the 4 KB block containing off, or 0 when
// wear tracking is off.
func (d *Device) Wear(off int64) uint32 {
	if d.wear == nil {
		return 0
	}
	d.checkRange(off, 1)
	return d.wear[off/sim.BlockSize].Load()
}

// MaxWear returns the highest per-block write count, a proxy for the
// endurance hot spot (§2.1: PM endures ~1e7 write cycles).
func (d *Device) MaxWear() uint32 {
	var m uint32
	for i := range d.wear {
		if w := d.wear[i].Load(); w > m {
			m = w
		}
	}
	return m
}

// UnpersistedLines reports how many modified cache lines are not yet
// durable; useful in tests asserting persistence discipline.
func (d *Device) UnpersistedLines() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		if !s.active.Load() {
			continue
		}
		s.mu.Lock()
		n += len(s.lines)
		s.mu.Unlock()
	}
	return n
}
