// Package alloc provides the bitmap block allocator shared by the kernel
// file systems in this repository. The bitmap itself lives on the PM
// device (so it survives crashes and can be journaled); a DRAM mirror
// makes allocation scans cache-speed, mirroring how ext4 keeps buddy
// bitmaps in the page cache.
//
// Allocation is extent-based: AllocExtent finds the longest contiguous run
// up to the requested length, which is what makes ext4-style extent trees
// (and SplitFS staging-file pre-allocation) compact.
package alloc

import (
	"fmt"
	"sync"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Extent is a contiguous run of file-system blocks.
type Extent struct {
	Start int64 // first block number
	Len   int64 // number of blocks
}

func (e Extent) String() string { return fmt.Sprintf("[%d+%d)", e.Start, e.Len) }

// End returns the first block after the extent.
func (e Extent) End() int64 { return e.Start + e.Len }

// ByteRange is a modified range of the on-device bitmap, for journaling.
type ByteRange struct {
	Off int64 // device offset of the first modified byte
	Len int
}

// Bitmap is a block bitmap with a DRAM mirror. When built with New/Load
// it writes its state through to the device (for journaled file systems);
// when built with NewVolatile it is DRAM-only, for log-structured file
// systems that rebuild allocator state from their logs at mount.
type Bitmap struct {
	dev      *pmem.Device // nil for volatile bitmaps
	clk      *sim.Clock
	base     int64 // device offset of the bitmap region
	dataBase int64 // device offset of block 0
	nblocks  int64

	mu   sync.Mutex
	bits []byte
	free int64
	hint int64 // next-fit scan start
}

// BitmapBytes returns the size in bytes of a bitmap covering n blocks.
func BitmapBytes(n int64) int64 { return (n + 7) / 8 }

// New creates an empty (all-free) device-backed bitmap. The caller is
// responsible for persisting the initial zeroed state (mkfs does).
func New(dev *pmem.Device, base, dataBase, nblocks int64) *Bitmap {
	return &Bitmap{
		dev:      dev,
		clk:      dev.Clock(),
		base:     base,
		dataBase: dataBase,
		nblocks:  nblocks,
		bits:     make([]byte, BitmapBytes(nblocks)),
		free:     nblocks,
	}
}

// NewVolatile creates a DRAM-only bitmap over nblocks blocks whose block
// 0 lives at device offset dataBase. Mutations are never written to the
// device; the owning file system re-marks allocations at mount.
func NewVolatile(clk *sim.Clock, dataBase, nblocks int64) *Bitmap {
	return &Bitmap{
		clk:      clk,
		dataBase: dataBase,
		nblocks:  nblocks,
		bits:     make([]byte, BitmapBytes(nblocks)),
		free:     nblocks,
	}
}

// Load reads the bitmap back from the device after a mount or crash
// recovery and rebuilds the DRAM mirror.
func Load(dev *pmem.Device, base, dataBase, nblocks int64) *Bitmap {
	b := New(dev, base, dataBase, nblocks)
	dev.ReadAt(b.bits, base, sim.CatPMMeta)
	b.free = 0
	for i := int64(0); i < nblocks; i++ {
		if !b.isSet(i) {
			b.free++
		}
	}
	return b
}

func (b *Bitmap) isSet(blk int64) bool { return b.bits[blk/8]&(1<<(blk%8)) != 0 }
func (b *Bitmap) set(blk int64)        { b.bits[blk/8] |= 1 << (blk % 8) }
func (b *Bitmap) clear(blk int64)      { b.bits[blk/8] &^= 1 << (blk % 8) }

// AllocExtent allocates up to want contiguous blocks (at least 1) and
// returns the extent plus the dirty bitmap byte range the caller must
// journal. It charges the allocator's CPU search cost. Returns
// vfs.ErrNoSpace when the device is full.
func (b *Bitmap) AllocExtent(want int64) (Extent, ByteRange, error) {
	if want < 1 {
		want = 1
	}
	b.clk.Charge(sim.CatAlloc, sim.AllocExtentNs)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.free == 0 {
		return Extent{}, ByteRange{}, vfs.ErrNoSpace
	}
	// Next-fit: scan from the hint, wrapping once; take the first free
	// run, truncated to want.
	bestStart, bestLen := int64(-1), int64(0)
	scan := func(from, to int64) bool {
		run := int64(0)
		for i := from; i < to; i++ {
			if b.isSet(i) {
				run = 0
				continue
			}
			run++
			if run == 1 {
				bestStart, bestLen = i, 0
			}
			bestLen = run
			if run >= want {
				return true
			}
		}
		return bestLen > 0
	}
	if !scan(b.hint, b.nblocks) {
		bestStart, bestLen = -1, 0
		if !scan(0, b.hint) {
			return Extent{}, ByteRange{}, vfs.ErrNoSpace
		}
	}
	if bestLen > want {
		bestLen = want
	}
	ext := Extent{Start: bestStart, Len: bestLen}
	for i := ext.Start; i < ext.End(); i++ {
		b.set(i)
	}
	b.free -= ext.Len
	b.hint = ext.End() % b.nblocks
	return ext, b.writeBack(ext), nil
}

// Alloc allocates exactly n blocks, possibly as multiple extents, undoing
// everything on failure.
func (b *Bitmap) Alloc(n int64) ([]Extent, []ByteRange, error) {
	var exts []Extent
	var dirty []ByteRange
	remaining := n
	for remaining > 0 {
		e, d, err := b.AllocExtent(remaining)
		if err != nil {
			for _, u := range exts {
				b.Free(u)
			}
			return nil, nil, err
		}
		exts = append(exts, e)
		dirty = append(dirty, d)
		remaining -= e.Len
	}
	return exts, dirty, nil
}

// MarkAllocated forces an extent to allocated state without charging
// search cost; used when rebuilding allocator state from a log replay
// (NOVA-style recovery). Marking an already-allocated block panics.
func (b *Bitmap) MarkAllocated(e Extent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := e.Start; i < e.End(); i++ {
		if b.isSet(i) {
			panic(fmt.Sprintf("alloc: MarkAllocated of live block %d", i))
		}
		b.set(i)
	}
	b.free -= e.Len
}

// Free releases an extent and returns the dirty bitmap range. Freeing
// already-free blocks panics: it indicates file-system corruption.
func (b *Bitmap) Free(e Extent) ByteRange {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := e.Start; i < e.End(); i++ {
		if !b.isSet(i) {
			panic(fmt.Sprintf("alloc: double free of block %d", i))
		}
		b.clear(i)
	}
	b.free += e.Len
	return b.writeBack(e)
}

// writeBack stores the bitmap bytes covering e to the device with
// write-ahead buffered stores: like jbd2 metadata buffers they are
// visible to loads at once but reach the media only when the owning
// journal transaction commits and checkpoints (flush+fence), and revert
// wholly on crash. Volatile bitmaps skip the device write. Caller holds
// b.mu.
func (b *Bitmap) writeBack(e Extent) ByteRange {
	if b.dev == nil {
		return ByteRange{}
	}
	lo := e.Start / 8
	hi := (e.End()-1)/8 + 1
	b.dev.StoreBuffered(b.base+lo, b.bits[lo:hi], sim.CatPMMeta)
	return ByteRange{Off: b.base + lo, Len: int(hi - lo)}
}

// BlockOffset translates a block number to its device byte offset.
func (b *Bitmap) BlockOffset(blk int64) int64 { return b.dataBase + blk*sim.BlockSize }

// ExtentOffset translates an extent to its device byte offset.
func (b *Bitmap) ExtentOffset(e Extent) int64 { return b.BlockOffset(e.Start) }

// Free blocks remaining.
func (b *Bitmap) FreeCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.free
}

// Allocated reports whether blk is currently allocated.
func (b *Bitmap) Allocated(blk int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.isSet(blk)
}
