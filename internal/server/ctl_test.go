package server_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"splitfs/internal/crash"
	"splitfs/internal/server"
	"splitfs/internal/vfs"
)

// ctlTestServer builds a served splitfs-strict instance with the sim
// clock and fence counter wired as the op-cost feeds, plus one active
// session that has performed a few ops.
func ctlTestServer(t *testing.T) (*server.Server, *server.Client) {
	t.Helper()
	b, err := crash.NewBackend("splitfs-strict", crash.BackendSpec{
		DevBytes: 64 << 20, StagingFiles: 8, StagingFileBytes: 1 << 20, OpLogBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(b.FS, server.Config{
		OpClock:  b.Clock.Now,
		OpFences: b.Dev.FenceCount,
	})
	t.Cleanup(func() { srv.Close() })
	c, err := server.NewLoopback(srv, "/")
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/ctl-probe", vfs.O_RDWR|vfs.O_CREATE, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello control surface")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func TestCtlCommandStats(t *testing.T) {
	srv, _ := ctlTestServer(t)
	out, err := srv.CtlCommand("stats")
	if err != nil {
		t.Fatal(err)
	}
	var m server.ServerMetrics
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("stats reply is not JSON: %v\n%s", err, out)
	}
	if m.Sessions != 1 {
		t.Fatalf("stats sessions = %d, want 1", m.Sessions)
	}
	if m.Ops == 0 || m.Bytes == 0 {
		t.Fatalf("stats ops=%d bytes=%d, want nonzero", m.Ops, m.Bytes)
	}
	if m.Cost == 0 {
		t.Fatal("stats cost = 0 with OpClock wired; sim-derived op cost missing")
	}
	if len(m.CostHist) == 0 {
		t.Fatal("stats cost histogram empty with OpClock wired")
	}
	if len(m.ByType) == 0 {
		t.Fatal("stats by_type empty")
	}
	if len(m.PerSess) != 1 {
		t.Fatalf("stats per_session has %d rows, want 1", len(m.PerSess))
	}
}

func TestCtlCommandSessionsAndTrace(t *testing.T) {
	srv, _ := ctlTestServer(t)
	out, err := srv.CtlCommand("sessions")
	if err != nil {
		t.Fatal(err)
	}
	var rows []server.SessionMetrics
	if err := json.Unmarshal(out, &rows); err != nil {
		t.Fatalf("sessions reply is not JSON: %v\n%s", err, out)
	}
	if len(rows) != 1 {
		t.Fatalf("sessions has %d rows, want 1", len(rows))
	}
	if rows[0].Gen != 1 {
		t.Fatalf("session generation = %d, want 1 (fresh attach)", rows[0].Gen)
	}

	out, err = srv.CtlCommand(fmt.Sprintf("trace %d", rows[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	var sm server.SessionMetrics
	if err := json.Unmarshal(out, &sm); err != nil {
		t.Fatalf("trace reply is not JSON: %v\n%s", err, out)
	}
	if len(sm.Flight) == 0 {
		t.Fatal("trace returned no flight records for an active session")
	}
	// The flight records carry sim-derived cost and fence annotations:
	// at least one op (the fsync) must have crossed a fence.
	fenced := false
	for _, r := range sm.Flight {
		if r.Fences > 0 {
			fenced = true
		}
	}
	if !fenced {
		t.Fatal("no flight record shows a fence delta; OpFences feed not flowing")
	}
}

func TestCtlCommandErrors(t *testing.T) {
	srv, _ := ctlTestServer(t)
	for _, cmd := range []string{"", "bogus", "trace", "trace zzz"} {
		if _, err := srv.CtlCommand(cmd); err == nil {
			t.Errorf("CtlCommand(%q) succeeded, want error", cmd)
		}
	}
	if _, err := srv.CtlCommand("trace 999999"); err == nil {
		t.Error("trace of unknown session succeeded, want error")
	}
}

// TestServeCtlUnixSocket exercises the full line protocol over a real
// unix socket, the way splitfs-shell -ctl speaks it.
func TestServeCtlUnixSocket(t *testing.T) {
	srv, _ := ctlTestServer(t)
	dir, err := os.MkdirTemp("", "ctl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeCtl(ln) }()

	ask := func(cmd string) string {
		t.Helper()
		c, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := fmt.Fprintf(c, "%s\n", cmd); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	var m server.ServerMetrics
	if err := json.Unmarshal([]byte(ask("stats")), &m); err != nil {
		t.Fatalf("stats over socket: %v", err)
	}
	if m.Sessions != 1 {
		t.Fatalf("stats over socket: sessions = %d, want 1", m.Sessions)
	}
	if reply := ask("bogus"); !strings.HasPrefix(reply, "error: ") {
		t.Fatalf("bogus command reply %q, want error line", reply)
	}
	// pprof heap streams a binary profile, not an error line.
	if reply := ask("pprof heap"); len(reply) == 0 || strings.HasPrefix(reply, "error: ") {
		t.Fatalf("pprof heap reply empty or error: %.80q", reply)
	}

	srv.Close()
	ln.Close()
	if err := <-done; err != nil {
		t.Fatalf("ServeCtl returned %v after Close, want nil", err)
	}
}
