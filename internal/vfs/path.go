package vfs

import "strings"

// CleanPath normalizes a path to an absolute, slash-separated form with no
// empty or "." components. ".." components are resolved lexically. The
// root is "/".
func CleanPath(p string) string {
	parts := SplitPath(p)
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// SplitPath splits a path into its non-empty components, resolving "." and
// "..".
func SplitPath(p string) []string {
	var out []string
	for _, c := range strings.Split(p, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, c)
		}
	}
	return out
}

// SplitDir splits a cleaned path into its parent directory and base name.
// SplitDir("/a/b/c") = ("/a/b", "c"); SplitDir("/a") = ("/", "a").
func SplitDir(p string) (dir, base string) {
	parts := SplitPath(p)
	if len(parts) == 0 {
		return "/", ""
	}
	base = parts[len(parts)-1]
	if len(parts) == 1 {
		return "/", base
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/"), base
}

// BaseName returns the final component of a path.
func BaseName(p string) string {
	_, b := SplitDir(p)
	return b
}
