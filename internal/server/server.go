package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"splitfs/internal/vfs"
)

// Config sizes the service.
type Config struct {
	// Workers is the dispatch pool size (default GOMAXPROCS). The pool
	// bounds cross-session concurrency; within a session requests always
	// execute FIFO.
	Workers int
}

// Server multiplexes client sessions onto one vfs.FileSystem. The
// backend must be safe for concurrent use (every backend in this
// repository is, since the PR 1 lock decomposition); the server adds no
// global lock of its own — distinct sessions proceed in parallel
// through the worker pool, meeting at the backend's own fine-grained
// locks and at ext4dax group commit.
type Server struct {
	fs  vfs.FileSystem
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextSess uint64
	conns    map[*serverConn]bool
	closed   bool

	work      chan *Session
	quit      chan struct{}
	workersUp sync.Once
	wg        sync.WaitGroup
}

// serverConn is one accepted stream connection (unix socket, net.Pipe).
type serverConn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
}

// New builds a server over fs. No goroutines start until the first
// stream connection arrives, so loopback-only servers (the crash
// harness's served: wrapper) stay goroutine-free and deterministic.
func New(fs vfs.FileSystem, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		fs:       fs,
		cfg:      cfg,
		sessions: make(map[uint64]*Session),
		conns:    make(map[*serverConn]bool),
		work:     make(chan *Session),
		quit:     make(chan struct{}),
	}
}

// FS returns the served backend.
func (srv *Server) FS() vfs.FileSystem { return srv.fs }

// attach creates a session confined to root ("" or "/" = whole tree).
// A non-root subtree must already exist as a directory.
func (srv *Server) attach(root string, conn *serverConn) (*Session, error) {
	root = vfs.CleanPath(root)
	if root != "/" {
		fi, err := srv.fs.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("attach %s: %w", root, err)
		}
		if !fi.IsDir {
			return nil, vfs.WrapPath("attach", root, vfs.ErrNotDir)
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, errServerClosed
	}
	srv.nextSess++
	s := &Session{srv: srv, id: srv.nextSess, root: root, ht: newHandleTable(), conn: conn}
	srv.sessions[s.id] = s
	return s, nil
}

// detach unregisters a session (teardown calls it once).
func (srv *Server) detach(id uint64) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// SessionCount reports the live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// OpenHandles reports live handles across every session.
func (srv *Server) OpenHandles() int {
	srv.mu.Lock()
	sess := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sess = append(sess, s)
	}
	srv.mu.Unlock()
	n := 0
	for _, s := range sess {
		n += s.ht.open()
	}
	return n
}

// startWorkers brings the dispatch pool up (first stream connection).
func (srv *Server) startWorkers() {
	srv.workersUp.Do(func() {
		for i := 0; i < srv.cfg.Workers; i++ {
			srv.wg.Add(1)
			go func() {
				defer srv.wg.Done()
				for {
					select {
					case s := <-srv.work:
						s.drain()
					case <-srv.quit:
						return
					}
				}
			}()
		}
	})
}

// enqueue appends a request to the session queue and schedules the
// session on the pool unless a worker already owns it — the per-session
// FIFO rule: one worker at a time, requests in arrival order.
func (s *Session) enqueue(req request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return // the connection is going away; replies are undeliverable
	}
	s.queue = append(s.queue, req)
	schedule := !s.running
	if schedule {
		s.running = true
	}
	s.mu.Unlock()
	if schedule {
		select {
		case s.srv.work <- s:
		case <-s.srv.quit:
			s.teardownOwned()
		}
	}
}

// teardownOwned finishes teardown for a session this goroutine owns
// (running == true was claimed but no worker will drain it).
func (s *Session) teardownOwned() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.finishTeardown()
}

// drain executes the session's queue until it empties or the session
// closes. Only one worker runs drain for a session at a time.
func (s *Session) drain() {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.finishTeardown()
			return
		}
		if len(s.queue) == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		rtyp, rid, payload := s.handle(req.typ, req.id, req.payload)
		s.reply(rtyp, rid, payload)
	}
}

// reply writes one response frame. An oversized payload (a handler bug
// — handlers bound their replies) degrades to an Rerror so one request
// cannot wedge the connection; an I/O failure kills the connection (the
// read loop then tears the session down).
func (s *Session) reply(typ uint8, reqID uint32, payload []byte) {
	if s.conn == nil {
		return
	}
	if len(payload) > maxFrame-frameHeader {
		typ, reqID, payload = encodeError(reqID, fmt.Errorf("server: %s reply exceeds the wire payload bound", msgName(typ)))
	}
	s.replyMu.Lock()
	err := writeFrame(s.conn.rwc, typ, reqID, payload)
	s.replyMu.Unlock()
	if err != nil {
		s.conn.rwc.Close()
	}
}

// ServeConn speaks the wire protocol over one stream connection. The
// first frame must be Tattach; afterwards frames are enqueued for the
// dispatcher. ServeConn blocks until the connection fails or closes and
// always leaves the session torn down (every handle closed) — the
// mid-operation disconnect guarantee.
func (srv *Server) ServeConn(rwc io.ReadWriteCloser) error {
	srv.startWorkers()
	conn := &serverConn{rwc: rwc, br: bufio.NewReaderSize(rwc, 64<<10)}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		rwc.Close()
		return errServerClosed
	}
	srv.conns[conn] = true
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		rwc.Close()
	}()

	typ, reqID, payload, err := readFrame(conn.br)
	if err != nil {
		return fmt.Errorf("server: attach read: %w", err)
	}
	if typ != tAttach {
		writeFrame(rwc, rError, reqID, encodeAttachError(fmt.Errorf("expected Tattach, got %s", msgName(typ))))
		return fmt.Errorf("%w: first frame %s, want Tattach", errBadHandshake, msgName(typ))
	}
	d := dec{b: payload}
	root := d.str()
	if d.err != nil {
		return fmt.Errorf("server: malformed Tattach: %w", d.err)
	}
	s, err := srv.attach(root, conn)
	if err != nil {
		etyp, eid, ep := encodeError(reqID, err)
		writeFrame(rwc, etyp, eid, ep)
		return err
	}
	var e enc
	e.str(srv.fs.Name())
	e.u64(s.id)
	if err := writeFrame(rwc, rAttach, reqID, e.b); err != nil {
		s.teardown()
		return err
	}

	for {
		typ, reqID, payload, err := readFrame(conn.br)
		if err != nil {
			s.teardown()
			if err == io.EOF {
				return nil
			}
			return err
		}
		s.enqueue(request{typ: typ, id: reqID, payload: payload})
	}
}

func encodeAttachError(err error) []byte {
	var e enc
	e.u32(uint32(codeGeneric))
	e.str(err.Error())
	return e.b
}

// Serve accepts connections from ln until ln or the server closes.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	closed := srv.closed
	srv.mu.Unlock()
	if closed {
		return errServerClosed
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go srv.ServeConn(c)
	}
}

// Close tears down every session and stops the worker pool. Safe to
// call more than once.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	conns := make([]*serverConn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	sess := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sess = append(sess, s)
	}
	srv.mu.Unlock()

	// Closing the connections unblocks every read loop, which tears its
	// session down; loopback sessions (conn == nil) are torn down here.
	for _, c := range conns {
		c.rwc.Close()
	}
	for _, s := range sess {
		if s.conn == nil {
			s.teardown()
		}
	}
	close(srv.quit)
	srv.wg.Wait()
	return nil
}
