package splitfs

import (
	"io"
	"sync"
	"sync/atomic"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// File is an open U-Split file handle. Handles opened for the same inode
// share one ofile (and thus one staged overlay); dup'd descriptors share
// the File itself and therefore the offset (§3.5).
type File struct {
	fs *FS
	of *ofile

	flag int
	path string

	mu     sync.Mutex // handle offset
	pos    int64
	closed atomic.Bool
}

var _ vfs.File = (*File)(nil)

// OpenFile implements vfs.FileSystem: the open passes through to K-Split,
// then U-Split stats the file and caches its attributes (§3.5).
func (fs *FS) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	defer fs.lockStrict()()
	kf, err := fs.kfs.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	fs.clk.Charge(sim.CatCPU, sim.USplitOpenNs)
	clean := vfs.CleanPath(path)
	// Attribute cache (§3.5): a file opened before (and not unlinked)
	// skips the stat; first-time opens pay it. This is why reopening a
	// recently closed file is cheaper in Table 6.
	fs.amu.Lock()
	info, cached := fs.attrs[clean]
	fs.amu.Unlock()
	// The handle knows its true inode for free; a cached attribute whose
	// ino disagrees is stale (the path was unlinked and recreated) and
	// must not be trusted — registering the new file under the old inode
	// number would corrupt the open-file table.
	if cached && info.Ino != kf.(*ext4dax.File).Ino() {
		cached = false
	}
	if !cached || flag&vfs.O_TRUNC != 0 {
		info, err = kf.Stat()
		if err != nil {
			kf.Close()
			return nil, err
		}
	}
	fs.mu.Lock()
	of, ok := fs.files[info.Ino]
	if !ok {
		of = &ofile{
			ino:   info.Ino,
			path:  clean,
			kf:    kf.(*ext4dax.File),
			size:  info.Size,
			ksize: info.Size,
		}
		// Register the description only while its inode is still linked:
		// an open racing an unlink of the same path keeps a working
		// (tmpfile-style) handle, but must not occupy the table slot of
		// an inode number that may be recycled. Unlink retires the entry
		// after the kernel unlink, so whichever side runs second cleans
		// up: a pre-unlink insert is retired, a post-unlink open sees
		// Linked() == false here and caches nothing.
		if of.kf.Linked() {
			fs.files[info.Ino] = of
			fs.amu.Lock()
			fs.attrs[clean] = info
			fs.amu.Unlock()
		}
		if flag&vfs.O_TRUNC != 0 && vfs.Writable(flag) {
			// The kernel truncated on open: stale mappings over freed
			// blocks must go.
			fs.mmaps.drop(info.Ino)
		}
		// A fresh (or freshly recycled) inode must not inherit log
		// entries from a previous incarnation of its inode number: stamp
		// the watermark past every existing entry. Closed files have no
		// pending entries (close relinks), so this is only needed when
		// the file is empty — i.e. created or truncated.
		if fs.olog != nil && info.Size == 0 {
			of.kf.SetUserWatermark(fs.opSeq)
		}
	} else {
		// Reuse the shared description; the redundant kernel handle is
		// closed (its open cost was already charged, as in the real
		// LD_PRELOAD library which still performs the open syscall).
		kf.Close()
		if flag&vfs.O_TRUNC != 0 && vfs.Writable(flag) {
			of.mu.Lock()
			// Remap event: the dropped overlay's staging chunks are
			// released below and may be recycled (vfs.Mappable contract).
			of.mapEpoch.Add(1)
			dropped := of.staged
			oldActive := of.active
			of.staged = nil
			of.active = nil
			of.size, of.ksize = 0, 0
			of.mu.Unlock()
			// The truncated-away overlay and append chunk release their
			// staging-file references (the data is dropped, not relinked).
			fs.staging.release(dropped)
			fs.staging.releaseChunk(oldActive)
			fs.mmaps.drop(of.ino)
			// Dropped staged writes must not be resurrected by replay.
			if fs.olog != nil {
				of.kf.SetUserWatermark(fs.opSeq)
			}
		}
		// A live table entry implies the inode was linked an instant ago;
		// a concurrent unlink's sweep (which runs after the kernel
		// unlink) will delete this attribute again if it races us.
		fs.amu.Lock()
		fs.attrs[clean] = info
		fs.amu.Unlock()
	}
	of.refs++
	fs.mu.Unlock()
	if fs.olog != nil {
		fs.appendLog(nil, encMetaEntry('o', of.ino))
	}
	if err := fs.syncMeta(); err != nil {
		return nil, err
	}
	return &File{fs: fs, of: of, flag: flag, path: clean}, nil
}

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

// Read reads at the handle offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Write writes at the handle offset (EOF with O_APPEND). The EOF offset
// is resolved under the ofile lock, so concurrent appenders through
// distinct handles interleave whole writes.
func (f *File) Write(p []byte) (int, error) {
	defer f.fs.lockStrict()()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.of.mu.Lock()
	defer f.of.mu.Unlock()
	off := f.pos
	if f.flag&vfs.O_APPEND != 0 {
		off = f.of.size
	}
	// The log-full checkpoint inside writeLocked read-locks the open-file
	// table while this file's mu is held — safe because wmu (held on that
	// path) excludes every other writer; see DESIGN.md, "Lock hierarchy".
	//lint:ignore splitfs-lockorder log-full checkpoint under wmu (DESIGN.md)
	n, err := f.writeLocked(p, off)
	f.pos = off + int64(n)
	return n, err
}

// Seek implements vfs.File.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case vfs.SeekSet:
	case vfs.SeekCur:
		base = f.pos
	case vfs.SeekEnd:
		f.of.mu.RLock()
		base = f.of.size
		f.of.mu.RUnlock()
	default:
		return 0, vfs.ErrInval
	}
	if base+offset < 0 {
		return 0, vfs.ErrInval
	}
	f.pos = base + offset
	return f.pos, nil
}

// ReadAt serves the read entirely in user space: the collection of mmaps
// provides the base content; staged ranges (appends, strict overwrites)
// are patched in from the staging files' mappings (§3.4). It holds only
// this file's read lock — no process-wide lock in any mode — so
// concurrent reads (of any files) and writes to other files all proceed
// in parallel.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	fs := f.fs
	if f.closed.Load() {
		return 0, vfs.ErrClosed
	}
	if !vfs.Readable(f.flag) {
		return 0, vfs.ErrInval
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	fs.bookkeep()
	fs.stats.userReads.Add(1)
	of := f.of
	of.mu.RLock()
	defer of.mu.RUnlock()
	if off >= of.size {
		return 0, io.EOF
	}
	if m := of.size - off; int64(len(p)) > m {
		p = p[:m]
	}
	// Base content from the target file's mappings (only up to ksize;
	// beyond that everything is staged).
	n := 0
	for n < len(p) && off+int64(n) < of.ksize {
		cur := off + int64(n)
		span := int64(len(p) - n)
		if rem := of.ksize - cur; span > rem {
			span = rem
		}
		m := fs.mmaps.get(of, cur)
		if m == nil {
			// Hole or unmappable region: fall back to a kernel read.
			got, err := of.kf.ReadAt(p[n:n+int(span)], cur)
			if err != nil && err != io.EOF {
				return n, err
			}
			for i := n + got; i < n+int(span); i++ {
				p[i] = 0
			}
			n += int(span)
			continue
		}
		if end := m.FileOff + m.Length; cur+span > end {
			span = end - cur
		}
		if span <= 0 {
			// Mapping ends before ksize (sparse tail); zero-fill one block.
			z := sim.BlockSize - cur%sim.BlockSize
			if z > int64(len(p)-n) {
				z = int64(len(p) - n)
			}
			for i := int64(0); i < z; i++ {
				p[n+int(i)] = 0
			}
			n += int(z)
			continue
		}
		got := m.Load(p[n:n+int(span)], cur)
		if got == 0 {
			break
		}
		n += got
	}
	// Zero anything between ksize and size not covered by staging.
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	// Patch staged ranges (oldest first; later writes win). The epoch pin
	// brackets every access through a staging-file mapping: the reclaimer
	// will not unmap a retired staging file until all pins from this
	// epoch (and earlier) have been released.
	overlaps := of.overlaps(off, int64(len(p)))
	if len(overlaps) > 0 {
		e := fs.staging.pin()
		defer fs.staging.unpin(e)
	}
	end := off + int64(len(p))
	for _, s := range overlaps {
		lo, hi := s.fileOff, s.fileOff+s.length
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if s.dram != nil {
			fs.clk.Charge(sim.CatCPU, sim.ChargeBytes(int(hi-lo), sim.DRAMCopyPsPerByte))
			copy(p[lo-off:hi-off], s.dram[lo-s.fileOff:hi-s.fileOff])
			continue
		}
		s.sf.m.Load(p[lo-off:hi-off], s.sfOff+(lo-s.fileOff))
	}
	return len(p), nil
}

// WriteAt routes the write by kind and mode (§3.4):
//
//   - overwrite, POSIX/sync: in-place non-temporal stores through the
//     mmap collection (fenced in sync mode);
//   - overwrite, strict: staged + logged, relinked on fsync;
//   - append (any mode): staged; logged in strict; atomic on fsync.
//
// Only this file's lock is held (plus, in strict mode, the op-log writer
// lock); writes to different files proceed in parallel.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	defer f.fs.lockStrict()()
	f.of.mu.Lock()
	defer f.of.mu.Unlock()
	// See Write: the log-full checkpoint path is excluded by wmu.
	//lint:ignore splitfs-lockorder log-full checkpoint under wmu (DESIGN.md)
	return f.writeLocked(p, off)
}

// writeLocked is WriteAt under f.of.mu (and wmu in strict mode).
func (f *File) writeLocked(p []byte, off int64) (int, error) {
	fs := f.fs
	if f.closed.Load() {
		return 0, vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return 0, vfs.ErrReadOnly
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	fs.bookkeep()
	of := f.of
	end := off + int64(len(p))
	isAppend := end > of.ksize || fs.cfg.DisableStaging && end > of.size

	if fs.cfg.DisableStaging {
		// Fig 3 ablation: appends go through the kernel like ext4 DAX.
		if isAppend || fs.mode == Strict {
			n, err := of.kf.WriteAt(p, off)
			if end > of.size {
				of.size = end
			}
			if end > of.ksize {
				of.ksize = end
			}
			return n, err
		}
	}

	switch {
	case fs.mode == Strict:
		// All strict-mode writes are staged and logged.
		return fs.stageWrite(of, p, off)
	case isAppend:
		// POSIX/sync appends are staged (and atomic on fsync).
		return fs.stageWrite(of, p, off)
	case len(of.overlaps(off, end-off)) > 0:
		// The range is shadowed by staged data (e.g. an earlier
		// size-extending write): an in-place store would be hidden by
		// the overlay, so stage this write too to preserve ordering.
		return fs.stageWrite(of, p, off)
	default:
		// In-place overwrite through the mmap collection.
		fs.stats.userWrites.Add(1)
		n := 0
		for n < len(p) {
			cur := off + int64(n)
			m := fs.mmaps.get(of, cur)
			if m == nil {
				// Hole in the file: fall back to the kernel write path.
				got, err := of.kf.WriteAt(p[n:], cur)
				n += got
				if err != nil {
					return n, err
				}
				continue
			}
			got := m.StoreNT(p[n:], cur)
			if got == 0 {
				got2, err := of.kf.WriteAt(p[n:], cur)
				n += got2
				if err != nil {
					return n, err
				}
				continue
			}
			n += got
		}
		if fs.mode == Sync {
			fs.dev.Fence()
		}
		return n, nil
	}
}

// stageWrite redirects a write to a staging file: non-temporal stores
// through the staging mapping, one op-log entry + one fence in strict
// mode. Caller holds of.mu (and wmu in strict mode).
func (fs *FS) stageWrite(of *ofile, p []byte, off int64) (int, error) {
	fs.stats.appends.Add(1)
	need := int64(len(p))
	fs.stats.stagedBytes.Add(need)
	// A staged write below ksize or over an existing staged range shadows
	// bytes a lease may currently map (kernel extents or an earlier
	// staged range); bump before the overlay changes. A pure append only
	// adds coverage and needs no bump (vfs.Mappable contract).
	if off < of.ksize || of.overlapsAny(off, need) {
		of.mapEpoch.Add(1)
	}
	if fs.cfg.StageInDRAM {
		// §4 ablation: buffer in DRAM at memcpy speed; every byte must
		// later be copied into PM through the kernel at fsync.
		fs.clk.Charge(sim.CatCPU, sim.ChargeBytes(len(p), sim.DRAMCopyPsPerByte))
		of.addStaged(stagedRange{fileOff: off, length: need,
			dram: append([]byte(nil), p...)})
		if end := off + need; end > of.size {
			of.size = end
		}
		return len(p), nil
	}
	// Reuse the active chunk when this write continues it (the common
	// sequential-append pattern packs one relinkable run).
	c := of.active
	fits := c != nil && c.used+need <= c.end-c.base &&
		(c.base+c.used)%sim.BlockSize == off%sim.BlockSize
	// With pending staged ranges the write must continue the last one;
	// right after a relink (no staged ranges) the chunk tail is free to
	// continue at any congruent offset.
	if fits && len(of.staged) > 0 {
		fits = fs.continuesActive(of, off)
	}
	if !fits {
		// Appends (extending the file) get a large chunk so consecutive
		// appends form one relinkable run; staged overwrites reserve
		// exactly their footprint.
		exact := off+need <= of.size
		nc, err := fs.staging.reserve(need, off, exact)
		if err != nil {
			return 0, err
		}
		// The replaced chunk's staging-file reference is dropped; staged
		// ranges still inside it hold their own references.
		fs.staging.releaseChunk(of.active)
		c = nc
		of.active = c
	}
	sfOff := c.base + c.used
	c.sf.m.StoreNT(p, sfOff)
	c.used += need
	if of.addStaged(stagedRange{fileOff: off, length: need, sf: c.sf, sfOff: sfOff}) {
		// A new overlay entry references the staging file; merged appends
		// extend the existing entry and its existing reference.
		fs.staging.addRangeRef(c.sf)
	}
	if end := off + need; end > of.size {
		of.size = end
	}
	switch fs.mode {
	case Strict:
		// Entry write + single fence covers the data too (§3.3). The
		// entry carries a checksum over the staged bytes so recovery can
		// reject it if the shared fence never completed and the data tore.
		fs.clk.Charge(sim.CatCPU, sim.ChargeBytes(len(p), sim.ChecksumPsPerByte))
		fs.opSeq++
		of.logSeq = fs.opSeq
		fs.appendLog(of, encWriteEntry(uint32(of.ino), off, uint32(need),
			uint32(c.sf.kf.Ino()), sfOff, fs.opSeq, stagedSum(p)))
	case Sync:
		fs.dev.Fence()
	}
	return len(p), nil
}

// continuesActive reports whether a write at off would extend the active
// chunk's most recent staged range contiguously. Caller holds of.mu.
func (fs *FS) continuesActive(of *ofile, off int64) bool {
	if len(of.staged) == 0 {
		return false
	}
	last := of.staged[len(of.staged)-1]
	return last.sf == of.active.sf &&
		last.sfOff+last.length == of.active.base+of.active.used &&
		last.fileOff+last.length == off
}

// Truncate flushes staged state and passes through to K-Split.
func (f *File) Truncate(size int64) error {
	fs := f.fs
	defer fs.lockStrict()()
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return vfs.ErrReadOnly
	}
	fs.bookkeep()
	of := f.of
	of.mu.Lock()
	defer of.mu.Unlock()
	// Remap event: overlay and kernel extents both change, and freed
	// blocks may be recycled (vfs.Mappable contract).
	of.mapEpoch.Add(1)
	if len(of.staged) > 0 {
		if err := fs.relinkLocked(of); err != nil {
			return err
		}
	}
	if err := of.kf.Truncate(size); err != nil {
		return err
	}
	// Freed blocks may be reallocated to other files: cached mappings
	// over them are stale and must be torn down.
	fs.mmaps.drop(of.ino)
	of.size, of.ksize = size, size
	fs.setAttrSize(of, size)
	return fs.syncMeta()
}

// Sync is fsync(2): relink staged data into the target file (§3.4),
// through the asynchronous relink pipeline — the call returns once this
// file's relink batch has group-committed, and concurrent fsyncs of
// distinct files coalesce into one journal transaction and fence pair.
// No strict-mode writer lock is needed: the relink watermark is the
// file's own logSeq, independent of the global op sequence.
func (f *File) Sync() error {
	fs := f.fs
	if f.closed.Load() {
		return vfs.ErrClosed
	}
	fs.bookkeep()
	return fs.pipeline.syncFile(f.of)
}

// Close decrements the shared description; staged data is relinked when
// the last handle closes (§3.4: "relinked on a subsequent fsync() or
// close()"). Cached attributes are retained (§3.5).
func (f *File) Close() error {
	fs := f.fs
	defer fs.lockStrict()()
	if !f.closed.CompareAndSwap(false, true) {
		return vfs.ErrClosed
	}
	fs.clk.Charge(sim.CatCPU, sim.USplitCloseNs)
	of := f.of
	fs.mu.Lock()
	of.refs--
	last := of.refs == 0
	fs.mu.Unlock()
	if fs.olog != nil {
		fs.appendLog(nil, encMetaEntry('c', of.ino))
	}
	if !last {
		return nil
	}
	// Last close: relink under only the file's own lock — the table stays
	// pointing at this description, so a re-open racing the relink shares
	// the staged overlay and observes consistent sizes throughout. The
	// table lock is held only for O(1) bookkeeping, never across I/O.
	//
	// The relink runs even when nothing is staged: a concurrent pipeline
	// drain (another thread's fsync, or a group SyncAll) may have popped
	// this file's staged ranges moments ago, and its group commit — or a
	// commit of metadata ops issued after it — may not be durable yet.
	// close() is a relink point (§3.4), so like the empty-staged fsync it
	// must fence and commit the running journal transaction before the
	// caller learns the close succeeded. Skipping the empty case acked
	// closes whose preceding metadata ops (e.g. a mkdir) were still
	// sitting in an uncommitted transaction — found by the served crash
	// campaign: a concurrent tenant's SyncAll relinked the file early,
	// close no-opped, and the crash rolled the mkdir back.
	of.mu.Lock()
	err := fs.relinkLocked(of)
	of.mu.Unlock()
	if err != nil {
		return err
	}
	// Retire the description only if nothing re-opened it meanwhile. The
	// kfClosed once-flag picks a unique finisher when two "last" closers
	// race via re-open, and covers the unlink path where the table entry
	// was already replaced.
	fs.mu.Lock()
	closeKF := of.refs == 0 && !of.kfClosed
	if closeKF {
		of.kfClosed = true
		if cur, ok := fs.files[of.ino]; ok && cur == of {
			delete(fs.files, of.ino)
		}
	}
	fs.mu.Unlock()
	if !closeKF {
		return nil // a concurrent re-open adopted the description
	}
	// The retiring description's active append chunk drops its
	// staging-file reference so the file can eventually be reclaimed
	// (staged data was relinked above, so the chunk holds nothing live).
	of.mu.Lock()
	act := of.active
	of.active = nil
	of.mu.Unlock()
	fs.staging.releaseChunk(act)
	return of.kf.Close()
}

// Stat implements vfs.File from the cached attributes plus staged size.
func (f *File) Stat() (vfs.FileInfo, error) {
	fs := f.fs
	if f.closed.Load() {
		return vfs.FileInfo{}, vfs.ErrClosed
	}
	fs.bookkeep()
	f.of.mu.RLock()
	path := f.of.path
	size := f.of.size
	f.of.mu.RUnlock()
	fs.amu.Lock()
	info := fs.attrs[path]
	fs.amu.Unlock()
	info.Ino = f.of.ino
	info.Size = size
	return info, nil
}
